package sisyphus

import (
	"errors"
	"fmt"
	"strings"

	"sisyphus/internal/causal/dag"
	"sisyphus/internal/causal/data"
	"sisyphus/internal/causal/discover"
	"sisyphus/internal/causal/estimate"
	"sisyphus/internal/causal/sensitivity"
	"sisyphus/internal/mathx"
)

// Refute runs the standard refutation battery against the study's Auto
// estimate: placebo treatment, random common cause, and data-subset
// stability. A sound analysis passes all three; failures localize what is
// broken (pipeline leakage, fragile adjustment, instability).
func (s *Study) Refute(seed uint64) ([]sensitivity.Refutation, error) {
	if s.frame == nil {
		return nil, errors.New("sisyphus: no data attached")
	}
	id, err := s.Identify()
	if err != nil {
		return nil, err
	}
	if len(id.AdjustmentSets) == 0 {
		return nil, errors.New("sisyphus: refuters currently require a backdoor-identifiable effect")
	}
	adjust := id.AdjustmentSets[0]
	est := func(f *data.Frame) (estimate.Estimate, error) {
		return estimate.Regression(f, s.treatment, s.outcome, adjust)
	}
	r := mathx.NewRNG(seed)
	var out []sensitivity.Refutation

	placebo, err := sensitivity.PlaceboTreatment(s.frame, s.treatment, est, r.Split(), 15)
	if err != nil {
		return nil, err
	}
	out = append(out, placebo)

	rcc, err := sensitivity.RandomCommonCause(s.frame, func(f *data.Frame, extra string) (estimate.Estimate, error) {
		a := adjust
		if extra != "" {
			a = append(append([]string(nil), adjust...), extra)
		}
		return estimate.Regression(f, s.treatment, s.outcome, a)
	}, r.Split())
	if err != nil {
		return nil, err
	}
	out = append(out, rcc)

	subset, err := sensitivity.DataSubset(s.frame, est, r.Split(), 10)
	if err != nil {
		return nil, err
	}
	out = append(out, subset)
	return out, nil
}

// SensitivityReport computes the E-value analysis for the study's Auto
// estimate: how strong an *unmeasured* confounder would have to be to
// explain the effect away — the paper's demanded honesty about what the
// adjustment could have missed.
func (s *Study) SensitivityReport() (string, error) {
	est, err := s.EstimateEffect(Auto)
	if err != nil {
		return "", err
	}
	outcome, ok := s.frame.Column(s.outcome)
	if !ok {
		return "", fmt.Errorf("sisyphus: no outcome column %q", s.outcome)
	}
	sd := mathx.Summarize(outcome).Std
	point, ci, err := sensitivity.EValueFromEstimate(est, sd)
	if err != nil {
		return "", err
	}
	var sb strings.Builder
	fmt.Fprintf(&sb, "estimate: %.4f (SE %.4f)\n", est.Effect, est.SE)
	fmt.Fprintf(&sb, "E-value (point):   %.2f\n", point)
	fmt.Fprintf(&sb, "E-value (CI edge): %.2f\n", ci)
	sb.WriteString("interpretation: an unmeasured confounder would need at least this\n")
	sb.WriteString("risk-ratio association with BOTH treatment and outcome, beyond the\n")
	sb.WriteString("measured covariates, to fully explain the estimate away.\n")
	return sb.String(), nil
}

// StructureCheck runs PC discovery on the attached data (over the graph's
// observed nodes present as columns) and compares the result with the
// assumed DAG, returning the comparison and the discovered equivalence
// class. Missing adjacencies mean the assumed edge finds no support in the
// data; extra adjacencies mean the data contain dependence the assumed
// graph does not explain (often a latent confounder).
func (s *Study) StructureCheck() (discover.CompareResult, *discover.PDAG, error) {
	if s.graph == nil {
		return discover.CompareResult{}, nil, errors.New("sisyphus: no graph")
	}
	if s.frame == nil {
		return discover.CompareResult{}, nil, errors.New("sisyphus: no data attached")
	}
	var cols []string
	for _, n := range s.graph.ObservedNodes() {
		if s.frame.Has(n) {
			cols = append(cols, n)
		}
	}
	if len(cols) < 2 {
		return discover.CompareResult{}, nil, errors.New("sisyphus: fewer than two graph nodes present in the data")
	}
	p, err := discover.PC(s.frame, cols, discover.Config{})
	if err != nil {
		return discover.CompareResult{}, nil, err
	}
	return discover.Compare(p, s.graph), p, nil
}

// observedSubgraph is a helper exposing the observed part of the study DAG;
// used by reports and tests.
func (s *Study) observedSubgraph() *dag.Graph {
	g := dag.New()
	for _, n := range s.graph.ObservedNodes() {
		g.AddNode(n)
	}
	for _, e := range s.graph.Edges() {
		if !s.graph.IsLatent(e[0]) && !s.graph.IsLatent(e[1]) {
			g.MustEdge(e[0], e[1])
		}
	}
	return g
}
