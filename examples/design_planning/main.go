// design_planning walks §4's pre-measurement checklist for a planned IXP
// study: declare the DAG and check identifiability (dagtool-style), then
// compute the design's statistical resolution — the power curve and the
// minimum detectable effect — *before* collecting a single measurement.
//
// The punchline connects back to Table 1: several of the paper's units
// moved by less than the design's minimum detectable effect, so their
// "not significant" verdicts were baked in at design time.
//
// Run with: go run ./examples/design_planning
package main

import (
	"context"
	"fmt"
	"log"

	"sisyphus/internal/causal/dag"
	"sisyphus/internal/causal/power"
	"sisyphus/internal/causal/synthetic"
	"sisyphus/internal/parallel"
)

func main() {
	// Step 1: identifiability on the planned DAG.
	g := dag.MustParse(`
		# IXP adoption study: T = IXP appears in path, L = median RTT.
		# Confounders the paper names: load, policy, infrastructure churn.
		Load -> T; Load -> L
		Policy [latent]
		Policy -> T
		Infra -> T; Infra -> L
		T -> L
	`)
	fmt.Println("planned DAG edges:", g.Edges())
	sets, err := g.MinimalAdjustmentSets("T", "L")
	if err != nil {
		fmt.Println("backdoor unavailable:", err)
	} else {
		fmt.Println("minimal adjustment sets:", sets)
	}
	fmt.Println("(synthetic control conditions on pre-trends instead of measuring Load/Infra directly)")
	fmt.Println()

	// Step 2: the design's resolution.
	design := power.SCDesign{
		Donors: 18, PrePeriods: 42, PostPeriods: 42,
		UnitNoise: 1.2, Method: synthetic.Robust,
	}
	fmt.Println("design: 18 donors, 6 weeks at 12h bins, ~1.2 ms unit noise")
	for _, eff := range []float64{0.5, 1, 2, 3} {
		p, err := design.Power(context.Background(), parallel.Default(), eff, 0.06, 80, 42)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  power to detect a %.1f ms effect: %.2f\n", eff, p)
	}
	mde, err := design.MinDetectableEffect(context.Background(), parallel.Default(), 0.06, 0.8, 8, 40, 43)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nminimum detectable effect at 80%% power: %.2f ms\n", mde)
	fmt.Println("→ effects smaller than this will read as 'not significant' regardless of reality;")
	fmt.Println("  to resolve them, add donors, lengthen the panel, or reduce per-bin noise.")
}
