// ixp_latency reruns the paper's Table 1 case study end to end: six weeks
// of user-initiated speed tests over the simulated South African Internet,
// treatment detection by matching traceroute hops against the NAPAfrica
// peering LAN, and per-⟨ASN, city⟩ robust synthetic control with placebo
// p-values. Because the substrate is a simulator, the table also shows the
// ground-truth effect from counterfactual replay — the column no real
// measurement study can have.
//
// Run with: go run ./examples/ixp_latency [-weeks 6] [-seed 42]
package main

import (
	"context"
	"flag"
	"fmt"
	"log"

	"sisyphus/internal/causal/synthetic"
	"sisyphus/internal/experiments"
	"sisyphus/internal/parallel"
)

func main() {
	var (
		weeks   = flag.Int("weeks", 6, "study length in weeks")
		join    = flag.Int("join", 3, "week at which the treated ASes join the IXP")
		seed    = flag.Uint64("seed", 42, "random seed")
		classic = flag.Bool("classic", false, "use classic instead of robust synthetic control")
		verbose = flag.Bool("v", false, "show per-unit trajectories and donor weights")
	)
	flag.Parse()

	method := synthetic.Robust
	if *classic {
		method = synthetic.Classic
	}
	res, err := experiments.RunTable1(context.Background(), parallel.Default(), experiments.Table1Config{
		Weeks: *weeks, JoinWeek: *join, Seed: *seed, Method: method, WithTruth: true,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(res.Render())
	if *verbose {
		for _, row := range res.Rows {
			if row.Detail != nil {
				fmt.Println(row.Detail.Render())
			}
		}
	}
	fmt.Println("Reading the table the way the paper does:")
	fmt.Println("  RTT Δ    — estimated change in median RTT once the IXP appears in the path")
	fmt.Println("  RMSE Ratio — post/pre synthetic-control fit error; large = the unit diverged")
	fmt.Println("  p        — placebo rank test: how unusual this divergence is among donors")
	fmt.Println("  true Δ   — simulator ground truth from replaying the same weeks without the join")
}
