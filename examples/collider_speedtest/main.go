// collider_speedtest demonstrates the paper's speed-test selection bias: in
// a world where route changes provably do NOT degrade performance, a
// dataset consisting only of user-initiated tests shows a strong (negative,
// explain-away) association between route changes and degradation — purely
// because both make users more likely to run a test.
//
// Run with: go run ./examples/collider_speedtest
package main

import (
	"context"
	"fmt"
	"log"

	"sisyphus/internal/causal/dag"
	"sisyphus/internal/experiments"
	"sisyphus/internal/parallel"
)

func main() {
	// First, the graphical warning — available before collecting anything.
	g := dag.MustParse("RouteChange -> TestRan; Degradation -> TestRan")
	fmt.Println("planning DAG:", "RouteChange -> TestRan <- Degradation")
	for _, w := range g.SelectionBiasWarnings([]string{"TestRan"}) {
		fmt.Printf("warning: conditioning on %q opens a spurious %s — %s association\n",
			w.Mid, w.Left, w.Right)
	}
	fmt.Println()

	res, err := experiments.RunCollider(context.Background(), parallel.Default(), 42, 3000)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(res.Render())
	fmt.Println("The fix (§4): tag measurements with intent, keep a scheduled baseline,")
	fmt.Println("and analyze user-initiated samples as what they are — a selected sample.")
}
