// causal_protocol runs the complete §4 workflow end to end on *simulated
// measurement data*: declare the DAG, identify, collect a campaign from the
// simulated platform, validate the graph's testable implications, estimate
// with the matching estimator, then stress the conclusion with refuters,
// an E-value sensitivity analysis, and PC structure discovery.
//
// Run with: go run ./examples/causal_protocol
package main

import (
	"fmt"
	"log"

	"sisyphus"
	"sisyphus/internal/causal/data"
	"sisyphus/internal/mathx"
	"sisyphus/internal/netsim/engine"
	"sisyphus/internal/netsim/scenario"
	"sisyphus/internal/netsim/traffic"
)

func main() {
	// ------------------------------------------------------------------
	// 1. Declare the question and the assumptions.
	// ------------------------------------------------------------------
	study := sisyphus.NewStudy("Does AS3741's egress switch to Transit-B raise its users' RTT?")
	if err := study.WithGraphText("C -> R; C -> L; R -> L"); err != nil {
		log.Fatal(err)
	}
	if err := study.Effect("R", "L"); err != nil {
		log.Fatal(err)
	}
	id, err := study.Identify()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("1. identification:", id.Strategy)

	// ------------------------------------------------------------------
	// 2. Collect: hourly observations from the simulated platform, with
	//    exogenous route tests providing overlap (a §4 knob in action).
	// ------------------------------------------------------------------
	s, err := scenario.BuildSouthAfrica()
	if err != nil {
		log.Fatal(err)
	}
	e := engine.New(s.Topo, 42, engine.Config{AdaptiveEgress: true})
	rel, err := s.Topo.Relationships()
	if err != nil {
		log.Fatal(err)
	}
	primary := rel.Links[3741][scenario.ZATransitA][0]
	crowdRNG := mathx.NewRNG(43)
	for h := 30.0; h < 1200; h += 40 + 60*crowdRNG.Float64() {
		e.Traffic.AddFlashCrowd(traffic.FlashCrowd{
			Link: primary, StartHour: h, Hours: 8 + 8*crowdRNG.Float64(), Magnitude: 0.3 + 0.2*crowdRNG.Float64(),
		})
	}
	src, err := s.Topo.FindPoP(3741, "East London")
	if err != nil {
		log.Fatal(err)
	}
	flip := mathx.NewRNG(44)
	var cCol, rCol, lCol []float64
	for e.Hour() < 1200 {
		if err := e.Step(); err != nil {
			log.Fatal(err)
		}
		// Occasionally force each route (the exogenous knob), otherwise
		// observe whatever the adaptive controller chose.
		switch {
		case flip.Bernoulli(0.2):
			e.Policy.SetLocalPref(3741, scenario.ZATransitA, 10)
			e.MarkDirty()
		case flip.Bernoulli(0.25):
			e.Policy.SetLocalPref(3741, scenario.ZATransitB, 10)
			e.MarkDirty()
		}
		perf, err := e.PerfToAS(src, scenario.BigContent)
		if err != nil {
			log.Fatal(err)
		}
		onAlt := 0.0
		for _, asn := range perf.Path.ASPath {
			if asn == scenario.ZATransitB {
				onAlt = 1
			}
		}
		cCol = append(cCol, e.Utilization(primary))
		rCol = append(rCol, onAlt)
		lCol = append(lCol, perf.RTTms)
		// Clear the one-hour forcings.
		e.Policy.ClearLocalPref(3741, scenario.ZATransitA)
		e.Policy.ClearLocalPref(3741, scenario.ZATransitB)
		e.MarkDirty()
	}
	frame, err := data.FromColumns(map[string][]float64{"C": cCol, "R": rCol, "L": lCol})
	if err != nil {
		log.Fatal(err)
	}
	study.WithData(frame)
	fmt.Printf("2. collected %d hourly observations (%.0f%% on the alternate route)\n",
		frame.Len(), 100*mathx.Mean(rCol))

	// ------------------------------------------------------------------
	// 3. Estimate + report.
	// ------------------------------------------------------------------
	est, err := study.EstimateEffect(sisyphus.Auto)
	if err != nil {
		log.Fatal(err)
	}
	lo, hi := est.CI(0.95)
	fmt.Printf("3. estimate (%s): %+.2f ms [%.2f, %.2f]\n", est.Method, est.Effect, lo, hi)

	// ------------------------------------------------------------------
	// 4. Stress the conclusion.
	// ------------------------------------------------------------------
	refs, err := study.Refute(7)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("4. refutation battery:")
	for _, r := range refs {
		fmt.Println("   ", r)
	}
	sens, err := study.SensitivityReport()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("5. sensitivity to unmeasured confounding:")
	fmt.Println(indent(sens))
	cmp, pdag, err := study.StructureCheck()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("6. structure discovery: %v (SHD vs assumed graph: %d)\n", pdag, cmp.SHD)
}

func indent(s string) string {
	out := ""
	for _, line := range splitLines(s) {
		out += "    " + line + "\n"
	}
	return out
}

func splitLines(s string) []string {
	var out []string
	cur := ""
	for _, r := range s {
		if r == '\n' {
			out = append(out, cur)
			cur = ""
			continue
		}
		cur += string(r)
	}
	if cur != "" {
		out = append(out, cur)
	}
	return out
}
