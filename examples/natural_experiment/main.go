// natural_experiment walks the §3 instrumental-variable story: unobserved
// congestion drives both route choice and latency, so OLS is biased; a
// scheduled maintenance window is a valid instrument (exogenous timing), a
// load-coupled policy flip is not (exclusion restriction fails). The DAG
// analysis flags the difference before any estimation, and 2SLS shows it
// numerically.
//
// Run with: go run ./examples/natural_experiment
package main

import (
	"context"
	"fmt"
	"log"

	"sisyphus/internal/causal/dag"
	"sisyphus/internal/experiments"
	"sisyphus/internal/parallel"
)

func main() {
	fmt.Println("Step 1 — check candidates graphically before estimating:")
	valid := dag.MustParse("U [latent]; U -> R; U -> L; Zmaint -> R; R -> L")
	fmt.Printf("  maintenance world instruments for R→L: %v\n", valid.Instruments("R", "L"))
	invalid := dag.MustParse("U [latent]; U -> R; U -> L; U -> Zload; Zload -> R; R -> L")
	fmt.Printf("  load-coupled candidate instruments:    %v\n", invalid.Instruments("R", "L"))
	for _, p := range invalid.ExclusionViolations("Zload", "R", "L") {
		fmt.Printf("  exclusion violation: %s\n", p)
	}
	fmt.Println()

	fmt.Println("Step 2 — run the measurement campaign and estimate:")
	res, err := experiments.RunInstrument(context.Background(), parallel.Default(), 42, experiments.WorldOptions{Hours: 2000})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(res.Render())
}
