// outage_postmortem replays the paper's opening war stories (the 2021
// Facebook disappearance, the 2022 Rogers misdiagnosis): an access-side
// congestion surge coincides with a content network withdrawing all of its
// uplinks, dashboards light up everywhere, and correlation points at the
// wrong layer. Counterfactual replay — removing one candidate cause at a
// time from an otherwise-identical world — settles the attribution the way
// no amount of additional monitoring could.
//
// Run with: go run ./examples/outage_postmortem
package main

import (
	"context"
	"fmt"
	"log"

	"sisyphus/internal/experiments"
	"sisyphus/internal/parallel"
)

func main() {
	fmt.Println("Simulating the incident: a demand surge AND a total route withdrawal")
	fmt.Println("land in the same half-day window. Which one took the users down?")
	fmt.Println()
	res, err := experiments.RunRootCause(context.Background(), parallel.Default(), 42, experiments.RootCauseOptions{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(res.Render())
}
