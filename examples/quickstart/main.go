// Quickstart: the causal protocol on the paper's running example.
//
// We declare the DAG (congestion C confounds route R and latency L),
// identify the effect, generate confounded observational data, and watch
// the naive estimate fail where the backdoor-adjusted one succeeds.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"sisyphus"
	"sisyphus/internal/causal/data"
	"sisyphus/internal/mathx"
)

func main() {
	study := sisyphus.NewStudy("Does a route change increase user latency?")
	if err := study.WithGraphText("C -> R; C -> L; R -> L"); err != nil {
		log.Fatal(err)
	}
	if err := study.Effect("R", "L"); err != nil {
		log.Fatal(err)
	}

	// Identification first — before any data is touched.
	id, err := study.Identify()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("backdoor paths:     ", id.BackdoorPaths)
	fmt.Println("adjustment sets:    ", id.AdjustmentSets)
	fmt.Println("recommended strategy:", id.Strategy)
	fmt.Println()

	// Generate observational data with a TRUE effect of +3 ms: congestion
	// pushes both the route decision and latency, so the naive contrast
	// will overstate the effect.
	const trueEffect = 3.0
	rng := mathx.NewRNG(42)
	n := 10000
	c := make([]float64, n)
	r := make([]float64, n)
	l := make([]float64, n)
	for i := 0; i < n; i++ {
		c[i] = rng.Normal(0, 1)
		if 0.8*c[i]+rng.Normal(0, 1) > 0 {
			r[i] = 1
		}
		l[i] = 20 + 2*c[i] + trueEffect*r[i] + rng.Normal(0, 0.5)
	}
	frame, err := data.FromColumns(map[string][]float64{"C": c, "R": r, "L": l})
	if err != nil {
		log.Fatal(err)
	}
	study.WithData(frame)

	naive, err := study.EstimateEffect(sisyphus.Naive)
	if err != nil {
		log.Fatal(err)
	}
	adjusted, err := study.EstimateEffect(sisyphus.Auto)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("true effect:        %+.2f ms\n", trueEffect)
	fmt.Printf("naive contrast:     %+.2f ms  (confounded!)\n", naive.Effect)
	fmt.Printf("backdoor adjusted:  %+.2f ms\n", adjusted.Effect)
	fmt.Println()
	fmt.Println(study.Report())
}
