# Sisyphus build/verify targets.
#
# `make verify` is the tier-1 gate: build, vet, and the full test suite
# under the race detector. The concurrency layer (internal/parallel and its
# call sites) is only considered healthy when -race passes clean; plain
# `go test ./...` cannot see scheduling bugs. The generous -timeout exists
# because the race detector runs the full E1 pipeline, the power curves, and
# the cached-suite golden replays on whatever cores CI offers — on a
# single-core box the experiments package alone is CPU-bound for >30m.

GO ?= go

.PHONY: build test vet race verify verify-cache-off verify-warm-cache verify-sweep bench bench-stages bench-forks loadtest loadtest-baseline

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race -timeout 60m ./...

verify: build vet race

# The cache-off golden check: `-cache=off` must print byte-for-byte the
# pinned seed-42 suite. The cached path is held to the same golden by the
# in-repo equivalence tests (TestSuiteCached*); this target pins the off
# switch end-to-end through the real CLI.
verify-cache-off:
	$(GO) run ./cmd/sisyphus -all -seed 42 -cache=off | cmp - internal/experiments/testdata/all_seed42.golden.txt

# The disk-tier end-to-end gate, run through one binary (one build, so the
# three runs share a binary fingerprint and a cache dir):
#   run 1 (cold)    populates the dir and must match the pinned golden;
#   run 2 (warm)    must match byte-for-byte with zero builds — everything
#                   it renders crossed the disk tier;
#   run 3 (corrupt) sees every cached file with a flipped byte and must
#                   still match, counting the corruption and rebuilding.
verify-warm-cache:
	set -eu; dir=$$(mktemp -d /tmp/sisyphus-warm-cache.XXXXXX); \
	trap 'rm -rf "$$dir"' EXIT; \
	$(GO) build -o $$dir/sisyphus ./cmd/sisyphus; \
	$$dir/sisyphus -all -seed 42 -cache-dir $$dir/cache \
		| cmp - internal/experiments/testdata/all_seed42.golden.txt; \
	$$dir/sisyphus -all -seed 42 -cache-dir $$dir/cache 2>$$dir/warm.err \
		| cmp - internal/experiments/testdata/all_seed42.golden.txt; \
	grep -q ', 0 builds,' $$dir/warm.err; \
	$(GO) run ./cmd/artcorrupt $$dir/cache/*.art; \
	$$dir/sisyphus -all -seed 42 -cache-dir $$dir/cache 2>$$dir/corrupt.err \
		| cmp - internal/experiments/testdata/all_seed42.golden.txt; \
	grep -qE ' [1-9][0-9]* corrupt' $$dir/corrupt.err

# The sweep-driver determinism gate, through the real CLI: one binary runs
# the same grid — four experiments (Table 1 plus three of the newly
# scenario-capable runners) over the canned Table 1 world plus a generated
# internet, four seeds each — at two worker widths, and the JSON reports
# must be byte-identical. Worker width is the scheduling knob most likely
# to leak into aggregation order; cmp holds the distributional report to
# exactly the same bytes regardless.
verify-sweep:
	set -eu; dir=$$(mktemp -d /tmp/sisyphus-sweep.XXXXXX); \
	trap 'rm -rf "$$dir"' EXIT; \
	$(GO) build -o $$dir/sisyphus ./cmd/sisyphus; \
	$$dir/sisyphus -sweep -experiments table1,did,exposure,rootcause \
		-scenarios 'southafrica,gen:access=10+treated=2+seed=3' \
		-seeds 1..4 -workers 1 -json >$$dir/w1.json; \
	$$dir/sisyphus -sweep -experiments table1,did,exposure,rootcause \
		-scenarios 'southafrica,gen:access=10+treated=2+seed=3' \
		-seeds 1..4 -workers 4 -json >$$dir/w4.json; \
	cmp $$dir/w1.json $$dir/w4.json

# The benchmarks backing DESIGN.md's ablation tables and CHANGES.md's
# before/after numbers. Text output streams as usual; a machine-readable
# BENCH_sisyphus.json is written alongside for CI trend tracking. Override
# BENCHTIME (e.g. BENCHTIME=1x) for a quick smoke pass.
BENCHTIME ?= 1s
bench:
	$(GO) test -bench=. -benchmem -benchtime=$(BENCHTIME) -timeout 60m . | $(GO) run ./cmd/benchjson -out BENCH_sisyphus.json

# Fold per-stage wall times from a traced suite run into the benchmark
# report: spans from `sisyphus -trace` aggregate under a "stages" key in
# BENCH_sisyphus.json, next to (and without disturbing) the micro-benchmark
# results.
TRACE ?= trace.jsonl
bench-stages:
	$(GO) run ./cmd/sisyphus -all -seed 42 -trace $(TRACE) > /dev/null
	$(GO) run ./cmd/benchjson -merge $(TRACE) -out BENCH_sisyphus.json

# The fork-benchmark regression gate: rerun just the copy-on-write fork
# benchmarks and compare ns/op against the committed BENCH_sisyphus.json.
# A cache hit's cost IS the fork cost, so a regression here silently taxes
# every cached experiment. benchjson -compare exits 1 when any benchmark
# slows by more than the threshold; added/removed benchmarks never fail.
FORK_THRESHOLD ?= 0.50
bench-forks:
	$(GO) test -run='^$$' -bench='^BenchmarkFork' -benchtime=1000x -timeout 10m . \
		| $(GO) run ./cmd/benchjson -out BENCH_forks_new.json
	$(GO) run ./cmd/benchjson -compare -threshold $(FORK_THRESHOLD) BENCH_sisyphus.json BENCH_forks_new.json

# The serving-path regression gate: drive the sisyphusd handler in-process
# with a warm store and a fixed request mix, then compare per-route
# throughput and p99 latency against the committed BENCH_sisyphus.json
# load section. benchjson -compare exits 1 when p99 rises or RPS falls by
# more than the threshold; the generous default absorbs machine-to-machine
# noise while still catching an accidental O(n) on the serving path.
# `make loadtest-baseline` reruns the driver and folds fresh numbers into
# BENCH_sisyphus.json for committing after a deliberate serving change.
LOAD_DURATION ?= 5s
LOAD_CLIENTS ?= 4
LOAD_THRESHOLD ?= 4.0
loadtest:
	$(GO) run ./cmd/loadtest -duration $(LOAD_DURATION) -clients $(LOAD_CLIENTS) -out LOAD_new.json
	rm -f BENCH_load_new.json
	$(GO) run ./cmd/benchjson -merge-load LOAD_new.json -out BENCH_load_new.json
	$(GO) run ./cmd/benchjson -compare -threshold $(LOAD_THRESHOLD) BENCH_sisyphus.json BENCH_load_new.json

loadtest-baseline:
	$(GO) run ./cmd/loadtest -duration $(LOAD_DURATION) -clients $(LOAD_CLIENTS) -out LOAD_new.json
	$(GO) run ./cmd/benchjson -merge-load LOAD_new.json -out BENCH_sisyphus.json
