# Sisyphus build/verify targets.
#
# `make verify` is the tier-1 gate: build, vet, and the full test suite
# under the race detector. The concurrency layer (internal/parallel and its
# call sites) is only considered healthy when -race passes clean; plain
# `go test ./...` cannot see scheduling bugs. The generous -timeout exists
# because the race detector runs the full E1 pipeline, the power curves, and
# the cached-suite golden replays on whatever cores CI offers — on a
# single-core box the experiments package alone is CPU-bound for >30m.

GO ?= go

.PHONY: build test vet race verify verify-cache-off bench bench-stages bench-forks

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race -timeout 60m ./...

verify: build vet race

# The cache-off golden check: `-cache=off` must print byte-for-byte the
# pinned seed-42 suite. The cached path is held to the same golden by the
# in-repo equivalence tests (TestSuiteCached*); this target pins the off
# switch end-to-end through the real CLI.
verify-cache-off:
	$(GO) run ./cmd/sisyphus -all -seed 42 -cache=off | cmp - internal/experiments/testdata/all_seed42.golden.txt

# The benchmarks backing DESIGN.md's ablation tables and CHANGES.md's
# before/after numbers. Text output streams as usual; a machine-readable
# BENCH_sisyphus.json is written alongside for CI trend tracking. Override
# BENCHTIME (e.g. BENCHTIME=1x) for a quick smoke pass.
BENCHTIME ?= 1s
bench:
	$(GO) test -bench=. -benchmem -benchtime=$(BENCHTIME) -timeout 60m . | $(GO) run ./cmd/benchjson -out BENCH_sisyphus.json

# Fold per-stage wall times from a traced suite run into the benchmark
# report: spans from `sisyphus -trace` aggregate under a "stages" key in
# BENCH_sisyphus.json, next to (and without disturbing) the micro-benchmark
# results.
TRACE ?= trace.jsonl
bench-stages:
	$(GO) run ./cmd/sisyphus -all -seed 42 -trace $(TRACE) > /dev/null
	$(GO) run ./cmd/benchjson -merge $(TRACE) -out BENCH_sisyphus.json

# The fork-benchmark regression gate: rerun just the copy-on-write fork
# benchmarks and compare ns/op against the committed BENCH_sisyphus.json.
# A cache hit's cost IS the fork cost, so a regression here silently taxes
# every cached experiment. benchjson -compare exits 1 when any benchmark
# slows by more than the threshold; added/removed benchmarks never fail.
FORK_THRESHOLD ?= 0.50
bench-forks:
	$(GO) test -run='^$$' -bench='^BenchmarkFork' -benchtime=1000x -timeout 10m . \
		| $(GO) run ./cmd/benchjson -out BENCH_forks_new.json
	$(GO) run ./cmd/benchjson -compare -threshold $(FORK_THRESHOLD) BENCH_sisyphus.json BENCH_forks_new.json
