# Sisyphus build/verify targets.
#
# `make verify` is the tier-1 gate: build, vet, and the full test suite
# under the race detector. The concurrency layer (internal/parallel and its
# call sites) is only considered healthy when -race passes clean; plain
# `go test ./...` cannot see scheduling bugs. The generous -timeout exists
# because the race detector runs the full E1 pipeline, the power curves, and
# the cached-suite golden replays on whatever cores CI offers — on a
# single-core box the experiments package alone is CPU-bound for >30m.

GO ?= go

.PHONY: build test vet race verify verify-cache-off bench bench-stages

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race -timeout 60m ./...

verify: build vet race

# The cache-off golden check: `-cache=off` must print byte-for-byte the
# pinned seed-42 suite. The cached path is held to the same golden by the
# in-repo equivalence tests (TestSuiteCached*); this target pins the off
# switch end-to-end through the real CLI.
verify-cache-off:
	$(GO) run ./cmd/sisyphus -all -seed 42 -cache=off | cmp - internal/experiments/testdata/all_seed42.golden.txt

# The benchmarks backing DESIGN.md's ablation tables and CHANGES.md's
# before/after numbers. Text output streams as usual; a machine-readable
# BENCH_sisyphus.json is written alongside for CI trend tracking. Override
# BENCHTIME (e.g. BENCHTIME=1x) for a quick smoke pass.
BENCHTIME ?= 1s
bench:
	$(GO) test -bench=. -benchmem -benchtime=$(BENCHTIME) -timeout 60m . | $(GO) run ./cmd/benchjson -out BENCH_sisyphus.json

# Fold per-stage wall times from a traced suite run into the benchmark
# report: spans from `sisyphus -trace` aggregate under a "stages" key in
# BENCH_sisyphus.json, next to (and without disturbing) the micro-benchmark
# results.
TRACE ?= trace.jsonl
bench-stages:
	$(GO) run ./cmd/sisyphus -all -seed 42 -trace $(TRACE) > /dev/null
	$(GO) run ./cmd/benchjson -merge $(TRACE) -out BENCH_sisyphus.json
