// Benchmarks regenerating every quantitative element of the paper (see
// DESIGN.md's per-experiment index) plus the design-choice ablations.
// Each Benchmark runs the full pipeline per iteration at a reduced-but-
// faithful scale; run with
//
//	go test -bench=. -benchmem
package sisyphus

import (
	"context"
	"testing"

	"sisyphus/internal/artifact"
	"sisyphus/internal/causal/synthetic"
	"sisyphus/internal/experiments"
	"sisyphus/internal/mathx"
	"sisyphus/internal/netsim/bgp"
	"sisyphus/internal/netsim/scenario"
	"sisyphus/internal/netsim/topo"
	"sisyphus/internal/parallel"
	"sisyphus/internal/platform"
	"sisyphus/internal/probe"
	"sisyphus/internal/sweep"
)

// BenchmarkTable1IXPStudy regenerates Table 1: the six-week NAPAfrica case
// study with robust synthetic control and placebo inference.
func BenchmarkTable1IXPStudy(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_, err := experiments.RunTable1(context.Background(), parallel.Pool{}, experiments.Table1Config{
			Weeks: 4, JoinWeek: 2, Seed: uint64(i), Method: synthetic.Robust,
		})
		if err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkConfounderAdjustment regenerates the §3 running example
// (naive vs stratified vs regression vs IPW vs ground truth).
func BenchmarkConfounderAdjustment(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.RunConfounding(context.Background(), parallel.Pool{}, uint64(i), experiments.WorldOptions{Hours: 400}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkColliderBias regenerates the speed-test collider box.
func BenchmarkColliderBias(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.RunCollider(context.Background(), parallel.Pool{}, uint64(i), 800); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCellularConfounding regenerates the cellular-reliability box.
func BenchmarkCellularConfounding(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.RunCellular(context.Background(), uint64(i), 10000); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkMLabRandomization regenerates the M-Lab randomization contrast.
func BenchmarkMLabRandomization(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.RunMLab(context.Background(), parallel.Pool{}, uint64(i), experiments.WorldOptions{Hours: 400}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkInstrumentalVariable regenerates the valid/invalid IV contrast.
func BenchmarkInstrumentalVariable(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.RunInstrument(context.Background(), parallel.Pool{}, uint64(i), experiments.WorldOptions{Hours: 500}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCounterfactual regenerates the abduction-vs-replay comparison.
func BenchmarkCounterfactual(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.RunCounterfactual(context.Background(), parallel.Pool{}, uint64(i), experiments.WorldOptions{Hours: 600}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkExposureVsImpact regenerates the Xaminer-box cable-cut sweep.
func BenchmarkExposureVsImpact(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.RunExposure(context.Background(), parallel.Pool{}, uint64(i), experiments.ExposureOptions{}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkIntentTagging regenerates the §4 platform-design demonstration.
func BenchmarkIntentTagging(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.RunIntent(context.Background(), parallel.Pool{}, uint64(i), 500); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAllSuite runs the full experiment suite with and without the
// artifact cache, so BENCH_sisyphus.json records the cached-vs-uncached
// delta (the shared worlds, RIBs, and campaigns are the entire difference —
// output bytes are identical, which the golden equivalence tests pin).
func BenchmarkAllSuite(b *testing.B) {
	run := func(b *testing.B, store *artifact.Store) {
		b.Helper()
		outs, err := experiments.RunAll(context.Background(), experiments.Config{
			Seed: 42, Pool: parallel.Pool{}, Artifacts: store,
		})
		if err != nil {
			b.Fatal(err)
		}
		for _, oc := range outs {
			if oc.Err != nil {
				b.Fatalf("%s: %v", oc.Exp.ID, oc.Err)
			}
		}
	}
	b.Run("uncached", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			run(b, nil)
		}
	})
	b.Run("cached", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			run(b, artifact.NewStore())
		}
	})
	// The pure hit path: one store warmed by a first run, every iteration
	// served entirely from resident artifacts through copy-on-write forks.
	// This is the serving-mode number the fork benchmarks below decompose.
	b.Run("cached-warm", func(b *testing.B) {
		store := artifact.NewStore()
		run(b, store)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			run(b, store)
		}
	})
	// The disk tier's two modes: cold write-through (build everything, plus
	// encode + fsync + rename per artifact) and warm disk-hit (a fresh
	// in-memory store each iteration, so every artifact is read, verified,
	// and decoded from disk — the cross-process restart cost).
	b.Run("disk-cold", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			run(b, diskBenchStore(b, b.TempDir()))
		}
	})
	b.Run("disk-warm", func(b *testing.B) {
		dir := b.TempDir()
		run(b, diskBenchStore(b, dir))
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			run(b, diskBenchStore(b, dir))
		}
	})
}

// BenchmarkSweepGrid runs the sweep driver over a small but real grid — the
// canned Table 1 world plus a generated internet, four seeds each — so
// BENCH_sisyphus.json records the cost of a distributional-report cell
// matrix with shared world artifacts.
func BenchmarkSweepGrid(b *testing.B) {
	genID, err := scenario.RegisterGen(func() scenario.GenSpec {
		sp := scenario.DefaultGenSpec()
		sp.Config.Access = 10
		sp.Config.Treated = 2
		sp.Seed = 3
		return sp
	}())
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < b.N; i++ {
		rep, err := sweep.Run(context.Background(), sweep.GridConfig{
			Experiments: []string{"table1"},
			Scenarios:   []string{scenario.SouthAfricaID, genID},
			Seeds:       []uint64{1, 2, 3, 4},
			Pool:        parallel.Pool{},
			Artifacts:   artifact.NewStore(),
		})
		if err != nil {
			b.Fatal(err)
		}
		if len(rep.Failures) != 0 {
			b.Fatalf("sweep cells failed: %+v", rep.Failures)
		}
	}
}

// BenchmarkSweepGridWide runs the full-breadth grid the scenario-generic
// experiment layer unlocked: Table 1 plus three of the newly
// scenario-capable runners (did, exposure, rootcause) over both worlds.
// did shares table1's campaign artifact per ⟨scenario, seed⟩, so the wide
// grid's marginal cost over BenchmarkSweepGrid is mostly the extra
// analysis — the number that justifies sweeping the widened set by default.
func BenchmarkSweepGridWide(b *testing.B) {
	genID, err := scenario.RegisterGen(func() scenario.GenSpec {
		sp := scenario.DefaultGenSpec()
		sp.Config.Access = 10
		sp.Config.Treated = 2
		sp.Seed = 3
		return sp
	}())
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < b.N; i++ {
		rep, err := sweep.Run(context.Background(), sweep.GridConfig{
			Experiments: []string{"table1", "did", "exposure", "rootcause"},
			Scenarios:   []string{scenario.SouthAfricaID, genID},
			Seeds:       []uint64{1, 2, 3, 4},
			Pool:        parallel.Pool{},
			Artifacts:   artifact.NewStore(),
		})
		if err != nil {
			b.Fatal(err)
		}
		if len(rep.Failures) != 0 {
			b.Fatalf("sweep cells failed: %+v", rep.Failures)
		}
	}
}

// diskBenchStore opens a disk-backed store on dir with a pinned fingerprint
// (so warmed dirs stay valid across `go test` recompiles) and silent logging.
func diskBenchStore(b *testing.B, dir string) *artifact.Store {
	b.Helper()
	d, err := artifact.OpenDisk(artifact.DiskConfig{
		Dir: dir, Fingerprint: "bench-fp", Log: func(string, ...any) {},
	})
	if err != nil {
		b.Fatal(err)
	}
	return artifact.NewStore(artifact.WithDisk(d))
}

// --- Fork benchmarks: the copy-on-write cache-hit primitives ---
//
// Each benchmark contrasts the frozen (copy-on-write, what every cache hit
// pays) and mutable (eager deep copy, the pre-CoW cost) fork of the same
// artifact. BENCH_sisyphus.json records both, and make bench-forks gates on
// the cow variants regressing.

// BenchmarkForkWorld forks the Table 1 scenario world.
func BenchmarkForkWorld(b *testing.B) {
	build := func(b *testing.B) *scenario.World {
		b.Helper()
		s, err := scenario.Build(scenario.SouthAfricaID)
		if err != nil {
			b.Fatal(err)
		}
		return s
	}
	frozen := build(b)
	frozen.Freeze()
	mutable := build(b)
	b.Run("cow", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			benchWorldSink = frozen.Fork()
		}
	})
	b.Run("deep", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			benchWorldSink = mutable.Fork()
		}
	})
}

// BenchmarkForkRIB forks the converged empty-policy RIB of the Table 1
// world, rebound onto a fresh topology clone (exactly the artifact store's
// fork recipe).
func BenchmarkForkRIB(b *testing.B) {
	build := func(b *testing.B) (*topo.Topology, *bgp.RIB) {
		b.Helper()
		s, err := scenario.Build(scenario.SouthAfricaID)
		if err != nil {
			b.Fatal(err)
		}
		rib, err := bgp.Compute(context.Background(), parallel.Pool{}, s.Topo, nil)
		if err != nil {
			b.Fatal(err)
		}
		return s.Topo, rib
	}
	ftp, frozen := build(b)
	ftp.Freeze()
	frozen.Freeze()
	fworld := ftp.Clone()
	mtp, mutable := build(b)
	mworld := mtp.Clone()
	b.Run("cow", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			benchRIBSink = frozen.Fork(fworld)
		}
	})
	b.Run("deep", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			benchRIBSink = mutable.Fork(mworld)
		}
	})
}

// BenchmarkForkCampaign forks a campaign-shaped artifact: the world plus a
// measurement store of campaign scale (one simulated record per ~20 minutes
// over six weeks, the Table 1 volume).
func BenchmarkForkCampaign(b *testing.B) {
	build := func(b *testing.B) (*scenario.World, *platform.Store) {
		b.Helper()
		s, err := scenario.Build(scenario.SouthAfricaID)
		if err != nil {
			b.Fatal(err)
		}
		st := platform.NewStore()
		for i := 0; i < 3000; i++ {
			m := &probe.Measurement{
				ID: i + 1, Intent: probe.IntentBaseline, Hour: float64(i) / 3,
				SrcASN: 3741, SrcCity: "Johannesburg", DstASN: 300,
				RTTms: 180, ThroughputMbps: 40,
				Hops: make([]probe.HopRecord, 6),
			}
			if err := st.Add(m); err != nil {
				b.Fatal(err)
			}
		}
		return s, st
	}
	fw, fs := build(b)
	fw.Freeze()
	fs.Freeze()
	mw, ms := build(b)
	b.Run("cow", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			benchWorldSink = fw.Fork()
			benchStoreSink = fs.Fork()
		}
	})
	b.Run("deep", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			benchWorldSink = mw.Fork()
			benchStoreSink = ms.Fork()
		}
	})
}

// Package-level sinks keep the compiler from eliding the forks.
var (
	benchWorldSink *scenario.World
	benchRIBSink   *bgp.RIB
	benchStoreSink *platform.Store
)

// --- Ablations (DESIGN.md "design choices called out for ablation") ---

func scPanel(seed uint64) *synthetic.Panel {
	r := mathx.NewRNG(seed)
	nUnits, nTimes := 15, 80
	units := make([]string, nUnits)
	times := make([]float64, nTimes)
	for i := range units {
		units[i] = string(rune('a' + i))
	}
	for t := range times {
		times[t] = float64(t)
	}
	y := mathx.NewMatrix(nUnits, nTimes)
	loads := make([]float64, nUnits)
	for i := range loads {
		loads[i] = 0.5 + r.Float64()
	}
	for t := 0; t < nTimes; t++ {
		f := 20 + 5*r.Float64()
		for i := 0; i < nUnits; i++ {
			y.Set(i, t, loads[i]*f+r.Normal(0, 2))
		}
	}
	for t := 60; t < nTimes; t++ {
		y.Set(0, t, y.At(0, t)-4)
	}
	p, err := synthetic.NewPanel(units, times, y)
	if err != nil {
		panic(err)
	}
	return p
}

// BenchmarkAblationRobustVsClassicSC compares the two synthetic-control
// variants on the same noisy panel.
func BenchmarkAblationRobustVsClassicSC(b *testing.B) {
	b.Run("classic", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			p := scPanel(uint64(i))
			if _, err := synthetic.Fit(p, "a", 60, synthetic.Config{Method: synthetic.Classic}); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("robust", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			p := scPanel(uint64(i))
			if _, err := synthetic.Fit(p, "a", 60, synthetic.Config{Method: synthetic.Robust}); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkAblationPlaceboVsTTest compares placebo inference against the
// naive pre/post t-test on the same panel.
func BenchmarkAblationPlaceboVsTTest(b *testing.B) {
	b.Run("placebo", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			p := scPanel(uint64(i))
			if _, err := synthetic.PlaceboTest(context.Background(), p, "a", 60, synthetic.Config{Method: synthetic.Robust}); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("prepost-ttest", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			p := scPanel(uint64(i))
			if _, _, err := synthetic.PrePostTTest(p, "a", 60); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkAblationAdjustmentMethods compares the backdoor estimators on an
// identical confounded sample (generated once per iteration).
func BenchmarkAblationAdjustmentMethods(b *testing.B) {
	gen := func(seed uint64) *Study {
		s := NewStudy("bench")
		if err := s.WithGraphText("C -> R; C -> L; R -> L"); err != nil {
			b.Fatal(err)
		}
		if err := s.Effect("R", "L"); err != nil {
			b.Fatal(err)
		}
		s.WithData(confoundedFrame(seed, 5000, 3))
		return s
	}
	for _, m := range []struct {
		name   string
		method EstimationMethod
	}{
		{"naive", Naive},
		{"stratified", BackdoorStratified},
		{"regression", BackdoorRegression},
		{"ipw", BackdoorIPW},
	} {
		b.Run(m.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				s := gen(uint64(i))
				if _, err := s.EstimateEffect(m.method); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblationIncrementalBGP compares full route recomputation after a
// single link failure against the incremental recompute.
func BenchmarkAblationIncrementalBGP(b *testing.B) {
	r := mathx.NewRNG(1)
	cfg := topo.GenConfig{Tier1: 4, Tier2: 10, Access: 40, Content: 5, MultihomeProb: 0.5, PeerProb: 0.3}
	tp, err := topo.Generate(r, cfg, nil)
	if err != nil {
		b.Fatal(err)
	}
	rib, err := bgp.Compute(context.Background(), parallel.Pool{}, tp, nil)
	if err != nil {
		b.Fatal(err)
	}
	links := tp.Links()
	b.Run("full", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			pol := bgp.NewPolicy()
			pol.DenyLink[links[i%len(links)].ID] = true
			if _, err := bgp.Compute(context.Background(), parallel.Pool{}, tp, pol); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("incremental", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := rib.RecomputeAfterLinkFailure(context.Background(), links[i%len(links)].ID); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// --- Microbenchmarks for the core primitives ---

func BenchmarkDSeparation(b *testing.B) {
	r := mathx.NewRNG(3)
	g := randomBenchDAG(r, 12, 0.3)
	nodes := g.Nodes()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		x := nodes[i%len(nodes)]
		y := nodes[(i+5)%len(nodes)]
		g.DSeparated(x, y, nodes[:2])
	}
}

func BenchmarkBGPFullCompute(b *testing.B) {
	r := mathx.NewRNG(4)
	tp, err := topo.Generate(r, topo.DefaultGenConfig(), nil)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := bgp.Compute(context.Background(), parallel.Pool{}, tp, nil); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSVD(b *testing.B) {
	r := mathx.NewRNG(5)
	m := mathx.NewMatrix(40, 20)
	for i := range m.Data {
		m.Data[i] = r.Normal(0, 1)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		mathx.ComputeSVD(m)
	}
}

// BenchmarkRootCauseReplay regenerates the §1 postmortem (three replayed
// worlds per iteration).
func BenchmarkRootCauseReplay(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.RunRootCause(context.Background(), parallel.Pool{}, uint64(i), experiments.RootCauseOptions{}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFamilyToggleIV regenerates the §4 IPv4/IPv6 knob experiment.
func BenchmarkFamilyToggleIV(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.RunFamilyKnob(context.Background(), parallel.Pool{}, uint64(i), experiments.WorldOptions{Hours: 400}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkDiDvsSC regenerates the DiD-vs-synthetic-control contrast.
func BenchmarkDiDvsSC(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.RunDiD(context.Background(), parallel.Pool{}, uint64(i), experiments.DiDOptions{}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPowerAnalysis regenerates the §4 design-planning power curve.
func BenchmarkPowerAnalysis(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.RunPower(context.Background(), parallel.Pool{}, uint64(i), 20); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTromboneEraContrast regenerates the two-era comparison.
func BenchmarkTromboneEraContrast(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.RunTromboneEra(context.Background(), parallel.Pool{}, uint64(i)); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Disk-tier codec benchmarks: the per-kind encode/decode costs that a
// write-through (encode) and a warm start (decode) pay per artifact. The
// decode side includes full validation and index rebuilding — the price of
// the "never serve unverified values" invariant.

func BenchmarkDiskCodecWorld(b *testing.B) {
	s, err := scenario.Build(scenario.SouthAfricaID)
	if err != nil {
		b.Fatal(err)
	}
	data, err := experiments.EncodeWorldArtifact(s)
	if err != nil {
		b.Fatal(err)
	}
	b.Run("encode", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if benchBytesSink, err = experiments.EncodeWorldArtifact(s); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("decode", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if benchWorldSink, err = experiments.DecodeWorldArtifact(data); err != nil {
				b.Fatal(err)
			}
		}
	})
}

func BenchmarkDiskCodecRIB(b *testing.B) {
	pool := parallel.Pool{}
	s, err := scenario.Build(scenario.SouthAfricaID)
	if err != nil {
		b.Fatal(err)
	}
	rib, err := bgp.Compute(context.Background(), pool, s.Topo, nil)
	if err != nil {
		b.Fatal(err)
	}
	data, err := experiments.EncodeRIBArtifact(rib)
	if err != nil {
		b.Fatal(err)
	}
	b.Run("encode", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if benchBytesSink, err = experiments.EncodeRIBArtifact(rib); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("decode", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if benchRIBSink, err = experiments.DecodeRIBArtifact(data, s.Topo, pool); err != nil {
				b.Fatal(err)
			}
		}
	})
}

func BenchmarkDiskCodecCampaign(b *testing.B) {
	// The same synthetic 3000-measurement campaign BenchmarkForkCampaign
	// forks, so the codec and fork numbers decompose the same artifact.
	s, err := scenario.Build(scenario.SouthAfricaID)
	if err != nil {
		b.Fatal(err)
	}
	st := platform.NewStore()
	for i := 0; i < 3000; i++ {
		m := &probe.Measurement{
			ID: i + 1, Intent: probe.IntentBaseline, Hour: float64(i) / 3,
			SrcASN: 3741, SrcCity: "Johannesburg", DstASN: 300,
			RTTms: 180, ThroughputMbps: 40,
			Hops: make([]probe.HopRecord, 6),
		}
		if err := st.Add(m); err != nil {
			b.Fatal(err)
		}
	}
	data, err := experiments.EncodeCampaignArtifact(s, st)
	if err != nil {
		b.Fatal(err)
	}
	b.Run("encode", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if benchBytesSink, err = experiments.EncodeCampaignArtifact(s, st); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("decode", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if benchWorldSink, benchStoreSink, err = experiments.DecodeCampaignArtifact(data); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// benchBytesSink keeps the compiler from eliding encodes.
var benchBytesSink []byte
