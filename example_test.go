package sisyphus_test

import (
	"fmt"

	"sisyphus"
	"sisyphus/internal/causal/data"
	"sisyphus/internal/mathx"
)

// The full causal protocol on the paper's running example: declare the
// graph, identify the strategy, then let the Study refuse the naive answer
// and produce the adjusted one.
func Example() {
	study := sisyphus.NewStudy("Does a route change increase user latency?")
	_ = study.WithGraphText("C -> R; C -> L; R -> L")
	_ = study.Effect("R", "L")

	id, _ := study.Identify()
	fmt.Println("strategy:", id.Strategy)

	// Synthetic confounded data with a true effect of exactly +3 ms.
	rng := mathx.NewRNG(1)
	n := 20000
	c := make([]float64, n)
	r := make([]float64, n)
	l := make([]float64, n)
	for i := 0; i < n; i++ {
		c[i] = rng.Normal(0, 1)
		if 0.8*c[i]+rng.Normal(0, 1) > 0 {
			r[i] = 1
		}
		l[i] = 20 + 2*c[i] + 3*r[i] + rng.Normal(0, 0.5)
	}
	frame, _ := data.FromColumns(map[string][]float64{"C": c, "R": r, "L": l})
	study.WithData(frame)

	naive, _ := study.EstimateEffect(sisyphus.Naive)
	adjusted, _ := study.EstimateEffect(sisyphus.Auto)
	fmt.Printf("naive:    %.1f ms (confounded)\n", naive.Effect)
	fmt.Printf("adjusted: %.1f ms\n", adjusted.Effect)
	// Output:
	// strategy: backdoor adjustment for [C]
	// naive:    5.0 ms (confounded)
	// adjusted: 3.0 ms
}

// An unidentifiable effect: the Study names the problem and the way out.
func ExampleStudy_Identify() {
	study := sisyphus.NewStudy("latent confounding only")
	_ = study.WithGraphText("U [latent]; U -> R; U -> L; R -> L")
	_ = study.Effect("R", "L")
	id, _ := study.Identify()
	fmt.Println("identifiable:", id.Identifiable)
	fmt.Println(id.Strategy)
	// Output:
	// identifiable: false
	// not identifiable from observational data: design an intervention (randomize, or use a platform knob)
}
