module sisyphus

go 1.22
