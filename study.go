// Package sisyphus is the public face of the repository: a causal-inference
// toolkit for Internet measurement, reproducing "The Internet as Sisyphus:
// Repeating Measurements, Missing Causes" (HotNets '25).
//
// The central type is Study, which walks the causal protocol the paper's §4
// proposes for measurement campaigns:
//
//  1. state the question and the causal graph (assumptions made explicit);
//  2. identify — find confounders, adjustment sets, instruments, and the
//     colliders that conditioning would open;
//  3. design — see what must be measured or randomized for the effect to be
//     identifiable;
//  4. validate — test the DAG's implied conditional independencies on data;
//  5. estimate — run the matching estimator and report uncertainty.
//
// The heavy lifting lives in the internal packages (internal/causal/... for
// the statistics, internal/netsim/... for the simulated Internet and
// internal/platform for the measurement infrastructure); Study stitches
// them into the workflow a measurement researcher follows.
package sisyphus

import (
	"errors"
	"fmt"
	"strings"

	"sisyphus/internal/causal/dag"
	"sisyphus/internal/causal/data"
	"sisyphus/internal/causal/estimate"
)

// Study is one causal measurement study in progress.
type Study struct {
	Question  string
	graph     *dag.Graph
	treatment string
	outcome   string
	frame     *data.Frame
}

// NewStudy starts a study for the given question.
func NewStudy(question string) *Study {
	return &Study{Question: question}
}

// WithGraphText parses the causal DAG from the compact text syntax
// ("C -> R; C -> L; R -> L; U [latent]").
func (s *Study) WithGraphText(text string) error {
	g, err := dag.Parse(text)
	if err != nil {
		return err
	}
	s.graph = g
	return nil
}

// WithGraph installs an existing DAG.
func (s *Study) WithGraph(g *dag.Graph) { s.graph = g }

// Graph returns the study's DAG (nil until set).
func (s *Study) Graph() *dag.Graph { return s.graph }

// Effect declares the causal effect of interest.
func (s *Study) Effect(treatment, outcome string) error {
	if s.graph == nil {
		return errors.New("sisyphus: set the causal graph before the effect")
	}
	if !s.graph.Has(treatment) || !s.graph.Has(outcome) {
		return fmt.Errorf("sisyphus: effect (%q → %q) references nodes outside the graph", treatment, outcome)
	}
	s.treatment, s.outcome = treatment, outcome
	return nil
}

// WithData attaches observational data whose columns are named after graph
// nodes.
func (s *Study) WithData(f *data.Frame) { s.frame = f }

// Identification is the output of the identify step.
type Identification struct {
	Treatment, Outcome string
	// BackdoorPaths are the confounding routes that must be blocked.
	BackdoorPaths []string
	// Confounders are observed variables on backdoor paths.
	Confounders []string
	// AdjustmentSets are the minimal observed backdoor adjustment sets
	// (empty inner set = no adjustment needed). Nil when not identifiable
	// by observed adjustment.
	AdjustmentSets [][]string
	// Instruments lists valid observed instrumental variables.
	Instruments []string
	// FrontdoorMediators holds a mediator set satisfying the frontdoor
	// criterion, if any single observed node qualifies.
	FrontdoorMediators []string
	// ColliderWarnings are colliders that conditioning on common selection
	// variables (any descendant of both treatment and outcome) would open.
	ColliderWarnings []string
	// Identifiable reports whether any strategy above applies.
	Identifiable bool
	// Strategy is the recommended estimation approach.
	Strategy string
}

// Identify runs the graphical analysis for the declared effect.
func (s *Study) Identify() (*Identification, error) {
	if s.graph == nil || s.treatment == "" {
		return nil, errors.New("sisyphus: Identify requires a graph and a declared effect")
	}
	id := &Identification{Treatment: s.treatment, Outcome: s.outcome}
	for _, p := range s.graph.BackdoorPaths(s.treatment, s.outcome) {
		id.BackdoorPaths = append(id.BackdoorPaths, p.String())
	}
	id.Confounders = s.graph.Confounders(s.treatment, s.outcome)

	if sets, err := s.graph.MinimalAdjustmentSets(s.treatment, s.outcome); err == nil {
		id.AdjustmentSets = sets
	}
	id.Instruments = s.graph.Instruments(s.treatment, s.outcome)
	for _, m := range s.graph.ObservedNodes() {
		if m == s.treatment || m == s.outcome {
			continue
		}
		if s.graph.SatisfiesFrontdoor(s.treatment, s.outcome, []string{m}) {
			id.FrontdoorMediators = append(id.FrontdoorMediators, m)
		}
	}
	// Collider warnings: conditioning (selecting) on any common descendant
	// of treatment and outcome — e.g. "a speed test ran" — biases the
	// estimate even when the two are directly related, because it mixes a
	// non-causal selection component into the observed association.
	tDesc := map[string]bool{}
	for _, d := range s.graph.Descendants(s.treatment) {
		tDesc[d] = true
	}
	for _, d := range s.graph.Descendants(s.outcome) {
		if tDesc[d] {
			id.ColliderWarnings = append(id.ColliderWarnings,
				fmt.Sprintf("conditioning on %q (a descendant of both %s and %s) induces selection bias",
					d, s.treatment, s.outcome))
		}
	}

	switch {
	case len(id.AdjustmentSets) > 0 && len(id.AdjustmentSets[0]) == 0:
		id.Identifiable = true
		id.Strategy = "no confounding: a simple contrast identifies the effect"
	case len(id.AdjustmentSets) > 0:
		id.Identifiable = true
		id.Strategy = fmt.Sprintf("backdoor adjustment for %v", id.AdjustmentSets[0])
	case len(id.Instruments) > 0:
		id.Identifiable = true
		id.Strategy = fmt.Sprintf("instrumental variable via %v (2SLS)", id.Instruments)
	case len(id.FrontdoorMediators) > 0:
		id.Identifiable = true
		id.Strategy = fmt.Sprintf("frontdoor adjustment through %v", id.FrontdoorMediators)
	default:
		id.Strategy = "not identifiable from observational data: design an intervention (randomize, or use a platform knob)"
	}
	return id, nil
}

// ValidateImplications tests every conditional independence the DAG implies
// among observed variables against the attached data.
func (s *Study) ValidateImplications() ([]estimate.CITestResult, error) {
	if s.graph == nil {
		return nil, errors.New("sisyphus: no graph")
	}
	if s.frame == nil {
		return nil, errors.New("sisyphus: no data attached")
	}
	var out []estimate.CITestResult
	for _, ci := range s.graph.ImpliedIndependencies() {
		if !s.frame.Has(ci.X) || !s.frame.Has(ci.Y) {
			continue
		}
		ok := true
		for _, g := range ci.Given {
			if !s.frame.Has(g) {
				ok = false
			}
		}
		if !ok {
			continue
		}
		res, err := estimate.CITest(s.frame, ci.X, ci.Y, ci.Given)
		if err != nil {
			return nil, err
		}
		out = append(out, res)
	}
	return out, nil
}

// EstimationMethod selects the estimator for EstimateEffect.
type EstimationMethod int

const (
	// Auto picks by the identification strategy.
	Auto EstimationMethod = iota
	// Naive runs the unadjusted contrast (for comparison, not inference).
	Naive
	// BackdoorStratified stratifies on the first minimal adjustment set.
	BackdoorStratified
	// BackdoorRegression adjusts by OLS on the first minimal set.
	BackdoorRegression
	// BackdoorIPW weights by inverse propensity on the first minimal set.
	BackdoorIPW
	// IV2SLS uses the first available instrument.
	IV2SLS
)

// EstimateEffect estimates the declared effect from the attached data.
func (s *Study) EstimateEffect(method EstimationMethod) (estimate.Estimate, error) {
	if s.frame == nil {
		return estimate.Estimate{}, errors.New("sisyphus: no data attached")
	}
	id, err := s.Identify()
	if err != nil {
		return estimate.Estimate{}, err
	}
	adjust := func() ([]string, error) {
		if len(id.AdjustmentSets) == 0 {
			return nil, errors.New("sisyphus: no observed backdoor adjustment set exists")
		}
		return id.AdjustmentSets[0], nil
	}
	switch method {
	case Naive:
		return estimate.NaiveAssociation(s.frame, s.treatment, s.outcome)
	case BackdoorStratified:
		set, err := adjust()
		if err != nil {
			return estimate.Estimate{}, err
		}
		return estimate.Stratified(s.frame, s.treatment, s.outcome, set, 10)
	case BackdoorRegression:
		set, err := adjust()
		if err != nil {
			return estimate.Estimate{}, err
		}
		return estimate.Regression(s.frame, s.treatment, s.outcome, set)
	case BackdoorIPW:
		set, err := adjust()
		if err != nil {
			return estimate.Estimate{}, err
		}
		return estimate.IPW(s.frame, s.treatment, s.outcome, set, 0.01)
	case IV2SLS:
		if len(id.Instruments) == 0 {
			return estimate.Estimate{}, errors.New("sisyphus: no valid instrument in the graph")
		}
		res, err := estimate.TwoSLS(s.frame, s.treatment, s.outcome, id.Instruments[:1], nil)
		if err != nil {
			return estimate.Estimate{}, err
		}
		return res.Estimate, nil
	case Auto:
		switch {
		case len(id.AdjustmentSets) > 0:
			return s.EstimateEffect(BackdoorRegression)
		case len(id.Instruments) > 0:
			return s.EstimateEffect(IV2SLS)
		default:
			return estimate.Estimate{}, errors.New("sisyphus: effect is not identifiable from this data; " + id.Strategy)
		}
	default:
		return estimate.Estimate{}, fmt.Errorf("sisyphus: unknown estimation method %d", method)
	}
}

// Report renders the full causal-protocol report: question, assumptions,
// identification, validation (if data attached), and — when possible — the
// estimate.
func (s *Study) Report() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "Causal study: %s\n", s.Question)
	if s.graph == nil {
		sb.WriteString("  (no causal graph declared)\n")
		return sb.String()
	}
	fmt.Fprintf(&sb, "\nAssumed graph:\n")
	for _, e := range s.graph.Edges() {
		fmt.Fprintf(&sb, "  %s -> %s\n", e[0], e[1])
	}
	for _, n := range s.graph.Nodes() {
		if s.graph.IsLatent(n) {
			fmt.Fprintf(&sb, "  %s [latent]\n", n)
		}
	}
	if s.treatment == "" {
		sb.WriteString("\n(no effect declared)\n")
		return sb.String()
	}
	id, err := s.Identify()
	if err != nil {
		fmt.Fprintf(&sb, "\nidentification error: %v\n", err)
		return sb.String()
	}
	fmt.Fprintf(&sb, "\nEffect of interest: %s → %s\n", id.Treatment, id.Outcome)
	fmt.Fprintf(&sb, "Backdoor paths: %v\n", id.BackdoorPaths)
	fmt.Fprintf(&sb, "Observed confounders: %v\n", id.Confounders)
	fmt.Fprintf(&sb, "Minimal adjustment sets: %v\n", id.AdjustmentSets)
	fmt.Fprintf(&sb, "Instruments: %v\n", id.Instruments)
	if len(id.FrontdoorMediators) > 0 {
		fmt.Fprintf(&sb, "Frontdoor mediators: %v\n", id.FrontdoorMediators)
	}
	for _, w := range id.ColliderWarnings {
		fmt.Fprintf(&sb, "WARNING: %s\n", w)
	}
	fmt.Fprintf(&sb, "Strategy: %s\n", id.Strategy)

	if s.frame != nil {
		if checks, err := s.ValidateImplications(); err == nil && len(checks) > 0 {
			sb.WriteString("\nTestable implications vs data:\n")
			for _, c := range checks {
				fmt.Fprintf(&sb, "  %s\n", c)
			}
		}
		if est, err := s.EstimateEffect(Auto); err == nil {
			lo, hi := est.CI(0.95)
			fmt.Fprintf(&sb, "\nEstimate (%s): %.4f  [95%% CI %.4f, %.4f]  p=%.4f  n=%d\n",
				est.Method, est.Effect, lo, hi, est.PValue(), est.N)
		} else {
			fmt.Fprintf(&sb, "\nEstimate unavailable: %v\n", err)
		}
	}
	return sb.String()
}
