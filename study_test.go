package sisyphus

import (
	"math"
	"strings"
	"testing"

	"sisyphus/internal/causal/data"
	"sisyphus/internal/mathx"
)

// confoundedFrame builds the running example with a binary route change.
func confoundedFrame(seed uint64, n int, effect float64) *data.Frame {
	r := mathx.NewRNG(seed)
	c := make([]float64, n)
	tr := make([]float64, n)
	l := make([]float64, n)
	for i := 0; i < n; i++ {
		c[i] = r.Normal(0, 1)
		if 0.8*c[i]+r.Normal(0, 1) > 0 {
			tr[i] = 1
		}
		l[i] = 10 + 2*c[i] + effect*tr[i] + r.Normal(0, 0.5)
	}
	f, err := data.FromColumns(map[string][]float64{"C": c, "R": tr, "L": l})
	if err != nil {
		panic(err)
	}
	return f
}

func TestStudyFullProtocol(t *testing.T) {
	s := NewStudy("Does a route change increase user latency?")
	if err := s.WithGraphText("C -> R; C -> L; R -> L"); err != nil {
		t.Fatal(err)
	}
	if err := s.Effect("R", "L"); err != nil {
		t.Fatal(err)
	}
	id, err := s.Identify()
	if err != nil {
		t.Fatal(err)
	}
	if !id.Identifiable {
		t.Fatal("running example should be identifiable")
	}
	if len(id.AdjustmentSets) != 1 || id.AdjustmentSets[0][0] != "C" {
		t.Fatalf("adjustment sets = %v", id.AdjustmentSets)
	}
	if !strings.Contains(id.Strategy, "backdoor") {
		t.Fatalf("strategy = %q", id.Strategy)
	}

	s.WithData(confoundedFrame(1, 8000, 3))
	naive, err := s.EstimateEffect(Naive)
	if err != nil {
		t.Fatal(err)
	}
	if naive.Effect < 4 {
		t.Fatalf("naive should be confounded upward: %v", naive.Effect)
	}
	for _, m := range []EstimationMethod{BackdoorStratified, BackdoorRegression, BackdoorIPW, Auto} {
		est, err := s.EstimateEffect(m)
		if err != nil {
			t.Fatalf("method %d: %v", m, err)
		}
		if math.Abs(est.Effect-3) > 0.5 {
			t.Fatalf("method %d: effect = %v want ≈3", m, est.Effect)
		}
	}

	rep := s.Report()
	for _, want := range []string{"route change", "R <- C -> L", "Strategy", "Estimate"} {
		if !strings.Contains(rep, want) {
			t.Fatalf("report missing %q:\n%s", want, rep)
		}
	}
}

func TestStudyIVPath(t *testing.T) {
	// Latent confounder: backdoor unavailable, instrument Z available.
	r := mathx.NewRNG(2)
	n := 10000
	z := make([]float64, n)
	tr := make([]float64, n)
	l := make([]float64, n)
	for i := 0; i < n; i++ {
		u := r.Normal(0, 1)
		if r.Bernoulli(0.5) {
			z[i] = 1
		}
		tr[i] = 0.9*z[i] + u + r.Normal(0, 0.3)
		l[i] = 4 + 1.5*tr[i] + 2*u + r.Normal(0, 0.3)
	}
	f, _ := data.FromColumns(map[string][]float64{"Z": z, "R": tr, "L": l})

	s := NewStudy("maintenance as instrument")
	if err := s.WithGraphText("U [latent]; U -> R; U -> L; Z -> R; R -> L"); err != nil {
		t.Fatal(err)
	}
	if err := s.Effect("R", "L"); err != nil {
		t.Fatal(err)
	}
	id, err := s.Identify()
	if err != nil {
		t.Fatal(err)
	}
	if len(id.AdjustmentSets) != 0 {
		t.Fatalf("latent confounder should block backdoor: %v", id.AdjustmentSets)
	}
	if len(id.Instruments) != 1 || id.Instruments[0] != "Z" {
		t.Fatalf("instruments = %v", id.Instruments)
	}
	s.WithData(f)
	est, err := s.EstimateEffect(Auto)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(est.Effect-1.5) > 0.2 {
		t.Fatalf("IV estimate = %v want ≈1.5", est.Effect)
	}
}

func TestStudyNotIdentifiable(t *testing.T) {
	s := NewStudy("pure latent confounding")
	if err := s.WithGraphText("U [latent]; U -> R; U -> L; R -> L"); err != nil {
		t.Fatal(err)
	}
	if err := s.Effect("R", "L"); err != nil {
		t.Fatal(err)
	}
	id, err := s.Identify()
	if err != nil {
		t.Fatal(err)
	}
	if id.Identifiable {
		t.Fatal("should not be identifiable")
	}
	if !strings.Contains(id.Strategy, "intervention") {
		t.Fatalf("strategy = %q", id.Strategy)
	}
	s.WithData(confoundedFrame(3, 200, 1))
	if _, err := s.EstimateEffect(Auto); err == nil {
		t.Fatal("Auto should refuse unidentifiable effects")
	}
}

func TestStudyColliderWarning(t *testing.T) {
	s := NewStudy("speed-test selection")
	if err := s.WithGraphText("C -> R; C -> L; R -> L; R -> T; L -> T"); err != nil {
		t.Fatal(err)
	}
	if err := s.Effect("R", "L"); err != nil {
		t.Fatal(err)
	}
	id, err := s.Identify()
	if err != nil {
		t.Fatal(err)
	}
	if len(id.ColliderWarnings) == 0 {
		t.Fatal("expected a collider warning about conditioning on T")
	}
	if !strings.Contains(id.ColliderWarnings[0], `"T"`) {
		t.Fatalf("warning = %v", id.ColliderWarnings)
	}
}

func TestStudyValidateImplications(t *testing.T) {
	// True model: C -> R, C -> L, R -> L. Implication of the *wrong* graph
	// "C -> R; C -> L" (no R->L edge): R ⊥ L | C — should be rejected when
	// the R → L effect exists.
	s := NewStudy("model check")
	if err := s.WithGraphText("C -> R; C -> L"); err != nil {
		t.Fatal(err)
	}
	s.WithData(confoundedFrame(4, 6000, 3))
	checks, err := s.ValidateImplications()
	if err != nil {
		t.Fatal(err)
	}
	if len(checks) != 1 {
		t.Fatalf("checks = %v", checks)
	}
	if checks[0].Consistent {
		t.Fatalf("wrong graph's implication should be rejected: %v", checks[0])
	}
	// The right graph has no implications among observed nodes (complete).
	s2 := NewStudy("right graph")
	_ = s2.WithGraphText("C -> R; C -> L; R -> L")
	s2.WithData(confoundedFrame(5, 6000, 3))
	checks2, err := s2.ValidateImplications()
	if err != nil {
		t.Fatal(err)
	}
	if len(checks2) != 0 {
		t.Fatalf("complete graph should imply nothing: %v", checks2)
	}
	// A graph with a TRUE implication: generate data with no R -> L.
	s3 := NewStudy("null effect")
	_ = s3.WithGraphText("C -> R; C -> L")
	s3.WithData(confoundedFrame(6, 6000, 0))
	checks3, err := s3.ValidateImplications()
	if err != nil {
		t.Fatal(err)
	}
	if len(checks3) != 1 || !checks3[0].Consistent {
		t.Fatalf("true implication rejected: %v", checks3)
	}
}

func TestStudyErrorsAndGuards(t *testing.T) {
	s := NewStudy("empty")
	if _, err := s.Identify(); err == nil {
		t.Fatal("identify without graph accepted")
	}
	if err := s.Effect("A", "B"); err == nil {
		t.Fatal("effect without graph accepted")
	}
	if err := s.WithGraphText("A -> B"); err != nil {
		t.Fatal(err)
	}
	if err := s.Effect("A", "Z"); err == nil {
		t.Fatal("unknown outcome accepted")
	}
	if err := s.WithGraphText("A -> -> B"); err == nil {
		t.Fatal("bad graph text accepted")
	}
	if _, err := s.ValidateImplications(); err == nil {
		t.Fatal("validate without data accepted")
	}
	if _, err := s.EstimateEffect(Naive); err == nil {
		t.Fatal("estimate without data accepted")
	}
	rep := s.Report()
	if !strings.Contains(rep, "no effect declared") {
		t.Fatalf("report = %q", rep)
	}
}

func TestCITestKnownCases(t *testing.T) {
	f := confoundedFrame(7, 5000, 0) // no direct R -> L effect
	// R ⊥ L | C should hold.
	s := NewStudy("x")
	_ = s
	res, err := ciHelper(f, "R", "L", []string{"C"})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Consistent {
		t.Fatalf("true CI rejected: %v", res)
	}
	// R ⊥ L unconditionally should fail (confounded).
	res2, err := ciHelper(f, "R", "L", nil)
	if err != nil {
		t.Fatal(err)
	}
	if res2.Consistent {
		t.Fatalf("confounded marginal independence accepted: %v", res2)
	}
}
