// Command dagtool analyzes a causal DAG the way §4 recommends doing before
// any measurement: it prints backdoor paths, minimal adjustment sets,
// instruments, colliders, testable implications, and Graphviz output.
//
// Usage:
//
//	dagtool -graph 'C -> R; C -> L; R -> L' -effect R,L
//	dagtool -graph 'U [latent]; U -> R; U -> L; Z -> R; R -> L' -effect R,L -dot
//	echo 'C -> R -> L; C -> L' | dagtool -effect R,L
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"sisyphus/internal/causal/dag"
)

func main() {
	var (
		graphText = flag.String("graph", "", "DAG in text syntax (reads stdin if empty)")
		effect    = flag.String("effect", "", "treatment,outcome pair")
		dot       = flag.Bool("dot", false, "print Graphviz DOT and exit")
		blanket   = flag.String("markov-blanket", "", "print the Markov blanket of a node")
	)
	flag.Parse()

	text := *graphText
	if text == "" {
		b, err := io.ReadAll(os.Stdin)
		if err != nil {
			fmt.Fprintln(os.Stderr, "dagtool:", err)
			os.Exit(1)
		}
		text = string(b)
	}
	g, err := dag.Parse(text)
	if err != nil {
		fmt.Fprintln(os.Stderr, "dagtool:", err)
		os.Exit(1)
	}
	if *dot {
		fmt.Print(g.DOT())
		return
	}

	fmt.Printf("nodes: %v\n", g.Nodes())
	fmt.Printf("edges: %v\n", g.Edges())
	if cis := g.ImpliedIndependencies(); len(cis) > 0 {
		fmt.Println("testable implications:")
		for _, ci := range cis {
			fmt.Printf("  %s\n", ci)
		}
	}
	if cols := g.Colliders(); len(cols) > 0 {
		fmt.Println("colliders (do not condition on these without care):")
		for _, c := range cols {
			fmt.Printf("  %s -> %s <- %s\n", c.Left, c.Mid, c.Right)
		}
	}

	if *blanket != "" {
		fmt.Printf("markov blanket of %s: %v\n", *blanket, g.MarkovBlanket(*blanket))
	}
	if *effect == "" {
		return
	}
	parts := strings.Split(*effect, ",")
	if len(parts) != 2 {
		fmt.Fprintln(os.Stderr, "dagtool: -effect wants 'treatment,outcome'")
		os.Exit(2)
	}
	x, y := strings.TrimSpace(parts[0]), strings.TrimSpace(parts[1])
	fmt.Printf("\neffect: %s -> %s\n", x, y)
	fmt.Println("backdoor paths:")
	for _, p := range g.BackdoorPaths(x, y) {
		fmt.Printf("  %s\n", p)
	}
	if sets, err := g.MinimalAdjustmentSets(x, y); err == nil {
		fmt.Printf("minimal adjustment sets: %v\n", sets)
	} else {
		fmt.Printf("backdoor adjustment unavailable: %v\n", err)
	}
	if ivs := g.Instruments(x, y); len(ivs) > 0 {
		fmt.Printf("instruments: %v\n", ivs)
	} else {
		fmt.Println("instruments: none")
	}
	// Frontdoor options when backdoor fails: single observed mediators.
	var mediators []string
	for _, m := range g.ObservedNodes() {
		if m == x || m == y {
			continue
		}
		if g.SatisfiesFrontdoor(x, y, []string{m}) {
			mediators = append(mediators, m)
		}
	}
	if len(mediators) > 0 {
		fmt.Printf("frontdoor mediators: %v\n", mediators)
	}
}
