// Command loadtest drives the sisyphusd serving path in-process and emits
// per-route throughput and latency quantiles as JSON. It exists so
// `make loadtest` can gate serving-layer changes on a committed baseline
// (via `benchjson -compare`) without standing up a network topology: the
// server under test is the real serve.Server handler mounted on an
// httptest listener, the clients are real HTTP clients, and the store is
// warmed first so the numbers measure the serving path — routing, cache
// lookup, response copy — not simulation time.
//
// Usage:
//
//	go run ./cmd/loadtest -duration 5s -clients 4 -out load.json
//	go run ./cmd/benchjson -merge-load load.json -out BENCH_sisyphus.json
//
// The request mix is fixed: three cached experiment documents of different
// sizes plus one causal query. Each worker walks the mix round-robin from
// a shared counter, so the class ratio is stable regardless of client
// count or scheduling.
package main

import (
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"sisyphus/internal/artifact"
	"sisyphus/internal/parallel"
	"sisyphus/internal/serve"
)

// loadRow is one emitted request-class row. The JSON shape matches
// benchjson's LoadResult so -merge-load can fold the file straight into
// BENCH_sisyphus.json.
type loadRow struct {
	Name     string  `json:"name"`
	Requests int64   `json:"requests"`
	Errors   int64   `json:"errors,omitempty"`
	RPS      float64 `json:"rps"`
	P50Ms    float64 `json:"p50_ms"`
	P99Ms    float64 `json:"p99_ms"`
}

// reqClass is one request shape in the fixed mix.
type reqClass struct {
	name   string
	method string
	path   string
	body   string
}

// defaultMix covers the serving surface: a small, a medium and a large
// cached experiment document, plus the query endpoint (decode + compile +
// cached response). Seeds are fixed so the warm phase populates every key
// the measured phase will hit.
func defaultMix() []reqClass {
	return []reqClass{
		{"experiment/mlab", http.MethodGet, "/experiment/mlab?seed=42", ""},
		{"experiment/collider", http.MethodGet, "/experiment/collider?seed=42", ""},
		{"experiment/table1", http.MethodGet, "/experiment/table1?seed=42", ""},
		{"query", http.MethodPost, "/query", `{"treatment":"R","outcome":"L","hours":120,"seed":42}`},
	}
}

type loadConfig struct {
	duration time.Duration
	clients  int
	out      string
}

func validateLoadFlags(cfg loadConfig) error {
	if cfg.duration <= 0 {
		return errors.New("-duration must be positive")
	}
	if cfg.clients < 1 {
		return errors.New("-clients must be at least 1")
	}
	if cfg.out == "" {
		return errors.New("-out must not be empty")
	}
	return nil
}

// sample is one completed request: which class, how long, whether it failed.
type sample struct {
	class int
	durMs float64
	err   bool
}

// runLoad warms the store with one request per mix class, then runs
// cfg.clients workers for cfg.duration against the in-process server and
// aggregates latency quantiles per class. Any non-200 during the warm
// phase aborts — a load test over a broken server measures nothing.
func runLoad(cfg loadConfig, mix []reqClass) ([]loadRow, error) {
	srv := serve.New(serve.Config{
		Store: artifact.NewStore(),
		Pool:  parallel.Pool{},
	})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	client := ts.Client()

	do := func(c reqClass) (float64, error) {
		var body io.Reader
		if c.body != "" {
			body = strings.NewReader(c.body)
		}
		req, err := http.NewRequest(c.method, ts.URL+c.path, body)
		if err != nil {
			return 0, err
		}
		start := time.Now()
		resp, err := client.Do(req)
		if err != nil {
			return 0, err
		}
		_, copyErr := io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		durMs := float64(time.Since(start)) / float64(time.Millisecond)
		if copyErr != nil {
			return durMs, copyErr
		}
		if resp.StatusCode != http.StatusOK {
			return durMs, fmt.Errorf("%s %s: status %d", c.method, c.path, resp.StatusCode)
		}
		return durMs, nil
	}

	// Warm phase: populate every cache key the measured phase will hit, so
	// the timings below are serving-path cost, not first-build simulation.
	for _, c := range mix {
		if _, err := do(c); err != nil {
			return nil, fmt.Errorf("warm %s: %w", c.name, err)
		}
	}

	var next atomic.Int64
	deadline := time.Now().Add(cfg.duration)
	perClient := make([][]sample, cfg.clients)
	var wg sync.WaitGroup
	for i := 0; i < cfg.clients; i++ {
		wg.Add(1)
		go func(slot int) {
			defer wg.Done()
			var samples []sample
			for time.Now().Before(deadline) {
				idx := int(next.Add(1)-1) % len(mix)
				durMs, err := do(mix[idx])
				samples = append(samples, sample{class: idx, durMs: durMs, err: err != nil})
			}
			perClient[slot] = samples
		}(i)
	}
	wg.Wait()

	byClass := make([][]float64, len(mix))
	errs := make([]int64, len(mix))
	for _, samples := range perClient {
		for _, s := range samples {
			if s.err {
				errs[s.class]++
				continue
			}
			byClass[s.class] = append(byClass[s.class], s.durMs)
		}
	}
	rows := make([]loadRow, 0, len(mix))
	secs := cfg.duration.Seconds()
	for i, c := range mix {
		lats := byClass[i]
		sort.Float64s(lats)
		rows = append(rows, loadRow{
			Name:     c.name,
			Requests: int64(len(lats)) + errs[i],
			Errors:   errs[i],
			RPS:      float64(len(lats)) / secs,
			P50Ms:    quantile(lats, 0.50),
			P99Ms:    quantile(lats, 0.99),
		})
	}
	sort.Slice(rows, func(i, j int) bool { return rows[i].Name < rows[j].Name })
	return rows, nil
}

// quantile returns the nearest-rank q-quantile of sorted (ascending) lats;
// 0 for an empty slice.
func quantile(lats []float64, q float64) float64 {
	if len(lats) == 0 {
		return 0
	}
	idx := int(q * float64(len(lats))) // nearest rank, 0-based
	if idx >= len(lats) {
		idx = len(lats) - 1
	}
	return lats[idx]
}

func main() {
	duration := flag.Duration("duration", 5*time.Second, "measured phase length (after warm-up)")
	clients := flag.Int("clients", 4, "concurrent client goroutines")
	out := flag.String("out", "load.json", "path for the JSON load report")
	flag.Parse()
	cfg := loadConfig{duration: *duration, clients: *clients, out: *out}
	if err := validateLoadFlags(cfg); err != nil {
		fmt.Fprintln(os.Stderr, "loadtest:", err)
		os.Exit(2)
	}
	if flag.NArg() != 0 {
		fmt.Fprintf(os.Stderr, "loadtest: unexpected arguments: %v\n", flag.Args())
		os.Exit(2)
	}
	rows, err := runLoad(cfg, defaultMix())
	if err != nil {
		fmt.Fprintln(os.Stderr, "loadtest:", err)
		os.Exit(1)
	}
	for _, r := range rows {
		fmt.Printf("%-25s %8d req %4d err %10.1f rps  p50 %7.2fms  p99 %7.2fms\n",
			r.Name, r.Requests, r.Errors, r.RPS, r.P50Ms, r.P99Ms)
	}
	b, err := json.MarshalIndent(rows, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "loadtest:", err)
		os.Exit(1)
	}
	if err := os.WriteFile(cfg.out, append(b, '\n'), 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "loadtest:", err)
		os.Exit(1)
	}
}
