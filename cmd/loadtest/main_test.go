package main

import (
	"strings"
	"testing"
	"time"
)

// TestValidateLoadFlags tables the startup rejections (exit 2 in main).
func TestValidateLoadFlags(t *testing.T) {
	ok := loadConfig{duration: time.Second, clients: 2, out: "load.json"}
	cases := []struct {
		name     string
		mutate   func(*loadConfig)
		contains string // empty = valid
	}{
		{"defaults valid", func(c *loadConfig) {}, ""},
		{"zero duration", func(c *loadConfig) { c.duration = 0 }, "-duration"},
		{"negative duration", func(c *loadConfig) { c.duration = -time.Second }, "-duration"},
		{"zero clients", func(c *loadConfig) { c.clients = 0 }, "-clients"},
		{"empty out", func(c *loadConfig) { c.out = "" }, "-out"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cfg := ok
			tc.mutate(&cfg)
			err := validateLoadFlags(cfg)
			if tc.contains == "" {
				if err != nil {
					t.Fatalf("unexpected error: %v", err)
				}
				return
			}
			if err == nil || !strings.Contains(err.Error(), tc.contains) {
				t.Errorf("error %v does not mention %q", err, tc.contains)
			}
		})
	}
}

func TestQuantileNearestRank(t *testing.T) {
	lats := []float64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}
	if got := quantile(lats, 0.50); got != 6 {
		t.Errorf("p50 = %v, want 6", got)
	}
	if got := quantile(lats, 0.99); got != 10 {
		t.Errorf("p99 = %v, want 10", got)
	}
	if got := quantile(nil, 0.5); got != 0 {
		t.Errorf("empty quantile = %v, want 0", got)
	}
	if got := quantile([]float64{7}, 0.99); got != 7 {
		t.Errorf("singleton p99 = %v, want 7", got)
	}
}

// TestRunLoadShort drives the full warm-then-measure path for a fraction of
// a second: every mix class must produce a row with at least one successful
// request and a sane latency ordering. This is the smoke that keeps the
// driver honest between full `make loadtest` runs.
func TestRunLoadShort(t *testing.T) {
	if testing.Short() {
		t.Skip("runs simulations to warm the store")
	}
	mix := defaultMix()
	rows, err := runLoad(loadConfig{duration: 300 * time.Millisecond, clients: 2, out: "unused"}, mix)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != len(mix) {
		t.Fatalf("got %d rows, want %d: %+v", len(rows), len(mix), rows)
	}
	for _, r := range rows {
		if r.Requests < 1 {
			t.Errorf("%s: no requests completed", r.Name)
		}
		if r.Errors != 0 {
			t.Errorf("%s: %d errored requests against a warm in-process server", r.Name, r.Errors)
		}
		if r.P50Ms > r.P99Ms {
			t.Errorf("%s: p50 %.3fms > p99 %.3fms", r.Name, r.P50Ms, r.P99Ms)
		}
		if r.RPS <= 0 {
			t.Errorf("%s: RPS = %v", r.Name, r.RPS)
		}
	}
	for i := 1; i < len(rows); i++ {
		if rows[i-1].Name >= rows[i].Name {
			t.Fatalf("rows not sorted by name: %q before %q", rows[i-1].Name, rows[i].Name)
		}
	}
}

// TestRunLoadWarmFailure: a mix entry the server rejects must abort during
// the warm phase with a named error, not silently measure garbage.
func TestRunLoadWarmFailure(t *testing.T) {
	bad := []reqClass{{"bogus", "GET", "/experiment/atlantis?seed=1", ""}}
	_, err := runLoad(loadConfig{duration: 100 * time.Millisecond, clients: 1, out: "unused"}, bad)
	if err == nil || !strings.Contains(err.Error(), "warm bogus") {
		t.Fatalf("err = %v, want warm-phase failure naming the class", err)
	}
}
