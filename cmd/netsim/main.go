// Command netsim runs the simulated South African Internet standalone and
// dumps a measurement CSV — useful for analyzing the synthetic data with
// external tools or inspecting the world the experiments run on.
//
// Usage:
//
//	netsim -hours 168 -seed 7 > measurements.csv
//	netsim -hours 336 -join 168 -summary
package main

import (
	"flag"
	"fmt"
	"os"

	"sisyphus/internal/mathx"
	"sisyphus/internal/netsim/engine"
	"sisyphus/internal/netsim/scenario"
	"sisyphus/internal/platform"
	"sisyphus/internal/probe"
)

func main() {
	var (
		hours    = flag.Float64("hours", 168, "simulated hours")
		join     = flag.Float64("join", 0, "hour at which treated ASes join the IXP (0 = never)")
		seed     = flag.Uint64("seed", 42, "random seed")
		summary  = flag.Bool("summary", false, "print per-unit RTT summaries instead of CSV")
		describe = flag.Bool("describe", false, "print per-column statistics instead of CSV")
	)
	flag.Parse()

	s, err := scenario.BuildSouthAfrica()
	if err != nil {
		fail(err)
	}
	e := engine.New(s.Topo, *seed, engine.Config{AdaptiveEgress: true})
	pr := probe.NewProber(e, *seed+1)
	if *join > 0 {
		for _, asn := range s.TreatedASNs {
			e.Schedule(engine.EvJoinIXP(*join, s.IXPName, asn, 0.02))
		}
	}
	var pops []platform.UserPop
	for _, u := range s.AllUnits() {
		src, err := s.UserPoP(u)
		if err != nil {
			fail(err)
		}
		pops = append(pops, platform.UserPop{Src: src, Dst: scenario.BigContent, Size: 1})
	}
	um := platform.NewUserModel(pops, *seed+2)
	store := platform.NewStore()
	for e.Hour() < *hours {
		if err := e.Step(); err != nil {
			fail(err)
		}
		_, ms, err := um.Step(pr)
		if err != nil {
			fail(err)
		}
		if err := store.Add(ms...); err != nil {
			fail(err)
		}
	}

	if *summary {
		fmt.Printf("%d measurements over %.0f hours from %d units\n\n", store.Len(), *hours, len(pops))
		for _, u := range store.Units() {
			ms := store.Filter(func(m *probe.Measurement) bool {
				return m.SrcASN == u.ASN && m.SrcCity == u.City
			})
			rtts := make([]float64, len(ms))
			for i, m := range ms {
				rtts[i] = m.RTTms
			}
			sum := mathx.Summarize(rtts)
			fmt.Printf("  %-28s n=%4d  median=%6.2f ms  p95=%6.2f ms\n", u, sum.N, sum.Median, sum.P95)
		}
		return
	}
	frame := platform.Frame(store.All())
	if *describe {
		fmt.Print(frame.Describe())
		return
	}
	if err := frame.WriteCSV(os.Stdout); err != nil {
		fail(err)
	}
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "netsim:", err)
	os.Exit(1)
}
