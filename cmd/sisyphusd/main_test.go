package main

import (
	"strings"
	"testing"
	"time"
)

// TestValidateServeFlags tables every flag combination the daemon refuses
// at startup; main exits 2 (usage) on each, matching the sisyphus CLI's
// convention.
func TestValidateServeFlags(t *testing.T) {
	ok := serveFlags{addr: ":8080", cache: "on", requestTimeout: 2 * time.Minute, maxSpans: 4096}
	cases := []struct {
		name     string
		mutate   func(*serveFlags)
		contains string // empty = valid
	}{
		{"defaults valid", func(f *serveFlags) {}, ""},
		{"cache off valid", func(f *serveFlags) { f.cache = "off" }, ""},
		{"admin valid", func(f *serveFlags) { f.admin = "localhost:6060" }, ""},
		{"no timeout valid", func(f *serveFlags) { f.requestTimeout = 0 }, ""},
		{"unbounded spans valid", func(f *serveFlags) { f.maxSpans = 0 }, ""},
		{"empty addr", func(f *serveFlags) { f.addr = "" }, "-addr"},
		{"negative workers", func(f *serveFlags) { f.workers = -1 }, "-workers"},
		{"negative timeout", func(f *serveFlags) { f.requestTimeout = -time.Second }, "-request-timeout"},
		{"cache typo", func(f *serveFlags) { f.cache = "of" }, "-cache"},
		{"cache-dir without cache", func(f *serveFlags) { f.cache = "off"; f.cacheDir = "/tmp/x" }, "-cache-dir"},
		{"admin collides with addr", func(f *serveFlags) { f.admin = f.addr }, "-admin"},
		{"negative span bound", func(f *serveFlags) { f.maxSpans = -1 }, "-max-spans"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			f := ok
			tc.mutate(&f)
			err := validateServeFlags(f)
			if tc.contains == "" {
				if err != nil {
					t.Fatalf("unexpected error: %v", err)
				}
				return
			}
			if err == nil {
				t.Fatal("expected an error")
			}
			if !strings.Contains(err.Error(), tc.contains) {
				t.Errorf("error %q does not mention %q", err, tc.contains)
			}
		})
	}
}
