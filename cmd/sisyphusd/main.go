// Command sisyphusd serves the paper-reproduction experiments and the
// declarative causal-query endpoint over HTTP — the "queryable causal
// backend" the paper argues the measurement community keeps failing to
// build, in place of one-shot studies.
//
// Usage:
//
//	sisyphusd -addr :8080
//	sisyphusd -addr :8080 -cache-dir ~/.cache/sisyphus -request-timeout 2m
//	sisyphusd -addr :8080 -admin localhost:6060
//
// Endpoints:
//
//	GET  /experiment/{id}?seed=N&scenario=S&opts=J&workers=W
//	POST /query        {"treatment": "R", "outcome": "L", "adjustment": "auto"}
//	GET  /experiments  catalogue
//	GET  /healthz
//
// A GET /experiment response is byte-identical to
// `sisyphus -experiment <id> -seed N -json`. All requests share one
// artifact store: identical concurrent requests collapse into a single
// build, and -cache-dir persists worlds, RIBs and campaigns across
// restarts. -admin binds a second listener with /metrics, /trace (JSONL
// spans, bounded ring) and /debug/pprof/.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"time"

	"sisyphus/internal/artifact"
	"sisyphus/internal/obs"
	"sisyphus/internal/parallel"
	"sisyphus/internal/serve"
)

// serveFlags is everything validateServeFlags inspects, gathered so the
// validation is a pure testable function.
type serveFlags struct {
	addr           string
	admin          string
	workers        int
	requestTimeout time.Duration
	cache          string
	cacheDir       string
	maxSpans       int
}

// validateServeFlags rejects configurations that cannot mean what the user
// intended; callers exit 2 (usage) on error, matching the sisyphus CLI.
func validateServeFlags(f serveFlags) error {
	if f.addr == "" {
		return fmt.Errorf("-addr must not be empty")
	}
	if f.workers < 0 {
		return fmt.Errorf("-workers must be >= 0 (got %d)", f.workers)
	}
	if f.requestTimeout < 0 {
		return fmt.Errorf("-request-timeout must be >= 0 (got %v)", f.requestTimeout)
	}
	if f.cache != "on" && f.cache != "off" {
		return fmt.Errorf("-cache must be \"on\" or \"off\" (got %q)", f.cache)
	}
	if f.cacheDir != "" && f.cache == "off" {
		return fmt.Errorf("-cache-dir requires the cache; drop -cache=off or -cache-dir")
	}
	if f.admin != "" && f.admin == f.addr {
		return fmt.Errorf("-admin must differ from -addr (both %q)", f.addr)
	}
	if f.maxSpans < 0 {
		return fmt.Errorf("-max-spans must be >= 0 (got %d)", f.maxSpans)
	}
	return nil
}

func main() {
	var (
		addr     = flag.String("addr", ":8080", "API listen address")
		admin    = flag.String("admin", "", "admin listen address for /metrics, /trace and /debug/pprof/ (empty = no admin endpoint, no recorder)")
		nworkers = flag.Int("workers", 0, "default worker-pool width for request execution (0 = GOMAXPROCS); requests may override with ?workers=")
		reqTO    = flag.Duration("request-timeout", 2*time.Minute, "per-request wall-clock bound; requests exceeding it return 504 (0 = no limit)")
		cache    = flag.String("cache", "on", "artifact cache: \"on\" shares worlds, RIBs, campaigns and responses across requests; \"off\" rebuilds per request (response bytes identical either way)")
		cacheDir = flag.String("cache-dir", "", "persist artifacts across restarts in this directory (requires -cache=on)")
		maxSpans = flag.Int("max-spans", 4096, "with -admin, keep at most this many recent latency spans in the trace ring (0 = unbounded)")
	)
	flag.Parse()
	f := serveFlags{
		addr: *addr, admin: *admin, workers: *nworkers,
		requestTimeout: *reqTO, cache: *cache, cacheDir: *cacheDir, maxSpans: *maxSpans,
	}
	if err := validateServeFlags(f); err != nil {
		fmt.Fprintln(os.Stderr, "sisyphusd:", err)
		os.Exit(2)
	}
	if flag.NArg() > 0 {
		fmt.Fprintf(os.Stderr, "sisyphusd: unexpected arguments: %v\n", flag.Args())
		os.Exit(2)
	}

	pool := parallel.Default()
	if *nworkers > 0 {
		pool = parallel.NewPool(*nworkers)
	}

	// The store is shared by every request for the server's lifetime; the
	// recorder exists only when an admin endpoint will read it, preserving
	// the zero-cost-when-off invariant on the serving path.
	var store *artifact.Store
	if *cache == "on" {
		var opts []artifact.Option
		if *cacheDir != "" {
			disk, err := artifact.OpenDisk(artifact.DiskConfig{
				Dir:         *cacheDir,
				Fingerprint: artifact.BinaryFingerprint(),
			})
			if err != nil {
				fmt.Fprintln(os.Stderr, "sisyphusd: -cache-dir:", err)
				os.Exit(2)
			}
			opts = append(opts, artifact.WithDisk(disk))
		}
		store = artifact.NewStore(opts...)
	}
	var rec *obs.Recorder
	if *admin != "" {
		rec = obs.NewRecorder()
		rec.LimitSpans(*maxSpans)
	}

	srv := serve.New(serve.Config{
		Store:          store,
		Pool:           pool,
		RequestTimeout: *reqTO,
		Recorder:       rec,
	})

	// Bind synchronously so a bad address is a startup failure, not a
	// background surprise after the process has daemonized.
	apiLn, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintln(os.Stderr, "sisyphusd: -addr:", err)
		os.Exit(2)
	}
	httpSrv := &http.Server{Handler: srv.Handler()}

	var adminSrv *http.Server
	if *admin != "" {
		adminLn, err := net.Listen("tcp", *admin)
		if err != nil {
			fmt.Fprintln(os.Stderr, "sisyphusd: -admin:", err)
			os.Exit(2)
		}
		adminSrv = &http.Server{Handler: srv.AdminHandler()}
		go func() {
			if err := adminSrv.Serve(adminLn); err != nil && !errors.Is(err, http.ErrServerClosed) {
				fmt.Fprintln(os.Stderr, "sisyphusd: admin:", err)
			}
		}()
		fmt.Fprintf(os.Stderr, "sisyphusd: admin on %s\n", adminLn.Addr())
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	go func() {
		<-ctx.Done()
		// In-flight requests get one grace period to finish through their
		// own context seams before the listener is torn down.
		shCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		httpSrv.Shutdown(shCtx)
		if adminSrv != nil {
			adminSrv.Shutdown(shCtx)
		}
	}()

	fmt.Fprintf(os.Stderr, "sisyphusd: serving on %s\n", apiLn.Addr())
	if err := httpSrv.Serve(apiLn); err != nil && !errors.Is(err, http.ErrServerClosed) {
		fmt.Fprintln(os.Stderr, "sisyphusd:", err)
		os.Exit(1)
	}
}
