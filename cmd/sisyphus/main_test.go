package main

import "testing"

func TestValidateFlags(t *testing.T) {
	cases := []struct {
		name       string
		workersSet bool
		workers    int
		parallel   bool
		wantErr    bool
	}{
		{"defaults", false, 0, false, false},
		{"parallel without workers", false, 0, true, false},
		{"workers with parallel", true, 8, true, false},
		{"workers zero with parallel", true, 0, true, false},
		{"workers without parallel", true, 8, false, true},
		{"negative workers", true, -1, true, true},
		{"negative workers without parallel", true, -3, false, true},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			err := validateFlags(c.workersSet, c.workers, c.parallel)
			if (err != nil) != c.wantErr {
				t.Fatalf("validateFlags(%v, %d, %v) error = %v, wantErr %v",
					c.workersSet, c.workers, c.parallel, err, c.wantErr)
			}
		})
	}
}

func TestValidateCacheFlag(t *testing.T) {
	cases := []struct {
		cache   string
		wantErr bool
	}{
		{"on", false},
		{"off", false},
		{"", true},
		{"of", true},
		{"ON", true},
		{"true", true},
		{"0", true},
	}
	for _, c := range cases {
		t.Run(c.cache, func(t *testing.T) {
			err := validateCacheFlag(c.cache)
			if (err != nil) != c.wantErr {
				t.Fatalf("validateCacheFlag(%q) error = %v, wantErr %v", c.cache, err, c.wantErr)
			}
		})
	}
}
