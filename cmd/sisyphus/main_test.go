package main

import "testing"

func TestValidateFlags(t *testing.T) {
	cases := []struct {
		name       string
		workersSet bool
		workers    int
		parallel   bool
		wantErr    bool
	}{
		{"defaults", false, 0, false, false},
		{"parallel without workers", false, 0, true, false},
		{"workers with parallel", true, 8, true, false},
		{"workers zero with parallel", true, 0, true, false},
		{"workers without parallel", true, 8, false, true},
		{"negative workers", true, -1, true, true},
		{"negative workers without parallel", true, -3, false, true},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			err := validateFlags(c.workersSet, c.workers, c.parallel)
			if (err != nil) != c.wantErr {
				t.Fatalf("validateFlags(%v, %d, %v) error = %v, wantErr %v",
					c.workersSet, c.workers, c.parallel, err, c.wantErr)
			}
		})
	}
}

func TestValidateCacheFlag(t *testing.T) {
	cases := []struct {
		cache   string
		wantErr bool
	}{
		{"on", false},
		{"off", false},
		{"", true},
		{"of", true},
		{"ON", true},
		{"true", true},
		{"0", true},
	}
	for _, c := range cases {
		t.Run(c.cache, func(t *testing.T) {
			err := validateCacheFlag(c.cache)
			if (err != nil) != c.wantErr {
				t.Fatalf("validateCacheFlag(%q) error = %v, wantErr %v", c.cache, err, c.wantErr)
			}
		})
	}
}

func TestValidateCacheDirFlag(t *testing.T) {
	cases := []struct {
		name     string
		cacheDir string
		cache    string
		runs     bool
		wantErr  bool
	}{
		{"no dir no run", "", "on", false, false},
		{"no dir cache off", "", "off", true, false},
		{"dir with run", "/tmp/c", "on", true, false},
		{"dir without run", "/tmp/c", "on", false, true},
		{"dir with cache off", "/tmp/c", "off", true, true},
		{"dir with cache off and no run", "/tmp/c", "off", false, true},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			err := validateCacheDirFlag(c.cacheDir, c.cache, c.runs)
			if (err != nil) != c.wantErr {
				t.Fatalf("validateCacheDirFlag(%q, %q, %v) error = %v, wantErr %v",
					c.cacheDir, c.cache, c.runs, err, c.wantErr)
			}
		})
	}
}
