package main

import "testing"

func TestValidateFlags(t *testing.T) {
	cases := []struct {
		name       string
		workersSet bool
		workers    int
		parallel   bool
		sweep      bool
		wantErr    bool
	}{
		{"defaults", false, 0, false, false, false},
		{"parallel without workers", false, 0, true, false, false},
		{"workers with parallel", true, 8, true, false, false},
		{"workers zero with parallel", true, 0, true, false, false},
		{"workers with sweep", true, 4, false, true, false},
		{"workers without parallel or sweep", true, 8, false, false, true},
		{"negative workers", true, -1, true, false, true},
		{"negative workers without parallel", true, -3, false, false, true},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			err := validateFlags(c.workersSet, c.workers, c.parallel, c.sweep)
			if (err != nil) != c.wantErr {
				t.Fatalf("validateFlags(%v, %d, %v, %v) error = %v, wantErr %v",
					c.workersSet, c.workers, c.parallel, c.sweep, err, c.wantErr)
			}
		})
	}
}

func TestParseSeeds(t *testing.T) {
	cases := []struct {
		spec    string
		want    []uint64
		wantErr bool
	}{
		{spec: "7", want: []uint64{7}},
		{spec: "1,2,5", want: []uint64{1, 2, 5}},
		{spec: "1..4", want: []uint64{1, 2, 3, 4}},
		{spec: "1..4,10", want: []uint64{1, 2, 3, 4, 10}},
		{spec: "3..3", want: []uint64{3}},
		{spec: " 1 , 2 ", want: []uint64{1, 2}},
		{spec: "5,5", want: []uint64{5, 5}}, // duplicates kept: repeated cells
		{spec: "", wantErr: true},
		{spec: ",", wantErr: true},
		{spec: "x", wantErr: true},
		{spec: "1..", wantErr: true},
		{spec: "..4", wantErr: true},
		{spec: "4..1", wantErr: true},
		{spec: "1..x", wantErr: true},
		{spec: "1...4", wantErr: true},
		{spec: "-1", wantErr: true},
		{spec: "1..2000000000", wantErr: true}, // over the seed cap
	}
	for _, c := range cases {
		t.Run(c.spec, func(t *testing.T) {
			got, err := parseSeeds(c.spec)
			if (err != nil) != c.wantErr {
				t.Fatalf("parseSeeds(%q) error = %v, wantErr %v", c.spec, err, c.wantErr)
			}
			if err != nil {
				return
			}
			if len(got) != len(c.want) {
				t.Fatalf("parseSeeds(%q) = %v, want %v", c.spec, got, c.want)
			}
			for i := range got {
				if got[i] != c.want[i] {
					t.Fatalf("parseSeeds(%q) = %v, want %v", c.spec, got, c.want)
				}
			}
		})
	}
}

func TestValidateSweepFlags(t *testing.T) {
	cases := []struct {
		name    string
		f       sweepFlags
		all     bool
		exp     string
		wantErr bool
	}{
		{name: "no sweep flags at all"},
		{name: "sweep with seeds", f: sweepFlags{sweep: true, seeds: "1..4"}},
		{name: "sweep with everything", f: sweepFlags{sweep: true, seeds: "1,2", expsSet: true, scenesSet: true, cellTimeout: 1}},
		{name: "sweep without seeds", f: sweepFlags{sweep: true}, wantErr: true},
		{name: "sweep with -all", f: sweepFlags{sweep: true, seeds: "1"}, all: true, wantErr: true},
		{name: "sweep with -experiment", f: sweepFlags{sweep: true, seeds: "1"}, exp: "table1", wantErr: true},
		{name: "sweep with -scenario", f: sweepFlags{sweep: true, seeds: "1", scenario: "tromboneera"}, wantErr: true},
		{name: "seeds without sweep", f: sweepFlags{seeds: "1..4"}, wantErr: true},
		{name: "experiments without sweep", f: sweepFlags{expsSet: true}, wantErr: true},
		{name: "scenarios without sweep", f: sweepFlags{scenesSet: true}, wantErr: true},
		{name: "cell-timeout without sweep", f: sweepFlags{cellTimeout: 1}, wantErr: true},
		{name: "negative cell-timeout", f: sweepFlags{sweep: true, seeds: "1", cellTimeout: -1}, wantErr: true},
		{name: "scenario with experiment", f: sweepFlags{scenario: "tromboneera"}, exp: "table1"},
		{name: "scenario without experiment", f: sweepFlags{scenario: "tromboneera"}, wantErr: true},
		{name: "scenario with -all only", f: sweepFlags{scenario: "tromboneera"}, all: true, wantErr: true},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			err := validateSweepFlags(c.f, c.all, c.exp)
			if (err != nil) != c.wantErr {
				t.Fatalf("validateSweepFlags(%+v, %v, %q) error = %v, wantErr %v",
					c.f, c.all, c.exp, err, c.wantErr)
			}
		})
	}
}

func TestValidateCacheFlag(t *testing.T) {
	cases := []struct {
		cache   string
		wantErr bool
	}{
		{"on", false},
		{"off", false},
		{"", true},
		{"of", true},
		{"ON", true},
		{"true", true},
		{"0", true},
	}
	for _, c := range cases {
		t.Run(c.cache, func(t *testing.T) {
			err := validateCacheFlag(c.cache)
			if (err != nil) != c.wantErr {
				t.Fatalf("validateCacheFlag(%q) error = %v, wantErr %v", c.cache, err, c.wantErr)
			}
		})
	}
}

func TestValidateCacheDirFlag(t *testing.T) {
	cases := []struct {
		name     string
		cacheDir string
		cache    string
		runs     bool
		wantErr  bool
	}{
		{"no dir no run", "", "on", false, false},
		{"no dir cache off", "", "off", true, false},
		{"dir with run", "/tmp/c", "on", true, false},
		{"dir without run", "/tmp/c", "on", false, true},
		{"dir with cache off", "/tmp/c", "off", true, true},
		{"dir with cache off and no run", "/tmp/c", "off", false, true},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			err := validateCacheDirFlag(c.cacheDir, c.cache, c.runs)
			if (err != nil) != c.wantErr {
				t.Fatalf("validateCacheDirFlag(%q, %q, %v) error = %v, wantErr %v",
					c.cacheDir, c.cache, c.runs, err, c.wantErr)
			}
		})
	}
}
