// Command sisyphus runs the paper-reproduction experiments and prints their
// tables.
//
// Usage:
//
//	sisyphus -list
//	sisyphus -experiment table1 [-seed 42]
//	sisyphus -all [-parallel] [-workers 8] [-timeout 5m]
//	sisyphus -all -cache-dir ~/.cache/sisyphus
//	sisyphus -all -trace run.jsonl -metrics [-pprof localhost:6060]
//
// The whole run is governed by one context: SIGINT (Ctrl-C) or an elapsed
// -timeout cancels it, experiments stop at their next pipeline-stage
// boundary, and a cancelled -all run reports which experiments completed
// before exiting non-zero.
//
// The observability flags are strictly additive: -trace writes a JSONL span
// log after the run, -metrics appends a counter/gauge summary (an object
// under a "metrics" key in -json mode), and -pprof serves net/http/pprof
// for the run's duration. With all three off no recorder exists and the
// experiment output is byte-identical to a build without the layer.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	_ "net/http/pprof"
	"os"
	"os/signal"
	"strings"

	"sisyphus/internal/artifact"
	"sisyphus/internal/experiments"
	"sisyphus/internal/netsim/scenario"
	"sisyphus/internal/obs"
	"sisyphus/internal/parallel"
	"sisyphus/internal/sweep"
)

// validateFlags rejects flag combinations that would otherwise be silently
// ignored: a negative worker count is never meaningful, and -workers sizes
// the pool that only -parallel and -sweep use, so passing it alone is
// almost certainly a mistake the user should hear about.
func validateFlags(workersSet bool, workers int, parallelMode, sweepMode bool) error {
	if workers < 0 {
		return fmt.Errorf("-workers must be >= 0 (got %d)", workers)
	}
	if workersSet && !parallelMode && !sweepMode {
		return fmt.Errorf("-workers only applies with -parallel or -sweep; add one or drop -workers")
	}
	return nil
}

// validateCacheFlag rejects anything but the two documented -cache states;
// a typo like -cache=of silently running uncached would defeat the flag's
// purpose as an explicit identity-proof switch.
func validateCacheFlag(cache string) error {
	if cache != "on" && cache != "off" {
		return fmt.Errorf("-cache must be \"on\" or \"off\" (got %q)", cache)
	}
	return nil
}

// validateCacheDirFlag rejects -cache-dir combinations that cannot mean
// what the user intended: a persistent tier under a disabled cache is a
// contradiction, and one attached to an invocation that runs nothing
// (-list, or no mode) could only ever sit idle.
func validateCacheDirFlag(cacheDir, cache string, runs bool) error {
	if cacheDir == "" {
		return nil
	}
	if cache == "off" {
		return fmt.Errorf("-cache-dir requires the cache; drop -cache=off or -cache-dir")
	}
	if !runs {
		return fmt.Errorf("-cache-dir requires a run (-all, -experiment, or -sweep)")
	}
	return nil
}

// validateObsFlags rejects observability flags on invocations that run no
// experiments (-list or no mode at all): a trace or metrics request that
// could only ever produce an empty report is a mistake, not a no-op.
func validateObsFlags(trace string, metrics bool, pprofAddr string, runs bool) error {
	if runs {
		return nil
	}
	switch {
	case trace != "":
		return fmt.Errorf("-trace requires a run (-all, -experiment, or -sweep)")
	case metrics:
		return fmt.Errorf("-metrics requires a run (-all, -experiment, or -sweep)")
	case pprofAddr != "":
		return fmt.Errorf("-pprof requires a run (-all, -experiment, or -sweep)")
	}
	return nil
}

// canceled reports whether err is the run context giving out (Ctrl-C or
// -timeout) rather than an experiment failing on its own.
func canceled(err error) bool {
	return errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)
}

// exitCancelled reports a cancelled -all run: which experiments finished,
// which never did, and a non-zero exit so scripts notice.
func exitCancelled(err error, completed, notRun []string) {
	join := func(ids []string) string {
		if len(ids) == 0 {
			return "(none)"
		}
		return strings.Join(ids, ", ")
	}
	fmt.Fprintf(os.Stderr, "sisyphus: run cancelled: %v\n", err)
	fmt.Fprintf(os.Stderr, "sisyphus: completed: %s\n", join(completed))
	fmt.Fprintf(os.Stderr, "sisyphus: not run: %s\n", join(notRun))
	os.Exit(1)
}

// writeMetricsJSON emits the recorder's metrics as a single JSON object under
// a "metrics" key — appended after the per-experiment objects in -json mode
// so those stay byte-identical to a metrics-free run.
func writeMetricsJSON(w io.Writer, m obs.Metrics) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(map[string]obs.Metrics{"metrics": m})
}

// writeTrace writes the recorder's span log as JSONL to path.
func writeTrace(path string, rec *obs.Recorder) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := rec.WriteTrace(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// servePprof binds addr and serves net/http/pprof (on the default mux) in
// the background for the remainder of the process. Binding synchronously
// means a bad address fails fast instead of being discovered mid-run.
func servePprof(addr string) (io.Closer, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	go func() { _ = http.Serve(ln, nil) }()
	return ln, nil
}

func main() {
	var (
		list      = flag.Bool("list", false, "list available experiments")
		exp       = flag.String("experiment", "", "experiment id to run")
		all       = flag.Bool("all", false, "run every experiment")
		seed      = flag.Uint64("seed", 42, "random seed")
		asJSON    = flag.Bool("json", false, "emit results as JSON instead of tables")
		par       = flag.Bool("parallel", false, "with -all, run independent experiments concurrently (output is bit-identical to sequential)")
		nworkers  = flag.Int("workers", 0, "worker-pool width for parallel stages (0 = GOMAXPROCS)")
		timeout   = flag.Duration("timeout", 0, "abort the run after this duration (e.g. 90s, 10m); 0 = no limit")
		traceFile = flag.String("trace", "", "write a JSONL span trace of the run to this file")
		metrics   = flag.Bool("metrics", false, "print a metrics summary after the run (a \"metrics\" JSON object with -json)")
		pprofAddr = flag.String("pprof", "", "serve net/http/pprof on this address (e.g. localhost:6060) for the run")
		cache     = flag.String("cache", "on", "artifact cache: \"on\" shares scenario worlds, RIBs and campaigns across experiments; \"off\" rebuilds everything (output bytes are identical either way)")
		cacheDir  = flag.String("cache-dir", "", "persist artifacts across runs in this directory: run N+1 reuses worlds, RIBs and campaigns run N built (output bytes are identical; corrupted or stale files rebuild silently)")
		scen      = flag.String("scenario", "", "with -experiment, run on this world instead of the default (a registered id or a gen: spec; see "+scenario.GenGrammar+")")
		sweepMode = flag.Bool("sweep", false, "run a scenario×seed sweep of -experiments and report estimate distributions")
		sweepExps = flag.String("experiments", "table1", "with -sweep, comma-separated experiment ids to sweep (scenario-capable only)")
		scenarios = flag.String("scenarios", scenario.SouthAfricaID, "with -sweep, comma-separated world ids or gen: specs")
		seedsSpec = flag.String("seeds", "", "with -sweep, seed grid: \"1..200\", \"1,2,5\", or mixed \"1..4,10\" (required)")
		cellTO    = flag.Duration("cell-timeout", 0, "with -sweep, per-cell wall-clock bound; a cell exceeding it is reported failed, the grid continues (0 = none)")
	)
	flag.Parse()
	workersSet, expsSet, scenesSet := false, false, false
	flag.Visit(func(f *flag.Flag) {
		switch f.Name {
		case "workers":
			workersSet = true
		case "experiments":
			expsSet = true
		case "scenarios":
			scenesSet = true
		}
	})
	if err := validateFlags(workersSet, *nworkers, *par, *sweepMode); err != nil {
		fmt.Fprintln(os.Stderr, "sisyphus:", err)
		os.Exit(2)
	}
	if err := validateSweepFlags(sweepFlags{
		sweep: *sweepMode, seeds: *seedsSpec, expsSet: expsSet, scenesSet: scenesSet,
		scenario: *scen, cellTimeout: *cellTO,
	}, *all, *exp); err != nil {
		fmt.Fprintln(os.Stderr, "sisyphus:", err)
		os.Exit(2)
	}
	if *timeout < 0 {
		fmt.Fprintf(os.Stderr, "sisyphus: -timeout must be >= 0 (got %v)\n", *timeout)
		os.Exit(2)
	}
	if err := validateCacheFlag(*cache); err != nil {
		fmt.Fprintln(os.Stderr, "sisyphus:", err)
		os.Exit(2)
	}
	runs := *all || *exp != "" || *sweepMode
	if err := validateCacheDirFlag(*cacheDir, *cache, runs); err != nil {
		fmt.Fprintln(os.Stderr, "sisyphus:", err)
		os.Exit(2)
	}
	if err := validateObsFlags(*traceFile, *metrics, *pprofAddr, runs); err != nil {
		fmt.Fprintln(os.Stderr, "sisyphus:", err)
		os.Exit(2)
	}

	// The run's worker pool is a value scoped to this invocation — nothing
	// global is mutated, so two suites in one process cannot interfere.
	pool := parallel.Default()
	if *nworkers > 0 {
		pool = parallel.NewPool(*nworkers)
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}

	// The recorder exists only when something will consume it; otherwise the
	// context carries no recorder and every obs call inside the experiments
	// is the nil fast path (the zero-cost-when-off invariant).
	var rec *obs.Recorder
	if *traceFile != "" || *metrics {
		rec = obs.NewRecorder()
		ctx = obs.With(ctx, rec)
	}
	if *pprofAddr != "" {
		closer, err := servePprof(*pprofAddr)
		if err != nil {
			fmt.Fprintf(os.Stderr, "sisyphus: -pprof: %v\n", err)
			os.Exit(2)
		}
		defer closer.Close()
	}

	// The artifact store is likewise a per-invocation value. With -cache=off
	// it stays nil and every fetch inside the experiments builds fresh — the
	// exact pre-cache code path, so output bytes cannot differ. -cache-dir
	// attaches the persistent tier: artifacts this run builds are reusable
	// by the next run (and by concurrent processes sharing the directory).
	var store *artifact.Store
	if *cache == "on" {
		var opts []artifact.Option
		if *cacheDir != "" {
			disk, err := artifact.OpenDisk(artifact.DiskConfig{
				Dir:         *cacheDir,
				Fingerprint: artifact.BinaryFingerprint(),
			})
			if err != nil {
				fmt.Fprintln(os.Stderr, "sisyphus: -cache-dir:", err)
				os.Exit(2)
			}
			opts = append(opts, artifact.WithDisk(disk))
		}
		store = artifact.NewStore(opts...)
	}

	cfg := experiments.Config{Seed: *seed, Pool: pool, Artifacts: store}

	emit := func(res experiments.Renderable) {
		if *asJSON {
			enc := json.NewEncoder(os.Stdout)
			enc.SetIndent("", "  ")
			if err := enc.Encode(res); err != nil {
				fmt.Fprintln(os.Stderr, "sisyphus:", err)
				os.Exit(1)
			}
			return
		}
		fmt.Println(res.Render())
	}

	switch {
	case *list:
		fmt.Println("available experiments:")
		for _, e := range experiments.All() {
			fmt.Printf("  %-16s %s\n", e.ID, e.Paper)
		}
	case *sweepMode:
		// Sweep: fan -experiments × -scenarios × -seeds through the shared
		// pool and store, report estimate distributions over the grid.
		// Scenario tokens resolve up front — a bad gen: spec or unknown id is
		// a usage error, not a grid of failed cells.
		seeds, err := parseSeeds(*seedsSpec)
		if err != nil {
			fmt.Fprintln(os.Stderr, "sisyphus:", err)
			os.Exit(2)
		}
		var scenes []string
		for _, tok := range splitList(*scenarios) {
			id, err := scenario.ResolveID(tok)
			if err != nil {
				fmt.Fprintln(os.Stderr, "sisyphus: -scenarios:", err)
				os.Exit(2)
			}
			scenes = append(scenes, id)
		}
		rep, err := sweep.Run(ctx, sweep.GridConfig{
			Experiments: splitList(*sweepExps),
			Scenarios:   scenes,
			Seeds:       seeds,
			Pool:        pool,
			Artifacts:   store,
			CellTimeout: *cellTO,
		})
		if err != nil {
			if canceled(err) {
				fmt.Fprintf(os.Stderr, "sisyphus: sweep cancelled: %v\n", err)
				os.Exit(1)
			}
			fmt.Fprintln(os.Stderr, "sisyphus: -sweep:", err)
			os.Exit(2)
		}
		emit(rep)
		if len(rep.Failures) > 0 {
			fmt.Fprintf(os.Stderr, "sisyphus: sweep: %d of %d cells failed (see report)\n",
				len(rep.Failures), rep.Cells)
		}
	case *all && *par:
		// Concurrent suite: experiments fan out across the pool, results
		// print in ID order once all are done — same bytes as sequential.
		outs, runErr := experiments.RunAll(ctx, cfg)
		var completed, notRun []string
		for _, oc := range outs {
			switch {
			case oc.Res != nil:
				fmt.Print(oc.Exp.Header())
				emit(oc.Res)
				completed = append(completed, oc.Exp.ID)
			case oc.Err != nil && !canceled(oc.Err):
				fmt.Print(oc.Exp.Header())
				fmt.Fprintf(os.Stderr, "sisyphus: %s: %v\n", oc.Exp.ID, oc.Err)
				os.Exit(1)
			default:
				// Cancelled mid-run or never scheduled: no output of its own.
				notRun = append(notRun, oc.Exp.ID)
			}
		}
		if runErr != nil {
			if canceled(runErr) {
				exitCancelled(runErr, completed, notRun)
			}
			fmt.Fprintln(os.Stderr, "sisyphus:", runErr)
			os.Exit(1)
		}
	case *all:
		exps := experiments.All()
		var completed []string
		for i, e := range exps {
			fmt.Print(e.Header())
			res, err := e.Run(ctx, cfg)
			if err != nil {
				if canceled(err) {
					var notRun []string
					for _, rest := range exps[i:] {
						notRun = append(notRun, rest.ID)
					}
					exitCancelled(err, completed, notRun)
				}
				fmt.Fprintf(os.Stderr, "sisyphus: %s: %v\n", e.ID, err)
				os.Exit(1)
			}
			emit(res)
			completed = append(completed, e.ID)
		}
	case *exp != "":
		e, err := experiments.Get(*exp)
		if err != nil {
			fmt.Fprintln(os.Stderr, "sisyphus:", err)
			os.Exit(2)
		}
		if *scen != "" {
			// Retarget the experiment's defaults at another world. Both the
			// resolution (unknown id, bad gen: spec) and the retargeting (a
			// non-scenario-capable experiment) are usage errors.
			id, err := scenario.ResolveID(*scen)
			if err != nil {
				fmt.Fprintln(os.Stderr, "sisyphus: -scenario:", err)
				os.Exit(2)
			}
			opts, err := e.OptionsForScenario(id)
			if err != nil {
				fmt.Fprintln(os.Stderr, "sisyphus: -scenario:", err)
				os.Exit(2)
			}
			cfg.Opts = opts
		}
		res, err := e.Run(ctx, cfg)
		if err != nil {
			fmt.Fprintf(os.Stderr, "sisyphus: %s: %v\n", e.ID, err)
			os.Exit(1)
		}
		emit(res)
	default:
		flag.Usage()
		os.Exit(2)
	}

	// Cache epilogue: one summary line on stderr after a successful run, so
	// stdout (the golden surface) never sees it.
	if store != nil && runs {
		fmt.Fprintf(os.Stderr, "sisyphus: %s\n", store.RenderStats())
	}

	// Observability epilogue — runs only after a fully successful run, so
	// trace files never hold a silently truncated span log.
	if rec != nil {
		if *traceFile != "" {
			if err := writeTrace(*traceFile, rec); err != nil {
				fmt.Fprintln(os.Stderr, "sisyphus: -trace:", err)
				os.Exit(1)
			}
		}
		if *metrics {
			if *asJSON {
				if err := writeMetricsJSON(os.Stdout, rec.Metrics()); err != nil {
					fmt.Fprintln(os.Stderr, "sisyphus: -metrics:", err)
					os.Exit(1)
				}
			} else {
				fmt.Print("=== metrics ===\n\n")
				fmt.Print(rec.Metrics().Render())
			}
		}
	}
}
