// Command sisyphus runs the paper-reproduction experiments and prints their
// tables.
//
// Usage:
//
//	sisyphus -list
//	sisyphus -experiment table1 [-seed 42]
//	sisyphus -all [-parallel] [-workers 8] [-timeout 5m]
//
// The whole run is governed by one context: SIGINT (Ctrl-C) or an elapsed
// -timeout cancels it, experiments stop at their next pipeline-stage
// boundary, and a cancelled -all run reports which experiments completed
// before exiting non-zero.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"

	"sisyphus/internal/experiments"
	"sisyphus/internal/parallel"
)

// validateFlags rejects flag combinations that would otherwise be silently
// ignored: a negative worker count is never meaningful, and -workers sizes
// the pool that only -parallel uses, so passing it alone is almost certainly
// a mistake the user should hear about.
func validateFlags(workersSet bool, workers int, parallelMode bool) error {
	if workers < 0 {
		return fmt.Errorf("-workers must be >= 0 (got %d)", workers)
	}
	if workersSet && !parallelMode {
		return fmt.Errorf("-workers only applies with -parallel; add -parallel or drop -workers")
	}
	return nil
}

// canceled reports whether err is the run context giving out (Ctrl-C or
// -timeout) rather than an experiment failing on its own.
func canceled(err error) bool {
	return errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)
}

// exitCancelled reports a cancelled -all run: which experiments finished,
// which never did, and a non-zero exit so scripts notice.
func exitCancelled(err error, completed, notRun []string) {
	join := func(ids []string) string {
		if len(ids) == 0 {
			return "(none)"
		}
		return strings.Join(ids, ", ")
	}
	fmt.Fprintf(os.Stderr, "sisyphus: run cancelled: %v\n", err)
	fmt.Fprintf(os.Stderr, "sisyphus: completed: %s\n", join(completed))
	fmt.Fprintf(os.Stderr, "sisyphus: not run: %s\n", join(notRun))
	os.Exit(1)
}

func main() {
	var (
		list     = flag.Bool("list", false, "list available experiments")
		exp      = flag.String("experiment", "", "experiment id to run")
		all      = flag.Bool("all", false, "run every experiment")
		seed     = flag.Uint64("seed", 42, "random seed")
		asJSON   = flag.Bool("json", false, "emit results as JSON instead of tables")
		par      = flag.Bool("parallel", false, "with -all, run independent experiments concurrently (output is bit-identical to sequential)")
		nworkers = flag.Int("workers", 0, "worker-pool width for parallel stages (0 = GOMAXPROCS)")
		timeout  = flag.Duration("timeout", 0, "abort the run after this duration (e.g. 90s, 10m); 0 = no limit")
	)
	flag.Parse()
	workersSet := false
	flag.Visit(func(f *flag.Flag) {
		if f.Name == "workers" {
			workersSet = true
		}
	})
	if err := validateFlags(workersSet, *nworkers, *par); err != nil {
		fmt.Fprintln(os.Stderr, "sisyphus:", err)
		os.Exit(2)
	}
	if *timeout < 0 {
		fmt.Fprintf(os.Stderr, "sisyphus: -timeout must be >= 0 (got %v)\n", *timeout)
		os.Exit(2)
	}

	// The run's worker pool is a value scoped to this invocation — nothing
	// global is mutated, so two suites in one process cannot interfere.
	pool := parallel.Default()
	if *nworkers > 0 {
		pool = parallel.NewPool(*nworkers)
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}
	cfg := experiments.Config{Seed: *seed, Pool: pool}

	emit := func(res experiments.Renderable) {
		if *asJSON {
			enc := json.NewEncoder(os.Stdout)
			enc.SetIndent("", "  ")
			if err := enc.Encode(res); err != nil {
				fmt.Fprintln(os.Stderr, "sisyphus:", err)
				os.Exit(1)
			}
			return
		}
		fmt.Println(res.Render())
	}

	switch {
	case *list:
		fmt.Println("available experiments:")
		for _, e := range experiments.All() {
			fmt.Printf("  %-16s %s\n", e.ID, e.Paper)
		}
	case *all && *par:
		// Concurrent suite: experiments fan out across the pool, results
		// print in ID order once all are done — same bytes as sequential.
		outs, runErr := experiments.RunAll(ctx, cfg)
		var completed, notRun []string
		for _, oc := range outs {
			switch {
			case oc.Res != nil:
				fmt.Print(oc.Exp.Header())
				emit(oc.Res)
				completed = append(completed, oc.Exp.ID)
			case oc.Err != nil && !canceled(oc.Err):
				fmt.Print(oc.Exp.Header())
				fmt.Fprintf(os.Stderr, "sisyphus: %s: %v\n", oc.Exp.ID, oc.Err)
				os.Exit(1)
			default:
				// Cancelled mid-run or never scheduled: no output of its own.
				notRun = append(notRun, oc.Exp.ID)
			}
		}
		if runErr != nil {
			if canceled(runErr) {
				exitCancelled(runErr, completed, notRun)
			}
			fmt.Fprintln(os.Stderr, "sisyphus:", runErr)
			os.Exit(1)
		}
	case *all:
		exps := experiments.All()
		var completed []string
		for i, e := range exps {
			fmt.Print(e.Header())
			res, err := e.Run(ctx, cfg)
			if err != nil {
				if canceled(err) {
					var notRun []string
					for _, rest := range exps[i:] {
						notRun = append(notRun, rest.ID)
					}
					exitCancelled(err, completed, notRun)
				}
				fmt.Fprintf(os.Stderr, "sisyphus: %s: %v\n", e.ID, err)
				os.Exit(1)
			}
			emit(res)
			completed = append(completed, e.ID)
		}
	case *exp != "":
		e, err := experiments.Get(*exp)
		if err != nil {
			fmt.Fprintln(os.Stderr, "sisyphus:", err)
			os.Exit(2)
		}
		res, err := e.Run(ctx, cfg)
		if err != nil {
			fmt.Fprintf(os.Stderr, "sisyphus: %s: %v\n", e.ID, err)
			os.Exit(1)
		}
		emit(res)
	default:
		flag.Usage()
		os.Exit(2)
	}
}
