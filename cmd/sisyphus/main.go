// Command sisyphus runs the paper-reproduction experiments and prints their
// tables.
//
// Usage:
//
//	sisyphus -list
//	sisyphus -experiment table1 [-seed 42]
//	sisyphus -all
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"sisyphus/internal/experiments"
)

func main() {
	var (
		list   = flag.Bool("list", false, "list available experiments")
		exp    = flag.String("experiment", "", "experiment id to run")
		all    = flag.Bool("all", false, "run every experiment")
		seed   = flag.Uint64("seed", 42, "random seed")
		asJSON = flag.Bool("json", false, "emit results as JSON instead of tables")
	)
	flag.Parse()

	emit := func(res experiments.Renderable) {
		if *asJSON {
			enc := json.NewEncoder(os.Stdout)
			enc.SetIndent("", "  ")
			if err := enc.Encode(res); err != nil {
				fmt.Fprintln(os.Stderr, "sisyphus:", err)
				os.Exit(1)
			}
			return
		}
		fmt.Println(res.Render())
	}

	switch {
	case *list:
		fmt.Println("available experiments:")
		for _, e := range experiments.All() {
			fmt.Printf("  %-16s %s\n", e.ID, e.Paper)
		}
	case *all:
		for _, e := range experiments.All() {
			fmt.Printf("=== %s: %s ===\n\n", e.ID, e.Paper)
			res, err := e.Run(*seed)
			if err != nil {
				fmt.Fprintf(os.Stderr, "sisyphus: %s: %v\n", e.ID, err)
				os.Exit(1)
			}
			emit(res)
		}
	case *exp != "":
		e, err := experiments.Get(*exp)
		if err != nil {
			fmt.Fprintln(os.Stderr, "sisyphus:", err)
			os.Exit(2)
		}
		res, err := e.Run(*seed)
		if err != nil {
			fmt.Fprintf(os.Stderr, "sisyphus: %s: %v\n", e.ID, err)
			os.Exit(1)
		}
		emit(res)
	default:
		flag.Usage()
		os.Exit(2)
	}
}
