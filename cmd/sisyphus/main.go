// Command sisyphus runs the paper-reproduction experiments and prints their
// tables.
//
// Usage:
//
//	sisyphus -list
//	sisyphus -experiment table1 [-seed 42]
//	sisyphus -all [-parallel] [-workers 8]
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"sisyphus/internal/experiments"
	"sisyphus/internal/parallel"
)

// validateFlags rejects flag combinations that would otherwise be silently
// ignored: a negative worker count is never meaningful, and -workers sizes
// the pool that only -parallel uses, so passing it alone is almost certainly
// a mistake the user should hear about.
func validateFlags(workersSet bool, workers int, parallelMode bool) error {
	if workers < 0 {
		return fmt.Errorf("-workers must be >= 0 (got %d)", workers)
	}
	if workersSet && !parallelMode {
		return fmt.Errorf("-workers only applies with -parallel; add -parallel or drop -workers")
	}
	return nil
}

func main() {
	var (
		list     = flag.Bool("list", false, "list available experiments")
		exp      = flag.String("experiment", "", "experiment id to run")
		all      = flag.Bool("all", false, "run every experiment")
		seed     = flag.Uint64("seed", 42, "random seed")
		asJSON   = flag.Bool("json", false, "emit results as JSON instead of tables")
		par      = flag.Bool("parallel", false, "with -all, run independent experiments concurrently (output is bit-identical to sequential)")
		nworkers = flag.Int("workers", 0, "worker-pool width for parallel stages (0 = GOMAXPROCS)")
	)
	flag.Parse()
	workersSet := false
	flag.Visit(func(f *flag.Flag) {
		if f.Name == "workers" {
			workersSet = true
		}
	})
	if err := validateFlags(workersSet, *nworkers, *par); err != nil {
		fmt.Fprintln(os.Stderr, "sisyphus:", err)
		os.Exit(2)
	}
	if *nworkers > 0 {
		parallel.SetWorkers(*nworkers)
	}

	emit := func(res experiments.Renderable) {
		if *asJSON {
			enc := json.NewEncoder(os.Stdout)
			enc.SetIndent("", "  ")
			if err := enc.Encode(res); err != nil {
				fmt.Fprintln(os.Stderr, "sisyphus:", err)
				os.Exit(1)
			}
			return
		}
		fmt.Println(res.Render())
	}

	switch {
	case *list:
		fmt.Println("available experiments:")
		for _, e := range experiments.All() {
			fmt.Printf("  %-16s %s\n", e.ID, e.Paper)
		}
	case *all && *par:
		// Concurrent suite: experiments fan out across the pool, results
		// print in ID order once all are done — same bytes as sequential.
		for _, oc := range experiments.RunAll(*seed) {
			fmt.Printf("=== %s: %s ===\n\n", oc.Exp.ID, oc.Exp.Paper)
			if oc.Err != nil {
				fmt.Fprintf(os.Stderr, "sisyphus: %s: %v\n", oc.Exp.ID, oc.Err)
				os.Exit(1)
			}
			emit(oc.Res)
		}
	case *all:
		for _, e := range experiments.All() {
			fmt.Printf("=== %s: %s ===\n\n", e.ID, e.Paper)
			res, err := e.Run(*seed)
			if err != nil {
				fmt.Fprintf(os.Stderr, "sisyphus: %s: %v\n", e.ID, err)
				os.Exit(1)
			}
			emit(res)
		}
	case *exp != "":
		e, err := experiments.Get(*exp)
		if err != nil {
			fmt.Fprintln(os.Stderr, "sisyphus:", err)
			os.Exit(2)
		}
		res, err := e.Run(*seed)
		if err != nil {
			fmt.Fprintf(os.Stderr, "sisyphus: %s: %v\n", e.ID, err)
			os.Exit(1)
		}
		emit(res)
	default:
		flag.Usage()
		os.Exit(2)
	}
}
