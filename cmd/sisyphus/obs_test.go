package main

import (
	"bytes"
	"context"
	"encoding/json"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"sisyphus/internal/obs"
)

func TestValidateObsFlags(t *testing.T) {
	cases := []struct {
		name      string
		trace     string
		metrics   bool
		pprofAddr string
		runs      bool
		wantErr   string
	}{
		{"all off, no run", "", false, "", false, ""},
		{"all off, run", "", false, "", true, ""},
		{"trace with run", "t.jsonl", false, "", true, ""},
		{"metrics with run", "", true, "", true, ""},
		{"pprof with run", "", false, "localhost:0", true, ""},
		{"trace without run", "t.jsonl", false, "", false, "-trace requires a run"},
		{"metrics without run", "", true, "", false, "-metrics requires a run"},
		{"pprof without run", "", false, "localhost:0", false, "-pprof requires a run"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			err := validateObsFlags(c.trace, c.metrics, c.pprofAddr, c.runs)
			if c.wantErr == "" {
				if err != nil {
					t.Fatalf("unexpected error: %v", err)
				}
				return
			}
			if err == nil || !strings.Contains(err.Error(), c.wantErr) {
				t.Fatalf("error = %v, want substring %q", err, c.wantErr)
			}
		})
	}
}

// TestWriteMetricsJSON: the -metrics -json payload is one indented object
// under a "metrics" key that decodes back to the recorder's snapshot.
func TestWriteMetricsJSON(t *testing.T) {
	rec := obs.NewRecorder()
	ctx := obs.Scoped(obs.With(context.Background(), rec), "e1")
	obs.Add(ctx, "fits", 3)
	obs.Gauge(ctx, "coverage", 0.5)

	var buf bytes.Buffer
	if err := writeMetricsJSON(&buf, rec.Metrics()); err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(buf.String(), "{\n") || !strings.HasSuffix(buf.String(), "}\n") {
		t.Fatalf("payload is not an indented object: %q", buf.String())
	}
	var back struct {
		Metrics obs.Metrics `json:"metrics"`
	}
	if err := json.Unmarshal(buf.Bytes(), &back); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(back.Metrics, rec.Metrics()) {
		t.Fatalf("round trip = %v, want %v", back.Metrics, rec.Metrics())
	}
}

// TestWriteTraceFile: writeTrace produces a JSONL file whose lines decode as
// spans; an unwritable path is an error, not a silent no-op.
func TestWriteTraceFile(t *testing.T) {
	rec := obs.NewRecorder()
	ctx := obs.With(context.Background(), rec)
	sp := obs.StartSpan(ctx, "e/scenario")
	sp.End(nil)

	path := filepath.Join(t.TempDir(), "trace.jsonl")
	if err := writeTrace(path, rec); err != nil {
		t.Fatal(err)
	}
	blob, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimRight(string(blob), "\n"), "\n")
	if len(lines) != 1 {
		t.Fatalf("got %d lines, want 1", len(lines))
	}
	var s obs.Span
	if err := json.Unmarshal([]byte(lines[0]), &s); err != nil {
		t.Fatal(err)
	}
	if s.Name != "e/scenario" {
		t.Fatalf("span = %+v", s)
	}
	if err := writeTrace(filepath.Join(t.TempDir(), "no", "such", "dir", "t.jsonl"), rec); err == nil {
		t.Fatal("unwritable trace path did not error")
	}
}

// TestServePprof: the listener binds synchronously (bad address fails fast)
// and closes cleanly.
func TestServePprof(t *testing.T) {
	closer, err := servePprof("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	if err := closer.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := servePprof("256.256.256.256:bad"); err == nil {
		t.Fatal("invalid pprof address did not error")
	}
}
