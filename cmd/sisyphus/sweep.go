package main

import (
	"fmt"
	"strconv"
	"strings"
	"time"
)

// maxSweepSeeds bounds the seed grid: a typo'd range ("1..2000000000")
// should be a usage error, not an out-of-memory grid allocation.
const maxSweepSeeds = 100000

// splitList splits a comma-separated flag value, trimming spaces and
// dropping empty entries, so "a, b," parses as the user meant.
func splitList(s string) []string {
	var out []string
	for _, tok := range strings.Split(s, ",") {
		tok = strings.TrimSpace(tok)
		if tok != "" {
			out = append(out, tok)
		}
	}
	return out
}

// parseSeeds parses the -seeds grammar: a comma list whose entries are
// single seeds ("7") or inclusive ranges ("1..200"), freely mixed
// ("1..4,10"). Duplicates are kept — repeating a seed repeats the cell —
// and order is preserved, since cell order is the report's canonical order.
func parseSeeds(spec string) ([]uint64, error) {
	usage := func(format string, args ...any) error {
		return fmt.Errorf("-seeds %q: %s (want e.g. \"1..200\" or \"1,2,5\" or \"1..4,10\")",
			spec, fmt.Sprintf(format, args...))
	}
	toks := splitList(spec)
	if len(toks) == 0 {
		return nil, usage("empty seed list")
	}
	var seeds []uint64
	for _, tok := range toks {
		lo, hi, isRange := strings.Cut(tok, "..")
		if !isRange {
			n, err := strconv.ParseUint(tok, 10, 64)
			if err != nil {
				return nil, usage("bad seed %q", tok)
			}
			seeds = append(seeds, n)
			continue
		}
		a, err := strconv.ParseUint(lo, 10, 64)
		if err != nil {
			return nil, usage("bad range start in %q", tok)
		}
		b, err := strconv.ParseUint(hi, 10, 64)
		if err != nil {
			return nil, usage("bad range end in %q", tok)
		}
		if b < a {
			return nil, usage("descending range %q", tok)
		}
		if b-a+1 > maxSweepSeeds {
			return nil, usage("range %q spans %d seeds (max %d)", tok, b-a+1, maxSweepSeeds)
		}
		for n := a; n <= b; n++ {
			seeds = append(seeds, n)
		}
	}
	if len(seeds) > maxSweepSeeds {
		return nil, usage("%d seeds (max %d)", len(seeds), maxSweepSeeds)
	}
	return seeds, nil
}

// sweepFlags carries the sweep-mode flag values through validation.
type sweepFlags struct {
	sweep       bool
	seeds       string // -seeds, required with -sweep
	expsSet     bool   // -experiments explicitly set
	scenesSet   bool   // -scenarios explicitly set
	scenario    string // -scenario (single-run retargeting)
	cellTimeout time.Duration
}

// validateSweepFlags rejects sweep-flag combinations that cannot mean what
// the user intended: grid flags outside -sweep, -sweep without a seed grid,
// -sweep mixed with the single-run modes, and -scenario (the single-run
// retarget) anywhere but a plain -experiment run.
func validateSweepFlags(f sweepFlags, all bool, exp string) error {
	if f.sweep {
		switch {
		case all || exp != "":
			return fmt.Errorf("-sweep is its own mode; drop -all/-experiment (use -experiments to pick the swept experiments)")
		case f.seeds == "":
			return fmt.Errorf("-sweep requires -seeds (e.g. -seeds 1..200)")
		case f.scenario != "":
			return fmt.Errorf("-scenario applies to -experiment runs; with -sweep use -scenarios")
		}
	} else {
		switch {
		case f.seeds != "":
			return fmt.Errorf("-seeds only applies with -sweep")
		case f.expsSet:
			return fmt.Errorf("-experiments only applies with -sweep (use -experiment for a single run)")
		case f.scenesSet:
			return fmt.Errorf("-scenarios only applies with -sweep (use -scenario for a single run)")
		case f.cellTimeout != 0:
			return fmt.Errorf("-cell-timeout only applies with -sweep")
		}
	}
	if f.cellTimeout < 0 {
		return fmt.Errorf("-cell-timeout must be >= 0 (got %v)", f.cellTimeout)
	}
	if f.scenario != "" && exp == "" {
		return fmt.Errorf("-scenario requires -experiment")
	}
	return nil
}
