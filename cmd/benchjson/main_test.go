package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func writeFile(t *testing.T, dir, name, content string) string {
	t.Helper()
	path := filepath.Join(dir, name)
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestParseTraceAggregates(t *testing.T) {
	trace := writeFile(t, t.TempDir(), "trace.jsonl", strings.Join([]string{
		`{"span":"table1/estimator","scope":"table1","start_ms":0,"dur_ms":10,"items":4}`,
		``, // blank lines are tolerated
		`{"span":"table1/estimator","scope":"table1","start_ms":10,"dur_ms":30,"items":6,"err":"boom"}`,
		`{"span":"collider/scenario","scope":"collider","start_ms":2,"dur_ms":5}`,
	}, "\n")+"\n")
	stages, err := parseTrace(trace)
	if err != nil {
		t.Fatal(err)
	}
	if len(stages) != 2 {
		t.Fatalf("got %d stages, want 2: %+v", len(stages), stages)
	}
	// Sorted by scope then span: collider first.
	if stages[0].Scope != "collider" || stages[0].Count != 1 || stages[0].TotalMs != 5 {
		t.Fatalf("stage 0 = %+v", stages[0])
	}
	s := stages[1]
	if s.Scope != "table1" || s.Span != "table1/estimator" {
		t.Fatalf("stage 1 = %+v", s)
	}
	if s.Count != 2 || s.TotalMs != 40 || s.MeanMs != 20 || s.Items != 10 || s.Errors != 1 {
		t.Fatalf("aggregation wrong: %+v", s)
	}
}

func TestParseTraceRejectsBadLines(t *testing.T) {
	dir := t.TempDir()
	cases := []struct{ name, content, wantSub string }{
		{"not json", "{broken\n", ":1:"},
		{"missing span name", `{"scope":"x","dur_ms":1}` + "\n", "no name"},
		{"bad mid-file", `{"span":"a","dur_ms":1}` + "\n" + "garbage\n", ":2:"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			_, err := parseTrace(writeFile(t, dir, "t-"+strings.ReplaceAll(c.name, " ", "-")+".jsonl", c.content))
			if err == nil || !strings.Contains(err.Error(), c.wantSub) {
				t.Fatalf("error = %v, want substring %q", err, c.wantSub)
			}
		})
	}
	if _, err := parseTrace(filepath.Join(dir, "absent.jsonl")); err == nil {
		t.Fatal("missing trace file did not error")
	}
}

// TestMergePreservesBenchResults: -merge folds stages into an existing
// report without disturbing recorded benchmark rows, and re-merging
// replaces rather than appends.
func TestMergePreservesBenchResults(t *testing.T) {
	dir := t.TempDir()
	out := writeFile(t, dir, "bench.json", `{
  "goos": "linux",
  "results": [{"name": "BenchmarkX-1", "iterations": 10, "ns_per_op": 123}]
}`)
	trace := writeFile(t, dir, "trace.jsonl",
		`{"span":"table1/report","scope":"table1","dur_ms":2}`+"\n")
	for i := 0; i < 2; i++ { // idempotent across re-merges
		if err := merge(out, trace); err != nil {
			t.Fatal(err)
		}
	}
	blob, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	var rep Report
	if err := json.Unmarshal(blob, &rep); err != nil {
		t.Fatal(err)
	}
	if rep.Goos != "linux" || len(rep.Results) != 1 || rep.Results[0].NsPerOp != 123 {
		t.Fatalf("merge disturbed benchmark rows: %+v", rep)
	}
	if len(rep.Stages) != 1 || rep.Stages[0].Span != "table1/report" || rep.Stages[0].MeanMs != 2 {
		t.Fatalf("stages = %+v", rep.Stages)
	}
}

func TestMergeStartsEmptyWithoutReport(t *testing.T) {
	dir := t.TempDir()
	out := filepath.Join(dir, "fresh.json")
	trace := writeFile(t, dir, "trace.jsonl", `{"span":"a/scenario","dur_ms":1}`+"\n")
	if err := merge(out, trace); err != nil {
		t.Fatal(err)
	}
	var rep Report
	blob, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(blob, &rep); err != nil {
		t.Fatal(err)
	}
	if len(rep.Results) != 0 || len(rep.Stages) != 1 {
		t.Fatalf("fresh merge report = %+v", rep)
	}
}

func TestMergeRejectsCorruptReport(t *testing.T) {
	dir := t.TempDir()
	out := writeFile(t, dir, "bench.json", "{corrupt")
	trace := writeFile(t, dir, "trace.jsonl", `{"span":"a","dur_ms":1}`+"\n")
	if err := merge(out, trace); err == nil {
		t.Fatal("corrupt existing report did not error")
	}
}

func TestParseLineFields(t *testing.T) {
	r, ok := parseLine("BenchmarkFoo-8   120   9876 ns/op   32 B/op   2 allocs/op")
	if !ok {
		t.Fatal("benchmark line not parsed")
	}
	if r.Name != "BenchmarkFoo-8" || r.Iterations != 120 || r.NsPerOp != 9876 || r.BytesPerOp != 32 || r.AllocsPerOp != 2 {
		t.Fatalf("parsed = %+v", r)
	}
	for _, line := range []string{"", "ok  \tsisyphus\t1.2s", "goos: linux", "BenchmarkBad notanumber 5 ns/op"} {
		if _, ok := parseLine(line); ok {
			t.Fatalf("non-benchmark line parsed: %q", line)
		}
	}
}

func TestCompareFlagsRegressions(t *testing.T) {
	oldRep := Report{Results: []Result{
		{Name: "BenchmarkFast-8", NsPerOp: 100},
		{Name: "BenchmarkSlow-8", NsPerOp: 1000},
		{Name: "BenchmarkGone-8", NsPerOp: 50},
	}}
	newRep := Report{Results: []Result{
		{Name: "BenchmarkFast-8", NsPerOp: 105},  // +5%: within threshold
		{Name: "BenchmarkSlow-8", NsPerOp: 1300}, // +30%: regression
		{Name: "BenchmarkNew-8", NsPerOp: 20},    // added: not a regression
	}}
	var sb strings.Builder
	regressed := compare(&sb, oldRep, newRep, 0.10)
	if len(regressed) != 1 || regressed[0] != "BenchmarkSlow-8" {
		t.Fatalf("regressed = %v, want [BenchmarkSlow-8]", regressed)
	}
	out := sb.String()
	for _, want := range []string{"REGRESSION", "added", "removed", "BenchmarkGone-8", "BenchmarkNew-8", "+30.0%"} {
		if !strings.Contains(out, want) {
			t.Fatalf("output missing %q:\n%s", want, out)
		}
	}
	// The in-threshold row must not be marked.
	for _, line := range strings.Split(out, "\n") {
		if strings.Contains(line, "BenchmarkFast-8") && strings.Contains(line, "REGRESSION") {
			t.Fatalf("within-threshold benchmark flagged: %s", line)
		}
	}
}

func TestCompareImprovementsAndEqualPass(t *testing.T) {
	oldRep := Report{Results: []Result{
		{Name: "BenchmarkA-8", NsPerOp: 100},
		{Name: "BenchmarkB-8", NsPerOp: 200},
	}}
	newRep := Report{Results: []Result{
		{Name: "BenchmarkA-8", NsPerOp: 100}, // unchanged
		{Name: "BenchmarkB-8", NsPerOp: 50},  // faster
	}}
	var sb strings.Builder
	if regressed := compare(&sb, oldRep, newRep, 0.10); len(regressed) != 0 {
		t.Fatalf("regressed = %v, want none", regressed)
	}
}

func TestCompareZeroThreshold(t *testing.T) {
	oldRep := Report{Results: []Result{{Name: "BenchmarkA-8", NsPerOp: 100}}}
	newRep := Report{Results: []Result{{Name: "BenchmarkA-8", NsPerOp: 100.5}}}
	var sb strings.Builder
	if regressed := compare(&sb, oldRep, newRep, 0); len(regressed) != 1 {
		t.Fatalf("any slowdown must regress at threshold 0, got %v", regressed)
	}
}
