package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"reflect"
	"sort"
	"strings"
	"testing"
)

func writeFile(t *testing.T, dir, name, content string) string {
	t.Helper()
	path := filepath.Join(dir, name)
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestParseTraceAggregates(t *testing.T) {
	trace := writeFile(t, t.TempDir(), "trace.jsonl", strings.Join([]string{
		`{"span":"table1/estimator","scope":"table1","start_ms":0,"dur_ms":10,"items":4}`,
		``, // blank lines are tolerated
		`{"span":"table1/estimator","scope":"table1","start_ms":10,"dur_ms":30,"items":6,"err":"boom"}`,
		`{"span":"collider/scenario","scope":"collider","start_ms":2,"dur_ms":5}`,
	}, "\n")+"\n")
	stages, err := parseTrace(trace)
	if err != nil {
		t.Fatal(err)
	}
	if len(stages) != 2 {
		t.Fatalf("got %d stages, want 2: %+v", len(stages), stages)
	}
	// Sorted by scope then span: collider first.
	if stages[0].Scope != "collider" || stages[0].Count != 1 || stages[0].TotalMs != 5 {
		t.Fatalf("stage 0 = %+v", stages[0])
	}
	s := stages[1]
	if s.Scope != "table1" || s.Span != "table1/estimator" {
		t.Fatalf("stage 1 = %+v", s)
	}
	if s.Count != 2 || s.TotalMs != 40 || s.MeanMs != 20 || s.Items != 10 || s.Errors != 1 {
		t.Fatalf("aggregation wrong: %+v", s)
	}
}

func TestParseTraceRejectsBadLines(t *testing.T) {
	dir := t.TempDir()
	cases := []struct{ name, content, wantSub string }{
		{"not json", "{broken\n", ":1:"},
		{"missing span name", `{"scope":"x","dur_ms":1}` + "\n", "no name"},
		{"bad mid-file", `{"span":"a","dur_ms":1}` + "\n" + "garbage\n", ":2:"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			_, err := parseTrace(writeFile(t, dir, "t-"+strings.ReplaceAll(c.name, " ", "-")+".jsonl", c.content))
			if err == nil || !strings.Contains(err.Error(), c.wantSub) {
				t.Fatalf("error = %v, want substring %q", err, c.wantSub)
			}
		})
	}
	if _, err := parseTrace(filepath.Join(dir, "absent.jsonl")); err == nil {
		t.Fatal("missing trace file did not error")
	}
}

// TestMergePreservesBenchResults: -merge folds stages into an existing
// report without disturbing recorded benchmark rows, and re-merging
// replaces rather than appends.
func TestMergePreservesBenchResults(t *testing.T) {
	dir := t.TempDir()
	out := writeFile(t, dir, "bench.json", `{
  "goos": "linux",
  "results": [{"name": "BenchmarkX-1", "iterations": 10, "ns_per_op": 123}]
}`)
	trace := writeFile(t, dir, "trace.jsonl",
		`{"span":"table1/report","scope":"table1","dur_ms":2}`+"\n")
	for i := 0; i < 2; i++ { // idempotent across re-merges
		if err := merge(out, trace); err != nil {
			t.Fatal(err)
		}
	}
	blob, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	var rep Report
	if err := json.Unmarshal(blob, &rep); err != nil {
		t.Fatal(err)
	}
	if rep.Goos != "linux" || len(rep.Results) != 1 || rep.Results[0].NsPerOp != 123 {
		t.Fatalf("merge disturbed benchmark rows: %+v", rep)
	}
	if len(rep.Stages) != 1 || rep.Stages[0].Span != "table1/report" || rep.Stages[0].MeanMs != 2 {
		t.Fatalf("stages = %+v", rep.Stages)
	}
}

func TestMergeStartsEmptyWithoutReport(t *testing.T) {
	dir := t.TempDir()
	out := filepath.Join(dir, "fresh.json")
	trace := writeFile(t, dir, "trace.jsonl", `{"span":"a/scenario","dur_ms":1}`+"\n")
	if err := merge(out, trace); err != nil {
		t.Fatal(err)
	}
	var rep Report
	blob, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(blob, &rep); err != nil {
		t.Fatal(err)
	}
	if len(rep.Results) != 0 || len(rep.Stages) != 1 {
		t.Fatalf("fresh merge report = %+v", rep)
	}
}

func TestMergeRejectsCorruptReport(t *testing.T) {
	dir := t.TempDir()
	out := writeFile(t, dir, "bench.json", "{corrupt")
	trace := writeFile(t, dir, "trace.jsonl", `{"span":"a","dur_ms":1}`+"\n")
	if err := merge(out, trace); err == nil {
		t.Fatal("corrupt existing report did not error")
	}
}

func TestParseLineFields(t *testing.T) {
	r, ok := parseLine("BenchmarkFoo-8   120   9876 ns/op   32 B/op   2 allocs/op")
	if !ok {
		t.Fatal("benchmark line not parsed")
	}
	if r.Name != "BenchmarkFoo-8" || r.Iterations != 120 || r.NsPerOp != 9876 || r.BytesPerOp != 32 || r.AllocsPerOp != 2 {
		t.Fatalf("parsed = %+v", r)
	}
	for _, line := range []string{"", "ok  \tsisyphus\t1.2s", "goos: linux", "BenchmarkBad notanumber 5 ns/op"} {
		if _, ok := parseLine(line); ok {
			t.Fatalf("non-benchmark line parsed: %q", line)
		}
	}
}

func TestCompareFlagsRegressions(t *testing.T) {
	oldRep := Report{Results: []Result{
		{Name: "BenchmarkFast-8", NsPerOp: 100},
		{Name: "BenchmarkSlow-8", NsPerOp: 1000},
		{Name: "BenchmarkGone-8", NsPerOp: 50},
	}}
	newRep := Report{Results: []Result{
		{Name: "BenchmarkFast-8", NsPerOp: 105},  // +5%: within threshold
		{Name: "BenchmarkSlow-8", NsPerOp: 1300}, // +30%: regression
		{Name: "BenchmarkNew-8", NsPerOp: 20},    // added: not a regression
	}}
	var sb strings.Builder
	regressed := compare(&sb, oldRep, newRep, 0.10)
	if len(regressed) != 1 || regressed[0] != "BenchmarkSlow-8" {
		t.Fatalf("regressed = %v, want [BenchmarkSlow-8]", regressed)
	}
	out := sb.String()
	for _, want := range []string{"REGRESSION", "added", "removed", "BenchmarkGone-8", "BenchmarkNew-8", "+30.0%"} {
		if !strings.Contains(out, want) {
			t.Fatalf("output missing %q:\n%s", want, out)
		}
	}
	// The in-threshold row must not be marked.
	for _, line := range strings.Split(out, "\n") {
		if strings.Contains(line, "BenchmarkFast-8") && strings.Contains(line, "REGRESSION") {
			t.Fatalf("within-threshold benchmark flagged: %s", line)
		}
	}
}

func TestCompareImprovementsAndEqualPass(t *testing.T) {
	oldRep := Report{Results: []Result{
		{Name: "BenchmarkA-8", NsPerOp: 100},
		{Name: "BenchmarkB-8", NsPerOp: 200},
	}}
	newRep := Report{Results: []Result{
		{Name: "BenchmarkA-8", NsPerOp: 100}, // unchanged
		{Name: "BenchmarkB-8", NsPerOp: 50},  // faster
	}}
	var sb strings.Builder
	if regressed := compare(&sb, oldRep, newRep, 0.10); len(regressed) != 0 {
		t.Fatalf("regressed = %v, want none", regressed)
	}
}

// TestMergeLoadPreservesAndReplaces: -merge-load folds load rows into an
// existing report sorted by name, without disturbing benchmark results or
// stage timings, and a second merge replaces rather than appends.
func TestMergeLoadPreservesAndReplaces(t *testing.T) {
	dir := t.TempDir()
	out := writeFile(t, dir, "bench.json", `{
  "results": [{"name": "BenchmarkX-1", "iterations": 10, "ns_per_op": 123}],
  "stages": [{"span": "table1/report", "count": 1, "total_ms": 2, "mean_ms": 2}]
}`)
	load := writeFile(t, dir, "load.json", `[
  {"name": "query", "requests": 50, "rps": 10, "p50_ms": 1, "p99_ms": 5},
  {"name": "experiment/mlab", "requests": 100, "rps": 20, "p50_ms": 0.5, "p99_ms": 2}
]`)
	for i := 0; i < 2; i++ {
		if err := mergeLoad(out, load); err != nil {
			t.Fatal(err)
		}
	}
	blob, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	var rep Report
	if err := json.Unmarshal(blob, &rep); err != nil {
		t.Fatal(err)
	}
	if len(rep.Results) != 1 || len(rep.Stages) != 1 {
		t.Fatalf("merge-load disturbed bench rows or stages: %+v", rep)
	}
	if len(rep.Load) != 2 || rep.Load[0].Name != "experiment/mlab" || rep.Load[1].Name != "query" {
		t.Fatalf("load rows not sorted by name: %+v", rep.Load)
	}
	if rep.Load[1].RPS != 10 || rep.Load[1].P99Ms != 5 {
		t.Fatalf("load row values drifted: %+v", rep.Load[1])
	}
}

func TestMergeLoadRejectsBadInput(t *testing.T) {
	dir := t.TempDir()
	out := filepath.Join(dir, "bench.json")
	cases := []struct{ name, content string }{
		{"not json", "{broken"},
		{"object not array", `{"name":"x"}`},
		{"nameless row", `[{"requests": 5, "rps": 1}]`},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			load := writeFile(t, dir, "load-"+strings.ReplaceAll(c.name, " ", "-")+".json", c.content)
			if err := mergeLoad(out, load); err == nil {
				t.Fatal("expected an error")
			}
		})
	}
	if err := mergeLoad(out, filepath.Join(dir, "absent.json")); err == nil {
		t.Fatal("missing load file did not error")
	}
}

// TestCompareLoadRegressions holds both axes: a p99 rise and an RPS drop
// each regress independently; added/removed rows never fail; bench rows
// present only in the old report (the committed baseline vs a load-only
// run) are listed as removed, not regressions.
func TestCompareLoadRegressions(t *testing.T) {
	oldRep := Report{
		Results: []Result{{Name: "BenchmarkX-1", NsPerOp: 100}},
		Load: []LoadResult{
			{Name: "steady", RPS: 100, P99Ms: 10},
			{Name: "slower-tail", RPS: 100, P99Ms: 10},
			{Name: "lost-throughput", RPS: 100, P99Ms: 10},
			{Name: "gone", RPS: 50, P99Ms: 5},
		},
	}
	newRep := Report{
		Load: []LoadResult{
			{Name: "steady", RPS: 98, P99Ms: 10.5},        // within threshold
			{Name: "slower-tail", RPS: 100, P99Ms: 16},    // +60% p99: regression
			{Name: "lost-throughput", RPS: 60, P99Ms: 10}, // -40% rps: regression
			{Name: "fresh", RPS: 10, P99Ms: 1},            // added: never fails
		},
	}
	var sb strings.Builder
	regressed := compare(&sb, oldRep, newRep, 0.25)
	want := []string{"load:lost-throughput", "load:slower-tail"}
	sort.Strings(regressed)
	if !reflect.DeepEqual(regressed, want) {
		t.Fatalf("regressed = %v, want %v", regressed, want)
	}
	out := sb.String()
	for _, sub := range []string{"REGRESSION", "added", "removed", "gone", "fresh", "BenchmarkX-1"} {
		if !strings.Contains(out, sub) {
			t.Fatalf("output missing %q:\n%s", sub, out)
		}
	}
	for _, line := range strings.Split(out, "\n") {
		if strings.Contains(line, "steady") && strings.Contains(line, "REGRESSION") {
			t.Fatalf("within-threshold load row flagged: %s", line)
		}
	}
}

func TestCompareLoadImprovementsPass(t *testing.T) {
	oldRep := Report{Load: []LoadResult{{Name: "q", RPS: 100, P99Ms: 10}}}
	newRep := Report{Load: []LoadResult{{Name: "q", RPS: 200, P99Ms: 2}}}
	var sb strings.Builder
	if regressed := compare(&sb, oldRep, newRep, 0.10); len(regressed) != 0 {
		t.Fatalf("faster load run regressed: %v", regressed)
	}
}

func TestCompareZeroThreshold(t *testing.T) {
	oldRep := Report{Results: []Result{{Name: "BenchmarkA-8", NsPerOp: 100}}}
	newRep := Report{Results: []Result{{Name: "BenchmarkA-8", NsPerOp: 100.5}}}
	var sb strings.Builder
	if regressed := compare(&sb, oldRep, newRep, 0); len(regressed) != 1 {
		t.Fatalf("any slowdown must regress at threshold 0, got %v", regressed)
	}
}
