// Command benchjson converts `go test -bench` text output (read from stdin)
// into a JSON benchmark report. It exists so `make bench` can emit a
// machine-readable BENCH_sisyphus.json for CI trend tracking without any
// dependency beyond the standard library; the input lines are echoed to
// stdout unchanged so interactive runs still stream progress.
//
// Usage:
//
//	go test -bench=. -benchmem . | benchjson -out BENCH_sisyphus.json
//	benchjson -merge trace.jsonl -out BENCH_sisyphus.json
//
// The second form folds a `sisyphus -trace` span log into an existing
// report: spans aggregate per (scope, span) into stage-level wall-time
// rows under a "stages" key, so CI tracks pipeline stage timings next to
// the micro-benchmarks. Stdin is not read in merge mode.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sort"
	"strconv"
	"strings"
)

// Result is one parsed benchmark line.
type Result struct {
	Name        string  `json:"name"`
	Iterations  int64   `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op,omitempty"`
	AllocsPerOp int64   `json:"allocs_per_op,omitempty"`
}

// StageTiming is one aggregated pipeline-stage row from a span trace: every
// span with the same (scope, span) pair folds into one entry.
type StageTiming struct {
	Scope   string  `json:"scope,omitempty"`
	Span    string  `json:"span"`
	Count   int     `json:"count"`
	TotalMs float64 `json:"total_ms"`
	MeanMs  float64 `json:"mean_ms"`
	Items   int     `json:"items,omitempty"`
	Errors  int     `json:"errors,omitempty"`
}

// Report is the emitted document.
type Report struct {
	Goos    string        `json:"goos,omitempty"`
	Goarch  string        `json:"goarch,omitempty"`
	Pkg     string        `json:"pkg,omitempty"`
	CPU     string        `json:"cpu,omitempty"`
	Results []Result      `json:"results"`
	Stages  []StageTiming `json:"stages,omitempty"`
}

// parseLine parses a single "BenchmarkX-8  100  123 ns/op  45 B/op  6 allocs/op"
// line; ok is false for any non-benchmark line.
func parseLine(line string) (Result, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
		return Result{}, false
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Result{}, false
	}
	r := Result{Name: fields[0], Iterations: iters}
	for i := 2; i+1 < len(fields); i += 2 {
		v := fields[i]
		switch fields[i+1] {
		case "ns/op":
			r.NsPerOp, err = strconv.ParseFloat(v, 64)
		case "B/op":
			r.BytesPerOp, err = strconv.ParseInt(v, 10, 64)
		case "allocs/op":
			r.AllocsPerOp, err = strconv.ParseInt(v, 10, 64)
		default:
			continue
		}
		if err != nil {
			return Result{}, false
		}
	}
	return r, r.NsPerOp > 0
}

func run(out string) error {
	rep := Report{}
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		fmt.Println(line)
		switch {
		case strings.HasPrefix(line, "goos: "):
			rep.Goos = strings.TrimPrefix(line, "goos: ")
		case strings.HasPrefix(line, "goarch: "):
			rep.Goarch = strings.TrimPrefix(line, "goarch: ")
		case strings.HasPrefix(line, "pkg: "):
			rep.Pkg = strings.TrimPrefix(line, "pkg: ")
		case strings.HasPrefix(line, "cpu: "):
			rep.CPU = strings.TrimPrefix(line, "cpu: ")
		default:
			if r, ok := parseLine(line); ok {
				rep.Results = append(rep.Results, r)
			}
		}
	}
	if err := sc.Err(); err != nil {
		return err
	}
	b, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(out, append(b, '\n'), 0o644)
}

// span mirrors the obs.Span JSONL schema; only the fields the aggregation
// needs are decoded.
type span struct {
	Span  string  `json:"span"`
	Scope string  `json:"scope"`
	DurMs float64 `json:"dur_ms"`
	Items int     `json:"items"`
	Err   string  `json:"err"`
}

// parseTrace aggregates a JSONL span log into sorted stage timings. A line
// that is not a valid span object is an error — a trace half-written by a
// crashed run should fail loudly, not fold into a misleading report.
func parseTrace(path string) ([]StageTiming, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	type key struct{ scope, name string }
	agg := make(map[key]*StageTiming)
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<20)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		var s span
		if err := json.Unmarshal([]byte(line), &s); err != nil {
			return nil, fmt.Errorf("%s:%d: %w", path, lineNo, err)
		}
		if s.Span == "" {
			return nil, fmt.Errorf("%s:%d: span record has no name", path, lineNo)
		}
		k := key{s.Scope, s.Span}
		t, ok := agg[k]
		if !ok {
			t = &StageTiming{Scope: s.Scope, Span: s.Span}
			agg[k] = t
		}
		t.Count++
		t.TotalMs += s.DurMs
		t.Items += s.Items
		if s.Err != "" {
			t.Errors++
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	stages := make([]StageTiming, 0, len(agg))
	for _, t := range agg {
		t.MeanMs = t.TotalMs / float64(t.Count)
		stages = append(stages, *t)
	}
	sort.Slice(stages, func(i, j int) bool {
		if stages[i].Scope != stages[j].Scope {
			return stages[i].Scope < stages[j].Scope
		}
		return stages[i].Span < stages[j].Span
	})
	return stages, nil
}

// merge folds a span trace into the report at out, preserving any benchmark
// results already recorded there. A missing report starts empty: merging a
// trace before the first bench run is legitimate.
func merge(out, tracePath string) error {
	rep := Report{}
	if b, err := os.ReadFile(out); err == nil {
		if err := json.Unmarshal(b, &rep); err != nil {
			return fmt.Errorf("%s: %w", out, err)
		}
	} else if !os.IsNotExist(err) {
		return err
	}
	stages, err := parseTrace(tracePath)
	if err != nil {
		return err
	}
	rep.Stages = stages
	b, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(out, append(b, '\n'), 0o644)
}

func main() {
	out := flag.String("out", "BENCH_sisyphus.json", "path for the JSON report")
	mergeTrace := flag.String("merge", "", "fold a sisyphus -trace JSONL span log into the report instead of reading stdin")
	flag.Parse()
	if *mergeTrace != "" {
		if err := merge(*out, *mergeTrace); err != nil {
			fmt.Fprintln(os.Stderr, "benchjson:", err)
			os.Exit(1)
		}
		return
	}
	if err := run(*out); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}
