// Command benchjson converts `go test -bench` text output (read from stdin)
// into a JSON benchmark report. It exists so `make bench` can emit a
// machine-readable BENCH_sisyphus.json for CI trend tracking without any
// dependency beyond the standard library; the input lines are echoed to
// stdout unchanged so interactive runs still stream progress.
//
// Usage:
//
//	go test -bench=. -benchmem . | benchjson -out BENCH_sisyphus.json
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
)

// Result is one parsed benchmark line.
type Result struct {
	Name        string  `json:"name"`
	Iterations  int64   `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op,omitempty"`
	AllocsPerOp int64   `json:"allocs_per_op,omitempty"`
}

// Report is the emitted document.
type Report struct {
	Goos    string   `json:"goos,omitempty"`
	Goarch  string   `json:"goarch,omitempty"`
	Pkg     string   `json:"pkg,omitempty"`
	CPU     string   `json:"cpu,omitempty"`
	Results []Result `json:"results"`
}

// parseLine parses a single "BenchmarkX-8  100  123 ns/op  45 B/op  6 allocs/op"
// line; ok is false for any non-benchmark line.
func parseLine(line string) (Result, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
		return Result{}, false
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Result{}, false
	}
	r := Result{Name: fields[0], Iterations: iters}
	for i := 2; i+1 < len(fields); i += 2 {
		v := fields[i]
		switch fields[i+1] {
		case "ns/op":
			r.NsPerOp, err = strconv.ParseFloat(v, 64)
		case "B/op":
			r.BytesPerOp, err = strconv.ParseInt(v, 10, 64)
		case "allocs/op":
			r.AllocsPerOp, err = strconv.ParseInt(v, 10, 64)
		default:
			continue
		}
		if err != nil {
			return Result{}, false
		}
	}
	return r, r.NsPerOp > 0
}

func run(out string) error {
	rep := Report{}
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		fmt.Println(line)
		switch {
		case strings.HasPrefix(line, "goos: "):
			rep.Goos = strings.TrimPrefix(line, "goos: ")
		case strings.HasPrefix(line, "goarch: "):
			rep.Goarch = strings.TrimPrefix(line, "goarch: ")
		case strings.HasPrefix(line, "pkg: "):
			rep.Pkg = strings.TrimPrefix(line, "pkg: ")
		case strings.HasPrefix(line, "cpu: "):
			rep.CPU = strings.TrimPrefix(line, "cpu: ")
		default:
			if r, ok := parseLine(line); ok {
				rep.Results = append(rep.Results, r)
			}
		}
	}
	if err := sc.Err(); err != nil {
		return err
	}
	b, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(out, append(b, '\n'), 0o644)
}

func main() {
	out := flag.String("out", "BENCH_sisyphus.json", "path for the JSON report")
	flag.Parse()
	if err := run(*out); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}
