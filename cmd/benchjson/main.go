// Command benchjson converts `go test -bench` text output (read from stdin)
// into a JSON benchmark report. It exists so `make bench` can emit a
// machine-readable BENCH_sisyphus.json for CI trend tracking without any
// dependency beyond the standard library; the input lines are echoed to
// stdout unchanged so interactive runs still stream progress.
//
// Usage:
//
//	go test -bench=. -benchmem . | benchjson -out BENCH_sisyphus.json
//	benchjson -merge trace.jsonl -out BENCH_sisyphus.json
//	benchjson -merge-load load.json -out BENCH_sisyphus.json
//	benchjson -compare [-threshold 0.10] old.json new.json
//
// The second form folds a `sisyphus -trace` span log into an existing
// report: spans aggregate per (scope, span) into stage-level wall-time
// rows under a "stages" key, so CI tracks pipeline stage timings next to
// the micro-benchmarks. Stdin is not read in merge mode.
//
// The third form folds a `loadtest` run (a JSON array of per-route rows)
// into the report under a "load" key, so serving-path throughput and tail
// latency live next to the micro-benchmarks they depend on.
//
// The fourth form diffs two reports: it prints a per-benchmark ns/op delta
// table and exits non-zero if any benchmark present in both reports slowed
// down by more than the -threshold fraction. Load rows present in both are
// held to the same threshold on p99 latency (up) and throughput (down).
// Entries only in one report are listed as added/removed but never fail
// the comparison — renames and new coverage are not regressions.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strconv"
	"strings"
)

// Result is one parsed benchmark line.
type Result struct {
	Name        string  `json:"name"`
	Iterations  int64   `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op,omitempty"`
	AllocsPerOp int64   `json:"allocs_per_op,omitempty"`
}

// StageTiming is one aggregated pipeline-stage row from a span trace: every
// span with the same (scope, span) pair folds into one entry.
type StageTiming struct {
	Scope   string  `json:"scope,omitempty"`
	Span    string  `json:"span"`
	Count   int     `json:"count"`
	TotalMs float64 `json:"total_ms"`
	MeanMs  float64 `json:"mean_ms"`
	Items   int     `json:"items,omitempty"`
	Errors  int     `json:"errors,omitempty"`
}

// LoadResult is one request-class row from a `loadtest` run: throughput and
// latency quantiles for a fixed request mix against a warm server.
type LoadResult struct {
	Name     string  `json:"name"`
	Requests int64   `json:"requests"`
	Errors   int64   `json:"errors,omitempty"`
	RPS      float64 `json:"rps"`
	P50Ms    float64 `json:"p50_ms"`
	P99Ms    float64 `json:"p99_ms"`
}

// Report is the emitted document.
type Report struct {
	Goos    string        `json:"goos,omitempty"`
	Goarch  string        `json:"goarch,omitempty"`
	Pkg     string        `json:"pkg,omitempty"`
	CPU     string        `json:"cpu,omitempty"`
	Results []Result      `json:"results"`
	Stages  []StageTiming `json:"stages,omitempty"`
	Load    []LoadResult  `json:"load,omitempty"`
}

// parseLine parses a single "BenchmarkX-8  100  123 ns/op  45 B/op  6 allocs/op"
// line; ok is false for any non-benchmark line.
func parseLine(line string) (Result, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
		return Result{}, false
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Result{}, false
	}
	r := Result{Name: fields[0], Iterations: iters}
	for i := 2; i+1 < len(fields); i += 2 {
		v := fields[i]
		switch fields[i+1] {
		case "ns/op":
			r.NsPerOp, err = strconv.ParseFloat(v, 64)
		case "B/op":
			r.BytesPerOp, err = strconv.ParseInt(v, 10, 64)
		case "allocs/op":
			r.AllocsPerOp, err = strconv.ParseInt(v, 10, 64)
		default:
			continue
		}
		if err != nil {
			return Result{}, false
		}
	}
	return r, r.NsPerOp > 0
}

func run(out string) error {
	rep := Report{}
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		fmt.Println(line)
		switch {
		case strings.HasPrefix(line, "goos: "):
			rep.Goos = strings.TrimPrefix(line, "goos: ")
		case strings.HasPrefix(line, "goarch: "):
			rep.Goarch = strings.TrimPrefix(line, "goarch: ")
		case strings.HasPrefix(line, "pkg: "):
			rep.Pkg = strings.TrimPrefix(line, "pkg: ")
		case strings.HasPrefix(line, "cpu: "):
			rep.CPU = strings.TrimPrefix(line, "cpu: ")
		default:
			if r, ok := parseLine(line); ok {
				rep.Results = append(rep.Results, r)
			}
		}
	}
	if err := sc.Err(); err != nil {
		return err
	}
	b, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(out, append(b, '\n'), 0o644)
}

// span mirrors the obs.Span JSONL schema; only the fields the aggregation
// needs are decoded.
type span struct {
	Span  string  `json:"span"`
	Scope string  `json:"scope"`
	DurMs float64 `json:"dur_ms"`
	Items int     `json:"items"`
	Err   string  `json:"err"`
}

// parseTrace aggregates a JSONL span log into sorted stage timings. A line
// that is not a valid span object is an error — a trace half-written by a
// crashed run should fail loudly, not fold into a misleading report.
func parseTrace(path string) ([]StageTiming, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	type key struct{ scope, name string }
	agg := make(map[key]*StageTiming)
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<20)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		var s span
		if err := json.Unmarshal([]byte(line), &s); err != nil {
			return nil, fmt.Errorf("%s:%d: %w", path, lineNo, err)
		}
		if s.Span == "" {
			return nil, fmt.Errorf("%s:%d: span record has no name", path, lineNo)
		}
		k := key{s.Scope, s.Span}
		t, ok := agg[k]
		if !ok {
			t = &StageTiming{Scope: s.Scope, Span: s.Span}
			agg[k] = t
		}
		t.Count++
		t.TotalMs += s.DurMs
		t.Items += s.Items
		if s.Err != "" {
			t.Errors++
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	stages := make([]StageTiming, 0, len(agg))
	for _, t := range agg {
		t.MeanMs = t.TotalMs / float64(t.Count)
		stages = append(stages, *t)
	}
	sort.Slice(stages, func(i, j int) bool {
		if stages[i].Scope != stages[j].Scope {
			return stages[i].Scope < stages[j].Scope
		}
		return stages[i].Span < stages[j].Span
	})
	return stages, nil
}

// merge folds a span trace into the report at out, preserving any benchmark
// results already recorded there. A missing report starts empty: merging a
// trace before the first bench run is legitimate.
func merge(out, tracePath string) error {
	rep := Report{}
	if b, err := os.ReadFile(out); err == nil {
		if err := json.Unmarshal(b, &rep); err != nil {
			return fmt.Errorf("%s: %w", out, err)
		}
	} else if !os.IsNotExist(err) {
		return err
	}
	stages, err := parseTrace(tracePath)
	if err != nil {
		return err
	}
	rep.Stages = stages
	b, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(out, append(b, '\n'), 0o644)
}

// mergeLoad folds a loadtest output file (a JSON array of LoadResult rows)
// into the report at out, preserving benchmark results and stage timings
// already recorded there. Re-merging replaces the load section rather than
// appending — the report holds one load run, the latest.
func mergeLoad(out, loadPath string) error {
	rep := Report{}
	if b, err := os.ReadFile(out); err == nil {
		if err := json.Unmarshal(b, &rep); err != nil {
			return fmt.Errorf("%s: %w", out, err)
		}
	} else if !os.IsNotExist(err) {
		return err
	}
	b, err := os.ReadFile(loadPath)
	if err != nil {
		return err
	}
	var load []LoadResult
	if err := json.Unmarshal(b, &load); err != nil {
		return fmt.Errorf("%s: %w", loadPath, err)
	}
	for i, l := range load {
		if l.Name == "" {
			return fmt.Errorf("%s: load row %d has no name", loadPath, i)
		}
	}
	sort.Slice(load, func(i, j int) bool { return load[i].Name < load[j].Name })
	rep.Load = load
	b, err = json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(out, append(b, '\n'), 0o644)
}

// readReport loads and decodes one JSON benchmark report.
func readReport(path string) (Report, error) {
	var rep Report
	b, err := os.ReadFile(path)
	if err != nil {
		return rep, err
	}
	if err := json.Unmarshal(b, &rep); err != nil {
		return rep, fmt.Errorf("%s: %w", path, err)
	}
	return rep, nil
}

// compare prints a per-benchmark delta table between two reports and reports
// whether any benchmark present in both regressed (slowed down) by more than
// threshold, expressed as a fraction of the old ns/op. Added and removed
// benchmarks are listed for the reader but never count as regressions.
func compare(w io.Writer, oldRep, newRep Report, threshold float64) (regressed []string) {
	oldBy := make(map[string]Result, len(oldRep.Results))
	for _, r := range oldRep.Results {
		oldBy[r.Name] = r
	}
	newBy := make(map[string]Result, len(newRep.Results))
	for _, r := range newRep.Results {
		newBy[r.Name] = r
	}
	var names []string
	for name := range oldBy {
		if _, ok := newBy[name]; ok {
			names = append(names, name)
		}
	}
	sort.Strings(names)

	fmt.Fprintf(w, "%-50s %14s %14s %8s\n", "benchmark", "old ns/op", "new ns/op", "delta")
	for _, name := range names {
		o, n := oldBy[name], newBy[name]
		delta := (n.NsPerOp - o.NsPerOp) / o.NsPerOp
		mark := ""
		if delta > threshold {
			mark = "  REGRESSION"
			regressed = append(regressed, name)
		}
		fmt.Fprintf(w, "%-50s %14.1f %14.1f %+7.1f%%%s\n", name, o.NsPerOp, n.NsPerOp, 100*delta, mark)
	}
	for _, r := range newRep.Results {
		if _, ok := oldBy[r.Name]; !ok {
			fmt.Fprintf(w, "%-50s %14s %14.1f   added\n", r.Name, "-", r.NsPerOp)
		}
	}
	for _, r := range oldRep.Results {
		if _, ok := newBy[r.Name]; !ok {
			fmt.Fprintf(w, "%-50s %14.1f %14s   removed\n", r.Name, r.NsPerOp, "-")
		}
	}
	regressed = append(regressed, compareLoad(w, oldRep.Load, newRep.Load, threshold)...)
	return regressed
}

// compareLoad diffs the load sections of two reports. A row present in both
// regresses when its p99 latency rises, or its throughput falls, by more
// than threshold as a fraction of the old value — a server can get slower
// at the tail without losing aggregate throughput, so both axes are held.
// Rows only in one report are listed but never fail.
func compareLoad(w io.Writer, oldLoad, newLoad []LoadResult, threshold float64) (regressed []string) {
	if len(oldLoad) == 0 && len(newLoad) == 0 {
		return nil
	}
	oldBy := make(map[string]LoadResult, len(oldLoad))
	for _, l := range oldLoad {
		oldBy[l.Name] = l
	}
	newBy := make(map[string]LoadResult, len(newLoad))
	for _, l := range newLoad {
		newBy[l.Name] = l
	}
	var names []string
	for name := range oldBy {
		if _, ok := newBy[name]; ok {
			names = append(names, name)
		}
	}
	sort.Strings(names)

	fmt.Fprintf(w, "\n%-30s %10s %10s %10s %10s %10s %10s\n",
		"load class", "old rps", "new rps", "old p99", "new p99", "Δrps", "Δp99")
	for _, name := range names {
		o, n := oldBy[name], newBy[name]
		dRPS, dP99 := 0.0, 0.0
		if o.RPS > 0 {
			dRPS = (n.RPS - o.RPS) / o.RPS
		}
		if o.P99Ms > 0 {
			dP99 = (n.P99Ms - o.P99Ms) / o.P99Ms
		}
		mark := ""
		if dP99 > threshold || -dRPS > threshold {
			mark = "  REGRESSION"
			regressed = append(regressed, "load:"+name)
		}
		fmt.Fprintf(w, "%-30s %10.1f %10.1f %9.2fms %9.2fms %+9.1f%% %+9.1f%%%s\n",
			name, o.RPS, n.RPS, o.P99Ms, n.P99Ms, 100*dRPS, 100*dP99, mark)
	}
	for _, l := range newLoad {
		if _, ok := oldBy[l.Name]; !ok {
			fmt.Fprintf(w, "%-30s %10s %10.1f   added\n", l.Name, "-", l.RPS)
		}
	}
	for _, l := range oldLoad {
		if _, ok := newBy[l.Name]; !ok {
			fmt.Fprintf(w, "%-30s %10.1f %10s   removed\n", l.Name, l.RPS, "-")
		}
	}
	return regressed
}

func main() {
	out := flag.String("out", "BENCH_sisyphus.json", "path for the JSON report")
	mergeTrace := flag.String("merge", "", "fold a sisyphus -trace JSONL span log into the report instead of reading stdin")
	mergeLoadFile := flag.String("merge-load", "", "fold a loadtest JSON output file into the report instead of reading stdin")
	compareMode := flag.Bool("compare", false, "compare two reports (old.json new.json) and exit non-zero on regressions")
	threshold := flag.Float64("threshold", 0.10, "with -compare, the ns/op slowdown fraction that counts as a regression")
	flag.Parse()
	if *compareMode {
		if flag.NArg() != 2 {
			fmt.Fprintln(os.Stderr, "benchjson: -compare needs exactly two arguments: old.json new.json")
			os.Exit(2)
		}
		if *threshold < 0 {
			fmt.Fprintf(os.Stderr, "benchjson: -threshold must be >= 0 (got %v)\n", *threshold)
			os.Exit(2)
		}
		oldRep, err := readReport(flag.Arg(0))
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchjson:", err)
			os.Exit(1)
		}
		newRep, err := readReport(flag.Arg(1))
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchjson:", err)
			os.Exit(1)
		}
		if regressed := compare(os.Stdout, oldRep, newRep, *threshold); len(regressed) > 0 {
			fmt.Fprintf(os.Stderr, "benchjson: %d benchmark(s) regressed beyond %.0f%%: %s\n",
				len(regressed), 100**threshold, strings.Join(regressed, ", "))
			os.Exit(1)
		}
		return
	}
	if *mergeTrace != "" {
		if err := merge(*out, *mergeTrace); err != nil {
			fmt.Fprintln(os.Stderr, "benchjson:", err)
			os.Exit(1)
		}
		return
	}
	if *mergeLoadFile != "" {
		if err := mergeLoad(*out, *mergeLoadFile); err != nil {
			fmt.Fprintln(os.Stderr, "benchjson:", err)
			os.Exit(1)
		}
		return
	}
	if err := run(*out); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}
