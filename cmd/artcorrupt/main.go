// Command artcorrupt flips one byte in each given file — the corruption
// injector behind `make verify-warm-cache`, which proves a cache directory
// full of bit rot still reproduces the pinned goldens via silent rebuilds.
//
// Usage:
//
//	artcorrupt [-offset N] file...
//
// The byte at the (file-size-clamped) offset is XORed with 0xFF, which is
// guaranteed to change it — a shell `dd` writing a fixed value could land on
// a byte that already held it, silently weakening the CI gate to a no-op.
package main

import (
	"flag"
	"fmt"
	"os"
)

func corrupt(path string, offset int64) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	if len(data) == 0 {
		return fmt.Errorf("%s: empty file, nothing to corrupt", path)
	}
	i := offset
	if i < 0 || i >= int64(len(data)) {
		i = int64(len(data)) / 2
	}
	data[i] ^= 0xFF
	info, err := os.Stat(path)
	if err != nil {
		return err
	}
	return os.WriteFile(path, data, info.Mode().Perm())
}

func main() {
	offset := flag.Int64("offset", -1, "byte offset to flip (default: middle of each file)")
	flag.Parse()
	if flag.NArg() == 0 {
		fmt.Fprintln(os.Stderr, "artcorrupt: no files given")
		os.Exit(2)
	}
	for _, path := range flag.Args() {
		if err := corrupt(path, *offset); err != nil {
			fmt.Fprintln(os.Stderr, "artcorrupt:", err)
			os.Exit(1)
		}
	}
}
