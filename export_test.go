package sisyphus

import (
	"sisyphus/internal/causal/dag"
	"sisyphus/internal/causal/data"
	"sisyphus/internal/causal/estimate"
	"sisyphus/internal/mathx"
)

// ciHelper exposes estimate.CITest to the package tests without exporting it
// through the public API.
func ciHelper(f *data.Frame, x, y string, controls []string) (estimate.CITestResult, error) {
	return estimate.CITest(f, x, y, controls)
}

// randomBenchDAG builds a random DAG for benchmarking d-separation.
func randomBenchDAG(r *mathx.RNG, n int, p float64) *dag.Graph {
	g := dag.New()
	names := make([]string, n)
	for i := range names {
		names[i] = string(rune('A' + i))
		g.AddNode(names[i])
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if r.Bernoulli(p) {
				g.MustEdge(names[i], names[j])
			}
		}
	}
	return g
}
