package sisyphus

import (
	"strings"
	"testing"
)

func validStudy(t *testing.T, seed uint64, n int, effect float64) *Study {
	t.Helper()
	s := NewStudy("validation battery")
	if err := s.WithGraphText("C -> R; C -> L; R -> L"); err != nil {
		t.Fatal(err)
	}
	if err := s.Effect("R", "L"); err != nil {
		t.Fatal(err)
	}
	s.WithData(confoundedFrame(seed, n, effect))
	return s
}

func TestRefuteBatteryPasses(t *testing.T) {
	s := validStudy(t, 21, 4000, 3)
	refs, err := s.Refute(1)
	if err != nil {
		t.Fatal(err)
	}
	if len(refs) != 3 {
		t.Fatalf("refutations = %d", len(refs))
	}
	for _, r := range refs {
		if !r.Passed {
			t.Fatalf("refuter failed on a sound study: %v", r)
		}
	}
}

func TestRefuteRequiresBackdoor(t *testing.T) {
	s := NewStudy("latent")
	_ = s.WithGraphText("U [latent]; U -> R; U -> L; R -> L")
	_ = s.Effect("R", "L")
	s.WithData(confoundedFrame(22, 500, 1))
	if _, err := s.Refute(1); err == nil {
		t.Fatal("refute without backdoor accepted")
	}
	s2 := NewStudy("no data")
	_ = s2.WithGraphText("C -> R; C -> L; R -> L")
	_ = s2.Effect("R", "L")
	if _, err := s2.Refute(1); err == nil {
		t.Fatal("refute without data accepted")
	}
}

func TestSensitivityReport(t *testing.T) {
	s := validStudy(t, 23, 6000, 3)
	rep, err := s.SensitivityReport()
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"E-value (point)", "E-value (CI edge)", "unmeasured confounder"} {
		if !strings.Contains(rep, want) {
			t.Fatalf("report missing %q:\n%s", want, rep)
		}
	}
}

func TestStructureCheckAgreesWithTrueGraph(t *testing.T) {
	s := validStudy(t, 24, 8000, 3)
	cmp, pdag, err := s.StructureCheck()
	if err != nil {
		t.Fatal(err)
	}
	if pdag == nil {
		t.Fatal("no pdag returned")
	}
	if len(cmp.SkeletonMissing) != 0 || len(cmp.SkeletonExtra) != 0 {
		t.Fatalf("structure check disagreed on a correct graph: %+v (%v)", cmp, pdag)
	}
}

func TestStructureCheckFlagsWrongGraph(t *testing.T) {
	// Assumed graph omits C → L; data contain it. The discovery must
	// report an extra adjacency the assumed graph lacks.
	s := NewStudy("wrong graph")
	if err := s.WithGraphText("C -> R; R -> L"); err != nil {
		t.Fatal(err)
	}
	if err := s.Effect("R", "L"); err != nil {
		t.Fatal(err)
	}
	s.WithData(confoundedFrame(25, 8000, 3))
	cmp, _, err := s.StructureCheck()
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, e := range cmp.SkeletonExtra {
		if (e[0] == "C" && e[1] == "L") || (e[0] == "L" && e[1] == "C") {
			found = true
		}
	}
	if !found {
		t.Fatalf("missing C—L dependence not flagged: %+v", cmp)
	}
}

func TestStructureCheckGuards(t *testing.T) {
	s := NewStudy("x")
	if _, _, err := s.StructureCheck(); err == nil {
		t.Fatal("no graph accepted")
	}
	_ = s.WithGraphText("A -> B")
	if _, _, err := s.StructureCheck(); err == nil {
		t.Fatal("no data accepted")
	}
}

func TestObservedSubgraph(t *testing.T) {
	s := NewStudy("x")
	_ = s.WithGraphText("U [latent]; U -> R; C -> R; R -> L")
	g := s.observedSubgraph()
	if g.Has("U") {
		t.Fatal("latent node leaked")
	}
	if !g.HasEdge("C", "R") || !g.HasEdge("R", "L") {
		t.Fatal("observed edges lost")
	}
}
