//go:build !unix

package artifact

// Non-unix platforms have no flock; the disk tier runs lockless there.
// Correctness never depended on the lock — writes are temp+rename atomic and
// concurrent builders of one key write identical bytes — the lock only
// avoids duplicated build work across processes.
type fileLock struct{}

func tryFlock(path string) (*fileLock, error) { return &fileLock{}, nil }

func (l *fileLock) release() {}
