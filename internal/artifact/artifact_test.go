package artifact

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
)

// keyCfg is a test config; FieldB before FieldA in construction order below
// exercises the declaration-order canonicalization.
type keyCfg struct {
	FieldA int
	FieldB string
	Skip   string `json:"-"`
}

func TestKeyCanonicalization(t *testing.T) {
	// Equal configs, different construction order, equal keys.
	k1, err := NewKey("world", "southafrica", 0, keyCfg{FieldA: 1, FieldB: "x"})
	if err != nil {
		t.Fatal(err)
	}
	k2, err := NewKey("world", "southafrica", 0, keyCfg{FieldB: "x", FieldA: 1})
	if err != nil {
		t.Fatal(err)
	}
	if k1 != k2 {
		t.Fatalf("equal configs produced distinct keys: %v vs %v", k1, k2)
	}

	// json:"-" fields must not participate: analysis-side knobs share builds.
	k3, err := NewKey("world", "southafrica", 0, keyCfg{FieldA: 1, FieldB: "x", Skip: "different"})
	if err != nil {
		t.Fatal(err)
	}
	if k1 != k3 {
		t.Fatalf(`json:"-" field leaked into the key: %v vs %v`, k1, k3)
	}

	// Map configs canonicalize by sorted key regardless of insertion order.
	m1 := map[string]int{"a": 1, "b": 2}
	m2 := map[string]int{"b": 2, "a": 1}
	km1, _ := NewKey("k", "s", 0, m1)
	km2, _ := NewKey("k", "s", 0, m2)
	if km1 != km2 {
		t.Fatalf("map insertion order changed the key")
	}

	// Nil config is the sentinel hash, stable across calls.
	kn1, _ := NewKey("rib", "southafrica", 0, nil)
	kn2, _ := NewKey("rib", "southafrica", 0, nil)
	if kn1 != kn2 || kn1.ConfigHash != "-" {
		t.Fatalf("nil config keys = %v, %v", kn1, kn2)
	}
}

func TestKeyNeverCollides(t *testing.T) {
	seen := make(map[Key]string)
	record := func(desc string, k Key, err error) {
		t.Helper()
		if err != nil {
			t.Fatalf("%s: %v", desc, err)
		}
		if prev, dup := seen[k]; dup {
			t.Fatalf("key collision: %q and %q both map to %v", prev, desc, k)
		}
		seen[k] = desc
	}
	// Sweep each coordinate independently: kind, scenario, seed, config.
	for _, kind := range []string{"world", "rib", "campaign"} {
		for _, sc := range []string{"southafrica", "tromboneera"} {
			for seed := uint64(0); seed < 4; seed++ {
				for cfgv := 0; cfgv < 4; cfgv++ {
					k, err := NewKey(kind, sc, seed, keyCfg{FieldA: cfgv})
					record(fmt.Sprintf("%s/%s/%d/%d", kind, sc, seed, cfgv), k, err)
				}
				k, err := NewKey(kind, sc, seed, nil)
				record(fmt.Sprintf("%s/%s/%d/nil", kind, sc, seed), k, err)
			}
		}
	}
}

func TestKeyRejectsUnmarshalable(t *testing.T) {
	if _, err := NewKey("k", "s", 0, func() {}); err == nil {
		t.Fatal("func config must error, not hash")
	}
}

func TestKeyString(t *testing.T) {
	k, _ := NewKey("campaign", "southafrica", 42, keyCfg{FieldA: 7})
	s := k.String()
	if !strings.HasPrefix(s, "campaign/southafrica/seed42/") {
		t.Fatalf("String() = %q", s)
	}
	if got := len(s) - len("campaign/southafrica/seed42/"); got != 12 {
		t.Fatalf("hash prefix length = %d, want 12", got)
	}
}

// boxSpec builds *[]int artifacts so mutation through the returned pointer is
// observable if forking ever breaks.
func boxSpec(builds *atomic.Int64, val []int) Spec[*[]int] {
	return Spec[*[]int]{
		Build: func(ctx context.Context) (*[]int, error) {
			if builds != nil {
				builds.Add(1)
			}
			v := append([]int(nil), val...)
			return &v, nil
		},
		Fork: func(p *[]int) *[]int {
			v := append([]int(nil), *p...)
			return &v
		},
		Size: func(p *[]int) int64 { return int64(8 * len(*p)) },
	}
}

func TestGetOrBuildBuildsOnce(t *testing.T) {
	ctx := context.Background()
	s := NewStore()
	key, _ := NewKey("world", "s", 0, nil)
	var builds atomic.Int64
	spec := boxSpec(&builds, []int{1, 2, 3})
	for i := 0; i < 5; i++ {
		v, err := GetOrBuild(ctx, s, key, spec)
		if err != nil {
			t.Fatal(err)
		}
		if len(*v) != 3 {
			t.Fatalf("fetch %d: %v", i, *v)
		}
	}
	if builds.Load() != 1 {
		t.Fatalf("builds = %d, want 1", builds.Load())
	}
	st := s.Stats()
	if st.Misses != 1 || st.Hits != 4 || st.Builds != 1 || st.Entries != 1 || st.Bytes != 24 {
		t.Fatalf("stats = %+v", st)
	}
	pk := s.PerKey()[key]
	if pk.Builds != 1 || pk.Misses != 1 || pk.Hits != 4 {
		t.Fatalf("per-key stats = %+v", pk)
	}
}

func TestGetOrBuildMutationSafety(t *testing.T) {
	ctx := context.Background()
	s := NewStore()
	key, _ := NewKey("world", "s", 0, nil)
	spec := boxSpec(nil, []int{10, 20})

	// The builder's own return value must already be a fork: mutating it
	// cannot perturb later fetches.
	first, err := GetOrBuild(ctx, s, key, spec)
	if err != nil {
		t.Fatal(err)
	}
	(*first)[0] = -1
	*first = append(*first, 999)

	second, err := GetOrBuild(ctx, s, key, spec)
	if err != nil {
		t.Fatal(err)
	}
	if (*second)[0] != 10 || len(*second) != 2 {
		t.Fatalf("stored artifact perturbed by caller mutation: %v", *second)
	}
	// And forks are independent of each other.
	(*second)[1] = -2
	third, _ := GetOrBuild(ctx, s, key, spec)
	if (*third)[1] != 20 {
		t.Fatalf("forks share state: %v", *third)
	}
}

func TestGetOrBuildSingleflight(t *testing.T) {
	ctx := context.Background()
	s := NewStore()
	key, _ := NewKey("world", "s", 0, nil)
	var builds atomic.Int64
	release := make(chan struct{})
	spec := Spec[*[]int]{
		Build: func(ctx context.Context) (*[]int, error) {
			builds.Add(1)
			<-release // hold the build so every goroutine piles onto one flight
			v := []int{7}
			return &v, nil
		},
		Fork: boxSpec(nil, nil).Fork,
	}
	const n = 16
	var wg sync.WaitGroup
	errs := make([]error, n)
	vals := make([]*[]int, n)
	started := make(chan struct{}, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			started <- struct{}{}
			vals[i], errs[i] = GetOrBuild(ctx, s, key, spec)
		}(i)
	}
	for i := 0; i < n; i++ {
		<-started
	}
	close(release)
	wg.Wait()
	if builds.Load() != 1 {
		t.Fatalf("builds = %d, want 1 (singleflight)", builds.Load())
	}
	forked := make(map[*[]int]bool)
	for i := 0; i < n; i++ {
		if errs[i] != nil {
			t.Fatalf("goroutine %d: %v", i, errs[i])
		}
		if (*vals[i])[0] != 7 {
			t.Fatalf("goroutine %d got %v", i, *vals[i])
		}
		if forked[vals[i]] {
			t.Fatalf("two goroutines share one fork")
		}
		forked[vals[i]] = true
	}
	if st := s.Stats(); st.Builds != 1 || st.Hits+st.Misses != n {
		t.Fatalf("stats = %+v", st)
	}
}

func TestGetOrBuildErrorsNotCached(t *testing.T) {
	ctx := context.Background()
	s := NewStore()
	key, _ := NewKey("world", "s", 0, nil)
	boom := errors.New("boom")
	fail := true
	spec := Spec[*[]int]{
		Build: func(ctx context.Context) (*[]int, error) {
			if fail {
				return nil, boom
			}
			v := []int{1}
			return &v, nil
		},
		Fork: boxSpec(nil, nil).Fork,
	}
	if _, err := GetOrBuild(ctx, s, key, spec); !errors.Is(err, boom) {
		t.Fatalf("err = %v, want boom", err)
	}
	if st := s.Stats(); st.Entries != 0 {
		t.Fatalf("failed build left a resident entry: %+v", st)
	}
	// The next request must retry the build, not replay the error.
	fail = false
	v, err := GetOrBuild(ctx, s, key, spec)
	if err != nil || (*v)[0] != 1 {
		t.Fatalf("retry after failure = %v, %v", v, err)
	}
}

func TestGetOrBuildNilStore(t *testing.T) {
	ctx := context.Background()
	key, _ := NewKey("world", "s", 0, nil)
	var builds atomic.Int64
	// Fork deliberately nil: the nil-store path must not require (or call) it.
	spec := Spec[*[]int]{
		Build: func(ctx context.Context) (*[]int, error) {
			builds.Add(1)
			v := []int{5}
			return &v, nil
		},
	}
	for i := 0; i < 3; i++ {
		v, err := GetOrBuild(ctx, (*Store)(nil), key, spec)
		if err != nil || (*v)[0] != 5 {
			t.Fatalf("nil store fetch = %v, %v", v, err)
		}
	}
	if builds.Load() != 3 {
		t.Fatalf("nil store must build every time, built %d", builds.Load())
	}
	if (*Store)(nil).Stats() != (Stats{}) || (*Store)(nil).PerKey() != nil || (*Store)(nil).Keys() != nil {
		t.Fatal("nil store accessors must return zero values")
	}
}

func TestGetOrBuildRequiresFork(t *testing.T) {
	ctx := context.Background()
	s := NewStore()
	key, _ := NewKey("world", "s", 0, nil)
	_, err := GetOrBuild(ctx, s, key, Spec[*[]int]{
		Build: func(ctx context.Context) (*[]int, error) { v := []int{1}; return &v, nil },
	})
	if err == nil || !strings.Contains(err.Error(), "Fork is required") {
		t.Fatalf("err = %v, want Fork-required", err)
	}
}

func TestLRUEvictsByEntryBound(t *testing.T) {
	ctx := context.Background()
	s := NewStore(WithMaxEntries(2))
	fetch := func(name string) {
		t.Helper()
		key, _ := NewKey("world", name, 0, nil)
		if _, err := GetOrBuild(ctx, s, key, boxSpec(nil, []int{1})); err != nil {
			t.Fatal(err)
		}
	}
	fetch("a")
	fetch("b")
	fetch("a") // refresh a: b becomes least recent
	fetch("c") // evicts b
	keys := s.Keys()
	if len(keys) != 2 {
		t.Fatalf("resident keys = %v", keys)
	}
	for _, k := range keys {
		if strings.Contains(k, "/b/") {
			t.Fatalf("b should have been evicted: %v", keys)
		}
	}
	if st := s.Stats(); st.Evictions != 1 {
		t.Fatalf("evictions = %d, want 1", st.Evictions)
	}
	// The evicted key rebuilds on demand.
	fetch("b")
	if st := s.Stats(); st.Builds != 4 {
		t.Fatalf("builds = %d, want 4 (a, b, c, b again)", st.Builds)
	}
}

func TestLRUEvictsByByteBound(t *testing.T) {
	ctx := context.Background()
	s := NewStore(WithMaxBytes(100))
	fetch := func(name string, n int) {
		t.Helper()
		key, _ := NewKey("world", name, 0, nil)
		if _, err := GetOrBuild(ctx, s, key, boxSpec(nil, make([]int, n))); err != nil {
			t.Fatal(err)
		}
	}
	fetch("a", 8) // 64 bytes
	fetch("b", 8) // 128 total: a evicts
	st := s.Stats()
	if st.Entries != 1 || st.Bytes != 64 || st.Evictions != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestContextCancelWhileWaiting(t *testing.T) {
	s := NewStore()
	key, _ := NewKey("world", "s", 0, nil)
	release := make(chan struct{})
	building := make(chan struct{})
	spec := Spec[*[]int]{
		Build: func(ctx context.Context) (*[]int, error) {
			close(building)
			<-release
			v := []int{1}
			return &v, nil
		},
		Fork: boxSpec(nil, nil).Fork,
	}
	done := make(chan error, 1)
	go func() {
		_, err := GetOrBuild(context.Background(), s, key, spec)
		done <- err
	}()
	<-building
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := GetOrBuild(ctx, s, key, spec); !errors.Is(err, context.Canceled) {
		t.Fatalf("waiter err = %v, want context.Canceled", err)
	}
	close(release)
	if err := <-done; err != nil {
		t.Fatalf("builder err = %v", err)
	}
}

func TestWithFromContext(t *testing.T) {
	ctx := context.Background()
	if From(ctx) != nil {
		t.Fatal("empty context must carry no store")
	}
	if With(ctx, nil) != ctx {
		t.Fatal("With(nil) must return ctx unchanged")
	}
	s := NewStore()
	if From(With(ctx, s)) != s {
		t.Fatal("store did not round-trip through the context")
	}
}

func TestRenderStats(t *testing.T) {
	s := NewStore()
	ctx := context.Background()
	key, _ := NewKey("world", "s", 0, nil)
	if _, err := GetOrBuild(ctx, s, key, boxSpec(nil, []int{1, 2})); err != nil {
		t.Fatal(err)
	}
	got := s.RenderStats()
	if !strings.Contains(got, "1 misses") || !strings.Contains(got, "1 builds") || !strings.Contains(got, "16 B") {
		t.Fatalf("RenderStats() = %q", got)
	}
}

func TestHumanBytes(t *testing.T) {
	cases := []struct {
		n    int64
		want string
	}{
		{0, "0 B"}, {512, "512 B"}, {2048, "2.0 KiB"},
		{3 << 20, "3.0 MiB"}, {5 << 30, "5.0 GiB"},
	}
	for _, c := range cases {
		if got := humanBytes(c.n); got != c.want {
			t.Errorf("humanBytes(%d) = %q, want %q", c.n, got, c.want)
		}
	}
}
