package artifact

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"errors"
	"fmt"
	"io"
	"io/fs"
	"os"
	"path/filepath"
	"runtime"
	"runtime/debug"
	"sort"
	"strings"
	"sync"
	"time"
)

// Disk file layout inside the cache dir:
//
//	<kind>-<sha256 of Key.ID()>.art   one verified envelope per artifact
//	<kind>-<...>.art.lock             per-key build lock (flock, advisory)
//	gc.lock                           GC mutual exclusion across processes
//	.tmp-*                            in-flight writes (renamed or GC'd)
//
// Correctness never depends on the locks: writes are temp+fsync+rename
// atomic, every read re-verifies the envelope, and concurrent builders of
// one key write identical bytes (builds are pure functions of the key), so
// last-rename-wins is safe. The locks only keep a fleet of processes from
// duplicating expensive build work.
const (
	artSuffix = ".art"
	tmpPrefix = ".tmp-"
	// tmpMaxAge is how old an orphaned temp file (a crashed writer's
	// leftovers) must be before GC collects it — generous enough that no
	// live writer can lose its in-flight file.
	tmpMaxAge = 15 * time.Minute
)

// DefaultDiskMaxBytes bounds the cache dir when DiskConfig.MaxBytes is 0.
const DefaultDiskMaxBytes = int64(4) << 30

// DiskConfig configures OpenDisk.
type DiskConfig struct {
	// Dir is the cache directory (created if missing). Required.
	Dir string
	// Fingerprint identifies the builder code; files written under a
	// different fingerprint read as stale and rebuild. Use
	// BinaryFingerprint() unless a test needs a pinned value. Required.
	Fingerprint string
	// MaxBytes bounds the directory's artifact bytes, oldest files evicted
	// first (0 = DefaultDiskMaxBytes, negative = unbounded).
	MaxBytes int64
	// MaxAge evicts artifacts older than this at GC time (0 = no age bound).
	MaxAge time.Duration
	// FS is the filesystem seam (nil = OSFS). Tests inject FaultFS here.
	FS FSOps
	// Log receives the once-per-failure-class diagnostics (nil = stderr).
	Log func(format string, args ...any)
}

// Disk is the persistent tier under a Store: content-addressed, verified,
// crash-safe artifact files. All methods are safe for concurrent use, and a
// directory may be shared by any number of processes.
type Disk struct {
	dir         string
	fingerprint string
	maxBytes    int64
	maxAge      time.Duration
	fsOps       FSOps
	log         func(format string, args ...any)
	logged      sync.Map // failure class -> logged marker
}

// OpenDisk opens (creating if needed) a cache directory and sweeps it once:
// orphaned temp files and over-budget or over-age artifacts are collected
// before the first read. The sweep is best-effort — a GC problem disables
// nothing.
func OpenDisk(cfg DiskConfig) (*Disk, error) {
	if cfg.Dir == "" {
		return nil, fmt.Errorf("artifact: OpenDisk: empty cache dir")
	}
	if cfg.Fingerprint == "" {
		return nil, fmt.Errorf("artifact: OpenDisk: empty fingerprint (use BinaryFingerprint())")
	}
	d := &Disk{
		dir:         cfg.Dir,
		fingerprint: cfg.Fingerprint,
		maxBytes:    cfg.MaxBytes,
		maxAge:      cfg.MaxAge,
		fsOps:       cfg.FS,
		log:         cfg.Log,
	}
	if d.maxBytes == 0 {
		d.maxBytes = DefaultDiskMaxBytes
	}
	if d.fsOps == nil {
		d.fsOps = OSFS{}
	}
	if d.log == nil {
		d.log = func(format string, args ...any) { fmt.Fprintf(os.Stderr, "sisyphus: "+format+"\n", args...) }
	}
	if err := d.fsOps.MkdirAll(d.dir, 0o755); err != nil {
		return nil, fmt.Errorf("artifact: OpenDisk: %w", err)
	}
	if _, err := d.GC(); err != nil {
		d.logOnce("gc_error", "artifact disk: gc %s: %v", d.dir, err)
	}
	return d, nil
}

// Dir returns the cache directory.
func (d *Disk) Dir() string { return d.dir }

// logOnce emits one diagnostic per failure class per Disk: a corrupted
// cache dir with a thousand files should not produce a thousand log lines,
// just counters plus one explanation each for the first corruption, the
// first staleness, the first I/O error, and so on.
func (d *Disk) logOnce(class, format string, args ...any) {
	if _, loaded := d.logged.LoadOrStore(class, struct{}{}); loaded {
		return
	}
	d.log(format, args...)
}

// BinaryFingerprint derives a builder-code fingerprint from the running
// binary: toolchain version, module version, and the VCS revision/dirty bit
// when the build recorded them. Two builds of the same commit agree; a
// different commit (or a locally modified tree marked dirty) disagrees, so
// artifacts written by a stale binary never serve. Per-kind codec versions
// layer on top for manual schema control.
func BinaryFingerprint() string {
	h := sha256.New()
	io.WriteString(h, "sisyphus|")
	io.WriteString(h, runtime.Version())
	if bi, ok := debug.ReadBuildInfo(); ok {
		io.WriteString(h, "|"+bi.Main.Version)
		for _, s := range bi.Settings {
			if s.Key == "vcs.revision" || s.Key == "vcs.modified" {
				io.WriteString(h, "|"+s.Key+"="+s.Value)
			}
		}
	}
	return hex.EncodeToString(h.Sum(nil))[:16]
}

// path maps a key to its artifact file: the kind stays readable for
// operators, the full ID is collision-free via its hash.
func (d *Disk) path(key Key) string {
	sum := sha256.Sum256([]byte(key.ID()))
	return filepath.Join(d.dir, fmt.Sprintf("%s-%x%s", key.Kind, sum, artSuffix))
}

// fileFingerprint combines the binary fingerprint with one codec's version.
func (d *Disk) fileFingerprint(codecVersion string) string {
	return d.fingerprint + "|" + codecVersion
}

// diskStatus classifies one load attempt.
type diskStatus int

const (
	diskHit diskStatus = iota
	diskMiss
	diskCorrupt
	diskStale
	diskReadError
)

// load reads and verifies the artifact file for key. Misses are silent;
// every failure (I/O error, corruption, staleness) is logged once per class
// and the offending file removed, so the caller's rebuild + write-through
// replaces it. load never returns unverified bytes and never panics,
// whatever is on disk.
func (d *Disk) load(key Key, codecVersion string) ([]byte, diskStatus) {
	path := d.path(key)
	data, err := d.fsOps.ReadFile(path)
	if err != nil {
		if errors.Is(err, fs.ErrNotExist) {
			return nil, diskMiss
		}
		d.logOnce("read_error", "artifact disk: read %s: %v (rebuilding)", path, err)
		return nil, diskReadError
	}
	payload, err := DecodeFile(data, key.Kind, key.ID(), d.fileFingerprint(codecVersion))
	if err != nil {
		status, class := diskCorrupt, "corrupt"
		if errors.Is(err, ErrStale) {
			status, class = diskStale, "stale"
		}
		d.discard(key, class, err)
		return nil, status
	}
	return payload, diskHit
}

// discard removes a bad artifact file, logging the reason once per class.
func (d *Disk) discard(key Key, class string, reason error) {
	path := d.path(key)
	d.logOnce(class, "artifact disk: %s: %v (rebuilding)", path, reason)
	_ = d.fsOps.Remove(path)
}

// save writes the artifact crash-safely: unique temp file, full write,
// fsync, atomic rename over the final name, directory fsync. Any failure
// cleans up the temp file and reports an error; a reader can never observe
// a half-written artifact under the final name.
func (d *Disk) save(key Key, codecVersion string, payload []byte) error {
	data := EncodeFile(key.Kind, key.ID(), d.fileFingerprint(codecVersion), payload)
	if err := d.fsOps.MkdirAll(d.dir, 0o755); err != nil {
		return err
	}
	f, err := d.fsOps.CreateTemp(d.dir, tmpPrefix+"*")
	if err != nil {
		return err
	}
	tmp := f.Name()
	cleanup := func(err error) error {
		f.Close()
		_ = d.fsOps.Remove(tmp)
		return err
	}
	if n, err := f.Write(data); err != nil {
		return cleanup(err)
	} else if n != len(data) {
		return cleanup(fmt.Errorf("short write: %d of %d bytes", n, len(data)))
	}
	if err := f.Sync(); err != nil {
		return cleanup(err)
	}
	if err := f.Close(); err != nil {
		_ = d.fsOps.Remove(tmp)
		return err
	}
	if err := d.fsOps.Rename(tmp, d.path(key)); err != nil {
		_ = d.fsOps.Remove(tmp)
		return err
	}
	if err := d.fsOps.SyncDir(d.dir); err != nil {
		// The rename landed; only its durability across a power cut is in
		// doubt. Surface it as a write error without undoing the file.
		return err
	}
	return nil
}

// lockKey serializes builders of one key across processes: at most one
// holder per artifact file. It polls (flock has no ctx-aware wait) and
// reports whether it had to wait — a waiter should re-probe the disk before
// building, because the previous holder likely just wrote the artifact.
// On filesystems without flock support it degrades to lockless operation.
func (d *Disk) lockKey(ctx context.Context, key Key) (release func(), waited bool, err error) {
	path := d.path(key) + ".lock"
	for {
		l, lerr := tryFlock(path)
		if lerr != nil {
			d.logOnce("lock_error", "artifact disk: lock %s: %v (continuing lockless)", path, lerr)
			return func() {}, waited, nil
		}
		if l != nil {
			return l.release, waited, nil
		}
		waited = true
		select {
		case <-ctx.Done():
			return func() {}, waited, ctx.Err()
		case <-time.After(10 * time.Millisecond):
		}
	}
}

// GCStats reports one GC sweep.
type GCStats struct {
	// Removed and RemovedBytes count collected files (artifacts and
	// orphaned temp files alike).
	Removed      int
	RemovedBytes int64
	// Skipped is set when another process held gc.lock (or the filesystem
	// cannot lock); the sweep was left to the holder.
	Skipped bool
}

// GC bounds the cache directory: orphaned temp files past tmpMaxAge, then
// artifacts past MaxAge, then — oldest first — artifacts beyond MaxBytes.
// One process sweeps at a time (gc.lock); contenders skip rather than wait.
func (d *Disk) GC() (GCStats, error) {
	var st GCStats
	lock, err := tryFlock(filepath.Join(d.dir, "gc.lock"))
	if err != nil || lock == nil {
		st.Skipped = true
		return st, nil
	}
	defer lock.release()
	entries, err := d.fsOps.ReadDir(d.dir)
	if err != nil {
		return st, err
	}
	type artFile struct {
		name  string
		size  int64
		mtime time.Time
	}
	var arts []artFile
	now := time.Now()
	remove := func(name string, size int64) {
		if d.fsOps.Remove(filepath.Join(d.dir, name)) == nil {
			st.Removed++
			st.RemovedBytes += size
		}
	}
	for _, e := range entries {
		if e.IsDir() {
			continue
		}
		name := e.Name()
		info, ierr := e.Info()
		if ierr != nil {
			continue // raced with a concurrent remove
		}
		switch {
		case strings.HasPrefix(name, tmpPrefix):
			if now.Sub(info.ModTime()) > tmpMaxAge {
				remove(name, info.Size())
			}
		case strings.HasSuffix(name, artSuffix):
			if d.maxAge > 0 && now.Sub(info.ModTime()) > d.maxAge {
				remove(name, info.Size())
				continue
			}
			arts = append(arts, artFile{name: name, size: info.Size(), mtime: info.ModTime()})
		}
		// Lock files and anything else stay.
	}
	if d.maxBytes < 0 {
		return st, nil
	}
	sort.Slice(arts, func(i, j int) bool {
		if !arts[i].mtime.Equal(arts[j].mtime) {
			return arts[i].mtime.Before(arts[j].mtime)
		}
		return arts[i].name < arts[j].name
	})
	var total int64
	for _, a := range arts {
		total += a.size
	}
	for _, a := range arts {
		if total <= d.maxBytes {
			break
		}
		remove(a.name, a.size)
		total -= a.size
	}
	return st, nil
}
