package artifact

import (
	"context"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"sync/atomic"
	"syscall"
	"testing"
	"time"
)

// TestDiskFaultBattery drives the tier through the disk failures the design
// promises to survive: short writes, ENOSPC at create and at fsync, EIO
// mid-read, bit flips in header and payload, truncation, and a crash between
// temp-write and rename. Every scenario must end the same way — the correct
// value served, no panic, no error surfaced to the caller, the right counter
// bumped — and a healthy store afterwards must converge back to disk hits.
func TestDiskFaultBattery(t *testing.T) {
	type scenario struct {
		name string
		// prepopulate writes a valid artifact file before the faulted run
		// (read-side scenarios); write-side scenarios start cold.
		prepopulate bool
		// arm flips a FaultFS knob for the faulted run.
		arm func(*FaultFS)
		// mutate damages the on-disk file directly (bit rot) instead.
		mutate func(t *testing.T, path string)
		// want checks the faulted store's counters.
		want func(t *testing.T, st Stats)
	}

	wantWriteError := func(t *testing.T, st Stats) {
		t.Helper()
		if st.DiskWriteErrors != 1 || st.DiskWrites != 0 {
			t.Fatalf("stats = %+v, want 1 write error and no writes", st)
		}
	}
	wantCorrupt := func(t *testing.T, st Stats) {
		t.Helper()
		if st.DiskCorrupt != 1 || st.DiskWrites != 1 {
			t.Fatalf("stats = %+v, want 1 corrupt + healing rewrite", st)
		}
	}
	flipByte := func(offset func(n int) int) func(*testing.T, string) {
		return func(t *testing.T, path string) {
			t.Helper()
			data, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			data[offset(len(data))] ^= 0x01
			if err := os.WriteFile(path, data, 0o644); err != nil {
				t.Fatal(err)
			}
		}
	}

	scenarios := []scenario{
		{
			name: "enospc at create",
			arm:  func(f *FaultFS) { f.FailCreate(syscall.ENOSPC) },
			want: wantWriteError,
		},
		{
			name: "short write",
			arm:  func(f *FaultFS) { f.FailWriteAfter(10, nil) },
			want: wantWriteError,
		},
		{
			name: "enospc at sync",
			arm:  func(f *FaultFS) { f.FailSync(syscall.ENOSPC) },
			want: wantWriteError,
		},
		{
			name: "crash between temp write and rename",
			arm:  func(f *FaultFS) { f.FailRename(syscall.EIO) },
			want: wantWriteError,
		},
		{
			name:        "eio mid-read",
			prepopulate: true,
			arm:         func(f *FaultFS) { f.FailRead(syscall.EIO) },
			want: func(t *testing.T, st Stats) {
				t.Helper()
				if st.DiskReadErrors != 1 || st.DiskWrites != 1 {
					t.Fatalf("stats = %+v, want 1 read error + healing rewrite", st)
				}
			},
		},
		{
			name:        "bit flip in header",
			prepopulate: true,
			mutate:      flipByte(func(n int) int { return filePrefixLen + 2 }),
			want:        wantCorrupt,
		},
		{
			name:        "bit flip in payload",
			prepopulate: true,
			mutate:      flipByte(func(n int) int { return n - fileTrailerLen - 2 }),
			want:        wantCorrupt,
		},
		{
			name:        "bit flip in trailer",
			prepopulate: true,
			mutate:      flipByte(func(n int) int { return n - 1 }),
			want:        wantCorrupt,
		},
		{
			name:        "truncation",
			prepopulate: true,
			mutate: func(t *testing.T, path string) {
				t.Helper()
				data, err := os.ReadFile(path)
				if err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(path, data[:len(data)/2], 0o644); err != nil {
					t.Fatal(err)
				}
			},
			want: wantCorrupt,
		},
	}

	for _, sc := range scenarios {
		t.Run(sc.name, func(t *testing.T) {
			dir := t.TempDir()
			ctx := context.Background()
			key, _ := NewKey("world", "s", 0, nil)
			var builds atomic.Int64
			spec := diskBoxSpec(&builds, []int{11, 22, 33})
			check := func(phase string, v *[]int, err error) {
				t.Helper()
				if err != nil {
					t.Fatalf("%s: %v (faults must degrade to silent rebuilds)", phase, err)
				}
				if len(*v) != 3 || (*v)[0] != 11 || (*v)[1] != 22 || (*v)[2] != 33 {
					t.Fatalf("%s: wrong artifact served: %v", phase, *v)
				}
			}

			healthy := testDisk(t, dir)
			if sc.prepopulate {
				v, err := GetOrBuild(ctx, NewStore(WithDisk(healthy)), key, spec)
				check("prepopulate", v, err)
				if sc.mutate != nil {
					sc.mutate(t, healthy.path(key))
				}
			}

			ffs := NewFaultFS(nil)
			if sc.arm != nil {
				sc.arm(ffs)
			}
			faulted := NewStore(WithDisk(testDisk(t, dir, func(c *DiskConfig) { c.FS = ffs })))
			v, err := GetOrBuild(ctx, faulted, key, spec)
			check("faulted run", v, err)
			sc.want(t, faulted.Stats())

			// Failed writes must leave no half-written debris under the final
			// name and no leaked temp files.
			entries, err := os.ReadDir(dir)
			if err != nil {
				t.Fatal(err)
			}
			for _, e := range entries {
				if strings.HasPrefix(e.Name(), tmpPrefix) {
					t.Fatalf("temp file leaked: %s", e.Name())
				}
			}

			// Heal: with faults gone, one healthy run rebuilds/rewrites as
			// needed and the run after that serves straight from disk.
			v, err = GetOrBuild(ctx, NewStore(WithDisk(testDisk(t, dir))), key, spec)
			check("heal run", v, err)
			final := NewStore(WithDisk(testDisk(t, dir)))
			v, err = GetOrBuild(ctx, final, key, spec)
			check("final run", v, err)
			if st := final.Stats(); st.DiskHits != 1 {
				t.Fatalf("final stats = %+v, want a pure disk hit", st)
			}
			if got := builds.Load(); got != 2 {
				t.Fatalf("builds = %d, want exactly 2 (initial + one rebuild)", got)
			}
		})
	}
}

// TestDiskEncodeErrorDoesNotPersist: an Encode failure counts as a write
// error, logs once, and the value still serves from memory.
func TestDiskEncodeErrorDoesNotPersist(t *testing.T) {
	dir := t.TempDir()
	var logged atomic.Int64
	d := testDisk(t, dir, func(c *DiskConfig) {
		c.Log = func(format string, args ...any) { logged.Add(1) }
	})
	s := NewStore(WithDisk(d))
	key, _ := NewKey("world", "s", 0, nil)
	spec := diskBoxSpec(nil, []int{1})
	spec.Codec.Encode = func(*[]int) ([]byte, error) { return nil, errors.New("unencodable") }
	v, err := GetOrBuild(context.Background(), s, key, spec)
	if err != nil {
		t.Fatal(err)
	}
	if (*v)[0] != 1 {
		t.Fatalf("value = %v", *v)
	}
	if st := s.Stats(); st.DiskWriteErrors != 1 || st.DiskWrites != 0 {
		t.Fatalf("stats = %+v", st)
	}
	if logged.Load() == 0 {
		t.Fatal("encode failure was not logged")
	}
	if files := artFiles(t, dir); len(files) != 0 {
		t.Fatalf("unencodable artifact persisted: %v", files)
	}
}

// TestDiskLogsOncePerFailureClass: a directory full of corrupt files yields
// counters per file but a single log line for the class.
func TestDiskLogsOncePerFailureClass(t *testing.T) {
	dir := t.TempDir()
	ctx := context.Background()
	var k1, k2 Key
	k1, _ = NewKey("world", "a", 0, nil)
	k2, _ = NewKey("world", "b", 0, nil)
	seed := testDisk(t, dir)
	for _, k := range []Key{k1, k2} {
		if err := seed.save(k, "json-v1", []byte("[1]")); err != nil {
			t.Fatal(err)
		}
		data, err := os.ReadFile(seed.path(k))
		if err != nil {
			t.Fatal(err)
		}
		data[len(data)-1] ^= 0xFF
		if err := os.WriteFile(seed.path(k), data, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	var lines atomic.Int64
	s := NewStore(WithDisk(testDisk(t, dir, func(c *DiskConfig) {
		c.Log = func(format string, args ...any) { lines.Add(1) }
	})))
	for _, k := range []Key{k1, k2} {
		if _, err := GetOrBuild(ctx, s, k, diskBoxSpec(nil, []int{1})); err != nil {
			t.Fatal(err)
		}
	}
	if st := s.Stats(); st.DiskCorrupt != 2 {
		t.Fatalf("stats = %+v, want both corruptions counted", st)
	}
	if got := lines.Load(); got != 1 {
		t.Fatalf("logged %d lines for one failure class, want 1", got)
	}
}

// TestDiskCrashLeftoverTempIsInvisibleAndCollected: a true crash leaves a
// temp file behind (simulated directly — FailRename cleans up in-process).
// Readers never see it under a final name, and once it ages out GC removes it.
func TestDiskCrashLeftoverTempIsInvisibleAndCollected(t *testing.T) {
	dir := t.TempDir()
	ctx := context.Background()
	key, _ := NewKey("world", "s", 0, nil)
	// A crashed writer's torn temp: valid-looking prefix, then nothing.
	tmp := filepath.Join(dir, tmpPrefix+"crashed123")
	if err := os.WriteFile(tmp, []byte("SART\x00\x00\x00\x01torn"), 0o644); err != nil {
		t.Fatal(err)
	}
	var builds atomic.Int64
	s := NewStore(WithDisk(testDisk(t, dir)))
	v, err := GetOrBuild(ctx, s, key, diskBoxSpec(&builds, []int{5}))
	if err != nil {
		t.Fatal(err)
	}
	if (*v)[0] != 5 || builds.Load() != 1 {
		t.Fatalf("torn temp influenced a read: v=%v builds=%d", *v, builds.Load())
	}
	if st := s.Stats(); st.DiskCorrupt != 0 || st.DiskReadErrors != 0 {
		t.Fatalf("temp file surfaced as a read outcome: %+v", st)
	}
	// Fresh temps survive GC (a live writer may own them)…
	if _, err := os.Stat(tmp); err != nil {
		t.Fatalf("fresh temp collected early: %v", err)
	}
	// …but once older than tmpMaxAge the next sweep collects them.
	old := time.Now().Add(-tmpMaxAge - time.Minute)
	if err := os.Chtimes(tmp, old, old); err != nil {
		t.Fatal(err)
	}
	d := testDisk(t, dir)
	if _, err := d.GC(); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(tmp); !os.IsNotExist(err) {
		t.Fatal("aged orphan temp survived GC")
	}
}
