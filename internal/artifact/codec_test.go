package artifact

import (
	"bytes"
	"crypto/sha256"
	"encoding/binary"
	"errors"
	"strings"
	"testing"
)

// validFile builds one well-formed envelope for the tests to mutate.
func validFile() []byte {
	return EncodeFile("world", "world/za/seed0/abc123", "fp|v1", []byte("payload bytes here"))
}

func TestEncodeFileDeterministic(t *testing.T) {
	a := validFile()
	b := validFile()
	if !bytes.Equal(a, b) {
		t.Fatal("EncodeFile is not deterministic for equal inputs")
	}
}

func TestDecodeFileRoundTrip(t *testing.T) {
	cases := []struct {
		kind, id, fp string
		payload      []byte
	}{
		{"world", "world/za/seed0/aaaa", "fp|world-gob-v1", []byte("w")},
		{"rib", "rib/za/seed0/bbbb", "fp|rib-gob-v1", bytes.Repeat([]byte{0x00, 0xFF}, 1000)},
		{"campaign", "campaign/za/seed42/cccc", "fp|campaign-gob-v1", nil}, // empty payload is legal
	}
	for _, tc := range cases {
		data := EncodeFile(tc.kind, tc.id, tc.fp, tc.payload)
		got, err := DecodeFile(data, tc.kind, tc.id, tc.fp)
		if err != nil {
			t.Fatalf("%s: %v", tc.kind, err)
		}
		if !bytes.Equal(got, tc.payload) {
			t.Fatalf("%s: payload round-trip mismatch", tc.kind)
		}
		h, p, err := DecodeFileAny(data)
		if err != nil {
			t.Fatalf("%s: DecodeFileAny: %v", tc.kind, err)
		}
		if h.Kind != tc.kind || h.ID != tc.id || h.Fingerprint != tc.fp || !bytes.Equal(p, tc.payload) {
			t.Fatalf("%s: DecodeFileAny header/payload mismatch: %+v", tc.kind, h)
		}
	}
}

// TestDecodeRejectsEveryByteFlip is the envelope's core integrity promise:
// flipping ANY single byte of a valid file — magic, version, header length,
// header JSON, payload, or trailer — must fail verification. The whole-file
// trailing checksum makes this provable byte by byte.
func TestDecodeRejectsEveryByteFlip(t *testing.T) {
	orig := validFile()
	for i := range orig {
		mut := append([]byte(nil), orig...)
		mut[i] ^= 0xFF
		if _, err := DecodeFile(mut, "world", "world/za/seed0/abc123", "fp|v1"); err == nil {
			t.Fatalf("flip at byte %d of %d accepted", i, len(orig))
		} else if !errors.Is(err, ErrCorrupt) && !errors.Is(err, ErrStale) {
			t.Fatalf("flip at byte %d: unclassified error %v", i, err)
		}
	}
}

// TestDecodeRejectsEveryTruncation: every proper prefix of a valid file must
// be rejected (and classified as corruption, not staleness).
func TestDecodeRejectsEveryTruncation(t *testing.T) {
	orig := validFile()
	for n := 0; n < len(orig); n++ {
		if _, _, err := DecodeFileAny(orig[:n]); !errors.Is(err, ErrCorrupt) {
			t.Fatalf("truncation to %d bytes: err = %v, want ErrCorrupt", n, err)
		}
	}
}

// reseal recomputes the whole-file trailer after a deliberate mutation, so
// the classification tests below exercise the check they target rather than
// tripping the checksum first.
func reseal(data []byte) []byte {
	body := data[:len(data)-fileTrailerLen]
	sum := sha256.Sum256(body)
	return append(append([]byte(nil), body...), sum[:]...)
}

func TestDecodeClassification(t *testing.T) {
	const (
		kind = "world"
		id   = "world/za/seed0/abc123"
		fp   = "fp|v1"
	)
	cases := []struct {
		name    string
		mutate  func([]byte) []byte
		want    error
		wantMsg string
	}{
		{
			name: "version skew is stale",
			mutate: func(d []byte) []byte {
				binary.BigEndian.PutUint32(d[len(fileMagic):], FileFormatVersion+1)
				return reseal(d)
			},
			want: ErrStale, wantMsg: "envelope format",
		},
		{
			name:   "fingerprint mismatch is stale",
			mutate: func(d []byte) []byte { return EncodeFile(kind, id, "other-fp|v9", []byte("payload")) },
			want:   ErrStale, wantMsg: "fingerprint",
		},
		{
			name:   "wrong kind is corrupt",
			mutate: func(d []byte) []byte { return EncodeFile("rib", id, fp, []byte("payload")) },
			want:   ErrCorrupt, wantMsg: "holds",
		},
		{
			name:   "wrong id is corrupt",
			mutate: func(d []byte) []byte { return EncodeFile(kind, "world/za/seed0/zzz", fp, []byte("payload")) },
			want:   ErrCorrupt, wantMsg: "holds",
		},
		{
			name:   "empty file is corrupt",
			mutate: func(d []byte) []byte { return nil },
			want:   ErrCorrupt, wantMsg: "truncated",
		},
		{
			name: "bad magic is corrupt",
			mutate: func(d []byte) []byte {
				copy(d, "XXXX")
				return reseal(d)
			},
			want: ErrCorrupt, wantMsg: "bad magic",
		},
		{
			name: "oversized header length is corrupt",
			mutate: func(d []byte) []byte {
				binary.BigEndian.PutUint32(d[len(fileMagic)+4:], maxHeaderLen+1)
				return reseal(d)
			},
			want: ErrCorrupt, wantMsg: "header length",
		},
		{
			name: "header length past body is corrupt",
			mutate: func(d []byte) []byte {
				binary.BigEndian.PutUint32(d[len(fileMagic)+4:], uint32(len(d)))
				return reseal(d)
			},
			want: ErrCorrupt, wantMsg: "header length",
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			data := tc.mutate(EncodeFile(kind, id, fp, []byte("payload")))
			_, err := DecodeFile(data, kind, id, fp)
			if !errors.Is(err, tc.want) {
				t.Fatalf("err = %v, want %v", err, tc.want)
			}
			if !strings.Contains(err.Error(), tc.wantMsg) {
				t.Fatalf("err %q does not mention %q", err, tc.wantMsg)
			}
		})
	}
}

// TestDecodeFileAnyHostileInputs: pathological non-envelope inputs must
// error cleanly, never panic, never allocate per a hostile length field.
func TestDecodeFileAnyHostileInputs(t *testing.T) {
	inputs := [][]byte{
		nil,
		[]byte("SART"),
		[]byte(strings.Repeat("SART", 100)),
		bytes.Repeat([]byte{0}, filePrefixLen+fileTrailerLen),
		bytes.Repeat([]byte{0xFF}, 4096),
	}
	for i, in := range inputs {
		if _, _, err := DecodeFileAny(in); err == nil {
			t.Fatalf("input %d: hostile bytes accepted", i)
		}
	}
}
