package artifact

import (
	"context"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"sisyphus/internal/obs"
)

// diskBoxSpec is boxSpec plus a JSON codec, the minimal disk-cacheable kind.
func diskBoxSpec(builds *atomic.Int64, val []int) Spec[*[]int] {
	spec := boxSpec(builds, val)
	spec.Codec = &Codec[*[]int]{
		Version: "json-v1",
		Encode:  func(p *[]int) ([]byte, error) { return json.Marshal(*p) },
		Decode: func(b []byte) (*[]int, error) {
			var v []int
			if err := json.Unmarshal(b, &v); err != nil {
				return nil, err
			}
			return &v, nil
		},
	}
	return spec
}

// testDisk opens a Disk on dir with a pinned fingerprint and test logging.
func testDisk(t *testing.T, dir string, mutate ...func(*DiskConfig)) *Disk {
	t.Helper()
	cfg := DiskConfig{Dir: dir, Fingerprint: "test-fp", Log: t.Logf}
	for _, m := range mutate {
		m(&cfg)
	}
	d, err := OpenDisk(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

// artFiles lists the .art files currently in dir.
func artFiles(t *testing.T, dir string) []string {
	t.Helper()
	var out []string
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if strings.HasSuffix(e.Name(), artSuffix) {
			out = append(out, filepath.Join(dir, e.Name()))
		}
	}
	return out
}

func TestOpenDiskValidation(t *testing.T) {
	if _, err := OpenDisk(DiskConfig{Fingerprint: "fp"}); err == nil {
		t.Fatal("empty Dir accepted")
	}
	if _, err := OpenDisk(DiskConfig{Dir: t.TempDir()}); err == nil {
		t.Fatal("empty Fingerprint accepted")
	}
}

func TestBinaryFingerprint(t *testing.T) {
	fp := BinaryFingerprint()
	if len(fp) != 16 {
		t.Fatalf("fingerprint %q: want 16 hex chars", fp)
	}
	if fp != BinaryFingerprint() {
		t.Fatal("fingerprint not stable within one process")
	}
}

// TestDiskWarmStartAcrossStores is the tier's headline behavior: a second
// store (standing in for a second process) over the same cache dir serves
// from disk with zero builds, and the value is byte-equal to the build.
func TestDiskWarmStartAcrossStores(t *testing.T) {
	dir := t.TempDir()
	ctx := context.Background()
	key, _ := NewKey("world", "s", 0, nil)
	var builds atomic.Int64
	spec := diskBoxSpec(&builds, []int{1, 2, 3})

	cold := NewStore(WithDisk(testDisk(t, dir)))
	v, err := GetOrBuild(ctx, cold, key, spec)
	if err != nil {
		t.Fatal(err)
	}
	if len(*v) != 3 {
		t.Fatalf("cold value = %v", *v)
	}
	if st := cold.Stats(); st.Builds != 1 || st.DiskMisses != 1 || st.DiskWrites != 1 || st.DiskHits != 0 {
		t.Fatalf("cold stats = %+v", st)
	}
	if files := artFiles(t, dir); len(files) != 1 {
		t.Fatalf("art files after cold run: %v", files)
	}

	rec := obs.NewRecorder()
	warm := NewStore(WithDisk(testDisk(t, dir)))
	w, err := GetOrBuild(obs.With(ctx, rec), warm, key, spec)
	if err != nil {
		t.Fatal(err)
	}
	if len(*w) != 3 || (*w)[2] != 3 {
		t.Fatalf("warm value = %v", *w)
	}
	if builds.Load() != 1 {
		t.Fatalf("builds = %d, want 1 (warm run must not rebuild)", builds.Load())
	}
	if st := warm.Stats(); st.Builds != 0 || st.DiskHits != 1 || st.DiskWrites != 0 || st.Misses != 1 {
		t.Fatalf("warm stats = %+v", st)
	}
	counters := allMetrics(rec)
	if counters["disk.hits"] != 1 || counters["disk.hit."+key.ID()] != 1 {
		t.Fatalf("disk hit metrics missing: %v", counters)
	}
}

// TestDiskLoadedValueIsFrozenAndForked: a disk-served artifact must get the
// same Freeze/Fork discipline as a built one — mutating a returned fork
// cannot leak into later fetches.
func TestDiskLoadedValueIsFrozenAndForked(t *testing.T) {
	dir := t.TempDir()
	ctx := context.Background()
	key, _ := NewKey("world", "s", 0, nil)
	spec := diskBoxSpec(nil, []int{1, 2, 3})

	if _, err := GetOrBuild(ctx, NewStore(WithDisk(testDisk(t, dir))), key, spec); err != nil {
		t.Fatal(err)
	}
	warm := NewStore(WithDisk(testDisk(t, dir)))
	a, err := GetOrBuild(ctx, warm, key, spec)
	if err != nil {
		t.Fatal(err)
	}
	(*a)[0] = 99
	b, err := GetOrBuild(ctx, warm, key, spec)
	if err != nil {
		t.Fatal(err)
	}
	if (*b)[0] != 1 {
		t.Fatalf("mutation leaked through disk-loaded entry: %v", *b)
	}
}

// TestDiskMemoryOnlySpecNeverTouchesDisk: a Spec without a Codec stays
// memory-only even with a disk attached.
func TestDiskMemoryOnlySpecNeverTouchesDisk(t *testing.T) {
	dir := t.TempDir()
	s := NewStore(WithDisk(testDisk(t, dir)))
	key, _ := NewKey("world", "s", 0, nil)
	if _, err := GetOrBuild(context.Background(), s, key, boxSpec(nil, []int{1})); err != nil {
		t.Fatal(err)
	}
	if files := artFiles(t, dir); len(files) != 0 {
		t.Fatalf("codec-less spec wrote art files: %v", files)
	}
	if st := s.Stats(); st.DiskMisses != 0 || st.DiskWrites != 0 {
		t.Fatalf("codec-less spec touched disk counters: %+v", st)
	}
}

// TestDiskStaleFingerprintRebuilds: a file written under fingerprint A must
// read as stale under fingerprint B — rebuilt, overwritten, then served.
func TestDiskStaleFingerprintRebuilds(t *testing.T) {
	dir := t.TempDir()
	ctx := context.Background()
	key, _ := NewKey("world", "s", 0, nil)
	var builds atomic.Int64
	spec := diskBoxSpec(&builds, []int{7})

	oldBinary := NewStore(WithDisk(testDisk(t, dir, func(c *DiskConfig) { c.Fingerprint = "fp-old" })))
	if _, err := GetOrBuild(ctx, oldBinary, key, spec); err != nil {
		t.Fatal(err)
	}

	newBinary := NewStore(WithDisk(testDisk(t, dir, func(c *DiskConfig) { c.Fingerprint = "fp-new" })))
	v, err := GetOrBuild(ctx, newBinary, key, spec)
	if err != nil {
		t.Fatal(err)
	}
	if (*v)[0] != 7 || builds.Load() != 2 {
		t.Fatalf("stale file must rebuild: v=%v builds=%d", *v, builds.Load())
	}
	if st := newBinary.Stats(); st.DiskStale != 1 || st.DiskCorrupt != 0 || st.DiskWrites != 1 {
		t.Fatalf("stats = %+v, want 1 stale + 1 write", st)
	}

	// The rebuild overwrote the stale file: a third store under the new
	// fingerprint now hits.
	again := NewStore(WithDisk(testDisk(t, dir, func(c *DiskConfig) { c.Fingerprint = "fp-new" })))
	if _, err := GetOrBuild(ctx, again, key, spec); err != nil {
		t.Fatal(err)
	}
	if st := again.Stats(); st.DiskHits != 1 || builds.Load() != 2 {
		t.Fatalf("overwrite did not heal the cache: %+v builds=%d", st, builds.Load())
	}
}

// TestDiskCodecVersionSkewIsStale: same binary fingerprint, bumped codec
// version — the file must read stale, not corrupt, and not serve.
func TestDiskCodecVersionSkewIsStale(t *testing.T) {
	dir := t.TempDir()
	ctx := context.Background()
	key, _ := NewKey("world", "s", 0, nil)
	var builds atomic.Int64
	spec := diskBoxSpec(&builds, []int{7})

	if _, err := GetOrBuild(ctx, NewStore(WithDisk(testDisk(t, dir))), key, spec); err != nil {
		t.Fatal(err)
	}
	v2 := diskBoxSpec(&builds, []int{7})
	v2.Codec.Version = "json-v2"
	s := NewStore(WithDisk(testDisk(t, dir)))
	if _, err := GetOrBuild(ctx, s, key, v2); err != nil {
		t.Fatal(err)
	}
	if st := s.Stats(); st.DiskStale != 1 || builds.Load() != 2 {
		t.Fatalf("codec version skew: stats=%+v builds=%d", st, builds.Load())
	}
}

// TestDiskCorruptFileRebuildsAndHeals: flip one byte of the cached file —
// the next fetch must detect it, rebuild the true value, and overwrite the
// bad file so the store after that hits again.
func TestDiskCorruptFileRebuildsAndHeals(t *testing.T) {
	dir := t.TempDir()
	ctx := context.Background()
	key, _ := NewKey("world", "s", 0, nil)
	var builds atomic.Int64
	spec := diskBoxSpec(&builds, []int{4, 5})

	if _, err := GetOrBuild(ctx, NewStore(WithDisk(testDisk(t, dir))), key, spec); err != nil {
		t.Fatal(err)
	}
	files := artFiles(t, dir)
	if len(files) != 1 {
		t.Fatalf("art files: %v", files)
	}
	data, err := os.ReadFile(files[0])
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)/2] ^= 0xFF
	if err := os.WriteFile(files[0], data, 0o644); err != nil {
		t.Fatal(err)
	}

	s := NewStore(WithDisk(testDisk(t, dir)))
	v, err := GetOrBuild(ctx, s, key, spec)
	if err != nil {
		t.Fatal(err)
	}
	if (*v)[0] != 4 || (*v)[1] != 5 {
		t.Fatalf("corrupted cache served wrong value: %v", *v)
	}
	if st := s.Stats(); st.DiskCorrupt != 1 || st.DiskWrites != 1 || builds.Load() != 2 {
		t.Fatalf("stats = %+v builds = %d, want 1 corrupt + rebuild + overwrite", st, builds.Load())
	}

	healed := NewStore(WithDisk(testDisk(t, dir)))
	if _, err := GetOrBuild(ctx, healed, key, spec); err != nil {
		t.Fatal(err)
	}
	if st := healed.Stats(); st.DiskHits != 1 || builds.Load() != 2 {
		t.Fatalf("overwrite did not heal: %+v builds=%d", st, builds.Load())
	}
}

// TestDiskUndecodablePayloadIsCorrupt: a file whose envelope verifies but
// whose payload the codec rejects counts as corruption and is discarded.
func TestDiskUndecodablePayloadIsCorrupt(t *testing.T) {
	dir := t.TempDir()
	d := testDisk(t, dir)
	key, _ := NewKey("world", "s", 0, nil)
	// A validly enveloped file holding non-JSON bytes under the right
	// fingerprint: only Codec.Decode can reject it.
	if err := d.save(key, "json-v1", []byte("not json")); err != nil {
		t.Fatal(err)
	}
	s := NewStore(WithDisk(testDisk(t, dir)))
	v, err := GetOrBuild(context.Background(), s, key, diskBoxSpec(nil, []int{9}))
	if err != nil {
		t.Fatal(err)
	}
	if (*v)[0] != 9 {
		t.Fatalf("value = %v", *v)
	}
	if st := s.Stats(); st.DiskCorrupt != 1 {
		t.Fatalf("stats = %+v, want 1 corrupt", st)
	}
}

func TestDiskGCMaxBytes(t *testing.T) {
	dir := t.TempDir()
	d := testDisk(t, dir, func(c *DiskConfig) { c.MaxBytes = -1 })
	payload := make([]byte, 1000)
	var keys []Key
	for i, sc := range []string{"a", "b", "c"} {
		k, _ := NewKey("world", sc, 0, nil)
		keys = append(keys, k)
		if err := d.save(k, "v1", payload); err != nil {
			t.Fatal(err)
		}
		// Stamp strictly increasing mtimes so "oldest first" is deterministic.
		old := time.Now().Add(time.Duration(i-10) * time.Minute)
		if err := os.Chtimes(d.path(k), old, old); err != nil {
			t.Fatal(err)
		}
	}
	// Budget for roughly two files: the oldest ("a") must go, the rest stay.
	// (Tighten the budget on the open Disk so the sweep's stats are visible;
	// OpenDisk would run it as a side effect.)
	d.maxBytes = 2500
	st, err := d.GC()
	if err != nil {
		t.Fatal(err)
	}
	if st.Removed != 1 || st.RemovedBytes == 0 {
		t.Fatalf("GC stats = %+v, want 1 file removed", st)
	}
	if _, err := os.Stat(d.path(keys[0])); !os.IsNotExist(err) {
		t.Fatal("oldest artifact survived a byte-bounded GC")
	}
	for _, k := range keys[1:] {
		if _, err := os.Stat(d.path(k)); err != nil {
			t.Fatalf("newer artifact evicted: %v", err)
		}
	}
}

func TestDiskGCMaxAge(t *testing.T) {
	dir := t.TempDir()
	d := testDisk(t, dir)
	kOld, _ := NewKey("world", "old", 0, nil)
	kNew, _ := NewKey("world", "new", 0, nil)
	for _, k := range []Key{kOld, kNew} {
		if err := d.save(k, "v1", []byte("x")); err != nil {
			t.Fatal(err)
		}
	}
	stale := time.Now().Add(-2 * time.Hour)
	if err := os.Chtimes(d.path(kOld), stale, stale); err != nil {
		t.Fatal(err)
	}
	aged := testDisk(t, dir, func(c *DiskConfig) { c.MaxAge = time.Hour })
	// OpenDisk already swept once; the old file must be gone, the new kept.
	if _, err := os.Stat(d.path(kOld)); !os.IsNotExist(err) {
		t.Fatal("over-age artifact survived GC")
	}
	if _, err := os.Stat(aged.path(kNew)); err != nil {
		t.Fatalf("fresh artifact evicted: %v", err)
	}
}

func TestDiskGCCollectsOrphanedTemps(t *testing.T) {
	dir := t.TempDir()
	orphan := filepath.Join(dir, tmpPrefix+"dead-writer")
	fresh := filepath.Join(dir, tmpPrefix+"live-writer")
	for _, p := range []string{orphan, fresh} {
		if err := os.WriteFile(p, []byte("partial"), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	old := time.Now().Add(-tmpMaxAge - time.Minute)
	if err := os.Chtimes(orphan, old, old); err != nil {
		t.Fatal(err)
	}
	d := testDisk(t, dir)
	if _, err := os.Stat(orphan); !os.IsNotExist(err) {
		t.Fatal("orphaned temp file survived GC")
	}
	if _, err := os.Stat(fresh); err != nil {
		t.Fatalf("in-flight temp file collected: %v", err)
	}
	_ = d
}

func TestDiskGCSkipsWhenContended(t *testing.T) {
	dir := t.TempDir()
	d := testDisk(t, dir)
	l, err := tryFlock(filepath.Join(dir, "gc.lock"))
	if err != nil || l == nil {
		t.Skipf("flock unavailable: %v", err)
	}
	defer l.release()
	st, err := d.GC()
	if err != nil {
		t.Fatal(err)
	}
	if !st.Skipped {
		t.Fatal("GC ran while another holder owned gc.lock")
	}
}

func TestLockKeySerializesAndReportsWaiting(t *testing.T) {
	dir := t.TempDir()
	d := testDisk(t, dir)
	key, _ := NewKey("world", "s", 0, nil)
	ctx := context.Background()

	rel1, waited1, err := d.lockKey(ctx, key)
	if err != nil {
		t.Fatal(err)
	}
	if waited1 {
		t.Fatal("uncontended lock reported waiting")
	}
	got := make(chan bool, 1)
	go func() {
		rel2, waited2, err := d.lockKey(ctx, key)
		if err != nil {
			got <- false
			return
		}
		rel2()
		got <- waited2
	}()
	time.Sleep(50 * time.Millisecond) // let the second locker start polling
	rel1()
	if waited := <-got; !waited {
		t.Fatal("contended lock did not report waiting (waiter must re-probe disk)")
	}

	// A waiter whose context dies while polling gets the context error.
	rel3, _, err := d.lockKey(ctx, key)
	if err != nil {
		t.Fatal(err)
	}
	defer rel3()
	cancelled, cancel := context.WithCancel(ctx)
	cancel()
	if _, _, err := d.lockKey(cancelled, key); err == nil {
		t.Fatal("cancelled waiter acquired the lock")
	}
}

func TestRenderStatsDiskSection(t *testing.T) {
	mem := NewStore()
	if strings.Contains(mem.RenderStats(), "| disk:") {
		t.Fatalf("memory-only store renders a disk section: %q", mem.RenderStats())
	}
	dir := t.TempDir()
	s := NewStore(WithDisk(testDisk(t, dir)))
	key, _ := NewKey("world", "s", 0, nil)
	if _, err := GetOrBuild(context.Background(), s, key, diskBoxSpec(nil, []int{1})); err != nil {
		t.Fatal(err)
	}
	line := s.RenderStats()
	want := "| disk: 0 hits, 1 misses, 1 writes, 0 corrupt, 0 stale, 0 errors"
	if !strings.Contains(line, want) {
		t.Fatalf("RenderStats = %q, want substring %q", line, want)
	}
}
