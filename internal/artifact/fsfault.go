package artifact

import (
	"io"
	"os"
	"sync"
	"syscall"
)

// FSOps is the seam between the disk tier and the filesystem: every byte the
// tier reads or writes goes through this interface, so tests can inject the
// failures real disks produce — short writes, ENOSPC, EIO mid-read, a crash
// between temp-write and rename — and prove each one degrades to a counted
// silent rebuild. Production uses OSFS.
type FSOps interface {
	MkdirAll(dir string, perm os.FileMode) error
	ReadFile(path string) ([]byte, error)
	// CreateTemp creates a unique temp file in dir (os.CreateTemp pattern
	// rules) that the caller writes, syncs, closes, and renames into place.
	CreateTemp(dir, pattern string) (FSFile, error)
	Rename(oldPath, newPath string) error
	Remove(path string) error
	ReadDir(dir string) ([]os.DirEntry, error)
	// SyncDir fsyncs a directory, making a preceding rename durable.
	SyncDir(dir string) error
}

// FSFile is the writable temp-file handle the tier fills before renaming.
type FSFile interface {
	io.Writer
	Name() string
	Sync() error
	Close() error
}

// OSFS is the real filesystem.
type OSFS struct{}

func (OSFS) MkdirAll(dir string, perm os.FileMode) error { return os.MkdirAll(dir, perm) }
func (OSFS) ReadFile(path string) ([]byte, error)        { return os.ReadFile(path) }
func (OSFS) CreateTemp(dir, pattern string) (FSFile, error) {
	f, err := os.CreateTemp(dir, pattern)
	if err != nil {
		return nil, err
	}
	return f, nil
}
func (OSFS) Rename(oldPath, newPath string) error     { return os.Rename(oldPath, newPath) }
func (OSFS) Remove(path string) error                 { return os.Remove(path) }
func (OSFS) ReadDir(dir string) ([]os.DirEntry, error) { return os.ReadDir(dir) }
func (OSFS) SyncDir(dir string) error {
	f, err := os.Open(dir)
	if err != nil {
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// FaultFS wraps a base FSOps (usually OSFS) and injects failures on demand.
// All knobs are safe to flip between operations from the owning test
// goroutine; accesses are mutex-guarded so the race detector stays quiet
// when the disk tier is exercised concurrently.
type FaultFS struct {
	Base FSOps

	mu sync.Mutex
	// createErr fails CreateTemp (e.g. ENOSPC before a byte is written).
	createErr error
	// writeLimit < 0 means unlimited; otherwise the total bytes Write may
	// deliver before failing with writeErr — the tail of the final Write is
	// silently dropped first, which is exactly a torn/short write.
	writeLimit int
	written    int
	writeErr   error
	// syncErr fails FSFile.Sync (ENOSPC discovered at flush time).
	syncErr error
	// renameErr fails Rename, leaving the temp file behind — observationally
	// identical to a crash between temp-write and rename.
	renameErr error
	// readErr fails ReadFile on existing files (EIO mid-read).
	readErr error
}

// NewFaultFS returns a FaultFS over base (nil selects OSFS) with no faults
// armed.
func NewFaultFS(base FSOps) *FaultFS {
	if base == nil {
		base = OSFS{}
	}
	return &FaultFS{Base: base, writeLimit: -1}
}

// FailCreate arms (or with nil disarms) CreateTemp failure.
func (f *FaultFS) FailCreate(err error) { f.mu.Lock(); f.createErr = err; f.mu.Unlock() }

// FailWriteAfter allows n total bytes through Write and then fails with err
// (ENOSPC if nil). n < 0 disarms.
func (f *FaultFS) FailWriteAfter(n int, err error) {
	if err == nil {
		err = syscall.ENOSPC
	}
	f.mu.Lock()
	f.writeLimit, f.written, f.writeErr = n, 0, err
	f.mu.Unlock()
}

// FailSync arms (or with nil disarms) FSFile.Sync failure.
func (f *FaultFS) FailSync(err error) { f.mu.Lock(); f.syncErr = err; f.mu.Unlock() }

// FailRename arms (or with nil disarms) Rename failure — the crash-before-
// rename scenario: the temp file stays, the final name never appears.
func (f *FaultFS) FailRename(err error) { f.mu.Lock(); f.renameErr = err; f.mu.Unlock() }

// FailRead arms (or with nil disarms) ReadFile failure (EIO).
func (f *FaultFS) FailRead(err error) { f.mu.Lock(); f.readErr = err; f.mu.Unlock() }

func (f *FaultFS) MkdirAll(dir string, perm os.FileMode) error { return f.Base.MkdirAll(dir, perm) }

func (f *FaultFS) ReadFile(path string) ([]byte, error) {
	f.mu.Lock()
	err := f.readErr
	f.mu.Unlock()
	if err != nil {
		// Only fail reads of files that exist: a not-exist miss is a
		// different (and boring) path than an I/O error on real bytes.
		if _, statErr := os.Stat(path); statErr == nil {
			return nil, &os.PathError{Op: "read", Path: path, Err: err}
		}
	}
	return f.Base.ReadFile(path)
}

func (f *FaultFS) CreateTemp(dir, pattern string) (FSFile, error) {
	f.mu.Lock()
	err := f.createErr
	f.mu.Unlock()
	if err != nil {
		return nil, &os.PathError{Op: "createtemp", Path: dir, Err: err}
	}
	file, ferr := f.Base.CreateTemp(dir, pattern)
	if ferr != nil {
		return nil, ferr
	}
	return &faultFile{FSFile: file, fs: f}, nil
}

func (f *FaultFS) Rename(oldPath, newPath string) error {
	f.mu.Lock()
	err := f.renameErr
	f.mu.Unlock()
	if err != nil {
		return &os.LinkError{Op: "rename", Old: oldPath, New: newPath, Err: err}
	}
	return f.Base.Rename(oldPath, newPath)
}

func (f *FaultFS) Remove(path string) error                 { return f.Base.Remove(path) }
func (f *FaultFS) ReadDir(dir string) ([]os.DirEntry, error) { return f.Base.ReadDir(dir) }
func (f *FaultFS) SyncDir(dir string) error                 { return f.Base.SyncDir(dir) }

// faultFile applies the write/sync faults to one temp file.
type faultFile struct {
	FSFile
	fs *FaultFS
}

func (ff *faultFile) Write(p []byte) (int, error) {
	ff.fs.mu.Lock()
	limit, written, werr := ff.fs.writeLimit, ff.fs.written, ff.fs.writeErr
	ff.fs.mu.Unlock()
	if limit < 0 {
		return ff.FSFile.Write(p)
	}
	allow := limit - written
	if allow <= 0 {
		return 0, &os.PathError{Op: "write", Path: ff.Name(), Err: werr}
	}
	short := false
	if allow < len(p) {
		p, short = p[:allow], true
	}
	n, err := ff.FSFile.Write(p)
	ff.fs.mu.Lock()
	ff.fs.written += n
	ff.fs.mu.Unlock()
	if err == nil && short {
		err = &os.PathError{Op: "write", Path: ff.Name(), Err: werr}
	}
	return n, err
}

func (ff *faultFile) Sync() error {
	ff.fs.mu.Lock()
	err := ff.fs.syncErr
	ff.fs.mu.Unlock()
	if err != nil {
		return &os.PathError{Op: "sync", Path: ff.Name(), Err: err}
	}
	return ff.FSFile.Sync()
}
