package artifact

import (
	"bytes"
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
)

// The disk tier stores one artifact per file in a self-describing envelope:
//
//	magic "SART" (4) | format version u32be (4) | header len u32be (4)
//	| header JSON | payload | sha256 (32) over every preceding byte
//
// The trailing checksum covers the whole file, so flipping any byte —
// header, payload, even the magic — is detectable by one comparison, and
// the header's own payload sha256 re-verifies the payload after the header
// has been trusted. The header carries the artifact's identity (kind + full
// key ID) and the builder-code fingerprint, so a file written by a stale
// binary, or renamed over the wrong key, never serves.

// fileMagic brands every artifact cache file.
const fileMagic = "SART"

// FileFormatVersion is the envelope layout version. Bump it when the layout
// itself changes; old files then read as stale (a deliberate rebuild), not
// corrupt.
const FileFormatVersion = 1

// envelope geometry.
const (
	filePrefixLen  = len(fileMagic) + 4 + 4 // magic + version + header len
	fileTrailerLen = sha256.Size
	// maxHeaderLen bounds the header a decoder will buffer, so a hostile
	// length field cannot drive a huge allocation.
	maxHeaderLen = 1 << 16
)

// ErrCorrupt classifies a cache file whose bytes fail verification:
// truncation, checksum mismatch, malformed header, or a payload that does
// not match its declared hash. The cure is deleting the file and rebuilding.
var ErrCorrupt = errors.New("artifact: corrupt cache file")

// ErrStale classifies a structurally valid cache file written by different
// code: an older/newer envelope format or a mismatched builder fingerprint.
// The cure is the same rebuild, counted separately so operators can tell
// bit rot from binary skew.
var ErrStale = errors.New("artifact: stale cache file")

// FileHeader is the envelope's JSON header.
type FileHeader struct {
	// Kind and ID identify the artifact (Key.Kind and Key.ID()).
	Kind string `json:"kind"`
	ID   string `json:"id"`
	// Fingerprint binds the file to the code that built it: the disk tier's
	// binary fingerprint combined with the per-kind codec version.
	Fingerprint string `json:"fingerprint"`
	// PayloadLen and PayloadSHA256 describe the encoded artifact bytes.
	PayloadLen    int64  `json:"payload_len"`
	PayloadSHA256 string `json:"payload_sha256"`
}

// EncodeFile wraps an encoded artifact payload in the envelope. The output
// is a pure function of its arguments — equal inputs yield identical bytes.
func EncodeFile(kind, id, fingerprint string, payload []byte) []byte {
	sum := sha256.Sum256(payload)
	h := FileHeader{
		Kind: kind, ID: id, Fingerprint: fingerprint,
		PayloadLen: int64(len(payload)), PayloadSHA256: hex.EncodeToString(sum[:]),
	}
	hb, err := json.Marshal(h)
	if err != nil {
		panic(fmt.Sprintf("artifact: marshal file header: %v", err)) // impossible: fixed struct of strings/ints
	}
	var buf bytes.Buffer
	buf.Grow(filePrefixLen + len(hb) + len(payload) + fileTrailerLen)
	buf.WriteString(fileMagic)
	var u32 [4]byte
	binary.BigEndian.PutUint32(u32[:], FileFormatVersion)
	buf.Write(u32[:])
	binary.BigEndian.PutUint32(u32[:], uint32(len(hb)))
	buf.Write(u32[:])
	buf.Write(hb)
	buf.Write(payload)
	trailer := sha256.Sum256(buf.Bytes())
	buf.Write(trailer[:])
	return buf.Bytes()
}

// DecodeFileAny verifies an envelope's integrity without expectations about
// whose artifact it is: checksum, magic, format version, header shape, and
// the payload hash. It never panics, whatever the input. Identity and
// fingerprint checks are the caller's job (DecodeFile) — this split exists
// so tooling and fuzzing can inspect arbitrary files.
func DecodeFileAny(data []byte) (FileHeader, []byte, error) {
	var h FileHeader
	if len(data) < filePrefixLen+fileTrailerLen {
		return h, nil, fmt.Errorf("%w: truncated (%d bytes)", ErrCorrupt, len(data))
	}
	body, trailer := data[:len(data)-fileTrailerLen], data[len(data)-fileTrailerLen:]
	if sum := sha256.Sum256(body); !bytes.Equal(sum[:], trailer) {
		return h, nil, fmt.Errorf("%w: file checksum mismatch", ErrCorrupt)
	}
	if string(data[:len(fileMagic)]) != fileMagic {
		return h, nil, fmt.Errorf("%w: bad magic", ErrCorrupt)
	}
	version := binary.BigEndian.Uint32(data[len(fileMagic):])
	if version != FileFormatVersion {
		return h, nil, fmt.Errorf("%w: envelope format v%d (want v%d)", ErrStale, version, FileFormatVersion)
	}
	headerLen := binary.BigEndian.Uint32(data[len(fileMagic)+4:])
	if headerLen > maxHeaderLen || int(headerLen) > len(body)-filePrefixLen {
		return h, nil, fmt.Errorf("%w: header length %d out of range", ErrCorrupt, headerLen)
	}
	dec := json.NewDecoder(bytes.NewReader(body[filePrefixLen : filePrefixLen+int(headerLen)]))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&h); err != nil {
		return FileHeader{}, nil, fmt.Errorf("%w: header: %v", ErrCorrupt, err)
	}
	payload := body[filePrefixLen+int(headerLen):]
	if int64(len(payload)) != h.PayloadLen {
		return FileHeader{}, nil, fmt.Errorf("%w: payload is %d bytes, header says %d", ErrCorrupt, len(payload), h.PayloadLen)
	}
	if sum := sha256.Sum256(payload); hex.EncodeToString(sum[:]) != h.PayloadSHA256 {
		return FileHeader{}, nil, fmt.Errorf("%w: payload checksum mismatch", ErrCorrupt)
	}
	return h, payload, nil
}

// DecodeFile verifies an envelope end to end — integrity via DecodeFileAny,
// then identity (the file must hold exactly the artifact named kind/id) and
// fingerprint (the file must have been written by this code) — and returns
// the payload. Identity mismatches are ErrCorrupt (wrong content under this
// name); fingerprint mismatches are ErrStale (right content, wrong binary).
func DecodeFile(data []byte, kind, id, fingerprint string) ([]byte, error) {
	h, payload, err := DecodeFileAny(data)
	if err != nil {
		return nil, err
	}
	if h.Kind != kind || h.ID != id {
		return nil, fmt.Errorf("%w: holds %s/%s, expected %s/%s", ErrCorrupt, h.Kind, h.ID, kind, id)
	}
	if h.Fingerprint != fingerprint {
		return nil, fmt.Errorf("%w: fingerprint %q (want %q)", ErrStale, h.Fingerprint, fingerprint)
	}
	return payload, nil
}

// Codec teaches the disk tier how to serialize one artifact kind. A Spec
// without a Codec is memory-only: its artifacts never touch disk.
type Codec[T any] struct {
	// Version names the payload encoding and the builder semantics behind
	// it. It folds into the file fingerprint, so bumping it (on any change
	// to the encode/decode logic or the meaning of the encoded bytes)
	// invalidates every cached file of this kind.
	Version string
	// Encode serializes a frozen artifact. It must be deterministic: equal
	// artifacts must encode to identical bytes.
	Encode func(T) ([]byte, error)
	// Decode reconstructs an artifact from Encode's output. The result must
	// be indistinguishable from a fresh Build with the same key — it is
	// frozen and forked exactly like one. Decode must validate: arbitrary
	// bytes may error but never panic and never yield a half-valid value.
	Decode func([]byte) (T, error)
}
