//go:build unix

package artifact

import (
	"errors"
	"os"
	"syscall"
)

// fileLock is an advisory whole-file flock. Locks die with the process, so a
// crashed builder can never wedge the cache directory for the fleet.
type fileLock struct{ f *os.File }

// tryFlock attempts a non-blocking exclusive lock on path, creating the file
// if needed. Returns (lock, nil) on success, (nil, nil) when another process
// (or another handle in this one) holds it, and (nil, err) when the
// filesystem cannot lock at all — callers treat that as "locking
// unsupported" and proceed lockless.
func tryFlock(path string) (*fileLock, error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return nil, err
	}
	if err := syscall.Flock(int(f.Fd()), syscall.LOCK_EX|syscall.LOCK_NB); err != nil {
		f.Close()
		if errors.Is(err, syscall.EWOULDBLOCK) {
			return nil, nil
		}
		return nil, err
	}
	return &fileLock{f: f}, nil
}

// release drops the lock. The lock file itself is left in place: removing it
// would race a concurrent locker holding a descriptor to the old inode.
func (l *fileLock) release() {
	_ = syscall.Flock(int(l.f.Fd()), syscall.LOCK_UN)
	_ = l.f.Close()
}
