// Package artifact is a content-addressed, memoizing build layer for the
// expensive deterministic stages of the pipeline: scenario worlds, converged
// BGP RIBs, and simulated measurement campaigns. The experiments are pure
// functions of ⟨artifact kind, scenario id, seed, typed config⟩, so any two
// consumers that agree on those four coordinates can share one build — the
// lever that turns the suite's Sisyphean rebuild-everything loop into a
// build-once serving layer.
//
// The three rules the layer enforces:
//
//   - Content addressing: a Key canonically hashes the four coordinates
//     (the typed config is serialized as canonical JSON, so struct-field
//     declaration order — not construction order — determines the bytes).
//     Equal inputs always collide onto one entry; distinct seeds or configs
//     never do.
//
//   - Singleflight: concurrent GetOrBuild calls for the same key block on a
//     single build. Errors are never cached — a failed build is removed and
//     every waiter sees the error, so the next request retries.
//
//   - Frozen-on-insert / copy-on-read: the store keeps the builder's
//     original and every fetch (including the builder's own return value)
//     gets a deep fork, so no caller can mutate a shared artifact. The fork
//     discipline is what lets campaigns mutate their world (IXP joins,
//     link flaps) without perturbing anyone else's fetch.
//
// A nil *Store is the universal off switch: GetOrBuild builds directly and
// returns the value unforked — exactly the code path the experiments ran
// before this layer existed, which is how `-cache=off` stays byte-identical
// to the pinned goldens by construction.
package artifact

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"sort"
	"sync"
	"time"

	"sisyphus/internal/obs"
)

// Key addresses one artifact: what kind of thing it is, which scenario
// world it derives from, the seed all its randomness flows from, and a
// canonical hash of the typed config that parameterized the build. Keys are
// comparable values — two keys are equal iff every coordinate is.
type Key struct {
	// Kind names the artifact type ("world", "rib", "campaign").
	Kind string
	// Scenario is the scenario id the artifact derives from.
	Scenario string
	// Seed is the RNG root. Artifacts that draw no randomness use 0.
	Seed uint64
	// ConfigHash is the hex sha256 of the canonical JSON of the typed
	// config ("-" for a nil config).
	ConfigHash string
}

// NewKey builds a Key, canonically hashing cfg. cfg is serialized with
// encoding/json: struct fields marshal in declaration order and map keys
// sort, so equal configs hash equally no matter how they were constructed.
// Fields tagged `json:"-"` are excluded — analysis-side knobs that do not
// change the built bytes must carry that tag to maximize sharing. A config
// that cannot marshal (channels, funcs) is a caller bug and errors.
func NewKey(kind, scenarioID string, seed uint64, cfg any) (Key, error) {
	k := Key{Kind: kind, Scenario: scenarioID, Seed: seed, ConfigHash: "-"}
	if cfg != nil {
		b, err := json.Marshal(cfg)
		if err != nil {
			return Key{}, fmt.Errorf("artifact: key config for %s/%s: %w", kind, scenarioID, err)
		}
		sum := sha256.Sum256(b)
		k.ConfigHash = hex.EncodeToString(sum[:])
	}
	return k, nil
}

// String renders the key compactly for logs and human-facing summaries:
// kind/scenario/seedN/hash-prefix. The hash is truncated to 12 chars for
// readability — use ID (or the Key value itself) wherever distinctness
// matters, since two configs can share a hash prefix.
func (k Key) String() string {
	h := k.ConfigHash
	if len(h) > 12 {
		h = h[:12]
	}
	return fmt.Sprintf("%s/%s/seed%d/%s", k.Kind, k.Scenario, k.Seed, h)
}

// ID renders the key with the full config hash — collision-free by
// construction, so it is the form used for metric labels and any other
// machine-facing identity. String truncates only at render time.
func (k Key) ID() string {
	return fmt.Sprintf("%s/%s/seed%d/%s", k.Kind, k.Scenario, k.Seed, k.ConfigHash)
}

// Spec tells GetOrBuild how to construct, copy, and size one artifact type.
type Spec[T any] struct {
	// Build constructs the artifact from scratch. It must be a pure
	// function of the key's coordinates: equal keys must build equal values.
	Build func(ctx context.Context) (T, error)
	// Fork returns an independent copy sharing no *mutable* state with its
	// argument. Every GetOrBuild return value passes through Fork, so
	// callers own what they get. With a Freeze hook the stored original is
	// immutable, so Fork may be a pointer-cheap copy-on-write view rather
	// than a deep copy. Required when the store is non-nil.
	Fork func(T) T
	// Freeze, if non-nil, runs exactly once on the freshly built value —
	// after a successful Build, before the value is stored or any Fork is
	// taken — marking it immutable so forks can share structure safely.
	// The nil-store path never freezes: cache-off callers own a fully
	// mutable value, exactly as before the cache existed.
	Freeze func(T)
	// Size estimates the artifact's resident bytes for the LRU byte bound.
	// Nil counts the entry as zero bytes (the entry bound still applies).
	Size func(T) int64
}

// entry is one cache slot. ready closes when the build finishes; val/err are
// immutable afterwards. Failed builds are removed from the store before
// ready closes, so only successful entries are ever observable in the map
// after their build completes.
type entry struct {
	key   Key
	ready chan struct{}
	val   any
	err   error
	size  int64
	// lruSeq orders ready entries for eviction; higher = more recent.
	lruSeq uint64
}

// Stats is a snapshot of store-level counters.
type Stats struct {
	// Hits and Misses count GetOrBuild calls that found / did not find a
	// completed or in-flight entry. A call that joins an in-flight build
	// counts as a hit: the work was shared.
	Hits, Misses int64
	// Builds counts builds actually executed (successful or not).
	Builds int64
	// Evictions counts entries removed by the LRU bounds.
	Evictions int64
	// Entries and Bytes describe current residency.
	Entries int
	Bytes   int64
}

// KeyStats is the per-key slice of the counters.
type KeyStats struct {
	Hits, Misses, Builds int64
}

// Store is the content-addressed artifact cache. The zero value is not
// usable; construct with NewStore. A nil *Store disables caching entirely.
type Store struct {
	mu         sync.Mutex
	entries    map[Key]*entry
	seq        uint64
	maxEntries int
	maxBytes   int64
	bytes      int64
	stats      Stats
	perKey     map[Key]*KeyStats
}

// Option tweaks a Store at construction.
type Option func(*Store)

// WithMaxEntries bounds the number of resident artifacts (default 64).
func WithMaxEntries(n int) Option { return func(s *Store) { s.maxEntries = n } }

// WithMaxBytes bounds total estimated resident bytes (default 1 GiB).
func WithMaxBytes(n int64) Option { return func(s *Store) { s.maxBytes = n } }

// NewStore returns an empty store with LRU bounds.
func NewStore(opts ...Option) *Store {
	s := &Store{
		entries:    make(map[Key]*entry),
		maxEntries: 64,
		maxBytes:   1 << 30,
		perKey:     make(map[Key]*KeyStats),
	}
	for _, o := range opts {
		o(s)
	}
	return s
}

// Stats returns a snapshot of the store counters.
func (s *Store) Stats() Stats {
	if s == nil {
		return Stats{}
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	st := s.stats
	st.Entries = len(s.entries)
	st.Bytes = s.bytes
	return st
}

// PerKey returns a snapshot of per-key counters keyed by the full Key
// value, letting tests assert the exactly-once build property per
// coordinate. Keying by the comparable Key — not a rendered string — means
// two configs whose hashes share a prefix can never fold onto one slot.
func (s *Store) PerKey() map[Key]KeyStats {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make(map[Key]KeyStats, len(s.perKey))
	for k, v := range s.perKey {
		out[k] = *v
	}
	return out
}

// keyStatsLocked returns the per-key counter slot, creating it if needed.
func (s *Store) keyStatsLocked(k Key) *KeyStats {
	ks := s.perKey[k]
	if ks == nil {
		ks = &KeyStats{}
		s.perKey[k] = ks
	}
	return ks
}

// evictLocked enforces the LRU bounds over ready entries. In-flight builds
// are never evicted (their size is unknown and a waiter holds them anyway).
func (s *Store) evictLocked() {
	over := func() bool {
		return len(s.entries) > s.maxEntries || s.bytes > s.maxBytes
	}
	for over() {
		var victim *entry
		for _, e := range s.entries {
			select {
			case <-e.ready:
			default:
				continue // still building
			}
			if victim == nil || e.lruSeq < victim.lruSeq {
				victim = e
			}
		}
		if victim == nil {
			return // everything resident is in flight
		}
		delete(s.entries, victim.key)
		s.bytes -= victim.size
		s.stats.Evictions++
	}
}

// GetOrBuild returns the artifact for key, building it at most once per
// residency: the first requester runs spec.Build, concurrent requesters for
// the same key block on that build (honoring ctx while they wait), and
// later requesters fork the cached value. Every successful return value is
// spec.Fork of the stored original — callers own their copy and may mutate
// it freely.
//
// A nil store is the cache-off path: spec.Build runs directly and its value
// is returned without forking, byte-identical to pre-cache code.
func GetOrBuild[T any](ctx context.Context, s *Store, key Key, spec Spec[T]) (T, error) {
	var zero T
	if s == nil {
		return spec.Build(ctx)
	}
	if spec.Fork == nil {
		return zero, fmt.Errorf("artifact: %s: Spec.Fork is required with a live store", key)
	}

	s.mu.Lock()
	if e, ok := s.entries[key]; ok {
		// Hit (completed or in-flight): bump recency, then wait outside the
		// lock. Joining an in-flight build counts as a hit — the build work
		// is shared either way.
		s.seq++
		e.lruSeq = s.seq
		s.stats.Hits++
		s.keyStatsLocked(key).Hits++
		s.mu.Unlock()
		obs.Add(ctx, "cache.hits", 1)
		obs.Add(ctx, "cache.hit."+key.ID(), 1)
		select {
		case <-e.ready:
		case <-ctx.Done():
			return zero, ctx.Err()
		}
		if e.err != nil {
			return zero, e.err
		}
		return spec.Fork(e.val.(T)), nil
	}

	// Miss: insert the pending entry and build outside the lock.
	e := &entry{key: key, ready: make(chan struct{})}
	s.seq++
	e.lruSeq = s.seq
	s.entries[key] = e
	s.stats.Misses++
	s.stats.Builds++
	ks := s.keyStatsLocked(key)
	ks.Misses++
	ks.Builds++
	s.mu.Unlock()
	obs.Add(ctx, "cache.misses", 1)
	obs.Add(ctx, "cache.miss."+key.ID(), 1)

	start := time.Now()
	val, err := spec.Build(ctx)
	buildMs := time.Since(start).Milliseconds()

	if err != nil {
		// Errors are never cached: remove the entry so the next request
		// retries, then release every waiter with the error. The failed
		// attempt's duration is labeled separately — folding it into
		// build_ms would pollute the successful-build timing series.
		obs.Add(ctx, "cache.build_errors."+key.ID(), 1)
		s.mu.Lock()
		delete(s.entries, key)
		e.err = err
		close(e.ready)
		s.mu.Unlock()
		return zero, err
	}
	obs.Add(ctx, "cache.build_ms."+key.ID(), buildMs)
	if spec.Freeze != nil {
		// Freeze before the value is stored or any fork escapes: every
		// Fork — including the builder's own return value below — sees an
		// immutable original and may share structure with it.
		spec.Freeze(val)
	}
	s.mu.Lock()
	e.val = val
	if spec.Size != nil {
		e.size = spec.Size(val)
	}
	s.bytes += e.size
	close(e.ready)
	s.evictLocked()
	s.mu.Unlock()
	return spec.Fork(val), nil
}

// ctxKey carries the store on a context.
type ctxKey struct{}

// With attaches the store to the context; a nil store returns ctx unchanged.
func With(ctx context.Context, s *Store) context.Context {
	if s == nil {
		return ctx
	}
	return context.WithValue(ctx, ctxKey{}, s)
}

// From returns the store riding the context, or nil (cache off).
func From(ctx context.Context) *Store {
	s, _ := ctx.Value(ctxKey{}).(*Store)
	return s
}

// RenderStats formats a one-line human-readable cache summary, sorted keys
// omitted — the per-key breakdown lives in the obs metrics table.
func (s *Store) RenderStats() string {
	st := s.Stats()
	return fmt.Sprintf("cache: %d hits, %d misses, %d builds, %d evictions, %d entries, %s resident",
		st.Hits, st.Misses, st.Builds, st.Evictions, st.Entries, humanBytes(st.Bytes))
}

// Keys lists resident keys sorted by String(), for tests and debugging.
func (s *Store) Keys() []string {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]string, 0, len(s.entries))
	for k := range s.entries {
		out = append(out, k.String())
	}
	sort.Strings(out)
	return out
}

func humanBytes(n int64) string {
	switch {
	case n >= 1<<30:
		return fmt.Sprintf("%.1f GiB", float64(n)/(1<<30))
	case n >= 1<<20:
		return fmt.Sprintf("%.1f MiB", float64(n)/(1<<20))
	case n >= 1<<10:
		return fmt.Sprintf("%.1f KiB", float64(n)/(1<<10))
	default:
		return fmt.Sprintf("%d B", n)
	}
}
