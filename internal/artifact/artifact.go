// Package artifact is a content-addressed, memoizing build layer for the
// expensive deterministic stages of the pipeline: scenario worlds, converged
// BGP RIBs, and simulated measurement campaigns. The experiments are pure
// functions of ⟨artifact kind, scenario id, seed, typed config⟩, so any two
// consumers that agree on those four coordinates can share one build — the
// lever that turns the suite's Sisyphean rebuild-everything loop into a
// build-once serving layer.
//
// The three rules the layer enforces:
//
//   - Content addressing: a Key canonically hashes the four coordinates
//     (the typed config is serialized as canonical JSON, so struct-field
//     declaration order — not construction order — determines the bytes).
//     Equal inputs always collide onto one entry; distinct seeds or configs
//     never do.
//
//   - Singleflight: concurrent GetOrBuild calls for the same key block on a
//     single build. Errors are never cached — a failed build is removed and
//     every waiter sees the error, so the next request retries.
//
//   - Frozen-on-insert / copy-on-read: the store keeps the builder's
//     original and every fetch (including the builder's own return value)
//     gets a deep fork, so no caller can mutate a shared artifact. The fork
//     discipline is what lets campaigns mutate their world (IXP joins,
//     link flaps) without perturbing anyone else's fetch.
//
// A nil *Store is the universal off switch: GetOrBuild builds directly and
// returns the value unforked — exactly the code path the experiments ran
// before this layer existed, which is how `-cache=off` stays byte-identical
// to the pinned goldens by construction.
package artifact

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"sisyphus/internal/obs"
)

// Key addresses one artifact: what kind of thing it is, which scenario
// world it derives from, the seed all its randomness flows from, and a
// canonical hash of the typed config that parameterized the build. Keys are
// comparable values — two keys are equal iff every coordinate is.
type Key struct {
	// Kind names the artifact type ("world", "rib", "campaign").
	Kind string
	// Scenario is the scenario id the artifact derives from.
	Scenario string
	// Seed is the RNG root. Artifacts that draw no randomness use 0.
	Seed uint64
	// ConfigHash is the hex sha256 of the canonical JSON of the typed
	// config ("-" for a nil config).
	ConfigHash string
}

// NewKey builds a Key, canonically hashing cfg. cfg is serialized with
// encoding/json: struct fields marshal in declaration order and map keys
// sort, so equal configs hash equally no matter how they were constructed.
// Fields tagged `json:"-"` are excluded — analysis-side knobs that do not
// change the built bytes must carry that tag to maximize sharing. A config
// that cannot marshal (channels, funcs) is a caller bug and errors.
func NewKey(kind, scenarioID string, seed uint64, cfg any) (Key, error) {
	k := Key{Kind: kind, Scenario: scenarioID, Seed: seed, ConfigHash: "-"}
	if cfg != nil {
		b, err := json.Marshal(cfg)
		if err != nil {
			return Key{}, fmt.Errorf("artifact: key config for %s/%s: %w", kind, scenarioID, err)
		}
		sum := sha256.Sum256(b)
		k.ConfigHash = hex.EncodeToString(sum[:])
	}
	return k, nil
}

// String renders the key compactly for logs and human-facing summaries:
// kind/scenario/seedN/hash-prefix. The hash is truncated to 12 chars for
// readability — use ID (or the Key value itself) wherever distinctness
// matters, since two configs can share a hash prefix.
func (k Key) String() string {
	h := k.ConfigHash
	if len(h) > 12 {
		h = h[:12]
	}
	return fmt.Sprintf("%s/%s/seed%d/%s", k.Kind, k.Scenario, k.Seed, h)
}

// ID renders the key with the full config hash — collision-free by
// construction, so it is the form used for metric labels and any other
// machine-facing identity. String truncates only at render time.
func (k Key) ID() string {
	return fmt.Sprintf("%s/%s/seed%d/%s", k.Kind, k.Scenario, k.Seed, k.ConfigHash)
}

// Spec tells GetOrBuild how to construct, copy, and size one artifact type.
type Spec[T any] struct {
	// Build constructs the artifact from scratch. It must be a pure
	// function of the key's coordinates: equal keys must build equal values.
	Build func(ctx context.Context) (T, error)
	// Fork returns an independent copy sharing no *mutable* state with its
	// argument. Every GetOrBuild return value passes through Fork, so
	// callers own what they get. With a Freeze hook the stored original is
	// immutable, so Fork may be a pointer-cheap copy-on-write view rather
	// than a deep copy. Required when the store is non-nil.
	Fork func(T) T
	// Freeze, if non-nil, runs exactly once on the freshly built value —
	// after a successful Build, before the value is stored or any Fork is
	// taken — marking it immutable so forks can share structure safely.
	// The nil-store path never freezes: cache-off callers own a fully
	// mutable value, exactly as before the cache existed.
	Freeze func(T)
	// Size estimates the artifact's resident bytes for the LRU byte bound.
	// Nil counts the entry as zero bytes (the entry bound still applies).
	Size func(T) int64
	// Codec, if non-nil and the store has a disk tier, persists this
	// artifact kind across runs: misses probe the disk before building, and
	// fresh builds write through. Nil keeps the kind memory-only.
	Codec *Codec[T]
}

// entry is one cache slot. ready closes when the build finishes; val/err are
// immutable afterwards. Failed builds are removed from the store before
// ready closes, so only successful entries are ever observable in the map
// after their build completes.
type entry struct {
	key   Key
	ready chan struct{}
	val   any
	err   error
	size  int64
	// lruSeq orders ready entries for eviction; higher = more recent.
	lruSeq uint64
}

// Stats is a snapshot of store-level counters.
type Stats struct {
	// Hits and Misses count GetOrBuild calls that found / did not find a
	// completed or in-flight entry. A call that joins an in-flight build
	// counts as a hit: the work was shared.
	Hits, Misses int64
	// Builds counts builds actually executed (successful or not).
	Builds int64
	// Evictions counts entries removed by the LRU bounds.
	Evictions int64
	// Entries and Bytes describe current residency.
	Entries int
	Bytes   int64

	// Disk-tier counters; all zero without a disk tier. DiskHits counts
	// memory misses served by decoding a verified file (no Build ran);
	// DiskMisses counts probes that found no file. DiskCorrupt, DiskStale
	// and DiskReadErrors classify failed loads — each one degraded to a
	// rebuild, never to an error or a bad value. DiskWrites counts
	// successful write-throughs, DiskWriteErrors failed ones (the value
	// still served from memory).
	DiskHits, DiskMisses            int64
	DiskCorrupt, DiskStale          int64
	DiskReadErrors, DiskWriteErrors int64
	DiskWrites                      int64
}

// KeyStats is the per-key slice of the counters.
type KeyStats struct {
	Hits, Misses, Builds int64
}

// Store is the content-addressed artifact cache. The zero value is not
// usable; construct with NewStore. A nil *Store disables caching entirely.
type Store struct {
	mu         sync.Mutex
	entries    map[Key]*entry
	seq        uint64
	maxEntries int
	maxBytes   int64
	bytes      int64
	stats      Stats
	perKey     map[Key]*KeyStats
	// disk is the persistent tier, or nil for a memory-only store. Set at
	// construction, immutable afterwards.
	disk *Disk
}

// Option tweaks a Store at construction.
type Option func(*Store)

// WithMaxEntries bounds the number of resident artifacts (default 64).
func WithMaxEntries(n int) Option { return func(s *Store) { s.maxEntries = n } }

// WithMaxBytes bounds total estimated resident bytes (default 1 GiB).
func WithMaxBytes(n int64) Option { return func(s *Store) { s.maxBytes = n } }

// WithDisk attaches a persistent tier beneath the in-memory store: memory
// misses probe it before building, fresh builds write through to it, and
// every failure mode on it (corruption, staleness, I/O errors) degrades to
// a counted rebuild. Only Specs carrying a Codec participate.
func WithDisk(d *Disk) Option { return func(s *Store) { s.disk = d } }

// Disk returns the attached persistent tier, or nil.
func (s *Store) Disk() *Disk {
	if s == nil {
		return nil
	}
	return s.disk
}

// NewStore returns an empty store with LRU bounds.
func NewStore(opts ...Option) *Store {
	s := &Store{
		entries:    make(map[Key]*entry),
		maxEntries: 64,
		maxBytes:   1 << 30,
		perKey:     make(map[Key]*KeyStats),
	}
	for _, o := range opts {
		o(s)
	}
	return s
}

// Stats returns a snapshot of the store counters.
func (s *Store) Stats() Stats {
	if s == nil {
		return Stats{}
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	st := s.stats
	st.Entries = len(s.entries)
	st.Bytes = s.bytes
	return st
}

// PerKey returns a snapshot of per-key counters keyed by the full Key
// value, letting tests assert the exactly-once build property per
// coordinate. Keying by the comparable Key — not a rendered string — means
// two configs whose hashes share a prefix can never fold onto one slot.
func (s *Store) PerKey() map[Key]KeyStats {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make(map[Key]KeyStats, len(s.perKey))
	for k, v := range s.perKey {
		out[k] = *v
	}
	return out
}

// keyStatsLocked returns the per-key counter slot, creating it if needed.
func (s *Store) keyStatsLocked(k Key) *KeyStats {
	ks := s.perKey[k]
	if ks == nil {
		ks = &KeyStats{}
		s.perKey[k] = ks
	}
	return ks
}

// evictLocked enforces the LRU bounds over ready entries. In-flight builds
// are never evicted (their size is unknown and a waiter holds them anyway).
func (s *Store) evictLocked() {
	over := func() bool {
		return len(s.entries) > s.maxEntries || s.bytes > s.maxBytes
	}
	for over() {
		var victim *entry
		for _, e := range s.entries {
			select {
			case <-e.ready:
			default:
				continue // still building
			}
			if victim == nil || e.lruSeq < victim.lruSeq {
				victim = e
			}
		}
		if victim == nil {
			return // everything resident is in flight
		}
		delete(s.entries, victim.key)
		s.bytes -= victim.size
		s.stats.Evictions++
	}
}

// GetOrBuild returns the artifact for key, building it at most once per
// residency: the first requester runs spec.Build, concurrent requesters for
// the same key block on that build (honoring ctx while they wait), and
// later requesters fork the cached value. Every successful return value is
// spec.Fork of the stored original — callers own their copy and may mutate
// it freely.
//
// With a disk tier attached (WithDisk) and a Codec on the spec, a memory
// miss probes the disk before building — a verified file decodes, freezes
// and inserts exactly like a fresh build, without running spec.Build — and
// fresh builds write through. Any disk failure (corruption, staleness, I/O
// error) is counted and answered by building; the disk can slow this call
// down but never fail it.
//
// A waiter whose designated builder failed with the builder's own context
// error (cancellation or deadline) re-enters the miss path and retries,
// provided the waiter's own ctx is still live — one caller's cancelled
// build must not poison innocent concurrent requesters. Such a retry counts
// a second hit or miss for the same logical call.
//
// A nil store is the cache-off path: spec.Build runs directly and its value
// is returned without forking, byte-identical to pre-cache code.
func GetOrBuild[T any](ctx context.Context, s *Store, key Key, spec Spec[T]) (T, error) {
	var zero T
	if s == nil {
		return spec.Build(ctx)
	}
	if spec.Fork == nil {
		return zero, fmt.Errorf("artifact: %s: Spec.Fork is required with a live store", key)
	}

	var e *entry
	for {
		s.mu.Lock()
		found, ok := s.entries[key]
		if !ok {
			// Miss: fall through to the build path below, still holding the
			// lock, with our pending entry about to be inserted.
			break
		}
		// Hit (completed or in-flight): bump recency, then wait outside the
		// lock. Joining an in-flight build counts as a hit — the build work
		// is shared either way.
		e = found
		s.seq++
		e.lruSeq = s.seq
		s.stats.Hits++
		s.keyStatsLocked(key).Hits++
		s.mu.Unlock()
		obs.Add(ctx, "cache.hits", 1)
		obs.Add(ctx, "cache.hit."+key.ID(), 1)
		select {
		case <-e.ready:
		case <-ctx.Done():
			return zero, ctx.Err()
		}
		if e.err != nil {
			// The builder failed. If it failed because *its* context gave
			// out while ours is still live, the failure says nothing about
			// the key — the entry was already removed before ready closed,
			// so loop back and retry (possibly becoming the builder).
			if (errors.Is(e.err, context.Canceled) || errors.Is(e.err, context.DeadlineExceeded)) && ctx.Err() == nil {
				continue
			}
			return zero, e.err
		}
		return spec.Fork(e.val.(T)), nil
	}

	// Miss: insert the pending entry (lock still held from the loop), then
	// resolve it outside the lock — from disk when possible, by building
	// otherwise.
	e = &entry{key: key, ready: make(chan struct{})}
	s.seq++
	e.lruSeq = s.seq
	s.entries[key] = e
	s.stats.Misses++
	s.keyStatsLocked(key).Misses++
	s.mu.Unlock()
	obs.Add(ctx, "cache.misses", 1)
	obs.Add(ctx, "cache.miss."+key.ID(), 1)

	val, fromDisk, err := resolveMiss(ctx, s, key, spec)
	if err != nil {
		// Errors are never cached: remove the entry so the next request
		// retries, then release every waiter with the error.
		s.mu.Lock()
		delete(s.entries, key)
		e.err = err
		close(e.ready)
		s.mu.Unlock()
		return zero, err
	}
	if spec.Freeze != nil {
		// Freeze before the value is stored or any fork escapes: every
		// Fork — including the builder's own return value below — sees an
		// immutable original and may share structure with it. Disk-loaded
		// values freeze identically: a decode must be indistinguishable
		// from a build.
		spec.Freeze(val)
	}
	if !fromDisk {
		diskSave(ctx, s, key, spec, val)
	}
	s.mu.Lock()
	e.val = val
	if spec.Size != nil {
		e.size = spec.Size(val)
	}
	s.bytes += e.size
	close(e.ready)
	s.evictLocked()
	s.mu.Unlock()
	return spec.Fork(val), nil
}

// resolveMiss produces the value for a pending entry: from the disk tier
// when a verified artifact exists, by running spec.Build otherwise. With a
// disk tier, builders of one key serialize across processes on a file lock,
// and a builder that had to wait re-probes the disk first — the previous
// holder usually just wrote the artifact this builder wanted.
func resolveMiss[T any](ctx context.Context, s *Store, key Key, spec Spec[T]) (val T, fromDisk bool, err error) {
	onDisk := s.disk != nil && spec.Codec != nil
	if onDisk {
		if val, ok := diskLoad(ctx, s, key, spec); ok {
			return val, true, nil
		}
		release, waited, lerr := s.disk.lockKey(ctx, key)
		if lerr != nil {
			return val, false, lerr // ctx gave out while waiting for the lock
		}
		defer release()
		if waited {
			if val, ok := diskLoad(ctx, s, key, spec); ok {
				return val, true, nil
			}
		}
	}
	s.mu.Lock()
	s.stats.Builds++
	s.keyStatsLocked(key).Builds++
	s.mu.Unlock()
	start := time.Now()
	val, err = spec.Build(ctx)
	if err != nil {
		// The failed attempt's duration is labeled separately — folding it
		// into build_ms would pollute the successful-build timing series.
		obs.Add(ctx, "cache.build_errors."+key.ID(), 1)
		return val, false, err
	}
	obs.Add(ctx, "cache.build_ms."+key.ID(), time.Since(start).Milliseconds())
	return val, false, nil
}

// diskLoad probes the disk tier for key and decodes what it finds. Every
// outcome is counted; every failure answer is "no" (rebuild), never an
// error. A decode failure on a verified envelope counts as corruption and
// discards the file — the payload passed its checksum but does not decode
// under this codec version, so it can never serve.
func diskLoad[T any](ctx context.Context, s *Store, key Key, spec Spec[T]) (T, bool) {
	var zero T
	payload, status := s.disk.load(key, spec.Codec.Version)
	switch status {
	case diskMiss:
		s.countDisk(&s.stats.DiskMisses)
		obs.Add(ctx, "disk.misses", 1)
		return zero, false
	case diskCorrupt:
		s.countDisk(&s.stats.DiskCorrupt)
		obs.Add(ctx, "disk.corrupt", 1)
		return zero, false
	case diskStale:
		s.countDisk(&s.stats.DiskStale)
		obs.Add(ctx, "disk.stale", 1)
		return zero, false
	case diskReadError:
		s.countDisk(&s.stats.DiskReadErrors)
		obs.Add(ctx, "disk.read_errors", 1)
		return zero, false
	}
	val, err := spec.Codec.Decode(payload)
	if err != nil {
		s.disk.discard(key, "corrupt", err)
		s.countDisk(&s.stats.DiskCorrupt)
		obs.Add(ctx, "disk.corrupt", 1)
		return zero, false
	}
	s.countDisk(&s.stats.DiskHits)
	obs.Add(ctx, "disk.hits", 1)
	obs.Add(ctx, "disk.hit."+key.ID(), 1)
	return val, true
}

// diskSave encodes a freshly built (and already frozen) value and writes it
// through to the disk tier. Failures are counted and logged once per class;
// the in-memory value serves regardless.
func diskSave[T any](ctx context.Context, s *Store, key Key, spec Spec[T], val T) {
	if s.disk == nil || spec.Codec == nil {
		return
	}
	payload, err := spec.Codec.Encode(val)
	if err != nil {
		s.disk.logOnce("encode_error", "artifact disk: encode %s: %v (not persisted)", key.ID(), err)
		s.countDisk(&s.stats.DiskWriteErrors)
		obs.Add(ctx, "disk.write_errors", 1)
		return
	}
	if err := s.disk.save(key, spec.Codec.Version, payload); err != nil {
		s.disk.logOnce("write_error", "artifact disk: write %s: %v (not persisted)", key.ID(), err)
		s.countDisk(&s.stats.DiskWriteErrors)
		obs.Add(ctx, "disk.write_errors", 1)
		return
	}
	s.countDisk(&s.stats.DiskWrites)
	obs.Add(ctx, "disk.writes", 1)
}

// countDisk bumps one disk-tier counter under the store lock.
func (s *Store) countDisk(c *int64) {
	s.mu.Lock()
	*c++
	s.mu.Unlock()
}

// ctxKey carries the store on a context.
type ctxKey struct{}

// With attaches the store to the context; a nil store returns ctx unchanged.
func With(ctx context.Context, s *Store) context.Context {
	if s == nil {
		return ctx
	}
	return context.WithValue(ctx, ctxKey{}, s)
}

// From returns the store riding the context, or nil (cache off).
func From(ctx context.Context) *Store {
	s, _ := ctx.Value(ctxKey{}).(*Store)
	return s
}

// RenderStats formats a one-line human-readable cache summary, sorted keys
// omitted — the per-key breakdown lives in the obs metrics table. With a
// disk tier attached the line grows a disk section; its exact shape is load-
// bearing for the warm-cache CI gate, which asserts "0 builds" and the
// corrupt count off this line.
func (s *Store) RenderStats() string {
	st := s.Stats()
	line := fmt.Sprintf("cache: %d hits, %d misses, %d builds, %d evictions, %d entries, %s resident",
		st.Hits, st.Misses, st.Builds, st.Evictions, st.Entries, humanBytes(st.Bytes))
	if s != nil && s.disk != nil {
		line += fmt.Sprintf(" | disk: %d hits, %d misses, %d writes, %d corrupt, %d stale, %d errors",
			st.DiskHits, st.DiskMisses, st.DiskWrites, st.DiskCorrupt, st.DiskStale,
			st.DiskReadErrors+st.DiskWriteErrors)
	}
	return line
}

// Keys lists resident keys sorted by their full ID(), for tests and
// debugging. The full hash matters even here: two configs whose hashes
// share a 12-char prefix must list as two keys, not one repeated line.
func (s *Store) Keys() []string {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]string, 0, len(s.entries))
	for k := range s.entries {
		out = append(out, k.ID())
	}
	sort.Strings(out)
	return out
}

func humanBytes(n int64) string {
	switch {
	case n >= 1<<30:
		return fmt.Sprintf("%.1f GiB", float64(n)/(1<<30))
	case n >= 1<<20:
		return fmt.Sprintf("%.1f MiB", float64(n)/(1<<20))
	case n >= 1<<10:
		return fmt.Sprintf("%.1f KiB", float64(n)/(1<<10))
	default:
		return fmt.Sprintf("%d B", n)
	}
}
