package artifact

import (
	"bytes"
	"testing"
)

// FuzzDecodeArtifactFile is the hostile-bytes gate for the disk tier: the
// envelope decoders must never panic on arbitrary input, must uphold their
// own header invariants whenever they accept a file, and must round-trip
// arbitrary payloads exactly. The seed corpus in testdata covers a valid
// envelope of each artifact kind plus truncated and bit-flipped variants.
func FuzzDecodeArtifactFile(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte("SART"))
	for _, kind := range []string{"world", "rib", "campaign"} {
		valid := EncodeFile(kind, kind+"/za/seed42/abc123", "fp|"+kind+"-gob-v1", []byte("payload of "+kind))
		f.Add(valid)
		f.Add(valid[:len(valid)/2])
		flip := append([]byte(nil), valid...)
		flip[len(flip)/3] ^= 0x10
		f.Add(flip)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		// Never panic, whatever the bytes.
		h, payload, err := DecodeFileAny(data)
		if err == nil {
			// Accepted files must satisfy their own header.
			if int64(len(payload)) != h.PayloadLen {
				t.Fatalf("accepted file: %d payload bytes vs header's %d", len(payload), h.PayloadLen)
			}
			// The identity-checked decoder must agree with the matching
			// identity and refuse a mismatched one.
			if _, err := DecodeFile(data, h.Kind, h.ID, h.Fingerprint); err != nil {
				t.Fatalf("DecodeFile rejected what DecodeFileAny accepted: %v", err)
			}
			if _, err := DecodeFile(data, h.Kind+"x", h.ID, h.Fingerprint); err == nil {
				t.Fatal("DecodeFile accepted a wrong kind")
			}
			if _, err := DecodeFile(data, h.Kind, h.ID, h.Fingerprint+"x"); err == nil {
				t.Fatal("DecodeFile accepted a wrong fingerprint")
			}
		}
		_, _ = DecodeFile(data, "world", "world/za/seed0/x", "fp|v1")

		// Arbitrary bytes used as a payload must round-trip exactly.
		file := EncodeFile("rib", "rib/za/seed7/ff00", "fp|rib-gob-v1", data)
		back, err := DecodeFile(file, "rib", "rib/za/seed7/ff00", "fp|rib-gob-v1")
		if err != nil {
			t.Fatalf("round-trip rejected: %v", err)
		}
		if !bytes.Equal(back, data) {
			t.Fatal("round-trip payload mismatch")
		}
	})
}
