package artifact

import (
	"context"
	"errors"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"sisyphus/internal/obs"
)

// TestPerKeyDistinguishesHashPrefixCollisions is the regression test for the
// stats-folding bug: per-key counters and metric labels were keyed by
// Key.String(), which truncates the config hash to 12 characters, so two
// distinct configs sharing a hash prefix folded onto one slot — hits counted
// against the wrong artifact and the exactly-once-build assertion could pass
// vacuously. Stats must key by the full Key value and metric labels by the
// full hash; only rendering truncates.
func TestPerKeyDistinguishesHashPrefixCollisions(t *testing.T) {
	ctx := context.Background()
	rec := obs.NewRecorder()
	ctx = obs.With(ctx, rec)
	s := NewStore()

	// sha256 prefix collisions are infeasible to mine, so construct the
	// keys directly: same 12-char prefix, divergence only afterwards.
	const prefix = "aaaaaaaaaaaa" // 12 chars — String() truncates here
	k1 := Key{Kind: "world", Scenario: "s", Seed: 7, ConfigHash: prefix + "0000"}
	k2 := Key{Kind: "world", Scenario: "s", Seed: 7, ConfigHash: prefix + "ffff"}
	if k1.String() != k2.String() {
		t.Fatalf("precondition: keys must collide under String(): %q vs %q", k1, k2)
	}
	if k1.ID() == k2.ID() {
		t.Fatal("ID() lost the distinguishing hash suffix")
	}

	spec := boxSpec(nil, []int{1})
	for _, k := range []Key{k1, k2, k1, k1} { // k1: 1 miss + 2 hits; k2: 1 miss
		if _, err := GetOrBuild(ctx, s, k, spec); err != nil {
			t.Fatal(err)
		}
	}

	pk := s.PerKey()
	if len(pk) != 2 {
		t.Fatalf("PerKey folded prefix-colliding keys: %d slots, want 2 (%v)", len(pk), pk)
	}
	if got := pk[k1]; got.Builds != 1 || got.Misses != 1 || got.Hits != 2 {
		t.Fatalf("k1 stats = %+v, want 1 build / 1 miss / 2 hits", got)
	}
	if got := pk[k2]; got.Builds != 1 || got.Misses != 1 || got.Hits != 0 {
		t.Fatalf("k2 stats = %+v, want 1 build / 1 miss / 0 hits", got)
	}

	// Metric labels must be distinct too: one miss counter per full key.
	counters := allMetrics(rec)
	if got := counters["cache.miss."+k1.ID()]; got != 1 {
		t.Fatalf("cache.miss.%s = %v, want 1", k1.ID(), got)
	}
	if got := counters["cache.miss."+k2.ID()]; got != 1 {
		t.Fatalf("cache.miss.%s = %v, want 1", k2.ID(), got)
	}
	if got := counters["cache.hit."+k1.ID()]; got != 2 {
		t.Fatalf("cache.hit.%s = %v, want 2", k1.ID(), got)
	}
}

// TestBuildMsLabeling is the regression test for the failed-build timing
// bug: GetOrBuild recorded cache.build_ms.<key> even when Build returned an
// error, polluting the successful-build timing series with aborted-attempt
// durations. Failures must surface as cache.build_errors instead.
func TestBuildMsLabeling(t *testing.T) {
	key, _ := NewKey("world", "s", 0, nil)
	boom := errors.New("boom")
	cases := []struct {
		name       string
		fail       bool
		wantMs     bool // a cache.build_ms.<key> series exists
		wantErrors float64
	}{
		{name: "failed build", fail: true, wantMs: false, wantErrors: 1},
		{name: "successful build", fail: false, wantMs: true, wantErrors: 0},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			rec := obs.NewRecorder()
			ctx := obs.With(context.Background(), rec)
			s := NewStore()
			spec := boxSpec(nil, []int{1})
			if tc.fail {
				spec.Build = func(ctx context.Context) (*[]int, error) { return nil, boom }
			}
			_, err := GetOrBuild(ctx, s, key, spec)
			if tc.fail != (err != nil) {
				t.Fatalf("err = %v, want failure=%v", err, tc.fail)
			}
			counters := allMetrics(rec)
			_, gotMs := counters["cache.build_ms."+key.ID()]
			if gotMs != tc.wantMs {
				t.Fatalf("cache.build_ms present = %v, want %v (counters: %v)", gotMs, tc.wantMs, counters)
			}
			if got := counters["cache.build_errors."+key.ID()]; got != tc.wantErrors {
				t.Fatalf("cache.build_errors = %v, want %v", got, tc.wantErrors)
			}
		})
	}
}

// TestMetricLabelsUseFullHash guards the label-side of the truncation bug
// directly: no cache.* label may carry a truncated hash when the key's
// config hash is longer.
func TestMetricLabelsUseFullHash(t *testing.T) {
	rec := obs.NewRecorder()
	ctx := obs.With(context.Background(), rec)
	s := NewStore()
	key, _ := NewKey("world", "s", 3, map[string]int{"x": 1})
	if len(key.ConfigHash) != 64 {
		t.Fatalf("precondition: full sha256 hash, got %d chars", len(key.ConfigHash))
	}
	if _, err := GetOrBuild(ctx, s, key, boxSpec(nil, []int{1})); err != nil {
		t.Fatal(err)
	}
	for name := range allMetrics(rec) {
		if strings.HasPrefix(name, "cache.") && strings.Contains(name, key.ConfigHash[:12]) &&
			!strings.Contains(name, key.ConfigHash) {
			t.Fatalf("metric %q carries a truncated config hash", name)
		}
	}
}

// allMetrics flattens the recorder's scoped metrics into one name→value map
// (scopes are irrelevant to these assertions).
func allMetrics(rec *obs.Recorder) map[string]float64 {
	out := make(map[string]float64)
	for _, byName := range rec.Metrics() {
		for name, v := range byName {
			out[name] += v
		}
	}
	return out
}

// TestCancelledBuilderDoesNotPoisonWaiters is the regression test for the
// waiter-poisoning bug: when the in-flight builder's own context is
// cancelled, every waiter parked on the entry used to receive that
// context.Canceled verbatim and fail — even though the failure says nothing
// about the key and the waiters' contexts were perfectly alive. A waiter
// whose own context permits must re-enter the miss path (becoming the new
// builder) and succeed.
func TestCancelledBuilderDoesNotPoisonWaiters(t *testing.T) {
	s := NewStore()
	key, _ := NewKey("world", "s", 0, nil)
	firstStarted := make(chan struct{})
	var builds atomic.Int64
	spec := Spec[*[]int]{
		Build: func(ctx context.Context) (*[]int, error) {
			if builds.Add(1) == 1 {
				close(firstStarted)
				<-ctx.Done() // the doomed builder: block until cancelled
				return nil, ctx.Err()
			}
			v := []int{42}
			return &v, nil
		},
		Fork: func(p *[]int) *[]int { v := append([]int(nil), *p...); return &v },
		Size: func(p *[]int) int64 { return int64(8 * len(*p)) },
	}

	builderCtx, cancel := context.WithCancel(context.Background())
	builderErr := make(chan error, 1)
	go func() {
		_, err := GetOrBuild(builderCtx, s, key, spec)
		builderErr <- err
	}()
	<-firstStarted // the entry is in-flight; join it as a waiter
	waiterDone := make(chan error, 1)
	var got atomic.Int64
	go func() {
		v, err := GetOrBuild(context.Background(), s, key, spec)
		if err == nil {
			got.Store(int64((*v)[0]))
		}
		waiterDone <- err
	}()
	// Give the waiter time to park on the pending entry, then kill the
	// builder under it.
	time.Sleep(20 * time.Millisecond)
	cancel()

	if err := <-builderErr; !errors.Is(err, context.Canceled) {
		t.Fatalf("builder err = %v, want context.Canceled", err)
	}
	if err := <-waiterDone; err != nil {
		t.Fatalf("waiter poisoned by the builder's cancellation: %v", err)
	}
	if got.Load() != 42 {
		t.Fatalf("waiter value = %d, want 42", got.Load())
	}
	if builds.Load() != 2 {
		t.Fatalf("builds = %d, want 2 (cancelled attempt + waiter's retry)", builds.Load())
	}
}

// TestCancelledWaiterStillFails: the retry loop must not spin when the
// waiter's own context is also dead — it surfaces an error instead.
func TestCancelledWaiterStillFails(t *testing.T) {
	s := NewStore()
	key, _ := NewKey("world", "s", 0, nil)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	spec := boxSpec(nil, []int{1})
	spec.Build = func(ctx context.Context) (*[]int, error) { return nil, ctx.Err() }
	if _, err := GetOrBuild(ctx, s, key, spec); err == nil {
		t.Fatal("dead-context caller must fail, not loop or succeed")
	}
}

// TestKeysReturnFullIDs is the regression test for the Keys() truncation
// bug: the listing rendered via String(), whose 12-char hash prefix folds
// distinct configs onto one line. Keys must list full ID()s, sorted.
func TestKeysReturnFullIDs(t *testing.T) {
	ctx := context.Background()
	s := NewStore()
	const prefix = "bbbbbbbbbbbb" // 12 chars — String() truncates here
	k1 := Key{Kind: "world", Scenario: "s", Seed: 1, ConfigHash: prefix + "0000"}
	k2 := Key{Kind: "world", Scenario: "s", Seed: 1, ConfigHash: prefix + "ffff"}
	for _, k := range []Key{k2, k1} { // insert out of order to check sorting
		if _, err := GetOrBuild(ctx, s, k, boxSpec(nil, []int{1})); err != nil {
			t.Fatal(err)
		}
	}
	keys := s.Keys()
	want := []string{k1.ID(), k2.ID()}
	if len(keys) != 2 || keys[0] != want[0] || keys[1] != want[1] {
		t.Fatalf("Keys() = %v, want sorted full IDs %v", keys, want)
	}
}
