package artifact

import (
	"context"
	"errors"
	"strings"
	"testing"

	"sisyphus/internal/obs"
)

// TestPerKeyDistinguishesHashPrefixCollisions is the regression test for the
// stats-folding bug: per-key counters and metric labels were keyed by
// Key.String(), which truncates the config hash to 12 characters, so two
// distinct configs sharing a hash prefix folded onto one slot — hits counted
// against the wrong artifact and the exactly-once-build assertion could pass
// vacuously. Stats must key by the full Key value and metric labels by the
// full hash; only rendering truncates.
func TestPerKeyDistinguishesHashPrefixCollisions(t *testing.T) {
	ctx := context.Background()
	rec := obs.NewRecorder()
	ctx = obs.With(ctx, rec)
	s := NewStore()

	// sha256 prefix collisions are infeasible to mine, so construct the
	// keys directly: same 12-char prefix, divergence only afterwards.
	const prefix = "aaaaaaaaaaaa" // 12 chars — String() truncates here
	k1 := Key{Kind: "world", Scenario: "s", Seed: 7, ConfigHash: prefix + "0000"}
	k2 := Key{Kind: "world", Scenario: "s", Seed: 7, ConfigHash: prefix + "ffff"}
	if k1.String() != k2.String() {
		t.Fatalf("precondition: keys must collide under String(): %q vs %q", k1, k2)
	}
	if k1.ID() == k2.ID() {
		t.Fatal("ID() lost the distinguishing hash suffix")
	}

	spec := boxSpec(nil, []int{1})
	for _, k := range []Key{k1, k2, k1, k1} { // k1: 1 miss + 2 hits; k2: 1 miss
		if _, err := GetOrBuild(ctx, s, k, spec); err != nil {
			t.Fatal(err)
		}
	}

	pk := s.PerKey()
	if len(pk) != 2 {
		t.Fatalf("PerKey folded prefix-colliding keys: %d slots, want 2 (%v)", len(pk), pk)
	}
	if got := pk[k1]; got.Builds != 1 || got.Misses != 1 || got.Hits != 2 {
		t.Fatalf("k1 stats = %+v, want 1 build / 1 miss / 2 hits", got)
	}
	if got := pk[k2]; got.Builds != 1 || got.Misses != 1 || got.Hits != 0 {
		t.Fatalf("k2 stats = %+v, want 1 build / 1 miss / 0 hits", got)
	}

	// Metric labels must be distinct too: one miss counter per full key.
	counters := allMetrics(rec)
	if got := counters["cache.miss."+k1.ID()]; got != 1 {
		t.Fatalf("cache.miss.%s = %v, want 1", k1.ID(), got)
	}
	if got := counters["cache.miss."+k2.ID()]; got != 1 {
		t.Fatalf("cache.miss.%s = %v, want 1", k2.ID(), got)
	}
	if got := counters["cache.hit."+k1.ID()]; got != 2 {
		t.Fatalf("cache.hit.%s = %v, want 2", k1.ID(), got)
	}
}

// TestBuildMsLabeling is the regression test for the failed-build timing
// bug: GetOrBuild recorded cache.build_ms.<key> even when Build returned an
// error, polluting the successful-build timing series with aborted-attempt
// durations. Failures must surface as cache.build_errors instead.
func TestBuildMsLabeling(t *testing.T) {
	key, _ := NewKey("world", "s", 0, nil)
	boom := errors.New("boom")
	cases := []struct {
		name       string
		fail       bool
		wantMs     bool // a cache.build_ms.<key> series exists
		wantErrors float64
	}{
		{name: "failed build", fail: true, wantMs: false, wantErrors: 1},
		{name: "successful build", fail: false, wantMs: true, wantErrors: 0},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			rec := obs.NewRecorder()
			ctx := obs.With(context.Background(), rec)
			s := NewStore()
			spec := boxSpec(nil, []int{1})
			if tc.fail {
				spec.Build = func(ctx context.Context) (*[]int, error) { return nil, boom }
			}
			_, err := GetOrBuild(ctx, s, key, spec)
			if tc.fail != (err != nil) {
				t.Fatalf("err = %v, want failure=%v", err, tc.fail)
			}
			counters := allMetrics(rec)
			_, gotMs := counters["cache.build_ms."+key.ID()]
			if gotMs != tc.wantMs {
				t.Fatalf("cache.build_ms present = %v, want %v (counters: %v)", gotMs, tc.wantMs, counters)
			}
			if got := counters["cache.build_errors."+key.ID()]; got != tc.wantErrors {
				t.Fatalf("cache.build_errors = %v, want %v", got, tc.wantErrors)
			}
		})
	}
}

// TestMetricLabelsUseFullHash guards the label-side of the truncation bug
// directly: no cache.* label may carry a truncated hash when the key's
// config hash is longer.
func TestMetricLabelsUseFullHash(t *testing.T) {
	rec := obs.NewRecorder()
	ctx := obs.With(context.Background(), rec)
	s := NewStore()
	key, _ := NewKey("world", "s", 3, map[string]int{"x": 1})
	if len(key.ConfigHash) != 64 {
		t.Fatalf("precondition: full sha256 hash, got %d chars", len(key.ConfigHash))
	}
	if _, err := GetOrBuild(ctx, s, key, boxSpec(nil, []int{1})); err != nil {
		t.Fatal(err)
	}
	for name := range allMetrics(rec) {
		if strings.HasPrefix(name, "cache.") && strings.Contains(name, key.ConfigHash[:12]) &&
			!strings.Contains(name, key.ConfigHash) {
			t.Fatalf("metric %q carries a truncated config hash", name)
		}
	}
}

// allMetrics flattens the recorder's scoped metrics into one name→value map
// (scopes are irrelevant to these assertions).
func allMetrics(rec *obs.Recorder) map[string]float64 {
	out := make(map[string]float64)
	for _, byName := range rec.Metrics() {
		for name, v := range byName {
			out[name] += v
		}
	}
	return out
}
