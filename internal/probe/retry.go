package probe

import "sisyphus/internal/netsim/topo"

// FaultHook is the probe-side interface to a measurement-fault injector
// (implemented by internal/faults). The prober consults it once per probe
// attempt and once per completed record. A nil hook — and equally a hook
// whose every fault rate is zero — leaves the prober's output bit-identical
// to a fault-free run: the hook owns its own pre-split RNG streams, so
// consulting it never advances the prober's measurement-noise stream.
type FaultHook interface {
	// AttemptFails reports whether the probe attempt with the given
	// per-prober sequence number times out (an injected drop, or the
	// vantage point being inside an outage window).
	AttemptFails(src topo.PoPID, hour float64, seq, attempt int) bool
	// MutateMeasurement applies record-level faults (traceroute
	// truncation, timestamp skew) to a completed measurement.
	MutateMeasurement(m *Measurement, seq int)
}

// RetryPolicy bounds how a prober reacts to failed attempts: at most
// MaxAttempts tries per probe, with a deterministic exponential backoff
// between them. The backoff is virtual — the simulation clock does not
// advance during retries — but the schedule is recorded so analyses (and
// tests) can reason about retry cost, and so a future wall-clock prober can
// reuse the exact same policy.
type RetryPolicy struct {
	// MaxAttempts is the total number of tries per probe (default 1:
	// no retry — a single failed attempt yields a Failed record).
	MaxAttempts int
	// BaseBackoffMs is the wait before the second attempt (default 500).
	BaseBackoffMs float64
	// Multiplier grows the wait per additional attempt (default 2).
	Multiplier float64
	// MaxBackoffMs caps any single wait (default 8000).
	MaxBackoffMs float64
}

func (rp RetryPolicy) withDefaults() RetryPolicy {
	if rp.MaxAttempts <= 0 {
		rp.MaxAttempts = 1
	}
	if rp.BaseBackoffMs <= 0 {
		rp.BaseBackoffMs = 500
	}
	if rp.Multiplier <= 0 {
		rp.Multiplier = 2
	}
	if rp.MaxBackoffMs <= 0 {
		rp.MaxBackoffMs = 8000
	}
	return rp
}

// BackoffMs returns the deterministic wait before the given attempt number
// (attempt 2 waits BaseBackoffMs, attempt 3 waits BaseBackoffMs×Multiplier,
// …), capped at MaxBackoffMs. Attempt 1 has no wait.
func (rp RetryPolicy) BackoffMs(attempt int) float64 {
	rp = rp.withDefaults()
	if attempt <= 1 {
		return 0
	}
	d := rp.BaseBackoffMs
	for i := 2; i < attempt; i++ {
		d *= rp.Multiplier
		if d >= rp.MaxBackoffMs {
			return rp.MaxBackoffMs
		}
	}
	if d > rp.MaxBackoffMs {
		d = rp.MaxBackoffMs
	}
	return d
}

// TotalBackoffMs sums the waits of a probe that exhausts every attempt.
func (rp RetryPolicy) TotalBackoffMs() float64 {
	rp = rp.withDefaults()
	var total float64
	for a := 2; a <= rp.MaxAttempts; a++ {
		total += rp.BackoffMs(a)
	}
	return total
}

// attempt allocates the next probe sequence number and runs the bounded
// retry loop against the fault hook. It reports the sequence number, how
// many attempts were made, and whether every attempt failed.
func (p *Prober) attempt(src topo.PoPID) (seq, attempts int, failed bool) {
	p.probes++
	seq = p.probes
	if p.Hook == nil {
		return seq, 1, false
	}
	rp := p.Retry.withDefaults()
	for a := 1; a <= rp.MaxAttempts; a++ {
		if !p.Hook.AttemptFails(src, p.Engine.Hour(), seq, a) {
			return seq, a, false
		}
	}
	return seq, rp.MaxAttempts, true
}

// mutate lets the fault hook post-process a completed measurement.
func (p *Prober) mutate(m *Measurement, seq int) {
	if p.Hook != nil {
		p.Hook.MutateMeasurement(m, seq)
	}
}

// failedRecord builds the explicit marker for a probe whose every attempt
// timed out. The record keeps its identity fields (who probed whom, when,
// why) so a dead vantage point's schedule shows up as tagged gaps rather
// than silently missing rows; performance fields stay zero and Failed is
// set, and every aggregation must filter on it.
func (p *Prober) failedRecord(src, dst topo.PoPID, intent Intent, trigger string, family, attempts int) *Measurement {
	t := p.Engine.Topo
	sp, dp := t.PoP(src), t.PoP(dst)
	p.nextID++
	return &Measurement{
		ID: p.nextID, Hour: p.Engine.Hour(), Intent: intent, Trigger: trigger,
		SrcASN: sp.AS, SrcCity: sp.City, DstASN: dp.AS, DstCity: dp.City,
		Family: family, Failed: true, Attempts: attempts,
	}
}
