package probe

import "sisyphus/internal/netsim/topo"

// Clone returns a deep copy of the measurement: the struct is copied and
// the Hops and ASPath slices are duplicated, so the copy shares no mutable
// state with the original. Used by the artifact layer's copy-on-read rule
// when forking a cached measurement campaign.
func (m *Measurement) Clone() *Measurement {
	c := *m
	c.Hops = append([]HopRecord(nil), m.Hops...)
	c.ASPath = append([]topo.ASN(nil), m.ASPath...)
	return &c
}
