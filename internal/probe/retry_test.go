package probe

import (
	"testing"

	"sisyphus/internal/netsim/scenario"
	"sisyphus/internal/netsim/topo"
)

func TestRetryPolicyBackoffSequences(t *testing.T) {
	cases := []struct {
		name string
		rp   RetryPolicy
		want []float64 // BackoffMs for attempts 1..len(want)
	}{
		{
			name: "zero value defaults",
			rp:   RetryPolicy{},
			want: []float64{0, 500, 1000, 2000, 4000, 8000, 8000},
		},
		{
			name: "custom base and multiplier",
			rp:   RetryPolicy{MaxAttempts: 5, BaseBackoffMs: 100, Multiplier: 3, MaxBackoffMs: 1000},
			want: []float64{0, 100, 300, 900, 1000, 1000},
		},
		{
			name: "multiplier one is constant backoff",
			rp:   RetryPolicy{MaxAttempts: 4, BaseBackoffMs: 250, Multiplier: 1, MaxBackoffMs: 8000},
			want: []float64{0, 250, 250, 250},
		},
		{
			name: "cap below base clamps immediately",
			rp:   RetryPolicy{MaxAttempts: 3, BaseBackoffMs: 500, Multiplier: 2, MaxBackoffMs: 200},
			want: []float64{0, 200, 200},
		},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			for attempt := 1; attempt <= len(c.want); attempt++ {
				if got := c.rp.BackoffMs(attempt); got != c.want[attempt-1] {
					t.Fatalf("BackoffMs(%d) = %v, want %v", attempt, got, c.want[attempt-1])
				}
			}
			// The schedule is deterministic: asking twice gives the same answer.
			if a, b := c.rp.BackoffMs(3), c.rp.BackoffMs(3); a != b {
				t.Fatalf("BackoffMs not deterministic: %v vs %v", a, b)
			}
		})
	}
}

func TestRetryPolicyTotalBackoff(t *testing.T) {
	rp := RetryPolicy{MaxAttempts: 4, BaseBackoffMs: 100, Multiplier: 2, MaxBackoffMs: 8000}
	if got, want := rp.TotalBackoffMs(), 100.0+200+400; got != want {
		t.Fatalf("TotalBackoffMs = %v, want %v", got, want)
	}
	if got := (RetryPolicy{}).TotalBackoffMs(); got != 0 {
		t.Fatalf("no-retry policy should have zero total backoff, got %v", got)
	}
}

// scriptedHook fails the first N attempts of every probe.
type scriptedHook struct {
	failFirst int
	calls     int
	mutations int
}

func (h *scriptedHook) AttemptFails(src topo.PoPID, hour float64, seq, attempt int) bool {
	h.calls++
	return attempt <= h.failFirst
}

func (h *scriptedHook) MutateMeasurement(m *Measurement, seq int) { h.mutations++ }

func TestProberRetriesUntilSuccess(t *testing.T) {
	s, e, p := testWorld(t)
	if err := e.Step(); err != nil {
		t.Fatal(err)
	}
	src, _ := s.Topo.FindPoP(3741, "East London")
	rib, _ := e.RIB()
	target, err := rib.NearestPoP(src, scenario.BigContent)
	if err != nil {
		t.Fatal(err)
	}

	hook := &scriptedHook{failFirst: 2}
	p.Hook = hook
	p.Retry = RetryPolicy{MaxAttempts: 3}
	m, err := p.Ping(src, target, IntentBaseline, "test")
	if err != nil {
		t.Fatal(err)
	}
	if m.Failed {
		t.Fatal("third attempt should have succeeded")
	}
	if m.Attempts != 3 {
		t.Fatalf("Attempts = %d, want 3", m.Attempts)
	}
	if hook.calls != 3 {
		t.Fatalf("hook consulted %d times, want 3", hook.calls)
	}
	if hook.mutations != 1 {
		t.Fatalf("mutation hook ran %d times, want 1", hook.mutations)
	}
}

func TestProberExhaustedRetriesYieldFailedRecord(t *testing.T) {
	s, e, p := testWorld(t)
	if err := e.Step(); err != nil {
		t.Fatal(err)
	}
	src, _ := s.Topo.FindPoP(3741, "East London")
	rib, _ := e.RIB()
	target, err := rib.NearestPoP(src, scenario.BigContent)
	if err != nil {
		t.Fatal(err)
	}

	p.Hook = &scriptedHook{failFirst: 99}
	p.Retry = RetryPolicy{MaxAttempts: 2}
	m, err := p.Ping(src, target, IntentUserInitiated, "user")
	if err != nil {
		t.Fatal(err)
	}
	if !m.Failed {
		t.Fatal("want explicit Failed marker, not silent absence")
	}
	if m.Attempts != 2 {
		t.Fatalf("Attempts = %d, want 2", m.Attempts)
	}
	if m.ID == 0 {
		t.Fatal("failed record must still get an ID")
	}
	if m.Intent != IntentUserInitiated || m.Trigger != "user" {
		t.Fatalf("failed record lost its intent context: %v/%v", m.Intent, m.Trigger)
	}
	if m.SrcASN == 0 || m.DstASN == 0 {
		t.Fatal("failed record must keep its identity fields")
	}
	if m.RTTms != 0 || m.ThroughputMbps != 0 || len(m.Hops) != 0 {
		t.Fatal("failed record must not carry performance data")
	}
}
