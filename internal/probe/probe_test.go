package probe

import (
	"strings"
	"testing"

	"sisyphus/internal/netsim/engine"
	"sisyphus/internal/netsim/scenario"
	"sisyphus/internal/netsim/topo"
)

func testWorld(t *testing.T) (*scenario.World, *engine.Engine, *Prober) {
	t.Helper()
	s, err := scenario.BuildSouthAfrica()
	if err != nil {
		t.Fatal(err)
	}
	e := engine.New(s.Topo, 5, engine.Config{})
	return s, e, NewProber(e, 6)
}

func TestPingAddsPositiveJitter(t *testing.T) {
	s, e, p := testWorld(t)
	src, _ := s.Topo.FindPoP(3741, "East London")
	dst, _ := e.RIB()
	_ = dst
	rib, _ := e.RIB()
	target, err := rib.NearestPoP(src, scenario.BigContent)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		m, err := p.Ping(src, target, IntentBaseline, "test")
		if err != nil {
			t.Fatal(err)
		}
		if m.RTTms < m.TrueRTTms {
			t.Fatalf("measured %v below truth %v", m.RTTms, m.TrueRTTms)
		}
		if m.RTTms > m.TrueRTTms+20 {
			t.Fatalf("jitter implausibly large: %v vs %v", m.RTTms, m.TrueRTTms)
		}
		if len(m.Hops) != 0 {
			t.Fatal("ping should not carry hops")
		}
	}
}

func TestTracerouteHops(t *testing.T) {
	s, e, p := testWorld(t)
	src, _ := s.Topo.FindPoP(37053, "Cape Town")
	rib, _ := e.RIB()
	target, _ := rib.NearestPoP(src, scenario.BigContent)
	m, err := p.Traceroute(src, target, IntentBaseline, "test")
	if err != nil {
		t.Fatal(err)
	}
	if len(m.Hops) < 2 {
		t.Fatalf("hops = %d", len(m.Hops))
	}
	// TTLs increase, addresses non-empty, final hop is the destination AS.
	for i, h := range m.Hops {
		if h.TTL != i+1 {
			t.Fatalf("ttl[%d] = %d", i, h.TTL)
		}
		if h.Addr == "" {
			t.Fatal("empty hop address")
		}
	}
	last := m.Hops[len(m.Hops)-1]
	if last.ASN != scenario.BigContent {
		t.Fatalf("last hop AS = %d", last.ASN)
	}
	if last.RTTms > m.RTTms {
		t.Fatalf("hop rtt %v exceeds end-to-end %v", last.RTTms, m.RTTms)
	}
	// AS path starts at the source AS.
	if m.ASPath[0] != 37053 {
		t.Fatalf("as path = %v", m.ASPath)
	}
}

func TestSpeedTestProducesThroughputAndHops(t *testing.T) {
	s, _, p := testWorld(t)
	src, _ := s.Topo.FindPoP(328745, "Johannesburg")
	m, err := p.SpeedTest(src, scenario.BigContent, IntentUserInitiated, "user")
	if err != nil {
		t.Fatal(err)
	}
	if m.ThroughputMbps <= 0 {
		t.Fatalf("throughput = %v", m.ThroughputMbps)
	}
	if len(m.Hops) == 0 {
		t.Fatal("speed test must attach a traceroute (NDT behaviour)")
	}
	if m.Intent != IntentUserInitiated || m.Trigger != "user" {
		t.Fatalf("tagging lost: %v %v", m.Intent, m.Trigger)
	}
	if m.SrcASN != 328745 || m.DstASN != scenario.BigContent {
		t.Fatalf("endpoints: %v -> %v", m.SrcASN, m.DstASN)
	}
}

func TestIXPHopVisibleAfterJoin(t *testing.T) {
	s, e, p := testWorld(t)
	for _, asn := range s.TreatedASNs {
		e.Schedule(engine.EvJoinIXP(5, s.IXPName, asn, 0))
	}
	src, _ := s.Topo.FindPoP(328745, "Johannesburg")

	before, err := p.SpeedTest(src, scenario.BigContent, IntentBaseline, "t")
	if err != nil {
		t.Fatal(err)
	}
	for _, h := range before.Hops {
		if strings.HasPrefix(h.Addr, s.IXPPrefix) {
			t.Fatalf("IXP hop before join: %v", h)
		}
	}
	if err := e.RunUntil(6); err != nil {
		t.Fatal(err)
	}
	after, err := p.SpeedTest(src, scenario.BigContent, IntentBaseline, "t")
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, h := range after.Hops {
		if strings.HasPrefix(h.Addr, s.IXPPrefix) {
			found = true
		}
	}
	if !found {
		t.Fatalf("no IXP hop after join; hops: %+v", after.Hops)
	}
}

func TestMeasurementIDsIncrease(t *testing.T) {
	s, _, p := testWorld(t)
	src, _ := s.Topo.FindPoP(16637, "Pretoria")
	a, err := p.SpeedTest(src, scenario.BigContent, IntentBaseline, "t")
	if err != nil {
		t.Fatal(err)
	}
	b, err := p.SpeedTest(src, scenario.BigContent, IntentBaseline, "t")
	if err != nil {
		t.Fatal(err)
	}
	if b.ID <= a.ID {
		t.Fatalf("ids: %d then %d", a.ID, b.ID)
	}
}

func TestMeasurementString(t *testing.T) {
	m := &Measurement{Intent: IntentBaseline, SrcASN: 1, SrcCity: "X", DstASN: 2, DstCity: "Y", RTTms: 3.14}
	s := m.String()
	if !strings.Contains(s, "AS1/X") || !strings.Contains(s, "3.14") {
		t.Fatalf("string = %q", s)
	}
}

func TestProberDeterminism(t *testing.T) {
	s1, e1 := mustWorld(t)
	s2, e2 := mustWorld(t)
	p1 := NewProber(e1, 42)
	p2 := NewProber(e2, 42)
	src1, _ := s1.Topo.FindPoP(3741, "East London")
	src2, _ := s2.Topo.FindPoP(3741, "East London")
	for i := 0; i < 10; i++ {
		a, err := p1.SpeedTest(src1, scenario.BigContent, IntentBaseline, "t")
		if err != nil {
			t.Fatal(err)
		}
		b, err := p2.SpeedTest(src2, scenario.BigContent, IntentBaseline, "t")
		if err != nil {
			t.Fatal(err)
		}
		if a.RTTms != b.RTTms || a.ThroughputMbps != b.ThroughputMbps {
			t.Fatal("same seeds diverged")
		}
	}
}

func mustWorld(t *testing.T) (*scenario.World, *engine.Engine) {
	t.Helper()
	s, err := scenario.BuildSouthAfrica()
	if err != nil {
		t.Fatal(err)
	}
	return s, engine.New(s.Topo, 5, engine.Config{})
}

func TestUnreachableErrors(t *testing.T) {
	s, _, p := testWorld(t)
	src, _ := s.Topo.FindPoP(3741, "East London")
	if _, err := p.SpeedTest(src, topo.ASN(99999), IntentBaseline, "t"); err == nil {
		t.Fatal("speed test to unknown AS accepted")
	}
}

func TestPingFamilyAndIDsAcrossKinds(t *testing.T) {
	s, e, p := testWorld(t)
	src, _ := s.Topo.FindPoP(37680, "Durban")
	rib, _ := e.RIB()
	dst, _ := rib.NearestPoP(src, scenario.BigContent)
	ping, err := p.Ping(src, dst, IntentBaseline, "t")
	if err != nil {
		t.Fatal(err)
	}
	if ping.Family != 4 {
		t.Fatalf("default family = %d", ping.Family)
	}
	tr, err := p.Traceroute(src, dst, IntentTriggered, "bgp")
	if err != nil {
		t.Fatal(err)
	}
	if tr.ID <= ping.ID {
		t.Fatal("IDs not monotone across measurement kinds")
	}
	if tr.Intent != IntentTriggered {
		t.Fatalf("intent = %v", tr.Intent)
	}
}

func TestSpeedTestFamilyTagsAndRoutes(t *testing.T) {
	s, _, p := testWorld(t)
	src, _ := s.Topo.FindPoP(37680, "Durban")
	m6, err := p.SpeedTestFamily(src, scenario.BigContent, engine.V6, IntentExperiment, "knob")
	if err != nil {
		t.Fatal(err)
	}
	if m6.Family != 6 {
		t.Fatalf("family = %d", m6.Family)
	}
	if len(m6.Hops) == 0 || m6.ThroughputMbps <= 0 {
		t.Fatal("v6 speed test incomplete")
	}
	// With identical policies both families route the same.
	m4, err := p.SpeedTestFamily(src, scenario.BigContent, engine.V4, IntentExperiment, "knob")
	if err != nil {
		t.Fatal(err)
	}
	if len(m4.ASPath) != len(m6.ASPath) {
		t.Fatalf("families diverged without overrides: %v vs %v", m4.ASPath, m6.ASPath)
	}
	if _, err := p.SpeedTestFamily(src, scenario.BigContent, engine.Family(9), IntentExperiment, "x"); err == nil {
		t.Fatal("unknown family accepted")
	}
}

func TestTracerouteHopRTTMonotonicityProperty(t *testing.T) {
	s, e, p := testWorld(t)
	rib, _ := e.RIB()
	for _, u := range s.AllUnits() {
		src, err := s.UserPoP(u)
		if err != nil {
			t.Fatal(err)
		}
		dst, err := rib.NearestPoP(src, scenario.BigContent)
		if err != nil {
			t.Fatal(err)
		}
		m, err := p.Traceroute(src, dst, IntentBaseline, "t")
		if err != nil {
			t.Fatal(err)
		}
		// Hop RTTs based on cumulative propagation (modulo jitter) should
		// never exceed the end-to-end measurement.
		last := m.Hops[len(m.Hops)-1]
		if last.RTTms > m.RTTms+1e-9 {
			t.Fatalf("unit %v: last hop %v > e2e %v", u, last.RTTms, m.RTTms)
		}
	}
}
