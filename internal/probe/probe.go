// Package probe implements active measurement primitives over the simulated
// network: ping, traceroute, and M-Lab-style speed tests (which, like NDT,
// automatically attach a traceroute). Every measurement record carries an
// intent tag and trigger context — design change (2) from §4 of the paper —
// so downstream analysis can account for how the data came to exist.
package probe

import (
	"fmt"

	"sisyphus/internal/mathx"
	"sisyphus/internal/netsim/engine"
	"sisyphus/internal/netsim/topo"
)

// Intent records why a measurement ran. The paper argues platforms must
// expose this so analysts can detect conditioning on colliders: a dataset of
// IntentUserInitiated tests is selection-biased by construction, while
// IntentBaseline tests are not.
type Intent string

const (
	// IntentBaseline marks scheduled, unconditional measurements.
	IntentBaseline Intent = "baseline"
	// IntentUserInitiated marks tests run by (simulated) users, whose
	// propensity to test depends on what they experience.
	IntentUserInitiated Intent = "user-initiated"
	// IntentTriggered marks measurements fired by a platform trigger
	// (e.g. a BGP event) — §4's conditional measurement activation.
	IntentTriggered Intent = "triggered"
	// IntentExperiment marks measurements that are part of a designed
	// experiment (e.g. randomized server assignment).
	IntentExperiment Intent = "experiment"
)

// HopRecord is one traceroute hop.
type HopRecord struct {
	TTL  int
	Addr string
	ASN  topo.ASN
	City string
	// RTTms is the round-trip time to this hop.
	RTTms float64
}

// Measurement is one completed measurement.
type Measurement struct {
	ID      int
	Hour    float64
	Intent  Intent
	Trigger string // free-form trigger context ("user", "bgp-change", ...)

	SrcASN  topo.ASN
	SrcCity string
	DstASN  topo.ASN
	DstCity string
	// Server identifies the measurement server (M-Lab site) if any.
	Server string
	// Family is the IP family used (4 or 6).
	Family int

	RTTms          float64
	ThroughputMbps float64
	LossRate       float64
	Hops           []HopRecord
	ASPath         []topo.ASN

	// Failed marks a probe whose every attempt timed out (injected fault or
	// vantage outage). The record still carries its identity fields so the
	// gap is explicit and attributable; performance fields are zero and must
	// not be aggregated. Analyses filter on this flag, never on absence.
	Failed bool `json:",omitempty"`
	// Truncated marks a traceroute whose tail hops were lost: Hops is a
	// strict prefix of the real path and the IXP detector may miss
	// crossings on this record.
	Truncated bool `json:",omitempty"`
	// Attempts is how many tries the probe took (1 = first-try success).
	// Zero only on records predating retry accounting.
	Attempts int `json:",omitempty"`
	// DuplicateOf is the ID of the original record when this one is an
	// injected duplicate delivery; zero otherwise.
	DuplicateOf int `json:",omitempty"`

	// Ground-truth fields (prefixed True) exist only because the substrate
	// is a simulator; estimators must not use them. They let tests compare
	// estimates against the truth.
	TrueRTTms   float64
	TrueMaxUtil float64
}

// Prober issues measurements against an engine. Measurement noise uses its
// own RNG stream so that replaying a counterfactual world perturbs neither
// traffic noise nor measurement noise.
type Prober struct {
	Engine *engine.Engine
	rng    *mathx.RNG
	nextID int
	probes int // probe sequence counter; keys fault-hook RNG streams
	// RTTJitterMs scales additive measurement jitter (default 1.2).
	RTTJitterMs float64
	// ThroughputEff is the mean fraction of bottleneck bandwidth a TCP
	// transfer achieves (default 0.85).
	ThroughputEff float64
	// Hook, when non-nil, injects measurement faults (drops, outages,
	// truncation, skew). Its decisions come from its own pre-split RNG
	// streams, so installing a hook with all rates zero leaves output
	// bit-identical to Hook == nil.
	Hook FaultHook
	// Retry bounds how failed attempts are retried; the zero value means
	// one attempt, no retry.
	Retry RetryPolicy
}

// NewProber returns a prober with its own noise stream.
func NewProber(e *engine.Engine, seed uint64) *Prober {
	return &Prober{Engine: e, rng: mathx.NewRNG(seed), RTTJitterMs: 1.2, ThroughputEff: 0.85}
}

func (p *Prober) jitter() float64 {
	// Positive-skewed jitter: queue variance only ever adds latency.
	return p.rng.Exponential(1 / p.RTTJitterMs)
}

// Ping measures RTT between two PoPs.
func (p *Prober) Ping(src, dst topo.PoPID, intent Intent, trigger string) (*Measurement, error) {
	seq, attempts, failed := p.attempt(src)
	if failed {
		return p.failedRecord(src, dst, intent, trigger, 4, attempts), nil
	}
	perf, err := p.Engine.Perf(src, dst)
	if err != nil {
		return nil, err
	}
	m := p.record(src, dst, perf, intent, trigger, false)
	m.Attempts = attempts
	p.mutate(m, seq)
	return m, nil
}

// Traceroute measures the path between two PoPs with per-hop RTTs and
// addresses (IXP LAN addresses appear on IXP crossings).
func (p *Prober) Traceroute(src, dst topo.PoPID, intent Intent, trigger string) (*Measurement, error) {
	seq, attempts, failed := p.attempt(src)
	if failed {
		return p.failedRecord(src, dst, intent, trigger, 4, attempts), nil
	}
	perf, err := p.Engine.Perf(src, dst)
	if err != nil {
		return nil, err
	}
	m := p.record(src, dst, perf, intent, trigger, true)
	m.Attempts = attempts
	p.mutate(m, seq)
	return m, nil
}

// SpeedTest measures throughput to the nearest PoP of a destination AS and
// attaches a traceroute, mirroring M-Lab's NDT + triggered traceroute.
func (p *Prober) SpeedTest(src topo.PoPID, dstAS topo.ASN, intent Intent, trigger string) (*Measurement, error) {
	rib, err := p.Engine.RIB()
	if err != nil {
		return nil, err
	}
	dst, err := rib.NearestPoP(src, dstAS)
	if err != nil {
		return nil, err
	}
	return p.SpeedTestTo(src, dst, intent, trigger)
}

// SpeedTestTo measures throughput to a specific server PoP (used when a
// load balancer, not anycast, picks the server).
func (p *Prober) SpeedTestTo(src, dst topo.PoPID, intent Intent, trigger string) (*Measurement, error) {
	seq, attempts, failed := p.attempt(src)
	if failed {
		return p.failedRecord(src, dst, intent, trigger, 4, attempts), nil
	}
	perf, err := p.Engine.Perf(src, dst)
	if err != nil {
		return nil, err
	}
	m := p.record(src, dst, perf, intent, trigger, true)
	m.Attempts = attempts
	eff := p.ThroughputEff + p.rng.Normal(0, 0.05)
	if eff < 0.3 {
		eff = 0.3
	}
	if eff > 1 {
		eff = 1
	}
	m.ThroughputMbps = perf.ThroughputMbps * eff
	p.mutate(m, seq)
	return m, nil
}

func (p *Prober) record(src, dst topo.PoPID, perf *engine.PathPerf, intent Intent, trigger string, withHops bool) *Measurement {
	return p.recordFamily(src, dst, perf, intent, trigger, withHops, 4)
}

func (p *Prober) recordFamily(src, dst topo.PoPID, perf *engine.PathPerf, intent Intent, trigger string, withHops bool, family int) *Measurement {
	t := p.Engine.Topo
	sp, dp := t.PoP(src), t.PoP(dst)
	p.nextID++
	m := &Measurement{
		ID: p.nextID, Hour: p.Engine.Hour(), Intent: intent, Trigger: trigger,
		SrcASN: sp.AS, SrcCity: sp.City, DstASN: dp.AS, DstCity: dp.City,
		Family:      family,
		RTTms:       perf.RTTms + p.jitter(),
		LossRate:    perf.LossRate,
		ASPath:      append([]topo.ASN(nil), perf.Path.ASPath...),
		TrueRTTms:   perf.RTTms,
		TrueMaxUtil: perf.MaxUtil,
	}
	if withHops {
		m.Hops = p.expandHops(perf, m.RTTms)
	}
	return m
}

// expandHops converts the forwarding path into traceroute output. Hop RTTs
// grow monotonically toward the end-to-end RTT with per-hop jitter.
func (p *Prober) expandHops(perf *engine.PathPerf, finalRTT float64) []HopRecord {
	t := p.Engine.Topo
	hops := perf.Path.Hops
	out := make([]HopRecord, 0, len(hops))
	oneWay := 0.0
	for i, h := range hops {
		oneWay += h.DelayMs
		pop := t.PoP(h.To)
		addr := t.PoPAddr(h.To)
		if h.Link != nil {
			addr = t.HopAddr(h.Link, h.To)
		}
		out = append(out, HopRecord{
			TTL:   i + 1,
			Addr:  addr,
			ASN:   pop.AS,
			City:  pop.City,
			RTTms: 2*oneWay + p.jitter(),
		})
	}
	if n := len(out); n > 0 && out[n-1].RTTms > finalRTT {
		out[n-1].RTTms = finalRTT
	}
	return out
}

// String renders a compact single-line summary.
func (m *Measurement) String() string {
	return fmt.Sprintf("[%s@%.1fh] AS%d/%s -> AS%d/%s rtt=%.2fms tput=%.0fMbps hops=%d",
		m.Intent, m.Hour, m.SrcASN, m.SrcCity, m.DstASN, m.DstCity, m.RTTms, m.ThroughputMbps, len(m.Hops))
}

// SpeedTestFamily runs a speed test over the given IP family's routes —
// the measurement half of §4's IPv4/IPv6 toggle knob. The destination PoP
// is the family's own nearest edge (families can differ here too).
func (p *Prober) SpeedTestFamily(src topo.PoPID, dstAS topo.ASN, family engine.Family, intent Intent, trigger string) (*Measurement, error) {
	rib, err := p.Engine.RIBFamily(family)
	if err != nil {
		return nil, err
	}
	dst, err := rib.NearestPoP(src, dstAS)
	if err != nil {
		return nil, err
	}
	seq, attempts, failed := p.attempt(src)
	if failed {
		return p.failedRecord(src, dst, intent, trigger, int(family), attempts), nil
	}
	perf, err := p.Engine.PerfFamily(src, dst, family)
	if err != nil {
		return nil, err
	}
	m := p.recordFamily(src, dst, perf, intent, trigger, true, int(family))
	m.Attempts = attempts
	eff := p.ThroughputEff + p.rng.Normal(0, 0.05)
	if eff < 0.3 {
		eff = 0.3
	}
	if eff > 1 {
		eff = 1
	}
	m.ThroughputMbps = perf.ThroughputMbps * eff
	p.mutate(m, seq)
	return m, nil
}
