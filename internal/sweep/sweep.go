// Package sweep fans experiment runs across a scenario×seed grid and
// aggregates the per-run estimates into distributional reports: per
// estimator, the bias/RMSE/coverage/placebo-p quantiles over the whole
// grid. One simulated run answers "what did the estimator say here"; the
// grid answers the question the paper keeps circling — how the estimator's
// answers are *distributed* over worlds and randomness, which is what a
// claim like "the method is unbiased with honest p-values" actually means.
//
// The driver reuses the suite's machinery end to end: cells fan out over
// parallel.Pool, every cell pulls its world/RIB/campaign artifacts through
// one shared artifact.Store (worlds are keyed seed-independently, so 200
// seeds of one scenario share a single world build), and each cell is
// fault-isolated — a panic, timeout, or error in one cell becomes a
// reported failure, not a dead grid.
package sweep

import (
	"context"
	"fmt"
	"runtime/debug"
	"time"

	"sisyphus/internal/artifact"
	"sisyphus/internal/experiments"
	"sisyphus/internal/netsim/scenario"
	"sisyphus/internal/parallel"
)

// GridConfig describes a sweep: the cross product of experiments ×
// scenarios × seeds, plus the execution machinery every cell shares.
type GridConfig struct {
	// Experiments are the experiment ids to sweep. Every one must be
	// scenario-capable (its options carry a scenario id — see
	// experiments.ScenarioCapableIDs) and produce Sampler results.
	Experiments []string
	// Scenarios are registered world ids (canned names or gen/<cfghash>
	// ids; resolve gen: specs with scenario.ResolveID first).
	Scenarios []string
	// Seeds are the per-cell root seeds.
	Seeds []uint64
	// Pool shards the grid; cells also pass it down into their own internal
	// fan-outs. The grid is bit-identical at any width.
	Pool parallel.Pool
	// Artifacts, when non-nil, is shared by every cell, so cells agreeing
	// on a ⟨kind, scenario, seed, config⟩ coordinate share one build. The
	// world and RIB artifacts are keyed seed-independently: a whole seed
	// column of the grid builds its world once.
	Artifacts *artifact.Store
	// CellTimeout bounds each cell's wall-clock time; a cell hitting it is
	// recorded as failed (context.DeadlineExceeded), isolated from the
	// rest of the grid. Zero means no per-cell bound.
	CellTimeout time.Duration
}

// cell is one grid point, in canonical order: experiment-major,
// then scenario, then seed.
type cell struct {
	exp      experiments.Experiment
	opts     experiments.Options
	scenario string
	seed     uint64
}

// CellResult is one grid point's outcome: either Samples or Err.
type CellResult struct {
	Experiment string
	Scenario   string
	Seed       uint64
	// Err is the cell's failure, "" when the cell completed. A failed cell
	// contributes no samples but stays in the report's accounting.
	Err     string `json:",omitempty"`
	Samples []experiments.Sample
}

// Run executes the grid and aggregates the surviving samples into a
// Report. Cell order — and therefore the report — is deterministic at any
// pool width: cells are enumerated experiment-major before fan-out and
// parallel.Map returns them in order. Cancelling ctx abandons unscheduled
// cells and returns the context error; individual cell failures do not.
func Run(ctx context.Context, cfg GridConfig) (*Report, error) {
	cells, err := expand(cfg)
	if err != nil {
		return nil, err
	}
	results, err := parallel.Map(ctx, cfg.Pool, len(cells), func(i int) (CellResult, error) {
		return runCell(ctx, cfg, cells[i]), nil
	})
	if err != nil {
		return nil, err
	}
	return aggregate(cfg, results), nil
}

// expand validates the grid spec and enumerates its cells in canonical
// order. Validation is all up front — an unknown experiment, a
// non-scenario-capable one, or an unregistered scenario id fails the whole
// sweep before any cell burns simulation time.
func expand(cfg GridConfig) ([]cell, error) {
	if len(cfg.Experiments) == 0 || len(cfg.Scenarios) == 0 || len(cfg.Seeds) == 0 {
		return nil, fmt.Errorf("sweep: grid needs at least one experiment, scenario, and seed (got %d×%d×%d)",
			len(cfg.Experiments), len(cfg.Scenarios), len(cfg.Seeds))
	}
	var cells []cell
	for _, id := range cfg.Experiments {
		e, err := experiments.Get(id)
		if err != nil {
			return nil, fmt.Errorf("sweep: %w", err)
		}
		for _, sc := range cfg.Scenarios {
			if !scenario.Registered(sc) {
				return nil, fmt.Errorf("sweep: unknown scenario id %q (known: %v; gen: specs must be resolved via scenario.ResolveID)", sc, scenario.IDs())
			}
			opts, err := e.OptionsForScenario(sc)
			if err != nil {
				return nil, fmt.Errorf("sweep: %w", err)
			}
			for _, seed := range cfg.Seeds {
				cells = append(cells, cell{exp: e, opts: opts, scenario: sc, seed: seed})
			}
		}
	}
	return cells, nil
}

// runCell executes one grid point under the cell's timeout, converting
// every failure mode — error, panic, timeout, non-Sampler result — into a
// recorded CellResult so neighboring cells keep running.
func runCell(ctx context.Context, cfg GridConfig, c cell) (res CellResult) {
	res = CellResult{Experiment: c.exp.ID, Scenario: c.scenario, Seed: c.seed}
	if cfg.CellTimeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, cfg.CellTimeout)
		defer cancel()
	}
	defer func() {
		if r := recover(); r != nil {
			res.Err = fmt.Sprintf("panic: %v\n%s", r, debug.Stack())
			res.Samples = nil
		}
	}()
	out, err := c.exp.Run(ctx, experiments.Config{
		Seed:      c.seed,
		Pool:      cfg.Pool,
		Artifacts: cfg.Artifacts,
		Opts:      c.opts,
	})
	if err != nil {
		res.Err = err.Error()
		return res
	}
	sampler, ok := out.(experiments.Sampler)
	if !ok {
		res.Err = fmt.Sprintf("result %T does not produce samples", out)
		return res
	}
	res.Samples = sampler.Samples()
	return res
}
