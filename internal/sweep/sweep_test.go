package sweep

import (
	"context"
	"encoding/json"
	"errors"
	"strings"
	"testing"
	"time"

	"sisyphus/internal/artifact"
	"sisyphus/internal/netsim/scenario"
	"sisyphus/internal/parallel"
)

// registerOnce guards the test-world registrations: the scenario registry
// is process-global and Register panics on duplicates.
func registerOnce(id string, b scenario.BuilderFunc) {
	if !scenario.Registered(id) {
		scenario.Register(id, b)
	}
}

// testGenSpec is a deliberately small generated world so grid tests stay
// fast: 8 access ASes (2 treated, 6 donors), 2 content networks.
func testGenSpec() scenario.GenSpec {
	sp := scenario.DefaultGenSpec()
	sp.Config.Access = 8
	sp.Config.Treated = 2
	sp.Config.Content = 2
	sp.Seed = 3
	return sp
}

// smallGrid is the shared test grid: the canned Table 1 world plus a small
// generated world, swept over a few seeds.
func smallGrid(t *testing.T, pool parallel.Pool, store *artifact.Store) GridConfig {
	t.Helper()
	genID, err := scenario.RegisterGen(testGenSpec())
	if err != nil {
		t.Fatal(err)
	}
	return GridConfig{
		Experiments: []string{"table1"},
		Scenarios:   []string{scenario.SouthAfricaID, genID},
		Seeds:       []uint64{1, 2, 3},
		Pool:        pool,
		Artifacts:   store,
	}
}

// TestSweepDeterministicAcrossWidths: the report's JSON must be
// bit-identical at any pool width — grid fan-out must never leak
// scheduling into results.
func TestSweepDeterministicAcrossWidths(t *testing.T) {
	run := func(width int) []byte {
		rep, err := Run(context.Background(), smallGrid(t, parallel.NewPool(width), artifact.NewStore()))
		if err != nil {
			t.Fatal(err)
		}
		b, err := json.Marshal(rep)
		if err != nil {
			t.Fatal(err)
		}
		return b
	}
	w1, w4 := run(1), run(4)
	if string(w1) != string(w4) {
		t.Fatalf("report differs between -workers 1 and 4:\n%s\nvs\n%s", w1, w4)
	}
}

// TestSweepSharesWorldBuildsAcrossSeeds: every seed of a scenario column
// must share one world (and one RIB) build — the world key is
// seed-independent and the store singleflights it.
func TestSweepSharesWorldBuildsAcrossSeeds(t *testing.T) {
	store := artifact.NewStore()
	cfg := smallGrid(t, parallel.NewPool(4), store)
	if _, err := Run(context.Background(), cfg); err != nil {
		t.Fatal(err)
	}
	per := store.PerKey()
	for _, sc := range cfg.Scenarios {
		for _, kind := range []string{"world", "rib"} {
			k, err := artifact.NewKey(kind, sc, 0, nil)
			if err != nil {
				t.Fatal(err)
			}
			st, ok := per[k]
			if !ok {
				t.Fatalf("no store entry for %s", k.ID())
			}
			if st.Builds != 1 {
				t.Fatalf("%s built %d times across %d seeds, want exactly 1", k.ID(), st.Builds, len(cfg.Seeds))
			}
		}
	}
}

// TestSweepSurvivesFailingCell: a scenario whose world build fails turns
// into per-cell failures; the rest of the grid completes and aggregates.
func TestSweepSurvivesFailingCell(t *testing.T) {
	registerOnce("sweep-test-broken", func() (*scenario.World, error) {
		return nil, errors.New("injected build failure")
	})
	cfg := GridConfig{
		Experiments: []string{"table1"},
		Scenarios:   []string{scenario.SouthAfricaID, "sweep-test-broken"},
		Seeds:       []uint64{1, 2},
		Pool:        parallel.NewPool(4),
		Artifacts:   artifact.NewStore(),
	}
	rep, err := Run(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Cells != 4 || rep.OKCells != 2 || len(rep.Failures) != 2 {
		t.Fatalf("cells=%d ok=%d failed=%d, want 4/2/2", rep.Cells, rep.OKCells, len(rep.Failures))
	}
	for _, f := range rep.Failures {
		if f.Scenario != "sweep-test-broken" {
			t.Fatalf("healthy scenario %q reported failed: %+v", f.Scenario, f)
		}
		if !strings.Contains(f.Err, "injected build failure") {
			t.Fatalf("failure lost its cause: %q", f.Err)
		}
	}
	for _, g := range rep.Groups {
		if g.Scenario != scenario.SouthAfricaID {
			t.Fatalf("failed scenario produced a group: %+v", g)
		}
		if g.Samples == 0 {
			t.Fatalf("surviving group has no samples: %+v", g)
		}
	}
	if len(rep.Groups) == 0 {
		t.Fatal("no groups from the surviving scenario")
	}
}

// TestSweepSurvivesPanickingCell: a panic inside a cell is contained as
// that cell's failure, never a crashed grid.
func TestSweepSurvivesPanickingCell(t *testing.T) {
	registerOnce("sweep-test-panic", func() (*scenario.World, error) {
		panic("injected panic")
	})
	rep, err := Run(context.Background(), GridConfig{
		Experiments: []string{"table1"},
		Scenarios:   []string{"sweep-test-panic"},
		Seeds:       []uint64{1},
		Pool:        parallel.NewPool(1),
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Failures) != 1 || !strings.Contains(rep.Failures[0].Err, "injected panic") {
		t.Fatalf("panic not captured as a cell failure: %+v", rep.Failures)
	}
}

// TestSweepCellTimeout: a cell exceeding CellTimeout is reported failed
// with the deadline error; the grid itself returns normally.
func TestSweepCellTimeout(t *testing.T) {
	rep, err := Run(context.Background(), GridConfig{
		Experiments: []string{"table1"},
		Scenarios:   []string{scenario.SouthAfricaID},
		Seeds:       []uint64{1},
		Pool:        parallel.NewPool(1),
		CellTimeout: time.Nanosecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Failures) != 1 || !strings.Contains(rep.Failures[0].Err, context.DeadlineExceeded.Error()) {
		t.Fatalf("timeout not captured as a cell failure: %+v", rep.Failures)
	}
}

// TestSweepValidation: bad grids fail up front with typed errors, before
// any cell runs.
func TestSweepValidation(t *testing.T) {
	base := func() GridConfig {
		return GridConfig{
			Experiments: []string{"table1"},
			Scenarios:   []string{scenario.SouthAfricaID},
			Seeds:       []uint64{1},
		}
	}
	cases := []struct {
		name   string
		mutate func(*GridConfig)
		want   string
	}{
		{"no experiments", func(c *GridConfig) { c.Experiments = nil }, "at least one"},
		{"no scenarios", func(c *GridConfig) { c.Scenarios = nil }, "at least one"},
		{"no seeds", func(c *GridConfig) { c.Seeds = nil }, "at least one"},
		{"unknown experiment", func(c *GridConfig) { c.Experiments = []string{"nosuch"} }, "unknown experiment"},
		{"unknown scenario", func(c *GridConfig) { c.Scenarios = []string{"nosuch"} }, "unknown scenario"},
		{"non-scenario-capable", func(c *GridConfig) { c.Experiments = []string{"collider"} }, "does not take a scenario"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			cfg := base()
			c.mutate(&cfg)
			_, err := Run(context.Background(), cfg)
			if err == nil || !strings.Contains(err.Error(), c.want) {
				t.Fatalf("error = %v, want mention of %q", err, c.want)
			}
		})
	}
}

// TestSweepCancellation: cancelling the grid context surfaces the context
// error from Run itself (cells are not failures when the caller walked
// away).
func TestSweepCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := Run(ctx, GridConfig{
		Experiments: []string{"table1"},
		Scenarios:   []string{scenario.SouthAfricaID},
		Seeds:       []uint64{1, 2, 3},
		Pool:        parallel.NewPool(2),
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}
