package sweep

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"sisyphus/internal/experiments"
	"sisyphus/internal/mathx"
)

// Dist summarizes one metric's distribution over the grid: moments and
// quantiles over the non-NaN values. All fields are NaN (JSON null) when no
// sample carried the metric. RMSE is sqrt(mean(x²)) — for a bias series
// that is exactly the estimator's RMSE against truth.
type Dist struct {
	N                       int
	Mean, RMSE              experiments.NullableFloat
	P05, P25, P50, P75, P95 experiments.NullableFloat
}

// distOf computes a Dist over the non-NaN entries of xs.
func distOf(xs []float64) Dist {
	var vals []float64
	for _, x := range xs {
		if !math.IsNaN(x) {
			vals = append(vals, x)
		}
	}
	nan := experiments.NullableFloat(math.NaN())
	d := Dist{N: len(vals), Mean: nan, RMSE: nan, P05: nan, P25: nan, P50: nan, P75: nan, P95: nan}
	if len(vals) == 0 {
		return d
	}
	var sq float64
	for _, v := range vals {
		sq += v * v
	}
	d.Mean = experiments.NullableFloat(mathx.Mean(vals))
	d.RMSE = experiments.NullableFloat(math.Sqrt(sq / float64(len(vals))))
	q := func(p float64) experiments.NullableFloat {
		return experiments.NullableFloat(mathx.Quantile(vals, p))
	}
	d.P05, d.P25, d.P50, d.P75, d.P95 = q(0.05), q(0.25), q(0.5), q(0.75), q(0.95)
	return d
}

// Group is the distributional summary for one ⟨experiment, scenario,
// estimator⟩ over every surviving cell of the grid.
type Group struct {
	Experiment string
	Scenario   string
	Estimator  string
	// Samples counts the pooled estimates behind the distributions.
	Samples int
	// Bias is the distribution of estimate − truth (ms); its RMSE is the
	// estimator's RMSE over the grid.
	Bias Dist
	// PValue is the distribution of placebo p-values.
	PValue Dist
	// MeanCoverage averages per-sample panel coverage.
	MeanCoverage float64
}

// Failure records one failed cell.
type Failure struct {
	Experiment string
	Scenario   string
	Seed       uint64
	Err        string
}

// Report is the sweep's aggregate outcome: grid accounting plus one Group
// per ⟨experiment, scenario, estimator⟩. Field order, slice order, and the
// NaN→null convention make its JSON deterministic at any worker width.
type Report struct {
	Experiments []string
	Scenarios   []string
	Seeds       []uint64
	// Cells = OKCells + len(Failures): the full grid size.
	Cells    int
	OKCells  int
	Failures []Failure `json:",omitempty"`
	Groups   []Group
}

// aggregate pools cell results into the report. Results arrive in
// canonical cell order, so failure order — and, after the sort, group
// order — is independent of scheduling.
func aggregate(cfg GridConfig, results []CellResult) *Report {
	rep := &Report{
		Experiments: append([]string(nil), cfg.Experiments...),
		Scenarios:   append([]string(nil), cfg.Scenarios...),
		Seeds:       append([]uint64(nil), cfg.Seeds...),
		Cells:       len(results),
	}
	type gkey struct{ exp, sc, est string }
	type acc struct {
		bias, p, cov []float64
	}
	accs := make(map[gkey]*acc)
	var keys []gkey
	for _, r := range results {
		if r.Err != "" {
			rep.Failures = append(rep.Failures, Failure{
				Experiment: r.Experiment, Scenario: r.Scenario, Seed: r.Seed, Err: r.Err,
			})
			continue
		}
		rep.OKCells++
		for _, s := range r.Samples {
			k := gkey{r.Experiment, r.Scenario, s.Estimator}
			a, ok := accs[k]
			if !ok {
				a = &acc{}
				accs[k] = a
				keys = append(keys, k)
			}
			a.bias = append(a.bias, float64(s.Bias))
			a.p = append(a.p, float64(s.PValue))
			a.cov = append(a.cov, s.Coverage)
		}
	}
	sort.Slice(keys, func(i, j int) bool {
		a, b := keys[i], keys[j]
		if a.exp != b.exp {
			return a.exp < b.exp
		}
		if a.sc != b.sc {
			return a.sc < b.sc
		}
		return a.est < b.est
	})
	for _, k := range keys {
		a := accs[k]
		g := Group{
			Experiment: k.exp, Scenario: k.sc, Estimator: k.est,
			Samples: len(a.cov),
			Bias:    distOf(a.bias),
			PValue:  distOf(a.p),
		}
		if len(a.cov) > 0 {
			g.MeanCoverage = mathx.Mean(a.cov)
		}
		rep.Groups = append(rep.Groups, g)
	}
	return rep
}

// Render prints the report as an aligned text table plus the failure list.
func (r *Report) Render() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "Sweep: %d experiments × %d scenarios × %d seeds = %d cells (%d ok, %d failed)\n\n",
		len(r.Experiments), len(r.Scenarios), len(r.Seeds), r.Cells, r.OKCells, len(r.Failures))

	header := []string{"experiment", "scenario", "estimator", "n",
		"bias mean", "bias RMSE", "bias p50", "p p05", "p p50", "p p95", "coverage"}
	rows := [][]string{header}
	nf := func(v experiments.NullableFloat, format string) string {
		if v.IsNaN() {
			return "-"
		}
		return fmt.Sprintf(format, float64(v))
	}
	for _, g := range r.Groups {
		rows = append(rows, []string{
			g.Experiment, g.Scenario, g.Estimator, fmt.Sprintf("%d", g.Samples),
			nf(g.Bias.Mean, "%+.2f"), nf(g.Bias.RMSE, "%.2f"), nf(g.Bias.P50, "%+.2f"),
			nf(g.PValue.P05, "%.3f"), nf(g.PValue.P50, "%.3f"), nf(g.PValue.P95, "%.3f"),
			fmt.Sprintf("%.3f", g.MeanCoverage),
		})
	}
	widths := make([]int, len(header))
	for _, row := range rows {
		for i, c := range row {
			if len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	for ri, row := range rows {
		for i, c := range row {
			if i > 0 {
				sb.WriteString("  ")
			}
			sb.WriteString(c)
			for pad := len(c); pad < widths[i]; pad++ {
				sb.WriteByte(' ')
			}
		}
		sb.WriteByte('\n')
		if ri == 0 {
			var total int
			for _, w := range widths {
				total += w + 2
			}
			sb.WriteString(strings.Repeat("-", total))
			sb.WriteByte('\n')
		}
	}
	for _, f := range r.Failures {
		fmt.Fprintf(&sb, "\nFAILED cell %s/%s seed %d: %s", f.Experiment, f.Scenario, f.Seed, firstLine(f.Err))
	}
	if len(r.Failures) > 0 {
		sb.WriteByte('\n')
	}
	return sb.String()
}

// firstLine truncates multi-line cell errors (panic stacks) for the text
// report; the JSON report keeps them whole.
func firstLine(s string) string {
	if i := strings.IndexByte(s, '\n'); i >= 0 {
		return s[:i]
	}
	return s
}
