package platform

import (
	"context"
	"testing"

	"sisyphus/internal/netsim/engine"
	"sisyphus/internal/netsim/scenario"
	"sisyphus/internal/netsim/topo"
	"sisyphus/internal/probe"
)

func TestCampaignCollectsAllStreams(t *testing.T) {
	s, e, p := world(t)
	src, _ := s.Topo.FindPoP(328745, "Johannesburg")
	rib, _ := e.RIB()
	dst, err := rib.NearestPoP(src, scenario.BigContent)
	if err != nil {
		t.Fatal(err)
	}
	var servers []topo.PoPID
	for _, asn := range s.MLabServerASNs {
		id, _ := s.Topo.FindPoP(asn, "Johannesburg")
		servers = append(servers, id)
	}
	pool, err := NewMLabPool("jnb", servers, 3)
	if err != nil {
		t.Fatal(err)
	}

	c := NewCampaign(p, nil)
	c.KeepObservations = true
	c.AddUsers(NewUserModel([]UserPop{{Src: src, Dst: scenario.BigContent, Size: 2}}, 4)).
		AddBaseline(NewBaseline(src, scenario.BigContent, 2)).
		AddWatch(NewBGPWatch(src, dst)).
		AddPool(pool, src, 3)

	// A route change mid-campaign for the watch to catch.
	e.Schedule(engine.EvJoinIXP(10, s.IXPName, 328745, 0))

	if err := c.RunUntil(context.Background(), 30); err != nil {
		t.Fatal(err)
	}
	counts := c.IntentCounts()
	if counts[probe.IntentBaseline] != 15 {
		t.Fatalf("baseline count = %d want 15", counts[probe.IntentBaseline])
	}
	if counts[probe.IntentExperiment] != 10 {
		t.Fatalf("pool count = %d want 10", counts[probe.IntentExperiment])
	}
	if counts[probe.IntentTriggered] == 0 {
		t.Fatal("watch never fired despite the IXP join")
	}
	if counts[probe.IntentUserInitiated] == 0 {
		t.Fatal("no user tests")
	}
	if len(c.Observations) != 30 {
		t.Fatalf("observations = %d want 30 (one per step per pop)", len(c.Observations))
	}
	if c.Store.Len() == 0 {
		t.Fatal("store empty")
	}
}

func TestCampaignErrorPropagates(t *testing.T) {
	s, _, p := world(t)
	src, _ := s.Topo.FindPoP(328745, "Johannesburg")
	c := NewCampaign(p, NewStore())
	// User pop pointing at an unreachable AS errors at the first step.
	c.AddUsers(NewUserModel([]UserPop{{Src: src, Dst: topo.ASN(99999), Size: 1}}, 5))
	if err := c.Step(); err == nil {
		t.Fatal("collector error swallowed")
	}
}

func TestFamilyKnobSplitsPlanes(t *testing.T) {
	s, e, p := world(t)
	k := NewKnobs(p, 9)
	src, _ := s.Topo.FindPoP(3741, "Johannesburg")

	// Pin v6 to Transit-B while v4 keeps its default (Transit-A wins the
	// tiebreak). The two families must then use different AS paths to the
	// content network.
	release, err := k.ForceUpstreamFamily(engine.V6, 3741, scenario.ZATransitB)
	if err != nil {
		t.Fatal(err)
	}
	m4, err := p.SpeedTestFamily(src, scenario.BigContent, engine.V4, probe.IntentExperiment, "knob")
	if err != nil {
		t.Fatal(err)
	}
	m6, err := p.SpeedTestFamily(src, scenario.BigContent, engine.V6, probe.IntentExperiment, "knob")
	if err != nil {
		t.Fatal(err)
	}
	if m4.Family != 4 || m6.Family != 6 {
		t.Fatalf("family tags: %d / %d", m4.Family, m6.Family)
	}
	has := func(path []topo.ASN, asn topo.ASN) bool {
		for _, a := range path {
			if a == asn {
				return true
			}
		}
		return false
	}
	if !has(m4.ASPath, scenario.ZATransitA) {
		t.Fatalf("v4 path = %v, want via Transit-A", m4.ASPath)
	}
	if !has(m6.ASPath, scenario.ZATransitB) {
		t.Fatalf("v6 path = %v, want via Transit-B", m6.ASPath)
	}

	// Release: both families converge to the same path again.
	release()
	m6b, err := p.SpeedTestFamily(src, scenario.BigContent, engine.V6, probe.IntentExperiment, "knob")
	if err != nil {
		t.Fatal(err)
	}
	if !has(m6b.ASPath, scenario.ZATransitA) {
		t.Fatalf("v6 path after release = %v", m6b.ASPath)
	}
	// v4 plane was never touched by the family knob.
	if _, ok := e.Policy.LocalPref[3741]; ok {
		t.Fatal("family knob leaked into the v4 policy")
	}
}

func TestFamilyPlaneSharesTopologyEvents(t *testing.T) {
	s, e, p := world(t)
	src, _ := s.Topo.FindPoP(328745, "Johannesburg")
	e.Schedule(engine.EvJoinIXP(2, s.IXPName, 328745, 0))
	if err := e.RunUntil(3); err != nil {
		t.Fatal(err)
	}
	// Both planes should see the new IXP peering (topology is shared).
	for _, fam := range []engine.Family{engine.V4, engine.V6} {
		m, err := p.SpeedTestFamily(src, scenario.BigContent, fam, probe.IntentBaseline, "t")
		if err != nil {
			t.Fatal(err)
		}
		direct := len(m.ASPath) == 2 && m.ASPath[1] == scenario.BigContent
		if !direct {
			t.Fatalf("family %d did not pick up the IXP peering: %v", fam, m.ASPath)
		}
	}
}

func TestPerfFamilyRejectsUnknown(t *testing.T) {
	s, e, _ := world(t)
	src, _ := s.Topo.FindPoP(3741, "Johannesburg")
	if _, err := e.PerfFamily(src, src, engine.Family(9)); err == nil {
		t.Fatal("unknown family accepted")
	}
	if _, err := e.PolicyFamily(engine.Family(9)); err == nil {
		t.Fatal("unknown family policy accepted")
	}
}
