package platform

import (
	"strings"
	"testing"

	"sisyphus/internal/probe"
)

func TestStoreRejectsDuplicateIDs(t *testing.T) {
	s := NewStore()
	if err := s.Add(&probe.Measurement{ID: 1, Intent: probe.IntentBaseline},
		&probe.Measurement{ID: 2, Intent: probe.IntentBaseline}); err != nil {
		t.Fatal(err)
	}
	err := s.Add(&probe.Measurement{ID: 1, Intent: probe.IntentBaseline, Hour: 7})
	if err == nil {
		t.Fatal("duplicate ID accepted")
	}
	if !strings.Contains(err.Error(), "duplicate measurement ID 1") {
		t.Fatalf("error does not identify the offender: %v", err)
	}
	if s.Len() != 2 {
		t.Fatalf("store grew past the rejection: len = %d", s.Len())
	}
}

func TestStoreAcceptsInjectedDuplicatesWithDistinctIDs(t *testing.T) {
	// A fault-injected duplicate delivery is a distinct record (fresh ID,
	// DuplicateOf set) — the store must take it and count it.
	s := NewStore()
	orig := &probe.Measurement{ID: 5, Intent: probe.IntentBaseline}
	clone := &probe.Measurement{ID: 1 << 30, Intent: probe.IntentBaseline, DuplicateOf: 5}
	if err := s.Add(orig, clone); err != nil {
		t.Fatal(err)
	}
	if got := s.TotalCoverage().Duplicated; got != 1 {
		t.Fatalf("Duplicated = %d, want 1", got)
	}
}

func TestStoreCoverageCounters(t *testing.T) {
	s := NewStore()
	err := s.Add(
		&probe.Measurement{ID: 1, Intent: probe.IntentBaseline},
		&probe.Measurement{ID: 2, Intent: probe.IntentBaseline, Failed: true, Attempts: 2},
		&probe.Measurement{ID: 3, Intent: probe.IntentBaseline, Truncated: true},
		&probe.Measurement{ID: 4, Intent: probe.IntentUserInitiated},
	)
	if err != nil {
		t.Fatal(err)
	}
	base := s.Coverage()[probe.IntentBaseline]
	if base.Scheduled != 3 || base.Delivered != 2 || base.Failed != 1 || base.Truncated != 1 {
		t.Fatalf("baseline coverage = %+v", base)
	}
	if base.Scheduled != base.Delivered+base.Failed {
		t.Fatalf("scheduled != delivered + failed: %+v", base)
	}
	if got := base.Fraction(); got != 2.0/3 {
		t.Fatalf("Fraction = %v", got)
	}
	total := s.TotalCoverage()
	if total.Scheduled != 4 || total.Delivered != 3 {
		t.Fatalf("total coverage = %+v", total)
	}
	if got := (StreamCoverage{}).Fraction(); got != 1 {
		t.Fatalf("empty stream Fraction = %v, want 1", got)
	}
}

func TestDeliveredAndFrameExcludeFailedRecords(t *testing.T) {
	s := NewStore()
	if err := s.Add(
		&probe.Measurement{ID: 1, Intent: probe.IntentBaseline, RTTms: 10},
		&probe.Measurement{ID: 2, Intent: probe.IntentBaseline, Failed: true},
		&probe.Measurement{ID: 3, Intent: probe.IntentBaseline, RTTms: 12},
	); err != nil {
		t.Fatal(err)
	}
	del := s.Delivered()
	if len(del) != 2 || del[0].ID != 1 || del[1].ID != 3 {
		t.Fatalf("Delivered = %v", del)
	}
	f := Frame(s.All())
	if got := f.Len(); got != 2 {
		t.Fatalf("Frame kept %d rows, want 2 (Failed rows are tagged gaps)", got)
	}
}

func TestMedianRTTSeriesSkipsFailedRecords(t *testing.T) {
	u := Unit{ASN: 100, City: "X"}
	ms := []*probe.Measurement{
		{ID: 1, SrcASN: 100, SrcCity: "X", Hour: 0.5, RTTms: 10},
		{ID: 2, SrcASN: 100, SrcCity: "X", Hour: 1.5, Failed: true}, // gap, not a 0ms sample
		{ID: 3, SrcASN: 100, SrcCity: "X", Hour: 2.5, RTTms: 14},
	}
	series, empty := MedianRTTSeries(ms, u, 0, 3, 1)
	if len(series) != 3 {
		t.Fatalf("series length = %d", len(series))
	}
	if len(empty) != 1 || empty[0] != 1 {
		t.Fatalf("emptyBins = %v, want [1] (the failed probe's bin)", empty)
	}
	if series[1] != 12 {
		t.Fatalf("failed-probe bin = %v, want interpolated 12", series[1])
	}
}
