//go:build !race

package platform

// raceEnabled reports whether the race detector is compiled in.
const raceEnabled = false
