package platform

import (
	"context"
	"fmt"

	"sisyphus/internal/faults"
	"sisyphus/internal/netsim/topo"
	"sisyphus/internal/obs"
	"sisyphus/internal/probe"
)

// Campaign bundles a measurement design — scheduled baselines, endogenous
// user populations, conditional BGP watches, and randomized M-Lab pools —
// and drives them in lockstep with the simulation clock, landing everything
// in one intent-tagged Store. It is the executable form of §4's
// "measurement-for-causality" platform: a study declares *why* each
// measurement stream exists, and the tags survive into analysis.
type Campaign struct {
	Prober *probe.Prober
	Store  *Store

	// Faults, when non-nil, applies ingestion-side faults (duplicate and
	// reordered deliveries) to every record on its way into the Store.
	// Probe-side faults are injected by installing the same injector as
	// Prober.Hook; the two halves share one configuration. Call Flush (or
	// let RunUntil do it) so reorder-held records are not lost.
	Faults *faults.Injector

	users     []*UserModel
	baselines []*Baseline
	watches   []*BGPWatch
	pools     []pooledUser

	// Observations accumulates user-model step observations (population
	// ground truth) when KeepObservations is set.
	KeepObservations bool
	Observations     []StepObservation
}

type pooledUser struct {
	pool  *MLabPool
	user  topo.PoPID
	every int
	count int
}

// NewCampaign creates a campaign writing into the given store.
func NewCampaign(pr *probe.Prober, store *Store) *Campaign {
	if store == nil {
		store = NewStore()
	}
	return &Campaign{Prober: pr, Store: store}
}

// AddUsers attaches an endogenous user population model.
func (c *Campaign) AddUsers(um *UserModel) *Campaign {
	c.users = append(c.users, um)
	return c
}

// AddBaseline schedules a fixed-cadence probe.
func (c *Campaign) AddBaseline(b *Baseline) *Campaign {
	c.baselines = append(c.baselines, b)
	return c
}

// AddWatch attaches a conditional BGP-triggered probe.
func (c *Campaign) AddWatch(w *BGPWatch) *Campaign {
	c.watches = append(c.watches, w)
	return c
}

// AddPool schedules one randomized pool test for the user every `every`
// steps.
func (c *Campaign) AddPool(pool *MLabPool, user topo.PoPID, every int) *Campaign {
	if every < 1 {
		every = 1
	}
	c.pools = append(c.pools, pooledUser{pool: pool, user: user, every: every})
	return c
}

// ingest routes records through the fault injector's delivery stage (when
// installed) and into the store, surfacing duplicate-ID rejections.
func (c *Campaign) ingest(ms ...*probe.Measurement) error {
	if len(ms) == 0 {
		return nil
	}
	if c.Faults != nil {
		ms = c.Faults.Deliver(ms...)
	}
	if err := c.Store.Add(ms...); err != nil {
		return fmt.Errorf("platform: ingest: %w", err)
	}
	return nil
}

// Step advances the engine one step and runs every collector.
func (c *Campaign) Step() error {
	e := c.Prober.Engine
	if err := e.Step(); err != nil {
		return err
	}
	for _, um := range c.users {
		obs, ms, err := um.Step(c.Prober)
		if err != nil {
			return fmt.Errorf("platform: user model: %w", err)
		}
		if err := c.ingest(ms...); err != nil {
			return err
		}
		if c.KeepObservations {
			c.Observations = append(c.Observations, obs...)
		}
	}
	for _, b := range c.baselines {
		m, err := b.Step(c.Prober)
		if err != nil {
			return fmt.Errorf("platform: baseline: %w", err)
		}
		if m != nil {
			if err := c.ingest(m); err != nil {
				return err
			}
		}
	}
	for _, w := range c.watches {
		m, err := w.Step(c.Prober)
		if err != nil {
			return fmt.Errorf("platform: bgp watch: %w", err)
		}
		if m != nil {
			if err := c.ingest(m); err != nil {
				return err
			}
		}
	}
	for i := range c.pools {
		p := &c.pools[i]
		p.count++
		if p.count%p.every != 0 {
			continue
		}
		m, _, err := p.pool.RunTest(c.Prober, p.user)
		if err != nil {
			return fmt.Errorf("platform: pool %s: %w", p.pool.Metro, err)
		}
		if err := c.ingest(m); err != nil {
			return err
		}
	}
	return nil
}

// Flush drains any records the fault injector is still holding in its
// reorder buffer into the store.
func (c *Campaign) Flush() error {
	if c.Faults == nil {
		return nil
	}
	if held := c.Faults.Flush(); len(held) > 0 {
		if err := c.Store.Add(held...); err != nil {
			return fmt.Errorf("platform: flush: %w", err)
		}
	}
	return nil
}

// RunUntil steps the campaign until the engine clock reaches hour, then
// flushes any reorder-held records.
//
// ctx is checked before every step: cancelling it returns ctx.Err() without
// running further steps or flushing, so a cancelled campaign never writes a
// partial tail of reorder-held records into the store.
//
// When ctx carries an obs.Recorder the run records a "platform/campaign"
// span (items = steps taken) and snapshots store coverage and fault-injector
// stats afterwards; without one every obs call is the nil no-op.
func (c *Campaign) RunUntil(ctx context.Context, hour float64) (err error) {
	sp := obs.StartSpan(ctx, "platform/campaign")
	steps := 0
	defer func() {
		sp.SetItems(steps)
		sp.End(err)
	}()
	for c.Prober.Engine.Hour() < hour {
		if err := ctx.Err(); err != nil {
			return err
		}
		if err := c.Step(); err != nil {
			return err
		}
		steps++
	}
	if err := c.Flush(); err != nil {
		return err
	}
	c.recordObs(ctx)
	return nil
}

// recordObs snapshots the campaign's stream coverage and fault-injector
// counters into the context's recorder. Gauges (last write wins) because a
// campaign may be driven through RunUntil repeatedly and the store counters
// are already cumulative.
func (c *Campaign) recordObs(ctx context.Context) {
	if obs.From(ctx) == nil {
		return
	}
	cov := c.Store.TotalCoverage()
	obs.Gauge(ctx, "store.scheduled", float64(cov.Scheduled))
	obs.Gauge(ctx, "store.delivered", float64(cov.Delivered))
	obs.Gauge(ctx, "store.failed", float64(cov.Failed))
	obs.Gauge(ctx, "store.truncated", float64(cov.Truncated))
	obs.Gauge(ctx, "store.duplicated", float64(cov.Duplicated))
	obs.Gauge(ctx, "store.coverage", cov.Fraction())
	if c.Faults != nil {
		st := c.Faults.Stats()
		obs.Gauge(ctx, "faults.drops", float64(st.Drops))
		obs.Gauge(ctx, "faults.outage_failures", float64(st.OutageFailures))
		obs.Gauge(ctx, "faults.truncations", float64(st.Truncations))
		obs.Gauge(ctx, "faults.duplicates", float64(st.Duplicates))
		obs.Gauge(ctx, "faults.reorders", float64(st.Reorders))
	}
}

// Coverage reports per-intent stream health: scheduled vs delivered vs
// failed/truncated/duplicated counts, straight from the store.
func (c *Campaign) Coverage() map[probe.Intent]StreamCoverage { return c.Store.Coverage() }

// IntentCounts summarizes collected volume per intent tag.
func (c *Campaign) IntentCounts() map[probe.Intent]int {
	out := make(map[probe.Intent]int)
	for _, m := range c.Store.All() {
		out[m.Intent]++
	}
	return out
}
