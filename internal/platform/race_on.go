//go:build race

package platform

// raceEnabled reports whether the race detector is compiled in. The frozen
// store's interior-mutation fingerprint is only maintained under race builds
// — the debug configuration — so the hot path stays free of hashing.
const raceEnabled = true
