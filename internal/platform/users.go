package platform

import (
	"fmt"

	"sisyphus/internal/mathx"
	"sisyphus/internal/netsim/topo"
	"sisyphus/internal/probe"
)

// UserPop is a population of users behind one access PoP using one content
// destination.
type UserPop struct {
	Src topo.PoPID
	Dst topo.ASN
	// Size scales the expected number of tests per step.
	Size float64
}

// UserModel generates user-initiated speed tests whose propensity depends on
// current conditions — the paper's speed-test collider made mechanical.
// A test becomes more likely when (a) perceived performance is worse than
// the user's habitual baseline and (b) the route recently changed (e.g. the
// user just switched ISPs or their ISP re-routed). Because both a route
// change and bad performance raise the probability of a test *independently*,
// analyzing only the tests that ran induces a spurious association between
// the two even when neither causes the other.
type UserModel struct {
	Pops []UserPop
	rng  *mathx.RNG

	// BaseRate is the expected tests per step per unit Size under normal
	// conditions (default 0.2).
	BaseRate float64
	// PerfBoost multiplies the rate per 50% RTT degradation vs. the
	// habitual EMA baseline (default 3).
	PerfBoost float64
	// ChangeBoost multiplies the rate on steps where the AS path differs
	// from the previous step (default 3).
	ChangeBoost float64

	emaRTT   map[topo.PoPID]float64
	lastPath map[topo.PoPID]string
}

// NewUserModel returns a user model with its own RNG stream.
func NewUserModel(pops []UserPop, seed uint64) *UserModel {
	return &UserModel{
		Pops: pops, rng: mathx.NewRNG(seed),
		BaseRate: 0.2, PerfBoost: 3, ChangeBoost: 3,
		emaRTT:   make(map[topo.PoPID]float64),
		lastPath: make(map[topo.PoPID]string),
	}
}

// StepObservation is what the user model saw for one population this step —
// exported so experiments can compute ground truth (e.g. "all traffic" vs
// "tests that ran").
type StepObservation struct {
	Pop          UserPop
	RTTms        float64 // true current RTT
	RouteChanged bool
	Degradation  float64 // fractional RTT excess over habitual baseline
	TestsRun     int
}

// Step advances the model one engine step: it observes current conditions
// for every population, updates habit baselines, decides how many tests run
// (Poisson with state-dependent rate), executes them through the prober,
// and returns both the observations and the measurements.
func (u *UserModel) Step(p *probe.Prober) ([]StepObservation, []*probe.Measurement, error) {
	var obs []StepObservation
	var out []*probe.Measurement
	for _, pop := range u.Pops {
		perf, err := p.Engine.PerfToAS(pop.Src, pop.Dst)
		if err != nil {
			return nil, nil, fmt.Errorf("platform: user pop %v: %w", pop, err)
		}
		pathSig := fmt.Sprint(perf.Path.ASPath)
		changed := false
		if prev, ok := u.lastPath[pop.Src]; ok && prev != pathSig {
			changed = true
		}
		u.lastPath[pop.Src] = pathSig

		ema, ok := u.emaRTT[pop.Src]
		if !ok {
			ema = perf.RTTms
		}
		degradation := 0.0
		if ema > 0 && perf.RTTms > ema {
			degradation = (perf.RTTms - ema) / ema
		}
		// Habit updates slowly so sustained shifts eventually normalize.
		u.emaRTT[pop.Src] = 0.95*ema + 0.05*perf.RTTms

		// Rate scales with degradation (PerfBoost per 50% excess RTT) and
		// jumps multiplicatively when the route just changed.
		rate := u.BaseRate * pop.Size * (1 + u.PerfBoost*degradation*2)
		if changed {
			rate *= u.ChangeBoost
		}
		n := u.rng.Poisson(rate)
		for i := 0; i < n; i++ {
			m, err := p.SpeedTest(pop.Src, pop.Dst, probe.IntentUserInitiated, "user")
			if err != nil {
				return nil, nil, err
			}
			out = append(out, m)
		}
		obs = append(obs, StepObservation{
			Pop: pop, RTTms: perf.RTTms, RouteChanged: changed,
			Degradation: degradation, TestsRun: n,
		})
	}
	return obs, out, nil
}
