package platform

import (
	"fmt"

	"sisyphus/internal/mathx"
	"sisyphus/internal/netsim/engine"
	"sisyphus/internal/netsim/topo"
	"sisyphus/internal/probe"
)

// MLabPool models an M-Lab metro: several measurement servers hosted in
// *different* ASes within one metro, fronted by a load balancer that
// assigns each incoming test to a uniformly random site. Because the
// assignment is exogenous — independent of user, route, and network state —
// contrasts between sites identify the causal effect of routing, as §3's
// randomization discussion explains.
type MLabPool struct {
	Metro   string
	Servers []topo.PoPID
	rng     *mathx.RNG
}

// NewMLabPool builds a pool over server PoPs with its own RNG stream.
func NewMLabPool(metro string, servers []topo.PoPID, seed uint64) (*MLabPool, error) {
	if len(servers) == 0 {
		return nil, fmt.Errorf("platform: pool %s has no servers", metro)
	}
	return &MLabPool{Metro: metro, Servers: servers, rng: mathx.NewRNG(seed)}, nil
}

// Assign picks a server uniformly at random, returning its PoP and index.
func (p *MLabPool) Assign() (topo.PoPID, int) {
	i := p.rng.Intn(len(p.Servers))
	return p.Servers[i], i
}

// RunTest executes one randomized speed test from the user PoP: the load
// balancer assigns a server, the test runs against it, and the record is
// tagged IntentExperiment with the server identity attached.
func (p *MLabPool) RunTest(pr *probe.Prober, user topo.PoPID) (*probe.Measurement, int, error) {
	server, idx := p.Assign()
	m, err := pr.SpeedTestTo(user, server, probe.IntentExperiment, "mlab-lb")
	if err != nil {
		return nil, 0, err
	}
	m.Server = fmt.Sprintf("%s-%d", p.Metro, idx)
	return m, idx, nil
}

// BGPWatch implements conditional measurement activation (§4 point 1): it
// polls the control plane for the monitored pair and fires a traceroute
// tagged IntentTriggered whenever the AS path changes. The resulting
// records carry the trigger context so analysts can separate them from
// baseline samples.
type BGPWatch struct {
	Src  topo.PoPID
	Dst  topo.PoPID
	last string
}

// NewBGPWatch monitors the route from src to dst.
func NewBGPWatch(src, dst topo.PoPID) *BGPWatch {
	return &BGPWatch{Src: src, Dst: dst}
}

// Step checks for a route change and fires a triggered traceroute if one
// happened. The first observation arms the watch without firing.
func (w *BGPWatch) Step(pr *probe.Prober) (*probe.Measurement, error) {
	rib, err := pr.Engine.RIB()
	if err != nil {
		return nil, err
	}
	path, err := rib.Forward(w.Src, w.Dst)
	if err != nil {
		return nil, err
	}
	sig := fmt.Sprint(path.ASPath)
	if w.last == "" {
		w.last = sig
		return nil, nil
	}
	if sig == w.last {
		return nil, nil
	}
	w.last = sig
	return pr.Traceroute(w.Src, w.Dst, probe.IntentTriggered, "bgp-change")
}

// Baseline is a fixed-cadence scheduled measurement (a RIPE-Atlas-style
// anchor mesh entry): every Interval steps it pings and traceroutes the
// pair, tagged IntentBaseline.
type Baseline struct {
	Src      topo.PoPID
	DstAS    topo.ASN
	Interval int
	count    int
}

// NewBaseline schedules src → dstAS probes every interval steps.
func NewBaseline(src topo.PoPID, dstAS topo.ASN, interval int) *Baseline {
	if interval < 1 {
		interval = 1
	}
	return &Baseline{Src: src, DstAS: dstAS, Interval: interval}
}

// Step runs the scheduled measurement when due.
func (b *Baseline) Step(pr *probe.Prober) (*probe.Measurement, error) {
	b.count++
	if b.count%b.Interval != 0 {
		return nil, nil
	}
	return pr.SpeedTest(b.Src, b.DstAS, probe.IntentBaseline, "schedule")
}

// Knobs is the exogenous-variation API of §4 point 3: handles researchers
// can turn that change routing *without* reference to network state, making
// the induced variation usable as an instrument.
type Knobs struct {
	pr  *probe.Prober
	rng *mathx.RNG
}

// NewKnobs wraps a prober with experiment controls.
func NewKnobs(pr *probe.Prober, seed uint64) *Knobs {
	return &Knobs{pr: pr, rng: mathx.NewRNG(seed)}
}

// RotateResolver emulates switching DNS resolvers: it returns a destination
// AS drawn uniformly from the candidate content ASes, shifting which edge
// the client reaches independent of network conditions.
func (k *Knobs) RotateResolver(candidates []topo.ASN) topo.ASN {
	return candidates[k.rng.Intn(len(candidates))]
}

// ForceUpstream pins an access AS's egress to one provider by local-pref
// override (the PEERING-style announcement control). Returns a release
// function restoring the default. The variation is exogenous because the
// caller decides when to flip it (e.g. on a coin toss), not the network.
func (k *Knobs) ForceUpstream(asn, provider topo.ASN) (release func(), err error) {
	rel, err := k.pr.Engine.Topo.Relationships()
	if err != nil {
		return nil, err
	}
	found := false
	var others []topo.ASN
	for n, kind := range rel.Rel[asn] {
		if kind != topo.RelCustomer {
			continue
		}
		if n == provider {
			found = true
		} else {
			others = append(others, n)
		}
	}
	if !found {
		return nil, fmt.Errorf("platform: AS%d is not a provider of AS%d", provider, asn)
	}
	for _, n := range others {
		k.pr.Engine.Policy.SetLocalPref(asn, n, 10)
	}
	k.pr.Engine.MarkDirty()
	return func() {
		for _, n := range others {
			k.pr.Engine.Policy.ClearLocalPref(asn, n)
		}
		k.pr.Engine.MarkDirty()
	}, nil
}

// CoinFlip returns true with probability 0.5 from the knob RNG — the
// randomization device for designed experiments.
func (k *Knobs) CoinFlip() bool { return k.rng.Bernoulli(0.5) }

// ForceUpstreamFamily is ForceUpstream for one address family: it pins the
// AS's egress on that family only, leaving the other untouched. Flipping a
// client between families then induces exogenous AS-path variation — the
// paper's "toggling IPv4 vs IPv6 to alter AS paths" knob.
func (k *Knobs) ForceUpstreamFamily(family engine.Family, asn, provider topo.ASN) (release func(), err error) {
	rel, err := k.pr.Engine.Topo.Relationships()
	if err != nil {
		return nil, err
	}
	pol, err := k.pr.Engine.PolicyFamily(family)
	if err != nil {
		return nil, err
	}
	found := false
	var others []topo.ASN
	for n, kind := range rel.Rel[asn] {
		if kind != topo.RelCustomer {
			continue
		}
		if n == provider {
			found = true
		} else {
			others = append(others, n)
		}
	}
	if !found {
		return nil, fmt.Errorf("platform: AS%d is not a provider of AS%d", provider, asn)
	}
	for _, n := range others {
		pol.SetLocalPref(asn, n, 10)
	}
	k.pr.Engine.MarkDirtyFamily(family)
	return func() {
		for _, n := range others {
			pol.ClearLocalPref(asn, n)
		}
		k.pr.Engine.MarkDirtyFamily(family)
	}, nil
}
