package platform

import "sisyphus/internal/probe"

// Fork returns a deep copy of the store: every measurement is cloned and
// the dedup/coverage indexes are rebuilt as independent maps, so analyses
// may slice, extend, or otherwise mutate the copy without perturbing the
// frozen original the artifact cache holds. Insertion order — which fixes
// All()'s iteration order and therefore downstream determinism — is
// preserved exactly.
func (s *Store) Fork() *Store {
	out := &Store{
		ms:   make([]*probe.Measurement, len(s.ms)),
		seen: make(map[int]bool, len(s.seen)),
		cov:  make(map[probe.Intent]*StreamCoverage, len(s.cov)),
	}
	for i, m := range s.ms {
		out.ms[i] = m.Clone()
	}
	for id := range s.seen {
		out.seen[id] = true
	}
	for in, c := range s.cov {
		cc := *c
		out.cov[in] = &cc
	}
	return out
}

// SizeBytes estimates the store's resident size for the artifact store's
// byte bound: a flat per-measurement cost plus the variable-length hop and
// path payloads. It is an estimate, not an accounting — the LRU only needs
// relative magnitudes.
func (s *Store) SizeBytes() int64 {
	// Rough fixed footprint of one Measurement struct plus slice headers
	// and map entries in the indexes.
	const perMeasurement = 240
	const perHop = 48
	const perPathEntry = 4
	var n int64
	for _, m := range s.ms {
		n += perMeasurement
		n += int64(len(m.Hops)) * perHop
		n += int64(len(m.ASPath)) * perPathEntry
	}
	return n
}
