package platform

import (
	"math"

	"sisyphus/internal/probe"
)

// Freeze marks the store read-only. After Freeze, Add fails and Fork shares
// the measurement slice by reference instead of cloning every record. Under
// the race detector a fingerprint of the measurement interiors is taken so
// later forks can verify nothing wrote through a shared pointer.
func (s *Store) Freeze() {
	s.frozen = true
	if raceEnabled {
		s.fp = s.fingerprint()
	}
}

// Frozen reports whether Freeze has been called.
func (s *Store) Frozen() bool { return s.frozen }

// Fork returns an independent store the caller may extend and mutate.
//
// On a frozen store (the artifact cache's case) the fork is pointer-cheap:
// measurements are immutable after ingestion, so the fork shares the
// measurement slice by reference — with its capacity clamped to its length,
// so an Add on the fork always reallocates rather than scribbling into the
// shared backing array — and shares the dedup index as a read-only base
// (the fork's own Adds land in a private overlay). Only the small per-intent
// coverage counters are copied eagerly.
//
// On an unfrozen store the fork is the eager deep copy: the original may
// still ingest and faults.Injector mutates records before Add, so interior
// sharing would not be safe. Insertion order — which fixes All()'s iteration
// order and therefore downstream determinism — is preserved exactly in both
// modes.
func (s *Store) Fork() *Store {
	out := &Store{cov: make(map[probe.Intent]*StreamCoverage, len(s.cov))}
	if s.frozen {
		if raceEnabled && s.fp != s.fingerprint() {
			panic("platform: frozen store's measurements were mutated in place (write through a shared *Measurement)")
		}
		out.ms = s.ms[:len(s.ms):len(s.ms)]
		out.seen = make(map[int]bool)
		if s.frozenSeen == nil {
			// A store built from scratch and frozen: its whole dedup index
			// is immutable now, share it outright.
			out.frozenSeen = s.seen
		} else {
			// A frozen fork-of-a-fork: keep sharing the base, copy the
			// (small) private overlay.
			out.frozenSeen = s.frozenSeen
			for id := range s.seen {
				out.seen[id] = true
			}
		}
	} else {
		out.ms = make([]*probe.Measurement, len(s.ms))
		for i, m := range s.ms {
			out.ms[i] = m.Clone()
		}
		out.seen = make(map[int]bool, len(s.seen)+len(s.frozenSeen))
		for id := range s.seen {
			out.seen[id] = true
		}
		for id := range s.frozenSeen {
			out.seen[id] = true
		}
	}
	for in, c := range s.cov {
		cc := *c
		out.cov[in] = &cc
	}
	return out
}

// fingerprint folds the mutation-prone interior fields of every measurement
// into one word (FNV-1a over a fixed projection). Only computed under the
// race detector; see race_on.go.
func (s *Store) fingerprint() uint64 {
	const offset, prime = 14695981039346656037, 1099511628211
	h := uint64(offset)
	mix := func(v uint64) {
		h ^= v
		h *= prime
	}
	for _, m := range s.ms {
		mix(uint64(m.ID))
		mix(math.Float64bits(m.RTTms))
		mix(math.Float64bits(m.ThroughputMbps))
		mix(math.Float64bits(m.LossRate))
		mix(uint64(len(m.Hops)))
		mix(uint64(len(m.ASPath)))
		if m.Failed {
			mix(1)
		}
		if m.Truncated {
			mix(3)
		}
	}
	return h
}

// SizeBytes estimates the store's resident size for the artifact store's
// byte bound: a flat per-measurement cost plus the variable-length hop and
// path payloads, plus the dedup and coverage indexes (which forks copy even
// when the measurements are shared). It is an estimate, not an accounting —
// the LRU only needs relative magnitudes.
func (s *Store) SizeBytes() int64 {
	// Rough fixed footprint of one Measurement struct plus slice headers
	// and map entries in the indexes.
	const perMeasurement = 240
	const perHop = 48
	const perPathEntry = 4
	const perSeenEntry = 16  // map[int]bool entry
	const perCovEntry = 112  // map entry + StreamCoverage + intent string
	var n int64
	for _, m := range s.ms {
		n += perMeasurement
		n += int64(len(m.Hops)) * perHop
		n += int64(len(m.ASPath)) * perPathEntry
	}
	n += int64(len(s.seen)+len(s.frozenSeen)) * perSeenEntry
	n += int64(len(s.cov)) * perCovEntry
	return n
}
