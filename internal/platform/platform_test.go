package platform

import (
	"bytes"
	"math"
	"strings"
	"testing"

	"sisyphus/internal/mathx"
	"sisyphus/internal/netsim/engine"
	"sisyphus/internal/netsim/scenario"
	"sisyphus/internal/netsim/topo"
	"sisyphus/internal/netsim/traffic"
	"sisyphus/internal/probe"
)

func world(t *testing.T) (*scenario.World, *engine.Engine, *probe.Prober) {
	t.Helper()
	s, err := scenario.BuildSouthAfrica()
	if err != nil {
		t.Fatal(err)
	}
	e := engine.New(s.Topo, 11, engine.Config{})
	return s, e, probe.NewProber(e, 12)
}

func TestStoreBasics(t *testing.T) {
	s, _, p := world(t)
	st := NewStore()
	src, _ := s.Topo.FindPoP(3741, "East London")
	for i := 0; i < 5; i++ {
		m, err := p.SpeedTest(src, scenario.BigContent, probe.IntentBaseline, "t")
		if err != nil {
			t.Fatal(err)
		}
		st.Add(m)
	}
	m, _ := p.SpeedTest(src, scenario.BigContent, probe.IntentUserInitiated, "user")
	st.Add(m)
	if st.Len() != 6 {
		t.Fatalf("len = %d", st.Len())
	}
	if got := len(st.ByIntent(probe.IntentBaseline)); got != 5 {
		t.Fatalf("baseline = %d", got)
	}
	units := st.Units()
	if len(units) != 1 || units[0].ASN != 3741 || units[0].City != "East London" {
		t.Fatalf("units = %v", units)
	}
}

func TestFrameColumns(t *testing.T) {
	s, _, p := world(t)
	src, _ := s.Topo.FindPoP(16637, "Pretoria")
	var ms []*probe.Measurement
	for i := 0; i < 3; i++ {
		m, err := p.SpeedTest(src, scenario.BigContent, probe.IntentBaseline, "t")
		if err != nil {
			t.Fatal(err)
		}
		ms = append(ms, m)
	}
	f := Frame(ms)
	if f.Len() != 3 {
		t.Fatalf("frame len = %d", f.Len())
	}
	for _, col := range []string{"hour", "src_asn", "rtt_ms", "tput_mbps", "true_rtt_ms", "true_max_util"} {
		if !f.Has(col) {
			t.Fatalf("missing column %s", col)
		}
	}
	if f.MustColumn("src_asn")[0] != 16637 {
		t.Fatal("asn column wrong")
	}
}

func TestMedianRTTSeriesBinningAndInterpolation(t *testing.T) {
	mk := func(hour, rtt float64) *probe.Measurement {
		return &probe.Measurement{Hour: hour, SrcASN: 1, SrcCity: "X", RTTms: rtt}
	}
	u := Unit{1, "X"}
	ms := []*probe.Measurement{
		mk(0.5, 10), mk(0.7, 12), // bin 0: median 11
		// bin 1 empty
		mk(2.2, 20), // bin 2
		// bins 3,4 empty (tail: carry forward)
	}
	series, empty := MedianRTTSeries(ms, u, 0, 5, 1)
	if len(series) != 5 {
		t.Fatalf("series = %v", series)
	}
	if series[0] != 11 {
		t.Fatalf("bin0 = %v", series[0])
	}
	if series[1] != 15.5 { // interpolated between 11 and 20
		t.Fatalf("bin1 = %v", series[1])
	}
	if series[2] != 20 || series[3] != 20 || series[4] != 20 {
		t.Fatalf("tail = %v", series)
	}
	if len(empty) != 3 {
		t.Fatalf("empty bins = %v", empty)
	}
	// Measurements from other units are ignored.
	other := append(ms, &probe.Measurement{Hour: 1.5, SrcASN: 2, SrcCity: "Y", RTTms: 999})
	series2, _ := MedianRTTSeries(other, u, 0, 5, 1)
	if series2[1] != 15.5 {
		t.Fatal("foreign unit leaked into series")
	}
	// Leading gap carries backward.
	late := []*probe.Measurement{mk(3.5, 30)}
	series3, _ := MedianRTTSeries(late, u, 0, 5, 1)
	if series3[0] != 30 {
		t.Fatalf("leading carry = %v", series3)
	}
}

func TestMLabPoolRandomizesAcrossServers(t *testing.T) {
	s, _, p := world(t)
	var servers []topo.PoPID
	for _, asn := range s.MLabServerASNs {
		id, err := s.Topo.FindPoP(asn, "Johannesburg")
		if err != nil {
			t.Fatal(err)
		}
		servers = append(servers, id)
	}
	pool, err := NewMLabPool("jnb", servers, 77)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewMLabPool("x", nil, 1); err == nil {
		t.Fatal("empty pool accepted")
	}
	src, _ := s.Topo.FindPoP(328745, "Johannesburg")
	counts := map[int]int{}
	for i := 0; i < 200; i++ {
		m, idx, err := pool.RunTest(p, src)
		if err != nil {
			t.Fatal(err)
		}
		counts[idx]++
		if m.Intent != probe.IntentExperiment || m.Server == "" {
			t.Fatalf("tagging: %v %q", m.Intent, m.Server)
		}
	}
	// Both servers used roughly evenly.
	if counts[0] < 60 || counts[1] < 60 {
		t.Fatalf("assignment skewed: %v", counts)
	}
}

func TestUserModelColliderBehaviour(t *testing.T) {
	s, e, p := world(t)
	src, _ := s.Topo.FindPoP(327966, "Polokwane")
	um := NewUserModel([]UserPop{{Src: src, Dst: scenario.BigContent, Size: 1}}, 99)

	// Warm up under calm conditions to set the habit baseline.
	var calmTests int
	for i := 0; i < 80; i++ {
		if err := e.Step(); err != nil {
			t.Fatal(err)
		}
		_, ms, err := um.Step(p)
		if err != nil {
			t.Fatal(err)
		}
		calmTests += len(ms)
	}
	// Congest the unit's access link: degradation should raise test volume.
	rel, _ := s.Topo.Relationships()
	linkID := rel.Links[327966][scenario.ZATransitB][0]
	e.Traffic.AddFlashCrowd(traffic.FlashCrowd{Link: linkID, StartHour: e.Hour(), Hours: 100, Magnitude: 0.4})
	var busyTests int
	sawChange := false
	for i := 0; i < 80; i++ {
		if err := e.Step(); err != nil {
			t.Fatal(err)
		}
		obs, ms, err := um.Step(p)
		if err != nil {
			t.Fatal(err)
		}
		busyTests += len(ms)
		for _, o := range obs {
			if o.RouteChanged {
				sawChange = true
			}
		}
	}
	_ = sawChange
	if busyTests <= calmTests {
		t.Fatalf("congestion did not raise test volume: calm=%d busy=%d", calmTests, busyTests)
	}
	// All records carry the user-initiated tag.
	if calmTests+busyTests == 0 {
		t.Fatal("no tests at all")
	}
}

func TestBGPWatchFiresOnlyOnChange(t *testing.T) {
	s, e, p := world(t)
	src, _ := s.Topo.FindPoP(328745, "Johannesburg")
	rib, _ := e.RIB()
	dst, err := rib.NearestPoP(src, scenario.BigContent)
	if err != nil {
		t.Fatal(err)
	}
	w := NewBGPWatch(src, dst)
	// Arm.
	if m, err := w.Step(p); err != nil || m != nil {
		t.Fatalf("first step should arm silently: %v %v", m, err)
	}
	// No change: silent.
	if m, _ := w.Step(p); m != nil {
		t.Fatal("fired without a change")
	}
	// Cause a route change: the AS joins the IXP.
	e.Schedule(engine.EvJoinIXP(1, s.IXPName, 328745, 0))
	if err := e.RunUntil(2); err != nil {
		t.Fatal(err)
	}
	m, err := w.Step(p)
	if err != nil {
		t.Fatal(err)
	}
	if m == nil {
		t.Fatal("did not fire on route change")
	}
	if m.Intent != probe.IntentTriggered || m.Trigger != "bgp-change" {
		t.Fatalf("tagging: %v %v", m.Intent, m.Trigger)
	}
	// Re-armed: silent again.
	if m, _ := w.Step(p); m != nil {
		t.Fatal("fired twice for one change")
	}
}

func TestBaselineCadence(t *testing.T) {
	s, _, p := world(t)
	src, _ := s.Topo.FindPoP(16637, "Pretoria")
	b := NewBaseline(src, scenario.BigContent, 3)
	var fired int
	for i := 0; i < 9; i++ {
		m, err := b.Step(p)
		if err != nil {
			t.Fatal(err)
		}
		if m != nil {
			fired++
			if m.Intent != probe.IntentBaseline {
				t.Fatalf("intent = %v", m.Intent)
			}
		}
	}
	if fired != 3 {
		t.Fatalf("fired = %d want 3", fired)
	}
	if nb := NewBaseline(src, scenario.BigContent, 0); nb.Interval != 1 {
		t.Fatal("interval floor missing")
	}
}

func TestKnobsForceUpstream(t *testing.T) {
	s, e, p := world(t)
	k := NewKnobs(p, 5)
	if _, err := s.Topo.FindPoP(3741, "Johannesburg"); err != nil {
		t.Fatal(err)
	}

	// 3741 is multihomed to Transit-A and Transit-B. Force each and check
	// the AS path follows the knob.
	release, err := k.ForceUpstream(3741, scenario.ZATransitA)
	if err != nil {
		t.Fatal(err)
	}
	rib, _ := e.RIB()
	path, err := rib.ASPath(3741, scenario.BigContent)
	if err != nil {
		t.Fatal(err)
	}
	if path[1] != scenario.ZATransitA {
		t.Fatalf("forced path = %v", path)
	}
	release()
	rib2, _ := e.RIB()
	if _, err := rib2.ASPath(3741, scenario.BigContent); err != nil {
		t.Fatal(err)
	}
	// Unknown provider rejected.
	if _, err := k.ForceUpstream(3741, 9999); err == nil {
		t.Fatal("bogus provider accepted")
	}
}

func TestKnobsRotateResolverAndCoin(t *testing.T) {
	_, _, p := world(t)
	k := NewKnobs(p, 6)
	cands := []topo.ASN{scenario.BigContent, scenario.VideoCDN}
	seen := map[topo.ASN]int{}
	heads := 0
	for i := 0; i < 200; i++ {
		seen[k.RotateResolver(cands)]++
		if k.CoinFlip() {
			heads++
		}
	}
	if seen[scenario.BigContent] < 60 || seen[scenario.VideoCDN] < 60 {
		t.Fatalf("rotation skewed: %v", seen)
	}
	if heads < 60 || heads > 140 {
		t.Fatalf("coin flips = %d/200", heads)
	}
}

func TestInterpolateAllEmpty(t *testing.T) {
	xs := []float64{0, 0, 0}
	mathx.InterpolateMissing(xs, []bool{false, false, false})
	for _, x := range xs {
		if x != 0 {
			t.Fatal("all-empty should remain zeros")
		}
	}
}

func TestUnitStringer(t *testing.T) {
	u := Unit{ASN: 3741, City: "Durban"}
	if u.String() != "AS3741/Durban" {
		t.Fatalf("unit = %q", u.String())
	}
}

func TestFrameDeterministicAcrossRuns(t *testing.T) {
	run := func() []float64 {
		s, err := scenario.BuildSouthAfrica()
		if err != nil {
			t.Fatal(err)
		}
		e := engine.New(s.Topo, 123, engine.Config{})
		p := probe.NewProber(e, 124)
		src, _ := s.Topo.FindPoP(37053, "Cape Town")
		var rtts []float64
		for i := 0; i < 10; i++ {
			if err := e.Step(); err != nil {
				t.Fatal(err)
			}
			m, err := p.SpeedTest(src, scenario.BigContent, probe.IntentBaseline, "t")
			if err != nil {
				t.Fatal(err)
			}
			rtts = append(rtts, m.RTTms)
		}
		return rtts
	}
	a, b := run(), run()
	for i := range a {
		if math.Abs(a[i]-b[i]) > 0 {
			t.Fatalf("diverged at %d", i)
		}
	}
	// RTTs vary across the diurnal cycle (not constant).
	s := mathx.Summarize(a)
	if s.Std == 0 {
		t.Fatal("RTT series is suspiciously constant")
	}
}

func TestJSONLRoundTrip(t *testing.T) {
	s, _, p := world(t)
	st := NewStore()
	src, _ := s.Topo.FindPoP(37053, "Cape Town")
	for i := 0; i < 5; i++ {
		m, err := p.SpeedTest(src, scenario.BigContent, probe.IntentBaseline, "t")
		if err != nil {
			t.Fatal(err)
		}
		st.Add(m)
	}
	var buf bytes.Buffer
	if err := st.SaveJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	if lines := strings.Count(buf.String(), "\n"); lines != 5 {
		t.Fatalf("jsonl lines = %d", lines)
	}
	st2 := NewStore()
	if err := st2.LoadJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	if st2.Len() != 5 {
		t.Fatalf("round trip len = %d", st2.Len())
	}
	a, b := st.All()[2], st2.All()[2]
	if a.RTTms != b.RTTms || a.SrcASN != b.SrcASN || a.Intent != b.Intent ||
		len(a.Hops) != len(b.Hops) || a.Hops[0].Addr != b.Hops[0].Addr {
		t.Fatalf("measurement mangled: %+v vs %+v", a, b)
	}
	if err := st2.LoadJSONL(strings.NewReader("{not json")); err == nil {
		t.Fatal("garbage accepted")
	}
}
