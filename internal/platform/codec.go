package platform

import (
	"fmt"

	"sisyphus/internal/probe"
)

// ExportMeasurements returns the stored measurements in ingestion order —
// the serialized form of a store. The slice and its records are shared with
// the store; callers must treat them as read-only (the artifact disk tier
// only ever encodes them).
func (s *Store) ExportMeasurements() []*probe.Measurement { return s.ms }

// ImportStore rebuilds a store by replaying the measurements through Add in
// order, which reconstructs the dedup index and per-intent coverage counters
// exactly as the original ingestion did. Every record is validated first
// (non-finite floats rejected) and duplicate IDs surface as Add errors, so a
// corrupted payload cannot poison downstream arithmetic or panic. The result
// is unfrozen, exactly like a freshly simulated campaign's store.
func ImportStore(ms []*probe.Measurement) (*Store, error) {
	s := NewStore()
	for i, m := range ms {
		if m == nil {
			return nil, fmt.Errorf("platform: import: nil measurement at index %d", i)
		}
		if err := validateMeasurement(m); err != nil {
			return nil, fmt.Errorf("platform: import: record %d: %w", i, err)
		}
	}
	if err := s.Add(ms...); err != nil {
		return nil, fmt.Errorf("platform: import: %w", err)
	}
	return s, nil
}
