package platform

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"math"

	"sisyphus/internal/probe"
)

// WriteJSONL serializes measurements as one JSON object per line — the
// interchange format real platforms (M-Lab, Atlas) publish, so downstream
// tooling can consume simulated campaigns exactly like real ones.
func WriteJSONL(w io.Writer, ms []*probe.Measurement) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	for i, m := range ms {
		if err := enc.Encode(m); err != nil {
			return fmt.Errorf("platform: encoding measurement %d: %w", i, err)
		}
	}
	return bw.Flush()
}

// ReadJSONL parses measurements written by WriteJSONL. Every record is
// validated on the way in: a non-finite numeric field (NaN or ±Inf — e.g.
// an overflowing exponent a lenient upstream producer let through) is an
// error, never a silent poison value in downstream panels.
func ReadJSONL(r io.Reader) ([]*probe.Measurement, error) {
	var out []*probe.Measurement
	dec := json.NewDecoder(r)
	for {
		var m probe.Measurement
		if err := dec.Decode(&m); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("platform: decoding measurement %d: %w", len(out), err)
		}
		if err := validateMeasurement(&m); err != nil {
			return nil, fmt.Errorf("platform: measurement %d: %w", len(out), err)
		}
		out = append(out, &m)
	}
	return out, nil
}

// validateMeasurement rejects records whose numeric fields are not finite.
// JSON itself has no NaN/Inf literal, but a decoder swap or a hand-edited
// file can still smuggle them in; estimator math silently propagates them.
func validateMeasurement(m *probe.Measurement) error {
	fields := [...]struct {
		name string
		v    float64
	}{
		{"Hour", m.Hour},
		{"RTTms", m.RTTms},
		{"ThroughputMbps", m.ThroughputMbps},
		{"LossRate", m.LossRate},
		{"TrueRTTms", m.TrueRTTms},
		{"TrueMaxUtil", m.TrueMaxUtil},
	}
	for _, f := range fields {
		if math.IsNaN(f.v) || math.IsInf(f.v, 0) {
			return fmt.Errorf("field %s is not finite (%v)", f.name, f.v)
		}
	}
	for i, h := range m.Hops {
		if math.IsNaN(h.RTTms) || math.IsInf(h.RTTms, 0) {
			return fmt.Errorf("hop %d RTTms is not finite (%v)", i, h.RTTms)
		}
	}
	return nil
}

// SaveJSONL writes the whole store.
func (s *Store) SaveJSONL(w io.Writer) error { return WriteJSONL(w, s.ms) }

// LoadJSONL appends measurements from the reader into the store.
func (s *Store) LoadJSONL(r io.Reader) error {
	ms, err := ReadJSONL(r)
	if err != nil {
		return err
	}
	return s.Add(ms...)
}
