package platform

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"

	"sisyphus/internal/probe"
)

// WriteJSONL serializes measurements as one JSON object per line — the
// interchange format real platforms (M-Lab, Atlas) publish, so downstream
// tooling can consume simulated campaigns exactly like real ones.
func WriteJSONL(w io.Writer, ms []*probe.Measurement) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	for i, m := range ms {
		if err := enc.Encode(m); err != nil {
			return fmt.Errorf("platform: encoding measurement %d: %w", i, err)
		}
	}
	return bw.Flush()
}

// ReadJSONL parses measurements written by WriteJSONL.
func ReadJSONL(r io.Reader) ([]*probe.Measurement, error) {
	var out []*probe.Measurement
	dec := json.NewDecoder(r)
	for {
		var m probe.Measurement
		if err := dec.Decode(&m); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("platform: decoding measurement %d: %w", len(out), err)
		}
		out = append(out, &m)
	}
	return out, nil
}

// SaveJSONL writes the whole store.
func (s *Store) SaveJSONL(w io.Writer) error { return WriteJSONL(w, s.ms) }

// LoadJSONL appends measurements from the reader into the store.
func (s *Store) LoadJSONL(r io.Reader) error {
	ms, err := ReadJSONL(r)
	if err != nil {
		return err
	}
	return s.Add(ms...)
}
