package platform

import (
	"bytes"
	"math"
	"strings"
	"testing"
)

// FuzzLoadJSONL pins the ingestion contract on arbitrary input: LoadJSONL
// must never panic, must reject malformed lines, duplicate measurement IDs,
// and non-finite numeric fields with an error, and on success must hold only
// records that round-trip through SaveJSONL.
func FuzzLoadJSONL(f *testing.F) {
	seeds := []string{
		// Two well-formed records.
		`{"ID":1,"Hour":1,"Intent":"baseline","RTTms":42.5}
{"ID":2,"Hour":2,"Intent":"baseline","RTTms":43.1}`,
		// Malformed JSON mid-stream.
		`{"ID":1,"Hour":1}
{not json}`,
		// Duplicate measurement IDs.
		`{"ID":7,"Hour":1,"Intent":"user","RTTms":10}
{"ID":7,"Hour":2,"Intent":"user","RTTms":11}`,
		// Overflowing exponent: the decoder must error, not admit +Inf.
		`{"ID":3,"Hour":1,"RTTms":1e999}`,
		// Non-finite value smuggled into a hop record.
		`{"ID":4,"Hour":1,"Hops":[{"Addr":"10.0.0.1","RTTms":-1e999}]}`,
		// Truncated object and trailing garbage.
		`{"ID":5,"Hour":`,
		"",
		"\n\n",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, data string) {
		st := NewStore()
		if err := st.LoadJSONL(strings.NewReader(data)); err != nil {
			return // rejected input is fine; panicking or poisoning is not
		}
		seen := make(map[int]bool, st.Len())
		for _, m := range st.All() {
			if seen[m.ID] {
				t.Fatalf("duplicate measurement ID %d survived load", m.ID)
			}
			seen[m.ID] = true
			for name, v := range map[string]float64{
				"Hour": m.Hour, "RTTms": m.RTTms, "ThroughputMbps": m.ThroughputMbps,
				"LossRate": m.LossRate, "TrueRTTms": m.TrueRTTms, "TrueMaxUtil": m.TrueMaxUtil,
			} {
				if math.IsNaN(v) || math.IsInf(v, 0) {
					t.Fatalf("non-finite %s (%v) admitted for measurement %d", name, v, m.ID)
				}
			}
			for i, h := range m.Hops {
				if math.IsNaN(h.RTTms) || math.IsInf(h.RTTms, 0) {
					t.Fatalf("non-finite hop %d RTTms (%v) admitted for measurement %d", i, h.RTTms, m.ID)
				}
			}
		}
		// Anything accepted must survive a save/load round trip unchanged in
		// count — the interchange format cannot be lossy for valid records.
		var buf bytes.Buffer
		if err := st.SaveJSONL(&buf); err != nil {
			t.Fatalf("accepted store failed to save: %v", err)
		}
		st2 := NewStore()
		if err := st2.LoadJSONL(&buf); err != nil {
			t.Fatalf("round trip rejected its own output: %v", err)
		}
		if st2.Len() != st.Len() {
			t.Fatalf("round trip changed record count: %d -> %d", st.Len(), st2.Len())
		}
	})
}

// TestLoadJSONLRejections pins each ingestion error path deterministically
// (the fuzz harness only guarantees no-panic on these; here the errors are
// asserted).
func TestLoadJSONLRejections(t *testing.T) {
	cases := []struct {
		name, input, wantSub string
	}{
		{"malformed line", "{not json}\n", "decoding measurement 0"},
		{"duplicate id", `{"ID":7,"Hour":1}` + "\n" + `{"ID":7,"Hour":2}` + "\n", "duplicate measurement ID 7"},
		{"overflowing field", `{"ID":3,"Hour":1,"RTTms":1e999}` + "\n", "decoding measurement 0"},
		{"overflowing hop", `{"ID":4,"Hour":1,"Hops":[{"Addr":"a","RTTms":1e999}]}` + "\n", "decoding measurement 0"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			err := NewStore().LoadJSONL(strings.NewReader(c.input))
			if err == nil {
				t.Fatalf("input accepted, want error containing %q", c.wantSub)
			}
			if !strings.Contains(err.Error(), c.wantSub) {
				t.Fatalf("error %q does not mention %q", err, c.wantSub)
			}
		})
	}
}

// TestValidateMeasurementNonFinite exercises the defense-in-depth validator
// directly: JSON itself cannot carry NaN, but the validator must still
// reject one (a decoder swap or hand-built record could smuggle it in).
func TestValidateMeasurementNonFinite(t *testing.T) {
	ms, err := ReadJSONL(strings.NewReader(`{"ID":1,"Hour":1,"RTTms":5}` + "\n"))
	if err != nil || len(ms) != 1 {
		t.Fatalf("ReadJSONL = %v, %v", ms, err)
	}
	m := ms[0]
	if err := validateMeasurement(m); err != nil {
		t.Fatalf("finite measurement rejected: %v", err)
	}
	m.RTTms = math.NaN()
	if err := validateMeasurement(m); err == nil || !strings.Contains(err.Error(), "RTTms") {
		t.Fatalf("NaN RTTms not rejected: %v", err)
	}
	m.RTTms = 5
	m.TrueMaxUtil = math.Inf(1)
	if err := validateMeasurement(m); err == nil || !strings.Contains(err.Error(), "TrueMaxUtil") {
		t.Fatalf("+Inf TrueMaxUtil not rejected: %v", err)
	}
}
