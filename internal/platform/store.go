// Package platform simulates the measurement infrastructure the paper's §4
// wants to exist: vantage points with scheduled baselines, M-Lab-style
// metro server pools behind a randomizing load balancer, user-initiated
// tests whose propensity depends on network state (the endogeneity of §4's
// point 4), conditional measurement activation on BGP changes (point 1),
// intent tagging (point 2), and exogenous-variation knobs (point 3).
package platform

import (
	"fmt"
	"sort"

	"sisyphus/internal/causal/data"
	"sisyphus/internal/mathx"
	"sisyphus/internal/netsim/topo"
	"sisyphus/internal/probe"
)

// StreamCoverage summarizes one intent stream's health: how many records
// were scheduled (all rows, including explicit failure markers), how many
// actually delivered a usable measurement, and how many arrived degraded.
// Scheduled == Delivered + Failed by construction; coverage is the
// Delivered/Scheduled ratio degradation reports lean on.
type StreamCoverage struct {
	Scheduled  int
	Delivered  int
	Failed     int
	Truncated  int
	Duplicated int
}

// Fraction returns Delivered/Scheduled (1 for an empty stream).
func (c StreamCoverage) Fraction() float64 {
	if c.Scheduled == 0 {
		return 1
	}
	return float64(c.Delivered) / float64(c.Scheduled)
}

func (c *StreamCoverage) add(m *probe.Measurement) {
	c.Scheduled++
	if m.Failed {
		c.Failed++
	} else {
		c.Delivered++
	}
	if m.Truncated {
		c.Truncated++
	}
	if m.DuplicateOf != 0 {
		c.Duplicated++
	}
}

// Store accumulates measurements from all collectors. It enforces ID
// uniqueness — a platform ingesting the same record twice is a bug, while
// genuine duplicate deliveries (fault-injected retransmits) arrive as
// distinct records with DuplicateOf set — and maintains per-intent coverage
// counters so analyses can report how much data each stream stood on.
// A Store has a freeze lifecycle mirroring the other artifact kinds: once a
// campaign completes, the artifact cache calls Freeze and the store becomes
// read-only — Add fails, and Fork degrades to sharing the measurement slice
// by reference (measurements are never written after ingestion) while
// copying only the dedup/coverage indexes. Under the race detector, Freeze
// fingerprints the measurement interiors and later forks re-verify it, so
// any illegal write through a shared *Measurement is caught loudly.
type Store struct {
	ms   []*probe.Measurement
	seen map[int]bool
	// frozenSeen is the read-only dedup base a copy-on-write fork shares
	// with its frozen parent; seen holds only the fork's own additions. A
	// dedup probe consults both. Nil on stores built from scratch.
	frozenSeen map[int]bool
	cov        map[probe.Intent]*StreamCoverage
	frozen     bool
	fp         uint64 // race builds only: interior fingerprint taken at Freeze
}

// NewStore returns an empty store.
func NewStore() *Store {
	return &Store{seen: make(map[int]bool), cov: make(map[probe.Intent]*StreamCoverage)}
}

// Add appends measurements, rejecting any whose ID the store has already
// seen. On error the offending record and everything after it are not
// added; earlier records in the same call remain (the caller is mid-crash
// anyway — Campaign surfaces the error and stops the run).
func (s *Store) Add(ms ...*probe.Measurement) error {
	if s.frozen {
		return fmt.Errorf("platform: Add on frozen store (mutate a Fork instead)")
	}
	for _, m := range ms {
		if s.seen[m.ID] || s.frozenSeen[m.ID] {
			return fmt.Errorf("platform: duplicate measurement ID %d (intent %s, hour %.2f)", m.ID, m.Intent, m.Hour)
		}
		s.seen[m.ID] = true
		c := s.cov[m.Intent]
		if c == nil {
			c = &StreamCoverage{}
			s.cov[m.Intent] = c
		}
		c.add(m)
		s.ms = append(s.ms, m)
	}
	return nil
}

// Len returns the number of stored measurements.
func (s *Store) Len() int { return len(s.ms) }

// All returns all measurements (shared backing slice; do not mutate).
func (s *Store) All() []*probe.Measurement { return s.ms }

// Coverage returns a copy of the per-intent stream coverage counters.
func (s *Store) Coverage() map[probe.Intent]StreamCoverage {
	out := make(map[probe.Intent]StreamCoverage, len(s.cov))
	for in, c := range s.cov {
		out[in] = *c
	}
	return out
}

// TotalCoverage sums coverage across every intent stream.
func (s *Store) TotalCoverage() StreamCoverage {
	var total StreamCoverage
	for _, c := range s.cov {
		total.Scheduled += c.Scheduled
		total.Delivered += c.Delivered
		total.Failed += c.Failed
		total.Truncated += c.Truncated
		total.Duplicated += c.Duplicated
	}
	return total
}

// Filter returns measurements satisfying the predicate.
func (s *Store) Filter(keep func(*probe.Measurement) bool) []*probe.Measurement {
	var out []*probe.Measurement
	for _, m := range s.ms {
		if keep(m) {
			out = append(out, m)
		}
	}
	return out
}

// ByIntent returns measurements with the given intent tag.
func (s *Store) ByIntent(in probe.Intent) []*probe.Measurement {
	return s.Filter(func(m *probe.Measurement) bool { return m.Intent == in })
}

// Delivered returns the measurements that actually produced data (Failed
// markers excluded) — what estimators should consume.
func (s *Store) Delivered() []*probe.Measurement {
	return s.Filter(func(m *probe.Measurement) bool { return !m.Failed })
}

// Unit identifies an ⟨ASN, city⟩ aggregation unit — the granularity of the
// paper's Table 1 ("users within the same ASN and city are likely to share
// routing policies, last-mile conditions, and local peering options").
type Unit struct {
	ASN  topo.ASN
	City string
}

func (u Unit) String() string { return fmt.Sprintf("AS%d/%s", u.ASN, u.City) }

// UnitOf returns the source unit of a measurement.
func UnitOf(m *probe.Measurement) Unit { return Unit{ASN: m.SrcASN, City: m.SrcCity} }

// Units lists the distinct source units present in the store, sorted.
func (s *Store) Units() []Unit {
	seen := make(map[Unit]bool)
	for _, m := range s.ms {
		seen[UnitOf(m)] = true
	}
	out := make([]Unit, 0, len(seen))
	for u := range seen {
		out = append(out, u)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].ASN != out[j].ASN {
			return out[i].ASN < out[j].ASN
		}
		return out[i].City < out[j].City
	})
	return out
}

// Frame flattens measurements into a columnar dataset with the numeric
// columns estimators need: hour, src_asn, dst_asn, rtt_ms, tput_mbps,
// loss, family, plus ground-truth columns true_rtt_ms and true_max_util
// (for validation only). Failed records carry no performance data and are
// excluded; coverage counters on the Store account for them.
func Frame(ms []*probe.Measurement) *data.Frame {
	kept := ms[:0:0]
	for _, m := range ms {
		if !m.Failed {
			kept = append(kept, m)
		}
	}
	n := len(kept)
	cols := map[string][]float64{
		"hour": make([]float64, n), "src_asn": make([]float64, n),
		"dst_asn": make([]float64, n), "rtt_ms": make([]float64, n),
		"tput_mbps": make([]float64, n), "loss": make([]float64, n),
		"family": make([]float64, n), "true_rtt_ms": make([]float64, n),
		"true_max_util": make([]float64, n),
	}
	for i, m := range kept {
		cols["hour"][i] = m.Hour
		cols["src_asn"][i] = float64(m.SrcASN)
		cols["dst_asn"][i] = float64(m.DstASN)
		cols["rtt_ms"][i] = m.RTTms
		cols["tput_mbps"][i] = m.ThroughputMbps
		cols["loss"][i] = m.LossRate
		cols["family"][i] = float64(m.Family)
		cols["true_rtt_ms"][i] = m.TrueRTTms
		cols["true_max_util"][i] = m.TrueMaxUtil
	}
	f, err := data.FromColumns(cols)
	if err != nil {
		panic(err) // impossible: all columns same length by construction
	}
	return f
}

// MedianRTTSeries bins one unit's measurements into fixed windows of
// binHours covering [startHour, endHour) and returns the per-bin median RTT.
// Failed records are tagged gaps, not observations, and are skipped. Empty
// bins are filled by linear interpolation between neighbours (carrying the
// edge values outward) and reported in the second return value, so
// synthetic-control panels stay rectangular even under bursty user-initiated
// sampling; callers that need the raw mask (for coverage-aware panels) can
// reconstruct it from emptyBins.
func MedianRTTSeries(ms []*probe.Measurement, u Unit, startHour, endHour, binHours float64) (series []float64, emptyBins []int) {
	nBins := int((endHour - startHour) / binHours)
	buckets := make([][]float64, nBins)
	for _, m := range ms {
		if m.Failed || UnitOf(m) != u || m.Hour < startHour || m.Hour >= endHour {
			continue
		}
		b := int((m.Hour - startHour) / binHours)
		if b >= 0 && b < nBins {
			buckets[b] = append(buckets[b], m.RTTms)
		}
	}
	series = make([]float64, nBins)
	present := make([]bool, nBins)
	for i, b := range buckets {
		if len(b) > 0 {
			series[i] = mathx.Median(b)
			present[i] = true
		} else {
			emptyBins = append(emptyBins, i)
		}
	}
	mathx.InterpolateMissing(series, present)
	return series, emptyBins
}
