// Package platform simulates the measurement infrastructure the paper's §4
// wants to exist: vantage points with scheduled baselines, M-Lab-style
// metro server pools behind a randomizing load balancer, user-initiated
// tests whose propensity depends on network state (the endogeneity of §4's
// point 4), conditional measurement activation on BGP changes (point 1),
// intent tagging (point 2), and exogenous-variation knobs (point 3).
package platform

import (
	"fmt"
	"sort"

	"sisyphus/internal/causal/data"
	"sisyphus/internal/mathx"
	"sisyphus/internal/netsim/topo"
	"sisyphus/internal/probe"
)

// Store accumulates measurements from all collectors.
type Store struct {
	ms []*probe.Measurement
}

// NewStore returns an empty store.
func NewStore() *Store { return &Store{} }

// Add appends measurements.
func (s *Store) Add(ms ...*probe.Measurement) { s.ms = append(s.ms, ms...) }

// Len returns the number of stored measurements.
func (s *Store) Len() int { return len(s.ms) }

// All returns all measurements (shared backing slice; do not mutate).
func (s *Store) All() []*probe.Measurement { return s.ms }

// Filter returns measurements satisfying the predicate.
func (s *Store) Filter(keep func(*probe.Measurement) bool) []*probe.Measurement {
	var out []*probe.Measurement
	for _, m := range s.ms {
		if keep(m) {
			out = append(out, m)
		}
	}
	return out
}

// ByIntent returns measurements with the given intent tag.
func (s *Store) ByIntent(in probe.Intent) []*probe.Measurement {
	return s.Filter(func(m *probe.Measurement) bool { return m.Intent == in })
}

// Unit identifies an ⟨ASN, city⟩ aggregation unit — the granularity of the
// paper's Table 1 ("users within the same ASN and city are likely to share
// routing policies, last-mile conditions, and local peering options").
type Unit struct {
	ASN  topo.ASN
	City string
}

func (u Unit) String() string { return fmt.Sprintf("AS%d/%s", u.ASN, u.City) }

// UnitOf returns the source unit of a measurement.
func UnitOf(m *probe.Measurement) Unit { return Unit{ASN: m.SrcASN, City: m.SrcCity} }

// Units lists the distinct source units present in the store, sorted.
func (s *Store) Units() []Unit {
	seen := make(map[Unit]bool)
	for _, m := range s.ms {
		seen[UnitOf(m)] = true
	}
	out := make([]Unit, 0, len(seen))
	for u := range seen {
		out = append(out, u)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].ASN != out[j].ASN {
			return out[i].ASN < out[j].ASN
		}
		return out[i].City < out[j].City
	})
	return out
}

// Frame flattens measurements into a columnar dataset with the numeric
// columns estimators need: hour, src_asn, dst_asn, rtt_ms, tput_mbps,
// loss, family, plus ground-truth columns true_rtt_ms and true_max_util
// (for validation only).
func Frame(ms []*probe.Measurement) *data.Frame {
	n := len(ms)
	cols := map[string][]float64{
		"hour": make([]float64, n), "src_asn": make([]float64, n),
		"dst_asn": make([]float64, n), "rtt_ms": make([]float64, n),
		"tput_mbps": make([]float64, n), "loss": make([]float64, n),
		"family": make([]float64, n), "true_rtt_ms": make([]float64, n),
		"true_max_util": make([]float64, n),
	}
	for i, m := range ms {
		cols["hour"][i] = m.Hour
		cols["src_asn"][i] = float64(m.SrcASN)
		cols["dst_asn"][i] = float64(m.DstASN)
		cols["rtt_ms"][i] = m.RTTms
		cols["tput_mbps"][i] = m.ThroughputMbps
		cols["loss"][i] = m.LossRate
		cols["family"][i] = float64(m.Family)
		cols["true_rtt_ms"][i] = m.TrueRTTms
		cols["true_max_util"][i] = m.TrueMaxUtil
	}
	f, err := data.FromColumns(cols)
	if err != nil {
		panic(err) // impossible: all columns same length by construction
	}
	return f
}

// MedianRTTSeries bins one unit's measurements into fixed windows of
// binHours covering [startHour, endHour) and returns the per-bin median RTT.
// Empty bins are filled by linear interpolation between neighbours (carrying
// the edge values outward) and reported in the second return value, so
// synthetic-control panels stay rectangular even under bursty user-initiated
// sampling.
func MedianRTTSeries(ms []*probe.Measurement, u Unit, startHour, endHour, binHours float64) (series []float64, emptyBins []int) {
	nBins := int((endHour - startHour) / binHours)
	buckets := make([][]float64, nBins)
	for _, m := range ms {
		if UnitOf(m) != u || m.Hour < startHour || m.Hour >= endHour {
			continue
		}
		b := int((m.Hour - startHour) / binHours)
		if b >= 0 && b < nBins {
			buckets[b] = append(buckets[b], m.RTTms)
		}
	}
	series = make([]float64, nBins)
	present := make([]bool, nBins)
	for i, b := range buckets {
		if len(b) > 0 {
			series[i] = mathx.Median(b)
			present[i] = true
		} else {
			emptyBins = append(emptyBins, i)
		}
	}
	interpolate(series, present)
	return series, emptyBins
}

// interpolate fills gaps in place given a presence mask.
func interpolate(xs []float64, present []bool) {
	n := len(xs)
	prev := -1
	for i := 0; i < n; i++ {
		if !present[i] {
			continue
		}
		if prev == -1 {
			for j := 0; j < i; j++ {
				xs[j] = xs[i] // carry first value backward
			}
		} else if prev < i-1 {
			for j := prev + 1; j < i; j++ {
				frac := float64(j-prev) / float64(i-prev)
				xs[j] = xs[prev]*(1-frac) + xs[i]*frac
			}
		}
		prev = i
	}
	if prev == -1 {
		return // nothing present; leave zeros
	}
	for j := prev + 1; j < n; j++ {
		xs[j] = xs[prev] // carry last value forward
	}
}
