package platform

import (
	"strings"
	"testing"

	"sisyphus/internal/probe"
)

func seededStore(t testing.TB, n int) *Store {
	t.Helper()
	s := NewStore()
	for i := 1; i <= n; i++ {
		m := &probe.Measurement{
			ID: i, Intent: probe.IntentBaseline, Hour: float64(i),
			SrcASN: 3741, SrcCity: "Johannesburg", RTTms: 10 + float64(i),
			Hops: []probe.HopRecord{{}, {}},
		}
		if err := s.Add(m); err != nil {
			t.Fatal(err)
		}
	}
	return s
}

// TestFrozenForkSharesMeasurements pins the copy-on-write contract: a fork
// of a frozen store shares the measurement slice by reference, gets private
// index copies, and an Add on the fork reallocates instead of writing into
// the shared backing array.
func TestFrozenForkSharesMeasurements(t *testing.T) {
	s := seededStore(t, 8)
	s.Freeze()
	if !s.Frozen() {
		t.Fatal("Freeze did not stick")
	}

	a := s.Fork()
	b := s.Fork()
	if &a.ms[0] != &s.ms[0] {
		t.Fatal("frozen fork copied the measurement slice")
	}
	if a.ms[0] != s.ms[0] {
		t.Fatal("frozen fork cloned measurement interiors")
	}
	if cap(a.ms) != len(a.ms) {
		t.Fatalf("fork's slice cap %d not clamped to len %d; append could scribble on the original", cap(a.ms), len(a.ms))
	}

	// Extending fork a must not disturb the original or sibling b.
	if err := a.Add(&probe.Measurement{ID: 100, Intent: probe.IntentUserInitiated, Hour: 99}); err != nil {
		t.Fatal(err)
	}
	if a.Len() != 9 || s.Len() != 8 || b.Len() != 8 {
		t.Fatalf("lengths after fork Add: a=%d s=%d b=%d, want 9/8/8", a.Len(), s.Len(), b.Len())
	}
	if s.seen[100] || b.seen[100] {
		t.Fatal("fork's dedup index write leaked")
	}
	if cov := s.Coverage()[probe.IntentUserInitiated]; cov.Scheduled != 0 {
		t.Fatal("fork's coverage write leaked into the original")
	}
	// And the fork re-accepts dedup duty: the shared IDs are still seen.
	if err := a.Add(&probe.Measurement{ID: 1}); err == nil {
		t.Fatal("fork lost the dedup index for shared measurements")
	}
}

// TestAddOnFrozenStoreFails: the stored original is read-only.
func TestAddOnFrozenStoreFails(t *testing.T) {
	s := seededStore(t, 1)
	s.Freeze()
	err := s.Add(&probe.Measurement{ID: 42})
	if err == nil || !strings.Contains(err.Error(), "frozen") {
		t.Fatalf("Add on frozen store: err = %v, want frozen error", err)
	}
	if s.Len() != 1 {
		t.Fatalf("failed Add still appended: len = %d", s.Len())
	}
}

// TestMutableForkStaysDeep pins the pre-freeze behaviour: forks of a live
// store clone every measurement, so fault injectors mutating records before
// a later Add cannot leak into earlier forks.
func TestMutableForkStaysDeep(t *testing.T) {
	s := seededStore(t, 3)
	f := s.Fork()
	if f.ms[0] == s.ms[0] {
		t.Fatal("mutable fork shares measurement interiors")
	}
	s.ms[0].RTTms = -1
	if f.ms[0].RTTms == -1 {
		t.Fatal("original's interior write leaked into a deep fork")
	}
}

// TestFrozenForkAllocations pins the pointer-cheap property: forking a
// frozen store allocates O(indexes), not O(measurements).
func TestFrozenForkAllocations(t *testing.T) {
	small := seededStore(t, 4)
	small.Freeze()
	big := seededStore(t, 400)
	big.Freeze()
	smallAllocs := testing.AllocsPerRun(50, func() { _ = small.Fork() })
	bigAllocs := testing.AllocsPerRun(50, func() { _ = big.Fork() })
	// Measurements are shared and the dedup base is shared: 100x the
	// records must not change the fork's allocation count at all.
	if bigAllocs > smallAllocs {
		t.Fatalf("frozen Fork allocations scale with measurements: %v for 400 records vs %v for 4", bigAllocs, smallAllocs)
	}
	if smallAllocs > 8 {
		t.Fatalf("frozen Fork allocates %v objects, want a handful (struct + empty overlay + coverage)", smallAllocs)
	}
}

// TestFrozenFingerprintCatchesInteriorWrites: under the race detector the
// store fingerprints measurement interiors at Freeze and re-verifies on
// Fork, so a write through a shared pointer fails loudly instead of
// corrupting every fork. (No-op without -race.)
func TestFrozenFingerprintCatchesInteriorWrites(t *testing.T) {
	if !raceEnabled {
		t.Skip("interior fingerprint is only maintained under -race")
	}
	s := seededStore(t, 4)
	s.Freeze()
	s.ms[2].RTTms = -999 // the illegal write the contract forbids
	defer func() {
		if recover() == nil {
			t.Fatal("Fork after an interior write did not panic")
		}
	}()
	s.Fork()
}

// TestSizeBytesCountsIndexes: the residency estimate must include the dedup
// and coverage indexes forks copy — the LRU bound undercounted them before.
func TestSizeBytesCountsIndexes(t *testing.T) {
	s := seededStore(t, 10)
	bare := int64(0)
	for _, m := range s.ms {
		bare += 240 + int64(len(m.Hops))*48 + int64(len(m.ASPath))*4
	}
	if got := s.SizeBytes(); got <= bare {
		t.Fatalf("SizeBytes() = %d, want > %d (measurements alone): indexes uncounted", got, bare)
	}
}
