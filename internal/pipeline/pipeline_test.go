package pipeline

import (
	"context"
	"errors"
	"strings"
	"testing"
)

func TestStageRunsBody(t *testing.T) {
	double := NewStage("test/double", func(ctx context.Context, in int) (int, error) {
		return in * 2, nil
	})
	out, err := double.Run(context.Background(), 21)
	if err != nil || out != 42 {
		t.Fatalf("Run = %d, %v", out, err)
	}
}

func TestStageEntryIsCancellationBarrier(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	ran := false
	s := NewStage("test/never", func(ctx context.Context, in int) (int, error) {
		ran = true
		return in, nil
	})
	_, err := s.Run(ctx, 1)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v want context.Canceled", err)
	}
	if ran {
		t.Fatal("stage body ran under a cancelled context")
	}
	if !strings.Contains(err.Error(), "test/never") {
		t.Fatalf("error does not name the stage: %v", err)
	}
}

func TestStageWrapsBodyError(t *testing.T) {
	sentinel := errors.New("boom")
	s := NewStage("table1/estimator", func(ctx context.Context, in int) (int, error) {
		return 0, sentinel
	})
	_, err := s.Run(context.Background(), 1)
	if !errors.Is(err, sentinel) {
		t.Fatalf("err = %v, want wrapped sentinel", err)
	}
	if !strings.Contains(err.Error(), "pipeline: stage table1/estimator") {
		t.Fatalf("err = %v, want stage-named wrap", err)
	}
}

func TestThenComposesAndStopsBetweenStages(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	first := NewStage(Scenario, func(ctx context.Context, in int) (int, error) {
		cancel() // cancellation lands while the first stage is running
		return in + 1, nil
	})
	secondRan := false
	second := NewStage(Estimator, func(ctx context.Context, in int) (int, error) {
		secondRan = true
		return in * 10, nil
	})
	_, err := Then(first, second).Run(ctx, 1)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v want context.Canceled", err)
	}
	if secondRan {
		t.Fatal("second stage ran past the cancellation barrier")
	}
}

func TestThenHappyPath(t *testing.T) {
	inc := NewStage("inc", func(ctx context.Context, in int) (int, error) { return in + 1, nil })
	str := NewStage("str", func(ctx context.Context, in int) (string, error) {
		return strings.Repeat("x", in), nil
	})
	out, err := Then(inc, str).Run(context.Background(), 2)
	if err != nil || out != "xxx" {
		t.Fatalf("Then = %q, %v", out, err)
	}
}

func TestCompositeDoesNotRewrapStageErrors(t *testing.T) {
	sentinel := errors.New("boom")
	failing := NewStage("table1/dataset", func(ctx context.Context, in int) (int, error) {
		return 0, sentinel
	})
	next := NewStage("table1/estimator", func(ctx context.Context, in int) (int, error) {
		return in, nil
	})
	_, err := Then(failing, next).Run(context.Background(), 1)
	if !errors.Is(err, sentinel) {
		t.Fatalf("err = %v want wrapped sentinel", err)
	}
	// Only the innermost seam names the error; the composite adds nothing.
	if got, want := err.Error(), "pipeline: stage table1/dataset: boom"; got != want {
		t.Fatalf("err = %q want %q", got, want)
	}
}

func TestGuard(t *testing.T) {
	if err := Guard(context.Background(), "chaos/sweep"); err != nil {
		t.Fatalf("Guard on live ctx = %v", err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	err := Guard(ctx, "chaos/sweep")
	if !errors.Is(err, context.Canceled) || !strings.Contains(err.Error(), "chaos/sweep") {
		t.Fatalf("Guard = %v", err)
	}
}
