// Package pipeline defines the staged run architecture the experiment
// runners are built on: Scenario → Dataset → Estimator → Report.
//
// The paper's §4 platform proposals — and Hours et al.'s causal study
// framework — treat a measurement analysis as a sequence of separable
// stages: construct (or observe) a world, extract a measurement panel from
// it, run an estimator over the panel, and render diagnostics. Keeping
// those seams explicit in the code is what lets a serving layer cache the
// expensive early artifacts (a built world, a binned panel) and re-run only
// the cheap late ones (a different estimator, a re-render), and is where
// cancellation is checked: every stage entry is a cancellation barrier, so
// a cancelled run stops within one stage boundary even if the stage bodies
// never look at the context again.
//
// A Stage is a value: a name plus a typed function. Stages compose with
// Then, and experiments name theirs after the canonical seams (the
// Scenario/Dataset/Estimator/Report constants) so profiles and error
// messages line up across experiments.
package pipeline

import (
	"context"
	"errors"

	"sisyphus/internal/obs"
)

// Canonical stage names. Experiments qualify them as "<id>/<stage>", e.g.
// "table1/estimator".
const (
	Scenario  = "scenario"  // world construction and measurement collection
	Dataset   = "dataset"   // panel / measurement extraction and binning
	Estimator = "estimator" // synthetic control, DiD, IV, OLS, …
	Report    = "report"    // rendering and serializable result assembly
)

// Stage is one named, typed step of a run. The zero value is invalid; build
// stages with NewStage (or a struct literal with both fields set).
type Stage[In, Out any] struct {
	// Name identifies the stage in errors and traces ("table1/scenario").
	Name string
	// Fn is the stage body. It receives the run context and must honor it
	// in its own long loops; the Run wrapper already guarantees the stage
	// never starts under a cancelled context.
	Fn func(ctx context.Context, in In) (Out, error)
	// composite marks stages built by Then. Composites don't record spans of
	// their own — their leaves already do, and a trace wants the seams, not
	// every enclosing composition.
	composite bool
}

// NewStage builds a stage value.
func NewStage[In, Out any](name string, fn func(ctx context.Context, in In) (Out, error)) Stage[In, Out] {
	return Stage[In, Out]{Name: name, Fn: fn}
}

// stageError wraps a stage body's failure with the stage name. It exists so
// composite stages (Then) don't re-wrap an error a deeper seam already
// named: the innermost stage is the useful one in a message.
type stageError struct {
	stage string
	err   error
}

func (e *stageError) Error() string { return "pipeline: stage " + e.stage + ": " + e.err.Error() }
func (e *stageError) Unwrap() error { return e.err }

// wrapStage names err after the stage unless some inner stage already did.
func wrapStage(name string, err error) error {
	var se *stageError
	if errors.As(err, &se) {
		return err
	}
	return &stageError{stage: name, err: err}
}

// Run executes the stage: it checks for cancellation at entry (the stage
// boundary), then invokes the body. Errors — including the context's own —
// come back wrapped with the stage name, so a failure deep inside a run
// names the seam it crossed.
//
// Every Run is a trace point: when the context carries an obs.Recorder the
// stage records a span (name, wall time, error tag). Without one, StartSpan
// returns the nil no-op span — observability reads the run, never shapes it.
func (s Stage[In, Out]) Run(ctx context.Context, in In) (Out, error) {
	var zero Out
	if err := ctx.Err(); err != nil {
		return zero, wrapStage(s.Name, err)
	}
	var sp *obs.ActiveSpan
	if !s.composite {
		sp = obs.StartSpan(ctx, s.Name)
	}
	out, err := s.Fn(ctx, in)
	if err != nil {
		err = wrapStage(s.Name, err)
		sp.End(err)
		return zero, err
	}
	sp.End(nil)
	return out, nil
}

// Then composes two stages into one: a.Then(b) is not expressible as a
// method (Go methods cannot add type parameters), so composition is a
// package function. The composite runs a, then feeds its output to b, with
// the usual cancellation barrier between them; its name is "a+b".
func Then[A, B, C any](a Stage[A, B], b Stage[B, C]) Stage[A, C] {
	return Stage[A, C]{
		Name:      a.Name + "+" + b.Name,
		composite: true,
		Fn: func(ctx context.Context, in A) (C, error) {
			var zero C
			mid, err := a.Run(ctx, in)
			if err != nil {
				return zero, err
			}
			return b.Run(ctx, mid)
		},
	}
}

// Guard returns ctx.Err() wrapped with a stage name, or nil. It is the
// cancellation barrier for code that iterates *within* a stage (a chaos
// sweep level, a per-unit estimator loop) and wants the same error shape a
// stage entry would produce.
func Guard(ctx context.Context, name string) error {
	if err := ctx.Err(); err != nil {
		return wrapStage(name, err)
	}
	return nil
}
