package mathx

import (
	"math"
	"math/bits"
)

// RNG is a small, fast, deterministic random source (xoshiro256** core with
// a SplitMix64 seeder). Every stochastic component in this repository takes
// an explicit *RNG so whole experiments replay bit-identically from a seed —
// a prerequisite for the counterfactual replay experiments, where the same
// noise history must be re-run under a different intervention.
type RNG struct {
	s [4]uint64
}

// NewRNG returns a generator seeded deterministically from seed.
func NewRNG(seed uint64) *RNG {
	r := &RNG{}
	// SplitMix64 to expand the seed into four nonzero state words.
	x := seed
	for i := range r.s {
		x += 0x9e3779b97f4a7c15
		z := x
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		z = (z ^ (z >> 27)) * 0x94d049bb133111eb
		r.s[i] = z ^ (z >> 31)
	}
	if r.s[0]|r.s[1]|r.s[2]|r.s[3] == 0 {
		r.s[0] = 1
	}
	return r
}

// Split returns a new generator derived from this one; the parent advances.
// Use it to hand independent streams to sub-components.
func (r *RNG) Split() *RNG { return NewRNG(r.Uint64()) }

func rotl(x uint64, k uint) uint64 { return (x << k) | (x >> (64 - k)) }

// Uint64 returns the next 64 random bits.
func (r *RNG) Uint64() uint64 {
	result := rotl(r.s[1]*5, 7) * 9
	t := r.s[1] << 17
	r.s[2] ^= r.s[0]
	r.s[3] ^= r.s[1]
	r.s[1] ^= r.s[2]
	r.s[0] ^= r.s[3]
	r.s[2] ^= t
	r.s[3] = rotl(r.s[3], 45)
	return result
}

// Float64 returns a uniform value in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Intn returns a uniform integer in [0, n). It panics if n <= 0.
//
// Uniformity matters here: donor sampling, permutation tests, and refuter
// shuffles all route through Intn, and the old `Uint64() % n` carried a
// modulo bias of up to n/2⁶⁴ toward small values for non-power-of-two n.
// This uses Lemire's multiply–shift rejection method (Lemire 2019,
// "Fast Random Integer Generation in an Interval"): exactly uniform, and
// the rejection loop almost never runs for the small n used here.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("mathx: Intn with non-positive n")
	}
	un := uint64(n)
	hi, lo := bits.Mul64(r.Uint64(), un)
	if lo < un {
		// thresh = 2⁶⁴ mod n; draws with lo below it fall in the biased
		// remainder region and are rejected.
		thresh := -un % un
		for lo < thresh {
			hi, lo = bits.Mul64(r.Uint64(), un)
		}
	}
	return int(hi)
}

// Perm returns a random permutation of [0, n).
func (r *RNG) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
	return p
}

// Normal returns a draw from N(mean, std²) via Box-Muller.
func (r *RNG) Normal(mean, std float64) float64 {
	// Polar-free Box-Muller; wastes the second deviate for simplicity.
	u1 := r.Float64()
	for u1 == 0 {
		u1 = r.Float64()
	}
	u2 := r.Float64()
	z := math.Sqrt(-2*math.Log(u1)) * math.Cos(2*math.Pi*u2)
	return mean + std*z
}

// LogNormal returns a draw whose logarithm is N(mu, sigma²).
func (r *RNG) LogNormal(mu, sigma float64) float64 {
	return math.Exp(r.Normal(mu, sigma))
}

// Exponential returns a draw from Exp(rate).
func (r *RNG) Exponential(rate float64) float64 {
	u := r.Float64()
	for u == 0 {
		u = r.Float64()
	}
	return -math.Log(u) / rate
}

// Pareto returns a draw from a Pareto distribution with scale xm and shape
// alpha. Heavy-tailed; used for flow sizes and flash-crowd magnitudes.
func (r *RNG) Pareto(xm, alpha float64) float64 {
	u := r.Float64()
	for u == 0 {
		u = r.Float64()
	}
	return xm / math.Pow(u, 1/alpha)
}

// Bernoulli returns true with probability p.
func (r *RNG) Bernoulli(p float64) bool { return r.Float64() < p }

// Poisson returns a draw from Poisson(lambda) using Knuth's method for small
// lambda and a normal approximation above 50.
func (r *RNG) Poisson(lambda float64) int {
	if lambda <= 0 {
		return 0
	}
	if lambda > 50 {
		v := r.Normal(lambda, math.Sqrt(lambda))
		if v < 0 {
			return 0
		}
		return int(v + 0.5)
	}
	l := math.Exp(-lambda)
	k := 0
	p := 1.0
	for {
		p *= r.Float64()
		if p <= l {
			return k
		}
		k++
	}
}

// Choice returns a uniformly random index into a slice of length n weighted
// by w (which need not be normalized). It panics on empty or all-zero w.
func (r *RNG) Choice(w []float64) int {
	var total float64
	for _, x := range w {
		if x < 0 {
			panic("mathx: negative weight")
		}
		total += x
	}
	if total <= 0 {
		panic("mathx: Choice with zero total weight")
	}
	target := r.Float64() * total
	for i, x := range w {
		target -= x
		if target < 0 {
			return i
		}
	}
	return len(w) - 1
}
