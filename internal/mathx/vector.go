// Package mathx provides the numerical substrate used throughout the
// repository: dense vectors and matrices, linear solvers, a one-sided
// Jacobi SVD, regression helpers, summary statistics, probability
// distributions, and a deterministic random source.
//
// Everything is implemented with the standard library only. The package
// favours clarity and numerical robustness over raw speed: matrices in this
// repository are small (donor pools of tens of units, weeks of hourly
// observations), so cubic algorithms with careful pivoting are the right
// trade-off.
package mathx

import (
	"fmt"
	"math"
)

// Vector is a dense column vector of float64 values.
type Vector []float64

// NewVector returns a zero vector of length n.
func NewVector(n int) Vector { return make(Vector, n) }

// Clone returns an independent copy of v.
func (v Vector) Clone() Vector {
	out := make(Vector, len(v))
	copy(out, v)
	return out
}

// Dot returns the inner product of v and w. It panics if lengths differ.
func (v Vector) Dot(w Vector) float64 {
	if len(v) != len(w) {
		panic(fmt.Sprintf("mathx: dot of length %d with %d", len(v), len(w)))
	}
	var s float64
	for i := range v {
		s += v[i] * w[i]
	}
	return s
}

// Norm returns the Euclidean norm of v.
func (v Vector) Norm() float64 { return math.Sqrt(v.Dot(v)) }

// Sum returns the sum of the elements of v.
func (v Vector) Sum() float64 {
	var s float64
	for _, x := range v {
		s += x
	}
	return s
}

// Mean returns the arithmetic mean of v, or NaN for an empty vector.
func (v Vector) Mean() float64 {
	if len(v) == 0 {
		return math.NaN()
	}
	return v.Sum() / float64(len(v))
}

// AddScaled sets v = v + a*w in place and returns v.
func (v Vector) AddScaled(a float64, w Vector) Vector {
	if len(v) != len(w) {
		panic(fmt.Sprintf("mathx: addScaled of length %d with %d", len(v), len(w)))
	}
	for i := range v {
		v[i] += a * w[i]
	}
	return v
}

// Scale multiplies every element of v by a in place and returns v.
func (v Vector) Scale(a float64) Vector {
	for i := range v {
		v[i] *= a
	}
	return v
}

// Sub returns v - w as a new vector.
func (v Vector) Sub(w Vector) Vector {
	if len(v) != len(w) {
		panic(fmt.Sprintf("mathx: sub of length %d with %d", len(v), len(w)))
	}
	out := make(Vector, len(v))
	for i := range v {
		out[i] = v[i] - w[i]
	}
	return out
}

// Add returns v + w as a new vector.
func (v Vector) Add(w Vector) Vector {
	if len(v) != len(w) {
		panic(fmt.Sprintf("mathx: add of length %d with %d", len(v), len(w)))
	}
	out := make(Vector, len(v))
	for i := range v {
		out[i] = v[i] + w[i]
	}
	return out
}

// Max returns the maximum element of v, or -Inf for an empty vector.
func (v Vector) Max() float64 {
	m := math.Inf(-1)
	for _, x := range v {
		if x > m {
			m = x
		}
	}
	return m
}

// Min returns the minimum element of v, or +Inf for an empty vector.
func (v Vector) Min() float64 {
	m := math.Inf(1)
	for _, x := range v {
		if x < m {
			m = x
		}
	}
	return m
}

// RMSE returns the root mean squared difference between v and w.
func RMSE(v, w Vector) float64 {
	if len(v) != len(w) {
		panic(fmt.Sprintf("mathx: rmse of length %d with %d", len(v), len(w)))
	}
	if len(v) == 0 {
		return math.NaN()
	}
	var s float64
	for i := range v {
		d := v[i] - w[i]
		s += d * d
	}
	return math.Sqrt(s / float64(len(v)))
}
