package mathx

// InterpolateMissing fills the entries of xs whose present flag is false,
// in place: interior gaps by linear interpolation between the nearest
// present neighbours, leading/trailing gaps by carrying the nearest present
// value outward. If nothing is present, xs is left untouched. This is the
// single imputation primitive shared by platform time-series binning and
// synthetic-control panel repair, so both layers fill gaps identically.
func InterpolateMissing(xs []float64, present []bool) {
	n := len(xs)
	prev := -1
	for i := 0; i < n; i++ {
		if !present[i] {
			continue
		}
		if prev == -1 {
			for j := 0; j < i; j++ {
				xs[j] = xs[i] // carry first value backward
			}
		} else if prev < i-1 {
			for j := prev + 1; j < i; j++ {
				frac := float64(j-prev) / float64(i-prev)
				xs[j] = xs[prev]*(1-frac) + xs[i]*frac
			}
		}
		prev = i
	}
	if prev == -1 {
		return // nothing present; leave values as-is
	}
	for j := prev + 1; j < n; j++ {
		xs[j] = xs[prev] // carry last value forward
	}
}
