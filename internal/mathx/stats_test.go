package mathx

import (
	"math"
	"testing"
	"testing/quick"
)

func TestSummarizeKnown(t *testing.T) {
	s := Summarize([]float64{2, 4, 4, 4, 5, 5, 7, 9})
	if s.N != 8 {
		t.Fatalf("n = %d", s.N)
	}
	if !almostEqual(s.Mean, 5, 1e-12) {
		t.Fatalf("mean = %v", s.Mean)
	}
	if !almostEqual(s.Var, 32.0/7.0, 1e-12) {
		t.Fatalf("var = %v", s.Var)
	}
	if s.Min != 2 || s.Max != 9 {
		t.Fatalf("min/max = %v/%v", s.Min, s.Max)
	}
	if !almostEqual(s.Median, 4.5, 1e-12) {
		t.Fatalf("median = %v", s.Median)
	}
}

func TestSummarizeEmpty(t *testing.T) {
	s := Summarize(nil)
	if s.N != 0 || !math.IsNaN(s.Mean) || !math.IsNaN(s.Median) {
		t.Fatalf("empty summary = %+v", s)
	}
}

func TestQuantileEndpointsAndInterpolation(t *testing.T) {
	xs := []float64{1, 2, 3, 4}
	if got := Quantile(xs, 0); got != 1 {
		t.Fatalf("q0 = %v", got)
	}
	if got := Quantile(xs, 1); got != 4 {
		t.Fatalf("q1 = %v", got)
	}
	if got := Quantile(xs, 0.5); !almostEqual(got, 2.5, 1e-12) {
		t.Fatalf("q0.5 = %v", got)
	}
	if !math.IsNaN(Quantile(nil, 0.5)) {
		t.Fatal("quantile of empty should be NaN")
	}
}

func TestQuantileMonotone(t *testing.T) {
	f := func(seed uint64) bool {
		r := NewRNG(seed)
		n := 1 + r.Intn(40)
		xs := make([]float64, n)
		for i := range xs {
			xs[i] = r.Normal(0, 10)
		}
		prev := math.Inf(-1)
		for q := 0.0; q <= 1.0; q += 0.1 {
			v := Quantile(xs, q)
			if v < prev-1e-12 {
				return false
			}
			prev = v
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestCorrelationPerfect(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	ys := []float64{2, 4, 6, 8, 10}
	if got := Correlation(xs, ys); !almostEqual(got, 1, 1e-12) {
		t.Fatalf("corr = %v", got)
	}
	neg := []float64{10, 8, 6, 4, 2}
	if got := Correlation(xs, neg); !almostEqual(got, -1, 1e-12) {
		t.Fatalf("corr = %v", got)
	}
}

func TestCovarianceMatchesVariance(t *testing.T) {
	xs := []float64{3, 1, 4, 1, 5, 9, 2, 6}
	if got, want := Covariance(xs, xs), Variance(xs); !almostEqual(got, want, 1e-12) {
		t.Fatalf("cov(x,x) = %v, var = %v", got, want)
	}
}

func TestWelchTNoDifference(t *testing.T) {
	r := NewRNG(5)
	a := make([]float64, 500)
	b := make([]float64, 500)
	for i := range a {
		a[i] = r.Normal(10, 2)
		b[i] = r.Normal(10, 2)
	}
	_, p := WelchT(a, b)
	if p < 0.001 {
		t.Fatalf("same-distribution p-value implausibly small: %v", p)
	}
}

func TestWelchTClearDifference(t *testing.T) {
	r := NewRNG(6)
	a := make([]float64, 200)
	b := make([]float64, 200)
	for i := range a {
		a[i] = r.Normal(10, 1)
		b[i] = r.Normal(12, 1)
	}
	tStat, p := WelchT(a, b)
	if p > 1e-6 {
		t.Fatalf("clear difference not detected: p=%v", p)
	}
	if tStat >= 0 {
		t.Fatalf("t should be negative (a < b): %v", tStat)
	}
}

func TestNormalCDFSymmetry(t *testing.T) {
	for _, x := range []float64{0, 0.5, 1, 2, 3} {
		if got := NormalCDF(x) + NormalCDF(-x); !almostEqual(got, 1, 1e-12) {
			t.Fatalf("cdf(%v)+cdf(-%v) = %v", x, x, got)
		}
		if got := NormalCDF(x) + NormalSurvival(x); !almostEqual(got, 1, 1e-12) {
			t.Fatalf("cdf+survival at %v = %v", x, got)
		}
	}
	if !almostEqual(NormalCDF(0), 0.5, 1e-12) {
		t.Fatal("cdf(0) != 0.5")
	}
	if !almostEqual(NormalCDF(1.96), 0.975, 1e-3) {
		t.Fatalf("cdf(1.96) = %v", NormalCDF(1.96))
	}
}

func TestStudentTAgainstKnownValues(t *testing.T) {
	// With df large, t survival approaches normal survival.
	if got, want := studentTSurvival(1.96, 1e6), NormalSurvival(1.96); !almostEqual(got, want, 1e-4) {
		t.Fatalf("t survival = %v want ~%v", got, want)
	}
	// t(df=10): P(T > 2.228) ≈ 0.025 (classic table value).
	if got := studentTSurvival(2.228, 10); !almostEqual(got, 0.025, 1e-3) {
		t.Fatalf("t10 survival = %v", got)
	}
}

func TestRNGDeterminism(t *testing.T) {
	a := NewRNG(123)
	b := NewRNG(123)
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("same seed diverged")
		}
	}
	c := NewRNG(124)
	same := true
	a2 := NewRNG(123)
	for i := 0; i < 10; i++ {
		if a2.Uint64() != c.Uint64() {
			same = false
		}
	}
	if same {
		t.Fatal("different seeds produced identical streams")
	}
}

func TestRNGUniformMoments(t *testing.T) {
	r := NewRNG(77)
	n := 100000
	var sum, sq float64
	for i := 0; i < n; i++ {
		x := r.Float64()
		if x < 0 || x >= 1 {
			t.Fatalf("out of range: %v", x)
		}
		sum += x
		sq += x * x
	}
	mean := sum / float64(n)
	if !almostEqual(mean, 0.5, 0.01) {
		t.Fatalf("uniform mean = %v", mean)
	}
	if v := sq/float64(n) - mean*mean; !almostEqual(v, 1.0/12, 0.01) {
		t.Fatalf("uniform var = %v", v)
	}
}

func TestRNGNormalMoments(t *testing.T) {
	r := NewRNG(88)
	n := 100000
	xs := make([]float64, n)
	for i := range xs {
		xs[i] = r.Normal(5, 3)
	}
	s := Summarize(xs)
	if !almostEqual(s.Mean, 5, 0.05) {
		t.Fatalf("normal mean = %v", s.Mean)
	}
	if !almostEqual(s.Std, 3, 0.05) {
		t.Fatalf("normal std = %v", s.Std)
	}
}

func TestRNGExponentialMean(t *testing.T) {
	r := NewRNG(11)
	n := 50000
	var sum float64
	for i := 0; i < n; i++ {
		sum += r.Exponential(2)
	}
	if got := sum / float64(n); !almostEqual(got, 0.5, 0.02) {
		t.Fatalf("exp mean = %v", got)
	}
}

func TestRNGParetoTail(t *testing.T) {
	r := NewRNG(12)
	for i := 0; i < 10000; i++ {
		if x := r.Pareto(1, 2); x < 1 {
			t.Fatalf("pareto below scale: %v", x)
		}
	}
}

func TestRNGPoissonMean(t *testing.T) {
	r := NewRNG(13)
	for _, lambda := range []float64{0.5, 3, 80} {
		n := 20000
		var sum float64
		for i := 0; i < n; i++ {
			sum += float64(r.Poisson(lambda))
		}
		if got := sum / float64(n); !almostEqual(got, lambda, lambda*0.05+0.05) {
			t.Fatalf("poisson(%v) mean = %v", lambda, got)
		}
	}
}

func TestRNGPermIsPermutation(t *testing.T) {
	f := func(seed uint64) bool {
		r := NewRNG(seed)
		n := 1 + r.Intn(30)
		p := r.Perm(n)
		seen := make([]bool, n)
		for _, x := range p {
			if x < 0 || x >= n || seen[x] {
				return false
			}
			seen[x] = true
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestRNGChoiceRespectsWeights(t *testing.T) {
	r := NewRNG(14)
	counts := [3]int{}
	for i := 0; i < 30000; i++ {
		counts[r.Choice([]float64{1, 2, 7})]++
	}
	if frac := float64(counts[2]) / 30000; !almostEqual(frac, 0.7, 0.02) {
		t.Fatalf("weight-7 frequency = %v", frac)
	}
	if frac := float64(counts[0]) / 30000; !almostEqual(frac, 0.1, 0.02) {
		t.Fatalf("weight-1 frequency = %v", frac)
	}
}

func TestRNGSplitIndependence(t *testing.T) {
	parent := NewRNG(9)
	childA := parent.Split()
	childB := parent.Split()
	diff := false
	for i := 0; i < 16; i++ {
		if childA.Uint64() != childB.Uint64() {
			diff = true
			break
		}
	}
	if !diff {
		t.Fatal("split children produced identical streams")
	}
}
