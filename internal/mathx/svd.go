package mathx

import (
	"math"
	"sort"
)

// SVD holds a thin singular value decomposition A = U diag(S) Vᵀ where A is
// r-by-c, U is r-by-k, V is c-by-k, and k = min(r, c). Singular values are
// sorted in descending order.
type SVD struct {
	U *Matrix
	S Vector
	V *Matrix
}

// ComputeSVD computes a thin SVD of a using the one-sided Jacobi method
// applied to the (possibly transposed) matrix so that we always orthogonalize
// the columns of the taller orientation. One-sided Jacobi is slow in the
// asymptotic sense but simple, numerically robust, and more than fast enough
// for the donor-pool-sized matrices in this repository.
func ComputeSVD(a *Matrix) SVD {
	transposed := false
	work := a.Clone()
	if work.Rows < work.Cols {
		work = work.T()
		transposed = true
	}
	r, c := work.Rows, work.Cols // r >= c

	// v accumulates the right-side rotations: work_final = A * v.
	v := Identity(c)

	const maxSweeps = 60
	// Rotate pairs of columns until all are pairwise orthogonal.
	for sweep := 0; sweep < maxSweeps; sweep++ {
		off := 0.0
		for p := 0; p < c-1; p++ {
			for q := p + 1; q < c; q++ {
				var alpha, beta, gamma float64
				for i := 0; i < r; i++ {
					xp := work.At(i, p)
					xq := work.At(i, q)
					alpha += xp * xp
					beta += xq * xq
					gamma += xp * xq
				}
				if math.Abs(gamma) < 1e-15*math.Sqrt(alpha*beta)+1e-300 {
					continue
				}
				off += gamma * gamma
				// Compute the Jacobi rotation that zeroes gamma.
				zeta := (beta - alpha) / (2 * gamma)
				t := sign(zeta) / (math.Abs(zeta) + math.Sqrt(1+zeta*zeta))
				cs := 1 / math.Sqrt(1+t*t)
				sn := cs * t
				for i := 0; i < r; i++ {
					xp := work.At(i, p)
					xq := work.At(i, q)
					work.Set(i, p, cs*xp-sn*xq)
					work.Set(i, q, sn*xp+cs*xq)
				}
				for i := 0; i < c; i++ {
					vp := v.At(i, p)
					vq := v.At(i, q)
					v.Set(i, p, cs*vp-sn*vq)
					v.Set(i, q, sn*vp+cs*vq)
				}
			}
		}
		if off < 1e-30 {
			break
		}
	}

	// Column norms are the singular values; normalized columns form U.
	s := make(Vector, c)
	u := NewMatrix(r, c)
	for j := 0; j < c; j++ {
		col := work.Col(j)
		n := col.Norm()
		s[j] = n
		if n > 1e-300 {
			for i := 0; i < r; i++ {
				u.Set(i, j, work.At(i, j)/n)
			}
		}
	}

	// Sort by descending singular value.
	idx := make([]int, c)
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(i, j int) bool { return s[idx[i]] > s[idx[j]] })
	sSorted := make(Vector, c)
	uSorted := NewMatrix(r, c)
	vSorted := NewMatrix(c, c)
	for newJ, oldJ := range idx {
		sSorted[newJ] = s[oldJ]
		uSorted.SetCol(newJ, u.Col(oldJ))
		vSorted.SetCol(newJ, v.Col(oldJ))
	}

	if transposed {
		// A = (work)ᵀ = (U S Vᵀ)ᵀ = V S Uᵀ, so swap roles.
		return SVD{U: vSorted, S: sSorted, V: uSorted}
	}
	return SVD{U: uSorted, S: sSorted, V: vSorted}
}

func sign(x float64) float64 {
	if x < 0 {
		return -1
	}
	return 1
}

// Reconstruct rebuilds the matrix U diag(S) Vᵀ, optionally truncated to the
// top k singular values (k <= 0 means all).
func (d SVD) Reconstruct(k int) *Matrix {
	n := len(d.S)
	if k <= 0 || k > n {
		k = n
	}
	r := d.U.Rows
	c := d.V.Rows
	out := NewMatrix(r, c)
	for t := 0; t < k; t++ {
		sv := d.S[t]
		if sv == 0 {
			continue
		}
		for i := 0; i < r; i++ {
			ui := d.U.At(i, t) * sv
			if ui == 0 {
				continue
			}
			for j := 0; j < c; j++ {
				out.Data[i*c+j] += ui * d.V.At(j, t)
			}
		}
	}
	return out
}

// HardThreshold returns the reconstruction keeping only singular values
// strictly greater than tau.
func (d SVD) HardThreshold(tau float64) *Matrix {
	k := 0
	for _, sv := range d.S {
		if sv > tau {
			k++
		}
	}
	return d.Reconstruct(k)
}

// Rank returns the number of singular values above tol relative to the
// largest singular value.
func (d SVD) Rank(tol float64) int {
	if len(d.S) == 0 {
		return 0
	}
	thresh := tol * d.S[0]
	n := 0
	for _, sv := range d.S {
		if sv > thresh {
			n++
		}
	}
	return n
}
