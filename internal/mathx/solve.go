package mathx

import (
	"errors"
	"math"
)

// ErrSingular is returned when a linear system has no unique solution at
// working precision.
var ErrSingular = errors.New("mathx: singular or rank-deficient system")

// SolveLinear solves A x = b by Gaussian elimination with partial pivoting.
// A must be square. The inputs are not modified.
func SolveLinear(a *Matrix, b Vector) (Vector, error) {
	n := a.Rows
	if a.Cols != n {
		return nil, errors.New("mathx: SolveLinear requires a square matrix")
	}
	if len(b) != n {
		return nil, errors.New("mathx: SolveLinear dimension mismatch")
	}
	// Augmented working copies.
	m := a.Clone()
	x := b.Clone()
	for col := 0; col < n; col++ {
		// Partial pivot: find the largest magnitude entry in this column.
		pivot := col
		best := math.Abs(m.At(col, col))
		for r := col + 1; r < n; r++ {
			if v := math.Abs(m.At(r, col)); v > best {
				best, pivot = v, r
			}
		}
		if best < 1e-12 {
			return nil, ErrSingular
		}
		if pivot != col {
			swapRows(m, pivot, col)
			x[pivot], x[col] = x[col], x[pivot]
		}
		inv := 1 / m.At(col, col)
		for r := col + 1; r < n; r++ {
			f := m.At(r, col) * inv
			if f == 0 {
				continue
			}
			for c := col; c < n; c++ {
				m.Set(r, c, m.At(r, c)-f*m.At(col, c))
			}
			x[r] -= f * x[col]
		}
	}
	// Back substitution.
	out := make(Vector, n)
	for i := n - 1; i >= 0; i-- {
		s := x[i]
		for j := i + 1; j < n; j++ {
			s -= m.At(i, j) * out[j]
		}
		out[i] = s / m.At(i, i)
	}
	return out, nil
}

func swapRows(m *Matrix, i, j int) {
	ri := m.Data[i*m.Cols : (i+1)*m.Cols]
	rj := m.Data[j*m.Cols : (j+1)*m.Cols]
	for k := range ri {
		ri[k], rj[k] = rj[k], ri[k]
	}
}

// Invert returns the inverse of square matrix a, or ErrSingular.
func Invert(a *Matrix) (*Matrix, error) {
	n := a.Rows
	if a.Cols != n {
		return nil, errors.New("mathx: Invert requires a square matrix")
	}
	out := NewMatrix(n, n)
	// Solve against each unit vector. O(n^4) worst case but n is small here;
	// good enough and easy to verify.
	e := make(Vector, n)
	for j := 0; j < n; j++ {
		for k := range e {
			e[k] = 0
		}
		e[j] = 1
		col, err := SolveLinear(a, e)
		if err != nil {
			return nil, err
		}
		out.SetCol(j, col)
	}
	return out, nil
}

// LeastSquares solves min_x ||A x - b||_2 via the normal equations with a
// tiny Tikhonov fallback when AᵀA is ill conditioned. A may be tall
// (rows >= cols).
func LeastSquares(a *Matrix, b Vector) (Vector, error) {
	if a.Rows != len(b) {
		return nil, errors.New("mathx: LeastSquares dimension mismatch")
	}
	at := a.T()
	ata := at.Mul(a)
	atb := at.MulVec(b)
	x, err := SolveLinear(ata, atb)
	if err == nil {
		return x, nil
	}
	// Rank deficient: fall back to a small ridge so callers still get the
	// minimum-norm-flavoured solution instead of an error.
	return RidgeSolve(a, b, 1e-8)
}

// RidgeSolve solves min_x ||A x - b||² + lambda ||x||² via
// (AᵀA + lambda I) x = Aᵀ b. lambda must be > 0 for guaranteed solvability.
func RidgeSolve(a *Matrix, b Vector, lambda float64) (Vector, error) {
	if a.Rows != len(b) {
		return nil, errors.New("mathx: RidgeSolve dimension mismatch")
	}
	at := a.T()
	ata := at.Mul(a)
	for i := 0; i < ata.Rows; i++ {
		ata.Set(i, i, ata.At(i, i)+lambda)
	}
	atb := at.MulVec(b)
	return SolveLinear(ata, atb)
}
