package mathx

import (
	"math"
	"testing"
	"testing/quick"
)

// TestIntnBoundsProperty: for any seed and any n >= 1, Intn stays in [0, n).
func TestIntnBoundsProperty(t *testing.T) {
	f := func(seed uint64, raw uint32) bool {
		n := int(raw%100000) + 1
		r := NewRNG(seed)
		for k := 0; k < 50; k++ {
			v := r.Intn(n)
			if v < 0 || v >= n {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestIntnDegenerateAndHuge(t *testing.T) {
	r := NewRNG(7)
	for k := 0; k < 100; k++ {
		if v := r.Intn(1); v != 0 {
			t.Fatalf("Intn(1) = %d", v)
		}
	}
	// A huge non-power-of-two bound exercises the rejection threshold path.
	huge := (1 << 62) + 12345
	for k := 0; k < 1000; k++ {
		if v := r.Intn(huge); v < 0 || v >= huge {
			t.Fatalf("Intn(huge) = %d out of range", v)
		}
	}
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	r.Intn(0)
}

// TestIntnUniformity is the regression test for the modulo-bias bug: with
// the old `Uint64() % n`, non-power-of-two n skewed mass toward small
// values. A chi-square goodness-of-fit over deterministic draws must stay
// below a generous critical value for every tested n.
func TestIntnUniformity(t *testing.T) {
	const draws = 200000
	for _, n := range []int{3, 7, 12, 100, 257} {
		r := NewRNG(uint64(n) * 997)
		counts := make([]int, n)
		for k := 0; k < draws; k++ {
			counts[r.Intn(n)]++
		}
		expected := float64(draws) / float64(n)
		var chi2 float64
		for _, c := range counts {
			d := float64(c) - expected
			chi2 += d * d / expected
		}
		// Critical value ~ df + 4*sqrt(2*df) is far beyond the 99.9th
		// percentile; a modulo-bias regression on this scale would blow
		// well past it for small n.
		df := float64(n - 1)
		limit := df + 4*math.Sqrt(2*df) + 10
		if chi2 > limit {
			t.Errorf("Intn(%d): chi2 = %.1f exceeds %.1f over %d draws", n, chi2, limit, draws)
		}
	}
}

// TestPermIsPermutation guards Perm after the Intn change.
func TestPermIsPermutation(t *testing.T) {
	r := NewRNG(3)
	for _, n := range []int{0, 1, 2, 17} {
		p := r.Perm(n)
		if len(p) != n {
			t.Fatalf("Perm(%d) has length %d", n, len(p))
		}
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				t.Fatalf("Perm(%d) = %v is not a permutation", n, p)
			}
			seen[v] = true
		}
	}
}

// TestSplitIndependence: split streams must not alias the parent or each
// other (the pre-split determinism rule in DESIGN.md depends on this).
func TestSplitIndependence(t *testing.T) {
	parent := NewRNG(42)
	a, b := parent.Split(), parent.Split()
	var sameAB, sameAP int
	for k := 0; k < 64; k++ {
		av, bv, pv := a.Uint64(), b.Uint64(), parent.Uint64()
		if av == bv {
			sameAB++
		}
		if av == pv {
			sameAP++
		}
	}
	if sameAB > 2 || sameAP > 2 {
		t.Fatalf("split streams collide: ab=%d ap=%d", sameAB, sameAP)
	}
}
