package mathx

import (
	"math"
	"testing"
	"testing/quick"
)

// randomPanel builds a deterministic series + presence mask from quick's
// raw inputs: n in [1,64] values drawn N(50,20), mask bits from maskBits,
// with bit (forceIdx mod n) forced present so at least one value is observed.
func randomPanel(seed uint64, rawLen uint8, maskBits uint64, forceIdx uint8) ([]float64, []bool) {
	n := int(rawLen)%64 + 1
	r := NewRNG(seed)
	xs := make([]float64, n)
	present := make([]bool, n)
	for i := range xs {
		xs[i] = r.Normal(50, 20)
		present[i] = maskBits&(1<<uint(i)) != 0
	}
	present[int(forceIdx)%n] = true
	return xs, present
}

// TestInterpolateNeverNaNProperty: with at least one observed value, every
// entry after InterpolateMissing is finite — gaps can never surface as NaN
// in a downstream panel, whatever the gap pattern.
func TestInterpolateNeverNaNProperty(t *testing.T) {
	f := func(seed uint64, rawLen uint8, maskBits uint64, forceIdx uint8) bool {
		xs, present := randomPanel(seed, rawLen, maskBits, forceIdx)
		// Poison the missing cells first: interpolation must overwrite them.
		for i := range xs {
			if !present[i] {
				xs[i] = math.NaN()
			}
		}
		InterpolateMissing(xs, present)
		for _, v := range xs {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

// TestInterpolateBoundedByNeighboursProperty: every filled value lies within
// the [min, max] of the observed values — linear interpolation and edge
// carry-out cannot extrapolate beyond what was seen.
func TestInterpolateBoundedByNeighboursProperty(t *testing.T) {
	f := func(seed uint64, rawLen uint8, maskBits uint64, forceIdx uint8) bool {
		xs, present := randomPanel(seed, rawLen, maskBits, forceIdx)
		lo, hi := math.Inf(1), math.Inf(-1)
		for i, v := range xs {
			if present[i] {
				lo, hi = math.Min(lo, v), math.Max(hi, v)
			}
		}
		InterpolateMissing(xs, present)
		// One ulp-scale tolerance: a convex combination can round a hair
		// past its endpoints.
		eps := 1e-9 * (math.Max(math.Abs(lo), math.Abs(hi)) + 1)
		for _, v := range xs {
			if v < lo-eps || v > hi+eps {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

// TestInterpolateIdentityOnFullyObserved: a fully-present series comes back
// bit-identical — imputation must never touch observed cells.
func TestInterpolateIdentityOnFullyObserved(t *testing.T) {
	f := func(seed uint64, rawLen uint8) bool {
		n := int(rawLen)%64 + 1
		r := NewRNG(seed)
		xs := make([]float64, n)
		present := make([]bool, n)
		for i := range xs {
			xs[i] = r.Normal(50, 20)
			present[i] = true
		}
		orig := append([]float64(nil), xs...)
		InterpolateMissing(xs, present)
		for i := range xs {
			if xs[i] != orig[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// TestInterpolateAllMissingUntouched pins the documented degenerate case:
// nothing observed, nothing changed.
func TestInterpolateAllMissingUntouched(t *testing.T) {
	xs := []float64{1, 2, 3}
	InterpolateMissing(xs, make([]bool, 3))
	if xs[0] != 1 || xs[1] != 2 || xs[2] != 3 {
		t.Fatalf("all-missing series modified: %v", xs)
	}
}

// streamAt derives the pre-split stream for ⟨seed, index⟩ the way the
// experiment layer does: a parent generator for the seed handing out one
// Split per index.
func streamAt(seed uint64, index int) *RNG {
	parent := NewRNG(seed)
	var s *RNG
	for i := 0; i <= index; i++ {
		s = parent.Split()
	}
	return s
}

// TestPreSplitStreamsIndependentProperty: distinct ⟨seed, index⟩ keys yield
// streams whose first draws differ — the independence the pre-split
// determinism rule (DESIGN.md) assumes when work is distributed by index. A
// single 64-bit collision between genuinely independent streams has
// probability ~2⁻⁶⁴; any collision quick can find is a derivation bug.
func TestPreSplitStreamsIndependentProperty(t *testing.T) {
	f := func(seedA, seedB uint64, ia, ib uint8) bool {
		idxA, idxB := int(ia)%32, int(ib)%32
		if seedA == seedB && idxA == idxB {
			return true // same key, same stream — not this property's concern
		}
		a, b := streamAt(seedA, idxA), streamAt(seedB, idxB)
		return a.Uint64() != b.Uint64()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

// TestPreSplitStreamsDeterministic: the same ⟨seed, index⟩ key always yields
// the same stream — the other half of the replay contract.
func TestPreSplitStreamsDeterministic(t *testing.T) {
	f := func(seed uint64, i uint8) bool {
		idx := int(i) % 32
		return streamAt(seed, idx).Uint64() == streamAt(seed, idx).Uint64()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
