package mathx

import (
	"math"
	"sort"
)

// Summary holds basic descriptive statistics of a sample.
type Summary struct {
	N                  int
	Mean, Var, Std     float64
	Min, Max           float64
	Median, P25, P75   float64
	P05, P95           float64
	SkewnessG1         float64
	StandardError      float64 // of the mean
	MedianAbsDeviation float64
}

// Summarize computes descriptive statistics of xs. Variance uses the n-1
// (sample) denominator. An empty sample yields NaN fields and N == 0.
func Summarize(xs []float64) Summary {
	s := Summary{N: len(xs)}
	if len(xs) == 0 {
		nan := math.NaN()
		s.Mean, s.Var, s.Std, s.Min, s.Max = nan, nan, nan, nan, nan
		s.Median, s.P25, s.P75, s.P05, s.P95 = nan, nan, nan, nan, nan
		s.SkewnessG1, s.StandardError, s.MedianAbsDeviation = nan, nan, nan
		return s
	}
	s.Mean = Vector(xs).Mean()
	s.Min = Vector(xs).Min()
	s.Max = Vector(xs).Max()
	var m2, m3 float64
	for _, x := range xs {
		d := x - s.Mean
		m2 += d * d
		m3 += d * d * d
	}
	n := float64(len(xs))
	if len(xs) > 1 {
		s.Var = m2 / (n - 1)
	}
	s.Std = math.Sqrt(s.Var)
	s.StandardError = s.Std / math.Sqrt(n)
	if s.Std > 0 {
		s.SkewnessG1 = (m3 / n) / math.Pow(m2/n, 1.5)
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	s.Median = quantileSorted(sorted, 0.5)
	s.P25 = quantileSorted(sorted, 0.25)
	s.P75 = quantileSorted(sorted, 0.75)
	s.P05 = quantileSorted(sorted, 0.05)
	s.P95 = quantileSorted(sorted, 0.95)
	dev := make([]float64, len(xs))
	for i, x := range xs {
		dev[i] = math.Abs(x - s.Median)
	}
	sort.Float64s(dev)
	s.MedianAbsDeviation = quantileSorted(dev, 0.5)
	return s
}

// Quantile returns the q-quantile (0 <= q <= 1) of xs using linear
// interpolation between order statistics. It copies and sorts its input.
func Quantile(xs []float64, q float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	return quantileSorted(sorted, q)
}

// Median returns the sample median of xs.
func Median(xs []float64) float64 { return Quantile(xs, 0.5) }

func quantileSorted(sorted []float64, q float64) float64 {
	if len(sorted) == 0 {
		return math.NaN()
	}
	if q <= 0 {
		return sorted[0]
	}
	if q >= 1 {
		return sorted[len(sorted)-1]
	}
	pos := q * float64(len(sorted)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return sorted[lo]
	}
	frac := pos - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// Mean returns the arithmetic mean of xs, NaN if empty.
func Mean(xs []float64) float64 { return Vector(xs).Mean() }

// Variance returns the sample (n-1) variance of xs.
func Variance(xs []float64) float64 { return Summarize(xs).Var }

// Covariance returns the sample covariance of paired samples xs, ys.
func Covariance(xs, ys []float64) float64 {
	if len(xs) != len(ys) || len(xs) < 2 {
		return math.NaN()
	}
	mx := Mean(xs)
	my := Mean(ys)
	var s float64
	for i := range xs {
		s += (xs[i] - mx) * (ys[i] - my)
	}
	return s / float64(len(xs)-1)
}

// Correlation returns the Pearson correlation coefficient of xs, ys.
func Correlation(xs, ys []float64) float64 {
	c := Covariance(xs, ys)
	sx := math.Sqrt(Variance(xs))
	sy := math.Sqrt(Variance(ys))
	if sx == 0 || sy == 0 {
		return math.NaN()
	}
	return c / (sx * sy)
}

// WelchT returns the Welch t-statistic and approximate two-sided p-value for
// the difference in means between samples a and b.
func WelchT(a, b []float64) (t, p float64) {
	sa := Summarize(a)
	sb := Summarize(b)
	if sa.N < 2 || sb.N < 2 {
		return math.NaN(), math.NaN()
	}
	va := sa.Var / float64(sa.N)
	vb := sb.Var / float64(sb.N)
	se := math.Sqrt(va + vb)
	if se == 0 {
		return math.NaN(), math.NaN()
	}
	t = (sa.Mean - sb.Mean) / se
	// Welch-Satterthwaite degrees of freedom.
	df := (va + vb) * (va + vb) / (va*va/float64(sa.N-1) + vb*vb/float64(sb.N-1))
	p = 2 * studentTSurvival(math.Abs(t), df)
	return t, p
}

// studentTSurvival returns P(T > t) for Student's t with df degrees of
// freedom, via the regularized incomplete beta function.
func studentTSurvival(t, df float64) float64 {
	if math.IsNaN(t) || df <= 0 {
		return math.NaN()
	}
	x := df / (df + t*t)
	return 0.5 * regIncompleteBeta(df/2, 0.5, x)
}

// regIncompleteBeta computes the regularized incomplete beta function
// I_x(a, b) using the continued-fraction expansion (Numerical Recipes style).
func regIncompleteBeta(a, b, x float64) float64 {
	if x <= 0 {
		return 0
	}
	if x >= 1 {
		return 1
	}
	lbeta := lgamma(a+b) - lgamma(a) - lgamma(b)
	front := math.Exp(lbeta + a*math.Log(x) + b*math.Log(1-x))
	if x < (a+1)/(a+b+2) {
		return front * betaCF(a, b, x) / a
	}
	return 1 - front*betaCF(b, a, 1-x)/b
}

func betaCF(a, b, x float64) float64 {
	const maxIter = 300
	const eps = 1e-14
	const tiny = 1e-30
	qab := a + b
	qap := a + 1
	qam := a - 1
	c := 1.0
	d := 1 - qab*x/qap
	if math.Abs(d) < tiny {
		d = tiny
	}
	d = 1 / d
	h := d
	for m := 1; m <= maxIter; m++ {
		fm := float64(m)
		m2 := 2 * fm
		aa := fm * (b - fm) * x / ((qam + m2) * (a + m2))
		d = 1 + aa*d
		if math.Abs(d) < tiny {
			d = tiny
		}
		c = 1 + aa/c
		if math.Abs(c) < tiny {
			c = tiny
		}
		d = 1 / d
		h *= d * c
		aa = -(a + fm) * (qab + fm) * x / ((a + m2) * (qap + m2))
		d = 1 + aa*d
		if math.Abs(d) < tiny {
			d = tiny
		}
		c = 1 + aa/c
		if math.Abs(c) < tiny {
			c = tiny
		}
		d = 1 / d
		del := d * c
		h *= del
		if math.Abs(del-1) < eps {
			break
		}
	}
	return h
}

func lgamma(x float64) float64 {
	v, _ := math.Lgamma(x)
	return v
}

// NormalCDF returns the standard normal cumulative distribution at x.
func NormalCDF(x float64) float64 {
	return 0.5 * math.Erfc(-x/math.Sqrt2)
}

// NormalSurvival returns 1 - NormalCDF(x).
func NormalSurvival(x float64) float64 {
	return 0.5 * math.Erfc(x/math.Sqrt2)
}
