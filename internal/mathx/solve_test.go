package mathx

import (
	"math"
	"testing"
	"testing/quick"
)

func TestSolveLinearKnown(t *testing.T) {
	a := MatrixFromRows([][]float64{
		{2, 1, -1},
		{-3, -1, 2},
		{-2, 1, 2},
	})
	b := Vector{8, -11, -3}
	x, err := SolveLinear(a, b)
	if err != nil {
		t.Fatal(err)
	}
	want := Vector{2, 3, -1}
	for i := range want {
		if !almostEqual(x[i], want[i], 1e-9) {
			t.Fatalf("x = %v want %v", x, want)
		}
	}
}

func TestSolveLinearSingular(t *testing.T) {
	a := MatrixFromRows([][]float64{{1, 2}, {2, 4}})
	if _, err := SolveLinear(a, Vector{1, 2}); err == nil {
		t.Fatal("expected ErrSingular")
	}
}

func TestSolveLinearRandomRoundTrip(t *testing.T) {
	f := func(seed uint64) bool {
		r := NewRNG(seed)
		n := 1 + r.Intn(6)
		a := NewMatrix(n, n)
		for i := range a.Data {
			a.Data[i] = r.Normal(0, 1)
		}
		// Diagonal dominance guarantees nonsingularity.
		for i := 0; i < n; i++ {
			a.Set(i, i, a.At(i, i)+float64(n)+1)
		}
		xTrue := make(Vector, n)
		for i := range xTrue {
			xTrue[i] = r.Normal(0, 3)
		}
		b := a.MulVec(xTrue)
		x, err := SolveLinear(a, b)
		if err != nil {
			return false
		}
		for i := range x {
			if !almostEqual(x[i], xTrue[i], 1e-7) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestInvert(t *testing.T) {
	a := MatrixFromRows([][]float64{{4, 7}, {2, 6}})
	inv, err := Invert(a)
	if err != nil {
		t.Fatal(err)
	}
	prod := a.Mul(inv)
	for i := 0; i < 2; i++ {
		for j := 0; j < 2; j++ {
			want := 0.0
			if i == j {
				want = 1
			}
			if !almostEqual(prod.At(i, j), want, 1e-10) {
				t.Fatalf("a*inv = %v", prod)
			}
		}
	}
}

func TestLeastSquaresRecoversCoefficients(t *testing.T) {
	r := NewRNG(42)
	n, p := 200, 3
	beta := Vector{1.5, -2.0, 0.5}
	a := NewMatrix(n, p)
	b := make(Vector, n)
	for i := 0; i < n; i++ {
		for j := 0; j < p; j++ {
			a.Set(i, j, r.Normal(0, 1))
		}
		b[i] = a.Row(i).Dot(beta) + r.Normal(0, 0.01)
	}
	x, err := LeastSquares(a, b)
	if err != nil {
		t.Fatal(err)
	}
	for j := range beta {
		if !almostEqual(x[j], beta[j], 0.01) {
			t.Fatalf("beta = %v want %v", x, beta)
		}
	}
}

func TestLeastSquaresRankDeficientFallsBackToRidge(t *testing.T) {
	// Two identical columns: AᵀA singular, ridge fallback must still return.
	a := MatrixFromRows([][]float64{{1, 1}, {2, 2}, {3, 3}})
	b := Vector{2, 4, 6}
	x, err := LeastSquares(a, b)
	if err != nil {
		t.Fatal(err)
	}
	// Prediction should still be accurate even if coefficients are split.
	pred := a.MulVec(x)
	for i := range b {
		if !almostEqual(pred[i], b[i], 1e-3) {
			t.Fatalf("pred = %v want %v", pred, b)
		}
	}
}

func TestRidgeShrinks(t *testing.T) {
	r := NewRNG(1)
	n := 50
	a := NewMatrix(n, 2)
	b := make(Vector, n)
	for i := 0; i < n; i++ {
		a.Set(i, 0, r.Normal(0, 1))
		a.Set(i, 1, r.Normal(0, 1))
		b[i] = 3*a.At(i, 0) - 2*a.At(i, 1) + r.Normal(0, 0.1)
	}
	xOLS, err := LeastSquares(a, b)
	if err != nil {
		t.Fatal(err)
	}
	xBig, err := RidgeSolve(a, b, 1000)
	if err != nil {
		t.Fatal(err)
	}
	if xBig.Norm() >= xOLS.Norm() {
		t.Fatalf("ridge did not shrink: %v vs %v", xBig.Norm(), xOLS.Norm())
	}
}

func TestSVDReconstruction(t *testing.T) {
	f := func(seed uint64) bool {
		r := NewRNG(seed)
		rows := 1 + r.Intn(8)
		cols := 1 + r.Intn(8)
		m := NewMatrix(rows, cols)
		for i := range m.Data {
			m.Data[i] = r.Normal(0, 2)
		}
		d := ComputeSVD(m)
		rec := d.Reconstruct(0)
		return rec.Sub(m).MaxAbs() < 1e-8
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSVDSingularValuesSortedNonNegative(t *testing.T) {
	f := func(seed uint64) bool {
		r := NewRNG(seed)
		m := NewMatrix(2+r.Intn(6), 2+r.Intn(6))
		for i := range m.Data {
			m.Data[i] = r.Normal(0, 1)
		}
		d := ComputeSVD(m)
		for i, sv := range d.S {
			if sv < 0 {
				return false
			}
			if i > 0 && d.S[i-1] < sv-1e-12 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSVDOrthonormalColumns(t *testing.T) {
	r := NewRNG(99)
	m := NewMatrix(10, 4)
	for i := range m.Data {
		m.Data[i] = r.Normal(0, 1)
	}
	d := ComputeSVD(m)
	utu := d.U.T().Mul(d.U)
	vtv := d.V.T().Mul(d.V)
	for i := 0; i < 4; i++ {
		for j := 0; j < 4; j++ {
			want := 0.0
			if i == j {
				want = 1
			}
			if !almostEqual(utu.At(i, j), want, 1e-8) {
				t.Fatalf("UᵀU not identity:\n%v", utu)
			}
			if !almostEqual(vtv.At(i, j), want, 1e-8) {
				t.Fatalf("VᵀV not identity:\n%v", vtv)
			}
		}
	}
}

func TestSVDLowRankTruncation(t *testing.T) {
	// Build an exactly rank-2 matrix; truncation at k=2 must be exact.
	u := MatrixFromRows([][]float64{{1, 0}, {0, 1}, {1, 1}, {2, -1}})
	v := MatrixFromRows([][]float64{{1, 2, 3}, {-1, 0, 1}})
	m := u.Mul(v)
	d := ComputeSVD(m)
	if rank := d.Rank(1e-10); rank != 2 {
		t.Fatalf("rank = %d want 2", rank)
	}
	rec := d.Reconstruct(2)
	if rec.Sub(m).MaxAbs() > 1e-8 {
		t.Fatal("rank-2 truncation not exact on rank-2 matrix")
	}
}

func TestSVDHardThreshold(t *testing.T) {
	m := MatrixFromRows([][]float64{{10, 0}, {0, 0.001}})
	d := ComputeSVD(m)
	den := d.HardThreshold(1)
	if !almostEqual(den.At(0, 0), 10, 1e-9) {
		t.Fatalf("kept large sv: %v", den.At(0, 0))
	}
	if math.Abs(den.At(1, 1)) > 1e-12 {
		t.Fatalf("small sv should be zeroed, got %v", den.At(1, 1))
	}
}
