package mathx

import (
	"fmt"
	"math"
	"strings"
)

// Matrix is a dense, row-major matrix of float64 values.
type Matrix struct {
	Rows, Cols int
	Data       []float64 // len = Rows*Cols, row-major
}

// NewMatrix returns a zero matrix with r rows and c columns.
func NewMatrix(r, c int) *Matrix {
	if r < 0 || c < 0 {
		panic(fmt.Sprintf("mathx: invalid matrix dims %dx%d", r, c))
	}
	return &Matrix{Rows: r, Cols: c, Data: make([]float64, r*c)}
}

// MatrixFromRows builds a matrix from a slice of equal-length rows.
func MatrixFromRows(rows [][]float64) *Matrix {
	r := len(rows)
	if r == 0 {
		return NewMatrix(0, 0)
	}
	c := len(rows[0])
	m := NewMatrix(r, c)
	for i, row := range rows {
		if len(row) != c {
			panic(fmt.Sprintf("mathx: ragged rows: row %d has %d cols, want %d", i, len(row), c))
		}
		copy(m.Data[i*c:(i+1)*c], row)
	}
	return m
}

// Identity returns the n-by-n identity matrix.
func Identity(n int) *Matrix {
	m := NewMatrix(n, n)
	for i := 0; i < n; i++ {
		m.Set(i, i, 1)
	}
	return m
}

// At returns element (i, j).
func (m *Matrix) At(i, j int) float64 { return m.Data[i*m.Cols+j] }

// Set assigns element (i, j).
func (m *Matrix) Set(i, j int, v float64) { m.Data[i*m.Cols+j] = v }

// Clone returns an independent copy of m.
func (m *Matrix) Clone() *Matrix {
	out := NewMatrix(m.Rows, m.Cols)
	copy(out.Data, m.Data)
	return out
}

// Row returns a copy of row i as a Vector.
func (m *Matrix) Row(i int) Vector {
	out := make(Vector, m.Cols)
	copy(out, m.Data[i*m.Cols:(i+1)*m.Cols])
	return out
}

// Col returns a copy of column j as a Vector.
func (m *Matrix) Col(j int) Vector {
	out := make(Vector, m.Rows)
	for i := 0; i < m.Rows; i++ {
		out[i] = m.At(i, j)
	}
	return out
}

// SetRow copies v into row i.
func (m *Matrix) SetRow(i int, v Vector) {
	if len(v) != m.Cols {
		panic(fmt.Sprintf("mathx: setRow length %d into %d cols", len(v), m.Cols))
	}
	copy(m.Data[i*m.Cols:(i+1)*m.Cols], v)
}

// SetCol copies v into column j.
func (m *Matrix) SetCol(j int, v Vector) {
	if len(v) != m.Rows {
		panic(fmt.Sprintf("mathx: setCol length %d into %d rows", len(v), m.Rows))
	}
	for i := 0; i < m.Rows; i++ {
		m.Set(i, j, v[i])
	}
}

// T returns the transpose of m as a new matrix.
func (m *Matrix) T() *Matrix {
	out := NewMatrix(m.Cols, m.Rows)
	for i := 0; i < m.Rows; i++ {
		for j := 0; j < m.Cols; j++ {
			out.Set(j, i, m.At(i, j))
		}
	}
	return out
}

// Mul returns the matrix product m * b.
func (m *Matrix) Mul(b *Matrix) *Matrix {
	if m.Cols != b.Rows {
		panic(fmt.Sprintf("mathx: mul %dx%d by %dx%d", m.Rows, m.Cols, b.Rows, b.Cols))
	}
	out := NewMatrix(m.Rows, b.Cols)
	for i := 0; i < m.Rows; i++ {
		for k := 0; k < m.Cols; k++ {
			a := m.At(i, k)
			if a == 0 {
				continue
			}
			for j := 0; j < b.Cols; j++ {
				out.Data[i*out.Cols+j] += a * b.At(k, j)
			}
		}
	}
	return out
}

// MulVec returns the matrix-vector product m * v.
func (m *Matrix) MulVec(v Vector) Vector {
	if m.Cols != len(v) {
		panic(fmt.Sprintf("mathx: mulVec %dx%d by %d", m.Rows, m.Cols, len(v)))
	}
	out := make(Vector, m.Rows)
	for i := 0; i < m.Rows; i++ {
		var s float64
		row := m.Data[i*m.Cols : (i+1)*m.Cols]
		for j, x := range row {
			s += x * v[j]
		}
		out[i] = s
	}
	return out
}

// Add returns m + b as a new matrix.
func (m *Matrix) Add(b *Matrix) *Matrix {
	m.mustSameShape(b, "add")
	out := m.Clone()
	for i := range out.Data {
		out.Data[i] += b.Data[i]
	}
	return out
}

// Sub returns m - b as a new matrix.
func (m *Matrix) Sub(b *Matrix) *Matrix {
	m.mustSameShape(b, "sub")
	out := m.Clone()
	for i := range out.Data {
		out.Data[i] -= b.Data[i]
	}
	return out
}

// Scale returns a*m as a new matrix.
func (m *Matrix) Scale(a float64) *Matrix {
	out := m.Clone()
	for i := range out.Data {
		out.Data[i] *= a
	}
	return out
}

// FrobeniusNorm returns the Frobenius norm of m.
func (m *Matrix) FrobeniusNorm() float64 {
	var s float64
	for _, x := range m.Data {
		s += x * x
	}
	return math.Sqrt(s)
}

// MaxAbs returns the largest absolute element of m.
func (m *Matrix) MaxAbs() float64 {
	var mx float64
	for _, x := range m.Data {
		if a := math.Abs(x); a > mx {
			mx = a
		}
	}
	return mx
}

func (m *Matrix) mustSameShape(b *Matrix, op string) {
	if m.Rows != b.Rows || m.Cols != b.Cols {
		panic(fmt.Sprintf("mathx: %s of %dx%d with %dx%d", op, m.Rows, m.Cols, b.Rows, b.Cols))
	}
}

// String renders the matrix for debugging.
func (m *Matrix) String() string {
	var sb strings.Builder
	for i := 0; i < m.Rows; i++ {
		for j := 0; j < m.Cols; j++ {
			if j > 0 {
				sb.WriteByte(' ')
			}
			fmt.Fprintf(&sb, "%9.4f", m.At(i, j))
		}
		sb.WriteByte('\n')
	}
	return sb.String()
}
