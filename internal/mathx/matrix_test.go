package mathx

import (
	"math"
	"testing"
	"testing/quick"
)

func almostEqual(a, b, tol float64) bool {
	if math.IsNaN(a) || math.IsNaN(b) {
		return false
	}
	return math.Abs(a-b) <= tol
}

func TestVectorDotNormSum(t *testing.T) {
	v := Vector{1, 2, 3}
	w := Vector{4, -5, 6}
	if got := v.Dot(w); got != 1*4-2*5+3*6 {
		t.Fatalf("dot = %v", got)
	}
	if got := v.Norm(); !almostEqual(got, math.Sqrt(14), 1e-12) {
		t.Fatalf("norm = %v", got)
	}
	if got := v.Sum(); got != 6 {
		t.Fatalf("sum = %v", got)
	}
	if got := v.Mean(); got != 2 {
		t.Fatalf("mean = %v", got)
	}
}

func TestVectorMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on length mismatch")
		}
	}()
	Vector{1}.Dot(Vector{1, 2})
}

func TestVectorAddSubScale(t *testing.T) {
	v := Vector{1, 2}
	w := Vector{3, 4}
	if got := v.Add(w); got[0] != 4 || got[1] != 6 {
		t.Fatalf("add = %v", got)
	}
	if got := w.Sub(v); got[0] != 2 || got[1] != 2 {
		t.Fatalf("sub = %v", got)
	}
	u := v.Clone().Scale(2)
	if u[0] != 2 || u[1] != 4 {
		t.Fatalf("scale = %v", u)
	}
	if v[0] != 1 {
		t.Fatal("scale mutated the original via clone")
	}
	x := Vector{0, 0}.AddScaled(3, Vector{1, 2})
	if x[0] != 3 || x[1] != 6 {
		t.Fatalf("addScaled = %v", x)
	}
}

func TestRMSE(t *testing.T) {
	if got := RMSE(Vector{0, 0}, Vector{3, 4}); !almostEqual(got, math.Sqrt(12.5), 1e-12) {
		t.Fatalf("rmse = %v", got)
	}
	if !math.IsNaN(RMSE(Vector{}, Vector{})) {
		t.Fatal("rmse of empty should be NaN")
	}
}

func TestMatrixMul(t *testing.T) {
	a := MatrixFromRows([][]float64{{1, 2}, {3, 4}})
	b := MatrixFromRows([][]float64{{5, 6}, {7, 8}})
	c := a.Mul(b)
	want := [][]float64{{19, 22}, {43, 50}}
	for i := 0; i < 2; i++ {
		for j := 0; j < 2; j++ {
			if c.At(i, j) != want[i][j] {
				t.Fatalf("mul[%d][%d] = %v want %v", i, j, c.At(i, j), want[i][j])
			}
		}
	}
}

func TestMatrixTransposeInvolution(t *testing.T) {
	f := func(seed uint64) bool {
		r := NewRNG(seed)
		rows := 1 + r.Intn(6)
		cols := 1 + r.Intn(6)
		m := NewMatrix(rows, cols)
		for i := range m.Data {
			m.Data[i] = r.Normal(0, 1)
		}
		tt := m.T().T()
		if tt.Rows != m.Rows || tt.Cols != m.Cols {
			return false
		}
		for i := range m.Data {
			if m.Data[i] != tt.Data[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestMatrixMulVecAgainstMul(t *testing.T) {
	f := func(seed uint64) bool {
		r := NewRNG(seed)
		rows := 1 + r.Intn(5)
		cols := 1 + r.Intn(5)
		m := NewMatrix(rows, cols)
		for i := range m.Data {
			m.Data[i] = r.Normal(0, 2)
		}
		v := make(Vector, cols)
		for i := range v {
			v[i] = r.Normal(0, 2)
		}
		got := m.MulVec(v)
		vm := NewMatrix(cols, 1)
		vm.SetCol(0, v)
		want := m.Mul(vm)
		for i := 0; i < rows; i++ {
			if !almostEqual(got[i], want.At(i, 0), 1e-9) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestIdentityIsMulNeutral(t *testing.T) {
	r := NewRNG(7)
	m := NewMatrix(4, 4)
	for i := range m.Data {
		m.Data[i] = r.Normal(0, 1)
	}
	p := m.Mul(Identity(4))
	q := Identity(4).Mul(m)
	for i := range m.Data {
		if !almostEqual(p.Data[i], m.Data[i], 1e-12) || !almostEqual(q.Data[i], m.Data[i], 1e-12) {
			t.Fatal("identity not neutral")
		}
	}
}

func TestRowColRoundTrip(t *testing.T) {
	m := MatrixFromRows([][]float64{{1, 2, 3}, {4, 5, 6}})
	if r := m.Row(1); r[0] != 4 || r[2] != 6 {
		t.Fatalf("row = %v", r)
	}
	if c := m.Col(2); c[0] != 3 || c[1] != 6 {
		t.Fatalf("col = %v", c)
	}
	m.SetRow(0, Vector{7, 8, 9})
	if m.At(0, 1) != 8 {
		t.Fatal("setRow failed")
	}
	m.SetCol(0, Vector{10, 11})
	if m.At(1, 0) != 11 {
		t.Fatal("setCol failed")
	}
}

func TestMatrixAddSubScaleNorms(t *testing.T) {
	a := MatrixFromRows([][]float64{{3, 0}, {0, 4}})
	b := MatrixFromRows([][]float64{{1, 1}, {1, 1}})
	if got := a.Add(b).At(0, 0); got != 4 {
		t.Fatalf("add = %v", got)
	}
	if got := a.Sub(b).At(1, 1); got != 3 {
		t.Fatalf("sub = %v", got)
	}
	if got := a.Scale(2).At(1, 1); got != 8 {
		t.Fatalf("scale = %v", got)
	}
	if got := a.FrobeniusNorm(); got != 5 {
		t.Fatalf("frobenius = %v", got)
	}
	if got := a.MaxAbs(); got != 4 {
		t.Fatalf("maxAbs = %v", got)
	}
}

func TestRaggedRowsPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on ragged rows")
		}
	}()
	MatrixFromRows([][]float64{{1, 2}, {3}})
}
