package ixp

import (
	"testing"

	"sisyphus/internal/netsim/engine"
	"sisyphus/internal/netsim/scenario"
	"sisyphus/internal/probe"
)

func TestMatcherAddr(t *testing.T) {
	m := NewMatcher("196.60.8.", "196.60.9.")
	if !m.MatchAddr("196.60.8.17") {
		t.Fatal("member address not matched")
	}
	if m.MatchAddr("10.0.1.1") {
		t.Fatal("AS address matched")
	}
	if !m.MatchAddr("196.60.9.3") {
		t.Fatal("second prefix ignored")
	}
}

// TestMatcherOctetBoundary is the regression table for the prefix-boundary
// bug: a prefix registered without its trailing dot ("196.60.8") used to
// match any address merely *starting* with those characters ("196.60.80.1",
// "196.60.81.200"), silently misclassifying non-IXP hops as IXP crossings.
func TestMatcherOctetBoundary(t *testing.T) {
	cases := []struct {
		name     string
		prefixes []string
		addr     string
		want     bool
	}{
		{"dotted prefix, member", []string{"196.60.8."}, "196.60.8.17", true},
		{"dotted prefix, longer octet", []string{"196.60.8."}, "196.60.80.1", false},
		{"bare prefix, member", []string{"196.60.8"}, "196.60.8.17", true},
		{"bare prefix, longer octet", []string{"196.60.8"}, "196.60.80.1", false},
		{"bare prefix, other longer octet", []string{"196.60.8"}, "196.60.81.200", false},
		{"bare prefix, address equals prefix", []string{"196.60.8"}, "196.60.8", true},
		{"dotted prefix, address equals subnet", []string{"196.60.8."}, "196.60.8", true},
		{"shared leading digits", []string{"196.60.8"}, "196.60.9.1", false},
		{"prefix is a digit-suffix of octet", []string{"196.60.8"}, "1196.60.8.1", false},
		{"multiple prefixes, second matches", []string{"10.0.1", "196.60.8"}, "196.60.8.255", true},
		{"empty prefix matches nothing", []string{""}, "196.60.8.1", false},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			if got := NewMatcher(c.prefixes...).MatchAddr(c.addr); got != c.want {
				t.Errorf("NewMatcher(%v).MatchAddr(%q) = %v, want %v", c.prefixes, c.addr, got, c.want)
			}
		})
	}
}

func TestFromTopologyAndCrosses(t *testing.T) {
	s, err := scenario.BuildSouthAfrica()
	if err != nil {
		t.Fatal(err)
	}
	e := engine.New(s.Topo, 3, engine.Config{})
	p := probe.NewProber(e, 4)
	matcher, err := FromTopology(s.Topo, s.IXPName)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := FromTopology(s.Topo, "NoSuchIXP"); err == nil {
		t.Fatal("unknown IXP accepted")
	}

	src, _ := s.Topo.FindPoP(328745, "Johannesburg")
	pre, err := p.SpeedTest(src, scenario.BigContent, probe.IntentBaseline, "t")
	if err != nil {
		t.Fatal(err)
	}
	if matcher.Crosses(pre) {
		t.Fatal("pre-join measurement crosses IXP")
	}

	e.Schedule(engine.EvJoinIXP(5, s.IXPName, 328745, 0))
	if err := e.RunUntil(6); err != nil {
		t.Fatal(err)
	}
	post, err := p.SpeedTest(src, scenario.BigContent, probe.IntentBaseline, "t")
	if err != nil {
		t.Fatal(err)
	}
	if !matcher.Crosses(post) {
		t.Fatal("post-join measurement does not cross IXP")
	}

	// Treatment timing: first crossing hour is the post-join sample's hour.
	hour, found := matcher.FirstCrossingHour([]*probe.Measurement{post, pre})
	if !found || hour != post.Hour {
		t.Fatalf("first crossing = %v (%v)", hour, found)
	}
	if _, found := matcher.FirstCrossingHour([]*probe.Measurement{pre}); found {
		t.Fatal("crossing claimed with none present")
	}
}
