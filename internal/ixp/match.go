// Package ixp implements the analysis-side IXP detection of the paper's
// case study: "we determine whether a path crosses the NAPAfrica IXP by
// matching hop IP addresses against addresses announced by the IXP". It
// deliberately consumes only measurement records and prefix strings — the
// same information a real analyst has — never the simulator's ground truth.
package ixp

import (
	"strings"

	"sisyphus/internal/netsim/topo"
	"sisyphus/internal/probe"
)

// Matcher tests whether addresses fall inside a set of announced prefixes.
// Prefixes use the simulator's dotted-prefix convention (e.g. "196.60.8.").
type Matcher struct {
	prefixes []string
}

// NewMatcher builds a matcher from announced prefix strings. Prefixes are
// normalized to end at an octet boundary (a trailing "."): a prefix
// registered as "196.60.8" must match "196.60.8.1" but not "196.60.80.1" —
// with a bare string-prefix test the latter would be a false IXP crossing
// and misclassify the unit as treated.
func NewMatcher(prefixes ...string) *Matcher {
	m := &Matcher{prefixes: make([]string, 0, len(prefixes))}
	for _, p := range prefixes {
		if p == "" {
			continue // an empty prefix would match every address
		}
		if !strings.HasSuffix(p, ".") {
			p += "."
		}
		m.prefixes = append(m.prefixes, p)
	}
	return m
}

// FromTopology builds a matcher for one exchange from the topology's
// declared peering LAN (the PeeringDB lookup of the paper).
func FromTopology(t *topo.Topology, ixpName string) (*Matcher, error) {
	x, err := t.IXP(ixpName)
	if err != nil {
		return nil, err
	}
	return NewMatcher(x.Prefix), nil
}

// MatchAddr reports whether one address is inside any announced prefix.
// Prefixes end at an octet boundary (see NewMatcher), so the address must
// continue the prefix exactly at a dot; an address equal to the prefix
// minus its trailing dot (the subnet itself) also matches.
func (m *Matcher) MatchAddr(addr string) bool {
	for _, p := range m.prefixes {
		if strings.HasPrefix(addr, p) || addr == p[:len(p)-1] {
			return true
		}
	}
	return false
}

// Crosses reports whether a measurement's traceroute shows an IXP crossing.
func (m *Matcher) Crosses(meas *probe.Measurement) bool {
	for _, h := range meas.Hops {
		if m.MatchAddr(h.Addr) {
			return true
		}
	}
	return false
}

// FirstCrossingHour scans measurements (any order) of one unit and returns
// the earliest Hour at which an IXP crossing appears, and whether one was
// found. This defines the paper's treatment time: "the first appearance of
// the IXP in a path".
func (m *Matcher) FirstCrossingHour(ms []*probe.Measurement) (float64, bool) {
	found := false
	var first float64
	for _, meas := range ms {
		if !m.Crosses(meas) {
			continue
		}
		if !found || meas.Hour < first {
			first = meas.Hour
			found = true
		}
	}
	return first, found
}
