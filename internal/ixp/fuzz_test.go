package ixp

import (
	"strings"
	"testing"
)

// FuzzMatcherPrefix re-pins the octet-boundary fix as a property over
// arbitrary prefix/address pairs: NewMatcher never panics, and MatchAddr
// answers true exactly when the address IS the prefix (sans trailing dot) or
// continues it at a dot boundary. The historical bug — "196.60.8" matching
// "196.60.80.1" — is a direct counterexample to the boundary property.
func FuzzMatcherPrefix(f *testing.F) {
	f.Add("196.60.8", "196.60.8.1")  // true crossing
	f.Add("196.60.8", "196.60.80.1") // the octet-boundary false positive
	f.Add("196.60.8.", "196.60.8")   // subnet address itself
	f.Add("", "10.0.0.1")            // empty prefix must match nothing
	f.Add(".", ".")                  // degenerate dotted prefix
	f.Add("196.60.8", "196.60.8")    // prefix minus trailing dot
	f.Fuzz(func(t *testing.T, prefix, addr string) {
		m := NewMatcher(prefix)
		got := m.MatchAddr(addr)
		if prefix == "" {
			if got {
				t.Fatalf("empty prefix matched %q", addr)
			}
			return
		}
		// Reference semantics: normalize to a trailing dot, then the address
		// must either equal the subnet or continue it past the dot.
		canon := prefix
		if !strings.HasSuffix(canon, ".") {
			canon += "."
		}
		subnet := strings.TrimSuffix(canon, ".")
		want := addr == subnet || strings.HasPrefix(addr, canon)
		if got != want {
			t.Fatalf("MatchAddr(%q) with prefix %q = %v, want %v", addr, prefix, got, want)
		}
		// The boundary property itself, stated without reference to the
		// implementation's normalization: a matching address longer than the
		// subnet continues at '.' — never mid-octet.
		if got && addr != subnet {
			if len(addr) <= len(subnet) || addr[len(subnet)] != '.' {
				t.Fatalf("prefix %q matched %q without an octet boundary", prefix, addr)
			}
		}
	})
}
