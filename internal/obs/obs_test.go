package obs

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"reflect"
	"strings"
	"sync"
	"testing"
)

// TestNilRecorderIsNoOp: every entry point must be callable with no recorder
// attached — the nil path IS the off switch, so none of this may panic or
// observe anything.
func TestNilRecorderIsNoOp(t *testing.T) {
	ctx := context.Background()
	if r := From(ctx); r != nil {
		t.Fatalf("From(bare ctx) = %v, want nil", r)
	}
	sp := StartSpan(ctx, "x")
	if sp != nil {
		t.Fatalf("StartSpan without recorder = %v, want nil", sp)
	}
	sp.SetItems(3)
	sp.End(errors.New("boom"))
	Add(ctx, "c", 1)
	Gauge(ctx, "g", 2)

	var r *Recorder
	if got := r.Spans(); got != nil {
		t.Fatalf("nil.Spans() = %v", got)
	}
	if err := r.WriteTrace(&bytes.Buffer{}); err != nil {
		t.Fatalf("nil.WriteTrace: %v", err)
	}
	if m := r.Metrics(); m != nil {
		t.Fatalf("nil.Metrics() = %v", m)
	}
	if With(ctx, nil) != ctx {
		t.Fatal("With(ctx, nil) must return ctx unchanged")
	}
	if Scoped(ctx, "e") != ctx {
		t.Fatal("Scoped without a recorder must return ctx unchanged")
	}
}

// TestNilPathZeroAlloc is the deterministic half of the zero-cost-when-off
// invariant: with no recorder attached, a full instrumentation site — span
// start/items/end plus a counter and a gauge — allocates nothing.
func TestNilPathZeroAlloc(t *testing.T) {
	ctx := context.Background()
	allocs := testing.AllocsPerRun(200, func() {
		sp := StartSpan(ctx, "stage")
		sp.SetItems(7)
		sp.End(nil)
		Add(ctx, "counter", 1)
		Gauge(ctx, "gauge", 3.5)
	})
	if allocs != 0 {
		t.Fatalf("disabled instrumentation path allocates %.1f objects/op, want 0", allocs)
	}
}

// TestSpanRecording covers the live path: scoping, item counts, error tags,
// and the monotone span clock.
func TestSpanRecording(t *testing.T) {
	rec := NewRecorder()
	ctx := Scoped(With(context.Background(), rec), "exp1")
	if got := ScopeOf(ctx); got != "exp1" {
		t.Fatalf("ScopeOf = %q", got)
	}

	sp := StartSpan(ctx, "exp1/estimator")
	sp.SetItems(12)
	sp.End(nil)
	sp2 := StartSpan(ctx, "exp1/report")
	sp2.End(errors.New("boom"))

	spans := rec.Spans()
	if len(spans) != 2 {
		t.Fatalf("got %d spans, want 2", len(spans))
	}
	s0, s1 := spans[0], spans[1]
	if s0.Name != "exp1/estimator" || s0.Scope != "exp1" || s0.Items != 12 || s0.Err != "" {
		t.Fatalf("span 0 = %+v", s0)
	}
	if s1.Name != "exp1/report" || s1.Err != "boom" {
		t.Fatalf("span 1 = %+v", s1)
	}
	if s0.StartMs < 0 || s0.DurMs < 0 || s1.StartMs < s0.StartMs {
		t.Fatalf("span clock not monotone: %+v then %+v", s0, s1)
	}
}

// TestWriteTraceJSONL: the trace is strict JSONL — one valid object per
// line, fields matching the documented schema, in recording order.
func TestWriteTraceJSONL(t *testing.T) {
	rec := NewRecorder()
	ctx := Scoped(With(context.Background(), rec), "e")
	for _, name := range []string{"e/scenario", "e/dataset"} {
		sp := StartSpan(ctx, name)
		sp.SetItems(1)
		sp.End(nil)
	}
	var buf bytes.Buffer
	if err := rec.WriteTrace(&buf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimRight(buf.String(), "\n"), "\n")
	if len(lines) != 2 {
		t.Fatalf("got %d trace lines, want 2", len(lines))
	}
	for i, line := range lines {
		var m map[string]any
		if err := json.Unmarshal([]byte(line), &m); err != nil {
			t.Fatalf("line %d is not valid JSON: %v", i, err)
		}
		for _, key := range []string{"span", "scope", "start_ms", "dur_ms", "items"} {
			if _, ok := m[key]; !ok {
				t.Fatalf("line %d missing %q: %s", i, key, line)
			}
		}
		if _, ok := m["err"]; ok {
			t.Fatalf("successful span carries err field: %s", line)
		}
	}
	var first Span
	if err := json.Unmarshal([]byte(lines[0]), &first); err != nil {
		t.Fatal(err)
	}
	if first.Name != "e/scenario" || first.Scope != "e" {
		t.Fatalf("round-tripped span = %+v", first)
	}
}

// TestMetricsSnapshotAndRender: counters accumulate, gauges last-write-win,
// scopes stay separate, and Render is deterministic and sorted.
func TestMetricsSnapshotAndRender(t *testing.T) {
	rec := NewRecorder()
	base := With(context.Background(), rec)
	a := Scoped(base, "a")
	b := Scoped(base, "b")
	Add(a, "fits", 2)
	Add(a, "fits", 3)
	Gauge(a, "coverage", 0.25)
	Gauge(a, "coverage", 0.75) // last write wins
	Add(b, "fits", 1)

	want := Metrics{
		"a": {"fits": 5, "coverage": 0.75},
		"b": {"fits": 1},
	}
	if got := rec.Metrics(); !reflect.DeepEqual(got, want) {
		t.Fatalf("Metrics() = %v, want %v", got, want)
	}

	r1, r2 := rec.Metrics().Render(), rec.Metrics().Render()
	if r1 != r2 {
		t.Fatal("Render is not deterministic")
	}
	wantText := "a:\n  coverage  0.75\n  fits      5\n" + "b:\n  fits  1\n"
	if r1 != wantText {
		t.Fatalf("Render =\n%q\nwant\n%q", r1, wantText)
	}
	if got := (Metrics{}).Render(); got != "(no metrics recorded)\n" {
		t.Fatalf("empty Render = %q", got)
	}
	// JSON round trip — what -metrics -json emits must decode back equal.
	blob, err := json.Marshal(rec.Metrics())
	if err != nil {
		t.Fatal(err)
	}
	var back Metrics
	if err := json.Unmarshal(blob, &back); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(back, rec.Metrics()) {
		t.Fatalf("metrics JSON round trip drifted: %v", back)
	}
}

// TestUnscopedMetricsRenderLabel: metrics recorded outside any scope render
// under the explicit "(unscoped)" heading rather than an empty one.
func TestUnscopedMetricsRenderLabel(t *testing.T) {
	rec := NewRecorder()
	Add(With(context.Background(), rec), "loose", 1)
	if got := rec.Metrics().Render(); !strings.HasPrefix(got, "(unscoped):\n") {
		t.Fatalf("Render = %q", got)
	}
}

// TestConcurrentRecording: many goroutines hammering one recorder (the
// parallel fan-out shape) must neither race (-race run) nor lose events.
func TestConcurrentRecording(t *testing.T) {
	rec := NewRecorder()
	ctx := With(context.Background(), rec)
	const workers, each = 8, 50
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < each; i++ {
				sp := StartSpan(ctx, "w")
				Add(ctx, "n", 1)
				sp.End(nil)
			}
		}()
	}
	wg.Wait()
	if got := len(rec.Spans()); got != workers*each {
		t.Fatalf("lost spans: %d, want %d", got, workers*each)
	}
	if got := rec.Metrics()[""]["n"]; got != workers*each {
		t.Fatalf("counter = %v, want %d", got, workers*each)
	}
}

// TestLimitSpansRing pins the amortized ring a long-running server relies
// on: a bounded recorder grows to at most twice the bound, compacts to the
// most recent max, and counts every discarded span.
func TestLimitSpansRing(t *testing.T) {
	rec := NewRecorder()
	rec.LimitSpans(10)
	ctx := Scoped(With(context.Background(), rec), "srv")
	emit := func(n int, prefix string) {
		for i := 0; i < n; i++ {
			sp := StartSpan(ctx, fmt.Sprintf("%s%d", prefix, i))
			sp.End(nil)
		}
	}
	emit(20, "a") // 20 = 2*max: compaction triggers on the append *past* 2*max
	if got := len(rec.Spans()); got != 20 {
		t.Fatalf("at exactly 2*max: %d spans, want 20 (compaction is amortized, not eager)", got)
	}
	if rec.DroppedSpans() != 0 {
		t.Fatalf("dropped %d before crossing the bound", rec.DroppedSpans())
	}
	emit(1, "b")
	spans := rec.Spans()
	if len(spans) != 10 {
		t.Fatalf("after compaction: %d spans, want 10", len(spans))
	}
	if rec.DroppedSpans() != 11 {
		t.Fatalf("DroppedSpans = %d, want 11 (21 recorded - 10 kept)", rec.DroppedSpans())
	}
	// The survivors are the most recent 10, in order, ending with the
	// span that triggered compaction.
	if spans[0].Name != "a11" || spans[9].Name != "b0" {
		t.Fatalf("wrong survivors: first %q last %q, want a11..b0", spans[0].Name, spans[9].Name)
	}
	// Memory stays O(max) across sustained load.
	emit(100, "c")
	if got := len(rec.Spans()); got > 20 {
		t.Fatalf("sustained load grew the buffer to %d spans (bound 10)", got)
	}
}

// TestLimitSpansImmediateTrim: lowering the bound below the current length
// trims right away, and n <= 0 removes the bound entirely.
func TestLimitSpansImmediateTrim(t *testing.T) {
	rec := NewRecorder()
	ctx := Scoped(With(context.Background(), rec), "srv")
	for i := 0; i < 8; i++ {
		sp := StartSpan(ctx, fmt.Sprintf("s%d", i))
		sp.End(nil)
	}
	rec.LimitSpans(3)
	spans := rec.Spans()
	if len(spans) != 3 || spans[0].Name != "s5" || spans[2].Name != "s7" {
		t.Fatalf("immediate trim kept %d spans (first %q), want the most recent 3", len(spans), spans[0].Name)
	}
	if rec.DroppedSpans() != 5 {
		t.Fatalf("DroppedSpans = %d, want 5", rec.DroppedSpans())
	}
	rec.LimitSpans(0) // unbound again
	for i := 0; i < 50; i++ {
		sp := StartSpan(ctx, "free")
		sp.End(nil)
	}
	if got := len(rec.Spans()); got != 53 {
		t.Fatalf("unbounded recorder kept %d spans, want 53", got)
	}
	if rec.DroppedSpans() != 5 {
		t.Fatalf("unbinding changed the drop count: %d", rec.DroppedSpans())
	}
	// Nil recorder: both entry points are no-ops.
	var nilRec *Recorder
	nilRec.LimitSpans(4)
	if nilRec.DroppedSpans() != 0 {
		t.Fatal("nil recorder reported drops")
	}
}
