// Package obs is the run-trace observability layer: a run-scoped Recorder
// that collects per-stage span traces, counters, and gauges as a pipeline
// executes, without ever being able to perturb what the pipeline computes.
//
// The paper's §4 platform proposals hinge on knowing *why* a measurement ran;
// applied to our own runs, every experiment should emit a machine-readable
// account of what each stage did and what it cost. The Recorder is that
// account: pipeline stages record spans (wall time, item counts, error tags),
// estimator hot paths record the quantities they already compute but used to
// discard (placebo fits attempted/skipped, BGP sweeps to fixed point,
// Monte-Carlo shards, fault-injector drops, store coverage).
//
// # The zero-cost-when-off invariant
//
// Observability is a pure read-side layer. The contract, pinned by
// experiments.TestObservabilityOffBitIdentity and BenchmarkRecorderOverhead:
//
//   - A nil *Recorder is the universal no-op. Every method is nil-safe and
//     returns immediately; From on a context without a recorder returns nil.
//     With all observability flags off nothing is allocated and instrumented
//     code pays only a context lookup per instrumentation site.
//   - A live Recorder only ever *reads* from the run: it never draws from an
//     RNG stream, never schedules work, and never writes to experiment
//     output. Experiment bytes are identical with and without a recorder.
//
// Instrumented packages therefore call obs unconditionally; the nil receiver
// is the off switch.
package obs

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strings"
	"sync"
	"time"
)

// Span is one completed traced operation — a pipeline stage, a campaign run,
// a fan-out batch. Serialized as one JSONL object per line by WriteTrace.
type Span struct {
	// Name identifies the operation, e.g. "table1/estimator". Pipeline
	// stages use "<prefix>/<seam>" with the canonical seam last.
	Name string `json:"span"`
	// Scope is the experiment (or other run unit) the span belongs to;
	// empty when recorded outside any scope.
	Scope string `json:"scope,omitempty"`
	// StartMs is the span's start in milliseconds since the Recorder was
	// created (monotonic clock).
	StartMs float64 `json:"start_ms"`
	// DurMs is the span's wall-clock duration in milliseconds.
	DurMs float64 `json:"dur_ms"`
	// Items counts the units of work the span processed (panel units,
	// sweep levels, scheduled tasks); zero when not meaningful.
	Items int `json:"items,omitempty"`
	// Err tags a failed span with its error text; empty on success.
	Err string `json:"err,omitempty"`
}

// Recorder accumulates spans, counters, and gauges for one run. It is safe
// for concurrent use (parallel fan-outs record from many goroutines). The
// nil *Recorder is the no-op implementation; see the package comment.
type Recorder struct {
	epoch time.Time

	mu       sync.Mutex
	spans    []Span
	dropped  int64
	maxSpans int
	counters map[metricKey]int64
	gauges   map[metricKey]float64
}

// metricKey scopes a counter or gauge name by the experiment that recorded
// it, so one suite run keeps per-experiment metrics separate.
type metricKey struct{ scope, name string }

// NewRecorder returns a live recorder whose span clock starts now.
func NewRecorder() *Recorder {
	return &Recorder{
		epoch:    time.Now(),
		counters: make(map[metricKey]int64),
		gauges:   make(map[metricKey]float64),
	}
}

type ctxKey struct{}
type scopeKey struct{}

// With returns a context carrying the recorder. A nil recorder is allowed
// and equivalent to not attaching one.
func With(ctx context.Context, r *Recorder) context.Context {
	if r == nil {
		return ctx
	}
	return context.WithValue(ctx, ctxKey{}, r)
}

// From returns the context's recorder, or nil — the no-op — when none is
// attached. This is the single branch every instrumentation site pays when
// observability is off.
func From(ctx context.Context) *Recorder {
	r, _ := ctx.Value(ctxKey{}).(*Recorder)
	return r
}

// Scoped returns a context whose recorded metrics and spans are labelled
// with the given scope (the experiment ID, for suite runs). When no recorder
// is attached the context is returned unchanged, so scoping is free when
// observability is off.
func Scoped(ctx context.Context, scope string) context.Context {
	if From(ctx) == nil {
		return ctx
	}
	return context.WithValue(ctx, scopeKey{}, scope)
}

// ScopeOf returns the context's scope label ("" outside any scope).
func ScopeOf(ctx context.Context) string {
	s, _ := ctx.Value(scopeKey{}).(string)
	return s
}

// ActiveSpan is an in-flight span. The nil *ActiveSpan (what StartSpan
// returns when no recorder is attached) is a valid no-op.
type ActiveSpan struct {
	rec   *Recorder
	name  string
	scope string
	start time.Time
	items int
}

// StartSpan begins a span. End must be called to record it; on the nil
// recorder path the returned span is nil and End/SetItems are no-ops.
func StartSpan(ctx context.Context, name string) *ActiveSpan {
	r := From(ctx)
	if r == nil {
		return nil
	}
	return &ActiveSpan{rec: r, name: name, scope: ScopeOf(ctx), start: time.Now()}
}

// SetItems records how many units of work the span processed.
func (s *ActiveSpan) SetItems(n int) {
	if s == nil {
		return
	}
	s.items = n
}

// End completes the span, tagging it with err's text when non-nil.
func (s *ActiveSpan) End(err error) {
	if s == nil {
		return
	}
	sp := Span{
		Name:    s.name,
		Scope:   s.scope,
		StartMs: float64(s.start.Sub(s.rec.epoch)) / float64(time.Millisecond),
		DurMs:   float64(time.Since(s.start)) / float64(time.Millisecond),
		Items:   s.items,
	}
	if err != nil {
		sp.Err = err.Error()
	}
	s.rec.mu.Lock()
	s.rec.spans = append(s.rec.spans, sp)
	// Amortized ring behaviour for bounded recorders: grow to twice the
	// bound, then compact to the most recent max in one copy, so appends
	// stay O(1) amortized and memory stays O(max).
	if s.rec.maxSpans > 0 && len(s.rec.spans) > 2*s.rec.maxSpans {
		kept := s.rec.spans[len(s.rec.spans)-s.rec.maxSpans:]
		s.rec.dropped += int64(len(s.rec.spans) - s.rec.maxSpans)
		s.rec.spans = append(s.rec.spans[:0], kept...)
	}
	s.rec.mu.Unlock()
}

// LimitSpans bounds the recorder's span log: once more than roughly twice n
// spans have accumulated, only the most recent n survive (older spans are
// counted as dropped, reported by DroppedSpans). Unbounded recorders — the
// default, what a single CLI run wants — keep everything. Long-running
// servers set a bound so the trace buffer cannot grow without limit.
// Passing n <= 0 removes the bound.
func (r *Recorder) LimitSpans(n int) {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.maxSpans = n
	if n > 0 && len(r.spans) > n {
		kept := r.spans[len(r.spans)-n:]
		r.dropped += int64(len(r.spans) - n)
		r.spans = append(r.spans[:0], kept...)
	}
	r.mu.Unlock()
}

// DroppedSpans reports how many spans a bounded recorder has discarded.
func (r *Recorder) DroppedSpans() int64 {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.dropped
}

// Add increments the named counter in the context's scope. No-op without a
// recorder.
func Add(ctx context.Context, name string, delta int64) {
	r := From(ctx)
	if r == nil {
		return
	}
	k := metricKey{scope: ScopeOf(ctx), name: name}
	r.mu.Lock()
	r.counters[k] += delta
	r.mu.Unlock()
}

// Gauge sets the named gauge in the context's scope to v (last write wins).
// No-op without a recorder.
func Gauge(ctx context.Context, name string, v float64) {
	r := From(ctx)
	if r == nil {
		return
	}
	k := metricKey{scope: ScopeOf(ctx), name: name}
	r.mu.Lock()
	r.gauges[k] = v
	r.mu.Unlock()
}

// Spans returns a copy of the recorded spans in recording order.
func (r *Recorder) Spans() []Span {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]Span(nil), r.spans...)
}

// WriteTrace serializes the recorded spans as JSONL, one span per line, in
// recording order — the format behind the CLI's -trace flag.
func (r *Recorder) WriteTrace(w io.Writer) error {
	if r == nil {
		return nil
	}
	enc := json.NewEncoder(w)
	for _, sp := range r.Spans() {
		if err := enc.Encode(sp); err != nil {
			return fmt.Errorf("obs: encoding span %q: %w", sp.Name, err)
		}
	}
	return nil
}

// Metrics is the counter/gauge snapshot: scope → metric name → value.
// Counters come back as exact integers stored in float64 (they count events,
// far below 2⁵³). The map is what the CLI appends under the "metrics" key in
// -json mode.
type Metrics map[string]map[string]float64

// Metrics snapshots all counters and gauges. A nil recorder returns nil.
func (r *Recorder) Metrics() Metrics {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make(Metrics)
	put := func(k metricKey, v float64) {
		m := out[k.scope]
		if m == nil {
			m = make(map[string]float64)
			out[k.scope] = m
		}
		m[k.name] = v
	}
	for k, v := range r.counters {
		put(k, float64(v))
	}
	for k, v := range r.gauges {
		put(k, v)
	}
	return out
}

// Render prints the metrics as an aligned per-scope text table with scopes
// and names sorted, matching the CLI's -metrics section.
func (m Metrics) Render() string {
	if len(m) == 0 {
		return "(no metrics recorded)\n"
	}
	scopes := make([]string, 0, len(m))
	for s := range m {
		scopes = append(scopes, s)
	}
	sort.Strings(scopes)
	var sb strings.Builder
	for _, s := range scopes {
		label := s
		if label == "" {
			label = "(unscoped)"
		}
		fmt.Fprintf(&sb, "%s:\n", label)
		names := make([]string, 0, len(m[s]))
		for n := range m[s] {
			names = append(names, n)
		}
		sort.Strings(names)
		width := 0
		for _, n := range names {
			if len(n) > width {
				width = len(n)
			}
		}
		for _, n := range names {
			v := m[s][n]
			if v == float64(int64(v)) {
				fmt.Fprintf(&sb, "  %-*s  %d\n", width, n, int64(v))
			} else {
				fmt.Fprintf(&sb, "  %-*s  %g\n", width, n, v)
			}
		}
	}
	return sb.String()
}
