//go:build race

package serve

// raceEnabled reports whether the race detector is compiled in; the full
// golden-equivalence sweep restricts to fast experiments under its ~5-20x
// instrumentation overhead (the full suite is raced by the experiments
// package's own golden tests).
const raceEnabled = true
