package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"strings"
	"testing"

	"sisyphus/internal/artifact"
	"sisyphus/internal/experiments"
	"sisyphus/internal/parallel"
)

// newTestServer returns a Server over a fresh store and the default pool —
// the configuration sisyphusd runs with, minus listeners.
func newTestServer(t *testing.T) *Server {
	t.Helper()
	return New(Config{Store: artifact.NewStore(), Pool: parallel.Pool{}})
}

// get runs one GET through the handler without a network listener.
func get(t *testing.T, s *Server, path string) *httptest.ResponseRecorder {
	t.Helper()
	req := httptest.NewRequest(http.MethodGet, path, nil)
	rec := httptest.NewRecorder()
	s.Handler().ServeHTTP(rec, req)
	return rec
}

// post runs one POST /query through the handler.
func post(t *testing.T, s *Server, body string) *httptest.ResponseRecorder {
	t.Helper()
	req := httptest.NewRequest(http.MethodPost, "/query", strings.NewReader(body))
	rec := httptest.NewRecorder()
	s.Handler().ServeHTTP(rec, req)
	return rec
}

// splitGoldenDocs parses a committed seed-42 suite golden — `sisyphus -all
// -seed 42` (with or without -json) byte-for-byte — into the per-experiment
// documents between its section headers. Those documents are exactly what
// GET /experiment/{id}?seed=42 must serve in the matching representation.
func splitGoldenDocs(t *testing.T, path string) map[string][]byte {
	t.Helper()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	docs := map[string][]byte{}
	for len(data) > 0 {
		if !bytes.HasPrefix(data, []byte("=== ")) {
			t.Fatalf("golden: expected section header, got %.40q", data)
		}
		nl := bytes.IndexByte(data, '\n')
		header := string(data[4:nl])
		id, _, ok := strings.Cut(header, ":")
		if !ok {
			t.Fatalf("golden: malformed header %q", header)
		}
		data = data[nl+1:]
		if len(data) == 0 || data[0] != '\n' {
			t.Fatalf("golden: missing blank line after header for %s", id)
		}
		data = data[1:]
		end := bytes.Index(data, []byte("\n=== "))
		if end < 0 {
			docs[id], data = data, nil
		} else {
			docs[id], data = data[:end+1], data[end+1:]
		}
	}
	return docs
}

// TestExperimentResponsesMatchCLIGoldens is the serving layer's headline
// acceptance criterion: for every registered experiment, the GET response
// body at seed 42 is byte-identical to the per-experiment document inside
// the committed `sisyphus -all -json -seed 42` golden. Under the race
// detector the sweep restricts to the fast experiments — handler parity is
// width- and detector-independent, and the full suite is raced by the
// experiments package's own goldens.
func TestExperimentResponsesMatchCLIGoldens(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the full seed-42 suite over HTTP")
	}
	docs := splitGoldenDocs(t, "../experiments/testdata/all_seed42.golden.json")
	for _, id := range experiments.IDs() {
		if _, ok := docs[id]; !ok {
			t.Fatalf("golden has no document for registered experiment %s; regenerate the golden", id)
		}
	}
	ids := experiments.IDs()
	if raceEnabled {
		ids = []string{"collider", "exposure", "intent", "mlab", "rootcause"}
	}
	srv := httptest.NewServer(newTestServer(t).Handler())
	defer srv.Close()
	for _, id := range ids {
		resp, err := http.Get(srv.URL + "/experiment/" + id + "?seed=42")
		if err != nil {
			t.Fatalf("%s: %v", id, err)
		}
		body, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil {
			t.Fatalf("%s: reading body: %v", id, err)
		}
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("%s: status %d: %s", id, resp.StatusCode, body)
		}
		if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
			t.Errorf("%s: Content-Type = %q, want application/json", id, ct)
		}
		if !bytes.Equal(body, docs[id]) {
			t.Errorf("%s: response body differs from CLI golden (%d bytes vs %d)", id, len(body), len(docs[id]))
		}
	}
}

// TestExperimentHandlerValidation tables every request-validation path:
// each row must be rejected before any experiment runs, with the status and
// message fragment pinned.
func TestExperimentHandlerValidation(t *testing.T) {
	s := newTestServer(t)
	cases := []struct {
		name     string
		path     string
		status   int
		contains string
	}{
		{"unknown experiment", "/experiment/nope?seed=1", http.StatusNotFound, "unknown experiment"},
		{"unknown experiment lists ids", "/experiment/nope", http.StatusNotFound,
			strings.Join(experiments.IDs(), ", ")},
		{"seed not a number", "/experiment/mlab?seed=abc", http.StatusBadRequest, "seed"},
		{"seed negative", "/experiment/mlab?seed=-1", http.StatusBadRequest, "seed"},
		{"seed overflow", "/experiment/mlab?seed=18446744073709551616", http.StatusBadRequest, "seed"},
		{"seed trailing garbage", "/experiment/mlab?seed=42x", http.StatusBadRequest, "seed"},
		{"unknown parameter", "/experiment/mlab?sede=42", http.StatusBadRequest, "unknown query parameter"},
		{"workers not a number", "/experiment/mlab?workers=many", http.StatusBadRequest, "workers"},
		{"workers zero", "/experiment/mlab?workers=0", http.StatusBadRequest, "workers"},
		{"workers too wide", "/experiment/mlab?workers=65", http.StatusBadRequest, "workers"},
		{"opts malformed", "/experiment/mlab?opts={", http.StatusBadRequest, "options"},
		{"opts unknown field", "/experiment/mlab?opts={\"Bogus\":1}", http.StatusBadRequest, "Bogus"},
		{"opts on optionless experiment", "/experiment/tromboneera?opts={\"Hours\":5}", http.StatusBadRequest, "takes no options"},
		{"opts trailing garbage", "/experiment/mlab?opts={}{}", http.StatusBadRequest, "trailing data"},
		{"scenario unknown id", "/experiment/table1?scenario=atlantis", http.StatusBadRequest, "atlantis"},
		{"scenario bad gen spec", "/experiment/table1?scenario=gen:bogus%3D1", http.StatusBadRequest, "gen:"},
		{"scenario on incapable experiment", "/experiment/collider?scenario=southafrica", http.StatusBadRequest, "scenario-capable"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			rec := get(t, s, tc.path)
			if rec.Code != tc.status {
				t.Fatalf("status = %d, want %d (body %s)", rec.Code, tc.status, rec.Body)
			}
			var e apiError
			if err := json.Unmarshal(rec.Body.Bytes(), &e); err != nil {
				t.Fatalf("error body is not the JSON envelope: %v (%s)", err, rec.Body)
			}
			if !strings.Contains(e.Error, tc.contains) {
				t.Errorf("error %q does not contain %q", e.Error, tc.contains)
			}
		})
	}
}

// TestQueryHandlerValidation tables the /query rejection paths: malformed
// documents are 400s, well-formed but unanswerable questions are 422s, and
// none of them run a simulation.
func TestQueryHandlerValidation(t *testing.T) {
	s := newTestServer(t)
	cases := []struct {
		name     string
		body     string
		status   int
		contains string
	}{
		{"empty body", "", http.StatusBadRequest, "empty"},
		{"malformed json", "{", http.StatusBadRequest, "invalid causal query"},
		{"unknown field", `{"treatment":"R","outcome":"L","bogus":1}`, http.StatusBadRequest, "bogus"},
		{"trailing garbage", `{"treatment":"R","outcome":"L"} extra`, http.StatusBadRequest, "trailing"},
		{"missing treatment", `{"outcome":"L"}`, http.StatusBadRequest, "required"},
		{"same treatment and outcome", `{"treatment":"R","outcome":"R"}`, http.StatusBadRequest, "differ"},
		{"negative seed", `{"treatment":"R","outcome":"L","seed":-1}`, http.StatusBadRequest, "seed"},
		{"overflow seed", `{"treatment":"R","outcome":"L","seed":18446744073709551616}`, http.StatusBadRequest, "seed"},
		{"unknown node", `{"treatment":"Z","outcome":"L"}`, http.StatusBadRequest, "not a node"},
		{"hour treatment", `{"treatment":"hour","outcome":"L"}`, http.StatusBadRequest, "hour"},
		{"unmeasured column", `{"graph":"X -> Y","treatment":"X","outcome":"Y"}`, http.StatusBadRequest, "measured column"},
		{"bad graph", `{"graph":"C -> ","treatment":"R","outcome":"L"}`, http.StatusBadRequest, "graph"},
		{"hours out of range", `{"treatment":"R","outcome":"L","hours":5}`, http.StatusBadRequest, "hours"},
		{"bins out of range", `{"treatment":"R","outcome":"L","bins":999}`, http.StatusBadRequest, "bins"},
		{"bad scenario", `{"treatment":"R","outcome":"L","scenario":"atlantis"}`, http.StatusBadRequest, "scenario"},
		{"bad adjustment type", `{"treatment":"R","outcome":"L","adjustment":7}`, http.StatusBadRequest, "adjustment"},
		{"adjustment wrong string", `{"treatment":"R","outcome":"L","adjustment":"all"}`, http.StatusBadRequest, "adjustment"},
		{"latent confounder", `{"graph":"U [latent]; U -> R; U -> L; R -> L","treatment":"R","outcome":"L"}`,
			http.StatusUnprocessableEntity, "not identifiable"},
		{"open backdoor", `{"treatment":"R","outcome":"L","adjustment":[]}`,
			http.StatusUnprocessableEntity, "backdoor"},
		{"latent adjustment", `{"graph":"U [latent]; U -> R; U -> L; R -> L","treatment":"R","outcome":"L","adjustment":["U"]}`,
			http.StatusBadRequest, "latent"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			rec := post(t, s, tc.body)
			if rec.Code != tc.status {
				t.Fatalf("status = %d, want %d (body %s)", rec.Code, tc.status, rec.Body)
			}
			var e apiError
			if err := json.Unmarshal(rec.Body.Bytes(), &e); err != nil {
				t.Fatalf("error body is not the JSON envelope: %v (%s)", err, rec.Body)
			}
			if !strings.Contains(e.Error, tc.contains) {
				t.Errorf("error %q does not contain %q", e.Error, tc.contains)
			}
		})
	}
}

// TestQueryEndpoint runs one real causal question end to end and checks the
// answer document: identification chose C, the estimator panel is complete,
// and the simulator's ground truth is attached.
func TestQueryEndpoint(t *testing.T) {
	if testing.Short() {
		t.Skip("runs a simulation")
	}
	s := newTestServer(t)
	rec := post(t, s, `{"treatment":"R","outcome":"L","hours":120,"seed":7}`)
	if rec.Code != http.StatusOK {
		t.Fatalf("status = %d: %s", rec.Code, rec.Body)
	}
	var res experiments.QueryResult
	if err := json.Unmarshal(rec.Body.Bytes(), &res); err != nil {
		t.Fatalf("decoding response: %v", err)
	}
	if got := res.Identification.Adjustment; len(got) != 1 || got[0] != "C" {
		t.Errorf("identified adjustment = %v, want [C]", got)
	}
	if !res.Identification.Auto {
		t.Error("Auto = false, want true for omitted adjustment")
	}
	if len(res.Estimates) != 4 {
		t.Errorf("estimate panel has %d members, want 4 (naive, stratified, regression, IPW)", len(res.Estimates))
	}
	if res.TrueEffect.IsNaN() {
		t.Error("TrueEffect is null, want the simulator's do(R) contrast")
	}
	if res.Rows != 120 {
		t.Errorf("Rows = %d, want 120", res.Rows)
	}

	// The same question with the adjustment made explicit must identify
	// identically and reuse the cached observational frame (one qframe
	// build across both requests).
	rec2 := post(t, s, `{"treatment":"R","outcome":"L","adjustment":["C"],"hours":120,"seed":7}`)
	if rec2.Code != http.StatusOK {
		t.Fatalf("explicit adjustment: status = %d: %s", rec2.Code, rec2.Body)
	}
	var res2 experiments.QueryResult
	if err := json.Unmarshal(rec2.Body.Bytes(), &res2); err != nil {
		t.Fatal(err)
	}
	if fmt.Sprint(res2.Estimates) != fmt.Sprint(res.Estimates) {
		t.Error("explicit [C] and auto adjustment gave different estimates")
	}
	frames := 0
	for key, st := range s.cfg.Store.PerKey() {
		if key.Kind == "qframe" {
			frames++
			if st.Builds != 1 {
				t.Errorf("qframe %s built %d times, want 1", key, st.Builds)
			}
		}
	}
	if frames != 1 {
		t.Errorf("saw %d qframe keys, want 1", frames)
	}
}

// TestListAndHealth pins the catalogue and liveness endpoints.
func TestListAndHealth(t *testing.T) {
	s := newTestServer(t)
	rec := get(t, s, "/experiments")
	if rec.Code != http.StatusOK {
		t.Fatalf("/experiments status = %d", rec.Code)
	}
	var list []struct{ ID, Paper string }
	if err := json.Unmarshal(rec.Body.Bytes(), &list); err != nil {
		t.Fatal(err)
	}
	if len(list) != len(experiments.IDs()) {
		t.Fatalf("catalogue has %d entries, want %d", len(list), len(experiments.IDs()))
	}
	for i, id := range experiments.IDs() {
		if list[i].ID != id {
			t.Errorf("catalogue[%d] = %s, want %s (sorted order)", i, list[i].ID, id)
		}
	}

	rec = get(t, s, "/healthz")
	if rec.Code != http.StatusOK || rec.Body.String() != "ok\n" {
		t.Errorf("/healthz = %d %q", rec.Code, rec.Body)
	}

	// Method and route misses fall to the mux's defaults.
	req := httptest.NewRequest(http.MethodPost, "/experiments", nil)
	w := httptest.NewRecorder()
	s.Handler().ServeHTTP(w, req)
	if w.Code != http.StatusMethodNotAllowed {
		t.Errorf("POST /experiments = %d, want 405", w.Code)
	}
	if rec := get(t, s, "/nope"); rec.Code != http.StatusNotFound {
		t.Errorf("GET /nope = %d, want 404", rec.Code)
	}
}

// TestAdminEndpoints exercises /metrics and /trace over a served request:
// the recorder must show the route's counter and at least one span, plus
// the store's cache line.
func TestAdminEndpoints(t *testing.T) {
	if testing.Short() {
		t.Skip("runs an experiment")
	}
	rec := newRecorderServer(t)
	if got := get(t, rec, "/experiment/mlab?seed=3"); got.Code != http.StatusOK {
		t.Fatalf("request failed: %d %s", got.Code, got.Body)
	}
	admin := rec.AdminHandler()

	w := httptest.NewRecorder()
	admin.ServeHTTP(w, httptest.NewRequest(http.MethodGet, "/metrics", nil))
	if w.Code != http.StatusOK {
		t.Fatalf("/metrics status = %d", w.Code)
	}
	for _, want := range []string{"http/experiment", "requests", "status_2xx", "evictions"} {
		if !strings.Contains(w.Body.String(), want) {
			t.Errorf("/metrics output missing %q:\n%s", want, w.Body)
		}
	}

	w = httptest.NewRecorder()
	admin.ServeHTTP(w, httptest.NewRequest(http.MethodGet, "/trace", nil))
	if w.Code != http.StatusOK {
		t.Fatalf("/trace status = %d", w.Code)
	}
	if !strings.Contains(w.Body.String(), `"span":"http/experiment"`) {
		t.Errorf("/trace missing the request's latency span:\n%s", w.Body)
	}

	w = httptest.NewRecorder()
	admin.ServeHTTP(w, httptest.NewRequest(http.MethodGet, "/debug/pprof/cmdline", nil))
	if w.Code != http.StatusOK {
		t.Errorf("/debug/pprof/cmdline status = %d", w.Code)
	}
}
