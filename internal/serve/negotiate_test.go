package serve

import (
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

// getAccept runs one GET through the handler with an Accept header set.
func getAccept(t *testing.T, s *Server, path, accept string) *httptest.ResponseRecorder {
	t.Helper()
	req := httptest.NewRequest(http.MethodGet, path, nil)
	if accept != "" {
		req.Header.Set("Accept", accept)
	}
	rec := httptest.NewRecorder()
	s.Handler().ServeHTTP(rec, req)
	return rec
}

// TestExperimentContentNegotiation tables the /experiment/{id}
// representation contract: `Accept: text/plain` (alone, with parameters, or
// anywhere in a media-range list) serves the CLI's text rendering
// byte-for-byte; everything else keeps serving the JSON document. Both
// representations are pinned against the committed seed-42 suite goldens,
// so the server can never drift from `sisyphus -seed 42` in either format.
func TestExperimentContentNegotiation(t *testing.T) {
	if testing.Short() {
		t.Skip("runs experiments over HTTP")
	}
	textDocs := splitGoldenDocs(t, "../experiments/testdata/all_seed42.golden.txt")
	jsonDocs := splitGoldenDocs(t, "../experiments/testdata/all_seed42.golden.json")
	s := newTestServer(t)
	const id = "exposure" // cheap runner; the full sweep is covered elsewhere
	cases := []struct {
		name, accept string
		wantText     bool
	}{
		{"no accept header", "", false},
		{"json", "application/json", false},
		{"wildcard", "*/*", false},
		{"text plain", "text/plain", true},
		{"text plain with params", "text/plain; q=0.9", true},
		{"text plain in list", "application/json, text/plain", true},
		{"other text type", "text/html", false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			rec := getAccept(t, s, "/experiment/"+id+"?seed=42", tc.accept)
			if rec.Code != http.StatusOK {
				t.Fatalf("status = %d: %s", rec.Code, rec.Body)
			}
			wantCT, want := "application/json", jsonDocs[id]
			if tc.wantText {
				wantCT, want = "text/plain; charset=utf-8", textDocs[id]
			}
			if ct := rec.Header().Get("Content-Type"); ct != wantCT {
				t.Errorf("Content-Type = %q, want %q", ct, wantCT)
			}
			if rec.Body.String() != string(want) {
				t.Errorf("body differs from CLI golden:\n--- got ---\n%s\n--- want ---\n%s", rec.Body, want)
			}
		})
	}

	// The two representations cache under distinct artifact kinds: repeating
	// both requests above must not rebuild anything, and neither kind can
	// cross-serve the other's bytes.
	builds := map[string]int64{}
	for key, st := range s.cfg.Store.PerKey() {
		if strings.HasPrefix(key.Kind, "response") {
			builds[key.Kind] += st.Builds
		}
	}
	if builds["response"] != 1 || builds["responsetext"] != 1 {
		t.Errorf("response builds = %v, want one JSON and one text build", builds)
	}
}

// TestQueryScenarioStatuses pins the /query status contract beyond the
// default world: a gen: world with the confounding structure answers 200, a
// casting-deficient gen: world is a well-formed but unanswerable question
// (422, typed casting refusal), and an unresolvable scenario token stays a
// plain 400. The three must never collapse into one status.
func TestQueryScenarioStatuses(t *testing.T) {
	if testing.Short() {
		t.Skip("runs simulations")
	}
	s := newTestServer(t)
	cases := []struct {
		name, scenario string
		status         int
		contains       string
	}{
		{"generated world", "gen:tier2=4+access=6+content=2+treated=2+multihome=1+seed=7",
			http.StatusOK, `"Rows": 120`},
		{"casting-deficient world", "gen:tier2=4+access=6+content=2+treated=2+multihome=0+seed=7",
			http.StatusUnprocessableEntity, "casting missing"},
		{"unresolvable token", "atlantis", http.StatusBadRequest, "unknown scenario"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			rec := post(t, s, `{"treatment":"R","outcome":"L","hours":120,"seed":7,"scenario":"`+tc.scenario+`"}`)
			if rec.Code != tc.status {
				t.Fatalf("status = %d, want %d (body %s)", rec.Code, tc.status, rec.Body)
			}
			if !strings.Contains(rec.Body.String(), tc.contains) {
				t.Errorf("body %s does not contain %q", rec.Body, tc.contains)
			}
		})
	}
}
