// Package serve implements the sisyphusd HTTP API: canned experiments as
// per-experiment JSON documents and declarative causal questions compiled
// through dag identification, all over one shared artifact store.
//
// The serving contract is the CLI's, verbatim: a GET /experiment response
// body is byte-identical to what `sisyphus -experiment <id> -seed N -json`
// writes for that experiment, because both run the same registered
// experiment and the same encoder. Requests share one artifact.Store, so
// identical concurrent requests collapse into one build (singleflight at
// both the response layer and every artifact underneath), per-request
// timeouts and client disconnects cancel through the pipeline's context
// seams, and the optional obs recorder hangs request counters, in-flight
// gauges and latency spans off every route at zero cost when absent.
package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/pprof"
	"strconv"
	"strings"
	"sync/atomic"
	"time"

	"sisyphus/internal/artifact"
	"sisyphus/internal/experiments"
	"sisyphus/internal/netsim/scenario"
	"sisyphus/internal/obs"
	"sisyphus/internal/parallel"
)

// Artifact kinds the server introduces. A "response" is the encoded JSON
// document for one GET /experiment request; a "queryresp" the same for one
// normalized POST /query. Response artifacts are memory-only (no Codec):
// their bytes are a function of all experiment code, so persisting them
// across binaries would tie cache validity to the whole program, while the
// worlds, RIBs, campaigns and query frames underneath still persist.
const (
	kindResponse      = "response"
	kindResponseText  = "responsetext"
	kindQueryResponse = "queryresp"
)

// MaxWorkers bounds the per-request ?workers= override; wider requests are
// rejected rather than letting one caller fork an arbitrary number of OS
// threads.
const MaxWorkers = 64

// Config configures a Server. The zero value serves with no cache, the
// default pool, no timeout and no recorder.
type Config struct {
	// Store is the artifact cache every request shares; nil disables
	// caching (each request builds fresh — byte-identical output).
	Store *artifact.Store
	// Pool is the default worker pool for requests that don't override
	// width with ?workers=.
	Pool parallel.Pool
	// RequestTimeout bounds each request's context; 0 means no limit
	// beyond client disconnect.
	RequestTimeout time.Duration
	// Recorder, when non-nil, receives per-route counters, in-flight
	// gauges and latency spans, and backs the admin /metrics and /trace
	// endpoints. Nil is the zero-cost off switch.
	Recorder *obs.Recorder
}

// Server serves the sisyphusd API. Construct with New; safe for concurrent
// use.
type Server struct {
	cfg      Config
	inflight atomic.Int64
}

// New returns a Server over cfg.
func New(cfg Config) *Server {
	return &Server{cfg: cfg}
}

// Handler returns the API mux:
//
//	GET  /experiments                  registered experiments (id, paper)
//	GET  /experiment/{id}?seed=N&scenario=S&opts=J&workers=W
//	POST /query                        declarative causal question
//	GET  /healthz
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /experiments", s.instrument("experiments", s.handleList))
	mux.HandleFunc("GET /experiment/{id}", s.instrument("experiment", s.handleExperiment))
	mux.HandleFunc("POST /query", s.instrument("query", s.handleQuery))
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		io.WriteString(w, "ok\n")
	})
	return mux
}

// AdminHandler returns the admin mux: /metrics (recorder counters plus
// cache stats, text), /trace (span log, JSONL) and /debug/pprof/. Kept off
// the API mux so deployments can bind it to a private address.
func (s *Server) AdminHandler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		if s.cfg.Recorder != nil {
			io.WriteString(w, s.cfg.Recorder.Metrics().Render())
			if n := s.cfg.Recorder.DroppedSpans(); n > 0 {
				fmt.Fprintf(w, "spans dropped by bound: %d\n", n)
			}
		}
		if s.cfg.Store != nil {
			io.WriteString(w, s.cfg.Store.RenderStats())
			io.WriteString(w, "\n")
		}
	})
	mux.HandleFunc("GET /trace", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/jsonl")
		if err := s.cfg.Recorder.WriteTrace(w); err != nil {
			// Headers are gone; all we can do is stop writing.
			return
		}
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// statusWriter remembers the status code for the route's metrics.
type statusWriter struct {
	http.ResponseWriter
	code int
}

func (w *statusWriter) WriteHeader(code int) {
	w.code = code
	w.ResponseWriter.WriteHeader(code)
}

// instrument wraps a handler with the per-route observability contract:
// request/status counters, an in-flight gauge, a latency span, and the
// per-request timeout. With no recorder configured every obs call is the
// nil fast path and only the timeout wrapper remains.
func (s *Server) instrument(route string, h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		ctx := r.Context()
		if s.cfg.RequestTimeout > 0 {
			var cancel context.CancelFunc
			ctx, cancel = context.WithTimeout(ctx, s.cfg.RequestTimeout)
			defer cancel()
		}
		ctx = obs.Scoped(obs.With(ctx, s.cfg.Recorder), "http/"+route)
		obs.Add(ctx, "requests", 1)
		obs.Gauge(ctx, "inflight", float64(s.inflight.Add(1)))
		defer s.inflight.Add(-1)
		span := obs.StartSpan(ctx, "http/"+route)
		sw := &statusWriter{ResponseWriter: w, code: http.StatusOK}
		h(sw, r.WithContext(ctx))
		obs.Add(ctx, fmt.Sprintf("status_%dxx", sw.code/100), 1)
		if sw.code >= 400 {
			span.End(fmt.Errorf("status %d", sw.code))
		} else {
			span.End(nil)
		}
	}
}

// apiError is the JSON error envelope every non-2xx response carries.
type apiError struct {
	Error string `json:"error"`
}

func writeError(w http.ResponseWriter, status int, msg string) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(apiError{Error: msg})
}

// statusFor maps an execution error onto a status code: caller mistakes
// that survived parameter validation (bad options reaching the experiment),
// identification failures, timeouts, client disconnects, and everything
// else.
func statusFor(err error) int {
	switch {
	case errors.Is(err, experiments.ErrQueryInvalid):
		return http.StatusBadRequest
	case errors.Is(err, experiments.ErrNotIdentifiable):
		return http.StatusUnprocessableEntity
	case errors.Is(err, scenario.ErrCastingMissing):
		// The request was well-formed and named a real world — the world
		// just lacks the castings this experiment's estimand needs. Same
		// shape as non-identifiability: a 422, not a caller mistake.
		return http.StatusUnprocessableEntity
	case errors.Is(err, context.DeadlineExceeded):
		return http.StatusGatewayTimeout
	case errors.Is(err, context.Canceled):
		// Client went away; the status is recorded in metrics, the
		// response goes nowhere.
		return 499
	default:
		return http.StatusInternalServerError
	}
}

// encodeDoc renders a result exactly as the CLI's -json emitter does —
// json.Encoder with two-space indent and the trailing newline Encode
// appends — so served bytes and golden bytes can never drift.
func encodeDoc(res experiments.Renderable) ([]byte, error) {
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	enc.SetIndent("", "  ")
	if err := enc.Encode(res); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// writeDoc sends pre-encoded response-document bytes.
func writeDoc(w http.ResponseWriter, doc []byte) {
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set("Content-Length", strconv.Itoa(len(doc)))
	w.Write(doc)
}

// writeText sends pre-rendered text-document bytes.
func writeText(w http.ResponseWriter, doc []byte) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	w.Header().Set("Content-Length", strconv.Itoa(len(doc)))
	w.Write(doc)
}

// acceptsText reports whether an Accept header asks for the text rendering:
// any listed media range whose type is text/plain (parameters and q-values
// are ignored — the server has exactly two representations and text/plain
// only appears when the caller wants it). Absent headers, */* and
// application/json all keep the JSON default, which is what every pre-
// negotiation client gets byte-identically.
func acceptsText(accept string) bool {
	for _, part := range strings.Split(accept, ",") {
		mt := strings.TrimSpace(part)
		if i := strings.IndexByte(mt, ';'); i >= 0 {
			mt = strings.TrimSpace(mt[:i])
		}
		if strings.EqualFold(mt, "text/plain") {
			return true
		}
	}
	return false
}

// handleList serves the experiment catalogue.
func (s *Server) handleList(w http.ResponseWriter, r *http.Request) {
	type entry struct {
		ID    string `json:"id"`
		Paper string `json:"paper"`
	}
	var out []entry
	for _, e := range experiments.All() {
		out = append(out, entry{ID: e.ID, Paper: e.Paper})
	}
	doc, err := encodeDoc(renderableJSON{out})
	if err != nil {
		writeError(w, http.StatusInternalServerError, err.Error())
		return
	}
	writeDoc(w, doc)
}

// renderableJSON adapts any JSON-marshalable value to encodeDoc.
type renderableJSON struct{ V any }

func (r renderableJSON) MarshalJSON() ([]byte, error) { return json.Marshal(r.V) }
func (renderableJSON) Render() string                 { return "" }

// allowedExperimentParams is the closed set of query parameters
// GET /experiment accepts; anything else is a 400, not silently ignored —
// a misspelled ?sede=7 must not serve seed-42 bytes as if it had worked.
var allowedExperimentParams = map[string]bool{
	"seed": true, "scenario": true, "opts": true, "workers": true,
}

// parseSeed parses a ?seed= value: an optional decimal uint64 (default 42,
// the suite's pinned seed). Signs, overflow and trailing garbage are
// errors.
func parseSeed(val string) (uint64, error) {
	if val == "" {
		return 42, nil
	}
	n, err := strconv.ParseUint(val, 10, 64)
	if err != nil {
		return 0, fmt.Errorf("seed %q: must be a decimal in [0, 2^64)", val)
	}
	return n, nil
}

// parseWorkers parses a ?workers= value onto the configured default pool.
func (s *Server) parseWorkers(val string) (parallel.Pool, error) {
	if val == "" {
		return s.cfg.Pool, nil
	}
	n, err := strconv.Atoi(val)
	if err != nil || n < 1 || n > MaxWorkers {
		return parallel.Pool{}, fmt.Errorf("workers %q: must be an integer in [1, %d]", val, MaxWorkers)
	}
	return parallel.NewPool(n), nil
}

func (s *Server) handleExperiment(w http.ResponseWriter, r *http.Request) {
	e, err := experiments.Get(r.PathValue("id"))
	if err != nil {
		writeError(w, http.StatusNotFound, err.Error())
		return
	}
	params := r.URL.Query()
	for p := range params {
		if !allowedExperimentParams[p] {
			writeError(w, http.StatusBadRequest,
				fmt.Sprintf("unknown query parameter %q (allowed: opts, scenario, seed, workers)", p))
			return
		}
	}
	seed, err := parseSeed(params.Get("seed"))
	if err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	pool, err := s.parseWorkers(params.Get("workers"))
	if err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	opts := e.Defaults
	if raw := params.Get("opts"); raw != "" {
		opts, err = experiments.OptionsFromJSON(e.ID, []byte(raw))
		if err != nil {
			writeError(w, http.StatusBadRequest, err.Error())
			return
		}
	}
	// The scenario coordinate: resolved up front (a bad gen: spec is a 400,
	// not a failed build), applied to the options, and carried in the
	// artifact key's Scenario field — scenario fields are `json:"-"` inside
	// options (analysis-side tag convention), so the key must carry it.
	scenKey := ""
	if tok := params.Get("scenario"); tok != "" {
		id, err := scenario.ResolveID(tok)
		if err != nil {
			writeError(w, http.StatusBadRequest, err.Error())
			return
		}
		opts, err = experiments.OptionsWithScenario(opts, id)
		if err != nil {
			writeError(w, http.StatusBadRequest, err.Error())
			return
		}
		scenKey = id
	}

	// Content negotiation: Accept: text/plain serves the experiment's
	// rendered table exactly as the CLI prints it (Render plus the trailing
	// newline Println appends); everything else serves the JSON document.
	// The two representations cache under distinct kinds so a text hit can
	// never serve JSON bytes or vice versa.
	kind, encode := kindResponse, encodeDoc
	write := writeDoc
	if acceptsText(r.Header.Get("Accept")) {
		kind, write = kindResponseText, writeText
		encode = func(res experiments.Renderable) ([]byte, error) {
			return []byte(res.Render() + "\n"), nil
		}
	}
	build := func(ctx context.Context) ([]byte, error) {
		res, rerr := e.Run(ctx, experiments.Config{
			Seed: seed, Pool: pool, Artifacts: s.cfg.Store, Opts: opts,
		})
		if rerr != nil {
			return nil, rerr
		}
		return encode(res)
	}
	doc, err := s.cachedResponse(r.Context(), kind, scenKey, seed,
		respKeyConfig{Experiment: e.ID, Opts: opts}, build)
	if err != nil {
		writeError(w, statusFor(err), err.Error())
		return
	}
	write(w, doc)
}

// respKeyConfig is the config hashed into a GET response's artifact key.
// Opts is the experiment's typed options value; its JSON form is what
// NewKey hashes, so two requests agree exactly when their typed options
// agree. Pool width is deliberately absent: output is bit-identical at any
// width, so differently-sized requests must share one response build.
type respKeyConfig struct {
	Experiment string
	Opts       experiments.Options
}

// cachedResponse funnels a response build through the shared store when one
// exists: concurrent identical requests collapse into one experiment run
// (singleflight), later ones are byte-for-byte cache hits, and a cancelled
// builder neither poisons the store nor aborts other requests' joins.
func (s *Server) cachedResponse(ctx context.Context, kind, scenKey string, seed uint64,
	cfg any, build func(context.Context) ([]byte, error)) ([]byte, error) {
	if s.cfg.Store == nil {
		return build(ctx)
	}
	key, err := artifact.NewKey(kind, scenKey, seed, cfg)
	if err != nil {
		return nil, err
	}
	return artifact.GetOrBuild(ctx, s.cfg.Store, key, artifact.Spec[[]byte]{
		Build: build,
		Fork:  func(b []byte) []byte { return append([]byte(nil), b...) },
		Size:  func(b []byte) int64 { return int64(len(b)) },
	})
}

func (s *Server) handleQuery(w http.ResponseWriter, r *http.Request) {
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, experiments.QueryMaxBodyBytes))
	if err != nil {
		writeError(w, http.StatusBadRequest,
			fmt.Sprintf("reading body: document exceeds %d bytes or was cut short", experiments.QueryMaxBodyBytes))
		return
	}
	q, err := experiments.DecodeCausalQuery(body)
	if err != nil {
		writeError(w, statusFor(err), err.Error())
		return
	}
	// Compile before touching the cache: a malformed or non-identifiable
	// question is answered from the DAG alone, and compilation normalizes
	// the query (defaults filled, adjustment resolved) into the cache key —
	// so {"adjustment":"auto"} and its resolved explicit set share bytes.
	plan, err := experiments.CompileCausalQuery(q)
	if err != nil {
		writeError(w, statusFor(err), err.Error())
		return
	}
	nq := plan.Query
	build := func(ctx context.Context) ([]byte, error) {
		res, rerr := experiments.RunCausalQuery(ctx, experiments.Config{
			Pool: s.cfg.Pool, Artifacts: s.cfg.Store,
		}, nq)
		if rerr != nil {
			return nil, rerr
		}
		return encodeDoc(res)
	}
	doc, err := s.cachedResponse(r.Context(), kindQueryResponse, nq.Scenario, nq.Seed, nq, build)
	if err != nil {
		writeError(w, statusFor(err), err.Error())
		return
	}
	writeDoc(w, doc)
}
