package serve

import (
	"testing"

	"sisyphus/internal/experiments"
	"sisyphus/internal/netsim/scenario"
)

// FuzzQueryDecode throws hostile input at everything the server parses
// before it agrees to run a simulation: the POST /query body (decode plus
// compile — dag parsing, identification, knob validation) and the
// GET /experiment query-parameter parsers (seed, workers, scenario tokens
// including gen: specs). The contract under fuzz is the 4xx contract: any
// outcome is an error value or a success, never a panic, and compilation
// of arbitrary graphs stays cheap (node cap, adjustment search limit).
func FuzzQueryDecode(f *testing.F) {
	seeds := []struct {
		body, seed, scen string
	}{
		{`{"treatment":"R","outcome":"L"}`, "42", "southafrica"},
		{`{"treatment":"R","outcome":"L","adjustment":"auto","hours":1500,"bins":10,"seed":7}`, "0", "trombone"},
		{`{"treatment":"R","outcome":"L","adjustment":["C"],"scenario":"southafrica"}`, "18446744073709551615", "gen:access=10+treated=2+seed=3"},
		{`{"graph":"U [latent]; U -> R; U -> L; R -> L","treatment":"R","outcome":"L"}`, "-1", "gen:"},
		{`{"graph":"C -> R; C -> L; R -> L; hour -> C","treatment":"C","outcome":"L","adjustment":["hour"]}`, "007", "gen:bogus"},
		{`{"treatment":"R","outcome":"R","seed":18446744073709551616}`, "42x", "gen:access=-1"},
		{`{"treatment":`, "9223372036854775808", "atlantis"},
		{`[]`, "", "gen:tier1=0+tier2=0+access=0"},
		{`{"treatment":"R","outcome":"L"} {"x":1}`, "0x10", "GEN:access=1"},
	}
	for _, s := range seeds {
		f.Add([]byte(s.body), s.seed, s.scen)
	}
	f.Fuzz(func(t *testing.T, body []byte, seedParam, scenParam string) {
		if q, err := experiments.DecodeCausalQuery(body); err == nil {
			// A decodable document must compile without panicking; both
			// verdicts (plan or typed error) are legal.
			_, _ = experiments.CompileCausalQuery(q)
		}
		_, _ = parseSeed(seedParam)
		var s Server
		_, _ = s.parseWorkers(seedParam)
		// Scenario tokens resolve ids and gen: specs; hostile specs must be
		// typed errors. Resolution registers (never builds) worlds, so this
		// is cheap even when the spec is valid.
		_, _ = scenario.ResolveID(scenParam)
	})
}
