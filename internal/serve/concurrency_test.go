package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"sisyphus/internal/artifact"
	"sisyphus/internal/obs"
	"sisyphus/internal/parallel"
)

// newRecorderServer returns a Server with a live recorder, as sisyphusd
// configures when -admin is set.
func newRecorderServer(t *testing.T) *Server {
	t.Helper()
	return New(Config{Store: artifact.NewStore(), Pool: parallel.Pool{}, Recorder: obs.NewRecorder()})
}

// responseKeyStats returns the per-key stats of the single response-kind
// artifact in the store, failing if there is not exactly one.
func responseKeyStats(t *testing.T, s *Server, kind string) artifact.KeyStats {
	t.Helper()
	var found []artifact.KeyStats
	for key, st := range s.cfg.Store.PerKey() {
		if key.Kind == kind {
			found = append(found, st)
		}
	}
	if len(found) != 1 {
		t.Fatalf("store has %d %q keys, want exactly 1", len(found), kind)
	}
	return found[0]
}

// TestConcurrentIdenticalRequestsCollapse is the singleflight assertion:
// N identical concurrent requests must produce exactly one response build
// (and one underlying world build), with every response byte-identical.
func TestConcurrentIdenticalRequestsCollapse(t *testing.T) {
	if testing.Short() {
		t.Skip("runs an experiment")
	}
	s := newTestServer(t)
	const n = 8
	bodies := make([][]byte, n)
	codes := make([]int, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			req := httptest.NewRequest(http.MethodGet, "/experiment/mlab?seed=5", nil)
			rec := httptest.NewRecorder()
			s.Handler().ServeHTTP(rec, req)
			codes[i] = rec.Code
			bodies[i] = rec.Body.Bytes()
		}(i)
	}
	wg.Wait()
	for i := 0; i < n; i++ {
		if codes[i] != http.StatusOK {
			t.Fatalf("request %d: status %d: %s", i, codes[i], bodies[i])
		}
		if !bytes.Equal(bodies[i], bodies[0]) {
			t.Errorf("request %d served different bytes than request 0", i)
		}
	}
	st := responseKeyStats(t, s, "response")
	if st.Builds != 1 {
		t.Errorf("response built %d times for %d identical requests, want 1", st.Builds, n)
	}
	if st.Hits != n-1 {
		t.Errorf("response hits = %d, want %d (joiners and later requests all hit)", st.Hits, n-1)
	}
}

// TestMixedWidthRequestsShareOneBuild pins the width-independence contract
// end to end: concurrent requests for the same document at different
// ?workers= widths must not interfere — same bytes, and one shared build,
// because width is deliberately not a response-cache coordinate.
func TestMixedWidthRequestsShareOneBuild(t *testing.T) {
	if testing.Short() {
		t.Skip("runs an experiment")
	}
	s := newTestServer(t)
	widths := []string{"1", "2", "3", "4"}
	bodies := make([][]byte, len(widths))
	var wg sync.WaitGroup
	for i, w := range widths {
		wg.Add(1)
		go func(i int, w string) {
			defer wg.Done()
			req := httptest.NewRequest(http.MethodGet, "/experiment/mlab?seed=9&workers="+w, nil)
			rec := httptest.NewRecorder()
			s.Handler().ServeHTTP(rec, req)
			if rec.Code != http.StatusOK {
				t.Errorf("width %s: status %d: %s", w, rec.Code, rec.Body)
			}
			bodies[i] = rec.Body.Bytes()
		}(i, w)
	}
	wg.Wait()
	for i := range widths {
		if !bytes.Equal(bodies[i], bodies[0]) {
			t.Errorf("width %s served different bytes than width %s", widths[i], widths[0])
		}
	}
	st := responseKeyStats(t, s, "response")
	if st.Builds != 1 {
		t.Errorf("response built %d times across %d widths, want 1", st.Builds, len(widths))
	}
}

// TestCancelledRequestDoesNotPoisonStore cancels a client mid-build, checks
// the request reports the context error, then repeats the identical request
// and requires a clean success — a cancelled build must never leave a
// poisoned entry behind.
func TestCancelledRequestDoesNotPoisonStore(t *testing.T) {
	if testing.Short() {
		t.Skip("runs simulations")
	}
	s := newTestServer(t)
	const path = "/experiment/confounding?seed=3&opts=" + `{"Hours":240}`

	ctx, cancel := context.WithCancel(context.Background())
	time.AfterFunc(50*time.Millisecond, cancel)
	req := httptest.NewRequest(http.MethodGet, path, nil).WithContext(ctx)
	rec := httptest.NewRecorder()
	s.Handler().ServeHTTP(rec, req)
	if rec.Code != 499 {
		t.Fatalf("cancelled request: status = %d, want 499 (body %s)", rec.Code, rec.Body)
	}
	if !strings.Contains(rec.Body.String(), "context canceled") {
		t.Errorf("cancelled request body %q does not surface the ctx error", rec.Body)
	}

	req = httptest.NewRequest(http.MethodGet, path, nil)
	rec = httptest.NewRecorder()
	s.Handler().ServeHTTP(rec, req)
	if rec.Code != http.StatusOK {
		t.Fatalf("retry after cancellation: status = %d: %s", rec.Code, rec.Body)
	}
	var doc map[string]any
	if err := json.Unmarshal(rec.Body.Bytes(), &doc); err != nil {
		t.Fatalf("retry served invalid JSON: %v", err)
	}
}

// TestCancelledJoinerLeavesBuilderUnharmed starts two identical concurrent
// requests, cancels one almost immediately, and requires the survivor to
// complete normally: one client walking away must not abort the shared
// build for everyone else.
func TestCancelledJoinerLeavesBuilderUnharmed(t *testing.T) {
	if testing.Short() {
		t.Skip("runs simulations")
	}
	s := newTestServer(t)
	const path = "/experiment/confounding?seed=4&opts=" + `{"Hours":200}`

	var wg sync.WaitGroup
	var survivorCode, cancelledCode int
	var survivorBody []byte
	wg.Add(2)
	go func() {
		defer wg.Done()
		req := httptest.NewRequest(http.MethodGet, path, nil)
		rec := httptest.NewRecorder()
		s.Handler().ServeHTTP(rec, req)
		survivorCode, survivorBody = rec.Code, rec.Body.Bytes()
	}()
	go func() {
		defer wg.Done()
		ctx, cancel := context.WithCancel(context.Background())
		time.AfterFunc(30*time.Millisecond, cancel)
		req := httptest.NewRequest(http.MethodGet, path, nil).WithContext(ctx)
		rec := httptest.NewRecorder()
		s.Handler().ServeHTTP(rec, req)
		cancelledCode = rec.Code
	}()
	wg.Wait()
	if survivorCode != http.StatusOK {
		t.Fatalf("survivor: status = %d: %s", survivorCode, survivorBody)
	}
	if cancelledCode != 499 && cancelledCode != http.StatusOK {
		// The raced schedule may let the cancelled client finish before its
		// timer fires; both outcomes are legal, an unrelated error is not.
		t.Errorf("cancelled joiner: status = %d, want 499 (or 200 if it outran the cancel)", cancelledCode)
	}
}

// TestRequestTimeoutReturns504 pins the -request-timeout semantics: a
// request whose build exceeds the server's bound aborts within one pipeline
// stage and reports 504 with the deadline error.
func TestRequestTimeoutReturns504(t *testing.T) {
	if testing.Short() {
		t.Skip("runs a simulation")
	}
	s := New(Config{
		Store:          artifact.NewStore(),
		Pool:           parallel.Pool{},
		RequestTimeout: 60 * time.Millisecond,
	})
	rec := get(t, s, "/experiment/confounding?seed=6")
	if rec.Code != http.StatusGatewayTimeout {
		t.Fatalf("status = %d, want 504 (body %s)", rec.Code, rec.Body)
	}
	if !strings.Contains(rec.Body.String(), "deadline") {
		t.Errorf("timeout body %q does not mention the deadline", rec.Body)
	}
}

// TestConcurrentQueriesCollapse runs the singleflight assertion on the
// /query path: identical concurrent causal questions share one response
// build and one observational-frame simulation.
func TestConcurrentQueriesCollapse(t *testing.T) {
	if testing.Short() {
		t.Skip("runs a simulation")
	}
	s := newTestServer(t)
	const body = `{"treatment":"R","outcome":"L","hours":120,"seed":11}`
	const n = 6
	bodies := make([][]byte, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			req := httptest.NewRequest(http.MethodPost, "/query", strings.NewReader(body))
			rec := httptest.NewRecorder()
			s.Handler().ServeHTTP(rec, req)
			if rec.Code != http.StatusOK {
				t.Errorf("query %d: status %d: %s", i, rec.Code, rec.Body)
			}
			bodies[i] = rec.Body.Bytes()
		}(i)
	}
	wg.Wait()
	for i := 1; i < n; i++ {
		if !bytes.Equal(bodies[i], bodies[0]) {
			t.Errorf("query %d served different bytes than query 0", i)
		}
	}
	if st := responseKeyStats(t, s, "queryresp"); st.Builds != 1 {
		t.Errorf("query response built %d times for %d identical queries, want 1", st.Builds, n)
	}
	if st := responseKeyStats(t, s, "qframe"); st.Builds != 1 {
		t.Errorf("observational frame built %d times, want 1", st.Builds)
	}
}
