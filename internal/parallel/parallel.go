// Package parallel is the repository's worker-pool substrate. Every hot
// loop that fans out over independent tasks — placebo donor fits, the
// E1–E14 experiment suite, per-destination BGP propagation, Monte-Carlo
// sampling shards — goes through ForEach or Map rather than spawning ad-hoc
// goroutines, so concurrency policy (pool width, sequential fallback) lives
// in one place.
//
// Determinism contract: callers must make each task a pure function of its
// index. Anything stochastic pre-splits its RNG streams per index (via
// mathx.RNG.Split, in index order, before dispatch) so that task i consumes
// the same stream no matter which worker runs it or in what order. Under
// that discipline Map's output — and therefore every experiment table — is
// bit-identical between Workers()==1 and Workers()==N. DESIGN.md's
// "Concurrency & determinism" section records the rule.
package parallel

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// workerOverride, when positive, pins the pool width; 0 means "use
// GOMAXPROCS". Tests use SetWorkers to force either sequential execution or
// a wide pool on a single-core machine.
var workerOverride atomic.Int64

// Workers reports the pool width used for subsequent ForEach/Map calls:
// the SetWorkers override if one is set, else runtime.GOMAXPROCS(0).
func Workers() int {
	if n := workerOverride.Load(); n > 0 {
		return int(n)
	}
	return runtime.GOMAXPROCS(0)
}

// SetWorkers overrides the pool width (n <= 0 restores the GOMAXPROCS
// default) and returns a function restoring the previous setting — designed
// for `defer parallel.SetWorkers(4)()` in tests and for CLI -workers flags.
func SetWorkers(n int) (restore func()) {
	prev := workerOverride.Load()
	if n < 0 {
		n = 0
	}
	workerOverride.Store(int64(n))
	return func() { workerOverride.Store(prev) }
}

// ForEach runs fn(0), …, fn(n-1) across the worker pool and blocks until
// every call returns. If any calls return a non-nil error, the error with
// the lowest index is returned — the same error a sequential
// stop-at-first-failure loop would have surfaced, regardless of worker
// interleaving. All n calls run even after a failure (tasks are independent
// by contract, and finishing keeps cancellation logic out of callers).
// A panic in any task is re-raised in the caller.
func ForEach(n int, fn func(i int) error) error {
	if n <= 0 {
		return nil
	}
	workers := Workers()
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		// Sequential fast path: no goroutines, but the identical
		// stop-never/lowest-error semantics as the concurrent branch.
		var first error
		for i := 0; i < n; i++ {
			if err := fn(i); err != nil && first == nil {
				first = err
			}
		}
		return first
	}

	errs := make([]error, n)
	var next atomic.Int64
	var panicked atomic.Value // first panic, re-raised in the caller
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				func() {
					defer func() {
						if r := recover(); r != nil {
							panicked.CompareAndSwap(nil, r)
						}
					}()
					errs[i] = fn(i)
				}()
			}
		}()
	}
	wg.Wait()
	if r := panicked.Load(); r != nil {
		panic(r)
	}
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// Map runs fn for every index and returns the results in index order —
// out[i] == fn(i) — independent of scheduling. On error it still returns
// the full slice (failed slots hold the zero value) alongside the
// lowest-index error, mirroring ForEach.
func Map[T any](n int, fn func(i int) (T, error)) ([]T, error) {
	out := make([]T, n)
	err := ForEach(n, func(i int) error {
		v, err := fn(i)
		out[i] = v
		return err
	})
	return out, err
}
