// Package parallel is the repository's worker-pool substrate. Every hot
// loop that fans out over independent tasks — placebo donor fits, the
// E1–E15 experiment suite, per-destination BGP propagation, Monte-Carlo
// sampling shards — goes through a Pool's ForEach or the package Map rather
// than spawning ad-hoc goroutines, so concurrency policy (pool width,
// sequential fallback, cancellation) lives in one place.
//
// Pools are values. A Pool is an immutable description of a width; it holds
// no goroutines, no locks, and no global state, so two runs with different
// pools never interfere — the property that lets a server host concurrent
// analyses with per-request widths. The zero Pool is valid and resolves to
// the process default (GOMAXPROCS).
//
// Cancellation contract: ForEach and Map stop scheduling new tasks as soon
// as ctx is cancelled and return ctx.Err(). Tasks already running finish
// (they are pure functions of their index and cheap relative to a stage);
// their results are discarded by callers that see the context error. A
// context that is never cancelled changes nothing: every task runs and the
// error/result semantics below are bit-identical to a plain sequential loop.
//
// Determinism contract: callers must make each task a pure function of its
// index. Anything stochastic pre-splits its RNG streams per index (via
// mathx.RNG.Split, in index order, before dispatch) so that task i consumes
// the same stream no matter which worker runs it or in what order. Under
// that discipline Map's output — and therefore every experiment table — is
// bit-identical between Workers()==1 and Workers()==N. DESIGN.md's
// "Concurrency & determinism" section records the rule.
package parallel

import (
	"context"
	"runtime"
	"sync"
	"sync/atomic"

	"sisyphus/internal/obs"
)

// Pool is a value describing a worker-pool width. The zero value resolves
// to the process default at call time. Copying a Pool is free and safe;
// concurrent use of the same Pool value is safe (it is immutable).
type Pool struct {
	workers int
}

// NewPool returns a pool pinned to the given width. n <= 0 returns the
// default pool (GOMAXPROCS).
func NewPool(n int) Pool {
	if n < 0 {
		n = 0
	}
	return Pool{workers: n}
}

// Default returns the default-width pool (equivalent to the zero Pool).
func Default() Pool { return Pool{} }

// Workers reports the width this pool runs at: the pinned width if set,
// else runtime.GOMAXPROCS(0).
func (p Pool) Workers() int {
	if p.workers > 0 {
		return p.workers
	}
	return runtime.GOMAXPROCS(0)
}

// Workers reports the width of the default pool: runtime.GOMAXPROCS(0).
func Workers() int { return Pool{}.Workers() }

// ForEach runs fn(0), …, fn(n-1) across the pool and blocks until every
// scheduled call returns.
//
// If ctx is cancelled, no further tasks are scheduled and ForEach returns
// ctx.Err() (a pre-cancelled context runs nothing). Otherwise all n calls
// run even after a task failure — tasks are independent by contract — and
// if any return a non-nil error, the error with the lowest index is
// returned: the same error a sequential stop-at-first-failure loop would
// have surfaced, regardless of worker interleaving. A panic in any task is
// re-raised in the caller.
func (p Pool) ForEach(ctx context.Context, n int, fn func(i int) error) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	if n <= 0 {
		return nil
	}
	// Account the fan-out when a recorder rides the context (nil-recorder
	// no-op otherwise). Reading the batch size never changes scheduling.
	obs.Add(ctx, "parallel.batches", 1)
	obs.Add(ctx, "parallel.tasks", int64(n))
	workers := p.Workers()
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		// Sequential fast path: no goroutines, but identical cancellation
		// and lowest-error semantics as the concurrent branch.
		var first error
		for i := 0; i < n; i++ {
			if err := ctx.Err(); err != nil {
				return err
			}
			if err := fn(i); err != nil && first == nil {
				first = err
			}
		}
		return first
	}

	errs := make([]error, n)
	var next atomic.Int64
	var cancelled atomic.Bool
	var panicked atomic.Value // first panic, re-raised in the caller
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				if ctx.Err() != nil {
					cancelled.Store(true)
					return
				}
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				func() {
					defer func() {
						if r := recover(); r != nil {
							panicked.CompareAndSwap(nil, r)
						}
					}()
					errs[i] = fn(i)
				}()
			}
		}()
	}
	wg.Wait()
	if r := panicked.Load(); r != nil {
		panic(r)
	}
	if cancelled.Load() {
		return ctx.Err()
	}
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// Map runs fn for every index across the pool and returns the results in
// index order — out[i] == fn(i) — independent of scheduling. On error it
// still returns the full slice (failed or unscheduled slots hold the zero
// value) alongside the error: ctx.Err() if the run was cancelled, else the
// lowest-index task error, mirroring ForEach.
func Map[T any](ctx context.Context, p Pool, n int, fn func(i int) (T, error)) ([]T, error) {
	out := make([]T, n)
	err := p.ForEach(ctx, n, func(i int) error {
		v, err := fn(i)
		out[i] = v
		return err
	})
	return out, err
}
