package parallel

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestMapOrdered(t *testing.T) {
	ctx := context.Background()
	for _, workers := range []int{1, 4, 16} {
		p := NewPool(workers)
		out, err := Map(ctx, p, 100, func(i int) (int, error) { return i * i, nil })
		if err != nil {
			t.Fatal(err)
		}
		for i, v := range out {
			if v != i*i {
				t.Fatalf("workers=%d: out[%d] = %d want %d", workers, i, v, i*i)
			}
		}
	}
}

func TestForEachRunsEveryIndexExactlyOnce(t *testing.T) {
	const n = 250
	var counts [n]atomic.Int64
	if err := NewPool(8).ForEach(context.Background(), n, func(i int) error {
		counts[i].Add(1)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	for i := range counts {
		if c := counts[i].Load(); c != 1 {
			t.Fatalf("index %d ran %d times", i, c)
		}
	}
}

// TestLowestIndexError checks the determinism contract: whichever worker
// finishes first, the reported error is the one a sequential loop would
// have hit first.
func TestLowestIndexError(t *testing.T) {
	for _, workers := range []int{1, 7} {
		err := NewPool(workers).ForEach(context.Background(), 50, func(i int) error {
			if i%10 == 3 { // fails at 3, 13, 23, …
				return fmt.Errorf("task %d failed", i)
			}
			return nil
		})
		if err == nil || err.Error() != "task 3 failed" {
			t.Fatalf("workers=%d: err = %v, want the lowest-index failure", workers, err)
		}
	}
}

func TestMapReturnsPartialResultsOnError(t *testing.T) {
	sentinel := errors.New("boom")
	out, err := Map(context.Background(), NewPool(4), 10, func(i int) (int, error) {
		if i == 5 {
			return 0, sentinel
		}
		return i + 1, nil
	})
	if !errors.Is(err, sentinel) {
		t.Fatalf("err = %v", err)
	}
	if len(out) != 10 || out[0] != 1 || out[9] != 10 || out[5] != 0 {
		t.Fatalf("partial results wrong: %v", out)
	}
}

func TestPanicPropagates(t *testing.T) {
	defer func() {
		if r := recover(); r == nil {
			t.Fatal("worker panic was swallowed")
		}
	}()
	_ = NewPool(4).ForEach(context.Background(), 20, func(i int) error {
		if i == 7 {
			panic("worker 7 exploded")
		}
		return nil
	})
	t.Fatal("unreachable: ForEach should have panicked")
}

func TestZeroAndNegativeN(t *testing.T) {
	ctx := context.Background()
	var p Pool // zero value: default pool
	if err := p.ForEach(ctx, 0, func(int) error { t.Fatal("called"); return nil }); err != nil {
		t.Fatal(err)
	}
	if err := p.ForEach(ctx, -3, func(int) error { t.Fatal("called"); return nil }); err != nil {
		t.Fatal(err)
	}
	out, err := Map(ctx, p, 0, func(int) (int, error) { return 0, nil })
	if err != nil || len(out) != 0 {
		t.Fatalf("Map(0) = %v, %v", out, err)
	}
}

// TestPoolWidths pins the width-resolution rules: a pinned pool reports its
// own width, and default (zero-valued) pools resolve to GOMAXPROCS.
func TestPoolWidths(t *testing.T) {
	if NewPool(5).Workers() != 5 {
		t.Fatalf("pinned pool width = %d want 5", NewPool(5).Workers())
	}
	want := runtime.GOMAXPROCS(0)
	if (Pool{}).Workers() != want {
		t.Fatalf("default pool width = %d want GOMAXPROCS %d", (Pool{}).Workers(), want)
	}
	if Workers() != want {
		t.Fatalf("Workers() = %d want GOMAXPROCS %d", Workers(), want)
	}
	if NewPool(0).Workers() != want || NewPool(-1).Workers() != want {
		t.Fatalf("n <= 0 must resolve to the default width")
	}
}

// TestPreCancelledContextRunsNothing: a context that is already cancelled
// must short-circuit before any task is scheduled.
func TestPreCancelledContextRunsNothing(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for _, workers := range []int{1, 4} {
		var ran atomic.Int64
		err := NewPool(workers).ForEach(ctx, 100, func(i int) error {
			ran.Add(1)
			return nil
		})
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("workers=%d: err = %v want context.Canceled", workers, err)
		}
		if ran.Load() != 0 {
			t.Fatalf("workers=%d: %d tasks ran under a pre-cancelled context", workers, ran.Load())
		}
		out, err := Map(ctx, NewPool(workers), 10, func(i int) (int, error) { return i + 1, nil })
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("workers=%d: Map err = %v want context.Canceled", workers, err)
		}
		if len(out) != 10 || out[0] != 0 {
			t.Fatalf("workers=%d: Map returned scheduled work %v", workers, out)
		}
	}
}

// TestCancelMidRunStopsScheduling: cancelling while tasks are in flight
// stops new tasks from being scheduled and surfaces ctx.Err(); in-flight
// tasks complete.
func TestCancelMidRunStopsScheduling(t *testing.T) {
	for _, workers := range []int{1, 4} {
		ctx, cancel := context.WithCancel(context.Background())
		var ran atomic.Int64
		const n = 1000
		err := NewPool(workers).ForEach(ctx, n, func(i int) error {
			if ran.Add(1) == 5 {
				cancel()
			}
			return nil
		})
		cancel()
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("workers=%d: err = %v want context.Canceled", workers, err)
		}
		// Each in-flight worker may complete the task it already claimed,
		// but nothing new is scheduled after the cancel is observed.
		if got := ran.Load(); got > int64(5+workers) {
			t.Fatalf("workers=%d: %d tasks ran after cancellation", workers, got)
		}
	}
}

// TestCancelAfterCompletionIsNoError: a context cancelled only after every
// task has finished must not retroactively fail the run.
func TestCancelAfterCompletionIsNoError(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	out, err := Map(ctx, NewPool(2), 8, func(i int) (int, error) { return i, nil })
	cancel()
	if err != nil {
		t.Fatalf("err = %v", err)
	}
	if len(out) != 8 {
		t.Fatalf("out = %v", out)
	}
}

// TestDeadlineSurfacesDeadlineExceeded: ForEach reports the context's own
// error kind, so callers can distinguish timeouts from interrupts.
func TestDeadlineSurfacesDeadlineExceeded(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), time.Millisecond)
	defer cancel()
	<-ctx.Done()
	err := NewPool(4).ForEach(ctx, 10, func(int) error { return nil })
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v want context.DeadlineExceeded", err)
	}
}

// TestPoolsAreIndependentValues is the pool-as-value proof at the substrate
// level: two concurrent runs with different widths each observe exactly
// their own width, with no cross-talk through globals.
func TestPoolsAreIndependentValues(t *testing.T) {
	ctx := context.Background()
	run := func(p Pool, n int) (maxInFlight int64) {
		var inFlight, maxSeen atomic.Int64
		_ = p.ForEach(ctx, n, func(int) error {
			cur := inFlight.Add(1)
			for {
				prev := maxSeen.Load()
				if cur <= prev || maxSeen.CompareAndSwap(prev, cur) {
					break
				}
			}
			time.Sleep(200 * time.Microsecond)
			inFlight.Add(-1)
			return nil
		})
		return maxSeen.Load()
	}
	var wg sync.WaitGroup
	var narrowMax, wideMax int64
	wg.Add(2)
	go func() { defer wg.Done(); narrowMax = run(NewPool(1), 40) }()
	go func() { defer wg.Done(); wideMax = run(NewPool(8), 200) }()
	wg.Wait()
	if narrowMax != 1 {
		t.Fatalf("width-1 pool observed %d concurrent tasks", narrowMax)
	}
	if wideMax > 8 {
		t.Fatalf("width-8 pool observed %d concurrent tasks", wideMax)
	}
}
