package parallel

import (
	"errors"
	"fmt"
	"sync/atomic"
	"testing"
)

func TestMapOrdered(t *testing.T) {
	for _, workers := range []int{1, 4, 16} {
		defer SetWorkers(workers)()
		out, err := Map(100, func(i int) (int, error) { return i * i, nil })
		if err != nil {
			t.Fatal(err)
		}
		for i, v := range out {
			if v != i*i {
				t.Fatalf("workers=%d: out[%d] = %d want %d", workers, i, v, i*i)
			}
		}
	}
}

func TestForEachRunsEveryIndexExactlyOnce(t *testing.T) {
	defer SetWorkers(8)()
	const n = 250
	var counts [n]atomic.Int64
	if err := ForEach(n, func(i int) error {
		counts[i].Add(1)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	for i := range counts {
		if c := counts[i].Load(); c != 1 {
			t.Fatalf("index %d ran %d times", i, c)
		}
	}
}

// TestLowestIndexError checks the determinism contract: whichever worker
// finishes first, the reported error is the one a sequential loop would
// have hit first.
func TestLowestIndexError(t *testing.T) {
	for _, workers := range []int{1, 7} {
		defer SetWorkers(workers)()
		err := ForEach(50, func(i int) error {
			if i%10 == 3 { // fails at 3, 13, 23, …
				return fmt.Errorf("task %d failed", i)
			}
			return nil
		})
		if err == nil || err.Error() != "task 3 failed" {
			t.Fatalf("workers=%d: err = %v, want the lowest-index failure", workers, err)
		}
	}
}

func TestMapReturnsPartialResultsOnError(t *testing.T) {
	defer SetWorkers(4)()
	sentinel := errors.New("boom")
	out, err := Map(10, func(i int) (int, error) {
		if i == 5 {
			return 0, sentinel
		}
		return i + 1, nil
	})
	if !errors.Is(err, sentinel) {
		t.Fatalf("err = %v", err)
	}
	if len(out) != 10 || out[0] != 1 || out[9] != 10 || out[5] != 0 {
		t.Fatalf("partial results wrong: %v", out)
	}
}

func TestPanicPropagates(t *testing.T) {
	defer SetWorkers(4)()
	defer func() {
		if r := recover(); r == nil {
			t.Fatal("worker panic was swallowed")
		}
	}()
	_ = ForEach(20, func(i int) error {
		if i == 7 {
			panic("worker 7 exploded")
		}
		return nil
	})
	t.Fatal("unreachable: ForEach should have panicked")
}

func TestZeroAndNegativeN(t *testing.T) {
	if err := ForEach(0, func(int) error { t.Fatal("called"); return nil }); err != nil {
		t.Fatal(err)
	}
	if err := ForEach(-3, func(int) error { t.Fatal("called"); return nil }); err != nil {
		t.Fatal(err)
	}
	out, err := Map(0, func(int) (int, error) { return 0, nil })
	if err != nil || len(out) != 0 {
		t.Fatalf("Map(0) = %v, %v", out, err)
	}
}

func TestSetWorkersRestore(t *testing.T) {
	base := Workers()
	restore := SetWorkers(3)
	if Workers() != 3 {
		t.Fatalf("Workers() = %d want 3", Workers())
	}
	restore()
	if Workers() != base {
		t.Fatalf("Workers() = %d want restored %d", Workers(), base)
	}
}
