package topo

import (
	"fmt"

	"sisyphus/internal/netsim/geo"
)

// Builder assembles a Topology incrementally. All methods panic-free:
// errors accumulate and Build returns the first one, so scenario code can
// chain calls without per-call error plumbing.
type Builder struct {
	t   *Topology
	err error
}

// NewBuilder returns a builder using the given city registry (nil selects
// geo.DefaultRegistry).
func NewBuilder(reg *geo.Registry) *Builder {
	if reg == nil {
		reg = geo.DefaultRegistry()
	}
	return &Builder{t: &Topology{
		Registry:     reg,
		ases:         make(map[ASN]*AS),
		popIndex:     make(map[popKey]PoPID),
		adj:          make(map[PoPID][]LinkID),
		ixps:         make(map[string]*IXP),
		ixpMemberIdx: make(map[string]map[ASN]int),
	}}
}

func (b *Builder) fail(format string, args ...any) {
	if b.err == nil {
		b.err = fmt.Errorf(format, args...)
	}
}

// AddAS registers an AS with PoPs in the named cities.
func (b *Builder) AddAS(asn ASN, name string, typ ASType, cities ...string) *Builder {
	if b.err != nil {
		return b
	}
	if _, ok := b.t.ases[asn]; ok {
		b.fail("topo: duplicate AS%d", asn)
		return b
	}
	if len(cities) == 0 {
		b.fail("topo: AS%d needs at least one PoP city", asn)
		return b
	}
	b.t.ases[asn] = &AS{ASN: asn, Name: name, Type: typ}
	b.t.asOrder = append(b.t.asOrder, asn)
	for _, city := range cities {
		if _, err := b.t.Registry.Get(city); err != nil {
			b.fail("topo: AS%d: %v", asn, err)
			return b
		}
		key := popKey{asn, city}
		if _, ok := b.t.popIndex[key]; ok {
			b.fail("topo: AS%d already has a PoP in %s", asn, city)
			return b
		}
		id := PoPID(len(b.t.pops))
		b.t.pops = append(b.t.pops, PoP{ID: id, AS: asn, City: city})
		b.t.popIndex[key] = id
	}
	return b
}

// LinkOpt tweaks a link at creation.
type LinkOpt func(*Link)

// WithCapacity sets link capacity in Mbps.
func WithCapacity(mbps float64) LinkOpt {
	return func(l *Link) { l.CapacityMbps = mbps }
}

// WithBaseUtil sets the baseline background utilization in [0, 1).
func WithBaseUtil(u float64) LinkOpt {
	return func(l *Link) { l.BaseUtil = u }
}

// WithDelayMs overrides the geographic propagation delay.
func WithDelayMs(ms float64) LinkOpt {
	return func(l *Link) { l.DelayMs = ms }
}

// Connect links two PoPs, identified by (ASN, city) pairs, with the given
// relationship read from the first side. Delay defaults to the geographic
// propagation between the two cities; capacity defaults to 10 Gbps.
func (b *Builder) Connect(aASN ASN, aCity string, rel Relationship, bASN ASN, bCity string, opts ...LinkOpt) *Builder {
	if b.err != nil {
		return b
	}
	pa, ok := b.t.popIndex[popKey{aASN, aCity}]
	if !ok {
		b.fail("topo: connect: AS%d has no PoP in %s", aASN, aCity)
		return b
	}
	pb, ok := b.t.popIndex[popKey{bASN, bCity}]
	if !ok {
		b.fail("topo: connect: AS%d has no PoP in %s", bASN, bCity)
		return b
	}
	l := &Link{
		ID: LinkID(len(b.t.links)), A: pa, B: pb, Rel: rel,
		CapacityMbps: 10000, Up: true,
	}
	for _, opt := range opts {
		opt(l)
	}
	if l.DelayMs == 0 {
		ca := b.t.Registry.MustGet(aCity)
		cb := b.t.Registry.MustGet(bCity)
		l.DelayMs = geo.PropagationMs(ca, cb)
		if l.DelayMs < 0.2 {
			l.DelayMs = 0.2 // same-city metro link still has a floor
		}
	}
	b.t.links = append(b.t.links, l)
	b.t.adj[pa] = append(b.t.adj[pa], l.ID)
	b.t.adj[pb] = append(b.t.adj[pb], l.ID)
	return b
}

// AddIXP declares an exchange point in a city with the given peering-LAN
// prefix (e.g. "196.60.8.").
func (b *Builder) AddIXP(name, city, prefix string) *Builder {
	if b.err != nil {
		return b
	}
	if _, ok := b.t.ixps[name]; ok {
		b.fail("topo: duplicate IXP %q", name)
		return b
	}
	if _, err := b.t.Registry.Get(city); err != nil {
		b.fail("topo: IXP %s: %v", name, err)
		return b
	}
	b.t.ixps[name] = &IXP{Name: name, City: city, Prefix: prefix}
	b.t.ixpMemberIdx[name] = make(map[ASN]int)
	return b
}

// Build validates and returns the topology.
func (b *Builder) Build() (*Topology, error) {
	if b.err != nil {
		return nil, b.err
	}
	if len(b.t.ases) == 0 {
		return nil, fmt.Errorf("topo: empty topology")
	}
	// Relationship consistency check.
	if _, err := b.t.Relationships(); err != nil {
		return nil, err
	}
	return b.t, nil
}

// JoinIXP connects an AS (which must have a PoP in the IXP's city) to the
// exchange: it becomes a LAN member and gains peer links to every existing
// member. Returns the new link IDs. This is the E1 "treatment" — the paper's
// intervention is exactly this call happening mid-measurement-campaign.
func (t *Topology) JoinIXP(name string, asn ASN) ([]LinkID, error) {
	t.mutable("JoinIXP") // CoW promotion must precede the IXP lookup below
	x, err := t.IXP(name)
	if err != nil {
		return nil, err
	}
	pop, err := t.FindPoP(asn, x.City)
	if err != nil {
		return nil, fmt.Errorf("topo: AS%d cannot join %s: %w", asn, name, err)
	}
	if _, ok := t.ixpMemberIdx[name][asn]; ok {
		return nil, fmt.Errorf("topo: AS%d is already a member of %s", asn, name)
	}
	var created []LinkID
	for _, member := range x.Members {
		mpop, err := t.FindPoP(member, x.City)
		if err != nil {
			return nil, fmt.Errorf("topo: member AS%d lost its %s PoP: %w", member, x.City, err)
		}
		l := &Link{
			ID: LinkID(len(t.links)), A: pop, B: mpop, Rel: PeerWith,
			CapacityMbps: 100000, DelayMs: 0.25, BaseUtil: 0.25, Up: true, IXP: name,
		}
		t.links = append(t.links, l)
		t.adj[pop] = append(t.adj[pop], l.ID)
		t.adj[mpop] = append(t.adj[mpop], l.ID)
		created = append(created, l.ID)
	}
	t.ixpMemberIdx[name][asn] = len(x.Members)
	x.Members = append(x.Members, asn)
	return created, nil
}

// IXPMemberIndex returns the LAN index of a member (for address assignment)
// and whether the AS is a member.
func (t *Topology) IXPMemberIndex(name string, asn ASN) (int, bool) {
	m, ok := t.ixpMemberIdx[name]
	if !ok {
		return 0, false
	}
	idx, ok := m[asn]
	return idx, ok
}
