package topo

// Clone returns an independent copy of the topology: a caller may join
// IXPs, flap links, or otherwise mutate the copy without perturbing the
// original.
//
// On a frozen topology (the artifact store's case) this is pointer-cheap:
// the clone shares every structure with the frozen original and copies the
// mutable overlay lazily, on its first mutation. An unmutated clone
// therefore costs one struct allocation, which is what makes artifact
// cache hits nearly free.
//
// On a mutable topology it falls back to the eager deep copy: the original
// may still change, so sharing would not be safe.
func (t *Topology) Clone() *Topology {
	if t.frozen {
		return &Topology{
			Registry:     t.Registry,
			ases:         t.ases,
			asOrder:      t.asOrder,
			pops:         t.pops,
			popIndex:     t.popIndex,
			links:        t.links,
			adj:          t.adj,
			ixps:         t.ixps,
			ixpMemberIdx: t.ixpMemberIdx,
			cow:          true,
		}
	}
	out := &Topology{
		Registry:     t.Registry,
		ases:         t.ases,    // immutable core: shared even on deep copies
		asOrder:      t.asOrder, // (nothing writes these after Build)
		pops:         t.pops,
		popIndex:     t.popIndex,
		links:        make([]*Link, len(t.links)),
		adj:          make(map[PoPID][]LinkID, len(t.adj)),
		ixps:         make(map[string]*IXP, len(t.ixps)),
		ixpMemberIdx: make(map[string]map[ASN]int, len(t.ixpMemberIdx)),
	}
	for i, l := range t.links {
		c := *l
		out.links[i] = &c
	}
	for p, ids := range t.adj {
		out.adj[p] = append([]LinkID(nil), ids...)
	}
	for name, x := range t.ixps {
		c := *x
		c.Members = append([]ASN(nil), x.Members...)
		out.ixps[name] = &c
	}
	for name, m := range t.ixpMemberIdx {
		cm := make(map[ASN]int, len(m))
		for asn, i := range m {
			cm[asn] = i
		}
		out.ixpMemberIdx[name] = cm
	}
	return out
}
