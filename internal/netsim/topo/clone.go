package topo

// Clone returns a deep copy of the topology: a caller may join IXPs, flap
// links, or otherwise mutate the copy without perturbing the original. The
// geo Registry is shared — it is read-only after construction — but every
// mutable structure (AS records, PoPs, links, adjacency, IXP membership) is
// copied. This is the primitive that lets the artifact store hand out
// independent worlds from one frozen build.
func (t *Topology) Clone() *Topology {
	out := &Topology{
		Registry:     t.Registry,
		ases:         make(map[ASN]*AS, len(t.ases)),
		asOrder:      append([]ASN(nil), t.asOrder...),
		pops:         append([]PoP(nil), t.pops...),
		popIndex:     make(map[popKey]PoPID, len(t.popIndex)),
		links:        make([]*Link, len(t.links)),
		adj:          make(map[PoPID][]LinkID, len(t.adj)),
		ixps:         make(map[string]*IXP, len(t.ixps)),
		ixpMemberIdx: make(map[string]map[ASN]int, len(t.ixpMemberIdx)),
	}
	for asn, a := range t.ases {
		c := *a
		out.ases[asn] = &c
	}
	for k, v := range t.popIndex {
		out.popIndex[k] = v
	}
	for i, l := range t.links {
		c := *l
		out.links[i] = &c
	}
	for p, ids := range t.adj {
		out.adj[p] = append([]LinkID(nil), ids...)
	}
	for name, x := range t.ixps {
		c := *x
		c.Members = append([]ASN(nil), x.Members...)
		out.ixps[name] = &c
	}
	for name, m := range t.ixpMemberIdx {
		cm := make(map[ASN]int, len(m))
		for asn, i := range m {
			cm[asn] = i
		}
		out.ixpMemberIdx[name] = cm
	}
	return out
}
