// Package topo models the simulated Internet's structure: autonomous
// systems, their points of presence (PoPs) in cities, the links between
// PoPs annotated with business relationships, and Internet exchange points
// with their peering LANs. It is the static substrate on which the bgp
// package computes routes and the engine package computes performance.
package topo

import (
	"fmt"
	"sort"

	"sisyphus/internal/netsim/geo"
)

// ASN is an autonomous system number.
type ASN uint32

// ASType categorizes an AS's role; it drives default topology generation
// and which ASes host content or users.
type ASType int

const (
	// Access networks have end users ("eyeball" networks).
	Access ASType = iota
	// Transit networks sell reachability.
	Transit
	// Content networks host services users measure against (CDN, cloud).
	Content
)

func (t ASType) String() string {
	switch t {
	case Access:
		return "access"
	case Transit:
		return "transit"
	case Content:
		return "content"
	default:
		return fmt.Sprintf("ASType(%d)", int(t))
	}
}

// AS is an autonomous system.
type AS struct {
	ASN  ASN
	Name string
	Type ASType
}

// PoPID identifies a point of presence (an AS's router in a city).
type PoPID int

// PoP is an AS's presence in one city.
type PoP struct {
	ID   PoPID
	AS   ASN
	City string
}

// Relationship is the business relationship a link encodes, read from the A
// side: CustomerOf means A buys transit from B.
type Relationship int

const (
	// CustomerOf: A is B's customer (A pays B).
	CustomerOf Relationship = iota
	// PeerWith: settlement-free peering.
	PeerWith
)

func (r Relationship) String() string {
	switch r {
	case CustomerOf:
		return "customer-of"
	case PeerWith:
		return "peer-with"
	default:
		return fmt.Sprintf("Relationship(%d)", int(r))
	}
}

// LinkID identifies a link.
type LinkID int

// Link is a physical/logical adjacency between two PoPs.
type Link struct {
	ID LinkID
	A  PoPID
	B  PoPID
	// Rel is the relationship from A's perspective.
	Rel Relationship
	// CapacityMbps bounds throughput across the link.
	CapacityMbps float64
	// DelayMs is the one-way propagation delay; if zero at Build time it is
	// derived from city geography.
	DelayMs float64
	// BaseUtil is the baseline background utilization in [0, 1).
	BaseUtil float64
	// Up is the operational state (events toggle it).
	Up bool
	// IXP names the exchange whose peering LAN realizes this link, or "".
	IXP string
}

// IXP is an Internet exchange point: a peering LAN in one city.
type IXP struct {
	Name string
	City string
	// Prefix is the dotted /24-style base of the peering LAN, e.g.
	// "196.60.8." — hop IPs on the LAN are Prefix + memberIndex.
	Prefix  string
	Members []ASN
}

// Topology is the full simulated network. Construct with NewBuilder.
//
// A topology has three lifecycle states:
//
//   - mutable: what the builder returns. JoinIXP and SetLinkUp mutate in
//     place; Clone deep-copies.
//   - frozen: after Freeze(). The topology is immutable — mutators panic —
//     and Clone returns a copy-on-write view sharing every structure with
//     the frozen original. This is what the artifact store keeps.
//   - CoW view: a Clone of a frozen topology. Reads hit the shared frozen
//     structures directly; the first mutation promotes the small mutable
//     overlay (links, adjacency, IXP membership) into private copies. The
//     immutable core — AS records, PoPs, their indexes, and the geo
//     registry — is shared by reference forever: nothing mutates it after
//     Build.
type Topology struct {
	Registry *geo.Registry
	// Immutable core: never written after Build, shared by every clone.
	ases     map[ASN]*AS
	asOrder  []ASN
	pops     []PoP
	popIndex map[popKey]PoPID
	// Mutable overlay: IXP membership (JoinIXP grows links/adj/ixps) and
	// link operational state (SetLinkUp). CoW views copy these on first
	// write; the frozen original's copies are never written again.
	links []*Link
	adj   map[PoPID][]LinkID
	ixps  map[string]*IXP
	// ixpMemberIdx[name][asn] is the member's index on the LAN (for IPs).
	ixpMemberIdx map[string]map[ASN]int

	// frozen marks the immutable original the artifact store holds.
	frozen bool
	// cow marks a clone still sharing the mutable overlay with a frozen
	// base; promote() copies the overlay before the first write.
	cow bool
}

// Freeze marks the topology immutable: every subsequent mutation panics,
// and Clone switches from deep copies to pointer-cheap copy-on-write views.
// The artifact store freezes each built world exactly once, before the
// first fork escapes; freezing is irreversible.
func (t *Topology) Freeze() { t.frozen = true }

// Frozen reports whether Freeze was called.
func (t *Topology) Frozen() bool { return t.frozen }

// mutable panics if the topology is frozen, and otherwise promotes the
// shared overlay so the caller may write. Every mutator calls it first —
// it is the single choke point enforcing the copy-on-write contract.
func (t *Topology) mutable(op string) {
	if t.frozen {
		panic(fmt.Sprintf("topo: %s on frozen topology (mutate a Clone instead)", op))
	}
	t.promote()
}

// promote gives a CoW view private copies of the mutable overlay: links
// (deep, so Up flips stay local), adjacency, and IXP membership. The
// immutable core stays shared. No-op unless the view still shares.
func (t *Topology) promote() {
	if !t.cow {
		return
	}
	links := make([]*Link, len(t.links))
	for i, l := range t.links {
		c := *l
		links[i] = &c
	}
	t.links = links
	adj := make(map[PoPID][]LinkID, len(t.adj))
	for p, ids := range t.adj {
		adj[p] = append([]LinkID(nil), ids...)
	}
	t.adj = adj
	ixps := make(map[string]*IXP, len(t.ixps))
	for name, x := range t.ixps {
		c := *x
		c.Members = append([]ASN(nil), x.Members...)
		ixps[name] = &c
	}
	t.ixps = ixps
	idx := make(map[string]map[ASN]int, len(t.ixpMemberIdx))
	for name, m := range t.ixpMemberIdx {
		cm := make(map[ASN]int, len(m))
		for asn, i := range m {
			cm[asn] = i
		}
		idx[name] = cm
	}
	t.ixpMemberIdx = idx
	t.cow = false
}

// SetLinkUp sets a link's operational state. This is the only supported way
// to flip link state: Link returns shared interior pointers on CoW views,
// so writing Up through them would corrupt the frozen original.
func (t *Topology) SetLinkUp(id LinkID, up bool) {
	t.mutable("SetLinkUp")
	t.links[int(id)].Up = up
}

// SizeBytes estimates the topology's resident size for the artifact store's
// byte bound: flat per-AS/PoP/link costs plus IXP membership payloads. An
// estimate, not an accounting — the LRU only needs relative magnitudes.
func (t *Topology) SizeBytes() int64 {
	const perAS = 64   // AS struct + map entry + name payload
	const perPoP = 64  // PoP struct + popIndex entry + city payload
	const perLink = 96 // Link struct + adjacency entries
	const perIXP = 96  // IXP struct + map entries
	const perMember = 24
	n := int64(len(t.ases))*perAS + int64(len(t.pops))*perPoP + int64(len(t.links))*perLink
	for _, x := range t.ixps {
		n += perIXP + int64(len(x.Members))*perMember
	}
	return n
}

type popKey struct {
	asn  ASN
	city string
}

// ASes returns all AS records in insertion order.
func (t *Topology) ASes() []*AS {
	out := make([]*AS, len(t.asOrder))
	for i, a := range t.asOrder {
		out[i] = t.ases[a]
	}
	return out
}

// AS returns the AS record for asn.
func (t *Topology) AS(asn ASN) (*AS, error) {
	a, ok := t.ases[asn]
	if !ok {
		return nil, fmt.Errorf("topo: unknown AS%d", asn)
	}
	return a, nil
}

// PoP returns the PoP record for id.
func (t *Topology) PoP(id PoPID) PoP { return t.pops[int(id)] }

// PoPs returns all PoPs.
func (t *Topology) PoPs() []PoP { return append([]PoP(nil), t.pops...) }

// FindPoP returns the PoP of asn in city.
func (t *Topology) FindPoP(asn ASN, city string) (PoPID, error) {
	id, ok := t.popIndex[popKey{asn, city}]
	if !ok {
		return 0, fmt.Errorf("topo: AS%d has no PoP in %s", asn, city)
	}
	return id, nil
}

// PoPsOf returns the PoP IDs of an AS, in creation order.
func (t *Topology) PoPsOf(asn ASN) []PoPID {
	var out []PoPID
	for _, p := range t.pops {
		if p.AS == asn {
			out = append(out, p.ID)
		}
	}
	return out
}

// Link returns the link with the given ID.
func (t *Topology) Link(id LinkID) *Link { return t.links[int(id)] }

// Links returns all links.
func (t *Topology) Links() []*Link { return append([]*Link(nil), t.links...) }

// LinksAt returns the IDs of links incident to the PoP.
func (t *Topology) LinksAt(p PoPID) []LinkID { return append([]LinkID(nil), t.adj[p]...) }

// Neighbor returns the PoP on the far side of link id from p.
func (t *Topology) Neighbor(id LinkID, p PoPID) PoPID {
	l := t.links[int(id)]
	if l.A == p {
		return l.B
	}
	return l.A
}

// IXPs returns all exchange points sorted by name.
func (t *Topology) IXPs() []*IXP {
	names := make([]string, 0, len(t.ixps))
	for n := range t.ixps {
		names = append(names, n)
	}
	sort.Strings(names)
	out := make([]*IXP, len(names))
	for i, n := range names {
		out[i] = t.ixps[n]
	}
	return out
}

// IXP returns the named exchange.
func (t *Topology) IXP(name string) (*IXP, error) {
	x, ok := t.ixps[name]
	if !ok {
		return nil, fmt.Errorf("topo: unknown IXP %q", name)
	}
	return x, nil
}

// ASRelationships summarizes AS-level adjacency: for each ordered AS pair
// with at least one link, the relationship and the connecting link IDs.
type ASRelationships struct {
	// Rel[a][b] is a's relationship toward b.
	Rel map[ASN]map[ASN]RelKind
	// Links[a][b] lists links realizing the adjacency (undirected, shared).
	Links map[ASN]map[ASN][]LinkID
}

// RelKind is the AS-level relationship from the first AS's perspective.
type RelKind int

const (
	// RelCustomer: first AS is the customer (buys from second).
	RelCustomer RelKind = iota
	// RelProvider: first AS is the provider (sells to second).
	RelProvider
	// RelPeer: settlement-free peers.
	RelPeer
)

func (k RelKind) String() string {
	switch k {
	case RelCustomer:
		return "customer"
	case RelProvider:
		return "provider"
	case RelPeer:
		return "peer"
	default:
		return fmt.Sprintf("RelKind(%d)", int(k))
	}
}

// Relationships derives the AS-level relationship map from links that are
// currently up. Conflicting relationships between the same AS pair are an
// error (a pair must be consistently customer/provider or peer).
func (t *Topology) Relationships() (*ASRelationships, error) {
	out := &ASRelationships{
		Rel:   make(map[ASN]map[ASN]RelKind),
		Links: make(map[ASN]map[ASN][]LinkID),
	}
	set := func(a, b ASN, k RelKind, id LinkID) error {
		if out.Rel[a] == nil {
			out.Rel[a] = make(map[ASN]RelKind)
			out.Links[a] = make(map[ASN][]LinkID)
		}
		if prev, ok := out.Rel[a][b]; ok && prev != k {
			return fmt.Errorf("topo: conflicting relationships between AS%d and AS%d: %v vs %v", a, b, prev, k)
		}
		out.Rel[a][b] = k
		out.Links[a][b] = append(out.Links[a][b], id)
		return nil
	}
	for _, l := range t.links {
		if !l.Up {
			continue
		}
		a := t.pops[int(l.A)].AS
		b := t.pops[int(l.B)].AS
		if a == b {
			continue // intra-AS link: invisible at the BGP level
		}
		var ka, kb RelKind
		switch l.Rel {
		case CustomerOf:
			ka, kb = RelCustomer, RelProvider
		case PeerWith:
			ka, kb = RelPeer, RelPeer
		default:
			return nil, fmt.Errorf("topo: link %d has unknown relationship %v", l.ID, l.Rel)
		}
		if err := set(a, b, ka, l.ID); err != nil {
			return nil, err
		}
		if err := set(b, a, kb, l.ID); err != nil {
			return nil, err
		}
	}
	return out, nil
}
