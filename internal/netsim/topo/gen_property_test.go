package topo

import (
	"reflect"
	"testing"

	"sisyphus/internal/mathx"
)

// genPropertyConfigs is the table the property tests sweep: legacy shapes,
// synthetic-city shapes, and IXP-enabled shapes with treated access ASes.
var genPropertyConfigs = []struct {
	name string
	cfg  GenConfig
}{
	{"default", DefaultGenConfig()},
	{"minimal", GenConfig{Tier1: 1, Tier2: 1, Access: 1, Content: 1}},
	{"wide-access", GenConfig{Tier1: 2, Tier2: 4, Access: 30, Content: 2, MultihomeProb: 0.7, PeerProb: 0.5}},
	{"synthetic-cities", GenConfig{Tier1: 3, Tier2: 5, Access: 10, Content: 2, Cities: 24, MultihomeProb: 0.4, PeerProb: 0.2}},
	{"ixp", func() GenConfig {
		c := DefaultGenConfig()
		c.IXP = true
		c.Treated = 4
		return c
	}()},
	{"ixp-synthetic", GenConfig{Tier1: 2, Tier2: 4, Access: 8, Content: 3, Cities: 12,
		MultihomeProb: 0.5, PeerProb: 0.3, IXP: true, Treated: 3, IXPCity: "City-005"}},
}

// TestGenerateSameSeedDeepEqual: equal (seed, GenConfig) must produce
// topologies whose exports are reflect.DeepEqual — the property the
// content-addressed gen/<cfghash> world ids stand on.
func TestGenerateSameSeedDeepEqual(t *testing.T) {
	for _, c := range genPropertyConfigs {
		t.Run(c.name, func(t *testing.T) {
			for _, seed := range []uint64{1, 7, 42} {
				a, err := Generate(mathx.NewRNG(seed), c.cfg, nil)
				if err != nil {
					t.Fatalf("seed %d: %v", seed, err)
				}
				b, err := Generate(mathx.NewRNG(seed), c.cfg, nil)
				if err != nil {
					t.Fatalf("seed %d: %v", seed, err)
				}
				if !reflect.DeepEqual(a.Export(), b.Export()) {
					t.Fatalf("seed %d: same (seed, cfg) generated different topologies", seed)
				}
			}
		})
	}
}

// TestGenerateGaoRexfordValid: every generated internet must satisfy the
// structural conditions Gao–Rexford routing rests on — the tier1s form a
// full peering clique, and the customer→provider graph is acyclic (no AS is
// ever, transitively, its own provider).
func TestGenerateGaoRexfordValid(t *testing.T) {
	for _, c := range genPropertyConfigs {
		t.Run(c.name, func(t *testing.T) {
			for _, seed := range []uint64{1, 7, 42} {
				tp, err := Generate(mathx.NewRNG(seed), c.cfg, nil)
				if err != nil {
					t.Fatalf("seed %d: %v", seed, err)
				}
				rel, err := tp.Relationships()
				if err != nil {
					t.Fatalf("seed %d: %v", seed, err)
				}
				for i := 0; i < c.cfg.Tier1; i++ {
					for j := 0; j < c.cfg.Tier1; j++ {
						if i == j {
							continue
						}
						a, b := ASN(1000+i), ASN(1000+j)
						if rel.Rel[a][b] != RelPeer {
							t.Fatalf("seed %d: tier1 %d-%d not peers", seed, a, b)
						}
					}
				}
				assertNoProviderCycles(t, rel)
			}
		})
	}
}

// assertNoProviderCycles DFS-colors the customer→provider graph and fails
// on any back edge.
func assertNoProviderCycles(t *testing.T, rel *ASRelationships) {
	t.Helper()
	const (
		white = iota // unvisited
		gray         // on the current DFS path
		black        // fully explored
	)
	color := make(map[ASN]int)
	var visit func(a ASN) bool
	visit = func(a ASN) bool {
		color[a] = gray
		for b, k := range rel.Rel[a] {
			if k != RelCustomer { // a is a customer of b: edge a→b
				continue
			}
			switch color[b] {
			case gray:
				return false
			case white:
				if !visit(b) {
					return false
				}
			}
		}
		color[a] = black
		return true
	}
	for a := range rel.Rel {
		if color[a] == white && !visit(a) {
			t.Fatalf("provider cycle through AS%d", a)
		}
	}
}

// TestGenerateASNTierRanges: ASN blocks encode the tier, densely from each
// tier's base — the scenario layer's generated-world casting depends on it.
func TestGenerateASNTierRanges(t *testing.T) {
	for _, c := range genPropertyConfigs {
		t.Run(c.name, func(t *testing.T) {
			tp, err := Generate(mathx.NewRNG(5), c.cfg, nil)
			if err != nil {
				t.Fatal(err)
			}
			seen := make(map[ASN]bool)
			for _, a := range tp.ASes() {
				seen[a.ASN] = true
				var base, n int
				var want ASType
				switch {
				case a.ASN >= 4000:
					base, n, want = 4000, c.cfg.Content, Content
				case a.ASN >= 3000:
					base, n, want = 3000, c.cfg.Access, Access
				case a.ASN >= 2000:
					base, n, want = 2000, c.cfg.Tier2, Transit
				default:
					base, n, want = 1000, c.cfg.Tier1, Transit
				}
				if idx := int(a.ASN) - base; idx < 0 || idx >= n {
					t.Fatalf("AS%d outside its tier block [%d, %d)", a.ASN, base, base+n)
				}
				if a.Type != want {
					t.Fatalf("AS%d type = %v, want %v", a.ASN, a.Type, want)
				}
			}
			for _, block := range []struct{ base, n int }{
				{1000, c.cfg.Tier1}, {2000, c.cfg.Tier2}, {3000, c.cfg.Access}, {4000, c.cfg.Content},
			} {
				for i := 0; i < block.n; i++ {
					if !seen[ASN(block.base+i)] {
						t.Fatalf("tier block %d missing dense ASN %d", block.base, block.base+i)
					}
				}
			}
		})
	}
}

// TestGenerateIXPShape: with cfg.IXP the generated exchange must exist in
// the chosen city with every content AS a founding member, the first
// Treated access ASes must hold a PoP in the exchange city (joinable), and
// founding membership must add exactly the C(content, 2) peer links on top
// of an IXP-free generation from the same seed — proof the IXP extensions
// never consume RNG draws.
func TestGenerateIXPShape(t *testing.T) {
	cfg := DefaultGenConfig()
	cfg.IXP = true
	cfg.Treated = 4
	cfg.IXPCity = "Johannesburg"

	plain := cfg
	plain.IXP = false
	plain.Treated = 0
	plain.IXPCity = ""

	for _, seed := range []uint64{1, 7} {
		tp, err := Generate(mathx.NewRNG(seed), cfg, nil)
		if err != nil {
			t.Fatal(err)
		}
		x, err := tp.IXP(GenIXPName)
		if err != nil {
			t.Fatal(err)
		}
		if x.City != "Johannesburg" || x.Prefix != GenIXPPrefix {
			t.Fatalf("exchange at %s prefix %s", x.City, x.Prefix)
		}
		if len(x.Members) != cfg.Content {
			t.Fatalf("founding members = %d, want %d", len(x.Members), cfg.Content)
		}
		for i := 0; i < cfg.Content; i++ {
			if x.Members[i] != ASN(4000+i) {
				t.Fatalf("member %d = %d, want content AS %d", i, x.Members[i], 4000+i)
			}
		}
		for i := 0; i < cfg.Treated; i++ {
			if _, err := tp.FindPoP(ASN(3000+i), x.City); err != nil {
				t.Fatalf("treated access AS%d has no PoP at the exchange: %v", 3000+i, err)
			}
		}

		base, err := Generate(mathx.NewRNG(seed), plain, nil)
		if err != nil {
			t.Fatal(err)
		}
		wantExtra := cfg.Content * (cfg.Content - 1) / 2
		if got := len(tp.Links()) - len(base.Links()); got != wantExtra {
			t.Fatalf("IXP generation added %d links, want %d (founding-member peerings only)", got, wantExtra)
		}
	}
}
