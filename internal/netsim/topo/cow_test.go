package topo

import (
	"strings"
	"testing"
)

// TestFrozenCloneSharesCore pins the copy-on-write contract: a clone of a
// frozen topology shares every structure until its first mutation, and the
// mutation promotes only the clone — the frozen original and sibling clones
// keep the pre-mutation view.
func TestFrozenCloneSharesCore(t *testing.T) {
	orig := tinyTopo(t)
	orig.Freeze()
	if !orig.Frozen() {
		t.Fatal("Freeze did not stick")
	}

	a := orig.Clone()
	b := orig.Clone()
	// Unmutated clones alias the frozen overlay outright.
	if &a.links[0] != &orig.links[0] || a.links[0] != orig.links[0] {
		t.Fatal("unmutated clone copied the link slice")
	}
	if len(a.ases) != len(orig.ases) || a.ases[100] != orig.ases[100] {
		t.Fatal("clone does not share the AS core")
	}

	// Mutate clone a through both supported mutators.
	linkID := orig.Links()[0].ID
	a.SetLinkUp(linkID, false)
	if _, err := a.JoinIXP("NAPAfrica-JNB", 100); err != nil {
		t.Fatal(err)
	}

	// a sees its own writes.
	if a.Link(linkID).Up {
		t.Fatal("clone a lost its own link-down")
	}
	if _, member := a.IXPMemberIndex("NAPAfrica-JNB", 100); !member {
		t.Fatal("clone a lost its own IXP join")
	}
	// The frozen original and sibling b are pristine.
	for name, tp := range map[string]*Topology{"original": orig, "sibling": b} {
		if !tp.Link(linkID).Up {
			t.Fatalf("%s saw the clone's link-down", name)
		}
		if _, member := tp.IXPMemberIndex("NAPAfrica-JNB", 100); member {
			t.Fatalf("%s saw the clone's IXP join", name)
		}
		if len(tp.Links()) != len(a.Links())-1 {
			t.Fatalf("%s link count drifted: %d vs clone's %d", name, len(tp.Links()), len(a.Links()))
		}
	}
	// The immutable core stays shared even after promotion.
	if len(a.pops) != len(orig.pops) || &a.pops[0] != &orig.pops[0] {
		t.Fatal("promotion copied the immutable PoP core")
	}
}

// TestMutatingFrozenTopologyPanics is the debug-assertion story: writing to
// a frozen original is a bug, loudly.
func TestMutatingFrozenTopologyPanics(t *testing.T) {
	tp := tinyTopo(t)
	tp.Freeze()
	assertPanics := func(op string, f func()) {
		t.Helper()
		defer func() {
			r := recover()
			if r == nil {
				t.Fatalf("%s on frozen topology did not panic", op)
			}
			if msg, ok := r.(string); !ok || !strings.Contains(msg, "frozen") {
				t.Fatalf("%s panic = %v, want frozen-topology message", op, r)
			}
		}()
		f()
	}
	assertPanics("SetLinkUp", func() { tp.SetLinkUp(0, false) })
	assertPanics("JoinIXP", func() { _, _ = tp.JoinIXP("NAPAfrica-JNB", 100) })
}

// TestMutableCloneStaysDeep pins the pre-freeze behaviour: clones of a
// mutable topology are eager deep copies, so mutating the ORIGINAL after
// cloning cannot leak into the clone (sharing would not be safe while the
// original can still change).
func TestMutableCloneStaysDeep(t *testing.T) {
	orig := tinyTopo(t)
	c := orig.Clone()
	linkID := orig.Links()[0].ID
	orig.SetLinkUp(linkID, false)
	if _, err := orig.JoinIXP("NAPAfrica-JNB", 100); err != nil {
		t.Fatal(err)
	}
	if !c.Link(linkID).Up {
		t.Fatal("original's link-down leaked into a deep clone")
	}
	if _, member := c.IXPMemberIndex("NAPAfrica-JNB", 100); member {
		t.Fatal("original's IXP join leaked into a deep clone")
	}
}

// TestFrozenCloneAllocations asserts the pointer-cheap property the
// serving mode rides on: an unmutated clone of a frozen world is O(1)
// allocations, not O(topology).
func TestFrozenCloneAllocations(t *testing.T) {
	tp := tinyTopo(t)
	tp.Freeze()
	var sink *Topology
	allocs := testing.AllocsPerRun(100, func() { sink = tp.Clone() })
	_ = sink
	if allocs > 2 {
		t.Fatalf("frozen Clone allocates %v objects per run, want <= 2 (one struct)", allocs)
	}
}
