package topo

import (
	"testing"
	"testing/quick"

	"sisyphus/internal/mathx"
	"sisyphus/internal/netsim/geo"
)

func TestGenerateDefaultShape(t *testing.T) {
	r := mathx.NewRNG(1)
	cfg := DefaultGenConfig()
	tp, err := Generate(r, cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	ases := tp.ASes()
	if len(ases) != cfg.Tier1+cfg.Tier2+cfg.Access+cfg.Content {
		t.Fatalf("as count = %d", len(ases))
	}
	var access, transit, content int
	for _, a := range ases {
		switch a.Type {
		case Access:
			access++
		case Transit:
			transit++
		case Content:
			content++
		}
	}
	if access != cfg.Access || content != cfg.Content || transit != cfg.Tier1+cfg.Tier2 {
		t.Fatalf("type mix: access=%d transit=%d content=%d", access, transit, content)
	}
	// Tier1 clique: every tier1 pair adjacent as peers.
	rel, err := tp.Relationships()
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < cfg.Tier1; i++ {
		for j := 0; j < cfg.Tier1; j++ {
			if i == j {
				continue
			}
			a, b := ASN(1000+i), ASN(1000+j)
			if rel.Rel[a][b] != RelPeer {
				t.Fatalf("tier1 %d-%d not peers: %v", a, b, rel.Rel[a][b])
			}
		}
	}
	// Every non-tier1 AS has at least one provider.
	for _, as := range ases {
		if as.ASN < 2000 {
			continue
		}
		hasProvider := false
		for _, k := range rel.Rel[as.ASN] {
			if k == RelCustomer {
				hasProvider = true
			}
		}
		if !hasProvider {
			t.Fatalf("AS%d has no provider", as.ASN)
		}
	}
}

func TestGenerateDeterministicPerSeed(t *testing.T) {
	gen := func(seed uint64) [][2]string {
		tp, err := Generate(mathx.NewRNG(seed), DefaultGenConfig(), nil)
		if err != nil {
			t.Fatal(err)
		}
		var out [][2]string
		for _, l := range tp.Links() {
			a, b := tp.PoP(l.A), tp.PoP(l.B)
			out = append(out, [2]string{a.City, b.City})
		}
		return out
	}
	a, b := gen(9), gen(9)
	if len(a) != len(b) {
		t.Fatal("link counts differ")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("link %d differs: %v vs %v", i, a[i], b[i])
		}
	}
}

func TestGenerateErrors(t *testing.T) {
	r := mathx.NewRNG(2)
	small := geo.NewRegistry()
	small.Add(geo.City{Name: "X"})
	if _, err := Generate(r, DefaultGenConfig(), small); err == nil {
		t.Fatal("tiny registry accepted")
	}
	if _, err := Generate(r, GenConfig{Tier1: 0, Tier2: 1, Access: 1}, nil); err == nil {
		t.Fatal("zero tier1 accepted")
	}
}

func TestGenerateAlwaysBuildsValidTopology(t *testing.T) {
	f := func(seed uint64) bool {
		r := mathx.NewRNG(seed)
		cfg := GenConfig{
			Tier1: 1 + r.Intn(4), Tier2: 1 + r.Intn(6), Access: 1 + r.Intn(15),
			Content: r.Intn(4), MultihomeProb: r.Float64(), PeerProb: r.Float64(),
		}
		tp, err := Generate(r, cfg, nil)
		if err != nil {
			return false
		}
		// Relationship derivation must succeed (no conflicting pairs) and
		// every link must have positive delay and capacity.
		if _, err := tp.Relationships(); err != nil {
			return false
		}
		for _, l := range tp.Links() {
			if l.DelayMs <= 0 || l.CapacityMbps <= 0 {
				return false
			}
			if l.BaseUtil < 0 || l.BaseUtil >= 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestMeetingPoint(t *testing.T) {
	a, b := meetingPoint([]string{"London", "Paris"}, []string{"Paris", "Frankfurt"})
	if a != "Paris" || b != "Paris" {
		t.Fatalf("shared city not chosen: %s/%s", a, b)
	}
	a, b = meetingPoint([]string{"London"}, []string{"Frankfurt"})
	if a != "London" || b != "Frankfurt" {
		t.Fatalf("disjoint fallback: %s/%s", a, b)
	}
}
