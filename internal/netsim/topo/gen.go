package topo

import (
	"fmt"

	"sisyphus/internal/mathx"
	"sisyphus/internal/netsim/geo"
)

// GenConfig controls random hierarchical topology generation. It is the
// canonical identity of a generated internet: together with the generation
// seed it hashes into the scenario registry's gen/<cfghash> world ids, so
// every field must be plain data and marshal deterministically.
type GenConfig struct {
	Tier1  int // clique of peering transit backbones
	Tier2  int // regional transits, customers of 1-2 tier1s
	Access int // eyeball networks, customers of 1-2 tier2s
	// Content networks, customers of 1-2 tier1s with PoPs in many cities.
	Content int
	// MultihomeProb is the probability a lower-tier AS buys from a second
	// upstream (creating route diversity and natural experiments).
	MultihomeProb float64
	// PeerProb is the probability two tier2s peer directly.
	PeerProb float64
	// Cities, when positive, generates over a synthetic registry of that
	// many cities (geo.SyntheticRegistry) instead of the default world
	// cities; it only applies when Generate is called with a nil registry.
	Cities int
	// IXP, when true, adds an exchange (GenIXPName) to the generated
	// internet and makes joinability part of generation: every content AS
	// gains a PoP in the exchange city and joins as a founding member, and
	// the first Treated access ASes gain a PoP there so they can join
	// mid-study (the treatment every experiment studies).
	IXP bool
	// IXPCity names the exchange city; "" picks the first city in sorted
	// order. Only meaningful with IXP set.
	IXPCity string
	// Treated is how many access ASes (the first Treated by index) are
	// guaranteed a PoP at the exchange, making them castable as treated
	// units. Only meaningful with IXP set.
	Treated int
}

// The generated exchange: every IXP-enabled generated internet hosts
// exactly one, so the scenario layer can cast any generated world into the
// common treatment shape without per-world naming.
const (
	// GenIXPName names the exchange Generate adds when cfg.IXP is set.
	GenIXPName = "GenIX"
	// GenIXPPrefix is the generated exchange's peering-LAN prefix (octet
	// aligned, so the ixp matcher's boundary rule applies cleanly).
	GenIXPPrefix = "10.99.0."
)

// DefaultGenConfig returns a modest Internet-like mix.
func DefaultGenConfig() GenConfig {
	return GenConfig{Tier1: 3, Tier2: 6, Access: 12, Content: 3, MultihomeProb: 0.5, PeerProb: 0.3}
}

// Generate builds a random three-tier topology with Gao–Rexford-consistent
// relationships: tier1s form a peering clique and span several cities,
// tier2s buy from tier1s, access networks buy from tier2s, and content
// networks buy from tier1s. ASNs are assigned deterministically:
// tier1 = 1000+, tier2 = 2000+, access = 3000+, content = 4000+.
func Generate(r *mathx.RNG, cfg GenConfig, reg *geo.Registry) (*Topology, error) {
	if reg == nil {
		if cfg.Cities > 0 {
			reg = geo.SyntheticRegistry(cfg.Cities)
		} else {
			reg = geo.DefaultRegistry()
		}
	}
	cities := reg.Names()
	if len(cities) < 3 {
		return nil, fmt.Errorf("topo: need at least 3 cities to generate")
	}
	if cfg.Tier1 < 1 || cfg.Tier2 < 1 || cfg.Access < 1 {
		return nil, fmt.Errorf("topo: generation needs at least one AS per tier")
	}
	ixpCity := ""
	if cfg.IXP {
		if cfg.Treated < 0 || cfg.Treated > cfg.Access {
			return nil, fmt.Errorf("topo: treated count %d outside [0, access=%d]", cfg.Treated, cfg.Access)
		}
		ixpCity = cfg.IXPCity
		if ixpCity == "" {
			ixpCity = cities[0]
		}
		if _, err := reg.Get(ixpCity); err != nil {
			return nil, fmt.Errorf("topo: generation: %w", err)
		}
	}
	b := NewBuilder(reg)

	pick := func() string { return cities[r.Intn(len(cities))] }
	pickN := func(n int) []string {
		perm := r.Perm(len(cities))
		if n > len(cities) {
			n = len(cities)
		}
		out := make([]string, n)
		for i := 0; i < n; i++ {
			out[i] = cities[perm[i]]
		}
		return out
	}

	tier1 := make([]ASN, cfg.Tier1)
	tier1Cities := make([][]string, cfg.Tier1)
	for i := range tier1 {
		tier1[i] = ASN(1000 + i)
		tier1Cities[i] = pickN(3 + r.Intn(3))
		b.AddAS(tier1[i], fmt.Sprintf("Tier1-%d", i), Transit, tier1Cities[i]...)
	}
	// Tier1 clique: peer in a shared city when possible, else first cities.
	for i := 0; i < cfg.Tier1; i++ {
		for j := i + 1; j < cfg.Tier1; j++ {
			ci, cj := meetingPoint(tier1Cities[i], tier1Cities[j])
			b.Connect(tier1[i], ci, PeerWith, tier1[j], cj,
				WithCapacity(400000), WithBaseUtil(0.2+0.2*r.Float64()))
		}
	}

	tier2 := make([]ASN, cfg.Tier2)
	tier2Cities := make([][]string, cfg.Tier2)
	for i := range tier2 {
		tier2[i] = ASN(2000 + i)
		tier2Cities[i] = pickN(2 + r.Intn(2))
		b.AddAS(tier2[i], fmt.Sprintf("Tier2-%d", i), Transit, tier2Cities[i]...)
		up := r.Intn(cfg.Tier1)
		ci, cj := meetingPoint(tier2Cities[i], tier1Cities[up])
		b.Connect(tier2[i], ci, CustomerOf, tier1[up], cj,
			WithCapacity(100000), WithBaseUtil(0.25+0.25*r.Float64()))
		if r.Bernoulli(cfg.MultihomeProb) && cfg.Tier1 > 1 {
			up2 := (up + 1 + r.Intn(cfg.Tier1-1)) % cfg.Tier1
			ci, cj := meetingPoint(tier2Cities[i], tier1Cities[up2])
			b.Connect(tier2[i], ci, CustomerOf, tier1[up2], cj,
				WithCapacity(100000), WithBaseUtil(0.25+0.25*r.Float64()))
		}
	}
	for i := 0; i < cfg.Tier2; i++ {
		for j := i + 1; j < cfg.Tier2; j++ {
			if r.Bernoulli(cfg.PeerProb) {
				ci, cj := meetingPoint(tier2Cities[i], tier2Cities[j])
				b.Connect(tier2[i], ci, PeerWith, tier2[j], cj,
					WithCapacity(50000), WithBaseUtil(0.2+0.3*r.Float64()))
			}
		}
	}

	for i := 0; i < cfg.Access; i++ {
		asn := ASN(3000 + i)
		city := pick()
		// The first Treated access ASes are joinable: a second PoP at the
		// exchange city (mirroring how the canned worlds home every treated
		// AS in Johannesburg). Appended after the RNG draw, so IXP-off
		// generation with the same seed draws identically.
		popCities := []string{city}
		if cfg.IXP && i < cfg.Treated && city != ixpCity {
			popCities = append(popCities, ixpCity)
		}
		b.AddAS(asn, fmt.Sprintf("Access-%d", i), Access, popCities...)
		up := r.Intn(cfg.Tier2)
		_, cj := meetingPoint([]string{city}, tier2Cities[up])
		b.Connect(asn, city, CustomerOf, tier2[up], cj,
			WithCapacity(10000), WithBaseUtil(0.3+0.3*r.Float64()))
		if r.Bernoulli(cfg.MultihomeProb) && cfg.Tier2 > 1 {
			up2 := (up + 1 + r.Intn(cfg.Tier2-1)) % cfg.Tier2
			_, cj := meetingPoint([]string{city}, tier2Cities[up2])
			b.Connect(asn, city, CustomerOf, tier2[up2], cj,
				WithCapacity(10000), WithBaseUtil(0.3+0.3*r.Float64()))
		}
	}

	for i := 0; i < cfg.Content; i++ {
		asn := ASN(4000 + i)
		cs := pickN(2 + r.Intn(3))
		// Content must be reachable over the exchange: guarantee a PoP in
		// the exchange city (appended post-draw; see the access loop).
		if cfg.IXP && !containsCity(cs, ixpCity) {
			cs = append(cs, ixpCity)
		}
		b.AddAS(asn, fmt.Sprintf("Content-%d", i), Content, cs...)
		up := r.Intn(cfg.Tier1)
		ci, cj := meetingPoint(cs, tier1Cities[up])
		b.Connect(asn, ci, CustomerOf, tier1[up], cj,
			WithCapacity(200000), WithBaseUtil(0.3+0.2*r.Float64()))
		if r.Bernoulli(cfg.MultihomeProb) && cfg.Tier1 > 1 {
			up2 := (up + 1 + r.Intn(cfg.Tier1-1)) % cfg.Tier1
			ci, cj := meetingPoint(cs, tier1Cities[up2])
			b.Connect(asn, ci, CustomerOf, tier1[up2], cj,
				WithCapacity(200000), WithBaseUtil(0.3+0.2*r.Float64()))
		}
	}

	if cfg.IXP {
		b.AddIXP(GenIXPName, ixpCity, GenIXPPrefix)
	}
	t, err := b.Build()
	if err != nil {
		return nil, err
	}
	if cfg.IXP {
		// Content networks are founding exchange members, in ASN order —
		// deterministic, and no RNG draws after Build.
		for i := 0; i < cfg.Content; i++ {
			if _, err := t.JoinIXP(GenIXPName, ASN(4000+i)); err != nil {
				return nil, fmt.Errorf("topo: generation: %w", err)
			}
		}
	}
	return t, nil
}

// containsCity reports whether cs contains city.
func containsCity(cs []string, city string) bool {
	for _, c := range cs {
		if c == city {
			return true
		}
	}
	return false
}

// meetingPoint picks interconnection cities for two ASes: a shared city if
// one exists (private interconnect at a common facility), otherwise each
// side's first city (a long-haul link).
func meetingPoint(a, b []string) (string, string) {
	inB := make(map[string]bool, len(b))
	for _, c := range b {
		inB[c] = true
	}
	for _, c := range a {
		if inB[c] {
			return c, c
		}
	}
	return a[0], b[0]
}
