package topo

import (
	"strings"
	"testing"
)

// tinyTopo: access AS 100 (Johannesburg) buys transit from AS 200
// (Johannesburg+London); content AS 300 has PoPs in London and Johannesburg;
// an IXP exists in Johannesburg with content AS 300 as initial member.
func tinyTopo(t *testing.T) *Topology {
	t.Helper()
	b := NewBuilder(nil).
		AddAS(100, "EyeballNet", Access, "Johannesburg").
		AddAS(200, "TransitCo", Transit, "Johannesburg", "London").
		AddAS(300, "ContentCo", Content, "London", "Johannesburg").
		Connect(100, "Johannesburg", CustomerOf, 200, "Johannesburg").
		Connect(300, "London", CustomerOf, 200, "London").
		AddIXP("NAPAfrica-JNB", "Johannesburg", "196.60.8.")
	topo, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := topo.JoinIXP("NAPAfrica-JNB", 300); err != nil {
		t.Fatal(err)
	}
	return topo
}

func TestBuilderBasics(t *testing.T) {
	topo := tinyTopo(t)
	if got := len(topo.ASes()); got != 3 {
		t.Fatalf("ases = %d", got)
	}
	if got := len(topo.PoPs()); got != 5 {
		t.Fatalf("pops = %d", got)
	}
	id, err := topo.FindPoP(200, "London")
	if err != nil {
		t.Fatal(err)
	}
	if p := topo.PoP(id); p.AS != 200 || p.City != "London" {
		t.Fatalf("pop = %+v", p)
	}
	if _, err := topo.FindPoP(100, "London"); err == nil {
		t.Fatal("bogus pop lookup succeeded")
	}
	if _, err := topo.AS(999); err == nil {
		t.Fatal("bogus AS lookup succeeded")
	}
}

func TestBuilderErrors(t *testing.T) {
	if _, err := NewBuilder(nil).Build(); err == nil {
		t.Fatal("empty topology accepted")
	}
	if _, err := NewBuilder(nil).AddAS(1, "x", Access, "Narnia").Build(); err == nil {
		t.Fatal("unknown city accepted")
	}
	if _, err := NewBuilder(nil).
		AddAS(1, "x", Access, "London").
		AddAS(1, "y", Access, "Paris").Build(); err == nil {
		t.Fatal("duplicate ASN accepted")
	}
	if _, err := NewBuilder(nil).AddAS(1, "x", Access).Build(); err == nil {
		t.Fatal("AS without city accepted")
	}
	if _, err := NewBuilder(nil).
		AddAS(1, "x", Access, "London").
		Connect(1, "London", CustomerOf, 2, "Paris").Build(); err == nil {
		t.Fatal("link to missing AS accepted")
	}
	// Conflicting relationships between the same pair.
	if _, err := NewBuilder(nil).
		AddAS(1, "x", Access, "London").
		AddAS(2, "y", Transit, "London").
		Connect(1, "London", CustomerOf, 2, "London").
		Connect(1, "London", PeerWith, 2, "London").
		Build(); err == nil {
		t.Fatal("conflicting relationships accepted")
	}
}

func TestLinkDelayDefaultsToGeography(t *testing.T) {
	topo := tinyTopo(t)
	rel, err := topo.Relationships()
	if err != nil {
		t.Fatal(err)
	}
	// The 300—200 link spans London—London (same city): floor delay.
	ids := rel.Links[300][200]
	if len(ids) != 1 {
		t.Fatalf("links 300-200 = %v", ids)
	}
	if d := topo.Link(ids[0]).DelayMs; d != 0.2 {
		t.Fatalf("same-city delay = %v", d)
	}
}

func TestRelationshipsDerived(t *testing.T) {
	topo := tinyTopo(t)
	rel, err := topo.Relationships()
	if err != nil {
		t.Fatal(err)
	}
	if rel.Rel[100][200] != RelCustomer || rel.Rel[200][100] != RelProvider {
		t.Fatalf("100-200 rel wrong: %v / %v", rel.Rel[100][200], rel.Rel[200][100])
	}
	// IXP membership of a single AS creates no AS-AS links yet.
	if _, ok := rel.Rel[300][100]; ok {
		t.Fatal("unexpected 300-100 adjacency before both join the IXP")
	}
}

func TestJoinIXPCreatesPeerLinks(t *testing.T) {
	topo := tinyTopo(t)
	links, err := topo.JoinIXP("NAPAfrica-JNB", 100)
	if err != nil {
		t.Fatal(err)
	}
	if len(links) != 1 {
		t.Fatalf("new links = %v", links)
	}
	l := topo.Link(links[0])
	if l.IXP != "NAPAfrica-JNB" || l.Rel != PeerWith || !l.Up {
		t.Fatalf("link = %+v", l)
	}
	rel, err := topo.Relationships()
	if err != nil {
		t.Fatal(err)
	}
	if rel.Rel[100][300] != RelPeer || rel.Rel[300][100] != RelPeer {
		t.Fatal("IXP peering should be peer-peer")
	}
	// Double join rejected.
	if _, err := topo.JoinIXP("NAPAfrica-JNB", 100); err == nil {
		t.Fatal("double join accepted")
	}
	// Joining without a PoP in the IXP city is rejected.
	if _, err := topo.JoinIXP("NAPAfrica-JNB", 999); err == nil {
		t.Fatal("join by unknown AS accepted")
	}
}

func TestAddressing(t *testing.T) {
	topo := tinyTopo(t)
	p100, _ := topo.FindPoP(100, "Johannesburg")
	if got := topo.PoPAddr(p100); got != "10.0.100.1" {
		t.Fatalf("PoP addr = %s", got)
	}
	// AS 300's first PoP is London (ordinal 0), Johannesburg is ordinal 1.
	p300j, _ := topo.FindPoP(300, "Johannesburg")
	if got := topo.PoPAddr(p300j); got != "10.1.44.2" {
		t.Fatalf("AS300 JNB addr = %s", got) // 300 = 1*256 + 44
	}
	addr, ok := topo.IXPAddr("NAPAfrica-JNB", 300)
	if !ok || addr != "196.60.8.1" {
		t.Fatalf("IXP addr = %s (%v)", addr, ok)
	}
	if _, ok := topo.IXPAddr("NAPAfrica-JNB", 100); ok {
		t.Fatal("non-member got an IXP address")
	}
	if _, ok := topo.IXPAddr("nope", 300); ok {
		t.Fatal("unknown IXP produced an address")
	}
}

func TestHopAddrUsesIXPLAN(t *testing.T) {
	topo := tinyTopo(t)
	if _, err := topo.JoinIXP("NAPAfrica-JNB", 100); err != nil {
		t.Fatal(err)
	}
	rel, _ := topo.Relationships()
	ixpLinks := rel.Links[100][300]
	if len(ixpLinks) != 1 {
		t.Fatalf("ixp links = %v", ixpLinks)
	}
	l := topo.Link(ixpLinks[0])
	p300j, _ := topo.FindPoP(300, "Johannesburg")
	hop := topo.HopAddr(l, p300j)
	if !strings.HasPrefix(hop, "196.60.8.") {
		t.Fatalf("hop over IXP link = %s, want LAN prefix", hop)
	}
	// Over a non-IXP link the same PoP reports its AS address.
	p200j, _ := topo.FindPoP(200, "Johannesburg")
	nonIXP := topo.Link(0)
	if got := topo.HopAddr(nonIXP, p200j); !strings.HasPrefix(got, "10.0.200.") {
		t.Fatalf("non-IXP hop = %s", got)
	}
}

func TestNeighborAndLinksAt(t *testing.T) {
	topo := tinyTopo(t)
	p100, _ := topo.FindPoP(100, "Johannesburg")
	ids := topo.LinksAt(p100)
	if len(ids) != 1 {
		t.Fatalf("links at 100/JNB = %v", ids)
	}
	other := topo.Neighbor(ids[0], p100)
	if topo.PoP(other).AS != 200 {
		t.Fatalf("neighbor = %+v", topo.PoP(other))
	}
	if back := topo.Neighbor(ids[0], other); back != p100 {
		t.Fatal("neighbor not symmetric")
	}
}

func TestStringers(t *testing.T) {
	for _, s := range []string{Access.String(), Transit.String(), Content.String(),
		CustomerOf.String(), PeerWith.String(),
		RelCustomer.String(), RelProvider.String(), RelPeer.String()} {
		if s == "" || strings.HasPrefix(s, "%") {
			t.Fatalf("bad stringer output %q", s)
		}
	}
	if ASType(42).String() == "" || Relationship(42).String() == "" || RelKind(42).String() == "" {
		t.Fatal("unknown enum values should still render")
	}
}

func TestPoPsOf(t *testing.T) {
	topo := tinyTopo(t)
	pops := topo.PoPsOf(200)
	if len(pops) != 2 {
		t.Fatalf("AS200 pops = %v", pops)
	}
	for _, id := range pops {
		if topo.PoP(id).AS != 200 {
			t.Fatal("foreign pop returned")
		}
	}
}
