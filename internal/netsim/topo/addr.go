package topo

import "fmt"

// Addressing assigns deterministic synthetic IPv4 addresses to router
// interfaces so traceroute output can be analyzed the way the paper does:
// by matching hop addresses against prefix lists (the IXP peering LAN).
//
// Scheme:
//   - Each AS owns 10.<asn/256>.<asn%256>.0/24; the interface of its PoP
//     number k (per-AS ordinal) is 10.x.y.<k+1>.
//   - An IXP LAN owns its declared prefix (e.g. 196.60.8.); member m's LAN
//     interface is <prefix><m+1>.

// PoPAddr returns the router address of a PoP inside its AS's prefix.
func (t *Topology) PoPAddr(id PoPID) string {
	p := t.pops[int(id)]
	ord := 0
	for _, q := range t.pops {
		if q.AS != p.AS {
			continue
		}
		if q.ID == id {
			break
		}
		ord++
	}
	return fmt.Sprintf("10.%d.%d.%d", uint32(p.AS)/256, uint32(p.AS)%256, ord+1)
}

// IXPAddr returns asn's interface address on the named exchange LAN, or
// ("", false) if it is not a member.
func (t *Topology) IXPAddr(name string, asn ASN) (string, bool) {
	x, ok := t.ixps[name]
	if !ok {
		return "", false
	}
	idx, ok := t.ixpMemberIdx[name][asn]
	if !ok {
		return "", false
	}
	return fmt.Sprintf("%s%d", x.Prefix, idx+1), true
}

// HopAddr returns the address a traceroute would report for arriving at PoP
// `to` over link l: if the link is an IXP peering, the far router responds
// from its LAN interface (inside the IXP prefix); otherwise from its own
// AS prefix. This asymmetry is precisely what makes IXP crossings visible
// to the paper's hop-matching methodology.
func (t *Topology) HopAddr(l *Link, to PoPID) string {
	if l.IXP != "" {
		if addr, ok := t.IXPAddr(l.IXP, t.pops[int(to)].AS); ok {
			return addr
		}
	}
	return t.PoPAddr(to)
}
