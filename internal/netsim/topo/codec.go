package topo

import (
	"fmt"
	"math"

	"sisyphus/internal/netsim/geo"
)

// Export is the serialized form of a Topology: every slice is in canonical
// order (cities by name, ASes and PoPs and links in creation order, IXPs by
// name) and nothing is a map, so encoding the struct with a deterministic
// encoder yields identical bytes for identical topologies. The derived
// indexes (popIndex, adjacency, IXP member index) are intentionally absent —
// Import rebuilds them, which is both smaller on disk and safer: a corrupted
// index can never disagree with the data it indexes.
type Export struct {
	Cities []geo.City
	ASes   []AS
	PoPs   []PoP
	Links  []Link
	IXPs   []IXPExport
}

// IXPExport serializes one exchange point. Members keeps LAN order: member
// index assigns hop IPs, so reordering would change addresses.
type IXPExport struct {
	Name    string
	City    string
	Prefix  string
	Members []ASN
}

// Export snapshots the topology into its serialized form. Safe on frozen
// topologies and CoW views (it only reads).
func (t *Topology) Export() *Export {
	e := &Export{
		Cities: t.Registry.Cities(),
		PoPs:   append([]PoP(nil), t.pops...),
	}
	for _, a := range t.asOrder {
		e.ASes = append(e.ASes, *t.ases[a])
	}
	for _, l := range t.links {
		e.Links = append(e.Links, *l)
	}
	for _, x := range t.IXPs() {
		e.IXPs = append(e.IXPs, IXPExport{
			Name: x.Name, City: x.City, Prefix: x.Prefix,
			Members: append([]ASN(nil), x.Members...),
		})
	}
	return e
}

// finite rejects NaN/Inf floats in serialized numeric fields: the disk
// envelope's checksum catches random corruption, but Import is the last line
// of defense against a hostile or buggy payload poisoning downstream
// arithmetic.
func finite(vs ...float64) bool {
	for _, v := range vs {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return false
		}
	}
	return true
}

// Import reconstructs a mutable Topology from its serialized form,
// validating every cross-reference: unknown cities, duplicate ASNs or PoPs,
// out-of-range link endpoints, non-finite floats, and IXP members without a
// PoP in the exchange city are all errors, never panics. The returned
// topology is unfrozen — the artifact layer freezes it exactly like a fresh
// build.
func Import(e *Export) (*Topology, error) {
	if e == nil {
		return nil, fmt.Errorf("topo: import: nil export")
	}
	for _, c := range e.Cities {
		if c.Name == "" || !finite(c.Lat, c.Lon, c.UTCOffset) {
			return nil, fmt.Errorf("topo: import: invalid city %q", c.Name)
		}
	}
	t := &Topology{
		Registry:     geo.FromCities(e.Cities),
		ases:         make(map[ASN]*AS, len(e.ASes)),
		popIndex:     make(map[popKey]PoPID, len(e.PoPs)),
		adj:          make(map[PoPID][]LinkID, len(e.PoPs)),
		ixps:         make(map[string]*IXP, len(e.IXPs)),
		ixpMemberIdx: make(map[string]map[ASN]int, len(e.IXPs)),
	}
	if len(e.ASes) == 0 {
		return nil, fmt.Errorf("topo: import: empty topology")
	}
	for _, a := range e.ASes {
		if _, ok := t.ases[a.ASN]; ok {
			return nil, fmt.Errorf("topo: import: duplicate AS%d", a.ASN)
		}
		c := a
		t.ases[a.ASN] = &c
		t.asOrder = append(t.asOrder, a.ASN)
	}
	for i, p := range e.PoPs {
		if p.ID != PoPID(i) {
			return nil, fmt.Errorf("topo: import: PoP %d has ID %d (must equal its index)", i, p.ID)
		}
		if _, ok := t.ases[p.AS]; !ok {
			return nil, fmt.Errorf("topo: import: PoP %d references unknown AS%d", i, p.AS)
		}
		if _, err := t.Registry.Get(p.City); err != nil {
			return nil, fmt.Errorf("topo: import: PoP %d: %w", i, err)
		}
		key := popKey{p.AS, p.City}
		if _, ok := t.popIndex[key]; ok {
			return nil, fmt.Errorf("topo: import: AS%d has two PoPs in %s", p.AS, p.City)
		}
		t.pops = append(t.pops, p)
		t.popIndex[key] = p.ID
	}
	for _, x := range e.IXPs {
		if _, ok := t.ixps[x.Name]; ok {
			return nil, fmt.Errorf("topo: import: duplicate IXP %q", x.Name)
		}
		if _, err := t.Registry.Get(x.City); err != nil {
			return nil, fmt.Errorf("topo: import: IXP %s: %w", x.Name, err)
		}
		ix := &IXP{Name: x.Name, City: x.City, Prefix: x.Prefix, Members: append([]ASN(nil), x.Members...)}
		idx := make(map[ASN]int, len(x.Members))
		for i, m := range x.Members {
			if _, ok := t.ases[m]; !ok {
				return nil, fmt.Errorf("topo: import: IXP %s member AS%d unknown", x.Name, m)
			}
			if _, ok := idx[m]; ok {
				return nil, fmt.Errorf("topo: import: IXP %s lists AS%d twice", x.Name, m)
			}
			if _, ok := t.popIndex[popKey{m, x.City}]; !ok {
				return nil, fmt.Errorf("topo: import: IXP %s member AS%d has no PoP in %s", x.Name, m, x.City)
			}
			idx[m] = i
		}
		t.ixps[x.Name] = ix
		t.ixpMemberIdx[x.Name] = idx
	}
	for i, l := range e.Links {
		if l.ID != LinkID(i) {
			return nil, fmt.Errorf("topo: import: link %d has ID %d (must equal its index)", i, l.ID)
		}
		if int(l.A) < 0 || int(l.A) >= len(t.pops) || int(l.B) < 0 || int(l.B) >= len(t.pops) {
			return nil, fmt.Errorf("topo: import: link %d endpoints out of range", i)
		}
		if l.Rel != CustomerOf && l.Rel != PeerWith {
			return nil, fmt.Errorf("topo: import: link %d has unknown relationship %d", i, int(l.Rel))
		}
		if !finite(l.CapacityMbps, l.DelayMs, l.BaseUtil) {
			return nil, fmt.Errorf("topo: import: link %d has non-finite parameters", i)
		}
		if l.IXP != "" {
			if _, ok := t.ixps[l.IXP]; !ok {
				return nil, fmt.Errorf("topo: import: link %d references unknown IXP %q", i, l.IXP)
			}
		}
		c := l
		t.links = append(t.links, &c)
		// Adjacency rebuild: links were appended A-then-B at creation, so
		// replaying that in ID order reproduces the original adjacency lists
		// (whose order downstream iteration depends on) exactly.
		t.adj[c.A] = append(t.adj[c.A], c.ID)
		t.adj[c.B] = append(t.adj[c.B], c.ID)
	}
	// Same consistency gate as Builder.Build: a pair of ASes must relate
	// consistently across all their links.
	if _, err := t.Relationships(); err != nil {
		return nil, fmt.Errorf("topo: import: %w", err)
	}
	return t, nil
}
