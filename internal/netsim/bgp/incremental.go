package bgp

import (
	"context"
	"sort"

	"sisyphus/internal/netsim/topo"
	"sisyphus/internal/obs"
	"sisyphus/internal/parallel"
)

// AffectedDestinations returns the destination ASes whose converged routing
// could change when the given link fails: every destination for which some
// AS's chosen route crosses an AS-level adjacency realized (possibly among
// others) by that link. Destinations outside this set provably keep their
// routes, because no selected path used the adjacency and removing a link
// only removes options that were already losing.
func (r *RIB) AffectedDestinations(failed topo.LinkID) []topo.ASN {
	l := r.Topo.Link(failed)
	a := r.Topo.PoP(l.A).AS
	b := r.Topo.PoP(l.B).AS
	if a == b {
		return nil // intra-AS links are invisible to BGP
	}
	// If other links still realize the adjacency, the control plane keeps
	// the session up and nothing changes at the AS level.
	remaining := 0
	for _, id := range r.Rel.Links[a][b] {
		if id != failed {
			lk := r.Topo.Link(id)
			if lk.Up && !r.policy.DenyLink[id] {
				remaining++
			}
		}
	}
	if remaining > 0 {
		return nil
	}
	var out []topo.ASN
	for dest, best := range r.best {
		uses := false
		for owner, rt := range best {
			if rt == nil {
				continue
			}
			prev := owner
			for _, hop := range rt.Path {
				if (prev == a && hop == b) || (prev == b && hop == a) {
					uses = true
					break
				}
				prev = hop
			}
			if uses {
				break
			}
		}
		if uses {
			out = append(out, dest)
		}
	}
	return out
}

// RecomputeAfterLinkFailure returns a new RIB reflecting the failure of one
// link, recomputing only the destinations the failure can affect and reusing
// every other table from this RIB. The returned RIB uses a policy that
// denies the link.
//
// This is the "incremental" arm of the DESIGN.md routing ablation: on large
// topologies most destinations are unaffected by a single edge event, so
// this is much cheaper than a full Compute — at the cost of holding the
// (safe) monotonicity assumption above.
func (r *RIB) RecomputeAfterLinkFailure(ctx context.Context, failed topo.LinkID) (*RIB, error) {
	pol := r.policy.Clone()
	pol.DenyLink[failed] = true
	rel, err := relationshipsUnderPolicy(r.Topo, pol)
	if err != nil {
		return nil, err
	}
	out := &RIB{Topo: r.Topo, Rel: rel, best: make(map[topo.ASN]map[topo.ASN]*Route), policy: pol, pool: r.pool}
	affected := make(map[topo.ASN]bool)
	for _, d := range r.AffectedDestinations(failed) {
		affected[d] = true
	}
	var recompute []topo.ASN
	for dest, tbl := range r.best {
		if !affected[dest] {
			out.best[dest] = tbl // share: routes are immutable once computed
			continue
		}
		recompute = append(recompute, dest)
	}
	// Affected destinations re-converge independently, exactly as in
	// Compute; sorted so the dispatch order is deterministic.
	sort.Slice(recompute, func(i, j int) bool { return recompute[i] < recompute[j] })
	fresh, err := parallel.Map(ctx, r.pool, len(recompute), func(i int) (destTable, error) {
		return computeDest(r.Topo, rel, pol, recompute[i])
	})
	if err != nil {
		return nil, err
	}
	var sweeps int64
	for i, tbl := range fresh {
		out.best[recompute[i]] = tbl.best
		sweeps += int64(tbl.sweeps)
	}
	obs.Add(ctx, "bgp.incremental_destinations", int64(len(recompute)))
	obs.Add(ctx, "bgp.sweeps", sweeps)
	return out, nil
}
