package bgp

import (
	"context"
	"strings"
	"testing"

	"sisyphus/internal/netsim/topo"
	"sisyphus/internal/parallel"
)

// frozenRIB computes a converged RIB over the trombone world and freezes
// it, mimicking exactly what the artifact store holds.
func frozenRIB(t testing.TB) (*topo.Topology, *RIB) {
	t.Helper()
	tp := trombone(t)
	rib, err := Compute(context.Background(), parallel.Pool{}, tp, nil)
	if err != nil {
		t.Fatal(err)
	}
	tp.Freeze()
	rib.Freeze()
	return tp, rib
}

// TestFrozenForkSharesTables pins the copy-on-write contract: a fork of a
// frozen RIB shares every per-destination table, and writing routes through
// MutableLookup promotes exactly one destination — the frozen original and
// sibling forks keep the converged view.
func TestFrozenForkSharesTables(t *testing.T) {
	tp, rib := frozenRIB(t)

	a := rib.Fork(tp.Clone())
	b := rib.Fork(tp.Clone())
	for dest := range rib.best {
		if !sameTable(a.best[dest], rib.best[dest]) {
			t.Fatalf("fork copied the table for dest AS%d", dest)
		}
	}
	if a.Rel != rib.Rel {
		t.Fatal("fork copied the relationship map")
	}

	// Maul fork a's route to AS300 through the sanctioned write path.
	orig := rib.Lookup(3741, 300)
	if orig == nil || len(orig.Path) == 0 {
		t.Fatal("trombone world lost its 3741→300 route")
	}
	origFirst := orig.Path[0]
	rt := a.MutableLookup(3741, 300)
	rt.Path[0] = 65000
	rt.LocalPref = -1

	// a sees its own write; the promotion touched only dest 300.
	if got := a.Lookup(3741, 300); got.Path[0] != 65000 || got.LocalPref != -1 {
		t.Fatalf("fork lost its own route write: %+v", got)
	}
	for dest := range a.best {
		shared := sameTable(a.best[dest], rib.best[dest])
		if dest == 300 && shared {
			t.Fatal("promoted destination still shares its table")
		}
		if dest != 300 && !shared {
			t.Fatalf("unwritten destination AS%d was copied", dest)
		}
	}
	// The frozen original and the sibling are pristine.
	for name, r := range map[string]*RIB{"original": rib, "sibling": b} {
		got := r.Lookup(3741, 300)
		if got == nil || got.Path[0] != origFirst || got.LocalPref == -1 {
			t.Fatalf("%s saw the fork's route write: %+v", name, got)
		}
	}
}

func sameTable(a, b map[topo.ASN]*Route) bool {
	if len(a) != len(b) {
		return false
	}
	for k, v := range a {
		if b[k] != v {
			return false
		}
	}
	return true
}

// TestMutableLookupOnFrozenRIBPanics is the debug assertion: in-place route
// writes on the stored original are a bug, loudly.
func TestMutableLookupOnFrozenRIBPanics(t *testing.T) {
	_, rib := frozenRIB(t)
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("MutableLookup on frozen RIB did not panic")
		}
		if msg, ok := r.(string); !ok || !strings.Contains(msg, "frozen") {
			t.Fatalf("panic = %v, want frozen-RIB message", r)
		}
	}()
	rib.MutableLookup(3741, 300)
}

// TestMutableLookupIsolatesFreshRIBs: promotion applies even on a freshly
// computed (never-frozen) RIB, so a derived incremental RIB that shared
// tables can never observe later in-place writes to its parent.
func TestMutableLookupIsolatesFreshRIBs(t *testing.T) {
	tp := trombone(t)
	rib, err := Compute(context.Background(), parallel.Pool{}, tp, nil)
	if err != nil {
		t.Fatal(err)
	}
	rel, _ := tp.Relationships()
	failed := rel.Links[3741][200][0]
	inc, err := rib.RecomputeAfterLinkFailure(context.Background(), failed)
	if err != nil {
		t.Fatal(err)
	}
	// Write a route the incremental RIB shares (dest 200 is unaffected by
	// failing the 3741-200 edge from 100's perspective? pick a dest the two
	// RIBs share a table for).
	var sharedDest topo.ASN = ^topo.ASN(0)
	for dest := range rib.best {
		if sameTable(rib.best[dest], inc.best[dest]) {
			sharedDest = dest
			break
		}
	}
	if sharedDest == ^topo.ASN(0) {
		t.Skip("no shared table between parent and incremental RIB")
	}
	var owner topo.ASN = ^topo.ASN(0)
	for a, rt := range rib.best[sharedDest] {
		if rt != nil && len(rt.Path) > 0 {
			owner = a
			break
		}
	}
	if owner == ^topo.ASN(0) {
		t.Skipf("no mutable route toward AS%d", sharedDest)
	}
	before := inc.Lookup(owner, sharedDest).Path[0]
	rt := rib.MutableLookup(owner, sharedDest)
	rt.Path[0] = 65001
	if got := inc.Lookup(owner, sharedDest); got.Path[0] != before {
		t.Fatalf("parent's in-place write leaked into the incremental RIB: %+v", got)
	}
}

// TestFrozenForkAllocations pins the O(destinations) fork property: forking
// a frozen RIB allocates the outer map and policy, never route tables.
func TestFrozenForkAllocations(t *testing.T) {
	tp, rib := frozenRIB(t)
	forkWorld := tp.Clone()
	var sink *RIB
	allocs := testing.AllocsPerRun(100, func() { sink = rib.Fork(forkWorld) })
	_ = sink
	// Outer map + RIB struct + policy clone (3 maps) + map buckets: well
	// under one allocation per route table (the trombone world has 4 dests
	// × 4 ASes of routes, each a map + Route + Path slice when deep-copied).
	if allocs > 12 {
		t.Fatalf("frozen Fork allocates %v objects per run, want O(outer map)", allocs)
	}
}

// TestSizeBytes sanity-checks the residency estimator: nonzero, and
// monotone in route count.
func TestSizeBytes(t *testing.T) {
	_, rib := frozenRIB(t)
	n := rib.SizeBytes()
	if n <= 0 {
		t.Fatalf("SizeBytes() = %d, want > 0", n)
	}
	routes := 0
	for _, m := range rib.best {
		routes += len(m)
	}
	if n < int64(routes)*64 {
		t.Fatalf("SizeBytes() = %d, below the per-route floor for %d routes", n, routes)
	}
}
