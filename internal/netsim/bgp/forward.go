package bgp

import (
	"fmt"

	"sisyphus/internal/netsim/geo"
	"sisyphus/internal/netsim/topo"
)

// Hop is one data-plane step of a forwarded path.
type Hop struct {
	From, To topo.PoPID
	// Link is the inter-AS (or IXP) link crossed, or nil for an intra-AS
	// segment between two PoPs of the same AS.
	Link *topo.Link
	// DelayMs is the propagation delay of this hop (queueing is added by
	// the engine from link utilization).
	DelayMs float64
}

// Path is a fully expanded forwarding path.
type Path struct {
	Src, Dst topo.PoPID
	ASPath   []topo.ASN
	Hops     []Hop
}

// PropagationMs sums the hops' propagation delays (one way).
func (p *Path) PropagationMs() float64 {
	var s float64
	for _, h := range p.Hops {
		s += h.DelayMs
	}
	return s
}

// CrossesLink reports whether the path uses the given link.
func (p *Path) CrossesLink(id topo.LinkID) bool {
	for _, h := range p.Hops {
		if h.Link != nil && h.Link.ID == id {
			return true
		}
	}
	return false
}

// Forward expands the RIB route from a source PoP to a destination PoP into
// PoP-level hops. At each AS-level step it picks the available link between
// the two ASes that minimizes intra-AS detour plus link delay (hot-potato
// flavoured but latency-aware). Inside an AS, PoPs are assumed to form a
// full mesh at geographic delay.
func (r *RIB) Forward(src, dst topo.PoPID) (*Path, error) {
	t := r.Topo
	srcPoP := t.PoP(src)
	dstPoP := t.PoP(dst)
	route := r.Lookup(srcPoP.AS, dstPoP.AS)
	if srcPoP.AS != dstPoP.AS && route == nil {
		return nil, fmt.Errorf("bgp: AS%d cannot reach AS%d", srcPoP.AS, dstPoP.AS)
	}

	path := &Path{Src: src, Dst: dst}
	cur := src
	asSeq := []topo.ASN{srcPoP.AS}
	if srcPoP.AS != dstPoP.AS {
		for _, asn := range route.Path {
			asSeq = append(asSeq, asn)
			if asn == dstPoP.AS {
				// Everything after the first occurrence of the origin is
				// poison padding from the announcement sandwich; the data
				// plane stops here.
				break
			}
		}
	}
	path.ASPath = asSeq

	for i := 0; i+1 < len(asSeq); i++ {
		a, b := asSeq[i], asSeq[i+1]
		ids := r.Rel.Links[a][b]
		if len(ids) == 0 {
			return nil, fmt.Errorf("bgp: no usable link between AS%d and AS%d", a, b)
		}
		// Choose the link minimizing (intra-AS reposition + link delay).
		bestCost := -1.0
		var bestLink *topo.Link
		var bestNear, bestFar topo.PoPID
		for _, id := range ids {
			l := t.Link(id)
			if !l.Up || r.policy.DenyLink[id] {
				continue
			}
			near, far := l.A, l.B
			if t.PoP(near).AS != a {
				near, far = far, near
			}
			cost := r.intraDelay(cur, near) + l.DelayMs
			if bestCost < 0 || cost < bestCost {
				bestCost, bestLink, bestNear, bestFar = cost, l, near, far
			}
		}
		if bestLink == nil {
			return nil, fmt.Errorf("bgp: all links between AS%d and AS%d are down", a, b)
		}
		if bestNear != cur {
			path.Hops = append(path.Hops, Hop{From: cur, To: bestNear, DelayMs: r.intraDelay(cur, bestNear)})
		}
		path.Hops = append(path.Hops, Hop{From: bestNear, To: bestFar, Link: bestLink, DelayMs: bestLink.DelayMs})
		cur = bestFar
	}
	if cur != dst {
		if t.PoP(cur).AS != dstPoP.AS {
			return nil, fmt.Errorf("bgp: forwarding ended in AS%d, want AS%d", t.PoP(cur).AS, dstPoP.AS)
		}
		path.Hops = append(path.Hops, Hop{From: cur, To: dst, DelayMs: r.intraDelay(cur, dst)})
	}
	return path, nil
}

// intraDelay is the one-way delay between two PoPs of the same AS: direct
// geographic propagation plus a small switching overhead. Same PoP is free.
func (r *RIB) intraDelay(a, b topo.PoPID) float64 {
	if a == b {
		return 0
	}
	ca := r.Topo.Registry.MustGet(r.Topo.PoP(a).City)
	cb := r.Topo.Registry.MustGet(r.Topo.PoP(b).City)
	d := geo.PropagationMs(ca, cb)
	if d < 0.2 {
		d = 0.2
	}
	return d + 0.1
}

// NearestPoP returns the PoP of asn with the smallest forwarding
// propagation delay from the source PoP — how anycast/CDN edge selection is
// approximated when a measurement targets "the content AS" rather than a
// specific PoP.
func (r *RIB) NearestPoP(src topo.PoPID, asn topo.ASN) (topo.PoPID, error) {
	var best topo.PoPID
	bestDelay := -1.0
	for _, id := range r.Topo.PoPsOf(asn) {
		p, err := r.Forward(src, id)
		if err != nil {
			continue
		}
		d := p.PropagationMs()
		if bestDelay < 0 || d < bestDelay {
			bestDelay, best = d, id
		}
	}
	if bestDelay < 0 {
		return 0, fmt.Errorf("bgp: no reachable PoP of AS%d from PoP %d", asn, src)
	}
	return best, nil
}
