package bgp

import (
	"context"
	"testing"
	"testing/quick"

	"sisyphus/internal/mathx"
	"sisyphus/internal/netsim/topo"
	"sisyphus/internal/parallel"
)

// TestIncrementalMatchesFullRecompute is the correctness contract for the
// incremental path: for random topologies and random single-link failures,
// the incremental RIB must equal a full recompute under the same denial.
func TestIncrementalMatchesFullRecompute(t *testing.T) {
	f := func(seed uint64) bool {
		r := mathx.NewRNG(seed)
		tp, err := topo.Generate(r, topo.DefaultGenConfig(), nil)
		if err != nil {
			return false
		}
		rib, err := Compute(context.Background(), parallel.Pool{}, tp, nil)
		if err != nil {
			return false
		}
		links := tp.Links()
		failed := links[r.Intn(len(links))].ID

		inc, err := rib.RecomputeAfterLinkFailure(context.Background(), failed)
		if err != nil {
			return false
		}
		pol := NewPolicy()
		pol.DenyLink[failed] = true
		full, err := Compute(context.Background(), parallel.Pool{}, tp, pol)
		if err != nil {
			return false
		}
		for _, dst := range tp.ASes() {
			for _, src := range tp.ASes() {
				a := inc.Lookup(src.ASN, dst.ASN)
				b := full.Lookup(src.ASN, dst.ASN)
				if !routesEqual(a, b) {
					t.Logf("seed %d: mismatch src=%d dst=%d inc=%+v full=%+v", seed, src.ASN, dst.ASN, a, b)
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func TestAffectedDestinationsRedundantLink(t *testing.T) {
	// Two parallel links between the same AS pair: failing one affects
	// nothing because the adjacency survives.
	b := topo.NewBuilder(nil).
		AddAS(1, "A", topo.Access, "London", "Paris").
		AddAS(2, "B", topo.Transit, "London", "Paris").
		Connect(1, "London", topo.CustomerOf, 2, "London").
		Connect(1, "Paris", topo.CustomerOf, 2, "Paris")
	tp, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	rib, err := Compute(context.Background(), parallel.Pool{}, tp, nil)
	if err != nil {
		t.Fatal(err)
	}
	if got := rib.AffectedDestinations(0); got != nil {
		t.Fatalf("redundant link failure affected %v", got)
	}
	inc, err := rib.RecomputeAfterLinkFailure(context.Background(), 0)
	if err != nil {
		t.Fatal(err)
	}
	if inc.Lookup(1, 2) == nil {
		t.Fatal("route lost despite redundancy")
	}
}

func TestAffectedDestinationsCutLink(t *testing.T) {
	tp := trombone(t)
	rib, err := Compute(context.Background(), parallel.Pool{}, tp, nil)
	if err != nil {
		t.Fatal(err)
	}
	rel, _ := tp.Relationships()
	id := rel.Links[3741][200][0]
	affected := rib.AffectedDestinations(id)
	if len(affected) == 0 {
		t.Fatal("cutting the only access link should affect destinations")
	}
	inc, err := rib.RecomputeAfterLinkFailure(context.Background(), id)
	if err != nil {
		t.Fatal(err)
	}
	if inc.Lookup(3741, 300) != nil {
		t.Fatal("single-homed AS still routed after incremental failure")
	}
}
