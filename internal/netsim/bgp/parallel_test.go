package bgp

import (
	"reflect"
	"testing"

	"sisyphus/internal/mathx"
	"sisyphus/internal/netsim/topo"
	"sisyphus/internal/parallel"
)

// TestComputeParallelBitIdentity: the converged RIB must be identical
// whether per-destination propagation runs on one worker or many, on a
// random topology large enough to exercise real fan-out.
func TestComputeParallelBitIdentity(t *testing.T) {
	r := mathx.NewRNG(9)
	cfg := topo.GenConfig{Tier1: 3, Tier2: 8, Access: 25, Content: 4, MultihomeProb: 0.5, PeerProb: 0.3}
	tp, err := topo.Generate(r, cfg, nil)
	if err != nil {
		t.Fatal(err)
	}

	restore := parallel.SetWorkers(1)
	seq, seqErr := Compute(tp, nil)
	restore()
	restore = parallel.SetWorkers(8)
	par, parErr := Compute(tp, nil)
	restore()
	if seqErr != nil || parErr != nil {
		t.Fatalf("compute errors: %v / %v", seqErr, parErr)
	}
	if !reflect.DeepEqual(seq.best, par.best) {
		t.Fatal("parallel RIB differs from sequential RIB")
	}

	// Incremental recompute must also be worker-count invariant.
	link := tp.Links()[3].ID
	restore = parallel.SetWorkers(1)
	seqInc, err1 := seq.RecomputeAfterLinkFailure(link)
	restore()
	restore = parallel.SetWorkers(8)
	parInc, err2 := par.RecomputeAfterLinkFailure(link)
	restore()
	if err1 != nil || err2 != nil {
		t.Fatalf("incremental errors: %v / %v", err1, err2)
	}
	if !reflect.DeepEqual(seqInc.best, parInc.best) {
		t.Fatal("parallel incremental RIB differs from sequential")
	}
}
