package bgp

import (
	"context"
	"reflect"
	"testing"

	"sisyphus/internal/mathx"
	"sisyphus/internal/netsim/topo"
	"sisyphus/internal/parallel"
)

// TestComputeParallelBitIdentity: the converged RIB must be identical
// whether per-destination propagation runs on one worker or many, on a
// random topology large enough to exercise real fan-out.
func TestComputeParallelBitIdentity(t *testing.T) {
	r := mathx.NewRNG(9)
	cfg := topo.GenConfig{Tier1: 3, Tier2: 8, Access: 25, Content: 4, MultihomeProb: 0.5, PeerProb: 0.3}
	tp, err := topo.Generate(r, cfg, nil)
	if err != nil {
		t.Fatal(err)
	}

	ctx := context.Background()
	seq, seqErr := Compute(ctx, parallel.NewPool(1), tp, nil)
	par, parErr := Compute(ctx, parallel.NewPool(8), tp, nil)
	if seqErr != nil || parErr != nil {
		t.Fatalf("compute errors: %v / %v", seqErr, parErr)
	}
	if !reflect.DeepEqual(seq.best, par.best) {
		t.Fatal("parallel RIB differs from sequential RIB")
	}

	// Incremental recompute must also be worker-count invariant: each RIB
	// carries its pool, so the two recomputes run at different widths.
	link := tp.Links()[3].ID
	seqInc, err1 := seq.RecomputeAfterLinkFailure(ctx, link)
	parInc, err2 := par.RecomputeAfterLinkFailure(ctx, link)
	if err1 != nil || err2 != nil {
		t.Fatalf("incremental errors: %v / %v", err1, err2)
	}
	if !reflect.DeepEqual(seqInc.best, parInc.best) {
		t.Fatal("parallel incremental RIB differs from sequential")
	}
}
