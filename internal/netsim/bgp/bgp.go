// Package bgp computes interdomain routes over a topo.Topology with the
// standard policy model: Gao–Rexford export rules (providers export
// everything to customers; routes learned from peers or providers are never
// re-exported to other peers or providers) and local preference ordered
// customer > peer > provider. It supports the route-manipulation events the
// paper treats as natural experiments and instruments: link failures,
// local-preference overrides, maintenance windows, and BGP poisoning
// (PoiRoot's instrumental variable).
//
// Routing is computed to a fixed point per destination AS. Gao–Rexford-
// consistent topologies are guaranteed to converge; the solver caps sweeps
// and reports an error otherwise, so policy bugs surface loudly.
package bgp

import (
	"context"
	"fmt"
	"sort"

	"sisyphus/internal/netsim/topo"
	"sisyphus/internal/obs"
	"sisyphus/internal/parallel"
)

// Local preference defaults by relationship to the next hop.
const (
	PrefCustomer = 300
	PrefPeer     = 200
	PrefProvider = 100
)

// Route is one AS's chosen route toward a destination AS.
type Route struct {
	Dest topo.ASN
	// Path is the AS path from (exclusive) the owning AS to the
	// destination, i.e. Path[0] is the next hop and Path[len-1] == Dest.
	// It is empty for the origin's own route. Poisoned ASNs appear in the
	// origin's announced path and therefore in everyone's Path.
	Path []topo.ASN
	// LocalPref is the preference under which the route was selected.
	LocalPref int
}

// NextHop returns the next-hop AS, or the destination itself at the origin.
func (r *Route) NextHop() topo.ASN {
	if len(r.Path) == 0 {
		return r.Dest
	}
	return r.Path[0]
}

// Len returns the AS-path length (0 at the origin).
func (r *Route) Len() int { return len(r.Path) }

// Policy collects the routing knobs events can turn.
type Policy struct {
	// LocalPref overrides the default relationship-based preference:
	// LocalPref[a][n] applies at AS a to routes via neighbor n.
	LocalPref map[topo.ASN]map[topo.ASN]int
	// Poison lists ASNs the origin inserts into its announcement for a
	// destination, causing them to reject the route (loop detection).
	Poison map[topo.ASN][]topo.ASN
	// DenyLink marks links administratively down (maintenance windows)
	// without mutating the topology.
	DenyLink map[topo.LinkID]bool
}

// NewPolicy returns an empty policy.
func NewPolicy() *Policy {
	return &Policy{
		LocalPref: make(map[topo.ASN]map[topo.ASN]int),
		Poison:    make(map[topo.ASN][]topo.ASN),
		DenyLink:  make(map[topo.LinkID]bool),
	}
}

// SetLocalPref sets a's preference for routes via neighbor n.
func (p *Policy) SetLocalPref(a, n topo.ASN, pref int) {
	if p.LocalPref[a] == nil {
		p.LocalPref[a] = make(map[topo.ASN]int)
	}
	p.LocalPref[a][n] = pref
}

// ClearLocalPref removes an override.
func (p *Policy) ClearLocalPref(a, n topo.ASN) {
	if p.LocalPref[a] != nil {
		delete(p.LocalPref[a], n)
	}
}

// Clone returns a deep copy, so events can be applied to a scratch policy.
func (p *Policy) Clone() *Policy {
	out := NewPolicy()
	for a, m := range p.LocalPref {
		for n, v := range m {
			out.SetLocalPref(a, n, v)
		}
	}
	for d, list := range p.Poison {
		out.Poison[d] = append([]topo.ASN(nil), list...)
	}
	for l, v := range p.DenyLink {
		out.DenyLink[l] = v
	}
	return out
}

// RIB is the converged set of routing tables: for every destination AS, the
// best route at every AS that can reach it.
//
// Per-destination tables are immutable once converged: Compute and
// RecomputeAfterLinkFailure always build fresh tables, never write old ones
// in place. That invariant is what lets Fork on a frozen RIB copy only the
// outer destination map (O(destinations) pointers) while sharing every
// table and route with the frozen original, and lets incremental
// recomputation share every unaffected table. The one sanctioned way to
// edit routes in place is MutableLookup, which promotes the destination's
// table to a private copy first — per-destination copy-on-write.
type RIB struct {
	Topo *topo.Topology
	Rel  *topo.ASRelationships
	// best[dest][as] is as's chosen route to dest. The outer map is always
	// owned by this RIB; inner tables may be shared with other RIBs.
	best map[topo.ASN]map[topo.ASN]*Route
	// promoted marks destinations whose inner table (and routes) are
	// private to this RIB because MutableLookup copied them.
	promoted map[topo.ASN]bool
	// frozen marks the immutable original the artifact store holds: Fork
	// becomes pointer-cheap and MutableLookup panics.
	frozen bool
	// policy used (for data-plane link filtering).
	policy *Policy
	// pool computed this RIB and is reused by incremental recomputation.
	pool parallel.Pool
}

// Freeze marks the RIB immutable: MutableLookup panics on it, and Fork
// switches from deep copies to pointer-cheap table sharing. The artifact
// store freezes each converged RIB once, before any fork escapes.
func (r *RIB) Freeze() { r.frozen = true }

// Frozen reports whether Freeze was called.
func (r *RIB) Frozen() bool { return r.frozen }

// Lookup returns a's route to dest, or nil if unreachable.
func (r *RIB) Lookup(a, dest topo.ASN) *Route {
	m := r.best[dest]
	if m == nil {
		return nil
	}
	return m[a]
}

// ASPath returns the full AS path from a to dest including both endpoints,
// with any poisoned ASNs included as they appear in the announcement.
func (r *RIB) ASPath(a, dest topo.ASN) ([]topo.ASN, error) {
	rt := r.Lookup(a, dest)
	if rt == nil {
		return nil, fmt.Errorf("bgp: AS%d has no route to AS%d", a, dest)
	}
	return append([]topo.ASN{a}, rt.Path...), nil
}

// maxSweeps bounds convergence iterations; Gao–Rexford systems settle in
// O(diameter) sweeps, so hitting this means a policy dispute wheel.
const maxSweeps = 200

// Compute converges routing for every destination AS under the policy
// (nil means default policy).
//
// Destinations are independent fixed-point problems over read-only inputs
// (topology, relationships, policy), so they fan out across pool;
// per-destination tables come back in AS order and are assembled into the
// RIB sequentially, making the result identical to the sequential loop.
// Cancelling ctx stops scheduling further destinations and returns ctx.Err();
// the pool is retained by the RIB for incremental recomputation.
func Compute(ctx context.Context, pool parallel.Pool, t *topo.Topology, pol *Policy) (*RIB, error) {
	if pol == nil {
		pol = NewPolicy()
	}
	rel, err := relationshipsUnderPolicy(t, pol)
	if err != nil {
		return nil, err
	}
	rib := &RIB{Topo: t, Rel: rel, best: make(map[topo.ASN]map[topo.ASN]*Route), policy: pol, pool: pool}
	ases := t.ASes()
	tables, err := parallel.Map(ctx, pool, len(ases), func(i int) (destTable, error) {
		return computeDest(t, rel, pol, ases[i].ASN)
	})
	if err != nil {
		return nil, err
	}
	var sweeps int64
	for i, tbl := range tables {
		rib.best[ases[i].ASN] = tbl.best
		sweeps += int64(tbl.sweeps)
	}
	// Fixed-point effort accounting (no-op without a recorder on ctx): how
	// many destinations converged and how many sweeps that took in total.
	obs.Add(ctx, "bgp.destinations", int64(len(ases)))
	obs.Add(ctx, "bgp.sweeps", sweeps)
	return rib, nil
}

// relationshipsUnderPolicy rebuilds AS adjacency considering DenyLink.
func relationshipsUnderPolicy(t *topo.Topology, pol *Policy) (*topo.ASRelationships, error) {
	rel, err := t.Relationships()
	if err != nil {
		return nil, err
	}
	if len(pol.DenyLink) == 0 {
		return rel, nil
	}
	// Remove denied links; drop adjacencies with no remaining links.
	for a, m := range rel.Links {
		for b, ids := range m {
			var keep []topo.LinkID
			for _, id := range ids {
				if !pol.DenyLink[id] {
					keep = append(keep, id)
				}
			}
			if len(keep) == 0 {
				delete(rel.Links[a], b)
				delete(rel.Rel[a], b)
			} else {
				rel.Links[a][b] = keep
			}
		}
	}
	return rel, nil
}

// destTable is one destination's converged routing table plus the number of
// sweeps the fixed point took — the effort metric the run trace reports.
type destTable struct {
	best   map[topo.ASN]*Route
	sweeps int
}

func computeDest(t *topo.Topology, rel *topo.ASRelationships, pol *Policy, dest topo.ASN) (destTable, error) {
	best := make(map[topo.ASN]*Route)
	// The origin's announced path carries poisoned ASNs then itself.
	poison := pol.Poison[dest]
	best[dest] = &Route{Dest: dest, Path: nil, LocalPref: PrefCustomer}
	// The origin announces itself; with poisoning it announces the classic
	// sandwich "dest poisoned... dest" so poisoned ASes see themselves in
	// the path and drop the route, while the next hop stays the origin.
	originAnnouncement := []topo.ASN{dest}
	if len(poison) > 0 {
		originAnnouncement = append(append(originAnnouncement, poison...), dest)
	}

	// Deterministic AS sweep order.
	order := make([]topo.ASN, 0)
	for _, as := range t.ASes() {
		order = append(order, as.ASN)
	}
	sort.Slice(order, func(i, j int) bool { return order[i] < order[j] })

	// advertised(n) = the path n offers neighbors.
	advertised := func(n topo.ASN) []topo.ASN {
		if n == dest {
			return originAnnouncement
		}
		r := best[n]
		if r == nil {
			return nil
		}
		return append([]topo.ASN{n}, r.Path...)
	}

	for sweep := 0; sweep < maxSweeps; sweep++ {
		changed := false
		for _, a := range order {
			if a == dest {
				continue
			}
			var cand *Route
			// Deterministic neighbor order.
			neighbors := make([]topo.ASN, 0, len(rel.Rel[a]))
			for n := range rel.Rel[a] {
				neighbors = append(neighbors, n)
			}
			sort.Slice(neighbors, func(i, j int) bool { return neighbors[i] < neighbors[j] })
			for _, n := range neighbors {
				adv := advertised(n)
				if adv == nil {
					continue
				}
				if !canExport(rel, n, a, best[n], n == dest) {
					continue
				}
				if containsASN(adv, a) {
					continue // loop (or poisoned against a)
				}
				pref := prefFor(rel, pol, a, n)
				c := &Route{Dest: dest, Path: adv, LocalPref: pref}
				if better(c, cand) {
					cand = c
				}
			}
			if !routesEqual(cand, best[a]) {
				best[a] = cand
				changed = true
			}
		}
		if !changed {
			return destTable{best: best, sweeps: sweep + 1}, nil
		}
	}
	return destTable{}, fmt.Errorf("bgp: routing for dest AS%d did not converge in %d sweeps (policy dispute?)", dest, maxSweeps)
}

// canExport implements Gao–Rexford: n exports its route to neighbor a iff
// a is n's customer, or n's route was originated by n / learned from one of
// n's customers.
func canExport(rel *topo.ASRelationships, n, a topo.ASN, nRoute *Route, nIsOrigin bool) bool {
	if rel.Rel[n][a] == topo.RelProvider {
		return true // a is n's customer: export everything
	}
	if nIsOrigin {
		return true // own prefix: export to everyone
	}
	if nRoute == nil {
		return false
	}
	// Learned from a customer?
	return rel.Rel[n][nRoute.NextHop()] == topo.RelProvider
}

func prefFor(rel *topo.ASRelationships, pol *Policy, a, n topo.ASN) int {
	if m := pol.LocalPref[a]; m != nil {
		if v, ok := m[n]; ok {
			return v
		}
	}
	switch rel.Rel[a][n] {
	case topo.RelCustomer: // a is the customer here, so n is a's provider
		return PrefProvider
	case topo.RelPeer:
		return PrefPeer
	case topo.RelProvider: // a is the provider here, so n is a's customer
		return PrefCustomer
	}
	return 0
}

// better implements BGP decision order: higher local-pref, then shorter AS
// path, then lowest next-hop ASN.
func better(a, b *Route) bool {
	if b == nil {
		return a != nil
	}
	if a == nil {
		return false
	}
	if a.LocalPref != b.LocalPref {
		return a.LocalPref > b.LocalPref
	}
	if a.Len() != b.Len() {
		return a.Len() < b.Len()
	}
	return a.NextHop() < b.NextHop()
}

func routesEqual(a, b *Route) bool {
	if a == nil || b == nil {
		return a == b
	}
	if a.LocalPref != b.LocalPref || len(a.Path) != len(b.Path) {
		return false
	}
	for i := range a.Path {
		if a.Path[i] != b.Path[i] {
			return false
		}
	}
	return true
}

func containsASN(path []topo.ASN, a topo.ASN) bool {
	for _, x := range path {
		if x == a {
			return true
		}
	}
	return false
}

// ValleyFree reports whether the AS path respects Gao–Rexford valley
// freedom under the relationship map: once the path goes over a peer or
// down to a customer, it must keep descending. Used by property tests.
func ValleyFree(rel *topo.ASRelationships, path []topo.ASN) bool {
	// Phase 0: climbing (customer→provider). Phase 1: at most one peer
	// step. Phase 2: descending (provider→customer).
	phase := 0
	for i := 0; i+1 < len(path); i++ {
		k, ok := rel.Rel[path[i]][path[i+1]]
		if !ok {
			return false // not adjacent
		}
		switch k {
		case topo.RelCustomer: // step up: path[i] buys from path[i+1]
			if phase != 0 {
				return false
			}
		case topo.RelPeer:
			if phase > 0 {
				return false
			}
			phase = 1
		case topo.RelProvider: // step down
			phase = 2
		}
	}
	return true
}
