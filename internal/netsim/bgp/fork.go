package bgp

import (
	"fmt"

	"sisyphus/internal/netsim/topo"
)

// Fork returns an independent copy of the RIB rebound onto t, which must be
// a topology equivalent to the one the RIB was computed over (typically a
// Clone of it). This is what lets one converged fixed point seed many
// engines.
//
// On a frozen RIB (the artifact store's case) the fork is pointer-cheap:
// converged per-destination tables are immutable, so the fork copies only
// the outer destination map and shares every table, route, and the
// relationship map with the frozen original. A fork that never writes
// routes — the common case, since engines recompute by building fresh
// tables — therefore performs zero route-table copies; a fork that does
// write promotes one destination at a time through MutableLookup.
//
// On an unfrozen RIB the fork is the eager deep copy: the original may
// still be mutated through MutableLookup, so sharing would not be safe.
func (r *RIB) Fork(t *topo.Topology) *RIB {
	if r.frozen {
		best := make(map[topo.ASN]map[topo.ASN]*Route, len(r.best))
		for dest, m := range r.best {
			best[dest] = m
		}
		return &RIB{
			Topo:   t,
			Rel:    r.Rel, // immutable after construction: share
			best:   best,
			policy: r.policy.Clone(),
			pool:   r.pool,
		}
	}
	out := &RIB{
		Topo:   t,
		Rel:    cloneRelationships(r.Rel),
		best:   make(map[topo.ASN]map[topo.ASN]*Route, len(r.best)),
		policy: r.policy.Clone(),
		pool:   r.pool,
	}
	for dest, m := range r.best {
		out.best[dest] = cloneTable(m)
	}
	return out
}

// MutableLookup returns a's route to dest (nil if unreachable) as a pointer
// the caller may mutate. The first call for a destination promotes that
// destination's table to a private deep copy — per-destination copy-on-
// write — so writes through the returned route never reach the frozen
// original, sibling forks, or RIBs derived by incremental recomputation.
// Plain Lookup stays allocation-free and must be treated as read-only.
func (r *RIB) MutableLookup(a, dest topo.ASN) *Route {
	if r.frozen {
		panic(fmt.Sprintf("bgp: MutableLookup(AS%d, AS%d) on frozen RIB (mutate a Fork instead)", a, dest))
	}
	m, ok := r.best[dest]
	if !ok {
		return nil
	}
	if !r.promoted[dest] {
		m = cloneTable(m)
		r.best[dest] = m
		if r.promoted == nil {
			r.promoted = make(map[topo.ASN]bool)
		}
		r.promoted[dest] = true
	}
	return m[a]
}

// cloneTable deep-copies one destination's routing table.
func cloneTable(m map[topo.ASN]*Route) map[topo.ASN]*Route {
	cm := make(map[topo.ASN]*Route, len(m))
	for a, rt := range m {
		if rt == nil {
			cm[a] = nil
			continue
		}
		c := *rt
		c.Path = append([]topo.ASN(nil), rt.Path...)
		cm[a] = &c
	}
	return cm
}

// SizeBytes estimates the RIB's resident size for the artifact store's byte
// bound: a flat per-route cost plus path payloads and map overhead. It is
// an estimate, not an accounting — the LRU only needs relative magnitudes.
func (r *RIB) SizeBytes() int64 {
	const perRoute = 64  // Route struct + map entry
	const perPathHop = 4 // one topo.ASN
	const perDest = 48   // inner map header + outer entry
	var n int64
	for _, m := range r.best {
		n += perDest
		for _, rt := range m {
			n += perRoute
			if rt != nil {
				n += int64(len(rt.Path)) * perPathHop
			}
		}
	}
	return n
}

func cloneRelationships(rel *topo.ASRelationships) *topo.ASRelationships {
	if rel == nil {
		return nil
	}
	out := &topo.ASRelationships{
		Rel:   make(map[topo.ASN]map[topo.ASN]topo.RelKind, len(rel.Rel)),
		Links: make(map[topo.ASN]map[topo.ASN][]topo.LinkID, len(rel.Links)),
	}
	for a, m := range rel.Rel {
		cm := make(map[topo.ASN]topo.RelKind, len(m))
		for b, k := range m {
			cm[b] = k
		}
		out.Rel[a] = cm
	}
	for a, m := range rel.Links {
		cm := make(map[topo.ASN][]topo.LinkID, len(m))
		for b, ids := range m {
			cm[b] = append([]topo.LinkID(nil), ids...)
		}
		out.Links[a] = cm
	}
	return out
}
