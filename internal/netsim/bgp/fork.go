package bgp

import "sisyphus/internal/netsim/topo"

// Fork returns a deep copy of the RIB rebound onto t, which must be a
// topology equivalent to the one the RIB was computed over (typically a
// Clone of it). The route tables, relationship maps, and policy are all
// copied so the caller's engine can recompute incrementally without
// touching the frozen original; the compute pool is a value and carries
// over. This is what lets one converged fixed point seed many engines.
func (r *RIB) Fork(t *topo.Topology) *RIB {
	out := &RIB{
		Topo:   t,
		Rel:    cloneRelationships(r.Rel),
		best:   make(map[topo.ASN]map[topo.ASN]*Route, len(r.best)),
		policy: r.policy.Clone(),
		pool:   r.pool,
	}
	for dest, m := range r.best {
		cm := make(map[topo.ASN]*Route, len(m))
		for a, rt := range m {
			if rt == nil {
				cm[a] = nil
				continue
			}
			c := *rt
			c.Path = append([]topo.ASN(nil), rt.Path...)
			cm[a] = &c
		}
		out.best[dest] = cm
	}
	return out
}

func cloneRelationships(rel *topo.ASRelationships) *topo.ASRelationships {
	if rel == nil {
		return nil
	}
	out := &topo.ASRelationships{
		Rel:   make(map[topo.ASN]map[topo.ASN]topo.RelKind, len(rel.Rel)),
		Links: make(map[topo.ASN]map[topo.ASN][]topo.LinkID, len(rel.Links)),
	}
	for a, m := range rel.Rel {
		cm := make(map[topo.ASN]topo.RelKind, len(m))
		for b, k := range m {
			cm[b] = k
		}
		out.Rel[a] = cm
	}
	for a, m := range rel.Links {
		cm := make(map[topo.ASN][]topo.LinkID, len(m))
		for b, ids := range m {
			cm[b] = append([]topo.LinkID(nil), ids...)
		}
		out.Links[a] = cm
	}
	return out
}
