package bgp

import (
	"context"
	"testing"
	"testing/quick"

	"sisyphus/internal/mathx"
	"sisyphus/internal/netsim/topo"
	"sisyphus/internal/parallel"
)

// trombone builds the paper's motivating scenario: access AS 3741 in
// East London/Johannesburg buys transit from AS 200, which reaches content
// AS 300 only via a European tier1 (AS 100, London): local traffic
// trombones through London. An IXP in Johannesburg can shortcut it.
func trombone(t testing.TB) *topo.Topology {
	b := topo.NewBuilder(nil).
		AddAS(100, "EuroTier1", topo.Transit, "London", "Johannesburg").
		AddAS(200, "ZATransit", topo.Transit, "Johannesburg").
		AddAS(3741, "ZAAccess", topo.Access, "East London", "Johannesburg").
		AddAS(300, "ContentCo", topo.Content, "London", "Johannesburg").
		Connect(200, "Johannesburg", topo.CustomerOf, 100, "Johannesburg").
		Connect(3741, "Johannesburg", topo.CustomerOf, 200, "Johannesburg").
		Connect(300, "London", topo.CustomerOf, 100, "London").
		AddIXP("NAPAfrica-JNB", "Johannesburg", "196.60.8.")
	tp, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return tp
}

func TestRouteSelectionPrefersCustomerThenPeerThenProvider(t *testing.T) {
	// AS 1 can reach dest 4 via customer 2, peer 3, or provider 5.
	b := topo.NewBuilder(nil).
		AddAS(1, "A", topo.Transit, "London").
		AddAS(2, "Cust", topo.Transit, "London").
		AddAS(3, "Peer", topo.Transit, "London").
		AddAS(5, "Prov", topo.Transit, "London").
		AddAS(4, "Dest", topo.Content, "London").
		Connect(2, "London", topo.CustomerOf, 1, "London").
		Connect(1, "London", topo.PeerWith, 3, "London").
		Connect(1, "London", topo.CustomerOf, 5, "London").
		Connect(4, "London", topo.CustomerOf, 2, "London").
		Connect(4, "London", topo.CustomerOf, 3, "London").
		Connect(4, "London", topo.CustomerOf, 5, "London")
	tp, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	rib, err := Compute(context.Background(), parallel.Pool{}, tp, nil)
	if err != nil {
		t.Fatal(err)
	}
	r := rib.Lookup(1, 4)
	if r == nil || r.NextHop() != 2 {
		t.Fatalf("route = %+v, want via customer AS2", r)
	}
	if r.LocalPref != PrefCustomer {
		t.Fatalf("localpref = %d", r.LocalPref)
	}
}

func TestPeerRoutesNotReExported(t *testing.T) {
	// Classic valley: 1 peers with 2, 2 peers with 3. 1 must NOT reach 3
	// through 2 (peer→peer export is forbidden) when no other path exists.
	b := topo.NewBuilder(nil).
		AddAS(1, "A", topo.Transit, "London").
		AddAS(2, "B", topo.Transit, "London").
		AddAS(3, "C", topo.Transit, "London").
		Connect(1, "London", topo.PeerWith, 2, "London").
		Connect(2, "London", topo.PeerWith, 3, "London")
	tp, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	rib, err := Compute(context.Background(), parallel.Pool{}, tp, nil)
	if err != nil {
		t.Fatal(err)
	}
	if r := rib.Lookup(1, 3); r != nil {
		t.Fatalf("valley route leaked: %+v", r)
	}
	// Direct peer is reachable.
	if r := rib.Lookup(1, 2); r == nil {
		t.Fatal("peer unreachable")
	}
}

func TestProviderExportsEverythingToCustomer(t *testing.T) {
	tp := trombone(t)
	rib, err := Compute(context.Background(), parallel.Pool{}, tp, nil)
	if err != nil {
		t.Fatal(err)
	}
	path, err := rib.ASPath(3741, 300)
	if err != nil {
		t.Fatal(err)
	}
	want := []topo.ASN{3741, 200, 100, 300}
	if len(path) != len(want) {
		t.Fatalf("path = %v", path)
	}
	for i := range want {
		if path[i] != want[i] {
			t.Fatalf("path = %v want %v", path, want)
		}
	}
}

func TestIXPJoinShiftsRouteToPeer(t *testing.T) {
	tp := trombone(t)
	if _, err := tp.JoinIXP("NAPAfrica-JNB", 300); err != nil {
		t.Fatal(err)
	}
	if _, err := tp.JoinIXP("NAPAfrica-JNB", 3741); err != nil {
		t.Fatal(err)
	}
	rib, err := Compute(context.Background(), parallel.Pool{}, tp, nil)
	if err != nil {
		t.Fatal(err)
	}
	r := rib.Lookup(3741, 300)
	if r == nil || r.NextHop() != 300 {
		t.Fatalf("after IXP join route = %+v, want direct peer", r)
	}
	if r.LocalPref != PrefPeer {
		t.Fatalf("localpref = %d want peer", r.LocalPref)
	}
}

func TestLocalPrefOverrideFlipsChoice(t *testing.T) {
	tp := trombone(t)
	_, _ = tp.JoinIXP("NAPAfrica-JNB", 300)
	_, _ = tp.JoinIXP("NAPAfrica-JNB", 3741)
	pol := NewPolicy()
	// Depref the IXP peer below the provider: route goes back to transit.
	pol.SetLocalPref(3741, 300, 50)
	rib, err := Compute(context.Background(), parallel.Pool{}, tp, pol)
	if err != nil {
		t.Fatal(err)
	}
	r := rib.Lookup(3741, 300)
	if r == nil || r.NextHop() != 200 {
		t.Fatalf("route = %+v, want via AS200 after depref", r)
	}
}

func TestPoisoningDivertsPath(t *testing.T) {
	// Two transit options: dest 300 reachable from 3741 via 200->100->300.
	// Add an alternative 201 so poisoning 100 forces the other path.
	b := topo.NewBuilder(nil).
		AddAS(100, "T1a", topo.Transit, "London", "Johannesburg").
		AddAS(101, "T1b", topo.Transit, "London", "Johannesburg").
		AddAS(3741, "Access", topo.Access, "Johannesburg").
		AddAS(300, "Dest", topo.Content, "London").
		Connect(3741, "Johannesburg", topo.CustomerOf, 100, "Johannesburg").
		Connect(3741, "Johannesburg", topo.CustomerOf, 101, "Johannesburg").
		Connect(300, "London", topo.CustomerOf, 100, "London").
		Connect(300, "London", topo.CustomerOf, 101, "London")
	tp, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	rib, err := Compute(context.Background(), parallel.Pool{}, tp, nil)
	if err != nil {
		t.Fatal(err)
	}
	before := rib.Lookup(3741, 300)
	if before == nil {
		t.Fatal("unreachable before poisoning")
	}
	usedFirst := before.NextHop()

	pol := NewPolicy()
	pol.Poison[300] = []topo.ASN{usedFirst}
	rib2, err := Compute(context.Background(), parallel.Pool{}, tp, pol)
	if err != nil {
		t.Fatal(err)
	}
	after := rib2.Lookup(3741, 300)
	if after == nil {
		t.Fatal("poisoning killed all reachability")
	}
	if after.NextHop() == usedFirst {
		t.Fatalf("poisoned AS%d still on path %v", usedFirst, after.Path)
	}
	// The poisoned AS itself must have no route (it sees itself in the path).
	if r := rib2.Lookup(usedFirst, 300); r != nil {
		t.Fatalf("poisoned AS still has a route: %+v", r)
	}
}

func TestMaintenanceDenyLink(t *testing.T) {
	tp := trombone(t)
	rel, err := tp.Relationships()
	if err != nil {
		t.Fatal(err)
	}
	link3741 := rel.Links[3741][200][0]
	pol := NewPolicy()
	pol.DenyLink[link3741] = true
	rib, err := Compute(context.Background(), parallel.Pool{}, tp, pol)
	if err != nil {
		t.Fatal(err)
	}
	if r := rib.Lookup(3741, 300); r != nil {
		t.Fatalf("single-homed AS should be cut off during maintenance, got %+v", r)
	}
}

func TestLinkDownRecompute(t *testing.T) {
	tp := trombone(t)
	rel, _ := tp.Relationships()
	id := rel.Links[200][100][0]
	tp.SetLinkUp(id, false)
	rib, err := Compute(context.Background(), parallel.Pool{}, tp, nil)
	if err != nil {
		t.Fatal(err)
	}
	if r := rib.Lookup(3741, 300); r != nil {
		t.Fatalf("route survived dead link: %+v", r)
	}
	tp.SetLinkUp(id, true)
	rib2, _ := Compute(context.Background(), parallel.Pool{}, tp, nil)
	if rib2.Lookup(3741, 300) == nil {
		t.Fatal("route did not return after link restore")
	}
}

func TestForwardExpandsTrombone(t *testing.T) {
	tp := trombone(t)
	rib, err := Compute(context.Background(), parallel.Pool{}, tp, nil)
	if err != nil {
		t.Fatal(err)
	}
	src, _ := tp.FindPoP(3741, "East London")
	dst, _ := tp.FindPoP(300, "Johannesburg")
	p, err := rib.Forward(src, dst)
	if err != nil {
		t.Fatal(err)
	}
	// The path must physically visit London (via AS100) even though both
	// endpoints are in South Africa: propagation far above domestic floor.
	if p.PropagationMs() < 80 {
		t.Fatalf("trombone propagation = %v ms, expected intercontinental", p.PropagationMs())
	}
	if got := p.ASPath; got[0] != 3741 || got[len(got)-1] != 300 {
		t.Fatalf("as path = %v", got)
	}
	// After the IXP join, the same endpoints should be a few ms apart.
	_, _ = tp.JoinIXP("NAPAfrica-JNB", 300)
	_, _ = tp.JoinIXP("NAPAfrica-JNB", 3741)
	rib2, _ := Compute(context.Background(), parallel.Pool{}, tp, nil)
	p2, err := rib2.Forward(src, dst)
	if err != nil {
		t.Fatal(err)
	}
	if p2.PropagationMs() > 15 {
		t.Fatalf("post-IXP propagation = %v ms, want domestic", p2.PropagationMs())
	}
	if p2.PropagationMs() >= p.PropagationMs() {
		t.Fatal("IXP join did not reduce latency")
	}
}

func TestForwardIntraAS(t *testing.T) {
	tp := trombone(t)
	rib, _ := Compute(context.Background(), parallel.Pool{}, tp, nil)
	a, _ := tp.FindPoP(3741, "East London")
	b, _ := tp.FindPoP(3741, "Johannesburg")
	p, err := rib.Forward(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Hops) != 1 || p.Hops[0].Link != nil {
		t.Fatalf("intra-AS path = %+v", p.Hops)
	}
	if len(p.ASPath) != 1 || p.ASPath[0] != 3741 {
		t.Fatalf("as path = %v", p.ASPath)
	}
	// Same PoP: empty path.
	p2, err := rib.Forward(a, a)
	if err != nil {
		t.Fatal(err)
	}
	if len(p2.Hops) != 0 {
		t.Fatalf("self path = %+v", p2.Hops)
	}
}

func TestForwardUnreachable(t *testing.T) {
	b := topo.NewBuilder(nil).
		AddAS(1, "A", topo.Access, "London").
		AddAS(2, "B", topo.Access, "Paris").
		AddAS(3, "C", topo.Transit, "London").
		Connect(1, "London", topo.CustomerOf, 3, "London")
	tp, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	rib, _ := Compute(context.Background(), parallel.Pool{}, tp, nil)
	p1, _ := tp.FindPoP(1, "London")
	p2, _ := tp.FindPoP(2, "Paris")
	if _, err := rib.Forward(p1, p2); err == nil {
		t.Fatal("unreachable destination accepted")
	}
}

func TestNearestPoPPicksClosest(t *testing.T) {
	tp := trombone(t)
	_, _ = tp.JoinIXP("NAPAfrica-JNB", 300)
	_, _ = tp.JoinIXP("NAPAfrica-JNB", 3741)
	rib, _ := Compute(context.Background(), parallel.Pool{}, tp, nil)
	src, _ := tp.FindPoP(3741, "Johannesburg")
	id, err := rib.NearestPoP(src, 300)
	if err != nil {
		t.Fatal(err)
	}
	if tp.PoP(id).City != "Johannesburg" {
		t.Fatalf("nearest content PoP = %s, want Johannesburg", tp.PoP(id).City)
	}
}

func TestGeneratedTopologiesConvergeAndAreValleyFree(t *testing.T) {
	f := func(seed uint64) bool {
		r := mathx.NewRNG(seed)
		tp, err := topo.Generate(r, topo.DefaultGenConfig(), nil)
		if err != nil {
			return false
		}
		rib, err := Compute(context.Background(), parallel.Pool{}, tp, nil)
		if err != nil {
			return false
		}
		rel := rib.Rel
		// Every chosen route must be valley-free and loop-free.
		for _, dst := range tp.ASes() {
			for _, src := range tp.ASes() {
				if src.ASN == dst.ASN {
					continue
				}
				rt := rib.Lookup(src.ASN, dst.ASN)
				if rt == nil {
					// Tier1-rooted hierarchy: everything should be
					// reachable from everything.
					return false
				}
				path := append([]topo.ASN{src.ASN}, rt.Path...)
				seen := make(map[topo.ASN]bool)
				for _, a := range path {
					if seen[a] {
						return false
					}
					seen[a] = true
				}
				if !ValleyFree(rel, path) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 12}); err != nil {
		t.Fatal(err)
	}
}

func TestForwardingMatchesControlPlane(t *testing.T) {
	f := func(seed uint64) bool {
		r := mathx.NewRNG(seed)
		tp, err := topo.Generate(r, topo.DefaultGenConfig(), nil)
		if err != nil {
			return false
		}
		rib, err := Compute(context.Background(), parallel.Pool{}, tp, nil)
		if err != nil {
			return false
		}
		pops := tp.PoPs()
		for trial := 0; trial < 10; trial++ {
			src := pops[r.Intn(len(pops))].ID
			dst := pops[r.Intn(len(pops))].ID
			p, err := rib.Forward(src, dst)
			if err != nil {
				return false
			}
			// Hops must be contiguous and end at dst.
			cur := src
			for _, h := range p.Hops {
				if h.From != cur {
					return false
				}
				cur = h.To
			}
			if cur != dst {
				return false
			}
			// The AS sequence of the hops must equal the control-plane path.
			want := p.ASPath
			var got []topo.ASN
			for _, h := range append([]Hop{{To: src}}, p.Hops...) {
				asn := tp.PoP(h.To).AS
				if len(got) == 0 || got[len(got)-1] != asn {
					got = append(got, asn)
				}
			}
			if len(got) != len(want) {
				return false
			}
			for i := range got {
				if got[i] != want[i] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 8}); err != nil {
		t.Fatal(err)
	}
}

func TestPolicyClone(t *testing.T) {
	p := NewPolicy()
	p.SetLocalPref(1, 2, 50)
	p.Poison[3] = []topo.ASN{4}
	p.DenyLink[7] = true
	c := p.Clone()
	c.SetLocalPref(1, 2, 999)
	c.Poison[3][0] = 99
	c.DenyLink[8] = true
	if p.LocalPref[1][2] != 50 || p.Poison[3][0] != 4 || p.DenyLink[8] {
		t.Fatal("clone mutated original")
	}
	p.ClearLocalPref(1, 2)
	if _, ok := p.LocalPref[1][2]; ok {
		t.Fatal("clear failed")
	}
}

func TestRouteAccessors(t *testing.T) {
	r := &Route{Dest: 5, Path: nil}
	if r.NextHop() != 5 || r.Len() != 0 {
		t.Fatalf("origin route accessors: %v %v", r.NextHop(), r.Len())
	}
	r2 := &Route{Dest: 5, Path: []topo.ASN{2, 5}}
	if r2.NextHop() != 2 || r2.Len() != 2 {
		t.Fatalf("route accessors: %v %v", r2.NextHop(), r2.Len())
	}
}

// TestScaleLargeTopology exercises the routing stack at an order of
// magnitude above the scenario sizes: ~200 ASes. Guarded by -short.
func TestScaleLargeTopology(t *testing.T) {
	if testing.Short() {
		t.Skip("scale test skipped in -short mode")
	}
	r := mathx.NewRNG(99)
	cfg := topo.GenConfig{Tier1: 6, Tier2: 24, Access: 150, Content: 12, MultihomeProb: 0.6, PeerProb: 0.2}
	tp, err := topo.Generate(r, cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	rib, err := Compute(context.Background(), parallel.Pool{}, tp, nil)
	if err != nil {
		t.Fatal(err)
	}
	// Spot-check reachability and valley-freeness on a sample.
	ases := tp.ASes()
	rel := rib.Rel
	for trial := 0; trial < 200; trial++ {
		src := ases[r.Intn(len(ases))].ASN
		dst := ases[r.Intn(len(ases))].ASN
		if src == dst {
			continue
		}
		rt := rib.Lookup(src, dst)
		if rt == nil {
			t.Fatalf("AS%d cannot reach AS%d in a tier1-rooted hierarchy", src, dst)
		}
		path := append([]topo.ASN{src}, rt.Path...)
		if !ValleyFree(rel, path) {
			t.Fatalf("valley in %v", path)
		}
	}
	// Incremental recomputation must agree with full on a sampled failure.
	links := tp.Links()
	failed := links[r.Intn(len(links))].ID
	inc, err := rib.RecomputeAfterLinkFailure(context.Background(), failed)
	if err != nil {
		t.Fatal(err)
	}
	pol := NewPolicy()
	pol.DenyLink[failed] = true
	full, err := Compute(context.Background(), parallel.Pool{}, tp, pol)
	if err != nil {
		t.Fatal(err)
	}
	for trial := 0; trial < 100; trial++ {
		src := ases[r.Intn(len(ases))].ASN
		dst := ases[r.Intn(len(ases))].ASN
		if !routesEqual(inc.Lookup(src, dst), full.Lookup(src, dst)) {
			t.Fatalf("incremental mismatch at AS%d→AS%d", src, dst)
		}
	}
}
