package bgp

import (
	"fmt"
	"sort"

	"sisyphus/internal/netsim/topo"
	"sisyphus/internal/parallel"
)

// Export is the serialized form of a converged RIB: destinations ascending,
// and within each destination the per-AS chosen routes ascending by AS.
// Both levels are slices, not maps, so a deterministic encoder yields
// identical bytes for identical fixed points. The topology, relationship
// map and policy are not serialized — an imported RIB rebinds to a topology
// the caller supplies, exactly like Fork does.
type Export struct {
	Dests []ExportDest
}

// ExportDest is one destination's routing table.
type ExportDest struct {
	Dest   topo.ASN
	Routes []ExportRoute
}

// ExportRoute is one AS's chosen route. Unreachable marks an AS whose table
// entry exists but holds no route (a fixed point can converge to "withdrawn")
// so import reproduces the table byte-for-byte rather than dropping entries.
type ExportRoute struct {
	AS          topo.ASN
	Unreachable bool
	Path        []topo.ASN
	LocalPref   int
}

// Export snapshots the RIB into its serialized form (read-only; safe on
// frozen RIBs).
func (r *RIB) Export() *Export {
	e := &Export{}
	dests := make([]topo.ASN, 0, len(r.best))
	for d := range r.best {
		dests = append(dests, d)
	}
	sort.Slice(dests, func(i, j int) bool { return dests[i] < dests[j] })
	for _, d := range dests {
		m := r.best[d]
		ases := make([]topo.ASN, 0, len(m))
		for a := range m {
			ases = append(ases, a)
		}
		sort.Slice(ases, func(i, j int) bool { return ases[i] < ases[j] })
		ed := ExportDest{Dest: d}
		for _, a := range ases {
			rt := m[a]
			er := ExportRoute{AS: a}
			if rt == nil {
				er.Unreachable = true
			} else {
				er.Path = append([]topo.ASN(nil), rt.Path...)
				er.LocalPref = rt.LocalPref
			}
			ed.Routes = append(ed.Routes, er)
		}
		e.Dests = append(e.Dests, ed)
	}
	return e
}

// Import reconstructs a RIB from its serialized form, rebinding it onto t —
// which must be a topology equivalent to the one the fixed point was
// computed over — with the default (empty) policy and the caller's pool for
// incremental recomputation, mirroring what Compute produces for the same
// inputs. Duplicate destinations or per-destination ASes are rejected, never
// panicked on; the result is unfrozen, exactly like a fresh Compute.
func Import(e *Export, t *topo.Topology, pool parallel.Pool) (*RIB, error) {
	if e == nil {
		return nil, fmt.Errorf("bgp: import: nil export")
	}
	if t == nil {
		return nil, fmt.Errorf("bgp: import: nil topology")
	}
	rel, err := t.Relationships()
	if err != nil {
		return nil, fmt.Errorf("bgp: import: %w", err)
	}
	r := &RIB{
		Topo:   t,
		Rel:    rel,
		best:   make(map[topo.ASN]map[topo.ASN]*Route, len(e.Dests)),
		policy: NewPolicy(),
		pool:   pool,
	}
	for _, ed := range e.Dests {
		if _, ok := r.best[ed.Dest]; ok {
			return nil, fmt.Errorf("bgp: import: duplicate destination AS%d", ed.Dest)
		}
		m := make(map[topo.ASN]*Route, len(ed.Routes))
		for _, er := range ed.Routes {
			if _, ok := m[er.AS]; ok {
				return nil, fmt.Errorf("bgp: import: destination AS%d lists AS%d twice", ed.Dest, er.AS)
			}
			if er.Unreachable {
				m[er.AS] = nil
				continue
			}
			m[er.AS] = &Route{
				Dest:      ed.Dest,
				Path:      append([]topo.ASN(nil), er.Path...),
				LocalPref: er.LocalPref,
			}
		}
		r.best[ed.Dest] = m
	}
	return r, nil
}
