package geo

import (
	"fmt"
	"math"
	"testing"
	"testing/quick"
)

func TestDistanceKnownPairs(t *testing.T) {
	r := DefaultRegistry()
	jnb := r.MustGet("Johannesburg")
	cpt := r.MustGet("Cape Town")
	ldn := r.MustGet("London")

	// Johannesburg–Cape Town is ≈ 1260 km great circle.
	if d := DistanceKm(jnb, cpt); math.Abs(d-1260) > 60 {
		t.Fatalf("JNB-CPT = %v km", d)
	}
	// Johannesburg–London is ≈ 9070 km.
	if d := DistanceKm(jnb, ldn); math.Abs(d-9070) > 200 {
		t.Fatalf("JNB-LDN = %v km", d)
	}
}

func TestDistanceProperties(t *testing.T) {
	r := DefaultRegistry()
	names := r.Names()
	f := func(i, j uint8) bool {
		a := r.MustGet(names[int(i)%len(names)])
		b := r.MustGet(names[int(j)%len(names)])
		dab := DistanceKm(a, b)
		dba := DistanceKm(b, a)
		if math.Abs(dab-dba) > 1e-9 {
			return false // symmetry
		}
		if a.Name == b.Name {
			return dab < 1e-9
		}
		return dab > 0 && dab < 2*math.Pi*earthRadiusKm
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestTriangleInequality(t *testing.T) {
	r := DefaultRegistry()
	names := r.Names()
	f := func(i, j, k uint8) bool {
		a := r.MustGet(names[int(i)%len(names)])
		b := r.MustGet(names[int(j)%len(names)])
		c := r.MustGet(names[int(k)%len(names)])
		return DistanceKm(a, c) <= DistanceKm(a, b)+DistanceKm(b, c)+1e-6
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPropagationDelayMagnitudes(t *testing.T) {
	r := DefaultRegistry()
	jnb := r.MustGet("Johannesburg")
	cpt := r.MustGet("Cape Town")
	ldn := r.MustGet("London")

	// JNB-CPT one-way should be single-digit ms (~8 ms with inefficiency).
	if d := PropagationMs(jnb, cpt); d < 4 || d > 12 {
		t.Fatalf("JNB-CPT propagation = %v ms", d)
	}
	// The trombone: JNB-London one-way ≈ 58 ms, i.e. >100 ms RTT — this is
	// the latency penalty the IXP is supposed to remove.
	if d := PropagationMs(jnb, ldn); d < 40 || d > 80 {
		t.Fatalf("JNB-LDN propagation = %v ms", d)
	}
}

func TestRegistryLookup(t *testing.T) {
	r := DefaultRegistry()
	if _, err := r.Get("Atlantis"); err == nil {
		t.Fatal("unknown city accepted")
	}
	c, err := r.Get("Durban")
	if err != nil || c.Country != "ZA" {
		t.Fatalf("Durban lookup: %v %v", c, err)
	}
	// Add replaces.
	r.Add(City{Name: "Durban", Country: "XX"})
	if got := r.MustGet("Durban").Country; got != "XX" {
		t.Fatalf("replace failed: %v", got)
	}
}

func TestMustGetPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewRegistry().MustGet("nowhere")
}

func TestNamesSorted(t *testing.T) {
	names := DefaultRegistry().Names()
	for i := 1; i < len(names); i++ {
		if names[i-1] >= names[i] {
			t.Fatalf("names not sorted at %d: %v", i, names)
		}
	}
	if len(names) < 15 {
		t.Fatalf("expected a rich default registry, got %d cities", len(names))
	}
}

func TestSyntheticRegistryDeterministicAndBounded(t *testing.T) {
	a, b := SyntheticRegistry(24), SyntheticRegistry(24)
	if len(a.Names()) != 24 {
		t.Fatalf("city count = %d", len(a.Names()))
	}
	for i, name := range a.Names() {
		want := fmt.Sprintf("City-%03d", i)
		if name != want {
			t.Fatalf("name[%d] = %q, want %q (dense, sorted)", i, name, want)
		}
		ca, cb := a.MustGet(name), b.MustGet(name)
		if ca != cb {
			t.Fatalf("city %q differs across equal-n registries: %+v vs %+v", name, ca, cb)
		}
		if ca.Lat < -60 || ca.Lat > 60 {
			t.Fatalf("city %q latitude %f outside ±60", name, ca.Lat)
		}
		if ca.Lon <= -180 || ca.Lon > 180 {
			t.Fatalf("city %q longitude %f outside (-180, 180]", name, ca.Lon)
		}
		if ca.UTCOffset < -12 || ca.UTCOffset > 12 {
			t.Fatalf("city %q UTC offset %f out of range", name, ca.UTCOffset)
		}
	}
	// Distinct sizes give distinct layouts: the registry is a pure function
	// of n, so n belongs in the world id (via GenConfig.Cities).
	c := SyntheticRegistry(25)
	if a.MustGet("City-001") == c.MustGet("City-001") {
		t.Fatal("different n produced identical city placement")
	}
	// Pairwise distances are nondegenerate: no two cities collapse onto the
	// same point (zero distance would make propagation delays vanish).
	names := a.Names()
	for i := 0; i < len(names); i++ {
		for j := i + 1; j < len(names); j++ {
			if DistanceKm(a.MustGet(names[i]), a.MustGet(names[j])) < 1 {
				t.Fatalf("cities %s and %s coincide", names[i], names[j])
			}
		}
	}
}
