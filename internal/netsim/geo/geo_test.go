package geo

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDistanceKnownPairs(t *testing.T) {
	r := DefaultRegistry()
	jnb := r.MustGet("Johannesburg")
	cpt := r.MustGet("Cape Town")
	ldn := r.MustGet("London")

	// Johannesburg–Cape Town is ≈ 1260 km great circle.
	if d := DistanceKm(jnb, cpt); math.Abs(d-1260) > 60 {
		t.Fatalf("JNB-CPT = %v km", d)
	}
	// Johannesburg–London is ≈ 9070 km.
	if d := DistanceKm(jnb, ldn); math.Abs(d-9070) > 200 {
		t.Fatalf("JNB-LDN = %v km", d)
	}
}

func TestDistanceProperties(t *testing.T) {
	r := DefaultRegistry()
	names := r.Names()
	f := func(i, j uint8) bool {
		a := r.MustGet(names[int(i)%len(names)])
		b := r.MustGet(names[int(j)%len(names)])
		dab := DistanceKm(a, b)
		dba := DistanceKm(b, a)
		if math.Abs(dab-dba) > 1e-9 {
			return false // symmetry
		}
		if a.Name == b.Name {
			return dab < 1e-9
		}
		return dab > 0 && dab < 2*math.Pi*earthRadiusKm
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestTriangleInequality(t *testing.T) {
	r := DefaultRegistry()
	names := r.Names()
	f := func(i, j, k uint8) bool {
		a := r.MustGet(names[int(i)%len(names)])
		b := r.MustGet(names[int(j)%len(names)])
		c := r.MustGet(names[int(k)%len(names)])
		return DistanceKm(a, c) <= DistanceKm(a, b)+DistanceKm(b, c)+1e-6
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPropagationDelayMagnitudes(t *testing.T) {
	r := DefaultRegistry()
	jnb := r.MustGet("Johannesburg")
	cpt := r.MustGet("Cape Town")
	ldn := r.MustGet("London")

	// JNB-CPT one-way should be single-digit ms (~8 ms with inefficiency).
	if d := PropagationMs(jnb, cpt); d < 4 || d > 12 {
		t.Fatalf("JNB-CPT propagation = %v ms", d)
	}
	// The trombone: JNB-London one-way ≈ 58 ms, i.e. >100 ms RTT — this is
	// the latency penalty the IXP is supposed to remove.
	if d := PropagationMs(jnb, ldn); d < 40 || d > 80 {
		t.Fatalf("JNB-LDN propagation = %v ms", d)
	}
}

func TestRegistryLookup(t *testing.T) {
	r := DefaultRegistry()
	if _, err := r.Get("Atlantis"); err == nil {
		t.Fatal("unknown city accepted")
	}
	c, err := r.Get("Durban")
	if err != nil || c.Country != "ZA" {
		t.Fatalf("Durban lookup: %v %v", c, err)
	}
	// Add replaces.
	r.Add(City{Name: "Durban", Country: "XX"})
	if got := r.MustGet("Durban").Country; got != "XX" {
		t.Fatalf("replace failed: %v", got)
	}
}

func TestMustGetPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewRegistry().MustGet("nowhere")
}

func TestNamesSorted(t *testing.T) {
	names := DefaultRegistry().Names()
	for i := 1; i < len(names); i++ {
		if names[i-1] >= names[i] {
			t.Fatalf("names not sorted at %d: %v", i, names)
		}
	}
	if len(names) < 15 {
		t.Fatalf("expected a rich default registry, got %d cities", len(names))
	}
}
