// Package geo provides the geographic substrate of the simulator: cities
// with coordinates, great-circle distances, and speed-of-light-in-fiber
// propagation delays. Latency floors in every simulated path come from
// here, which is what makes "tromboning" through a distant transit hub (the
// phenomenon behind the paper's IXP case study) physically meaningful.
package geo

import (
	"fmt"
	"math"
	"sort"
)

// City is a named location.
type City struct {
	Name    string
	Country string
	Lat     float64 // degrees
	Lon     float64 // degrees
	// UTCOffset shifts the diurnal traffic curve (hours).
	UTCOffset float64
}

// Registry maps city names to coordinates. The zero value is unusable; use
// NewRegistry or DefaultRegistry.
type Registry struct {
	cities map[string]City
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{cities: make(map[string]City)}
}

// Add registers a city, replacing any previous entry with the same name.
func (r *Registry) Add(c City) { r.cities[c.Name] = c }

// Get returns the named city.
func (r *Registry) Get(name string) (City, error) {
	c, ok := r.cities[name]
	if !ok {
		return City{}, fmt.Errorf("geo: unknown city %q", name)
	}
	return c, nil
}

// MustGet is Get that panics on unknown cities; for static scenario code.
func (r *Registry) MustGet(name string) City {
	c, err := r.Get(name)
	if err != nil {
		panic(err)
	}
	return c
}

// Names returns all registered city names, sorted.
func (r *Registry) Names() []string {
	out := make([]string, 0, len(r.cities))
	for n := range r.cities {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Cities returns every registered city sorted by name — the canonical
// serialized form of a registry, used by the artifact disk tier's codecs.
func (r *Registry) Cities() []City {
	out := make([]City, 0, len(r.cities))
	for _, n := range r.Names() {
		out = append(out, r.cities[n])
	}
	return out
}

// FromCities rebuilds a registry from a serialized city list. Later entries
// with the same name win, matching repeated Add calls.
func FromCities(cs []City) *Registry {
	r := NewRegistry()
	for _, c := range cs {
		r.Add(c)
	}
	return r
}

// earthRadiusKm is the mean Earth radius.
const earthRadiusKm = 6371.0

// DistanceKm returns the great-circle distance between two cities using the
// haversine formula.
func DistanceKm(a, b City) float64 {
	lat1 := a.Lat * math.Pi / 180
	lat2 := b.Lat * math.Pi / 180
	dLat := (b.Lat - a.Lat) * math.Pi / 180
	dLon := (b.Lon - a.Lon) * math.Pi / 180
	h := math.Sin(dLat/2)*math.Sin(dLat/2) +
		math.Cos(lat1)*math.Cos(lat2)*math.Sin(dLon/2)*math.Sin(dLon/2)
	return 2 * earthRadiusKm * math.Asin(math.Min(1, math.Sqrt(h)))
}

// fiberKmPerMs is how far light travels in fibre per millisecond
// (c ≈ 299,792 km/s; refractive index ≈ 1.468 ⇒ ≈ 204 km/ms). Real paths
// are not great circles, so PropagationMs applies a route-inefficiency
// factor of 1.3 on top.
const fiberKmPerMs = 204.19

// routeInefficiency inflates great-circle distance to account for real
// fibre routing detours.
const routeInefficiency = 1.3

// PropagationMs returns the one-way propagation delay between two cities.
func PropagationMs(a, b City) float64 {
	return DistanceKm(a, b) * routeInefficiency / fiberKmPerMs
}

// SyntheticRegistry returns n deterministic synthetic cities ("City-000"…)
// spread over the globe on a Fibonacci sphere, so generated internets can
// be arbitrarily larger than the default city set while every pairwise
// distance — and therefore every propagation delay — is a pure function of
// n and the index. No randomness: equal n gives equal registries, which the
// content-addressed gen/<cfghash> world ids depend on. Latitudes are damped
// to ±60° so no city sits on a pole, and UTC offsets follow longitude.
func SyntheticRegistry(n int) *Registry {
	r := NewRegistry()
	// Golden angle in degrees; successive points are maximally spread.
	const goldenAngle = 137.50776405003785
	for i := 0; i < n; i++ {
		frac := (float64(i) + 0.5) / float64(n)
		lat := (math.Asin(2*frac-1) * 180 / math.Pi) * (60.0 / 90.0)
		lon := math.Mod(float64(i)*goldenAngle, 360)
		if lon > 180 {
			lon -= 360
		}
		r.Add(City{
			Name:      fmt.Sprintf("City-%03d", i),
			Country:   "XX",
			Lat:       lat,
			Lon:       lon,
			UTCOffset: math.Round(lon / 15),
		})
	}
	return r
}

// DefaultRegistry returns the city set used by the built-in scenarios:
// the South African metros from Table 1, the European transit hubs that
// South African traffic historically tromboned through, and a few extras
// for synthetic topologies.
func DefaultRegistry() *Registry {
	r := NewRegistry()
	for _, c := range []City{
		// South Africa (Table 1 locations).
		{Name: "Johannesburg", Country: "ZA", Lat: -26.2041, Lon: 28.0473, UTCOffset: 2},
		{Name: "Cape Town", Country: "ZA", Lat: -33.9249, Lon: 18.4241, UTCOffset: 2},
		{Name: "Durban", Country: "ZA", Lat: -29.8587, Lon: 31.0218, UTCOffset: 2},
		{Name: "East London", Country: "ZA", Lat: -33.0292, Lon: 27.8546, UTCOffset: 2},
		{Name: "Polokwane", Country: "ZA", Lat: -23.9045, Lon: 29.4688, UTCOffset: 2},
		{Name: "Edenvale", Country: "ZA", Lat: -26.1407, Lon: 28.1551, UTCOffset: 2},
		{Name: "eMuziwezinto", Country: "ZA", Lat: -30.3650, Lon: 30.6650, UTCOffset: 2},
		{Name: "Pretoria", Country: "ZA", Lat: -25.7479, Lon: 28.2293, UTCOffset: 2},
		{Name: "Bloemfontein", Country: "ZA", Lat: -29.0852, Lon: 26.1596, UTCOffset: 2},
		// European transit/trombone hubs.
		{Name: "London", Country: "GB", Lat: 51.5074, Lon: -0.1278, UTCOffset: 0},
		{Name: "Amsterdam", Country: "NL", Lat: 52.3676, Lon: 4.9041, UTCOffset: 1},
		{Name: "Frankfurt", Country: "DE", Lat: 50.1109, Lon: 8.6821, UTCOffset: 1},
		{Name: "Paris", Country: "FR", Lat: 48.8566, Lon: 2.3522, UTCOffset: 1},
		{Name: "Marseille", Country: "FR", Lat: 43.2965, Lon: 5.3698, UTCOffset: 1},
		{Name: "Lisbon", Country: "PT", Lat: 38.7223, Lon: -9.1393, UTCOffset: 0},
		// Other anchors for synthetic topologies.
		{Name: "New York", Country: "US", Lat: 40.7128, Lon: -74.0060, UTCOffset: -5},
		{Name: "Singapore", Country: "SG", Lat: 1.3521, Lon: 103.8198, UTCOffset: 8},
		{Name: "Nairobi", Country: "KE", Lat: -1.2921, Lon: 36.8219, UTCOffset: 3},
		{Name: "Lagos", Country: "NG", Lat: 6.5244, Lon: 3.3792, UTCOffset: 1},
	} {
		r.Add(c)
	}
	return r
}
