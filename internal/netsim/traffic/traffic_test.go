package traffic

import (
	"math"
	"testing"

	"sisyphus/internal/netsim/topo"
)

func testTopo(t *testing.T) *topo.Topology {
	t.Helper()
	tp, err := topo.NewBuilder(nil).
		AddAS(1, "A", topo.Access, "Johannesburg").
		AddAS(2, "B", topo.Transit, "Johannesburg").
		Connect(1, "Johannesburg", topo.CustomerOf, 2, "Johannesburg", topo.WithBaseUtil(0.5)).
		Build()
	if err != nil {
		t.Fatal(err)
	}
	return tp
}

func TestDiurnalShape(t *testing.T) {
	// Peak at 20:00 local, trough at 08:00 local.
	peak := Diurnal(20, 0)
	trough := Diurnal(8, 0)
	if math.Abs(peak-1.45) > 1e-9 {
		t.Fatalf("peak = %v", peak)
	}
	if math.Abs(trough-0.55) > 1e-9 {
		t.Fatalf("trough = %v", trough)
	}
	// Timezone shifting: 18:00 UTC at offset +2 is 20:00 local.
	if got := Diurnal(18, 2); math.Abs(got-peak) > 1e-9 {
		t.Fatalf("tz shift = %v want %v", got, peak)
	}
	// Periodicity.
	if math.Abs(Diurnal(3, 0)-Diurnal(27, 0)) > 1e-9 {
		t.Fatal("not 24h periodic")
	}
	// Negative local hours handled.
	if v := Diurnal(1, -5); v <= 0 {
		t.Fatalf("negative local hour = %v", v)
	}
}

func TestUtilizationDeterministicPerSeed(t *testing.T) {
	tp := testTopo(t)
	m1 := NewModel(tp, 42)
	m2 := NewModel(tp, 42)
	m3 := NewModel(tp, 43)
	var diff bool
	for step := 0; step < 50; step++ {
		h := float64(step)
		u1 := m1.Utilization(0, h, step)
		u2 := m2.Utilization(0, h, step)
		if u1 != u2 {
			t.Fatal("same seed diverged")
		}
		if u1 != m3.Utilization(0, h, step) {
			diff = true
		}
	}
	if !diff {
		t.Fatal("different seeds never diverged")
	}
}

func TestUtilizationBounds(t *testing.T) {
	tp := testTopo(t)
	m := NewModel(tp, 7)
	m.AddFlashCrowd(FlashCrowd{Link: 0, StartHour: 10, Hours: 4, Magnitude: 3})
	for step := 0; step < 100; step++ {
		u := m.Utilization(0, float64(step)*0.25, step)
		if u < 0 || u > 0.985 {
			t.Fatalf("util out of bounds: %v", u)
		}
	}
}

func TestFlashCrowdRampsAndEnds(t *testing.T) {
	f := FlashCrowd{Link: 0, StartHour: 10, Hours: 4, Magnitude: 0.4}
	if f.activeFactor(9.9) != 0 {
		t.Fatal("active before start")
	}
	if f.activeFactor(14.1) != 0 {
		t.Fatal("active after end")
	}
	if got := f.activeFactor(12); math.Abs(got-0.4) > 1e-9 {
		t.Fatalf("plateau = %v", got)
	}
	if got := f.activeFactor(10.5); got <= 0 || got >= 0.4 {
		t.Fatalf("ramp-up = %v", got)
	}
	if got := f.activeFactor(13.5); got <= 0 || got >= 0.4 {
		t.Fatalf("ramp-down = %v", got)
	}
}

func TestLoadShiftApplies(t *testing.T) {
	tp := testTopo(t)
	base := NewModel(tp, 5)
	shifted := NewModel(tp, 5)
	shifted.AddLoadShift(0, 24, -0.2)
	// Before hour 24: identical. After: shifted is lower.
	uBefore1 := base.Utilization(0, 10, 0)
	uBefore2 := shifted.Utilization(0, 10, 0)
	if uBefore1 != uBefore2 {
		t.Fatal("shift applied too early")
	}
	uAfter1 := base.Utilization(0, 30, 1)
	uAfter2 := shifted.Utilization(0, 30, 1)
	if !(uAfter2 < uAfter1) {
		t.Fatalf("shift not applied: %v vs %v", uAfter2, uAfter1)
	}
}

func TestNoiseSharedAcrossRunsPerLink(t *testing.T) {
	// Counterfactual property: a model over the same topology and seed
	// yields identical noise per link even if OTHER links are queried in a
	// different order.
	tp, err := topo.NewBuilder(nil).
		AddAS(1, "A", topo.Access, "Johannesburg").
		AddAS(2, "B", topo.Transit, "Johannesburg").
		AddAS(3, "C", topo.Transit, "Johannesburg").
		Connect(1, "Johannesburg", topo.CustomerOf, 2, "Johannesburg", topo.WithBaseUtil(0.4)).
		Connect(1, "Johannesburg", topo.CustomerOf, 3, "Johannesburg", topo.WithBaseUtil(0.4)).
		Build()
	if err != nil {
		t.Fatal(err)
	}
	m1 := NewModel(tp, 99)
	m2 := NewModel(tp, 99)
	// m1 queries link 1 first; m2 queries link 0 first.
	_ = m1.Utilization(1, 0, 0)
	a1 := m1.Utilization(0, 0, 0)
	a2 := m2.Utilization(0, 0, 0)
	if a1 != a2 {
		t.Fatal("per-link noise depends on query order")
	}
}

func TestQueueingDelayMonotone(t *testing.T) {
	prev := -1.0
	for u := 0.0; u < 0.99; u += 0.05 {
		d := QueueingDelayMs(u, 0.3)
		if d < prev {
			t.Fatalf("queueing delay not monotone at %v", u)
		}
		prev = d
	}
	if QueueingDelayMs(0, 0.3) != 0 {
		t.Fatal("idle link should add no queueing")
	}
	if QueueingDelayMs(1.5, 0.3) <= QueueingDelayMs(0.9, 0.3) {
		t.Fatal("saturated delay should be large but finite")
	}
	if QueueingDelayMs(-1, 0.3) != 0 {
		t.Fatal("negative util should clamp")
	}
}

func TestLossRate(t *testing.T) {
	if LossRate(0.5) != 0 {
		t.Fatal("loss below threshold")
	}
	if got := LossRate(0.95); math.Abs(got-0.025) > 1e-9 {
		t.Fatalf("loss(0.95) = %v", got)
	}
	if got := LossRate(2); got != 0.05 {
		t.Fatalf("loss cap = %v", got)
	}
}
