// Package traffic models background load: diurnal demand curves, smooth
// stochastic variation, and flash crowds. Link utilization produced here is
// the simulator's congestion variable C — the confounder of the paper's
// running example, since it both raises queueing latency (C → L) and
// triggers load-adaptive egress switching (C → R).
package traffic

import (
	"math"

	"sisyphus/internal/mathx"
	"sisyphus/internal/netsim/topo"
)

// Diurnal returns the demand multiplier at the given UTC hour for a city
// with the given UTC offset. The curve peaks around 20:00 local (evening
// streaming) and bottoms around 04:00 local, ranging over [0.55, 1.45].
func Diurnal(utcHour, utcOffset float64) float64 {
	local := math.Mod(utcHour+utcOffset, 24)
	if local < 0 {
		local += 24
	}
	// Peak at 20h: cos((local-20)/24·2π) = 1 at local = 20.
	return 1 + 0.45*math.Cos((local-20)/24*2*math.Pi)
}

// FlashCrowd is a transient demand surge on one link.
type FlashCrowd struct {
	Link      topo.LinkID
	StartHour float64
	Hours     float64
	// Magnitude adds to utilization at the peak; the surge ramps linearly
	// up over the first quarter and down over the last quarter.
	Magnitude float64
}

// activeFactor returns the surge contribution at time t.
func (f FlashCrowd) activeFactor(t float64) float64 {
	if t < f.StartHour || t > f.StartHour+f.Hours {
		return 0
	}
	pos := (t - f.StartHour) / f.Hours
	switch {
	case pos < 0.25:
		return f.Magnitude * pos / 0.25
	case pos > 0.75:
		return f.Magnitude * (1 - pos) / 0.25
	default:
		return f.Magnitude
	}
}

// Model computes per-link utilization over time. Each link carries an AR(1)
// noise process whose RNG is derived from the model seed and the link ID, so
// two runs with the same seed produce identical noise for links they share —
// the property counterfactual replay relies on.
type Model struct {
	topo  *topo.Topology
	seed  uint64
	noise map[topo.LinkID]*ar1
	flash []FlashCrowd
	// ShiftedLoad adds a permanent utilization delta per link from a given
	// hour (e.g. traffic moving onto a new IXP link after a join).
	shifts map[topo.LinkID][]loadShift
}

type loadShift struct {
	fromHour float64
	delta    float64
}

type ar1 struct {
	rng   *mathx.RNG
	state float64
	// phi is persistence, sigma the innovation scale.
	phi, sigma float64
	lastStep   int
}

// NewModel returns a utilization model for the topology.
func NewModel(t *topo.Topology, seed uint64) *Model {
	return &Model{
		topo:   t,
		seed:   seed,
		noise:  make(map[topo.LinkID]*ar1),
		shifts: make(map[topo.LinkID][]loadShift),
	}
}

// AddFlashCrowd schedules a demand surge.
func (m *Model) AddFlashCrowd(f FlashCrowd) { m.flash = append(m.flash, f) }

// AddLoadShift permanently changes a link's baseline utilization from the
// given hour onward (positive or negative).
func (m *Model) AddLoadShift(id topo.LinkID, fromHour, delta float64) {
	m.shifts[id] = append(m.shifts[id], loadShift{fromHour, delta})
}

func (m *Model) noiseFor(id topo.LinkID) *ar1 {
	n, ok := m.noise[id]
	if !ok {
		n = &ar1{
			rng:      mathx.NewRNG(m.seed ^ (uint64(id)+1)*0x9e3779b97f4a7c15),
			phi:      0.9,
			sigma:    0.02,
			lastStep: -1,
		}
		m.noise[id] = n
	}
	return n
}

// Utilization returns the link's utilization at the given UTC hour, for the
// given integer step index (noise advances once per step). The result is
// clamped to [0, 0.985] so queueing delay stays finite.
func (m *Model) Utilization(id topo.LinkID, utcHour float64, step int) float64 {
	l := m.topo.Link(id)
	cityA := m.topo.Registry.MustGet(m.topo.PoP(l.A).City)
	base := l.BaseUtil * Diurnal(utcHour, cityA.UTCOffset)

	n := m.noiseFor(id)
	for n.lastStep < step {
		n.state = n.phi*n.state + n.rng.Normal(0, n.sigma)
		n.lastStep++
	}
	u := base + n.state
	for _, f := range m.flash {
		if f.Link == id {
			u += f.activeFactor(utcHour)
		}
	}
	for _, s := range m.shifts[id] {
		if utcHour >= s.fromHour {
			u += s.delta
		}
	}
	if u < 0 {
		return 0
	}
	if u > 0.985 {
		return 0.985
	}
	return u
}

// QueueingDelayMs converts utilization into the mean queueing delay added
// by a link, with an M/M/1-flavoured ρ/(1−ρ) blow-up scaled by scaleMs.
func QueueingDelayMs(util, scaleMs float64) float64 {
	if util >= 1 {
		util = 0.999
	}
	if util < 0 {
		util = 0
	}
	return scaleMs * util / (1 - util)
}

// LossRate maps utilization to packet loss: zero below 0.9, rising linearly
// to 5% at saturation.
func LossRate(util float64) float64 {
	if util <= 0.9 {
		return 0
	}
	frac := (util - 0.9) / 0.1
	if frac > 1 {
		frac = 1
	}
	return 0.05 * frac
}
