package engine

import (
	"testing"
	"testing/quick"

	"sisyphus/internal/mathx"
	"sisyphus/internal/netsim/topo"
)

// TestPerfInvariants checks physical sanity of every performance answer on
// random generated topologies: RTT at least twice the path propagation,
// loss a probability, throughput non-negative and bounded by the bottleneck
// capacity, and MaxUtil within the traffic model's clamp.
func TestPerfInvariants(t *testing.T) {
	f := func(seed uint64) bool {
		r := mathx.NewRNG(seed)
		tp, err := topo.Generate(r, topo.DefaultGenConfig(), nil)
		if err != nil {
			return false
		}
		e := New(tp, seed, Config{})
		if err := e.RunUntil(5); err != nil {
			return false
		}
		pops := tp.PoPs()
		for trial := 0; trial < 12; trial++ {
			src := pops[r.Intn(len(pops))].ID
			dst := pops[r.Intn(len(pops))].ID
			perf, err := e.Perf(src, dst)
			if err != nil {
				return false // hierarchy guarantees reachability
			}
			if perf.RTTms < 2*perf.Path.PropagationMs()-1e-9 {
				return false
			}
			if perf.LossRate < 0 || perf.LossRate > 1 {
				return false
			}
			if len(perf.Path.Hops) > 0 && src != dst {
				if perf.ThroughputMbps < 0 {
					return false
				}
			}
			if perf.MaxUtil < 0 || perf.MaxUtil > 0.985+1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 10}); err != nil {
		t.Fatal(err)
	}
}

// TestFamilyPlanesIndependentPolicies verifies that v4 overrides never leak
// into v6 routes and vice versa on random topologies.
func TestFamilyPlanesIndependentPolicies(t *testing.T) {
	r := mathx.NewRNG(7)
	tp, err := topo.Generate(r, topo.DefaultGenConfig(), nil)
	if err != nil {
		t.Fatal(err)
	}
	e := New(tp, 7, Config{})
	// Find a multihomed access AS.
	rel, err := tp.Relationships()
	if err != nil {
		t.Fatal(err)
	}
	var asn topo.ASN
	var providers []topo.ASN
	for _, as := range tp.ASes() {
		if as.Type != topo.Access {
			continue
		}
		providers = providers[:0]
		for n, k := range rel.Rel[as.ASN] {
			if k == topo.RelCustomer {
				providers = append(providers, n)
			}
		}
		if len(providers) >= 2 {
			asn = as.ASN
			break
		}
	}
	if asn == 0 {
		t.Skip("no multihomed access AS in this topology")
	}
	// Depref one provider on v4 only.
	e.Policy.SetLocalPref(asn, providers[0], 10)
	e.MarkDirty()
	rib4, err := e.RIBFamily(V4)
	if err != nil {
		t.Fatal(err)
	}
	rib6, err := e.RIBFamily(V6)
	if err != nil {
		t.Fatal(err)
	}
	// v6 must still be willing to use providers[0] somewhere v4 is not.
	diverged := false
	for _, dst := range tp.ASes() {
		r4 := rib4.Lookup(asn, dst.ASN)
		r6 := rib6.Lookup(asn, dst.ASN)
		if r4 == nil || r6 == nil {
			continue
		}
		if r4.NextHop() != r6.NextHop() {
			diverged = true
			break
		}
	}
	if !diverged {
		t.Fatal("family planes never diverged despite a v4-only override")
	}
}

// TestEngineReplayAcrossFamilies: dual-stack state must not break the
// deterministic replay contract.
func TestEngineReplayAcrossFamilies(t *testing.T) {
	run := func() []float64 {
		r := mathx.NewRNG(3)
		tp, err := topo.Generate(r, topo.DefaultGenConfig(), nil)
		if err != nil {
			t.Fatal(err)
		}
		e := New(tp, 3, Config{})
		pops := tp.PoPs()
		var out []float64
		for i := 0; i < 20; i++ {
			if err := e.Step(); err != nil {
				t.Fatal(err)
			}
			fam := V4
			if i%2 == 1 {
				fam = V6
			}
			perf, err := e.PerfFamily(pops[0].ID, pops[len(pops)-1].ID, fam)
			if err != nil {
				continue
			}
			out = append(out, perf.RTTms)
		}
		return out
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatal("replay lengths differ")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("replay diverged at %d", i)
		}
	}
}
