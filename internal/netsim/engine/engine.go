// Package engine drives the simulated Internet through time. It owns the
// clock, fires scheduled events (IXP joins, link failures, maintenance
// windows, policy changes), recomputes routing when the control plane is
// dirtied, applies load-adaptive egress switching (the EdgeFabric/Espresso
// behaviour that makes congestion a *cause* of route changes), and answers
// performance queries (RTT, loss, throughput) along routed paths.
//
// Determinism contract: an Engine is fully determined by (topology
// constructor, seed, event list). Two engines built the same way but with
// different event lists share all noise for the components they have in
// common, which is what makes ground-truth counterfactuals ("replay the
// same six weeks without the IXP join") meaningful.
package engine

import (
	"context"
	"fmt"
	"sort"

	"sisyphus/internal/netsim/bgp"
	"sisyphus/internal/netsim/topo"
	"sisyphus/internal/netsim/traffic"
	"sisyphus/internal/parallel"
)

// Config tunes the engine.
type Config struct {
	// StepHours is the simulated time per Step call (default 1).
	StepHours float64
	// QueueScaleMs scales queueing delay per congested link (default 0.6).
	QueueScaleMs float64
	// PerHopMs is fixed processing delay per hop (default 0.05).
	PerHopMs float64
	// AdaptiveEgress enables congestion-driven egress switching.
	AdaptiveEgress bool
	// EgressHighUtil is the utilization that triggers a switch away
	// (default 0.82); EgressLowUtil the level that releases the override
	// (default 0.6).
	EgressHighUtil, EgressLowUtil float64
	// Pool shards routing recomputation (bgp.Compute) across workers. The
	// zero value is the default pool; routing is bit-identical at any width.
	Pool parallel.Pool
	// InitialRIB seeds the engine with a pre-converged routing state —
	// typically an artifact-store fork of the scenario's fixed point under
	// the empty policy. The engine starts clean (not dirty): the first RIB
	// query returns this state instead of recomputing it, and any event or
	// policy change dirties it as usual. The caller must hand over a RIB
	// computed over the engine's topology under an empty policy, which is
	// exactly what every engine would compute for itself on first use.
	InitialRIB *bgp.RIB
}

func (c Config) withDefaults() Config {
	if c.StepHours <= 0 {
		c.StepHours = 1
	}
	if c.QueueScaleMs <= 0 {
		c.QueueScaleMs = 0.6
	}
	if c.PerHopMs <= 0 {
		c.PerHopMs = 0.05
	}
	if c.EgressHighUtil <= 0 {
		c.EgressHighUtil = 0.82
	}
	if c.EgressLowUtil <= 0 {
		c.EgressLowUtil = 0.6
	}
	return c
}

// Event is a scheduled change to the simulated world.
type Event struct {
	AtHour float64
	Name   string
	Apply  func(*Engine) error
}

// Engine is the running simulation.
type Engine struct {
	Topo    *topo.Topology
	Policy  *bgp.Policy
	Traffic *traffic.Model
	cfg     Config

	hour  float64
	step  int
	rib   *bgp.RIB
	dirty bool

	// Dual-stack state (see family.go): the v6 policy and RIB. Events and
	// adaptive egress operate on the v4 plane; the v6 plane changes only
	// through PolicyFamily — the exogenous knob.
	policy6 *bgp.Policy
	rib6    *bgp.RIB
	dirty6  bool

	events  []Event
	fired   int
	eventLg []string

	// Adaptive egress state: per AS, the provider currently de-preffed.
	depreffed map[topo.ASN]topo.ASN

	// ctx is the run context set by Bind. An Engine is single-run scoped —
	// built, stepped, and discarded inside one Scenario stage — so binding
	// the run's context once at construction is the documented exception to
	// "don't store contexts in structs": it lets cancellation reach routing
	// recomputation without threading a ctx through every Step/RIB/Perf
	// call site (probes and user models query the engine from tight loops).
	ctx context.Context
}

// New creates an engine over the topology with the given noise seed.
func New(t *topo.Topology, seed uint64, cfg Config) *Engine {
	e := &Engine{
		Topo:      t,
		Policy:    bgp.NewPolicy(),
		Traffic:   traffic.NewModel(t, seed),
		cfg:       cfg.withDefaults(),
		dirty:     true,
		depreffed: make(map[topo.ASN]topo.ASN),
		ctx:       context.Background(),
	}
	// A pre-converged RIB (artifact-cache fork) replaces the first compute.
	// The engine's policy starts empty, matching the seed RIB's policy, so
	// this is observationally identical to computing lazily on first use.
	if cfg.InitialRIB != nil {
		e.rib = cfg.InitialRIB
		e.dirty = false
	}
	return e
}

// Bind attaches the run context: once ctx is cancelled, routing
// recomputations fail with ctx.Err() and the failure propagates out of
// whatever Step/RIB/Perf call needed them. Returns the engine for chaining.
func (e *Engine) Bind(ctx context.Context) *Engine {
	if ctx == nil {
		ctx = context.Background()
	}
	e.ctx = ctx
	return e
}

// Schedule registers an event; events fire in AtHour order during Step.
func (e *Engine) Schedule(ev Event) {
	e.events = append(e.events, ev)
	sort.SliceStable(e.events, func(i, j int) bool { return e.events[i].AtHour < e.events[j].AtHour })
}

// Hour returns the current simulated UTC hour since start.
func (e *Engine) Hour() float64 { return e.hour }

// StepIndex returns how many steps have elapsed.
func (e *Engine) StepIndex() int { return e.step }

// EventLog returns the names of events fired so far.
func (e *Engine) EventLog() []string { return append([]string(nil), e.eventLg...) }

// RIB returns the current converged routing state, recomputing if needed.
func (e *Engine) RIB() (*bgp.RIB, error) {
	if e.dirty || e.rib == nil {
		rib, err := bgp.Compute(e.ctx, e.cfg.Pool, e.Topo, e.Policy)
		if err != nil {
			return nil, err
		}
		e.rib = rib
		e.dirty = false
	}
	return e.rib, nil
}

// MarkDirty forces a routing recomputation on next use (call after mutating
// the topology or policy outside the event system). Topology changes affect
// both address families.
func (e *Engine) MarkDirty() { e.dirty = true; e.dirty6 = true }

// Step advances simulated time by StepHours: fires due events, then applies
// adaptive egress reactions to current utilization.
func (e *Engine) Step() error {
	e.hour += e.cfg.StepHours
	e.step++
	for e.fired < len(e.events) && e.events[e.fired].AtHour <= e.hour {
		ev := e.events[e.fired]
		e.fired++
		if err := ev.Apply(e); err != nil {
			return fmt.Errorf("engine: event %q at hour %.1f: %w", ev.Name, ev.AtHour, err)
		}
		e.eventLg = append(e.eventLg, ev.Name)
		e.dirty = true
		e.dirty6 = true // events may mutate the shared topology
	}
	if e.cfg.AdaptiveEgress {
		if err := e.adaptEgress(); err != nil {
			return err
		}
	}
	return nil
}

// RunUntil steps until the clock reaches hour.
func (e *Engine) RunUntil(hour float64) error {
	for e.hour < hour {
		if err := e.Step(); err != nil {
			return err
		}
	}
	return nil
}

// Utilization returns a link's utilization now.
func (e *Engine) Utilization(id topo.LinkID) float64 {
	return e.Traffic.Utilization(id, e.hour, e.step)
}

// adaptEgress mimics SDN egress controllers: a multihomed AS whose
// currently-preferred provider link is congested shifts preference to its
// least-loaded other provider; the override is released when the link
// drains. Route changes caused here are *endogenous* — caused by congestion
// — which is exactly the confounding structure of the paper's running
// example.
func (e *Engine) adaptEgress() error {
	rib, err := e.RIB()
	if err != nil {
		return err
	}
	rel := rib.Rel
	changed := false
	for _, as := range e.Topo.ASes() {
		a := as.ASN
		// Collect provider neighbors (a is the customer).
		var providers []topo.ASN
		for n, k := range rel.Rel[a] {
			if k == topo.RelCustomer {
				providers = append(providers, n)
			}
		}
		if len(providers) < 2 {
			continue
		}
		sort.Slice(providers, func(i, j int) bool { return providers[i] < providers[j] })
		// Utilization of the best (max across that neighbor's links, since
		// any of them may carry the egress).
		utilTo := func(n topo.ASN) float64 {
			var u float64
			for _, id := range rel.Links[a][n] {
				if v := e.Utilization(id); v > u {
					u = v
				}
			}
			return u
		}
		cur, isDepreffed := e.depreffed[a]
		if isDepreffed {
			// Release when the congested provider drains.
			if utilTo(cur) < e.cfg.EgressLowUtil {
				e.Policy.ClearLocalPref(a, cur)
				delete(e.depreffed, a)
				changed = true
				e.eventLg = append(e.eventLg, fmt.Sprintf("egress-restore AS%d->AS%d", a, cur))
			}
			continue
		}
		// Which provider does a currently use most? Approximate with the
		// provider carrying the most chosen routes.
		use := make(map[topo.ASN]int)
		for _, dst := range e.Topo.ASes() {
			if dst.ASN == a {
				continue
			}
			if r := rib.Lookup(a, dst.ASN); r != nil {
				for _, p := range providers {
					if r.NextHop() == p {
						use[p]++
					}
				}
			}
		}
		var active topo.ASN
		best := -1
		for _, p := range providers {
			if use[p] > best {
				best, active = use[p], p
			}
		}
		if best <= 0 {
			continue
		}
		if utilTo(active) < e.cfg.EgressHighUtil {
			continue
		}
		// Pick the least-loaded alternative with meaningful headroom.
		alt := active
		altU := utilTo(active)
		for _, p := range providers {
			if p == active {
				continue
			}
			if u := utilTo(p); u < altU-0.1 {
				alt, altU = p, u
			}
		}
		if alt == active {
			continue
		}
		e.Policy.SetLocalPref(a, active, bgp.PrefProvider-50)
		e.depreffed[a] = active
		changed = true
		e.eventLg = append(e.eventLg, fmt.Sprintf("egress-shift AS%d away from AS%d", a, active))
	}
	if changed {
		e.dirty = true
	}
	return nil
}
