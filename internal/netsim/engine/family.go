package engine

import (
	"fmt"

	"sisyphus/internal/netsim/bgp"
	"sisyphus/internal/netsim/topo"
)

// Dual-stack support: the simulated world is dual-stacked on the same
// physical topology, but each address family has its own routing policy —
// as on the real Internet, where v4 and v6 local preferences and peering
// are configured (and often drift) independently. §4 proposes exactly this
// as an exogenous-variation knob: toggling the family changes the AS path
// without touching network state, so family is usable as an instrument.

// Family is an IP address family.
type Family int

// Supported families.
const (
	V4 Family = 4
	V6 Family = 6
)

func (f Family) valid() bool { return f == V4 || f == V6 }

// PolicyFamily returns the routing policy for the family; V6 policy is
// created lazily (initially empty, i.e. default preferences).
func (e *Engine) PolicyFamily(f Family) (*bgp.Policy, error) {
	switch f {
	case V4:
		return e.Policy, nil
	case V6:
		if e.policy6 == nil {
			e.policy6 = bgp.NewPolicy()
		}
		return e.policy6, nil
	default:
		return nil, fmt.Errorf("engine: unknown family %d", f)
	}
}

// RIBFamily returns the converged routing state for the family.
func (e *Engine) RIBFamily(f Family) (*bgp.RIB, error) {
	switch f {
	case V4:
		return e.RIB()
	case V6:
		if e.dirty6 || e.rib6 == nil {
			pol, err := e.PolicyFamily(V6)
			if err != nil {
				return nil, err
			}
			rib, err := bgp.Compute(e.ctx, e.cfg.Pool, e.Topo, pol)
			if err != nil {
				return nil, err
			}
			e.rib6 = rib
			e.dirty6 = false
		}
		return e.rib6, nil
	default:
		return nil, fmt.Errorf("engine: unknown family %d", f)
	}
}

// MarkDirtyFamily forces recomputation of one family's routes.
func (e *Engine) MarkDirtyFamily(f Family) {
	if f == V6 {
		e.dirty6 = true
		return
	}
	e.dirty = true
}

// PerfFamily computes current performance between two PoPs over the given
// family's routes. Link-level conditions (utilization, delay) are shared
// between families; only the chosen path differs.
func (e *Engine) PerfFamily(src, dst topo.PoPID, f Family) (*PathPerf, error) {
	if !f.valid() {
		return nil, fmt.Errorf("engine: unknown family %d", f)
	}
	rib, err := e.RIBFamily(f)
	if err != nil {
		return nil, err
	}
	p, err := rib.Forward(src, dst)
	if err != nil {
		return nil, err
	}
	return e.perfAlong(p), nil
}

// PerfToASFamily is PerfToAS over the given family.
func (e *Engine) PerfToASFamily(src topo.PoPID, asn topo.ASN, f Family) (*PathPerf, error) {
	rib, err := e.RIBFamily(f)
	if err != nil {
		return nil, err
	}
	dst, err := rib.NearestPoP(src, asn)
	if err != nil {
		return nil, err
	}
	return e.PerfFamily(src, dst, f)
}
