package engine

import (
	"math"
	"strings"
	"testing"

	"sisyphus/internal/netsim/topo"
	"sisyphus/internal/netsim/traffic"
)

// zaTopo reproduces the trombone scenario with an IXP available in
// Johannesburg and a second transit for adaptive-egress tests.
func zaTopo(t testing.TB) *topo.Topology {
	b := topo.NewBuilder(nil).
		AddAS(100, "EuroTier1", topo.Transit, "London", "Johannesburg").
		AddAS(200, "ZATransitA", topo.Transit, "Johannesburg").
		AddAS(201, "ZATransitB", topo.Transit, "Johannesburg").
		AddAS(3741, "Access", topo.Access, "East London", "Johannesburg").
		AddAS(300, "Content", topo.Content, "London", "Johannesburg").
		Connect(200, "Johannesburg", topo.CustomerOf, 100, "Johannesburg", topo.WithBaseUtil(0.45)).
		Connect(201, "Johannesburg", topo.CustomerOf, 100, "Johannesburg", topo.WithBaseUtil(0.3)).
		Connect(3741, "Johannesburg", topo.CustomerOf, 200, "Johannesburg", topo.WithBaseUtil(0.5)).
		Connect(3741, "Johannesburg", topo.CustomerOf, 201, "Johannesburg", topo.WithBaseUtil(0.3)).
		Connect(300, "London", topo.CustomerOf, 100, "London", topo.WithBaseUtil(0.4)).
		AddIXP("NAPAfrica-JNB", "Johannesburg", "196.60.8.")
	tp, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return tp
}

func TestPerfBasicRTT(t *testing.T) {
	tp := zaTopo(t)
	e := New(tp, 1, Config{})
	src, _ := tp.FindPoP(3741, "Johannesburg")
	dst, _ := tp.FindPoP(300, "London")
	perf, err := e.Perf(src, dst)
	if err != nil {
		t.Fatal(err)
	}
	// JNB->London RTT should be >= 2 * ~58ms propagation.
	if perf.RTTms < 110 || perf.RTTms > 250 {
		t.Fatalf("RTT = %v ms", perf.RTTms)
	}
	if perf.ThroughputMbps <= 0 {
		t.Fatalf("throughput = %v", perf.ThroughputMbps)
	}
	if perf.MaxUtil <= 0 || perf.MaxUtil >= 1 {
		t.Fatalf("max util = %v", perf.MaxUtil)
	}
}

func TestStepFiresEventsInOrder(t *testing.T) {
	tp := zaTopo(t)
	e := New(tp, 1, Config{})
	var fired []string
	mk := func(h float64, name string) Event {
		return Event{AtHour: h, Name: name, Apply: func(*Engine) error {
			fired = append(fired, name)
			return nil
		}}
	}
	e.Schedule(mk(5, "b"))
	e.Schedule(mk(2, "a"))
	e.Schedule(mk(9, "c"))
	if err := e.RunUntil(10); err != nil {
		t.Fatal(err)
	}
	if strings.Join(fired, ",") != "a,b,c" {
		t.Fatalf("fired = %v", fired)
	}
	if got := e.EventLog(); len(got) != 3 {
		t.Fatalf("event log = %v", got)
	}
	if e.Hour() != 10 || e.StepIndex() != 10 {
		t.Fatalf("clock = %v / %v", e.Hour(), e.StepIndex())
	}
}

func TestIXPJoinEventReducesRTT(t *testing.T) {
	tp := zaTopo(t)
	e := New(tp, 1, Config{})
	e.Schedule(EvJoinIXP(10, "NAPAfrica-JNB", 300, 0))
	e.Schedule(EvJoinIXP(10, "NAPAfrica-JNB", 3741, 0.1))
	src, _ := tp.FindPoP(3741, "East London")

	if err := e.RunUntil(5); err != nil {
		t.Fatal(err)
	}
	before, err := e.PerfToAS(src, 300)
	if err != nil {
		t.Fatal(err)
	}
	if err := e.RunUntil(15); err != nil {
		t.Fatal(err)
	}
	after, err := e.PerfToAS(src, 300)
	if err != nil {
		t.Fatal(err)
	}
	if !(after.RTTms < before.RTTms-50) {
		t.Fatalf("IXP join: before %v ms, after %v ms", before.RTTms, after.RTTms)
	}
	// The new path must cross the IXP LAN link.
	foundIXP := false
	for _, h := range after.Path.Hops {
		if h.Link != nil && h.Link.IXP == "NAPAfrica-JNB" {
			foundIXP = true
		}
	}
	if !foundIXP {
		t.Fatal("post-join path does not cross the IXP")
	}
}

func TestMaintenanceWindowRemovesAndRestores(t *testing.T) {
	tp := zaTopo(t)
	e := New(tp, 1, Config{})
	rel, _ := tp.Relationships()
	linkVia200 := rel.Links[3741][200][0]
	start, end := EvMaintenance(10, 5, linkVia200)
	e.Schedule(start)
	e.Schedule(end)
	src, _ := tp.FindPoP(3741, "Johannesburg")

	if err := e.RunUntil(12); err != nil {
		t.Fatal(err)
	}
	perf, err := e.PerfToAS(src, 300)
	if err != nil {
		t.Fatal(err)
	}
	if perf.Path.CrossesLink(linkVia200) {
		t.Fatal("path uses link under maintenance")
	}
	if err := e.RunUntil(20); err != nil {
		t.Fatal(err)
	}
	if _, err := e.PerfToAS(src, 300); err != nil {
		t.Fatal(err)
	}
	if len(e.Policy.DenyLink) != 0 {
		t.Fatal("maintenance not cleaned up")
	}
}

func TestLinkDownUpEvents(t *testing.T) {
	tp := zaTopo(t)
	e := New(tp, 1, Config{})
	rel, _ := tp.Relationships()
	id := rel.Links[3741][200][0]
	e.Schedule(EvLinkDown(3, id))
	e.Schedule(EvLinkUp(6, id))
	if err := e.RunUntil(4); err != nil {
		t.Fatal(err)
	}
	if tp.Link(id).Up {
		t.Fatal("link still up")
	}
	if err := e.RunUntil(7); err != nil {
		t.Fatal(err)
	}
	if !tp.Link(id).Up {
		t.Fatal("link not restored")
	}
}

func TestAdaptiveEgressSwitchesUnderCongestion(t *testing.T) {
	tp := zaTopo(t)
	e := New(tp, 1, Config{AdaptiveEgress: true})
	rel, _ := tp.Relationships()
	linkVia200 := rel.Links[3741][200][0]
	// Flash crowd saturates the AS200 link.
	e.Traffic.AddFlashCrowd(traffic.FlashCrowd{Link: linkVia200, StartHour: 5, Hours: 30, Magnitude: 0.5})

	src, _ := tp.FindPoP(3741, "Johannesburg")
	sawSwitch := false
	for e.Hour() < 30 {
		if err := e.Step(); err != nil {
			t.Fatal(err)
		}
		perf, err := e.PerfToAS(src, 300)
		if err != nil {
			t.Fatal(err)
		}
		if e.Hour() > 8 && !perf.Path.CrossesLink(linkVia200) {
			sawSwitch = true
		}
	}
	if !sawSwitch {
		t.Fatal("adaptive egress never moved off the congested provider")
	}
	log := strings.Join(e.EventLog(), ";")
	if !strings.Contains(log, "egress-shift AS3741") {
		t.Fatalf("no egress shift logged: %s", log)
	}
}

func TestDeterministicReplayAndCounterfactual(t *testing.T) {
	run := func(withJoin bool) []float64 {
		tp := zaTopo(t)
		e := New(tp, 777, Config{})
		if withJoin {
			e.Schedule(EvJoinIXP(24, "NAPAfrica-JNB", 300, 0))
			e.Schedule(EvJoinIXP(24, "NAPAfrica-JNB", 3741, 0))
		}
		src, _ := tp.FindPoP(3741, "Johannesburg")
		var rtts []float64
		for e.Hour() < 48 {
			if err := e.Step(); err != nil {
				t.Fatal(err)
			}
			perf, err := e.PerfToAS(src, 300)
			if err != nil {
				t.Fatal(err)
			}
			rtts = append(rtts, perf.RTTms)
		}
		return rtts
	}
	a := run(true)
	b := run(true)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("replay diverged at step %d: %v vs %v", i, a[i], b[i])
		}
	}
	// Counterfactual: identical until the join fires, divergent after.
	c := run(false)
	for i := 0; i < 23; i++ {
		if a[i] != c[i] {
			t.Fatalf("pre-treatment divergence at step %d", i)
		}
	}
	post := a[30] - c[30]
	if math.Abs(post) < 50 {
		t.Fatalf("counterfactual contrast too small: %v", post)
	}
}

func TestEventErrorPropagates(t *testing.T) {
	tp := zaTopo(t)
	e := New(tp, 1, Config{})
	e.Schedule(EvJoinIXP(1, "NoSuchIXP", 300, 0))
	if err := e.RunUntil(2); err == nil {
		t.Fatal("event error swallowed")
	}
}

func TestEvSetLocalPref(t *testing.T) {
	tp := zaTopo(t)
	e := New(tp, 1, Config{})
	e.Schedule(EvSetLocalPref(2, 3741, 200, 50))
	if err := e.RunUntil(3); err != nil {
		t.Fatal(err)
	}
	src, _ := tp.FindPoP(3741, "Johannesburg")
	perf, err := e.PerfToAS(src, 300)
	if err != nil {
		t.Fatal(err)
	}
	rel, _ := tp.Relationships()
	if perf.Path.CrossesLink(rel.Links[3741][200][0]) {
		t.Fatal("depreffed provider still used")
	}
}
