package engine

import (
	"fmt"

	"sisyphus/internal/netsim/bgp"
	"sisyphus/internal/netsim/topo"
	"sisyphus/internal/netsim/traffic"
)

// PathPerf is the engine's ground-truth performance along one path at one
// instant (no measurement noise — probes add that).
type PathPerf struct {
	Path *bgp.Path
	// RTTms is the round-trip time: 2× (propagation + queueing + per-hop).
	RTTms float64
	// LossRate is the end-to-end loss probability.
	LossRate float64
	// ThroughputMbps is the bottleneck available bandwidth.
	ThroughputMbps float64
	// MaxUtil is the highest link utilization on the path (the congestion
	// covariate an omniscient observer would adjust for).
	MaxUtil float64
	// BottleneckLink is the link with the least available capacity.
	BottleneckLink topo.LinkID
}

// Perf computes current performance between two PoPs.
func (e *Engine) Perf(src, dst topo.PoPID) (*PathPerf, error) {
	rib, err := e.RIB()
	if err != nil {
		return nil, err
	}
	p, err := rib.Forward(src, dst)
	if err != nil {
		return nil, err
	}
	return e.perfAlong(p), nil
}

// PerfToAS computes performance from a PoP to the nearest PoP of an AS
// (anycast-style server selection).
func (e *Engine) PerfToAS(src topo.PoPID, asn topo.ASN) (*PathPerf, error) {
	rib, err := e.RIB()
	if err != nil {
		return nil, err
	}
	dst, err := rib.NearestPoP(src, asn)
	if err != nil {
		return nil, err
	}
	return e.Perf(src, dst)
}

func (e *Engine) perfAlong(p *bgp.Path) *PathPerf {
	out := &PathPerf{Path: p, ThroughputMbps: 1e9, BottleneckLink: -1}
	oneWay := 0.0
	survive := 1.0
	for _, h := range p.Hops {
		oneWay += h.DelayMs + e.cfg.PerHopMs
		if h.Link == nil {
			continue
		}
		u := e.Utilization(h.Link.ID)
		oneWay += traffic.QueueingDelayMs(u, e.cfg.QueueScaleMs)
		survive *= 1 - traffic.LossRate(u)
		if u > out.MaxUtil {
			out.MaxUtil = u
		}
		avail := h.Link.CapacityMbps * (1 - u)
		if avail < out.ThroughputMbps {
			out.ThroughputMbps = avail
			out.BottleneckLink = h.Link.ID
		}
	}
	out.RTTms = 2 * oneWay
	out.LossRate = 1 - survive
	if out.BottleneckLink == -1 {
		out.ThroughputMbps = 0 // degenerate zero-hop path
	}
	return out
}

// Standard engine events.

// EvJoinIXP returns an event that makes asn join the named IXP and shifts
// shiftUtil worth of load off its provider links (traffic moving to the
// new peering).
func EvJoinIXP(atHour float64, ixp string, asn topo.ASN, shiftUtil float64) Event {
	return Event{
		AtHour: atHour,
		Name:   fmt.Sprintf("join-ixp %s AS%d", ixp, asn),
		Apply: func(e *Engine) error {
			_, err := e.Topo.JoinIXP(ixp, asn)
			if err != nil {
				return err
			}
			if shiftUtil > 0 {
				rel, err := e.Topo.Relationships()
				if err != nil {
					return err
				}
				for n, k := range rel.Rel[asn] {
					if k != topo.RelCustomer {
						continue // only provider links drain
					}
					for _, id := range rel.Links[asn][n] {
						e.Traffic.AddLoadShift(id, atHour, -shiftUtil)
					}
				}
			}
			return nil
		},
	}
}

// EvLinkDown returns an event that fails a link.
func EvLinkDown(atHour float64, id topo.LinkID) Event {
	return Event{
		AtHour: atHour,
		Name:   fmt.Sprintf("link-down %d", id),
		Apply: func(e *Engine) error {
			e.Topo.SetLinkUp(id, false)
			return nil
		},
	}
}

// EvLinkUp returns an event that restores a link.
func EvLinkUp(atHour float64, id topo.LinkID) Event {
	return Event{
		AtHour: atHour,
		Name:   fmt.Sprintf("link-up %d", id),
		Apply: func(e *Engine) error {
			e.Topo.SetLinkUp(id, true)
			return nil
		},
	}
}

// EvMaintenance schedules an administrative link outage for a window — the
// paper's example of a plausibly exogenous natural experiment. It returns
// the pair of events (start, end).
func EvMaintenance(startHour, hours float64, id topo.LinkID) (Event, Event) {
	start := Event{
		AtHour: startHour,
		Name:   fmt.Sprintf("maintenance-start %d", id),
		Apply: func(e *Engine) error {
			e.Policy.DenyLink[id] = true
			return nil
		},
	}
	end := Event{
		AtHour: startHour + hours,
		Name:   fmt.Sprintf("maintenance-end %d", id),
		Apply: func(e *Engine) error {
			delete(e.Policy.DenyLink, id)
			return nil
		},
	}
	return start, end
}

// EvSetLocalPref returns an event applying a local-preference override —
// the paper's example of an *invalid* instrument when the change also moves
// load.
func EvSetLocalPref(atHour float64, a, n topo.ASN, pref int) Event {
	return Event{
		AtHour: atHour,
		Name:   fmt.Sprintf("local-pref AS%d->AS%d=%d", a, n, pref),
		Apply: func(e *Engine) error {
			e.Policy.SetLocalPref(a, n, pref)
			return nil
		},
	}
}
