// Package scenario builds the concrete simulated worlds the experiments
// run on. A World is the common shape every experiment consumes: a
// topology, one exchange whose joining is "the treatment", content networks
// users measure against, and the treated/donor casting of ⟨ASN, city⟩
// analysis units. Worlds come from the registry (Build): the two canned
// seed worlds — the Table 1 South Africa scenario and its historical
// trombone-era counterpart — self-register by name, and arbitrarily many
// synthetic internets register under content-addressed gen/<cfghash> ids
// (see GenSpec).
package scenario

import (
	"fmt"

	"sisyphus/internal/netsim/topo"
)

// Unit is an ⟨ASN, city⟩ analysis unit.
type Unit struct {
	ASN  topo.ASN
	City string
}

func (u Unit) String() string { return fmt.Sprintf("AS%d/%s", u.ASN, u.City) }

// World is a built scenario: the common world shape every experiment runs
// on, whether canned or generated.
type World struct {
	Topo *topo.Topology
	// IXPName is the exchange whose joining is the treatment.
	IXPName string
	// IXPPrefix is the exchange's peering LAN prefix.
	IXPPrefix string
	// ContentASNs are the content networks users measure against; all are
	// founding IXP members. The first is the measurement destination.
	ContentASNs []topo.ASN
	// Treated lists the units whose ASes join the IXP mid-study.
	Treated []Unit
	// TreatedASNs is the deduplicated set of joining ASes.
	TreatedASNs []topo.ASN
	// Donors are access units whose ASes never join (the donor pool).
	Donors []Unit
	// MLabServerASNs host the M-Lab sites of the South Africa world
	// (distinct ASes so randomized assignment shifts AS paths); empty in
	// worlds without an M-Lab casting.
	MLabServerASNs []topo.ASN
	// Eyeball, MLab, Outage, and FailureCandidates are optional castings
	// (see casting.go): the world features that experiments beyond Table 1
	// need. Nil/empty means the world cannot host the experiments requiring
	// them, and those runners refuse with ErrCastingMissing.
	Eyeball           *EyeballCast
	MLab              *MLabCast
	Outage            *OutageCast
	FailureCandidates []FailureCandidate
}

// AllUnits returns treated then donor units.
func (s *World) AllUnits() []Unit {
	out := append([]Unit(nil), s.Treated...)
	return append(out, s.Donors...)
}

// UserPoP returns the PoP a unit's users measure from.
func (s *World) UserPoP(u Unit) (topo.PoPID, error) {
	return s.Topo.FindPoP(u.ASN, u.City)
}

// MeasureDst is the content AS user measurements target: the first content
// network (BigContent in both canned worlds, the first generated content AS
// in gen worlds).
func (s *World) MeasureDst() topo.ASN { return s.ContentASNs[0] }

// Freeze marks the world immutable: the underlying topology freezes, so
// subsequent Forks get copy-on-write clones that share the whole structure
// until their first mutation. The artifact store calls this once after a
// successful build, before any fork is handed out.
func (s *World) Freeze() { s.Topo.Freeze() }

// Frozen reports whether Freeze has been called.
func (s *World) Frozen() bool { return s.Topo.Frozen() }

// SizeBytes estimates the world's resident size for the artifact store's
// byte bound: the topology dominates; the casting lists ride on a small flat
// per-entry cost. An estimate, not an accounting — the LRU only needs
// relative magnitudes.
func (s *World) SizeBytes() int64 {
	const perUnit = 40 // Unit struct + slice slot
	const perASN = 8
	const perCast = 64 // a cast struct (or candidate entry) + slice slot
	n := s.Topo.SizeBytes()
	n += int64(len(s.Treated)+len(s.Donors)) * perUnit
	n += int64(len(s.ContentASNs)+len(s.TreatedASNs)+len(s.MLabServerASNs)) * perASN
	for _, p := range []bool{s.Eyeball != nil, s.MLab != nil, s.Outage != nil} {
		if p {
			n += perCast
		}
	}
	if s.Outage != nil {
		n += int64(len(s.Outage.Surge)+len(s.Outage.CutProviders)) * perASN
	}
	n += int64(len(s.FailureCandidates)) * perCast
	return n
}

// Fork returns an independent copy of the world: the topology is cloned
// (so IXP joins and link flaps stay private to the copy) and every slice is
// copied. On a frozen world the topology clone is pointer-cheap —
// copy-on-write — so the fork costs only the small casting slices.
// Required by the artifact store's copy-on-read rule.
func (s *World) Fork() *World {
	out := &World{
		Topo:              s.Topo.Clone(),
		IXPName:           s.IXPName,
		IXPPrefix:         s.IXPPrefix,
		ContentASNs:       append([]topo.ASN(nil), s.ContentASNs...),
		Treated:           append([]Unit(nil), s.Treated...),
		TreatedASNs:       append([]topo.ASN(nil), s.TreatedASNs...),
		Donors:            append([]Unit(nil), s.Donors...),
		MLabServerASNs:    append([]topo.ASN(nil), s.MLabServerASNs...),
		Eyeball:           forkEyeball(s.Eyeball),
		MLab:              forkMLab(s.MLab),
		Outage:            forkOutage(s.Outage),
		FailureCandidates: append([]FailureCandidate(nil), s.FailureCandidates...),
	}
	return out
}

// validate checks the casting lists against the topology so every
// constructor — canned build, generated build, codec import — hands out
// worlds the experiments can actually measure on: the IXP exists, every
// unit has a user PoP, and every cast ASN is in the topology.
func (s *World) validate(op string) error {
	if s.IXPName != "" {
		if _, err := s.Topo.IXP(s.IXPName); err != nil {
			return fmt.Errorf("scenario: %s: %w", op, err)
		}
	}
	for _, u := range s.AllUnits() {
		if _, err := s.UserPoP(u); err != nil {
			return fmt.Errorf("scenario: %s: unit %s: %w", op, u, err)
		}
	}
	for _, asn := range s.TreatedASNs {
		if _, err := s.Topo.AS(asn); err != nil {
			return fmt.Errorf("scenario: %s: treated: %w", op, err)
		}
	}
	for _, lists := range [][]topo.ASN{s.ContentASNs, s.MLabServerASNs} {
		for _, asn := range lists {
			if _, err := s.Topo.AS(asn); err != nil {
				return fmt.Errorf("scenario: %s: %w", op, err)
			}
		}
	}
	return s.validateCastings(op)
}
