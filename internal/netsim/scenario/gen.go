// Generated worlds: parameterized synthetic internets with stable
// content-addressed ids. A GenSpec — topo.GenConfig plus the generation
// seed — canonically hashes to a gen/<cfghash> id; RegisterGen puts the
// spec's builder in the world registry under that id, after which the id
// works everywhere a canned id does: experiment configs, artifact keys,
// disk envelopes, and the -scenario/-scenarios flags.
package scenario

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"sort"
	"strconv"
	"strings"

	"sisyphus/internal/mathx"
	"sisyphus/internal/netsim/topo"
)

const (
	// GenIDPrefix prefixes every generated-world id.
	GenIDPrefix = "gen/"
	// GenSpecPrefix prefixes the human-writable spec form the CLI accepts.
	GenSpecPrefix = "gen:"
	// GenGrammar documents the spec form, for error messages and usage.
	GenGrammar = "gen:key=val[+key=val...] with keys tier1, tier2, access, content, treated, cities, multihome, peer, ixpcity, seed (omitted keys take defaults)"
)

// GenSpec is the complete identity of a generated world: the topology
// generator's config plus the seed all generation randomness flows from.
// Equal specs build equal worlds, which is what lets the spec's hash serve
// as a world id in artifact keys and disk envelopes.
type GenSpec struct {
	Config topo.GenConfig
	Seed   uint64
}

// DefaultGenSpec is the baseline synthetic internet: the topo package's
// default Internet-like mix with an exchange, four joinable access ASes,
// and eight donors.
func DefaultGenSpec() GenSpec {
	cfg := topo.DefaultGenConfig()
	cfg.IXP = true
	cfg.Treated = 4
	return GenSpec{Config: cfg, Seed: 1}
}

// ID returns the spec's content-addressed world id: gen/ followed by the
// first 16 hex chars of the sha256 over the spec's canonical JSON (struct
// fields marshal in declaration order, so equal specs hash equally no
// matter how they were constructed). RegisterGen verifies truncation never
// aliases two different specs.
func (sp GenSpec) ID() string {
	b, err := json.Marshal(sp)
	if err != nil {
		// GenSpec is plain data; Marshal cannot fail on it.
		panic(fmt.Sprintf("scenario: GenSpec marshal: %v", err))
	}
	sum := sha256.Sum256(b)
	return GenIDPrefix + hex.EncodeToString(sum[:])[:16]
}

// genSpecs remembers the spec behind each registered gen id, so the
// registry can answer what a gen/<cfghash> id means and detect (vanishingly
// unlikely) truncated-hash collisions. Guarded by the registry lock.
var genSpecs = map[string]GenSpec{}

// RegisterGen validates the spec, registers its builder under the spec's
// content-addressed id, and returns the id. Registering the same spec twice
// is idempotent; two different specs colliding on one id is an error.
func RegisterGen(sp GenSpec) (string, error) {
	if err := validateGenSpec(sp); err != nil {
		return "", err
	}
	id := sp.ID()
	reg.Lock()
	defer reg.Unlock()
	if prev, ok := genSpecs[id]; ok {
		if prev != sp {
			return "", fmt.Errorf("scenario: gen id %s collides: %+v vs %+v", id, prev, sp)
		}
		return id, nil
	}
	genSpecs[id] = sp
	reg.builders[id] = func() (*World, error) { return BuildGenerated(sp) }
	return id, nil
}

// GenSpecFor returns the spec registered under a gen id.
func GenSpecFor(id string) (GenSpec, bool) {
	reg.RLock()
	defer reg.RUnlock()
	sp, ok := genSpecs[id]
	return sp, ok
}

// validateGenSpec rejects specs that can never cast into a runnable world,
// so a bad -scenarios flag fails at parse time rather than once per sweep
// cell: the treatment needs an exchange, at least one joinable access AS,
// content to measure against, and enough never-treated access ASes for a
// donor pool (the Table 1 estimator needs 3 clean donors).
func validateGenSpec(sp GenSpec) error {
	c := sp.Config
	if !c.IXP {
		return fmt.Errorf("scenario: generated world needs Config.IXP (the exchange is the treatment)")
	}
	if c.Content < 1 {
		return fmt.Errorf("scenario: generated world needs at least one content AS (got %d)", c.Content)
	}
	if c.Treated < 1 {
		return fmt.Errorf("scenario: generated world needs at least one treated access AS (got %d)", c.Treated)
	}
	if c.Access-c.Treated < 3 {
		return fmt.Errorf("scenario: generated world needs at least 3 donor access ASes (access=%d, treated=%d)", c.Access, c.Treated)
	}
	return nil
}

// BuildGenerated constructs a generated world from its spec: generate the
// topology (all randomness from the spec seed), then cast the access tier —
// the first Config.Treated access ASes, joinable by construction, become
// treated units at their home city; every other access AS becomes a donor.
// Content networks are the founding exchange members, in ASN order, and the
// first one is the measurement destination.
func BuildGenerated(sp GenSpec) (*World, error) {
	if err := validateGenSpec(sp); err != nil {
		return nil, err
	}
	r := mathx.NewRNG(sp.Seed)
	t, err := topo.Generate(r, sp.Config, nil)
	if err != nil {
		return nil, fmt.Errorf("scenario: generate %s: %w", sp.ID(), err)
	}
	x, err := t.IXP(topo.GenIXPName)
	if err != nil {
		return nil, fmt.Errorf("scenario: generate %s: %w", sp.ID(), err)
	}
	s := &World{
		Topo:        t,
		IXPName:     x.Name,
		IXPPrefix:   x.Prefix,
		ContentASNs: append([]topo.ASN(nil), x.Members...),
	}
	for i, a := range t.ASes() {
		_ = i
		if a.Type != topo.Access {
			continue
		}
		home := t.PoP(t.PoPsOf(a.ASN)[0]).City
		u := Unit{ASN: a.ASN, City: home}
		// Generation assigns access ASNs densely from 3000 in index order;
		// the first Config.Treated of them carry the exchange PoP.
		if int(a.ASN)-3000 < sp.Config.Treated {
			if _, err := t.FindPoP(a.ASN, x.City); err != nil {
				return nil, fmt.Errorf("scenario: generate %s: treated %s: %w", sp.ID(), u, err)
			}
			s.Treated = append(s.Treated, u)
			s.TreatedASNs = append(s.TreatedASNs, a.ASN)
		} else {
			s.Donors = append(s.Donors, u)
		}
	}
	if err := castGenerated(s, x.City); err != nil {
		return nil, fmt.Errorf("scenario: generate %s: %w", sp.ID(), err)
	}
	return s, nil
}

// castGenerated derives the optional castings from a generated world's own
// topology, so any synthetic internet with the needed structure can host
// the full experiment set. Every choice is deterministic — lowest-ASN-first
// over sorted provider lists — because the world id is an artifact-key
// coordinate. Worlds lacking the structure (no multihomed access AS, fewer
// than two content ASes) leave the cast nil: the experiments needing it
// refuse with ErrCastingMissing rather than measuring nonsense.
func castGenerated(s *World, ixpCity string) error {
	rel, err := s.Topo.Relationships()
	if err != nil {
		return err
	}
	providersOf := func(asn topo.ASN) []topo.ASN {
		var out []topo.ASN
		for b, k := range rel.Rel[asn] {
			if k == topo.RelCustomer {
				out = append(out, b)
			}
		}
		sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
		return out
	}

	content := s.MeasureDst()
	cprovs := providersOf(content)
	if len(cprovs) == 0 {
		// A content AS without transit cannot anchor any cast; leave all nil.
		return nil
	}

	// Eyeball: the first access unit (treated before donors, both in ASN
	// order) whose AS has two transit providers.
	for _, u := range s.AllUnits() {
		provs := providersOf(u.ASN)
		if len(provs) >= 2 {
			s.Eyeball = &EyeballCast{
				ASN: u.ASN, City: u.City,
				Primary: provs[0], Alternate: provs[1],
				SharedUplink: LinkRef{A: content, B: cprovs[0], Index: 0},
			}
			break
		}
	}

	// Measurement platform: two content ASes host the server sites at the
	// exchange city; the first treated AS (which has an exchange-city PoP by
	// construction) is the user; the second site's uplink is the one the
	// self-selection story congests.
	if len(s.ContentASNs) >= 2 && len(s.TreatedASNs) > 0 {
		siteB := s.ContentASNs[1]
		bprovs := providersOf(siteB)
		if len(bprovs) > 0 {
			s.MLabServerASNs = []topo.ASN{s.ContentASNs[0], siteB}
			s.MLab = &MLabCast{
				UserASN: s.TreatedASNs[0], UserCity: ixpCity, ServerCity: ixpCity,
				CongestedUplink: LinkRef{A: siteB, B: bprovs[0], Index: 0},
			}
		}
	}

	// Outage: the surge (the red herring) lands on the first treated AS's
	// uplinks; the cut withdraws the content AS from all of its providers.
	if len(s.TreatedASNs) > 0 {
		t0 := s.TreatedASNs[0]
		var surge []LinkRef
		for _, p := range providersOf(t0) {
			surge = append(surge, LinkRef{A: t0, B: p, Index: 0})
		}
		if len(surge) > 0 {
			s.Outage = &OutageCast{Surge: surge, CutProviders: cprovs}
		}
	}

	// Failure candidates: the content uplinks (high exposure) plus the first
	// access tails from each casting group (tiny exposure, total impact for
	// single-homed tails).
	addTail := func(units []Unit, label string, n int) {
		for i := 0; i < len(units) && i < n; i++ {
			asn := units[i].ASN
			provs := providersOf(asn)
			if len(provs) == 0 {
				continue
			}
			s.FailureCandidates = append(s.FailureCandidates, FailureCandidate{
				Name: fmt.Sprintf("%s AS%d–AS%d", label, asn, provs[0]),
				Link: LinkRef{A: asn, B: provs[0], Index: 0},
			})
		}
	}
	for _, p := range cprovs {
		s.FailureCandidates = append(s.FailureCandidates, FailureCandidate{
			Name: fmt.Sprintf("Content AS%d–AS%d", content, p),
			Link: LinkRef{A: content, B: p, Index: 0},
		})
	}
	addTail(s.Treated, "Access", 2)
	addTail(s.Donors, "Donor", 2)
	return nil
}

// ResolveID resolves a scenario token from a flag to a registered world id:
// a known id passes through; a gen: spec is parsed and registered, yielding
// its content-addressed gen/<cfghash> id; anything else errors with the
// known-id list and the gen grammar.
func ResolveID(token string) (string, error) {
	if strings.HasPrefix(token, GenSpecPrefix) {
		sp, err := ParseGenSpec(token)
		if err != nil {
			return "", err
		}
		return RegisterGen(sp)
	}
	if !Registered(token) {
		return "", fmt.Errorf("scenario: unknown scenario id %q (known: %s; generated worlds: %s)",
			token, strings.Join(IDs(), ", "), GenGrammar)
	}
	return token, nil
}

// ParseGenSpec parses the human-writable gen: form ("gen:access=20+seed=7")
// into a spec, starting from DefaultGenSpec so only the keys that differ
// need spelling out. `+` separates pairs (comma belongs to the -scenarios
// list). A bare "gen:" is the default spec.
func ParseGenSpec(spec string) (GenSpec, error) {
	if !strings.HasPrefix(spec, GenSpecPrefix) {
		return GenSpec{}, fmt.Errorf("scenario: gen spec %q must start with %q (%s)", spec, GenSpecPrefix, GenGrammar)
	}
	sp := DefaultGenSpec()
	body := strings.TrimPrefix(spec, GenSpecPrefix)
	if body == "" {
		return sp, nil
	}
	for _, pair := range strings.Split(body, "+") {
		k, v, ok := strings.Cut(pair, "=")
		if !ok || k == "" || v == "" {
			return GenSpec{}, fmt.Errorf("scenario: gen spec %q: malformed pair %q (want key=val; %s)", spec, pair, GenGrammar)
		}
		var err error
		switch k {
		case "tier1":
			sp.Config.Tier1, err = parseGenCount(v)
		case "tier2":
			sp.Config.Tier2, err = parseGenCount(v)
		case "access":
			sp.Config.Access, err = parseGenCount(v)
		case "content":
			sp.Config.Content, err = parseGenCount(v)
		case "treated":
			sp.Config.Treated, err = parseGenCount(v)
		case "cities":
			sp.Config.Cities, err = parseGenCount(v)
		case "multihome":
			sp.Config.MultihomeProb, err = parseGenProb(v)
		case "peer":
			sp.Config.PeerProb, err = parseGenProb(v)
		case "ixpcity":
			sp.Config.IXPCity = v
		case "seed":
			sp.Seed, err = strconv.ParseUint(v, 10, 64)
		default:
			return GenSpec{}, fmt.Errorf("scenario: gen spec %q: unknown key %q (%s)", spec, k, GenGrammar)
		}
		if err != nil {
			return GenSpec{}, fmt.Errorf("scenario: gen spec %q: key %q: %w", spec, k, err)
		}
	}
	return sp, nil
}

func parseGenCount(v string) (int, error) {
	n, err := strconv.Atoi(v)
	if err != nil {
		return 0, err
	}
	if n < 0 {
		return 0, fmt.Errorf("must be >= 0 (got %d)", n)
	}
	return n, nil
}

func parseGenProb(v string) (float64, error) {
	p, err := strconv.ParseFloat(v, 64)
	if err != nil {
		return 0, err
	}
	if p < 0 || p > 1 {
		return 0, fmt.Errorf("must be in [0, 1] (got %g)", p)
	}
	return p, nil
}
