package scenario

import (
	"sort"
	"strings"
	"testing"
)

func TestRegistryCannedWorldsRegistered(t *testing.T) {
	for _, id := range []string{SouthAfricaID, TromboneEraID} {
		if !Registered(id) {
			t.Fatalf("canned world %q not registered", id)
		}
		s, err := Build(id)
		if err != nil {
			t.Fatalf("Build(%q): %v", id, err)
		}
		if len(s.Treated) == 0 || len(s.Donors) == 0 {
			t.Fatalf("Build(%q): empty casting", id)
		}
	}
}

func TestRegistryIDsSorted(t *testing.T) {
	ids := IDs()
	if !sort.StringsAreSorted(ids) {
		t.Fatalf("IDs() not sorted: %v", ids)
	}
	has := func(want string) bool {
		for _, id := range ids {
			if id == want {
				return true
			}
		}
		return false
	}
	if !has(SouthAfricaID) || !has(TromboneEraID) {
		t.Fatalf("IDs() missing canned worlds: %v", ids)
	}
}

func TestBuildUnknownIDErrorListsKnownAndGrammar(t *testing.T) {
	_, err := Build("nosuch")
	if err == nil {
		t.Fatal("unknown id accepted")
	}
	for _, want := range []string{SouthAfricaID, TromboneEraID, GenGrammar} {
		if !strings.Contains(err.Error(), want) {
			t.Fatalf("error %q does not mention %q", err, want)
		}
	}
	// An unregistered gen/ id additionally hints at registration.
	_, err = Build(GenIDPrefix + "deadbeefdeadbeef")
	if err == nil {
		t.Fatal("unregistered gen id accepted")
	}
	if !strings.Contains(err.Error(), "registered first") {
		t.Fatalf("gen-id error %q lacks the registration hint", err)
	}
}

func TestRegisterRejectsBadInput(t *testing.T) {
	mustPanic := func(name string, fn func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Fatalf("%s did not panic", name)
			}
		}()
		fn()
	}
	ok := func() (*World, error) { return BuildSouthAfrica() }
	mustPanic("empty id", func() { Register("", ok) })
	mustPanic("nil builder", func() { Register("x-nil-builder", nil) })
	mustPanic("duplicate id", func() { Register(SouthAfricaID, ok) })
}

func TestRegisterNewIDBuilds(t *testing.T) {
	// A registered custom world flows through Build, including validation.
	Register("registry-test-world", BuildTromboneEra)
	s, err := Build("registry-test-world")
	if err != nil {
		t.Fatal(err)
	}
	if s.IXPName == "" {
		t.Fatal("built world has no exchange")
	}
	// Builders that hand back broken castings are rejected by Build.
	Register("registry-test-broken", func() (*World, error) {
		s, err := BuildSouthAfrica()
		if err != nil {
			return nil, err
		}
		s.Treated = append(s.Treated, Unit{ASN: 64999, City: "Nowhere"})
		return s, nil
	})
	if _, err := Build("registry-test-broken"); err == nil {
		t.Fatal("world with an unmeasurable unit accepted")
	}
}
