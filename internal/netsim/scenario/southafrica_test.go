package scenario

import (
	"context"
	"strings"
	"testing"

	"sisyphus/internal/netsim/bgp"
	"sisyphus/internal/netsim/engine"
	"sisyphus/internal/parallel"
)

func TestBuildSouthAfrica(t *testing.T) {
	s, err := BuildSouthAfrica()
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Treated) != 8 {
		t.Fatalf("treated units = %d want 8 (Table 1 rows)", len(s.Treated))
	}
	if len(s.Donors) < 10 {
		t.Fatalf("donor pool = %d, want a usable donor pool", len(s.Donors))
	}
	// Every unit has a measurable user PoP.
	for _, u := range s.AllUnits() {
		if _, err := s.UserPoP(u); err != nil {
			t.Fatalf("unit %v: %v", u, err)
		}
	}
	// Content networks are exchange members from the start.
	for _, c := range s.ContentASNs {
		if _, ok := s.Topo.IXPMemberIndex(s.IXPName, c); !ok {
			t.Fatalf("content AS%d is not an IXP member", c)
		}
	}
}

func TestSouthAfricaRoutesAreDomesticPreJoin(t *testing.T) {
	s, err := BuildSouthAfrica()
	if err != nil {
		t.Fatal(err)
	}
	rib, err := bgp.Compute(context.Background(), parallel.Pool{}, s.Topo, nil)
	if err != nil {
		t.Fatal(err)
	}
	// Every treated unit reaches BigContent without tromboning: RTT-scale
	// propagation must stay well under intercontinental levels.
	for _, u := range s.Treated {
		src, _ := s.UserPoP(u)
		dst, err := rib.NearestPoP(src, BigContent)
		if err != nil {
			t.Fatalf("%v: %v", u, err)
		}
		p, err := rib.Forward(src, dst)
		if err != nil {
			t.Fatalf("%v: %v", u, err)
		}
		if p.PropagationMs() > 30 {
			t.Fatalf("unit %v trombones: %.1f ms propagation via %v", u, p.PropagationMs(), p.ASPath)
		}
	}
}

func TestSouthAfricaJoinShiftsPathsOntoIXP(t *testing.T) {
	s, err := BuildSouthAfrica()
	if err != nil {
		t.Fatal(err)
	}
	e := engine.New(s.Topo, 9, engine.Config{})
	for _, asn := range s.TreatedASNs {
		e.Schedule(engine.EvJoinIXP(10, s.IXPName, asn, 0.05))
	}
	if err := e.RunUntil(12); err != nil {
		t.Fatal(err)
	}
	rib, err := e.RIB()
	if err != nil {
		t.Fatal(err)
	}
	crossings := 0
	for _, u := range s.Treated {
		src, _ := s.UserPoP(u)
		dst, err := rib.NearestPoP(src, BigContent)
		if err != nil {
			t.Fatalf("%v: %v", u, err)
		}
		p, err := rib.Forward(src, dst)
		if err != nil {
			t.Fatal(err)
		}
		for _, h := range p.Hops {
			if h.Link != nil && h.Link.IXP == s.IXPName {
				crossings++
				break
			}
		}
	}
	if crossings < 6 {
		t.Fatalf("only %d/8 treated units cross the IXP after joining", crossings)
	}
}

func TestSouthAfricaDonorsNeverCrossIXP(t *testing.T) {
	s, err := BuildSouthAfrica()
	if err != nil {
		t.Fatal(err)
	}
	e := engine.New(s.Topo, 9, engine.Config{})
	for _, asn := range s.TreatedASNs {
		e.Schedule(engine.EvJoinIXP(10, s.IXPName, asn, 0.05))
	}
	if err := e.RunUntil(12); err != nil {
		t.Fatal(err)
	}
	rib, _ := e.RIB()
	for _, u := range s.Donors {
		src, _ := s.UserPoP(u)
		dst, err := rib.NearestPoP(src, BigContent)
		if err != nil {
			t.Fatalf("%v: %v", u, err)
		}
		p, err := rib.Forward(src, dst)
		if err != nil {
			t.Fatal(err)
		}
		for _, h := range p.Hops {
			if h.Link != nil && h.Link.IXP == s.IXPName {
				t.Fatalf("donor %v crosses the IXP via %v", u, p.ASPath)
			}
		}
	}
}

func TestUnitString(t *testing.T) {
	u := Unit{3741, "East London"}
	if !strings.Contains(u.String(), "3741") || !strings.Contains(u.String(), "East London") {
		t.Fatalf("unit string = %q", u.String())
	}
}

func TestBuildTromboneEra(t *testing.T) {
	s, err := BuildTromboneEra()
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Treated) != 8 || len(s.Donors) < 10 {
		t.Fatalf("units: %d treated, %d donors", len(s.Treated), len(s.Donors))
	}
	// Pre-join, every unit trombones: propagation to content is
	// intercontinental even for Johannesburg users.
	rib, err := bgp.Compute(context.Background(), parallel.Pool{}, s.Topo, nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, u := range s.AllUnits() {
		src, _ := s.UserPoP(u)
		dst, err := rib.NearestPoP(src, BigContent)
		if err != nil {
			t.Fatalf("%v: %v", u, err)
		}
		p, err := rib.Forward(src, dst)
		if err != nil {
			t.Fatal(err)
		}
		if p.PropagationMs() < 50 {
			t.Fatalf("unit %v does not trombone: %.1f ms via %v", u, p.PropagationMs(), p.ASPath)
		}
	}
	// Post-join, a treated unit reaches the JNB cache locally.
	if _, err := s.Topo.JoinIXP(s.IXPName, 328745); err != nil {
		t.Fatal(err)
	}
	rib2, _ := bgp.Compute(context.Background(), parallel.Pool{}, s.Topo, nil)
	src, _ := s.Topo.FindPoP(328745, "Johannesburg")
	dst, err := rib2.NearestPoP(src, BigContent)
	if err != nil {
		t.Fatal(err)
	}
	p, err := rib2.Forward(src, dst)
	if err != nil {
		t.Fatal(err)
	}
	if p.PropagationMs() > 10 {
		t.Fatalf("post-join path still trombones: %.1f ms", p.PropagationMs())
	}
}
