// Castings: the world features an experiment's estimand needs, named as
// data instead of hard-coded constants in runner bodies. A canned world
// fills the casts its builder knows make sense; a generated world derives
// them from its topology; a world without a given cast simply leaves it
// nil, and runners that need it refuse with ErrCastingMissing — a typed,
// actionable error instead of nonsense numbers on the wrong world.
package scenario

import (
	"errors"
	"fmt"

	"sisyphus/internal/netsim/topo"
)

// ErrCastingMissing is wrapped by every refusal to run an experiment on a
// world lacking a required cast. Callers (the serve layer in particular)
// detect it with errors.Is to distinguish "this world cannot answer that
// question" from malformed input.
var ErrCastingMissing = errors.New("scenario: world casting missing")

// LinkRef names a link by its AS endpoints plus the index among the links
// realizing that adjacency, the same coordinates experiments already use
// (rel.Links[a][b][i]). Endpoint order is as the referring cast reads it;
// Resolve accepts either orientation because adjacency is undirected.
type LinkRef struct {
	A, B  topo.ASN
	Index int
}

func (lr LinkRef) String() string {
	return fmt.Sprintf("AS%d–AS%d/%d", lr.A, lr.B, lr.Index)
}

// Resolve maps the reference onto a concrete link ID through the AS-level
// adjacency summary.
func (lr LinkRef) Resolve(rel *topo.ASRelationships) (topo.LinkID, error) {
	ids := rel.Links[lr.A][lr.B]
	if lr.Index < 0 || lr.Index >= len(ids) {
		return 0, fmt.Errorf("scenario: link %s: adjacency has %d link(s)", lr, len(ids))
	}
	return ids[lr.Index], nil
}

// EyeballCast is the multihomed access network the §3-style route-choice
// experiments (confounding, counterfactual, familyknob, instrument, and the
// /query frame) observe: one access AS with two transit providers, the city
// its users measure from, and the content-side uplink both egress routes
// cross (the shared bottleneck the counterfactual replays congestion on).
type EyeballCast struct {
	ASN       topo.ASN
	City      string
	Primary   topo.ASN
	Alternate topo.ASN
	// SharedUplink is a content-side link on the path regardless of which
	// transit the eyeball egresses through.
	SharedUplink LinkRef
}

// MLabCast is the measurement-platform casting: a user AS and city, the
// city hosting the platform's server sites (the server ASes themselves are
// World.MLabServerASNs), and the uplink the self-selection story congests.
type MLabCast struct {
	UserASN         topo.ASN
	UserCity        string
	ServerCity      string
	CongestedUplink LinkRef
}

// OutageCast is the postmortem casting: dashboard-loud congestion links
// that did NOT cause the outage (Surge, with Surge[0] the one the
// correlational triage fixates on) and the provider ASes whose links to the
// measurement destination the outage actually cuts.
type OutageCast struct {
	Surge        []LinkRef
	CutProviders []topo.ASN
}

// FailureCandidate is one named link in the exposure-vs-impact sweep.
type FailureCandidate struct {
	Name string
	Link LinkRef
}

// RequireEyeball returns the eyeball cast or a typed refusal.
func (s *World) RequireEyeball() (EyeballCast, error) {
	if s.Eyeball == nil {
		return EyeballCast{}, fmt.Errorf("%w: no multihomed-eyeball cast (needs an access AS with two transit providers; southafrica has one, generated worlds need multihome>0)", ErrCastingMissing)
	}
	return *s.Eyeball, nil
}

// RequireMLab returns the platform cast or a typed refusal. Two distinct
// server ASes are part of the contract: randomized assignment must be able
// to shift AS paths.
func (s *World) RequireMLab() (MLabCast, error) {
	if s.MLab == nil || len(s.MLabServerASNs) < 2 {
		return MLabCast{}, fmt.Errorf("%w: no measurement-platform cast (needs two server-host ASes plus a user AS; southafrica has one, generated worlds need content>=2)", ErrCastingMissing)
	}
	return *s.MLab, nil
}

// RequireOutage returns the postmortem cast or a typed refusal.
func (s *World) RequireOutage() (OutageCast, error) {
	if s.Outage == nil || len(s.Outage.Surge) == 0 || len(s.Outage.CutProviders) == 0 {
		return OutageCast{}, fmt.Errorf("%w: no outage cast (needs surge links and content providers to cut; southafrica and generated worlds have one)", ErrCastingMissing)
	}
	return *s.Outage, nil
}

// RequireFailureCandidates returns the exposure sweep's candidate list or a
// typed refusal. Two candidates are the floor for a ranking to disagree
// about.
func (s *World) RequireFailureCandidates() ([]FailureCandidate, error) {
	if len(s.FailureCandidates) < 2 {
		return nil, fmt.Errorf("%w: fewer than two failure candidates to rank (southafrica and generated worlds cast them)", ErrCastingMissing)
	}
	return append([]FailureCandidate(nil), s.FailureCandidates...), nil
}

// forkOutage deep-copies the (small) outage cast.
func forkOutage(o *OutageCast) *OutageCast {
	if o == nil {
		return nil
	}
	return &OutageCast{
		Surge:        append([]LinkRef(nil), o.Surge...),
		CutProviders: append([]topo.ASN(nil), o.CutProviders...),
	}
}

func forkEyeball(e *EyeballCast) *EyeballCast {
	if e == nil {
		return nil
	}
	c := *e
	return &c
}

func forkMLab(m *MLabCast) *MLabCast {
	if m == nil {
		return nil
	}
	c := *m
	return &c
}

// validateCastings checks every present cast against the topology, so no
// constructor hands out a world whose casts point at ASes, cities, or links
// it does not contain.
func (s *World) validateCastings(op string) error {
	var rel *topo.ASRelationships
	relOf := func() (*topo.ASRelationships, error) {
		if rel != nil {
			return rel, nil
		}
		var err error
		rel, err = s.Topo.Relationships()
		return rel, err
	}
	checkLink := func(what string, lr LinkRef) error {
		r, err := relOf()
		if err != nil {
			return fmt.Errorf("scenario: %s: %s: %w", op, what, err)
		}
		if _, err := lr.Resolve(r); err != nil {
			return fmt.Errorf("scenario: %s: %s: %w", op, what, err)
		}
		return nil
	}
	if e := s.Eyeball; e != nil {
		if _, err := s.Topo.FindPoP(e.ASN, e.City); err != nil {
			return fmt.Errorf("scenario: %s: eyeball cast: %w", op, err)
		}
		for _, asn := range []topo.ASN{e.Primary, e.Alternate} {
			if _, err := s.Topo.AS(asn); err != nil {
				return fmt.Errorf("scenario: %s: eyeball cast: %w", op, err)
			}
		}
		if err := checkLink("eyeball cast shared uplink", e.SharedUplink); err != nil {
			return err
		}
	}
	if m := s.MLab; m != nil {
		if _, err := s.Topo.FindPoP(m.UserASN, m.UserCity); err != nil {
			return fmt.Errorf("scenario: %s: mlab cast: %w", op, err)
		}
		for _, asn := range s.MLabServerASNs {
			if _, err := s.Topo.FindPoP(asn, m.ServerCity); err != nil {
				return fmt.Errorf("scenario: %s: mlab cast: %w", op, err)
			}
		}
		if err := checkLink("mlab cast congested uplink", m.CongestedUplink); err != nil {
			return err
		}
	}
	if o := s.Outage; o != nil {
		for _, lr := range o.Surge {
			if err := checkLink("outage cast surge", lr); err != nil {
				return err
			}
		}
		for _, asn := range o.CutProviders {
			if _, err := s.Topo.AS(asn); err != nil {
				return fmt.Errorf("scenario: %s: outage cast: %w", op, err)
			}
		}
	}
	for _, fc := range s.FailureCandidates {
		if fc.Name == "" {
			return fmt.Errorf("scenario: %s: failure candidate %s has no name", op, fc.Link)
		}
		if err := checkLink("failure candidate "+fc.Name, fc.Link); err != nil {
			return err
		}
	}
	return nil
}
