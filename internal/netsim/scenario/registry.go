package scenario

import (
	"fmt"

	"sisyphus/internal/netsim/topo"
)

// Scenario ids for the artifact layer: every world the suite can build has
// a stable string name that participates in artifact keys.
const (
	// SouthAfricaID names the Table 1 world (BuildSouthAfrica).
	SouthAfricaID = "southafrica"
	// TromboneEraID names the historical trombone-era world
	// (BuildTromboneEra).
	TromboneEraID = "tromboneera"
)

// Build constructs the named scenario from scratch. It is the single
// registry the artifact layer builds worlds through: the id is part of the
// artifact key, so two consumers naming the same id share one build.
func Build(id string) (*SouthAfrica, error) {
	switch id {
	case SouthAfricaID:
		return BuildSouthAfrica()
	case TromboneEraID:
		return BuildTromboneEra()
	default:
		return nil, fmt.Errorf("scenario: unknown scenario id %q", id)
	}
}

// IDs lists the registered scenario ids.
func IDs() []string { return []string{SouthAfricaID, TromboneEraID} }

// Fork returns a deep copy of the scenario: the topology is cloned (so IXP
// joins and link flaps stay private to the copy) and every slice is copied.
// Required by the artifact store's copy-on-read rule.
func (s *SouthAfrica) Fork() *SouthAfrica {
	out := &SouthAfrica{
		Topo:           s.Topo.Clone(),
		IXPName:        s.IXPName,
		IXPPrefix:      s.IXPPrefix,
		ContentASNs:    append([]topo.ASN(nil), s.ContentASNs...),
		Treated:        append([]Unit(nil), s.Treated...),
		TreatedASNs:    append([]topo.ASN(nil), s.TreatedASNs...),
		Donors:         append([]Unit(nil), s.Donors...),
		MLabServerASNs: append([]topo.ASN(nil), s.MLabServerASNs...),
	}
	return out
}
