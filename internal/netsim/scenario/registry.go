package scenario

import (
	"fmt"

	"sisyphus/internal/netsim/topo"
)

// Scenario ids for the artifact layer: every world the suite can build has
// a stable string name that participates in artifact keys.
const (
	// SouthAfricaID names the Table 1 world (BuildSouthAfrica).
	SouthAfricaID = "southafrica"
	// TromboneEraID names the historical trombone-era world
	// (BuildTromboneEra).
	TromboneEraID = "tromboneera"
)

// Build constructs the named scenario from scratch. It is the single
// registry the artifact layer builds worlds through: the id is part of the
// artifact key, so two consumers naming the same id share one build.
func Build(id string) (*SouthAfrica, error) {
	switch id {
	case SouthAfricaID:
		return BuildSouthAfrica()
	case TromboneEraID:
		return BuildTromboneEra()
	default:
		return nil, fmt.Errorf("scenario: unknown scenario id %q", id)
	}
}

// IDs lists the registered scenario ids.
func IDs() []string { return []string{SouthAfricaID, TromboneEraID} }

// Freeze marks the scenario immutable: the underlying topology freezes, so
// subsequent Forks get copy-on-write clones that share the whole structure
// until their first mutation. The artifact store calls this once after a
// successful build, before any fork is handed out.
func (s *SouthAfrica) Freeze() { s.Topo.Freeze() }

// Frozen reports whether Freeze has been called.
func (s *SouthAfrica) Frozen() bool { return s.Topo.Frozen() }

// SizeBytes estimates the scenario's resident size for the artifact store's
// byte bound: the topology dominates; the casting lists ride on a small flat
// per-entry cost. An estimate, not an accounting — the LRU only needs
// relative magnitudes.
func (s *SouthAfrica) SizeBytes() int64 {
	const perUnit = 40 // Unit struct + slice slot
	const perASN = 8
	n := s.Topo.SizeBytes()
	n += int64(len(s.Treated)+len(s.Donors)) * perUnit
	n += int64(len(s.ContentASNs)+len(s.TreatedASNs)+len(s.MLabServerASNs)) * perASN
	return n
}

// Fork returns an independent copy of the scenario: the topology is cloned
// (so IXP joins and link flaps stay private to the copy) and every slice is
// copied. On a frozen scenario the topology clone is pointer-cheap —
// copy-on-write — so the fork costs only the small casting slices.
// Required by the artifact store's copy-on-read rule.
func (s *SouthAfrica) Fork() *SouthAfrica {
	out := &SouthAfrica{
		Topo:           s.Topo.Clone(),
		IXPName:        s.IXPName,
		IXPPrefix:      s.IXPPrefix,
		ContentASNs:    append([]topo.ASN(nil), s.ContentASNs...),
		Treated:        append([]Unit(nil), s.Treated...),
		TreatedASNs:    append([]topo.ASN(nil), s.TreatedASNs...),
		Donors:         append([]Unit(nil), s.Donors...),
		MLabServerASNs: append([]topo.ASN(nil), s.MLabServerASNs...),
	}
	return out
}
