package scenario

import (
	"fmt"
	"sort"
	"strings"
	"sync"
)

// Scenario ids for the artifact layer: every world the suite can build has
// a stable string name that participates in artifact keys.
const (
	// SouthAfricaID names the Table 1 world (BuildSouthAfrica).
	SouthAfricaID = "southafrica"
	// TromboneEraID names the historical trombone-era world
	// (BuildTromboneEra).
	TromboneEraID = "tromboneera"
)

// BuilderFunc constructs a world from scratch. Builders must be pure: two
// calls return equal worlds, because the id is an artifact-key coordinate
// and everyone naming it shares one build.
type BuilderFunc func() (*World, error)

// reg is the world registry: id → builder. Canned worlds self-register in
// init; generated worlds register through RegisterGen when their spec is
// first parsed. Guarded by a mutex because experiments Build concurrently
// while a sweep driver may still be registering gen ids.
var reg = struct {
	sync.RWMutex
	builders map[string]BuilderFunc
}{builders: make(map[string]BuilderFunc)}

// Register adds a world builder under id. Registering an empty id, a nil
// builder, or a duplicate id panics: registration happens at init/startup
// time, where a conflict is a programming error, not a runtime condition.
func Register(id string, b BuilderFunc) {
	if id == "" {
		panic("scenario: Register with empty id")
	}
	if b == nil {
		panic("scenario: Register with nil builder for " + id)
	}
	reg.Lock()
	defer reg.Unlock()
	if _, dup := reg.builders[id]; dup {
		panic("scenario: duplicate world id " + id)
	}
	reg.builders[id] = b
}

// Build constructs the named world from scratch through the registry. It is
// the single entry point the artifact layer builds worlds through: the id
// is part of the artifact key, so two consumers naming the same id share
// one build. Unknown ids error with the full known-id list plus the gen/
// grammar, so a typo'd -scenario flag diagnoses itself.
func Build(id string) (*World, error) {
	reg.RLock()
	b, ok := reg.builders[id]
	reg.RUnlock()
	if !ok {
		hint := ""
		if strings.HasPrefix(id, GenIDPrefix) {
			hint = "; generated ids must be registered first by their gen: spec (RegisterGen / the -scenarios flag)"
		}
		return nil, fmt.Errorf("scenario: unknown scenario id %q (known: %s; generated worlds: %s%s)",
			id, strings.Join(IDs(), ", "), GenGrammar, hint)
	}
	s, err := b()
	if err != nil {
		return nil, fmt.Errorf("scenario: build %s: %w", id, err)
	}
	if err := s.validate("build " + id); err != nil {
		return nil, err
	}
	return s, nil
}

// IDs lists the registered scenario ids, sorted — the two canned worlds
// plus every generated world registered so far.
func IDs() []string {
	reg.RLock()
	defer reg.RUnlock()
	out := make([]string, 0, len(reg.builders))
	for id := range reg.builders {
		out = append(out, id)
	}
	sort.Strings(out)
	return out
}

// Registered reports whether id has a registered builder.
func Registered(id string) bool {
	reg.RLock()
	defer reg.RUnlock()
	_, ok := reg.builders[id]
	return ok
}

func init() {
	Register(SouthAfricaID, BuildSouthAfrica)
	Register(TromboneEraID, BuildTromboneEra)
}
