// The two canned seed worlds: BuildSouthAfrica (the Table 1 world) and
// BuildTromboneEra (the historical counterpart). Both self-register in the
// world registry under their stable ids.
package scenario

import (
	"fmt"

	"sisyphus/internal/netsim/topo"
)

// Transit / backbone ASNs in the scenario.
const (
	EuroBackbone topo.ASN = 1299
	ZATransitA   topo.ASN = 5400
	ZATransitB   topo.ASN = 5500
	BigContent   topo.ASN = 4001
	VideoCDN     topo.ASN = 4002
	MLabHostA    topo.ASN = 64500
	MLabHostB    topo.ASN = 64501
)

// BuildSouthAfrica constructs the scenario topology. The IXP starts with
// the content networks as members; access networks join later via
// engine.EvJoinIXP (the treatment).
func BuildSouthAfrica() (*World, error) {
	const ixpName = "NAPAfrica-JNB"
	const ixpPrefix = "196.60.8."

	b := topo.NewBuilder(nil).
		// Backbone and domestic transit.
		AddAS(EuroBackbone, "EuroBackbone", topo.Transit, "London", "Johannesburg").
		AddAS(ZATransitA, "ZA-Transit-A", topo.Transit, "Johannesburg", "Cape Town", "Durban").
		AddAS(ZATransitB, "ZA-Transit-B", topo.Transit, "Johannesburg", "East London", "Polokwane", "Bloemfontein").
		// Content networks.
		AddAS(BigContent, "BigContent", topo.Content, "Johannesburg", "Durban", "London").
		AddAS(VideoCDN, "VideoCDN", topo.Content, "Johannesburg", "Cape Town").
		// M-Lab server hosts.
		AddAS(MLabHostA, "MLab-Host-A", topo.Content, "Johannesburg").
		AddAS(MLabHostB, "MLab-Host-B", topo.Content, "Johannesburg").
		// Transit fabric: domestic transits buy from the backbone and peer
		// with each other in Johannesburg, keeping domestic paths domestic.
		Connect(ZATransitA, "Johannesburg", topo.CustomerOf, EuroBackbone, "Johannesburg",
			topo.WithBaseUtil(0.4), topo.WithCapacity(100000)).
		Connect(ZATransitB, "Johannesburg", topo.CustomerOf, EuroBackbone, "Johannesburg",
			topo.WithBaseUtil(0.38), topo.WithCapacity(100000)).
		Connect(ZATransitA, "Johannesburg", topo.PeerWith, ZATransitB, "Johannesburg",
			topo.WithBaseUtil(0.42), topo.WithCapacity(50000)).
		// Content homing: BigContent buys from Transit-A (Johannesburg and
		// Durban) and from the backbone (both London and Johannesburg, so
		// backbone customers stay domestic).
		Connect(BigContent, "Johannesburg", topo.CustomerOf, ZATransitA, "Johannesburg",
			topo.WithBaseUtil(0.42), topo.WithCapacity(100000)).
		Connect(BigContent, "Durban", topo.CustomerOf, ZATransitA, "Durban",
			topo.WithBaseUtil(0.4), topo.WithCapacity(50000)).
		Connect(BigContent, "London", topo.CustomerOf, EuroBackbone, "London",
			topo.WithBaseUtil(0.4), topo.WithCapacity(200000)).
		Connect(BigContent, "Johannesburg", topo.CustomerOf, EuroBackbone, "Johannesburg",
			topo.WithBaseUtil(0.45), topo.WithCapacity(100000)).
		// VideoCDN buys from Transit-B.
		Connect(VideoCDN, "Johannesburg", topo.CustomerOf, ZATransitB, "Johannesburg",
			topo.WithBaseUtil(0.4), topo.WithCapacity(100000)).
		Connect(VideoCDN, "Cape Town", topo.CustomerOf, ZATransitA, "Cape Town",
			topo.WithBaseUtil(0.4), topo.WithCapacity(50000)).
		// M-Lab hosts.
		Connect(MLabHostA, "Johannesburg", topo.CustomerOf, ZATransitA, "Johannesburg",
			topo.WithBaseUtil(0.35), topo.WithCapacity(20000)).
		Connect(MLabHostB, "Johannesburg", topo.CustomerOf, ZATransitB, "Johannesburg",
			topo.WithBaseUtil(0.3), topo.WithCapacity(20000)).
		AddIXP(ixpName, "Johannesburg", ixpPrefix)

	// Treated access networks: the Table 1 ASNs. Every joining AS needs a
	// Johannesburg PoP (that is where the exchange is).
	type accessDef struct {
		asn      topo.ASN
		homeCity string
		upstream topo.ASN
		upCity   string
		util     float64
	}
	treatedDefs := []accessDef{
		{3741, "East London", ZATransitB, "East London", 0.45},
		{37053, "Cape Town", ZATransitA, "Cape Town", 0.38},
		{37611, "Edenvale", ZATransitA, "Johannesburg", 0.42},
		{37680, "Durban", ZATransitA, "Durban", 0.35},
		{327966, "Polokwane", ZATransitB, "Polokwane", 0.5},
		{328622, "eMuziwezinto", ZATransitB, "Johannesburg", 0.4},
		{328745, "Johannesburg", ZATransitB, "Johannesburg", 0.42},
	}
	for _, d := range treatedDefs {
		cities := []string{d.homeCity}
		if d.homeCity != "Johannesburg" {
			cities = append(cities, "Johannesburg")
		}
		b.AddAS(d.asn, fmt.Sprintf("Access-%d", d.asn), topo.Access, cities...)
		b.Connect(d.asn, d.homeCity, topo.CustomerOf, d.upstream, d.upCity,
			topo.WithBaseUtil(d.util), topo.WithCapacity(10000))
	}
	// 3741 is additionally multihomed to Transit-A in Johannesburg (it has
	// two Table 1 units and more route diversity).
	b.Connect(3741, "Johannesburg", topo.CustomerOf, ZATransitA, "Johannesburg",
		topo.WithBaseUtil(0.5), topo.WithCapacity(10000))

	// Donor access networks: never join the IXP.
	donorDefs := []accessDef{
		{16637, "Pretoria", ZATransitA, "Johannesburg", 0.42},
		{29975, "Cape Town", ZATransitA, "Cape Town", 0.38},
		{36874, "Johannesburg", ZATransitB, "Johannesburg", 0.45},
		{37457, "Durban", ZATransitA, "Durban", 0.4},
		{327700, "Bloemfontein", ZATransitB, "Bloemfontein", 0.5},
		{328111, "Pretoria", ZATransitB, "Johannesburg", 0.42},
		{37168, "Cape Town", ZATransitA, "Cape Town", 0.45},
		{36994, "East London", ZATransitB, "East London", 0.42},
		{327999, "Polokwane", ZATransitB, "Polokwane", 0.5},
		{328333, "Johannesburg", ZATransitA, "Johannesburg", 0.38},
		{328444, "Durban", ZATransitA, "Durban", 0.45},
		{328555, "Edenvale", ZATransitA, "Johannesburg", 0.42},
		{329001, "Johannesburg", ZATransitA, "Johannesburg", 0.4},
		{329002, "Cape Town", ZATransitA, "Cape Town", 0.42},
		{329003, "Durban", ZATransitA, "Durban", 0.38},
		{329004, "Polokwane", ZATransitB, "Polokwane", 0.45},
		{329005, "East London", ZATransitB, "East London", 0.4},
		{329006, "Pretoria", ZATransitB, "Johannesburg", 0.45},
	}
	for _, d := range donorDefs {
		b.AddAS(d.asn, fmt.Sprintf("Donor-%d", d.asn), topo.Access, d.homeCity)
		b.Connect(d.asn, d.homeCity, topo.CustomerOf, d.upstream, d.upCity,
			topo.WithBaseUtil(d.util), topo.WithCapacity(10000))
	}

	t, err := b.Build()
	if err != nil {
		return nil, err
	}
	// Content networks are founding exchange members.
	for _, c := range []topo.ASN{BigContent, VideoCDN} {
		if _, err := t.JoinIXP(ixpName, c); err != nil {
			return nil, err
		}
	}

	s := &World{
		Topo:        t,
		IXPName:     ixpName,
		IXPPrefix:   ixpPrefix,
		ContentASNs: []topo.ASN{BigContent, VideoCDN},
		Treated: []Unit{
			{3741, "East London"},
			{3741, "Johannesburg"},
			{37053, "Cape Town"},
			{37611, "Edenvale"},
			{37680, "Durban"},
			{327966, "Polokwane"},
			{328622, "eMuziwezinto"},
			{328745, "Johannesburg"},
		},
		TreatedASNs:    []topo.ASN{3741, 37053, 37611, 37680, 327966, 328622, 328745},
		MLabServerASNs: []topo.ASN{MLabHostA, MLabHostB},
		// Castings: the world features the non-Table-1 experiments need,
		// exactly the constants their runner bodies used to hard-code.
		Eyeball: &EyeballCast{
			ASN: 3741, City: "East London",
			Primary: ZATransitA, Alternate: ZATransitB,
			SharedUplink: LinkRef{A: BigContent, B: ZATransitA, Index: 0},
		},
		MLab: &MLabCast{
			UserASN: 328745, UserCity: "Johannesburg", ServerCity: "Johannesburg",
			CongestedUplink: LinkRef{A: MLabHostB, B: ZATransitB, Index: 0},
		},
		Outage: &OutageCast{
			Surge: []LinkRef{
				{A: ZATransitA, B: ZATransitB, Index: 0},
				{A: ZATransitA, B: EuroBackbone, Index: 0},
			},
			CutProviders: []topo.ASN{ZATransitA, EuroBackbone},
		},
		FailureCandidates: []FailureCandidate{
			{Name: "TransitA–Backbone (JNB)", Link: LinkRef{A: ZATransitA, B: EuroBackbone, Index: 0}},
			{Name: "TransitB–Backbone (JNB)", Link: LinkRef{A: ZATransitB, B: EuroBackbone, Index: 0}},
			{Name: "TransitA–TransitB peering", Link: LinkRef{A: ZATransitA, B: ZATransitB, Index: 0}},
			{Name: "BigContent–TransitA (JNB)", Link: LinkRef{A: BigContent, B: ZATransitA, Index: 0}},
			{Name: "BigContent–TransitA (DUR)", Link: LinkRef{A: BigContent, B: ZATransitA, Index: 1}},
			// Single-homed access tails: tiny exposure, total impact.
			{Name: "Donor16637 access", Link: LinkRef{A: 16637, B: ZATransitA, Index: 0}},
			{Name: "Donor327700 access", Link: LinkRef{A: 327700, B: ZATransitB, Index: 0}},
		},
	}
	for _, d := range donorDefs {
		s.Donors = append(s.Donors, Unit{d.asn, d.homeCity})
	}
	return s, nil
}

// BuildTromboneEra constructs the historical counterpart of the Table 1
// world: the era before domestic interconnection, when South African
// networks reached even local content by tromboning through Europe. The
// content network has no domestic transit and no local peering — only a
// London uplink plus a cache at the Johannesburg exchange. Joining the IXP
// in this world collapses RTT by two orders of magnitude, which is why the
// "IXPs cut latency" belief formed; Table 1 measures the same intervention
// after the low-hanging fruit was gone.
func BuildTromboneEra() (*World, error) {
	const ixpName = "NAPAfrica-JNB"
	const ixpPrefix = "196.60.8."

	b := topo.NewBuilder(nil).
		AddAS(EuroBackbone, "EuroBackbone", topo.Transit, "London", "Johannesburg").
		AddAS(ZATransitA, "ZA-Transit-A", topo.Transit, "Johannesburg", "Cape Town", "Durban").
		AddAS(ZATransitB, "ZA-Transit-B", topo.Transit, "Johannesburg", "East London", "Polokwane", "Bloemfontein").
		AddAS(BigContent, "BigContent", topo.Content, "London", "Johannesburg").
		Connect(ZATransitA, "Johannesburg", topo.CustomerOf, EuroBackbone, "Johannesburg",
			topo.WithBaseUtil(0.45), topo.WithCapacity(20000)).
		Connect(ZATransitB, "Johannesburg", topo.CustomerOf, EuroBackbone, "Johannesburg",
			topo.WithBaseUtil(0.42), topo.WithCapacity(20000)).
		// The content network's ONLY uplink is in London: no domestic
		// transit, no local peering. All South African demand trombones.
		Connect(BigContent, "London", topo.CustomerOf, EuroBackbone, "London",
			topo.WithBaseUtil(0.4), topo.WithCapacity(200000)).
		AddIXP(ixpName, "Johannesburg", ixpPrefix)

	type accessDef struct {
		asn      topo.ASN
		homeCity string
		upstream topo.ASN
		upCity   string
		util     float64
	}
	treatedDefs := []accessDef{
		{3741, "East London", ZATransitB, "East London", 0.45},
		{37053, "Cape Town", ZATransitA, "Cape Town", 0.38},
		{37611, "Edenvale", ZATransitA, "Johannesburg", 0.42},
		{37680, "Durban", ZATransitA, "Durban", 0.35},
		{327966, "Polokwane", ZATransitB, "Polokwane", 0.5},
		{328622, "eMuziwezinto", ZATransitB, "Johannesburg", 0.4},
		{328745, "Johannesburg", ZATransitB, "Johannesburg", 0.42},
	}
	for _, d := range treatedDefs {
		cities := []string{d.homeCity}
		if d.homeCity != "Johannesburg" {
			cities = append(cities, "Johannesburg")
		}
		b.AddAS(d.asn, fmt.Sprintf("Access-%d", d.asn), topo.Access, cities...)
		b.Connect(d.asn, d.homeCity, topo.CustomerOf, d.upstream, d.upCity,
			topo.WithBaseUtil(d.util), topo.WithCapacity(5000))
	}
	donorDefs := []accessDef{
		{16637, "Pretoria", ZATransitA, "Johannesburg", 0.42},
		{29975, "Cape Town", ZATransitA, "Cape Town", 0.38},
		{36874, "Johannesburg", ZATransitB, "Johannesburg", 0.45},
		{37457, "Durban", ZATransitA, "Durban", 0.4},
		{327700, "Bloemfontein", ZATransitB, "Bloemfontein", 0.5},
		{328111, "Pretoria", ZATransitB, "Johannesburg", 0.42},
		{37168, "Cape Town", ZATransitA, "Cape Town", 0.45},
		{36994, "East London", ZATransitB, "East London", 0.42},
		{327999, "Polokwane", ZATransitB, "Polokwane", 0.5},
		{328333, "Johannesburg", ZATransitA, "Johannesburg", 0.38},
		{328444, "Durban", ZATransitA, "Durban", 0.45},
		{328555, "Edenvale", ZATransitA, "Johannesburg", 0.42},
		{329001, "Johannesburg", ZATransitA, "Johannesburg", 0.4},
		{329002, "Cape Town", ZATransitA, "Cape Town", 0.42},
		{329003, "Durban", ZATransitA, "Durban", 0.38},
		{329004, "Polokwane", ZATransitB, "Polokwane", 0.45},
		{329005, "East London", ZATransitB, "East London", 0.4},
		{329006, "Pretoria", ZATransitB, "Johannesburg", 0.45},
	}
	for _, d := range donorDefs {
		b.AddAS(d.asn, fmt.Sprintf("Donor-%d", d.asn), topo.Access, d.homeCity)
		b.Connect(d.asn, d.homeCity, topo.CustomerOf, d.upstream, d.upCity,
			topo.WithBaseUtil(d.util), topo.WithCapacity(5000))
	}

	t, err := b.Build()
	if err != nil {
		return nil, err
	}
	if _, err := t.JoinIXP(ixpName, BigContent); err != nil {
		return nil, err
	}
	s := &World{
		Topo:        t,
		IXPName:     ixpName,
		IXPPrefix:   ixpPrefix,
		ContentASNs: []topo.ASN{BigContent},
		Treated: []Unit{
			{3741, "East London"},
			{3741, "Johannesburg"},
			{37053, "Cape Town"},
			{37611, "Edenvale"},
			{37680, "Durban"},
			{327966, "Polokwane"},
			{328622, "eMuziwezinto"},
			{328745, "Johannesburg"},
		},
		TreatedASNs: []topo.ASN{3741, 37053, 37611, 37680, 327966, 328622, 328745},
	}
	for _, d := range donorDefs {
		s.Donors = append(s.Donors, Unit{d.asn, d.homeCity})
	}
	return s, nil
}
