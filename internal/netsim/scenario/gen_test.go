package scenario

import (
	"strings"
	"testing"

	"sisyphus/internal/netsim/topo"
)

func TestGenSpecIDStable(t *testing.T) {
	a, b := DefaultGenSpec(), DefaultGenSpec()
	if a.ID() != b.ID() {
		t.Fatalf("equal specs hash differently: %s vs %s", a.ID(), b.ID())
	}
	if !strings.HasPrefix(a.ID(), GenIDPrefix) {
		t.Fatalf("id %q lacks prefix %q", a.ID(), GenIDPrefix)
	}
	if len(a.ID()) != len(GenIDPrefix)+16 {
		t.Fatalf("id %q not %d hex chars of hash", a.ID(), 16)
	}
	c := DefaultGenSpec()
	c.Seed++
	if c.ID() == a.ID() {
		t.Fatal("different seeds, same id")
	}
	d := DefaultGenSpec()
	d.Config.Access++
	if d.ID() == a.ID() {
		t.Fatal("different configs, same id")
	}
}

func TestRegisterGenIdempotentAndBuildable(t *testing.T) {
	sp := DefaultGenSpec()
	id1, err := RegisterGen(sp)
	if err != nil {
		t.Fatal(err)
	}
	id2, err := RegisterGen(sp)
	if err != nil {
		t.Fatalf("re-registering the same spec: %v", err)
	}
	if id1 != id2 {
		t.Fatalf("idempotent registration returned %s then %s", id1, id2)
	}
	if got, ok := GenSpecFor(id1); !ok || got != sp {
		t.Fatalf("GenSpecFor(%s) = %+v, %v", id1, got, ok)
	}
	s, err := Build(id1)
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Treated) != sp.Config.Treated {
		t.Fatalf("treated units = %d, want %d", len(s.Treated), sp.Config.Treated)
	}
	if len(s.Donors) != sp.Config.Access-sp.Config.Treated {
		t.Fatalf("donors = %d, want %d", len(s.Donors), sp.Config.Access-sp.Config.Treated)
	}
	if len(s.ContentASNs) != sp.Config.Content {
		t.Fatalf("content = %d, want %d", len(s.ContentASNs), sp.Config.Content)
	}
	if s.MeasureDst() != topo.ASN(4000) {
		t.Fatalf("measurement destination = %d, want the first content AS", s.MeasureDst())
	}
	// The casting is coherent: treated ASes hold a PoP at the exchange (so
	// they can join), content networks are founding members, and treated and
	// donor pools are disjoint.
	x, err := s.Topo.IXP(s.IXPName)
	if err != nil {
		t.Fatal(err)
	}
	for _, u := range s.Treated {
		if _, err := s.Topo.FindPoP(u.ASN, x.City); err != nil {
			t.Fatalf("treated %v cannot reach the exchange: %v", u, err)
		}
	}
	for _, c := range s.ContentASNs {
		if _, ok := s.Topo.IXPMemberIndex(s.IXPName, c); !ok {
			t.Fatalf("content AS%d not a founding member", c)
		}
	}
	treatedSet := map[topo.ASN]bool{}
	for _, u := range s.Treated {
		treatedSet[u.ASN] = true
	}
	for _, u := range s.Donors {
		if treatedSet[u.ASN] {
			t.Fatalf("donor %v is also treated", u)
		}
	}
}

func TestBuildGeneratedDeterministic(t *testing.T) {
	sp := DefaultGenSpec()
	a, err := BuildGenerated(sp)
	if err != nil {
		t.Fatal(err)
	}
	b, err := BuildGenerated(sp)
	if err != nil {
		t.Fatal(err)
	}
	ea, eb := a.Export(), b.Export()
	if len(ea.Treated) != len(eb.Treated) || len(ea.Donors) != len(eb.Donors) {
		t.Fatal("same spec cast differently")
	}
	for i := range ea.Treated {
		if ea.Treated[i] != eb.Treated[i] {
			t.Fatalf("treated[%d] differs: %v vs %v", i, ea.Treated[i], eb.Treated[i])
		}
	}
}

func TestValidateGenSpecRejections(t *testing.T) {
	base := DefaultGenSpec()
	cases := []struct {
		name   string
		mutate func(*GenSpec)
	}{
		{"no IXP", func(sp *GenSpec) { sp.Config.IXP = false }},
		{"no content", func(sp *GenSpec) { sp.Config.Content = 0 }},
		{"no treated", func(sp *GenSpec) { sp.Config.Treated = 0 }},
		{"too few donors", func(sp *GenSpec) { sp.Config.Treated = sp.Config.Access - 2 }},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			sp := base
			c.mutate(&sp)
			if _, err := RegisterGen(sp); err == nil {
				t.Fatal("invalid spec registered")
			}
			if _, err := BuildGenerated(sp); err == nil {
				t.Fatal("invalid spec built")
			}
		})
	}
}

func TestParseGenSpec(t *testing.T) {
	sp, err := ParseGenSpec("gen:")
	if err != nil {
		t.Fatal(err)
	}
	if sp != DefaultGenSpec() {
		t.Fatalf("bare gen: = %+v, want defaults", sp)
	}

	sp, err = ParseGenSpec("gen:access=20+treated=5+seed=9+cities=16+multihome=0.25+ixpcity=City-002")
	if err != nil {
		t.Fatal(err)
	}
	want := DefaultGenSpec()
	want.Config.Access = 20
	want.Config.Treated = 5
	want.Config.Cities = 16
	want.Config.MultihomeProb = 0.25
	want.Config.IXPCity = "City-002"
	want.Seed = 9
	if sp != want {
		t.Fatalf("parsed %+v, want %+v", sp, want)
	}

	for _, bad := range []string{
		"notgen:",          // wrong prefix
		"gen:access",       // no value
		"gen:=5",           // no key
		"gen:access=x",     // non-numeric count
		"gen:access=-1",    // negative count
		"gen:peer=1.5",     // probability out of range
		"gen:seed=-3",      // negative seed
		"gen:bogus=1",      // unknown key
		"gen:access=5+",    // trailing separator
		"gen:access=5,b=1", // comma is not the pair separator
	} {
		if _, err := ParseGenSpec(bad); err == nil {
			t.Fatalf("spec %q accepted", bad)
		} else if !strings.Contains(err.Error(), "gen:") {
			t.Fatalf("spec %q error %q does not carry the grammar", bad, err)
		}
	}
}

func TestResolveID(t *testing.T) {
	if id, err := ResolveID(SouthAfricaID); err != nil || id != SouthAfricaID {
		t.Fatalf("known id resolve = %q, %v", id, err)
	}
	id, err := ResolveID("gen:access=9+treated=2+seed=11")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(id, GenIDPrefix) {
		t.Fatalf("gen spec resolved to %q", id)
	}
	if !Registered(id) {
		t.Fatalf("resolved id %q not registered", id)
	}
	if _, err := ResolveID("nosuch"); err == nil {
		t.Fatal("unknown token resolved")
	}
	if _, err := ResolveID("gen:bogus=1"); err == nil {
		t.Fatal("malformed gen spec resolved")
	}
}

func TestGeneratedWorldCodecRoundTrip(t *testing.T) {
	sp := DefaultGenSpec()
	s, err := BuildGenerated(sp)
	if err != nil {
		t.Fatal(err)
	}
	back, err := Import(s.Export())
	if err != nil {
		t.Fatal(err)
	}
	if got, want := back.Export(), s.Export(); !exportsEqual(got, want) {
		t.Fatal("generated world changed across Export/Import")
	}
	if back.MeasureDst() != s.MeasureDst() {
		t.Fatal("measurement destination changed across the codec")
	}
}

// exportsEqual compares two scenario exports field by field (topology via
// its own export equality).
func exportsEqual(a, b *Export) bool {
	if a.IXPName != b.IXPName || a.IXPPrefix != b.IXPPrefix {
		return false
	}
	eqU := func(x, y []Unit) bool {
		if len(x) != len(y) {
			return false
		}
		for i := range x {
			if x[i] != y[i] {
				return false
			}
		}
		return true
	}
	eqA := func(x, y []topo.ASN) bool {
		if len(x) != len(y) {
			return false
		}
		for i := range x {
			if x[i] != y[i] {
				return false
			}
		}
		return true
	}
	return eqU(a.Treated, b.Treated) && eqU(a.Donors, b.Donors) &&
		eqA(a.ContentASNs, b.ContentASNs) && eqA(a.TreatedASNs, b.TreatedASNs) &&
		eqA(a.MLabServerASNs, b.MLabServerASNs)
}
