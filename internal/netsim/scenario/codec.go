package scenario

import (
	"fmt"

	"sisyphus/internal/netsim/topo"
)

// Export is the serialized form of a built scenario: the topology's export
// plus the casting lists. Slices keep their in-memory order (treated then
// donor iteration order is part of the suite's determinism), and there are
// no maps, so a deterministic encoder yields identical bytes for identical
// worlds.
type Export struct {
	Topo              *topo.Export
	IXPName           string
	IXPPrefix         string
	ContentASNs       []topo.ASN
	Treated           []Unit
	TreatedASNs       []topo.ASN
	Donors            []Unit
	MLabServerASNs    []topo.ASN
	Eyeball           *EyeballCast
	MLab              *MLabCast
	Outage            *OutageCast
	FailureCandidates []FailureCandidate
}

// Export snapshots the scenario into its serialized form (read-only; safe
// on frozen worlds).
func (s *World) Export() *Export {
	return &Export{
		Topo:              s.Topo.Export(),
		IXPName:           s.IXPName,
		IXPPrefix:         s.IXPPrefix,
		ContentASNs:       append([]topo.ASN(nil), s.ContentASNs...),
		Treated:           append([]Unit(nil), s.Treated...),
		TreatedASNs:       append([]topo.ASN(nil), s.TreatedASNs...),
		Donors:            append([]Unit(nil), s.Donors...),
		MLabServerASNs:    append([]topo.ASN(nil), s.MLabServerASNs...),
		Eyeball:           forkEyeball(s.Eyeball),
		MLab:              forkMLab(s.MLab),
		Outage:            forkOutage(s.Outage),
		FailureCandidates: append([]FailureCandidate(nil), s.FailureCandidates...),
	}
}

// Import reconstructs a scenario from its serialized form. Topology
// validation does the heavy lifting; on top of it the casting lists are
// checked to reference known units so a corrupted payload cannot smuggle in
// units the world cannot measure from. The result is unfrozen, exactly like
// a fresh build.
func Import(e *Export) (*World, error) {
	if e == nil {
		return nil, fmt.Errorf("scenario: import: nil export")
	}
	t, err := topo.Import(e.Topo)
	if err != nil {
		return nil, fmt.Errorf("scenario: import: %w", err)
	}
	s := &World{
		Topo:              t,
		IXPName:           e.IXPName,
		IXPPrefix:         e.IXPPrefix,
		ContentASNs:       append([]topo.ASN(nil), e.ContentASNs...),
		Treated:           append([]Unit(nil), e.Treated...),
		TreatedASNs:       append([]topo.ASN(nil), e.TreatedASNs...),
		Donors:            append([]Unit(nil), e.Donors...),
		MLabServerASNs:    append([]topo.ASN(nil), e.MLabServerASNs...),
		Eyeball:           forkEyeball(e.Eyeball),
		MLab:              forkMLab(e.MLab),
		Outage:            forkOutage(e.Outage),
		FailureCandidates: append([]FailureCandidate(nil), e.FailureCandidates...),
	}
	if err := s.validate("import"); err != nil {
		return nil, err
	}
	return s, nil
}
