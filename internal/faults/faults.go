// Package faults is a deterministic, seed-driven measurement-fault injector.
// It wraps the probe/engine boundary and reproduces the failure modes real
// measurement platforms suffer — probe timeouts, traceroutes truncated at a
// random hop, vantage points that die and revive (outage windows), skewed
// measurement timestamps, and duplicated or reordered records — so the
// estimator pipeline can be certified to degrade gracefully rather than
// silently bias (the chaos experiment, E15).
//
// Determinism contract (the "RNG pre-split rule for faults"): every fault
// decision is drawn from a fresh RNG stream keyed only by
// ⟨injector seed, fault kind, measurement sequence number⟩ — never from a
// shared stream — so a given configuration is bit-reproducible regardless of
// call order, worker count, or which other faults fired. And because the
// injector owns all of its streams, consulting it never advances the
// prober's measurement-noise RNG: a configuration with every rate at zero is
// bit-identical to running with no injector at all (enforced by
// TestFaultRateZeroBitIdentity).
package faults

import (
	"fmt"
	"sort"

	"sisyphus/internal/mathx"
	"sisyphus/internal/netsim/topo"
	"sisyphus/internal/probe"
)

// Config sets per-fault intensities. The zero value disables every fault.
type Config struct {
	// Seed keys every fault stream; two injectors with equal configs make
	// identical decisions.
	Seed uint64
	// DropRate is the per-attempt probability that a probe times out.
	DropRate float64
	// TruncateRate is the probability a traceroute loses its tail hops.
	TruncateRate float64
	// TimestampSkewStdHours is the standard deviation of per-record clock
	// skew, in simulated hours (vantage clocks drift; panels bin by time).
	TimestampSkewStdHours float64
	// DuplicateRate is the probability a delivered record arrives twice.
	DuplicateRate float64
	// ReorderRate is the probability a record is held back and delivered
	// after later records (out-of-order ingestion).
	ReorderRate float64
	// OutagesPerKiloHour is the expected number of outages per vantage per
	// 1000 simulated hours. Zero disables outage windows.
	OutagesPerKiloHour float64
	// OutageMeanHours is the mean outage duration (default 24 when
	// outages are enabled).
	OutageMeanHours float64
}

// Enabled reports whether any fault can fire under this configuration.
func (c Config) Enabled() bool {
	return c.DropRate > 0 || c.TruncateRate > 0 || c.TimestampSkewStdHours > 0 ||
		c.DuplicateRate > 0 || c.ReorderRate > 0 || c.OutagesPerKiloHour > 0
}

// Scaled returns the canonical fault mix at the given intensity in [0, 1] —
// the grid the chaos experiment sweeps. Intensity 0 is the zero Config
// (bit-identical to no injector); intensity 1 is a catastrophically lossy
// platform.
func Scaled(seed uint64, intensity float64) Config {
	if intensity <= 0 {
		return Config{Seed: seed}
	}
	if intensity > 1 {
		intensity = 1
	}
	return Config{
		Seed:                  seed,
		DropRate:              0.5 * intensity,
		TruncateRate:          0.5 * intensity,
		TimestampSkewStdHours: 2 * intensity,
		DuplicateRate:         0.25 * intensity,
		ReorderRate:           0.25 * intensity,
		OutagesPerKiloHour:    15 * intensity,
		OutageMeanHours:       36,
	}
}

// String renders the configuration compactly for experiment tables.
func (c Config) String() string {
	return fmt.Sprintf("drop=%.2f trunc=%.2f skew=%.1fh dup=%.2f reorder=%.2f outages=%.1f/kh",
		c.DropRate, c.TruncateRate, c.TimestampSkewStdHours, c.DuplicateRate, c.ReorderRate, c.OutagesPerKiloHour)
}

// Fault kinds salt the per-measurement RNG streams so the drop decision for
// probe #7 is independent of its truncation or skew draw.
const (
	kindDrop uint64 = iota + 1
	kindTruncate
	kindSkew
	kindDeliver
	kindOutage
)

// Injector implements probe.FaultHook plus the ingestion-side faults
// (duplicate, reorder) applied through Deliver. It is not safe for
// concurrent use; give each world its own injector, exactly like each world
// gets its own prober.
type Injector struct {
	cfg     Config
	outages map[topo.PoPID]*outageSchedule
	pending []*probe.Measurement // records held back by reorder
	dupID   int                  // ID allocator for duplicate clones
	stats   Stats
}

// Stats counts the faults an injector actually fired — the quantities the
// run-trace observability layer surfaces per experiment. Reading them never
// advances any fault stream.
type Stats struct {
	// Drops counts probe attempts failed by the drop stream; OutageFailures
	// counts attempts failed because the vantage was inside an outage window.
	Drops, OutageFailures int64
	// Truncations counts traceroutes that lost tail hops.
	Truncations int64
	// Duplicates and Reorders count ingestion-side deliveries cloned or held
	// back out of order.
	Duplicates, Reorders int64
}

// Stats returns the counts of faults fired so far.
func (in *Injector) Stats() Stats { return in.stats }

// New builds an injector for the configuration.
func New(cfg Config) *Injector {
	return &Injector{cfg: cfg, outages: make(map[topo.PoPID]*outageSchedule), dupID: dupIDBase}
}

// dupIDBase starts the duplicate-clone ID space far above any prober-issued
// ID so clones never collide with originals in a Store.
const dupIDBase = 1 << 30

// Config returns the injector's configuration.
func (in *Injector) Config() Config { return in.cfg }

// stream returns the pre-split RNG stream for one fault decision. The seed
// mix folds the fault kind and the per-measurement keys into the injector
// seed; mathx.NewRNG then SplitMix-expands it, so streams for adjacent keys
// are statistically independent.
func (in *Injector) stream(kind, a, b uint64) *mathx.RNG {
	h := in.cfg.Seed
	for _, v := range [...]uint64{kind, a, b} {
		h ^= v + 0x9e3779b97f4a7c15 + (h << 6) + (h >> 2)
	}
	return mathx.NewRNG(h)
}

// AttemptFails implements probe.FaultHook: the attempt fails if the vantage
// is inside an outage window or the per-attempt drop stream fires.
func (in *Injector) AttemptFails(src topo.PoPID, hour float64, seq, attempt int) bool {
	if in.VantageDown(src, hour) {
		in.stats.OutageFailures++
		return true
	}
	if in.cfg.DropRate <= 0 {
		return false
	}
	if in.stream(kindDrop, uint64(seq), uint64(attempt)).Bernoulli(in.cfg.DropRate) {
		in.stats.Drops++
		return true
	}
	return false
}

// MutateMeasurement implements probe.FaultHook: truncate the traceroute at
// a random hop and skew the record timestamp, each from its own stream.
func (in *Injector) MutateMeasurement(m *probe.Measurement, seq int) {
	if in.cfg.TruncateRate > 0 && len(m.Hops) > 1 {
		r := in.stream(kindTruncate, uint64(seq), 0)
		if r.Bernoulli(in.cfg.TruncateRate) {
			keep := 1 + r.Intn(len(m.Hops)-1) // always keep hop 1, never all
			m.Hops = m.Hops[:keep]
			m.Truncated = true
			in.stats.Truncations++
		}
	}
	if in.cfg.TimestampSkewStdHours > 0 {
		r := in.stream(kindSkew, uint64(seq), 0)
		m.Hour += r.Normal(0, in.cfg.TimestampSkewStdHours)
		if m.Hour < 0 {
			m.Hour = 0
		}
	}
}

// Deliver passes completed records through the ingestion faults: with
// probability ReorderRate a record is held back and delivered after the next
// batch; with probability DuplicateRate a delivered record is cloned (the
// clone gets a fresh ID and DuplicateOf set, mirroring a retransmitted
// upload landing twice). Call Flush at end of campaign to drain held
// records. With both rates zero the input slice is returned untouched.
func (in *Injector) Deliver(ms ...*probe.Measurement) []*probe.Measurement {
	if in.cfg.DuplicateRate <= 0 && in.cfg.ReorderRate <= 0 {
		return ms
	}
	held := in.pending
	in.pending = nil
	out := make([]*probe.Measurement, 0, len(ms)+len(held))
	for _, m := range ms {
		r := in.stream(kindDeliver, uint64(m.ID), 0)
		if in.cfg.ReorderRate > 0 && r.Bernoulli(in.cfg.ReorderRate) {
			in.pending = append(in.pending, m)
			in.stats.Reorders++
			continue
		}
		out = append(out, m)
		if in.cfg.DuplicateRate > 0 && r.Bernoulli(in.cfg.DuplicateRate) {
			dup := *m
			in.dupID++
			dup.ID = in.dupID
			dup.DuplicateOf = m.ID
			out = append(out, &dup)
			in.stats.Duplicates++
		}
	}
	// Held records land after this batch — strictly out of order.
	return append(out, held...)
}

// Flush drains any records still held by the reorder buffer.
func (in *Injector) Flush() []*probe.Measurement {
	out := in.pending
	in.pending = nil
	return out
}

// Window is one closed-open outage interval [Start, End) in hours.
type Window struct{ Start, End float64 }

// outageSchedule lazily generates a vantage point's alternating up/down
// process from the vantage's own pre-split stream. Generation is monotone
// in time and consumes the stream in a fixed order, so membership queries
// are deterministic regardless of query order.
type outageSchedule struct {
	rng     *mathx.RNG
	windows []Window
	cursor  float64 // schedule is materialized up to here
}

func (in *Injector) schedule(src topo.PoPID) *outageSchedule {
	sc, ok := in.outages[src]
	if !ok {
		sc = &outageSchedule{rng: in.stream(kindOutage, uint64(src), 0)}
		in.outages[src] = sc
	}
	return sc
}

func (in *Injector) extend(sc *outageSchedule, hour float64) {
	meanUp := 1000 / in.cfg.OutagesPerKiloHour
	meanDown := in.cfg.OutageMeanHours
	if meanDown <= 0 {
		meanDown = 24
	}
	for sc.cursor <= hour {
		up := sc.rng.Exponential(1 / meanUp)
		down := sc.rng.Exponential(1 / meanDown)
		sc.windows = append(sc.windows, Window{Start: sc.cursor + up, End: sc.cursor + up + down})
		sc.cursor += up + down
	}
}

// VantageDown reports whether the vantage point is inside an outage window
// at the given hour.
func (in *Injector) VantageDown(src topo.PoPID, hour float64) bool {
	if in.cfg.OutagesPerKiloHour <= 0 {
		return false
	}
	sc := in.schedule(src)
	in.extend(sc, hour)
	// First window ending after hour is the only candidate.
	i := sort.Search(len(sc.windows), func(i int) bool { return sc.windows[i].End > hour })
	return i < len(sc.windows) && sc.windows[i].Start <= hour
}

// OutageWindows materializes the vantage's outage windows up to horizon —
// exposed for tests and for coverage reports that want to distinguish
// "vantage was dead" gaps from sampling gaps.
func (in *Injector) OutageWindows(src topo.PoPID, horizon float64) []Window {
	if in.cfg.OutagesPerKiloHour <= 0 {
		return nil
	}
	sc := in.schedule(src)
	in.extend(sc, horizon)
	var out []Window
	for _, w := range sc.windows {
		if w.Start < horizon {
			out = append(out, w)
		}
	}
	return out
}
