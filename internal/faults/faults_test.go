package faults

import (
	"reflect"
	"testing"

	"sisyphus/internal/netsim/engine"
	"sisyphus/internal/netsim/scenario"
	"sisyphus/internal/netsim/topo"
	"sisyphus/internal/probe"
)

func testProber(t *testing.T) (*scenario.World, *probe.Prober) {
	t.Helper()
	s, err := scenario.BuildSouthAfrica()
	if err != nil {
		t.Fatal(err)
	}
	e := engine.New(s.Topo, 5, engine.Config{})
	return s, probe.NewProber(e, 6)
}

// TestFaultRateZeroProbeBitIdentity is the injector's core contract: an
// injector whose every rate is zero must be indistinguishable — field for
// field — from running with no injector installed. Consulting the hook must
// never advance the prober's own noise RNG.
func TestFaultRateZeroProbeBitIdentity(t *testing.T) {
	sA, pA := testProber(t) // no hook
	sB, pB := testProber(t) // zero-rate injector
	pB.Hook = New(Config{Seed: 12345})
	pB.Retry = probe.RetryPolicy{MaxAttempts: 3}

	srcA, _ := sA.Topo.FindPoP(328745, "Johannesburg")
	srcB, _ := sB.Topo.FindPoP(328745, "Johannesburg")
	for i := 0; i < 25; i++ {
		a, err := pA.SpeedTest(srcA, scenario.BigContent, probe.IntentBaseline, "t")
		if err != nil {
			t.Fatal(err)
		}
		b, err := pB.SpeedTest(srcB, scenario.BigContent, probe.IntentBaseline, "t")
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(a, b) {
			t.Fatalf("probe %d diverged under zero-rate injector:\n  none: %+v\n  zero: %+v", i, a, b)
		}
	}
}

// TestStreamsDeterministicAcrossInstances: equal configs make equal
// decisions; the streams live in the config, not the instance.
func TestStreamsDeterministicAcrossInstances(t *testing.T) {
	cfg := Config{Seed: 9, DropRate: 0.3, OutagesPerKiloHour: 5, OutageMeanHours: 12}
	a, b := New(cfg), New(cfg)
	src := topo.PoPID(17)
	for seq := 0; seq < 200; seq++ {
		hour := float64(seq) * 3.5
		for attempt := 1; attempt <= 3; attempt++ {
			if a.AttemptFails(src, hour, seq, attempt) != b.AttemptFails(src, hour, seq, attempt) {
				t.Fatalf("seq %d attempt %d: equal configs disagreed", seq, attempt)
			}
		}
	}
	// A different seed must not reproduce the same decision sequence.
	c := New(Config{Seed: 10, DropRate: 0.3})
	same := true
	for seq := 0; seq < 200; seq++ {
		if a.AttemptFails(src, 0, seq, 1) != c.AttemptFails(src, 0, seq, 1) {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced identical drop streams")
	}
}

// TestDropDecisionsIndependentOfCallOrder: pre-split streams mean the answer
// for ⟨seq, attempt⟩ is fixed before any call happens — querying in reverse
// order gives the same answers.
func TestDropDecisionsIndependentOfCallOrder(t *testing.T) {
	cfg := Config{Seed: 4, DropRate: 0.4}
	forward := New(cfg)
	backward := New(cfg)
	src := topo.PoPID(1)
	const n = 100
	var fw [n]bool
	for seq := 0; seq < n; seq++ {
		fw[seq] = forward.AttemptFails(src, 0, seq, 1)
	}
	for seq := n - 1; seq >= 0; seq-- {
		if backward.AttemptFails(src, 0, seq, 1) != fw[seq] {
			t.Fatalf("seq %d: decision depends on call order", seq)
		}
	}
}

func TestOutageWindows(t *testing.T) {
	cases := []struct {
		name    string
		cfg     Config
		horizon float64
	}{
		{"sparse short", Config{Seed: 1, OutagesPerKiloHour: 2, OutageMeanHours: 6}, 5000},
		{"dense long", Config{Seed: 2, OutagesPerKiloHour: 20, OutageMeanHours: 48}, 2000},
		{"default duration", Config{Seed: 3, OutagesPerKiloHour: 10}, 3000},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			in := New(c.cfg)
			src := topo.PoPID(5)
			ws := in.OutageWindows(src, c.horizon)
			if len(ws) == 0 {
				t.Fatalf("no outage windows in %v hours at %v/kh", c.horizon, c.cfg.OutagesPerKiloHour)
			}
			prevEnd := 0.0
			for i, w := range ws {
				if w.End <= w.Start {
					t.Fatalf("window %d degenerate: %+v", i, w)
				}
				if w.Start < prevEnd {
					t.Fatalf("window %d overlaps predecessor: %+v after end %v", i, w, prevEnd)
				}
				prevEnd = w.End
			}
			// Membership: VantageDown agrees with the materialized windows at
			// interior points, boundaries, and gaps ([Start, End) semantics).
			w := ws[0]
			mid := (w.Start + w.End) / 2
			checks := []struct {
				hour string
				at   float64
				down bool
			}{
				{"before first window", w.Start / 2, false},
				{"window start", w.Start, true},
				{"window interior", mid, true},
				{"window end (exclusive)", w.End, false},
			}
			for _, chk := range checks {
				if got := in.VantageDown(src, chk.at); got != chk.down {
					t.Fatalf("%s (hour %v): VantageDown = %v, want %v", chk.hour, chk.at, got, chk.down)
				}
			}
		})
	}
}

// TestOutageScheduleQueryOrderInvariance: membership must not depend on the
// order of prior queries, since probers ask for scattered hours.
func TestOutageScheduleQueryOrderInvariance(t *testing.T) {
	cfg := Config{Seed: 6, OutagesPerKiloHour: 8, OutageMeanHours: 24}
	src := topo.PoPID(3)
	hours := []float64{900, 10, 450, 2000, 0, 1999.5, 33.3}

	eager := New(cfg)
	eager.OutageWindows(src, 2500) // materialize everything first
	lazy := New(cfg)               // extends incrementally, out of order
	for _, h := range hours {
		if eager.VantageDown(src, h) != lazy.VantageDown(src, h) {
			t.Fatalf("hour %v: lazy and eager schedules disagree", h)
		}
	}
	// Two vantages get independent schedules from their own streams.
	other := topo.PoPID(4)
	allSame := true
	for _, w := range eager.OutageWindows(src, 2500) {
		if eager.VantageDown(other, (w.Start+w.End)/2) != true {
			allSame = false
		}
	}
	if allSame {
		t.Fatal("two vantages share an outage schedule")
	}
}

func TestVantageDownDisabledWithoutOutages(t *testing.T) {
	in := New(Config{Seed: 1, DropRate: 0.9})
	if in.VantageDown(topo.PoPID(1), 100) {
		t.Fatal("outages fired with OutagesPerKiloHour = 0")
	}
	if ws := in.OutageWindows(topo.PoPID(1), 1000); ws != nil {
		t.Fatalf("windows materialized while disabled: %v", ws)
	}
}

func TestTruncateMutation(t *testing.T) {
	in := New(Config{Seed: 2, TruncateRate: 1})
	for seq := 0; seq < 50; seq++ {
		m := &probe.Measurement{Hops: make([]probe.HopRecord, 8)}
		in.MutateMeasurement(m, seq)
		if !m.Truncated {
			t.Fatalf("seq %d: TruncateRate 1 did not truncate", seq)
		}
		if len(m.Hops) < 1 || len(m.Hops) >= 8 {
			t.Fatalf("seq %d: kept %d of 8 hops; want 1..7", seq, len(m.Hops))
		}
	}
	// A single-hop trace can't lose its tail; it must pass untouched.
	one := &probe.Measurement{Hops: make([]probe.HopRecord, 1)}
	in.MutateMeasurement(one, 0)
	if one.Truncated || len(one.Hops) != 1 {
		t.Fatalf("single-hop trace mutated: %+v", one)
	}
}

func TestTimestampSkewClampsAtZero(t *testing.T) {
	in := New(Config{Seed: 3, TimestampSkewStdHours: 50})
	sawShift := false
	for seq := 0; seq < 100; seq++ {
		m := &probe.Measurement{Hour: 1}
		in.MutateMeasurement(m, seq)
		if m.Hour < 0 {
			t.Fatalf("seq %d: skew produced negative hour %v", seq, m.Hour)
		}
		if m.Hour != 1 {
			sawShift = true
		}
	}
	if !sawShift {
		t.Fatal("skew std 50h never moved a timestamp")
	}
}

func TestDeliverPassThroughWhenDisabled(t *testing.T) {
	in := New(Config{Seed: 1, DropRate: 0.5}) // dup/reorder both zero
	ms := []*probe.Measurement{{ID: 1}, {ID: 2}}
	out := in.Deliver(ms...)
	if len(out) != 2 || out[0] != ms[0] || out[1] != ms[1] {
		t.Fatalf("disabled Deliver did not pass records through untouched: %v", out)
	}
	if got := in.Flush(); len(got) != 0 {
		t.Fatalf("disabled Deliver held records: %v", got)
	}
}

func TestDeliverDuplicates(t *testing.T) {
	in := New(Config{Seed: 7, DuplicateRate: 1})
	ms := []*probe.Measurement{{ID: 10}, {ID: 11}}
	out := in.Deliver(ms...)
	if len(out) != 4 {
		t.Fatalf("DuplicateRate 1 delivered %d records from 2", len(out))
	}
	seen := map[int]bool{}
	for i, m := range out {
		if seen[m.ID] {
			t.Fatalf("record %d reuses ID %d", i, m.ID)
		}
		seen[m.ID] = true
	}
	for _, i := range []int{1, 3} {
		dup := out[i]
		if dup.DuplicateOf != out[i-1].ID {
			t.Fatalf("clone at %d has DuplicateOf %d, want %d", i, dup.DuplicateOf, out[i-1].ID)
		}
		if dup.ID < dupIDBase {
			t.Fatalf("clone ID %d inside the prober ID space", dup.ID)
		}
	}
	// Clones are copies: mutating one must not touch the original.
	out[1].Hour = 99
	if out[0].Hour == 99 {
		t.Fatal("duplicate aliases the original record")
	}
}

func TestDeliverReorderAndFlush(t *testing.T) {
	in := New(Config{Seed: 8, ReorderRate: 1})
	first := in.Deliver(&probe.Measurement{ID: 1}, &probe.Measurement{ID: 2})
	if len(first) != 0 {
		t.Fatalf("ReorderRate 1 should hold the whole first batch, delivered %v", first)
	}
	second := in.Deliver(&probe.Measurement{ID: 3})
	// Batch 2 is also held; batch 1's held records land after it — here that
	// means batch 1 arrives alone, strictly after its own scheduling round.
	if len(second) != 2 || second[0].ID != 1 || second[1].ID != 2 {
		ids := []int{}
		for _, m := range second {
			ids = append(ids, m.ID)
		}
		t.Fatalf("second batch delivered IDs %v, want held [1 2]", ids)
	}
	tail := in.Flush()
	if len(tail) != 1 || tail[0].ID != 3 {
		t.Fatalf("Flush returned %v, want the held record 3", tail)
	}
	if again := in.Flush(); len(again) != 0 {
		t.Fatalf("second Flush returned %v", again)
	}
}

func TestScaledGrid(t *testing.T) {
	if got := Scaled(5, 0); got != (Config{Seed: 5}) {
		t.Fatalf("Scaled(_, 0) = %+v, want bare seed", got)
	}
	if Scaled(5, 0).Enabled() {
		t.Fatal("intensity 0 must disable every fault")
	}
	half := Scaled(5, 0.5)
	full := Scaled(5, 1)
	if !half.Enabled() || !full.Enabled() {
		t.Fatal("positive intensity produced a disabled config")
	}
	if half.DropRate >= full.DropRate || half.OutagesPerKiloHour >= full.OutagesPerKiloHour {
		t.Fatal("fault rates must grow with intensity")
	}
	if over := Scaled(5, 3); over != full {
		t.Fatalf("intensity must clamp at 1: %+v vs %+v", over, full)
	}
}
