package dag

import (
	"strings"
	"testing"
	"testing/quick"

	"sisyphus/internal/mathx"
)

// paperGraph is the running example of §3 extended with the mechanisms the
// paper names: congestion C confounds route R and latency L; a speed test T
// is a collider of R and L; U is a latent business-policy driver of R.
func paperGraph() *Graph {
	return MustParse(`
		U [latent]
		C -> R; C -> L; R -> L
		R -> T; L -> T
		U -> R
	`)
}

func TestAddEdgeRejectsCycles(t *testing.T) {
	g := New()
	g.MustEdge("A", "B")
	g.MustEdge("B", "C")
	if err := g.AddEdge("C", "A"); err == nil {
		t.Fatal("cycle not rejected")
	}
	if err := g.AddEdge("A", "A"); err == nil {
		t.Fatal("self-loop not rejected")
	}
	// Graph unchanged by the failed adds.
	if g.HasEdge("C", "A") {
		t.Fatal("rejected edge was inserted")
	}
}

func TestAddEdgeIdempotent(t *testing.T) {
	g := New()
	g.MustEdge("A", "B")
	g.MustEdge("A", "B")
	if got := len(g.Edges()); got != 1 {
		t.Fatalf("edges = %d", got)
	}
}

func TestAncestorsDescendants(t *testing.T) {
	g := paperGraph()
	anc := g.Ancestors("T")
	want := []string{"C", "L", "R", "U"}
	if strings.Join(anc, ",") != strings.Join(want, ",") {
		t.Fatalf("ancestors(T) = %v", anc)
	}
	desc := g.Descendants("C")
	want = []string{"L", "R", "T"}
	if strings.Join(desc, ",") != strings.Join(want, ",") {
		t.Fatalf("descendants(C) = %v", desc)
	}
}

func TestTopologicalOrder(t *testing.T) {
	g := paperGraph()
	order := g.TopologicalOrder()
	if len(order) != 5 {
		t.Fatalf("order = %v", order)
	}
	pos := map[string]int{}
	for i, n := range order {
		pos[n] = i
	}
	for _, e := range g.Edges() {
		if pos[e[0]] >= pos[e[1]] {
			t.Fatalf("edge %v violates order %v", e, order)
		}
	}
}

func TestDSeparationRunningExample(t *testing.T) {
	g := paperGraph()
	// Chain/fork: R and L are d-connected unconditionally (direct edge).
	if g.DSeparated("R", "L", nil) {
		t.Fatal("R, L should be connected")
	}
	// U affects L only through R: cutting nothing, U-L connected.
	if g.DSeparated("U", "L", nil) {
		t.Fatal("U, L should be connected via R")
	}
	// Conditioning on R blocks the chain U -> R -> L but conditioning on the
	// collider T would re-open U — L; R alone is not enough because T stays
	// unconditioned: U ⊥ L | R holds here (U -> R -> L and U -> R <- C -> L:
	// second path has collider R, conditioned ⇒ opened! C -> L active.)
	if g.DSeparated("U", "L", []string{"R"}) {
		t.Fatal("conditioning on collider R opens U — C — L")
	}
	if !g.DSeparated("U", "L", []string{"R", "C"}) {
		t.Fatal("U ⊥ L | R, C should hold")
	}
	// Collider: R and L both cause T. R—L are adjacent so use U and C:
	// U -> R <- C: U ⊥ C unconditionally, but conditioning on R (collider)
	// or its descendant T opens the path.
	if !g.DSeparated("U", "C", nil) {
		t.Fatal("U ⊥ C should hold unconditionally")
	}
	if g.DSeparated("U", "C", []string{"R"}) {
		t.Fatal("conditioning on collider R should open U — C")
	}
	if g.DSeparated("U", "C", []string{"T"}) {
		t.Fatal("conditioning on collider descendant T should open U — C")
	}
}

func TestDSeparatedConventions(t *testing.T) {
	g := paperGraph()
	if g.DSeparated("R", "R", nil) {
		t.Fatal("a node is never separated from itself")
	}
	if !g.DSeparated("R", "L", []string{"R"}) {
		t.Fatal("conditioning on an endpoint separates it")
	}
}

// randomDAG builds a random DAG over n nodes; edge i->j allowed only for i<j.
func randomDAG(r *mathx.RNG, n int, p float64) *Graph {
	g := New()
	names := make([]string, n)
	for i := range names {
		names[i] = string(rune('A' + i))
		g.AddNode(names[i])
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if r.Bernoulli(p) {
				g.MustEdge(names[i], names[j])
			}
		}
	}
	return g
}

// TestDSeparationMatchesPathEnumeration cross-checks the Bayes-ball
// implementation against brute-force path blocking on random DAGs.
func TestDSeparationMatchesPathEnumeration(t *testing.T) {
	f := func(seed uint64) bool {
		r := mathx.NewRNG(seed)
		n := 3 + r.Intn(5) // 3..7 nodes
		g := randomDAG(r, n, 0.4)
		nodes := g.Nodes()
		x := nodes[r.Intn(n)]
		y := nodes[r.Intn(n)]
		if x == y {
			return true
		}
		var given []string
		for _, c := range nodes {
			if c != x && c != y && r.Bernoulli(0.3) {
				given = append(given, c)
			}
		}
		fast := g.DSeparated(x, y, given)
		slow := len(g.ActivePaths(x, y, given)) == 0
		return fast == slow
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestDSeparationSymmetric(t *testing.T) {
	f := func(seed uint64) bool {
		r := mathx.NewRNG(seed)
		g := randomDAG(r, 3+r.Intn(5), 0.4)
		nodes := g.Nodes()
		x := nodes[r.Intn(len(nodes))]
		y := nodes[r.Intn(len(nodes))]
		var given []string
		for _, c := range nodes {
			if c != x && c != y && r.Bernoulli(0.3) {
				given = append(given, c)
			}
		}
		return g.DSeparated(x, y, given) == g.DSeparated(y, x, given)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestBackdoorPathsRunningExample(t *testing.T) {
	g := MustParse("C -> R; C -> L; R -> L")
	bd := g.BackdoorPaths("R", "L")
	if len(bd) != 1 {
		t.Fatalf("backdoor paths = %v", bd)
	}
	if got := bd[0].String(); got != "R <- C -> L" {
		t.Fatalf("path = %q", got)
	}
}

func TestSatisfiesBackdoor(t *testing.T) {
	g := MustParse("C -> R; C -> L; R -> L")
	if g.SatisfiesBackdoor("R", "L", nil) {
		t.Fatal("empty set should not satisfy backdoor (C confounds)")
	}
	if !g.SatisfiesBackdoor("R", "L", []string{"C"}) {
		t.Fatal("{C} should satisfy backdoor")
	}
	// A descendant of treatment is never allowed.
	g2 := MustParse("C -> R; C -> L; R -> L; R -> M")
	if g2.SatisfiesBackdoor("R", "L", []string{"C", "M"}) {
		t.Fatal("descendant of treatment accepted")
	}
}

func TestMinimalAdjustmentSets(t *testing.T) {
	g := MustParse("C -> R; C -> L; R -> L")
	sets, err := g.MinimalAdjustmentSets("R", "L")
	if err != nil {
		t.Fatal(err)
	}
	if len(sets) != 1 || len(sets[0]) != 1 || sets[0][0] != "C" {
		t.Fatalf("sets = %v", sets)
	}
}

func TestMinimalAdjustmentSetsEmptyWhenNoConfounding(t *testing.T) {
	g := MustParse("R -> L; R -> M; M -> L")
	sets, err := g.MinimalAdjustmentSets("R", "L")
	if err != nil {
		t.Fatal(err)
	}
	if len(sets) != 1 || len(sets[0]) != 0 {
		t.Fatalf("want single empty set, got %v", sets)
	}
}

func TestMinimalAdjustmentSetsLatentConfounderFails(t *testing.T) {
	g := MustParse("U [latent]; U -> R; U -> L; R -> L")
	if _, err := g.MinimalAdjustmentSets("R", "L"); err == nil {
		t.Fatal("latent confounding should make backdoor adjustment impossible")
	}
}

func TestMinimalAdjustmentSetsAreMinimal(t *testing.T) {
	f := func(seed uint64) bool {
		r := mathx.NewRNG(seed)
		g := randomDAG(r, 3+r.Intn(4), 0.45)
		nodes := g.Nodes()
		x := nodes[r.Intn(len(nodes))]
		y := nodes[r.Intn(len(nodes))]
		if x == y {
			return true
		}
		sets, err := g.MinimalAdjustmentSets(x, y)
		if err != nil {
			return true // unidentifiable: fine
		}
		for _, s := range sets {
			if !g.SatisfiesBackdoor(x, y, s) {
				return false
			}
			// Every strict subset must fail (minimality).
			for drop := range s {
				sub := append(append([]string(nil), s[:drop]...), s[drop+1:]...)
				if g.SatisfiesBackdoor(x, y, sub) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

func TestConfounders(t *testing.T) {
	g := paperGraph()
	got := g.Confounders("R", "L")
	if strings.Join(got, ",") != "C" {
		t.Fatalf("confounders = %v", got)
	}
}

func TestFrontdoorCriterion(t *testing.T) {
	// Classic: U latent confounder of X,Y; X -> M -> Y. M is a frontdoor set.
	g := MustParse("U [latent]; U -> X; U -> Y; X -> M; M -> Y")
	if !g.SatisfiesFrontdoor("X", "Y", []string{"M"}) {
		t.Fatal("M should satisfy frontdoor")
	}
	// If U also hits M, condition (2) fails.
	g2 := MustParse("U [latent]; U -> X; U -> Y; U -> M; X -> M; M -> Y")
	if g2.SatisfiesFrontdoor("X", "Y", []string{"M"}) {
		t.Fatal("frontdoor should fail when confounder reaches mediator")
	}
	// A direct X -> Y edge bypasses the mediator set: condition (1) fails.
	g3 := MustParse("U [latent]; U -> X; U -> Y; X -> M; M -> Y; X -> Y")
	if g3.SatisfiesFrontdoor("X", "Y", []string{"M"}) {
		t.Fatal("frontdoor should fail with unintercepted directed path")
	}
}

func TestInstrumentsMaintenanceExample(t *testing.T) {
	// Scheduled maintenance Z forces a reroute R; latent congestion U
	// confounds R and L. Z is a valid instrument.
	g := MustParse("U [latent]; U -> R; U -> L; Z -> R; R -> L")
	ivs := g.Instruments("R", "L")
	if len(ivs) != 1 || ivs[0] != "Z" {
		t.Fatalf("instruments = %v", ivs)
	}
}

func TestInstrumentExclusionViolation(t *testing.T) {
	// A local-pref change Z that also shifts load W -> L violates exclusion
	// (the paper's invalid-instrument example).
	g := MustParse("U [latent]; U -> R; U -> L; Z -> R; Z -> W; W -> L; R -> L")
	if ivs := g.Instruments("R", "L"); len(ivs) != 0 {
		t.Fatalf("expected no valid instruments, got %v", ivs)
	}
	viol := g.ExclusionViolations("Z", "R", "L")
	if len(viol) == 0 {
		t.Fatal("expected at least one exclusion violation path")
	}
	found := false
	for _, p := range viol {
		if p.String() == "Z -> W -> L" {
			found = true
		}
	}
	if !found {
		t.Fatalf("violations = %v", viol)
	}
}

func TestConditionalInstruments(t *testing.T) {
	// Z is only a valid instrument after conditioning on observed S, which
	// confounds Z and L.
	g := MustParse("U [latent]; U -> R; U -> L; S -> Z; S -> L; Z -> R; R -> L")
	if ivs := g.Instruments("R", "L"); len(ivs) != 0 {
		t.Fatalf("unconditional instruments = %v, want none", ivs)
	}
	ivs := g.ConditionalInstruments("R", "L", []string{"S"})
	if len(ivs) != 1 || ivs[0] != "Z" {
		t.Fatalf("conditional instruments = %v", ivs)
	}
	// Conditioning on a descendant of treatment disqualifies the set.
	g.MustEdge("R", "D")
	if ivs := g.ConditionalInstruments("R", "L", []string{"S", "D"}); ivs != nil {
		t.Fatalf("descendant conditioning accepted: %v", ivs)
	}
}

func TestColliders(t *testing.T) {
	g := paperGraph()
	cols := g.Colliders()
	// R has parents C, U; L has parents C, R; T has parents L, R.
	if len(cols) != 3 {
		t.Fatalf("colliders = %v", cols)
	}
}

func TestSelectionBiasWarnings(t *testing.T) {
	// Route change R and performance L both trigger a test T; R, L otherwise
	// independent (no R -> L edge) — the paper's speed-test collider.
	g := MustParse("R -> T; L -> T")
	warn := g.SelectionBiasWarnings([]string{"T"})
	if len(warn) != 1 || warn[0].Mid != "T" {
		t.Fatalf("warnings = %v", warn)
	}
	if w := g.SelectionBiasWarnings(nil); len(w) != 0 {
		t.Fatalf("no conditioning should give no warnings, got %v", w)
	}
	// Conditioning on a descendant of the collider also warns.
	g.MustEdge("T", "T2")
	warn = g.SelectionBiasWarnings([]string{"T2"})
	if len(warn) != 1 {
		t.Fatalf("descendant warnings = %v", warn)
	}
}

func TestParseErrors(t *testing.T) {
	cases := []string{
		"A -> ",
		"A -> -> B",
		"A [bogus]",
		"A -> B; B -> A",
		"A B -> C",
	}
	for _, c := range cases {
		if _, err := Parse(c); err == nil {
			t.Fatalf("Parse(%q) should fail", c)
		}
	}
}

func TestParseChainsCommentsAndAttrs(t *testing.T) {
	g, err := Parse(`
		# the running example
		C -> R -> L
		C -> L
		U [latent]
		U -> R
	`)
	if err != nil {
		t.Fatal(err)
	}
	if !g.HasEdge("C", "R") || !g.HasEdge("R", "L") || !g.HasEdge("C", "L") {
		t.Fatal("chain edges missing")
	}
	if !g.IsLatent("U") {
		t.Fatal("latent attribute lost")
	}
}

func TestDOTOutput(t *testing.T) {
	g := MustParse("U [latent]; U -> R; R -> L")
	dot := g.DOT()
	for _, want := range []string{"digraph causal", `"U" [style=dashed]`, `"U" -> "R"`, `"R" -> "L"`} {
		if !strings.Contains(dot, want) {
			t.Fatalf("DOT missing %q:\n%s", want, dot)
		}
	}
}

func TestImpliedIndependencies(t *testing.T) {
	g := MustParse("C -> R; C -> L; R -> L; Z -> R")
	cis := g.ImpliedIndependencies()
	// Z ⊥ C and Z ⊥ L (given parents) should be implied.
	var have []string
	for _, ci := range cis {
		have = append(have, ci.String())
	}
	joined := strings.Join(have, " ; ")
	if !strings.Contains(joined, "C _||_ Z") {
		t.Fatalf("missing C ⊥ Z in %v", have)
	}
	// All implied CIs must actually hold per d-separation.
	for _, ci := range cis {
		if !g.DSeparated(ci.X, ci.Y, ci.Given) {
			t.Fatalf("claimed CI does not hold: %v", ci)
		}
	}
}

func TestCloneIsDeep(t *testing.T) {
	g := paperGraph()
	c := g.Clone()
	c.MustEdge("L", "Q")
	if g.Has("Q") {
		t.Fatal("clone mutation leaked into original")
	}
	c.SetLatent("C", true)
	if g.IsLatent("C") {
		t.Fatal("latent flag leaked into original")
	}
}

func TestRemoveEdge(t *testing.T) {
	g := MustParse("A -> B; B -> C")
	g.RemoveEdge("A", "B")
	if g.HasEdge("A", "B") {
		t.Fatal("edge not removed")
	}
	if !g.DSeparated("A", "C", nil) {
		t.Fatal("A should be separated from C after removal")
	}
}

func TestMarkovBlanket(t *testing.T) {
	g := paperGraph() // U->R, C->R, C->L, R->L, R->T, L->T
	// Blanket of R: parents {C, U}, children {L, T}, co-parents of L = {C},
	// co-parents of T = {L}.
	got := g.MarkovBlanket("R")
	want := []string{"C", "L", "T", "U"}
	if strings.Join(got, ",") != strings.Join(want, ",") {
		t.Fatalf("blanket(R) = %v want %v", got, want)
	}
	// Blanket property: R ⊥ (everything else) | blanket. Here "everything
	// else" is empty (all nodes are in the blanket), so check a bigger graph.
	g2 := MustParse("A -> B; B -> C; C -> D")
	if bl := g2.MarkovBlanket("B"); strings.Join(bl, ",") != "A,C" {
		t.Fatalf("blanket(B) = %v", bl)
	}
	if !g2.DSeparated("B", "D", g2.MarkovBlanket("B")) {
		t.Fatal("node not separated from non-blanket given blanket")
	}
	if got := New().MarkovBlanket("missing"); len(got) != 0 {
		t.Fatalf("blanket of unknown node = %v", got)
	}
}

func TestMarkovBlanketProperty(t *testing.T) {
	f := func(seed uint64) bool {
		r := mathx.NewRNG(seed)
		g := randomDAG(r, 4+r.Intn(4), 0.4)
		nodes := g.Nodes()
		x := nodes[r.Intn(len(nodes))]
		blanket := g.MarkovBlanket(x)
		inBlanket := map[string]bool{x: true}
		for _, b := range blanket {
			inBlanket[b] = true
		}
		for _, y := range nodes {
			if inBlanket[y] {
				continue
			}
			if !g.DSeparated(x, y, blanket) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}
