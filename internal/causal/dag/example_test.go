package dag_test

import (
	"fmt"

	"sisyphus/internal/causal/dag"
)

// The paper's running example: congestion C confounds the route change R
// and the latency L. The graph tells us what to adjust for.
func ExampleGraph_MinimalAdjustmentSets() {
	g := dag.MustParse("C -> R; C -> L; R -> L")
	sets, err := g.MinimalAdjustmentSets("R", "L")
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Println("backdoor paths:")
	for _, p := range g.BackdoorPaths("R", "L") {
		fmt.Println(" ", p)
	}
	fmt.Println("adjust for:", sets)
	// Output:
	// backdoor paths:
	//   R <- C -> L
	// adjust for: [[C]]
}

// Scheduled maintenance Z forces reroutes at times unrelated to the latent
// congestion U — a valid instrument. The graph machinery verifies both IV
// conditions.
func ExampleGraph_Instruments() {
	g := dag.MustParse("U [latent]; U -> R; U -> L; Z -> R; R -> L")
	fmt.Println("instruments for R → L:", g.Instruments("R", "L"))

	// A load-coupled policy flip fails the exclusion restriction:
	bad := dag.MustParse("U [latent]; U -> R; U -> L; U -> Z; Z -> R; R -> L")
	fmt.Println("load-coupled candidate:", bad.Instruments("R", "L"))
	for _, p := range bad.ExclusionViolations("Z", "R", "L") {
		fmt.Println("violation:", p)
	}
	// Output:
	// instruments for R → L: [Z]
	// load-coupled candidate: []
	// violation: Z <- U -> L
}

// Conditioning on "a speed test ran" — a collider of route changes and
// degradation — manufactures an association between its parents.
func ExampleGraph_SelectionBiasWarnings() {
	g := dag.MustParse("RouteChange -> TestRan; Degradation -> TestRan")
	for _, w := range g.SelectionBiasWarnings([]string{"TestRan"}) {
		fmt.Printf("conditioning on %s opens %s — %s\n", w.Mid, w.Left, w.Right)
	}
	// Output:
	// conditioning on TestRan opens Degradation — RouteChange
}

func ExampleGraph_DSeparated() {
	g := dag.MustParse("C -> R; C -> L; R -> L")
	fmt.Println(g.DSeparated("R", "L", nil))
	// C blocks nothing here because R → L is a direct edge; but in the
	// no-effect world the backdoor is all there is:
	g2 := dag.MustParse("C -> R; C -> L")
	fmt.Println(g2.DSeparated("R", "L", nil))
	fmt.Println(g2.DSeparated("R", "L", []string{"C"}))
	// Output:
	// false
	// false
	// true
}
