// Package dag implements causal directed acyclic graphs and the graphical
// identification machinery the paper calls for in §3–§4: d-separation,
// backdoor and frontdoor criteria, minimal adjustment sets, instrumental
// variable discovery, collider enumeration, and testable implications.
//
// It plays the role that Dagitty/DoWhy play in other domains ([48], [43] in
// the paper): a planning tool used *before* measurement to decide which
// effects are identifiable and what has to be observed or randomized.
package dag

import (
	"fmt"
	"sort"
)

// Node is a variable in a causal graph.
type Node struct {
	Name string
	// Latent marks variables that exist in the causal story but cannot be
	// measured (e.g. "business policy"). Latent nodes are excluded from
	// adjustment sets and instrument candidates.
	Latent bool
}

// Graph is a causal DAG. The zero value is not usable; call New.
// Graph maintains the acyclicity invariant: AddEdge rejects edges that would
// create a cycle, so any Graph reachable through the public API is a DAG.
type Graph struct {
	nodes    map[string]*Node
	order    []string // insertion order, for deterministic iteration
	parents  map[string]map[string]bool
	children map[string]map[string]bool
}

// New returns an empty causal graph.
func New() *Graph {
	return &Graph{
		nodes:    make(map[string]*Node),
		parents:  make(map[string]map[string]bool),
		children: make(map[string]map[string]bool),
	}
}

// AddNode adds a named observed variable. Adding an existing name is a no-op
// that preserves its current latency flag.
func (g *Graph) AddNode(name string) {
	if _, ok := g.nodes[name]; ok {
		return
	}
	g.nodes[name] = &Node{Name: name}
	g.order = append(g.order, name)
	g.parents[name] = make(map[string]bool)
	g.children[name] = make(map[string]bool)
}

// SetLatent marks name as unobservable. The node is created if absent.
func (g *Graph) SetLatent(name string, latent bool) {
	g.AddNode(name)
	g.nodes[name].Latent = latent
}

// IsLatent reports whether name is marked latent. Unknown names are not latent.
func (g *Graph) IsLatent(name string) bool {
	n, ok := g.nodes[name]
	return ok && n.Latent
}

// Has reports whether the graph contains the named node.
func (g *Graph) Has(name string) bool {
	_, ok := g.nodes[name]
	return ok
}

// Nodes returns all node names in insertion order.
func (g *Graph) Nodes() []string {
	return append([]string(nil), g.order...)
}

// ObservedNodes returns the names of all non-latent nodes in insertion order.
func (g *Graph) ObservedNodes() []string {
	var out []string
	for _, n := range g.order {
		if !g.nodes[n].Latent {
			out = append(out, n)
		}
	}
	return out
}

// AddEdge adds the causal edge from → to, creating missing nodes. It returns
// an error if the edge would create a cycle or a self-loop.
func (g *Graph) AddEdge(from, to string) error {
	if from == to {
		return fmt.Errorf("dag: self-loop on %q", from)
	}
	g.AddNode(from)
	g.AddNode(to)
	if g.parents[to][from] {
		return nil // already present
	}
	// A cycle would exist iff `from` is currently reachable from `to`.
	if g.reaches(to, from) {
		return fmt.Errorf("dag: edge %s -> %s would create a cycle", from, to)
	}
	g.parents[to][from] = true
	g.children[from][to] = true
	return nil
}

// MustEdge is AddEdge that panics on error; for static graph literals.
func (g *Graph) MustEdge(from, to string) {
	if err := g.AddEdge(from, to); err != nil {
		panic(err)
	}
}

// RemoveEdge deletes the edge from → to if present.
func (g *Graph) RemoveEdge(from, to string) {
	if g.parents[to] != nil {
		delete(g.parents[to], from)
	}
	if g.children[from] != nil {
		delete(g.children[from], to)
	}
}

// HasEdge reports whether the edge from → to exists.
func (g *Graph) HasEdge(from, to string) bool {
	return g.parents[to] != nil && g.parents[to][from]
}

// Parents returns the sorted parent names of name.
func (g *Graph) Parents(name string) []string { return sortedKeys(g.parents[name]) }

// Children returns the sorted child names of name.
func (g *Graph) Children(name string) []string { return sortedKeys(g.children[name]) }

// Edges returns all edges as [from, to] pairs in deterministic order.
func (g *Graph) Edges() [][2]string {
	var out [][2]string
	for _, from := range g.order {
		for _, to := range sortedKeys(g.children[from]) {
			out = append(out, [2]string{from, to})
		}
	}
	return out
}

// Clone returns a deep copy of the graph.
func (g *Graph) Clone() *Graph {
	out := New()
	for _, n := range g.order {
		out.AddNode(n)
		out.nodes[n].Latent = g.nodes[n].Latent
	}
	for _, e := range g.Edges() {
		out.parents[e[1]][e[0]] = true
		out.children[e[0]][e[1]] = true
	}
	return out
}

// reaches reports whether there is a directed path from a to b.
func (g *Graph) reaches(a, b string) bool {
	if a == b {
		return true
	}
	seen := map[string]bool{a: true}
	stack := []string{a}
	for len(stack) > 0 {
		n := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for c := range g.children[n] {
			if c == b {
				return true
			}
			if !seen[c] {
				seen[c] = true
				stack = append(stack, c)
			}
		}
	}
	return false
}

// Ancestors returns the set of strict ancestors of name, sorted.
func (g *Graph) Ancestors(name string) []string {
	return sortedKeys(g.ancestorSet(map[string]bool{name: true}, false))
}

// Descendants returns the set of strict descendants of name, sorted.
func (g *Graph) Descendants(name string) []string {
	seen := make(map[string]bool)
	stack := []string{name}
	for len(stack) > 0 {
		n := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for c := range g.children[n] {
			if !seen[c] {
				seen[c] = true
				stack = append(stack, c)
			}
		}
	}
	return sortedKeys(seen)
}

// ancestorSet returns the ancestors of every node in start. If inclusive,
// the start nodes themselves are included.
func (g *Graph) ancestorSet(start map[string]bool, inclusive bool) map[string]bool {
	seen := make(map[string]bool)
	var stack []string
	for n := range start {
		if inclusive {
			seen[n] = true
		}
		stack = append(stack, n)
	}
	for len(stack) > 0 {
		n := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for p := range g.parents[n] {
			if !seen[p] {
				seen[p] = true
				stack = append(stack, p)
			}
		}
	}
	return seen
}

// TopologicalOrder returns the node names in a topological order (parents
// before children), ties broken by insertion order.
func (g *Graph) TopologicalOrder() []string {
	indeg := make(map[string]int, len(g.order))
	for _, n := range g.order {
		indeg[n] = len(g.parents[n])
	}
	var queue []string
	for _, n := range g.order {
		if indeg[n] == 0 {
			queue = append(queue, n)
		}
	}
	var out []string
	for len(queue) > 0 {
		n := queue[0]
		queue = queue[1:]
		out = append(out, n)
		for _, c := range sortedKeys(g.children[n]) {
			indeg[c]--
			if indeg[c] == 0 {
				queue = append(queue, c)
			}
		}
	}
	return out
}

func sortedKeys(m map[string]bool) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

func toSet(xs []string) map[string]bool {
	m := make(map[string]bool, len(xs))
	for _, x := range xs {
		m[x] = true
	}
	return m
}

// MarkovBlanket returns the Markov blanket of a node: its parents, its
// children, and its children's other parents. Conditioning on the blanket
// renders the node independent of everything else in the graph — the
// minimal sufficient covariate set for predicting it.
func (g *Graph) MarkovBlanket(name string) []string {
	blanket := make(map[string]bool)
	for p := range g.parents[name] {
		blanket[p] = true
	}
	for c := range g.children[name] {
		blanket[c] = true
		for cp := range g.parents[c] {
			if cp != name {
				blanket[cp] = true
			}
		}
	}
	return sortedKeys(blanket)
}
