package dag

// DSeparated reports whether x and y are d-separated given the conditioning
// set. It implements the linear-time "reachable" procedure (Bayes-ball):
// y is d-separated from x given Z iff no active trail connects them.
//
// Conventions: if x == y they are never separated; members of the
// conditioning set are separated from everything (conditioning on a variable
// fixes it).
func (g *Graph) DSeparated(x, y string, given []string) bool {
	if x == y {
		return false
	}
	z := toSet(given)
	if z[x] || z[y] {
		return true
	}
	reach := g.reachable(x, z)
	return !reach[y]
}

// DConnected is the negation of DSeparated.
func (g *Graph) DConnected(x, y string, given []string) bool {
	return !g.DSeparated(x, y, given)
}

// reachable returns the set of nodes reachable from x via trails that are
// active given evidence z (Koller & Friedman, Algorithm 3.1).
func (g *Graph) reachable(x string, z map[string]bool) map[string]bool {
	// Ancestors of the evidence (inclusive): needed to know which colliders
	// are opened by conditioning on a descendant.
	anZ := g.ancestorSet(z, true)

	type visit struct {
		node string
		up   bool // true: we arrived travelling child → parent
	}
	visited := make(map[visit]bool)
	reached := make(map[string]bool)
	queue := []visit{{x, true}}
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		if visited[v] {
			continue
		}
		visited[v] = true
		if !z[v.node] {
			reached[v.node] = true
		}
		if v.up {
			if !z[v.node] {
				for p := range g.parents[v.node] {
					queue = append(queue, visit{p, true})
				}
				for c := range g.children[v.node] {
					queue = append(queue, visit{c, false})
				}
			}
		} else {
			if !z[v.node] {
				for c := range g.children[v.node] {
					queue = append(queue, visit{c, false})
				}
			}
			if anZ[v.node] {
				// v is a collider (or leads to one) whose activation is
				// licensed because it is an ancestor of the evidence.
				for p := range g.parents[v.node] {
					queue = append(queue, visit{p, true})
				}
			}
		}
	}
	return reached
}

// Path is an undirected path through the DAG, annotated with the direction
// of each traversed edge.
type Path struct {
	Nodes []string
	// Forward[i] is true if the edge between Nodes[i] and Nodes[i+1] points
	// Nodes[i] → Nodes[i+1].
	Forward []bool
}

// String renders the path with arrows, e.g. "R <- C -> L".
func (p Path) String() string {
	if len(p.Nodes) == 0 {
		return ""
	}
	s := p.Nodes[0]
	for i := 1; i < len(p.Nodes); i++ {
		if p.Forward[i-1] {
			s += " -> "
		} else {
			s += " <- "
		}
		s += p.Nodes[i]
	}
	return s
}

// Paths enumerates every simple undirected path between x and y. Exponential
// in the worst case; intended for the small planning DAGs this package is
// built for.
func (g *Graph) Paths(x, y string) []Path {
	var out []Path
	inPath := map[string]bool{x: true}
	var nodes []string
	var dirs []bool
	nodes = append(nodes, x)
	var rec func(cur string)
	rec = func(cur string) {
		if cur == y {
			p := Path{Nodes: append([]string(nil), nodes...), Forward: append([]bool(nil), dirs...)}
			out = append(out, p)
			return
		}
		for _, c := range sortedKeys(g.children[cur]) {
			if inPath[c] {
				continue
			}
			inPath[c] = true
			nodes = append(nodes, c)
			dirs = append(dirs, true)
			rec(c)
			nodes = nodes[:len(nodes)-1]
			dirs = dirs[:len(dirs)-1]
			delete(inPath, c)
		}
		for _, p := range sortedKeys(g.parents[cur]) {
			if inPath[p] {
				continue
			}
			inPath[p] = true
			nodes = append(nodes, p)
			dirs = append(dirs, false)
			rec(p)
			nodes = nodes[:len(nodes)-1]
			dirs = dirs[:len(dirs)-1]
			delete(inPath, p)
		}
	}
	rec(x)
	return out
}

// Blocked reports whether the path is blocked by the conditioning set z
// under the d-separation rules: a non-collider on the path blocks if it is
// in z; a collider blocks unless it, or one of its descendants, is in z.
func (g *Graph) Blocked(p Path, given []string) bool {
	z := toSet(given)
	for i := 1; i < len(p.Nodes)-1; i++ {
		// Forward[i-1] true means Nodes[i-1] -> Nodes[i], i.e. edge points INTO i.
		arrowInFromLeft := p.Forward[i-1]
		arrowInFromRight := !p.Forward[i]
		collider := arrowInFromLeft && arrowInFromRight
		node := p.Nodes[i]
		if collider {
			if !z[node] && !g.anyDescendantIn(node, z) {
				return true
			}
		} else if z[node] {
			return true
		}
	}
	return false
}

func (g *Graph) anyDescendantIn(node string, z map[string]bool) bool {
	for _, d := range g.Descendants(node) {
		if z[d] {
			return true
		}
	}
	return false
}

// ActivePaths returns the subset of simple paths between x and y that are
// active (unblocked) given the conditioning set.
func (g *Graph) ActivePaths(x, y string, given []string) []Path {
	var out []Path
	for _, p := range g.Paths(x, y) {
		if !g.Blocked(p, given) {
			out = append(out, p)
		}
	}
	return out
}
