package dag

import (
	"fmt"
	"sort"
	"strings"
)

// Parse builds a graph from a compact textual description. The format is a
// semicolon- or newline-separated list of statements:
//
//	C -> R; C -> L; R -> L      edges (chains "A -> B -> C" are allowed)
//	U [latent]                  node attribute
//	# comment                   ignored
//
// Node names are any whitespace-free tokens other than "->".
func Parse(text string) (*Graph, error) {
	g := New()
	split := func(r rune) bool { return r == ';' || r == '\n' }
	for _, stmt := range strings.FieldsFunc(text, split) {
		stmt = strings.TrimSpace(stmt)
		if stmt == "" || strings.HasPrefix(stmt, "#") {
			continue
		}
		if strings.Contains(stmt, "->") {
			parts := strings.Split(stmt, "->")
			var prev string
			for i, raw := range parts {
				name := strings.TrimSpace(raw)
				if name == "" {
					return nil, fmt.Errorf("dag: empty node name in %q", stmt)
				}
				if strings.ContainsAny(name, " \t[]") {
					return nil, fmt.Errorf("dag: invalid node name %q in %q", name, stmt)
				}
				if i > 0 {
					if err := g.AddEdge(prev, name); err != nil {
						return nil, err
					}
				}
				prev = name
			}
			continue
		}
		// Node declaration, optionally with attributes.
		name := stmt
		latent := false
		if i := strings.Index(stmt, "["); i >= 0 {
			j := strings.Index(stmt, "]")
			if j < i {
				return nil, fmt.Errorf("dag: malformed attributes in %q", stmt)
			}
			attrs := strings.Split(stmt[i+1:j], ",")
			name = strings.TrimSpace(stmt[:i])
			for _, a := range attrs {
				switch strings.TrimSpace(a) {
				case "latent", "unobserved":
					latent = true
				case "":
				default:
					return nil, fmt.Errorf("dag: unknown attribute %q in %q", a, stmt)
				}
			}
		}
		if name == "" || strings.ContainsAny(name, " \t") {
			return nil, fmt.Errorf("dag: invalid node declaration %q", stmt)
		}
		g.AddNode(name)
		if latent {
			g.SetLatent(name, true)
		}
	}
	return g, nil
}

// MustParse is Parse that panics on error; for static graph literals.
func MustParse(text string) *Graph {
	g, err := Parse(text)
	if err != nil {
		panic(err)
	}
	return g
}

// DOT renders the graph in Graphviz DOT syntax. Latent nodes are dashed.
func (g *Graph) DOT() string {
	var sb strings.Builder
	sb.WriteString("digraph causal {\n")
	sb.WriteString("  rankdir=LR;\n")
	for _, n := range g.order {
		if g.nodes[n].Latent {
			fmt.Fprintf(&sb, "  %q [style=dashed];\n", n)
		} else {
			fmt.Fprintf(&sb, "  %q;\n", n)
		}
	}
	for _, e := range g.Edges() {
		fmt.Fprintf(&sb, "  %q -> %q;\n", e[0], e[1])
	}
	sb.WriteString("}\n")
	return sb.String()
}

// CI is a conditional-independence statement X ⊥ Y | Given implied by the
// graph — a testable implication of the causal model.
type CI struct {
	X, Y  string
	Given []string
}

// String renders the statement, e.g. "R _||_ M | C".
func (c CI) String() string {
	s := c.X + " _||_ " + c.Y
	if len(c.Given) > 0 {
		s += " | " + strings.Join(c.Given, ", ")
	}
	return s
}

// ImpliedIndependencies lists the conditional independencies implied by the
// graph among observed variables, one per non-adjacent observed pair, using
// the union of the pair's parents as the conditioning set (the pairwise
// Markov property for DAGs). These are the "assumptions made visible" that
// §3 argues every measurement study should publish and test.
func (g *Graph) ImpliedIndependencies() []CI {
	var out []CI
	obs := g.ObservedNodes()
	for i := 0; i < len(obs); i++ {
		for j := i + 1; j < len(obs); j++ {
			a, b := obs[i], obs[j]
			if g.HasEdge(a, b) || g.HasEdge(b, a) {
				continue
			}
			givenSet := make(map[string]bool)
			for _, p := range g.Parents(a) {
				if !g.IsLatent(p) && p != b {
					givenSet[p] = true
				}
			}
			for _, p := range g.Parents(b) {
				if !g.IsLatent(p) && p != a {
					givenSet[p] = true
				}
			}
			given := sortedKeys(givenSet)
			if g.DSeparated(a, b, given) {
				out = append(out, CI{X: a, Y: b, Given: given})
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].X != out[j].X {
			return out[i].X < out[j].X
		}
		return out[i].Y < out[j].Y
	})
	return out
}
