package dag

// Instruments returns the observed variables that qualify as instrumental
// variables for estimating the effect of x on y:
//
//  1. relevance: the candidate is d-connected to x; and
//  2. exclusion: the candidate is d-separated from y in the graph with every
//     edge leaving x removed (all of its influence on y flows through x).
//
// This is the classical (unconditional) IV definition the paper invokes for
// natural experiments: "a factor that influences the decision being studied
// and affects the outcome only through that decision".
func (g *Graph) Instruments(x, y string) []string {
	cut := g.Clone()
	for _, c := range g.Children(x) {
		cut.RemoveEdge(x, c)
	}
	var out []string
	for _, z := range g.ObservedNodes() {
		if z == x || z == y {
			continue
		}
		if !g.DConnected(z, x, nil) {
			continue // irrelevant: no first stage
		}
		if !cut.DSeparated(z, y, nil) {
			continue // exclusion restriction violated
		}
		out = append(out, z)
	}
	return out
}

// ConditionalInstruments returns observed variables that qualify as
// instruments for x → y after conditioning on the given set W:
// relevance and exclusion both hold given W, and W itself contains no
// descendant of x (conditioning on a descendant of treatment can open
// collider paths and manufacture a spurious instrument).
func (g *Graph) ConditionalInstruments(x, y string, given []string) []string {
	desc := toSet(g.Descendants(x))
	for _, w := range given {
		if w == x || w == y || desc[w] {
			return nil
		}
	}
	cut := g.Clone()
	for _, c := range g.Children(x) {
		cut.RemoveEdge(x, c)
	}
	inW := toSet(given)
	var out []string
	for _, z := range g.ObservedNodes() {
		if z == x || z == y || inW[z] {
			continue
		}
		if !g.DConnected(z, x, given) {
			continue
		}
		if !cut.DSeparated(z, y, given) {
			continue
		}
		out = append(out, z)
	}
	return out
}

// ExclusionViolations explains why candidate z fails the exclusion
// restriction for x → y: it returns the active paths from z to y that do not
// pass through x (computed in the graph with x's outgoing edges removed).
// An empty result means the exclusion restriction holds. This implements the
// paper's demand that instrument validity "hinges on the strength of the
// justification" — the violations are the argument one must rebut.
func (g *Graph) ExclusionViolations(z, x, y string) []Path {
	cut := g.Clone()
	for _, c := range g.Children(x) {
		cut.RemoveEdge(x, c)
	}
	return cut.ActivePaths(z, y, nil)
}

// Collider describes a collider structure a → b ← c.
type Collider struct {
	Left, Mid, Right string
}

// Colliders enumerates every collider triple in the graph in deterministic
// order. Conditioning on Mid (or a descendant of Mid) opens a spurious
// association between Left and Right — the speed-test selection bias of §3.
func (g *Graph) Colliders() []Collider {
	var out []Collider
	for _, mid := range g.order {
		ps := g.Parents(mid)
		for i := 0; i < len(ps); i++ {
			for j := i + 1; j < len(ps); j++ {
				out = append(out, Collider{Left: ps[i], Mid: mid, Right: ps[j]})
			}
		}
	}
	return out
}

// SelectionBiasWarnings returns the colliders that are opened by
// conditioning on the given set: colliders whose middle node (or one of its
// descendants) is in the set and whose endpoints were not already adjacent.
// Analyzing only records where such a variable is "true" (e.g. "a speed test
// was run") induces exactly these spurious associations.
func (g *Graph) SelectionBiasWarnings(conditioned []string) []Collider {
	z := toSet(conditioned)
	var out []Collider
	for _, c := range g.Colliders() {
		opened := z[c.Mid] || g.anyDescendantIn(c.Mid, z)
		if !opened {
			continue
		}
		if g.HasEdge(c.Left, c.Right) || g.HasEdge(c.Right, c.Left) {
			continue // endpoints already directly related; the warning is moot
		}
		out = append(out, c)
	}
	return out
}
