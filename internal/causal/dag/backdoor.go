package dag

import (
	"fmt"
	"sort"
)

// BackdoorPaths returns every simple path between treatment x and outcome y
// that begins with an edge INTO x — the "backdoor" routes along which
// confounding travels (e.g. R ← C → L in the paper's running example).
func (g *Graph) BackdoorPaths(x, y string) []Path {
	var out []Path
	for _, p := range g.Paths(x, y) {
		if len(p.Forward) > 0 && !p.Forward[0] { // first edge points into x
			out = append(out, p)
		}
	}
	return out
}

// SatisfiesBackdoor reports whether the conditioning set satisfies the
// backdoor criterion for estimating the effect of x on y:
//
//  1. no member of the set is a descendant of x, and
//  2. the set blocks every backdoor path from x to y.
func (g *Graph) SatisfiesBackdoor(x, y string, set []string) bool {
	desc := toSet(g.Descendants(x))
	for _, s := range set {
		if s == x || s == y || desc[s] {
			return false
		}
	}
	for _, p := range g.BackdoorPaths(x, y) {
		if !g.Blocked(p, set) {
			return false
		}
	}
	return true
}

// AdjustmentSearchLimit caps how many candidate variables the exhaustive
// adjustment-set search will consider before refusing. Planning DAGs in
// measurement studies have a handful of named variables; if a graph exceeds
// this, the question should be decomposed rather than brute-forced.
const AdjustmentSearchLimit = 20

// MinimalAdjustmentSets enumerates every minimal observed adjustment set
// satisfying the backdoor criterion for x → y, ordered by size then
// lexicographically. An empty inner slice means "no adjustment needed".
// It returns an error if the candidate pool exceeds AdjustmentSearchLimit
// or if no valid observed set exists (e.g. a latent confounder).
func (g *Graph) MinimalAdjustmentSets(x, y string) ([][]string, error) {
	if !g.Has(x) || !g.Has(y) {
		return nil, fmt.Errorf("dag: unknown node in (%q, %q)", x, y)
	}
	desc := toSet(g.Descendants(x))
	var candidates []string
	for _, n := range g.ObservedNodes() {
		if n == x || n == y || desc[n] {
			continue
		}
		candidates = append(candidates, n)
	}
	sort.Strings(candidates)
	if len(candidates) > AdjustmentSearchLimit {
		return nil, fmt.Errorf("dag: %d adjustment candidates exceeds search limit %d",
			len(candidates), AdjustmentSearchLimit)
	}

	var valid [][]string
	// Enumerate subsets in order of increasing size so minimality can be
	// checked against earlier results only.
	for size := 0; size <= len(candidates); size++ {
		combos(candidates, size, func(set []string) {
			for _, earlier := range valid {
				if isSubset(earlier, set) {
					return // a subset already works: not minimal
				}
			}
			if g.SatisfiesBackdoor(x, y, set) {
				valid = append(valid, append([]string(nil), set...))
			}
		})
	}
	if len(valid) == 0 {
		return nil, fmt.Errorf("dag: effect of %s on %s is not identifiable by observed backdoor adjustment", x, y)
	}
	return valid, nil
}

// Confounders returns the observed variables that lie on at least one
// backdoor path between x and y (excluding the endpoints) — the variables
// the paper's §3 warns must be adjusted for.
func (g *Graph) Confounders(x, y string) []string {
	seen := make(map[string]bool)
	for _, p := range g.BackdoorPaths(x, y) {
		for i := 1; i < len(p.Nodes)-1; i++ {
			n := p.Nodes[i]
			if !g.IsLatent(n) {
				seen[n] = true
			}
		}
	}
	return sortedKeys(seen)
}

// SatisfiesFrontdoor reports whether mediator set M satisfies Pearl's
// frontdoor criterion for x → y:
//
//  1. M intercepts every directed path from x to y;
//  2. there is no unblocked backdoor path from x to M; and
//  3. every backdoor path from M to y is blocked by x.
func (g *Graph) SatisfiesFrontdoor(x, y string, mediators []string) bool {
	m := toSet(mediators)
	if m[x] || m[y] {
		return false
	}
	// (1) every directed path x ⇒ y passes through M.
	for _, p := range g.directedPaths(x, y) {
		hit := false
		for i := 1; i < len(p)-1; i++ {
			if m[p[i]] {
				hit = true
				break
			}
		}
		if !hit {
			return false
		}
	}
	// (2) no active backdoor path x → each mediator, unconditionally.
	for _, med := range mediators {
		for _, p := range g.BackdoorPaths(x, med) {
			if !g.Blocked(p, nil) {
				return false
			}
		}
	}
	// (3) x blocks every backdoor path from each mediator to y.
	for _, med := range mediators {
		for _, p := range g.BackdoorPaths(med, y) {
			if !g.Blocked(p, []string{x}) {
				return false
			}
		}
	}
	return true
}

// directedPaths enumerates simple directed paths from x to y.
func (g *Graph) directedPaths(x, y string) [][]string {
	var out [][]string
	var cur []string
	inPath := map[string]bool{x: true}
	cur = append(cur, x)
	var rec func(n string)
	rec = func(n string) {
		if n == y {
			out = append(out, append([]string(nil), cur...))
			return
		}
		for _, c := range sortedKeys(g.children[n]) {
			if inPath[c] {
				continue
			}
			inPath[c] = true
			cur = append(cur, c)
			rec(c)
			cur = cur[:len(cur)-1]
			delete(inPath, c)
		}
	}
	rec(x)
	return out
}

// combos calls fn with each size-k subset of xs (in lexicographic order).
// The slice passed to fn is reused; fn must copy if it retains it.
func combos(xs []string, k int, fn func([]string)) {
	if k == 0 {
		fn(nil)
		return
	}
	idx := make([]int, k)
	set := make([]string, k)
	var rec func(start, depth int)
	rec = func(start, depth int) {
		if depth == k {
			fn(set)
			return
		}
		for i := start; i <= len(xs)-(k-depth); i++ {
			idx[depth] = i
			set[depth] = xs[i]
			rec(i+1, depth+1)
		}
	}
	rec(0, 0)
}

func isSubset(sub, super []string) bool {
	s := toSet(super)
	for _, x := range sub {
		if !s[x] {
			return false
		}
	}
	return true
}
