// Package sensitivity quantifies how fragile a causal conclusion is to
// violations of its assumptions — the "report uncertainty in causal
// estimates" step of the paper's §4 protocol. It implements:
//
//   - E-values (VanderWeele & Ding): the minimum strength of association an
//     unmeasured confounder would need with both treatment and outcome to
//     explain away an observed effect;
//   - bias bounds for a hypothesized confounder of given strength; and
//   - placebo-treatment and bootstrap refuters for estimator outputs.
package sensitivity

import (
	"errors"
	"fmt"
	"math"

	"sisyphus/internal/causal/data"
	"sisyphus/internal/causal/estimate"
	"sisyphus/internal/mathx"
)

// EValue computes the E-value for an observed risk ratio rr (> 0). For
// rr < 1 the reciprocal is used, per convention. The E-value is the minimum
// strength (on the risk-ratio scale) that an unmeasured confounder would
// need with both treatment and outcome, above and beyond the measured
// covariates, to fully explain away the association.
func EValue(rr float64) (float64, error) {
	if rr <= 0 || math.IsNaN(rr) {
		return 0, fmt.Errorf("sensitivity: risk ratio must be positive, got %v", rr)
	}
	if rr < 1 {
		rr = 1 / rr
	}
	return rr + math.Sqrt(rr*(rr-1)), nil
}

// EValueFromEstimate converts a mean-difference Estimate on outcome scale sd
// into an approximate risk ratio via the standard conversion
// RR ≈ exp(0.91 · d) with d the standardized mean difference, then returns
// the E-values for the point estimate and for the CI bound closer to the
// null. A CI E-value of 1 means the interval already covers the null.
func EValueFromEstimate(e estimate.Estimate, outcomeSD float64) (point, ci float64, err error) {
	if outcomeSD <= 0 {
		return 0, 0, errors.New("sensitivity: outcome SD must be positive")
	}
	d := e.Effect / outcomeSD
	rr := math.Exp(0.91 * d)
	point, err = EValue(rr)
	if err != nil {
		return 0, 0, err
	}
	lo, hi := e.CI(0.95)
	loRR := math.Exp(0.91 * lo / outcomeSD)
	hiRR := math.Exp(0.91 * hi / outcomeSD)
	// The CI bound closer to the null on the RR scale.
	if loRR <= 1 && hiRR >= 1 {
		return point, 1, nil
	}
	bound := loRR
	if math.Abs(math.Log(hiRR)) < math.Abs(math.Log(loRR)) {
		bound = hiRR
	}
	ci, err = EValue(bound)
	return point, ci, err
}

// ConfounderBias returns the maximum bias (on the risk-ratio scale) that an
// unmeasured confounder with treatment-association rrTU and
// outcome-association rrUY could induce: the Ding–VanderWeele bounding
// factor rrTU·rrUY / (rrTU + rrUY − 1).
func ConfounderBias(rrTU, rrUY float64) (float64, error) {
	if rrTU < 1 || rrUY < 1 {
		return 0, errors.New("sensitivity: confounder associations are expressed as risk ratios >= 1")
	}
	return rrTU * rrUY / (rrTU + rrUY - 1), nil
}

// ExplainsAway reports whether a confounder of the given strength could
// move an observed risk ratio all the way to the null.
func ExplainsAway(observedRR, rrTU, rrUY float64) (bool, error) {
	if observedRR <= 0 {
		return false, errors.New("sensitivity: observed RR must be positive")
	}
	if observedRR < 1 {
		observedRR = 1 / observedRR
	}
	b, err := ConfounderBias(rrTU, rrUY)
	if err != nil {
		return false, err
	}
	return b >= observedRR, nil
}

// Refutation is the outcome of a refuter run.
type Refutation struct {
	Name string
	// Original is the estimate under scrutiny; Refuted the re-estimate.
	Original, Refuted float64
	// Passed is true when the refutation behaves as a sound estimate
	// should (see each refuter for its criterion).
	Passed bool
	Detail string
}

func (r Refutation) String() string {
	verdict := "FAILED"
	if r.Passed {
		verdict = "passed"
	}
	return fmt.Sprintf("%s: original=%.4f refuted=%.4f (%s) %s", r.Name, r.Original, r.Refuted, verdict, r.Detail)
}

// Estimator is the signature refuters re-run: any function from a frame to
// an effect estimate.
type Estimator func(f *data.Frame) (estimate.Estimate, error)

// PlaceboTreatment re-runs the estimator with the treatment column replaced
// by an independently shuffled copy. A sound analysis should then find an
// effect near zero: if it does not, the pipeline is reading effect out of
// structure rather than out of treatment (the DoWhy placebo refuter).
func PlaceboTreatment(f *data.Frame, treatment string, est Estimator, r *mathx.RNG, reps int) (Refutation, error) {
	if reps <= 0 {
		reps = 20
	}
	orig, err := est(f)
	if err != nil {
		return Refutation{}, err
	}
	tr, ok := f.Column(treatment)
	if !ok {
		return Refutation{}, fmt.Errorf("sensitivity: no treatment column %q", treatment)
	}
	var effects []float64
	for rep := 0; rep < reps; rep++ {
		shuffled := make([]float64, len(tr))
		for i, j := range r.Perm(len(tr)) {
			shuffled[i] = tr[j]
		}
		g := data.New()
		for _, name := range f.Columns() {
			col := f.MustColumn(name)
			if name == treatment {
				col = shuffled
			}
			if err := g.AddColumn(name, col); err != nil {
				return Refutation{}, err
			}
		}
		e, err := est(g)
		if err != nil {
			return Refutation{}, err
		}
		effects = append(effects, e.Effect)
	}
	s := mathx.Summarize(effects)
	// Pass if the placebo distribution is centred near zero relative to
	// the original effect size.
	passed := math.Abs(s.Mean) < math.Abs(orig.Effect)/4+2*s.Std
	return Refutation{
		Name: "placebo-treatment", Original: orig.Effect, Refuted: s.Mean,
		Passed: passed,
		Detail: fmt.Sprintf("placebo sd=%.4f over %d reps", s.Std, reps),
	}, nil
}

// RandomCommonCause adds a synthetic random covariate to the adjustment and
// re-estimates: a sound estimate should barely move.
func RandomCommonCause(f *data.Frame, est func(f *data.Frame, extra string) (estimate.Estimate, error), r *mathx.RNG) (Refutation, error) {
	base, err := est(f, "")
	if err != nil {
		return Refutation{}, err
	}
	noise := make([]float64, f.Len())
	for i := range noise {
		noise[i] = r.Normal(0, 1)
	}
	g := data.New()
	for _, name := range f.Columns() {
		if err := g.AddColumn(name, f.MustColumn(name)); err != nil {
			return Refutation{}, err
		}
	}
	if err := g.AddColumn("__random__", noise); err != nil {
		return Refutation{}, err
	}
	re, err := est(g, "__random__")
	if err != nil {
		return Refutation{}, err
	}
	shift := math.Abs(re.Effect - base.Effect)
	tol := math.Abs(base.Effect)*0.15 + 3*base.SE
	return Refutation{
		Name: "random-common-cause", Original: base.Effect, Refuted: re.Effect,
		Passed: shift < tol,
		Detail: fmt.Sprintf("shift=%.4f tolerance=%.4f", shift, tol),
	}, nil
}

// DataSubset re-estimates on random half-samples; a stable estimate should
// reproduce within sampling noise.
func DataSubset(f *data.Frame, est Estimator, r *mathx.RNG, reps int) (Refutation, error) {
	if reps <= 0 {
		reps = 10
	}
	orig, err := est(f)
	if err != nil {
		return Refutation{}, err
	}
	n := f.Len()
	var effects []float64
	for rep := 0; rep < reps; rep++ {
		perm := r.Perm(n)
		keep := make(map[int]bool, n/2)
		for _, i := range perm[:n/2] {
			keep[i] = true
		}
		idx := 0
		g := f.Filter(func(map[string]float64) bool {
			ok := keep[idx]
			idx++
			return ok
		})
		e, err := est(g)
		if err != nil {
			return Refutation{}, err
		}
		effects = append(effects, e.Effect)
	}
	s := mathx.Summarize(effects)
	passed := math.Abs(s.Mean-orig.Effect) < math.Abs(orig.Effect)*0.25+3*s.StandardError+3*orig.SE
	return Refutation{
		Name: "data-subset", Original: orig.Effect, Refuted: s.Mean,
		Passed: passed,
		Detail: fmt.Sprintf("subset sd=%.4f over %d half-samples", s.Std, reps),
	}, nil
}

// Bootstrap returns percentile bootstrap confidence bounds for an estimator
// by resampling rows with replacement.
func Bootstrap(f *data.Frame, est Estimator, r *mathx.RNG, reps int, level float64) (lo, hi float64, err error) {
	if reps <= 0 {
		reps = 200
	}
	if level <= 0 || level >= 1 {
		return 0, 0, errors.New("sensitivity: level must be in (0,1)")
	}
	n := f.Len()
	cols := f.Columns()
	var effects []float64
	for rep := 0; rep < reps; rep++ {
		idx := make([]int, n)
		for i := range idx {
			idx[i] = r.Intn(n)
		}
		g := data.New()
		for _, name := range cols {
			src := f.MustColumn(name)
			col := make([]float64, n)
			for i, j := range idx {
				col[i] = src[j]
			}
			if err := g.AddColumn(name, col); err != nil {
				return 0, 0, err
			}
		}
		e, err := est(g)
		if err != nil {
			continue // resamples can be degenerate (e.g. one-arm); skip
		}
		effects = append(effects, e.Effect)
	}
	if len(effects) < reps/2 {
		return 0, 0, fmt.Errorf("sensitivity: only %d/%d bootstrap replicates succeeded", len(effects), reps)
	}
	alpha := (1 - level) / 2
	return mathx.Quantile(effects, alpha), mathx.Quantile(effects, 1-alpha), nil
}
