package sensitivity

import (
	"math"
	"testing"
	"testing/quick"

	"sisyphus/internal/causal/data"
	"sisyphus/internal/causal/estimate"
	"sisyphus/internal/mathx"
)

func TestEValueKnownValues(t *testing.T) {
	// Classic textbook values: RR=2 → E ≈ 3.41; RR=1 → E = 1.
	e, err := EValue(2)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(e-(2+math.Sqrt(2))) > 1e-12 {
		t.Fatalf("EValue(2) = %v", e)
	}
	e1, _ := EValue(1)
	if e1 != 1 {
		t.Fatalf("EValue(1) = %v", e1)
	}
	// Protective effects use the reciprocal.
	eProt, _ := EValue(0.5)
	eHarm, _ := EValue(2)
	if math.Abs(eProt-eHarm) > 1e-12 {
		t.Fatalf("EValue(0.5)=%v should equal EValue(2)=%v", eProt, eHarm)
	}
	if _, err := EValue(0); err == nil {
		t.Fatal("EValue(0) accepted")
	}
}

func TestEValueMonotone(t *testing.T) {
	f := func(seed uint64) bool {
		r := mathx.NewRNG(seed)
		a := 1 + 4*r.Float64()
		b := a + 3*r.Float64()
		ea, err1 := EValue(a)
		eb, err2 := EValue(b)
		if err1 != nil || err2 != nil {
			return false
		}
		return eb >= ea-1e-12 && ea >= 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestEValueFromEstimate(t *testing.T) {
	e := estimate.Estimate{Effect: 2, SE: 0.2}
	point, ci, err := EValueFromEstimate(e, 2)
	if err != nil {
		t.Fatal(err)
	}
	if point <= 1 || ci <= 1 {
		t.Fatalf("point=%v ci=%v", point, ci)
	}
	if ci > point {
		t.Fatalf("CI e-value %v should not exceed point %v", ci, point)
	}
	// CI covering the null → CI e-value 1.
	weak := estimate.Estimate{Effect: 0.1, SE: 1}
	_, ciWeak, err := EValueFromEstimate(weak, 2)
	if err != nil {
		t.Fatal(err)
	}
	if ciWeak != 1 {
		t.Fatalf("null-covering CI e-value = %v want 1", ciWeak)
	}
	if _, _, err := EValueFromEstimate(e, 0); err == nil {
		t.Fatal("zero SD accepted")
	}
}

func TestConfounderBiasAndExplainAway(t *testing.T) {
	b, err := ConfounderBias(2, 2)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(b-4.0/3.0) > 1e-12 {
		t.Fatalf("bias = %v", b)
	}
	if _, err := ConfounderBias(0.5, 2); err == nil {
		t.Fatal("sub-1 association accepted")
	}
	// A confounder at exactly the E-value explains the effect away.
	rr := 2.0
	ev, _ := EValue(rr)
	away, err := ExplainsAway(rr, ev, ev)
	if err != nil {
		t.Fatal(err)
	}
	if !away {
		t.Fatal("confounder at the E-value must explain away")
	}
	weakAway, _ := ExplainsAway(rr, 1.1, 1.1)
	if weakAway {
		t.Fatal("weak confounder should not explain away RR=2")
	}
}

// confounded builds the standard test world with true effect 3.
func confounded(seed uint64, n int, effect float64) *data.Frame {
	r := mathx.NewRNG(seed)
	c := make([]float64, n)
	tr := make([]float64, n)
	l := make([]float64, n)
	for i := 0; i < n; i++ {
		c[i] = r.Normal(0, 1)
		if 0.8*c[i]+r.Normal(0, 1) > 0 {
			tr[i] = 1
		}
		l[i] = 10 + 2*c[i] + effect*tr[i] + r.Normal(0, 0.5)
	}
	f, _ := data.FromColumns(map[string][]float64{"C": c, "R": tr, "L": l})
	return f
}

func regEst(f *data.Frame) (estimate.Estimate, error) {
	return estimate.Regression(f, "R", "L", []string{"C"})
}

func TestPlaceboTreatmentPassesForSoundEstimator(t *testing.T) {
	f := confounded(1, 4000, 3)
	ref, err := PlaceboTreatment(f, "R", regEst, mathx.NewRNG(2), 15)
	if err != nil {
		t.Fatal(err)
	}
	if !ref.Passed {
		t.Fatalf("sound estimator failed the placebo refuter: %v", ref)
	}
	if math.Abs(ref.Refuted) > 0.3 {
		t.Fatalf("placebo effect should be near zero: %v", ref.Refuted)
	}
	if math.Abs(ref.Original-3) > 0.3 {
		t.Fatalf("original = %v", ref.Original)
	}
}

func TestPlaceboTreatmentCatchesLeakyPipeline(t *testing.T) {
	f := confounded(3, 4000, 3)
	// A broken "estimator" that ignores the treatment column entirely and
	// reports the C coefficient: shuffling treatment cannot move it, so the
	// placebo run reproduces the full effect and the refuter must fail it.
	leaky := func(g *data.Frame) (estimate.Estimate, error) {
		res, err := estimate.OLS(g, "L", "C")
		if err != nil {
			return estimate.Estimate{}, err
		}
		coef, _ := res.Coefficient("C")
		return estimate.Estimate{Method: "leaky", Effect: coef, SE: 0.01, N: g.Len()}, nil
	}
	ref, err := PlaceboTreatment(f, "R", leaky, mathx.NewRNG(4), 10)
	if err != nil {
		t.Fatal(err)
	}
	if ref.Passed {
		t.Fatalf("leaky pipeline passed the placebo refuter: %v", ref)
	}
}

func TestRandomCommonCause(t *testing.T) {
	f := confounded(5, 4000, 3)
	est := func(g *data.Frame, extra string) (estimate.Estimate, error) {
		adjust := []string{"C"}
		if extra != "" {
			adjust = append(adjust, extra)
		}
		return estimate.Regression(g, "R", "L", adjust)
	}
	ref, err := RandomCommonCause(f, est, mathx.NewRNG(6))
	if err != nil {
		t.Fatal(err)
	}
	if !ref.Passed {
		t.Fatalf("random common cause moved a sound estimate: %v", ref)
	}
}

func TestDataSubset(t *testing.T) {
	f := confounded(7, 6000, 3)
	ref, err := DataSubset(f, regEst, mathx.NewRNG(8), 8)
	if err != nil {
		t.Fatal(err)
	}
	if !ref.Passed {
		t.Fatalf("stable estimate failed subset refuter: %v", ref)
	}
	if ref.String() == "" {
		t.Fatal("empty render")
	}
}

func TestBootstrapCoversTruth(t *testing.T) {
	f := confounded(9, 3000, 3)
	lo, hi, err := Bootstrap(f, regEst, mathx.NewRNG(10), 120, 0.95)
	if err != nil {
		t.Fatal(err)
	}
	// The interval must cover the point estimate and sit close to truth
	// (single-seed coverage of the exact truth is not guaranteed at 95%).
	point, err := regEst(f)
	if err != nil {
		t.Fatal(err)
	}
	if lo > point.Effect || hi < point.Effect {
		t.Fatalf("bootstrap CI [%v, %v] misses its own point estimate %v", lo, hi, point.Effect)
	}
	if lo > 3.2 || hi < 2.8 {
		t.Fatalf("bootstrap CI [%v, %v] far from truth 3", lo, hi)
	}
	if hi-lo > 1 {
		t.Fatalf("bootstrap CI implausibly wide: [%v, %v]", lo, hi)
	}
	if _, _, err := Bootstrap(f, regEst, mathx.NewRNG(11), 50, 1.5); err == nil {
		t.Fatal("bad level accepted")
	}
}
