package scm

import (
	"context"
	"testing"

	"sisyphus/internal/mathx"
	"sisyphus/internal/parallel"
)

// TestATEWorkerInvariance: the sharded Monte-Carlo ATE must be bit-identical
// for any pool width, because each draw consumes a pre-split stream and the
// reduction runs in index order.
func TestATEWorkerInvariance(t *testing.T) {
	build := func() *Model {
		m := New()
		if err := m.DefineLinear("C", nil, 0, GaussianNoise(1)); err != nil {
			t.Fatal(err)
		}
		if err := m.DefineLinear("R", map[string]float64{"C": 2}, 0, GaussianNoise(0.5)); err != nil {
			t.Fatal(err)
		}
		if err := m.DefineLinear("L", map[string]float64{"R": 5, "C": -1}, 10, GaussianNoise(1)); err != nil {
			t.Fatal(err)
		}
		return m
	}
	m := build()
	ctx := context.Background()
	var got []float64
	for _, workers := range []int{1, 4, 16} {
		ate, err := m.ATE(ctx, parallel.NewPool(workers), mathx.NewRNG(77), "R", 0, 1, "L", 4000)
		if err != nil {
			t.Fatal(err)
		}
		got = append(got, ate)
	}
	if got[0] != got[1] || got[1] != got[2] {
		t.Fatalf("ATE varies with worker count: %v", got)
	}
	if got[0] < 4.5 || got[0] > 5.5 {
		t.Fatalf("ATE = %v, want ≈ 5", got[0])
	}
}
