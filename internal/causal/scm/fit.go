package scm

import (
	"fmt"
	"math"

	"sisyphus/internal/causal/dag"
	"sisyphus/internal/causal/data"
	"sisyphus/internal/mathx"
)

// FitLinear estimates a linear-Gaussian SCM for the given DAG from observed
// data: each node is regressed (OLS with intercept) on its parents, and the
// residual standard deviation becomes its Gaussian noise scale. Latent nodes
// are not supported (they cannot be fit from data).
//
// This is how E7 builds the "detailed model of how routing and latency
// interact" that the paper says counterfactual queries require: structure
// from domain knowledge, parameters from measurements.
func FitLinear(g *dag.Graph, f *data.Frame) (*Model, error) {
	for _, n := range g.Nodes() {
		if g.IsLatent(n) {
			return nil, fmt.Errorf("scm: cannot fit latent node %q from data", n)
		}
		if !f.Has(n) {
			return nil, fmt.Errorf("scm: data has no column for node %q", n)
		}
	}
	m := New()
	for _, n := range g.TopologicalOrder() {
		parents := g.Parents(n)
		y := f.MustColumn(n)
		rows := f.Len()
		if rows < len(parents)+2 {
			return nil, fmt.Errorf("scm: %d rows too few to fit node %q with %d parents", rows, n, len(parents))
		}
		// Design matrix: intercept + parents.
		x := mathx.NewMatrix(rows, len(parents)+1)
		for i := 0; i < rows; i++ {
			x.Set(i, 0, 1)
		}
		for j, p := range parents {
			col := f.MustColumn(p)
			for i := 0; i < rows; i++ {
				x.Set(i, j+1, col[i])
			}
		}
		beta, err := mathx.LeastSquares(x, mathx.Vector(y))
		if err != nil {
			return nil, fmt.Errorf("scm: fitting node %q: %w", n, err)
		}
		// Residual standard deviation.
		pred := x.MulVec(beta)
		var ss float64
		for i := range y {
			d := y[i] - pred[i]
			ss += d * d
		}
		df := float64(rows - len(parents) - 1)
		std := math.Sqrt(ss / df)

		coeffs := make(map[string]float64, len(parents))
		for j, p := range parents {
			coeffs[p] = beta[j+1]
		}
		if err := m.DefineLinear(n, coeffs, beta[0], GaussianNoise(std)); err != nil {
			return nil, err
		}
	}
	return m, nil
}

// Coefficient returns the fitted (or defined) linear coefficient of parent
// on node, and whether the node's mechanism exposes one. Only mechanisms
// created through DefineLinear report coefficients; it probes the mechanism
// by finite differencing, which is exact for linear models.
func (m *Model) Coefficient(node, parent string) (float64, bool) {
	eq, ok := m.eqs[node]
	if !ok || !eq.additive {
		return 0, false
	}
	hasParent := false
	for _, p := range eq.parents {
		if p == parent {
			hasParent = true
		}
	}
	if !hasParent {
		return 0, false
	}
	pa := make(map[string]float64, len(eq.parents))
	for _, p := range eq.parents {
		pa[p] = 0
	}
	y0 := eq.base(pa)
	pa[parent] = 1
	y1 := eq.base(pa)
	return y1 - y0, true
}
