package scm

import (
	"context"
	"math"
	"testing"
	"testing/quick"

	"sisyphus/internal/causal/dag"
	"sisyphus/internal/causal/data"
	"sisyphus/internal/mathx"
	"sisyphus/internal/parallel"
)

// runningExample builds the paper's C → {R, L}, R → L model with known
// linear coefficients: L = 10 + 2C + 5R + noise, R = 1{C + u_R > 0.5} is
// replaced by a linear R = 0.8C + u_R so all mechanisms stay additive.
func runningExample(noiseStd float64) *Model {
	m := New()
	if err := m.DefineLinear("C", nil, 0, GaussianNoise(1)); err != nil {
		panic(err)
	}
	if err := m.DefineLinear("R", map[string]float64{"C": 0.8}, 0, GaussianNoise(noiseStd)); err != nil {
		panic(err)
	}
	if err := m.DefineLinear("L", map[string]float64{"C": 2, "R": 5}, 10, GaussianNoise(noiseStd)); err != nil {
		panic(err)
	}
	return m
}

func TestDefineRejectsDuplicatesAndCycles(t *testing.T) {
	m := New()
	if err := m.DefineLinear("A", nil, 0, nil); err != nil {
		t.Fatal(err)
	}
	if err := m.DefineLinear("A", nil, 0, nil); err == nil {
		t.Fatal("duplicate accepted")
	}
	if err := m.DefineLinear("B", map[string]float64{"A": 1}, 0, nil); err != nil {
		t.Fatal(err)
	}
	// A was already defined without parent B; adding an edge B -> A via a
	// new definition of A is impossible, but a cycle through a fresh pair:
	m2 := New()
	_ = m2.DefineLinear("X", map[string]float64{"Y": 1}, 0, nil) // Y implicit
	if err := m2.DefineLinear("Y", map[string]float64{"X": 1}, 0, nil); err == nil {
		t.Fatal("cycle accepted")
	}
}

func TestSampleRequiresAllNodesDefined(t *testing.T) {
	m := New()
	_ = m.DefineLinear("B", map[string]float64{"A": 1}, 0, nil) // A never defined
	if _, err := m.Sample(mathx.NewRNG(1)); err == nil {
		t.Fatal("undefined parent accepted at sample time")
	}
}

func TestObservationalMoments(t *testing.T) {
	m := runningExample(0.5)
	r := mathx.NewRNG(42)
	cols, err := m.SampleN(r, 20000)
	if err != nil {
		t.Fatal(err)
	}
	// E[L] = 10 + 2 E[C] + 5 E[R] = 10, since E[C] = E[R] = 0.
	if got := mathx.Mean(cols["L"]); math.Abs(got-10) > 0.15 {
		t.Fatalf("E[L] = %v", got)
	}
	// Corr(C, R) should be strongly positive.
	if got := mathx.Correlation(cols["C"], cols["R"]); got < 0.7 {
		t.Fatalf("corr(C,R) = %v", got)
	}
}

func TestDoBreaksConfounding(t *testing.T) {
	m := runningExample(0.5)
	r := mathx.NewRNG(7)
	// Under do(R=r0), R no longer depends on C; corr(C, R) must be 0 and
	// E[L | do(R=1)] - E[L | do(R=0)] must equal the structural coefficient 5.
	ate, err := m.ATE(context.Background(), parallel.Pool{}, r, "R", 0, 1, "L", 20000)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(ate-5) > 0.1 {
		t.Fatalf("ATE = %v want 5", ate)
	}
	// Naive observational contrast is biased upward: R and L share cause C.
	cols, _ := m.SampleN(mathx.NewRNG(8), 20000)
	// Regression slope of L on R without adjusting C:
	slope := mathx.Covariance(cols["R"], cols["L"]) / mathx.Variance(cols["R"])
	if slope < 5.5 {
		t.Fatalf("naive slope = %v; expected confounding bias above 5", slope)
	}
}

func TestSampleDoOverridesMechanism(t *testing.T) {
	m := runningExample(0)
	a, err := m.SampleDo(mathx.NewRNG(3), map[string]float64{"R": 9})
	if err != nil {
		t.Fatal(err)
	}
	if a.Values["R"] != 9 {
		t.Fatalf("do(R=9) gave R=%v", a.Values["R"])
	}
	wantL := 10 + 2*a.Values["C"] + 5*9
	if math.Abs(a.Values["L"]-wantL) > 1e-9 {
		t.Fatalf("L = %v want %v", a.Values["L"], wantL)
	}
}

func TestCounterfactualConsistency(t *testing.T) {
	// Property: intervening with the factually observed value must reproduce
	// the factual world exactly (the "consistency" axiom).
	f := func(seed uint64) bool {
		m := runningExample(1)
		r := mathx.NewRNG(seed)
		a, err := m.Sample(r)
		if err != nil {
			return false
		}
		cf, err := m.Counterfactual(a.Values, map[string]float64{"R": a.Values["R"]})
		if err != nil {
			return false
		}
		for k, v := range a.Values {
			if math.Abs(cf[k]-v) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestCounterfactualKnownAnswer(t *testing.T) {
	// Deterministic world (no noise): observed C=1, R=0.8, L=16. What would
	// L have been had R been 0? L_cf = 10 + 2·1 + 5·0 = 12.
	m := runningExample(0)
	obs := map[string]float64{"C": 1, "R": 0.8, "L": 10 + 2*1 + 5*0.8}
	cf, err := m.Counterfactual(obs, map[string]float64{"R": 0})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(cf["L"]-12) > 1e-9 {
		t.Fatalf("counterfactual L = %v want 12", cf["L"])
	}
	// The noise recovered for L was 0, so the counterfactual keeps it.
	obs2 := map[string]float64{"C": 1, "R": 0.8, "L": 17} // L has +1 noise
	cf2, err := m.Counterfactual(obs2, map[string]float64{"R": 0})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(cf2["L"]-13) > 1e-9 {
		t.Fatalf("counterfactual L with noise = %v want 13", cf2["L"])
	}
}

func TestCounterfactualRequiresFullObservation(t *testing.T) {
	m := runningExample(1)
	if _, err := m.Counterfactual(map[string]float64{"C": 1}, map[string]float64{"R": 0}); err == nil {
		t.Fatal("partial observation accepted")
	}
}

func TestCounterfactualRejectsNonAdditive(t *testing.T) {
	m := New()
	_ = m.DefineLinear("X", nil, 0, GaussianNoise(1))
	err := m.Define("Y", []string{"X"}, func(pa map[string]float64, u float64) float64 {
		return pa["X"] * u // multiplicative noise: not invertible by our abduction
	}, GaussianNoise(1))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Counterfactual(map[string]float64{"X": 1, "Y": 2}, map[string]float64{"X": 0}); err == nil {
		t.Fatal("non-additive mechanism accepted for abduction")
	}
}

func TestReplayMatchesSample(t *testing.T) {
	m := runningExample(1)
	a, err := m.Sample(mathx.NewRNG(5))
	if err != nil {
		t.Fatal(err)
	}
	re, err := m.Replay(a.Noise, nil)
	if err != nil {
		t.Fatal(err)
	}
	for k, v := range a.Values {
		if math.Abs(re[k]-v) > 1e-12 {
			t.Fatalf("replay %s = %v want %v", k, re[k], v)
		}
	}
	// Replay under do(R=0) equals the counterfactual computed by abduction.
	cf, err := m.Counterfactual(a.Values, map[string]float64{"R": 0})
	if err != nil {
		t.Fatal(err)
	}
	re0, err := m.Replay(a.Noise, map[string]float64{"R": 0})
	if err != nil {
		t.Fatal(err)
	}
	for k := range cf {
		if math.Abs(cf[k]-re0[k]) > 1e-9 {
			t.Fatalf("abduction vs replay mismatch on %s: %v vs %v", k, cf[k], re0[k])
		}
	}
}

func TestReplayMissingNoise(t *testing.T) {
	m := runningExample(1)
	if _, err := m.Replay(map[string]float64{"C": 0}, nil); err == nil {
		t.Fatal("missing noise accepted")
	}
}

func TestFitLinearRecoversCoefficients(t *testing.T) {
	truth := runningExample(0.5)
	cols, err := truth.SampleN(mathx.NewRNG(11), 5000)
	if err != nil {
		t.Fatal(err)
	}
	f, err := data.FromColumns(cols)
	if err != nil {
		t.Fatal(err)
	}
	g := dag.MustParse("C -> R; C -> L; R -> L")
	fit, err := FitLinear(g, f)
	if err != nil {
		t.Fatal(err)
	}
	if c, ok := fit.Coefficient("L", "R"); !ok || math.Abs(c-5) > 0.1 {
		t.Fatalf("fitted L~R coefficient = %v (ok=%v) want 5", c, ok)
	}
	if c, ok := fit.Coefficient("L", "C"); !ok || math.Abs(c-2) > 0.1 {
		t.Fatalf("fitted L~C coefficient = %v want 2", c)
	}
	if c, ok := fit.Coefficient("R", "C"); !ok || math.Abs(c-0.8) > 0.1 {
		t.Fatalf("fitted R~C coefficient = %v want 0.8", c)
	}
	// ATE from the fitted model should match the structural truth.
	ate, err := fit.ATE(context.Background(), parallel.Pool{}, mathx.NewRNG(12), "R", 0, 1, "L", 5000)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(ate-5) > 0.2 {
		t.Fatalf("fitted ATE = %v want 5", ate)
	}
}

func TestFitLinearErrors(t *testing.T) {
	g := dag.MustParse("U [latent]; U -> X")
	f, _ := data.FromColumns(map[string][]float64{"U": {1, 2, 3}, "X": {1, 2, 3}})
	if _, err := FitLinear(g, f); err == nil {
		t.Fatal("latent node accepted")
	}
	g2 := dag.MustParse("A -> B")
	f2, _ := data.FromColumns(map[string][]float64{"A": {1, 2, 3}})
	if _, err := FitLinear(g2, f2); err == nil {
		t.Fatal("missing column accepted")
	}
	f3, _ := data.FromColumns(map[string][]float64{"A": {1, 2}, "B": {1, 2}})
	if _, err := FitLinear(g2, f3); err == nil {
		t.Fatal("too few rows accepted")
	}
}

func TestCoefficientProbe(t *testing.T) {
	m := runningExample(1)
	if _, ok := m.Coefficient("L", "Z"); ok {
		t.Fatal("unknown parent reported")
	}
	if _, ok := m.Coefficient("Z", "C"); ok {
		t.Fatal("unknown node reported")
	}
}
