package scm_test

import (
	"fmt"

	"sisyphus/internal/causal/scm"
)

// The counterfactual the paper's operators want: the route changed and the
// call degraded — would it have degraded anyway? With a structural model
// the answer is exact: abduction recovers the latent conditions of that
// specific moment, and the model replays them under the other choice.
func ExampleModel_Counterfactual() {
	m := scm.New()
	_ = m.DefineLinear("C", nil, 0, scm.NoNoise())                                        // congestion
	_ = m.DefineLinear("R", map[string]float64{"C": 1}, 0, scm.NoNoise())                 // route
	_ = m.DefineLinear("L", map[string]float64{"C": 4, "R": 1}, 10, scm.GaussianNoise(1)) // latency

	// Observed: heavy congestion (C=2), the controller switched (R=2), and
	// latency spiked to 21 ms — 1 ms of which is idiosyncratic noise.
	observed := map[string]float64{"C": 2, "R": 2, "L": 21}

	// Would the spike have happened had the route NOT changed (R=0)?
	cf, _ := m.Counterfactual(observed, map[string]float64{"R": 0})
	fmt.Printf("factual L:        %.0f ms\n", observed["L"])
	fmt.Printf("counterfactual L: %.0f ms\n", cf["L"])
	fmt.Printf("attributable to the route change: %.0f ms\n", observed["L"]-cf["L"])
	// Output:
	// factual L:        21 ms
	// counterfactual L: 19 ms
	// attributable to the route change: 2 ms
}
