// Package scm implements structural causal models: the third rung of
// Pearl's ladder. A Model assigns each DAG node a mechanism X := f(pa(X), U)
// with independent noise U. It supports sampling (rung 1), do-interventions
// (rung 2), and abduction–action–prediction counterfactuals (rung 3) — the
// reasoning the paper argues operators implicitly rely on when they ask
// "would this degradation have happened without the routing change?".
package scm

import (
	"context"
	"fmt"
	"sort"

	"sisyphus/internal/causal/dag"
	"sisyphus/internal/mathx"
	"sisyphus/internal/obs"
	"sisyphus/internal/parallel"
)

// Mechanism computes a node's value from its parents' values and its
// exogenous noise term.
type Mechanism func(parents map[string]float64, noise float64) float64

// NoiseFn draws a node's exogenous noise.
type NoiseFn func(r *mathx.RNG) float64

// GaussianNoise returns a NoiseFn drawing from N(0, std²).
func GaussianNoise(std float64) NoiseFn {
	return func(r *mathx.RNG) float64 { return r.Normal(0, std) }
}

// NoNoise returns a NoiseFn that is always zero (deterministic mechanism).
func NoNoise() NoiseFn {
	return func(*mathx.RNG) float64 { return 0 }
}

// equation is one structural assignment.
type equation struct {
	parents []string
	fn      Mechanism
	noise   NoiseFn
	// additive marks mechanisms of the form f(pa) + U, which are invertible
	// in the noise and therefore support exact abduction.
	additive bool
	// base, for additive mechanisms, computes f(pa) without the noise.
	base func(parents map[string]float64) float64
}

// Model is a structural causal model over a DAG. Build it with Define /
// DefineLinear and query with Sample, Do, and Counterfactual.
type Model struct {
	graph *dag.Graph
	eqs   map[string]equation
}

// New returns an empty model.
func New() *Model {
	return &Model{graph: dag.New(), eqs: make(map[string]equation)}
}

// Graph returns the model's causal DAG (shared; do not mutate).
func (m *Model) Graph() *dag.Graph { return m.graph }

// Define adds a node with an arbitrary mechanism. Arbitrary mechanisms do
// not support exact counterfactual abduction (use DefineAdditive or
// DefineLinear for that). Returns an error if the node exists or an edge
// would create a cycle.
func (m *Model) Define(node string, parents []string, fn Mechanism, noise NoiseFn) error {
	return m.define(node, parents, equation{parents: parents, fn: fn, noise: noise})
}

// DefineAdditive adds a node whose mechanism is base(parents) + noise.
// Additive mechanisms are invertible in the noise term, enabling exact
// abduction for counterfactual queries.
func (m *Model) DefineAdditive(node string, parents []string, base func(map[string]float64) float64, noise NoiseFn) error {
	eq := equation{
		parents:  parents,
		fn:       func(pa map[string]float64, u float64) float64 { return base(pa) + u },
		noise:    noise,
		additive: true,
		base:     base,
	}
	return m.define(node, parents, eq)
}

// DefineLinear adds a node with mechanism
// intercept + Σ coeffs[p]·p + noise. The coefficient map's keys are the
// parent set.
func (m *Model) DefineLinear(node string, coeffs map[string]float64, intercept float64, noise NoiseFn) error {
	parents := make([]string, 0, len(coeffs))
	for p := range coeffs {
		parents = append(parents, p)
	}
	sort.Strings(parents)
	cp := make(map[string]float64, len(coeffs))
	for k, v := range coeffs {
		cp[k] = v
	}
	// Sum in sorted-parent order, never map order: float addition is not
	// associative, and ranging over the map reorders the sum per process
	// (Go randomizes map iteration), leaking ULP-level nondeterminism into
	// every linear SCM draw and breaking cross-run replay.
	base := func(pa map[string]float64) float64 {
		s := intercept
		for _, p := range parents {
			s += cp[p] * pa[p]
		}
		return s
	}
	return m.DefineAdditive(node, parents, base, noise)
}

func (m *Model) define(node string, parents []string, eq equation) error {
	if _, ok := m.eqs[node]; ok {
		return fmt.Errorf("scm: node %q already defined", node)
	}
	if eq.noise == nil {
		eq.noise = NoNoise()
	}
	m.graph.AddNode(node)
	for _, p := range parents {
		if err := m.graph.AddEdge(p, node); err != nil {
			return err
		}
	}
	m.eqs[node] = eq
	return nil
}

// validate checks that every node has an equation (roots may be implicit
// noise-only nodes only if defined with empty parents).
func (m *Model) validate() error {
	for _, n := range m.graph.Nodes() {
		if _, ok := m.eqs[n]; !ok {
			return fmt.Errorf("scm: node %q referenced as a parent but never defined", n)
		}
	}
	return nil
}

// Assignment is one complete joint outcome together with the exogenous noise
// that produced it. Keeping the noise enables counterfactual replay.
type Assignment struct {
	Values map[string]float64
	Noise  map[string]float64
}

// Sample draws one assignment from the observational distribution.
func (m *Model) Sample(r *mathx.RNG) (Assignment, error) {
	return m.sample(r, nil)
}

// SampleDo draws one assignment from the interventional distribution where
// each node in do is held at the given value (the graph surgery of rung 2).
func (m *Model) SampleDo(r *mathx.RNG, do map[string]float64) (Assignment, error) {
	return m.sample(r, do)
}

func (m *Model) sample(r *mathx.RNG, do map[string]float64) (Assignment, error) {
	if err := m.validate(); err != nil {
		return Assignment{}, err
	}
	vals := make(map[string]float64, len(m.eqs))
	noise := make(map[string]float64, len(m.eqs))
	for _, n := range m.graph.TopologicalOrder() {
		eq := m.eqs[n]
		u := eq.noise(r)
		noise[n] = u
		if v, ok := do[n]; ok {
			vals[n] = v
			continue
		}
		pa := make(map[string]float64, len(eq.parents))
		for _, p := range eq.parents {
			pa[p] = vals[p]
		}
		vals[n] = eq.fn(pa, u)
	}
	return Assignment{Values: vals, Noise: noise}, nil
}

// SampleN draws n assignments and returns them column-wise as a map from
// node name to sample vector.
func (m *Model) SampleN(r *mathx.RNG, n int) (map[string][]float64, error) {
	out := make(map[string][]float64)
	for i := 0; i < n; i++ {
		a, err := m.Sample(r)
		if err != nil {
			return nil, err
		}
		for k, v := range a.Values {
			out[k] = append(out[k], v)
		}
	}
	return out, nil
}

// ATE estimates the average treatment effect E[y | do(x=hi)] − E[y | do(x=lo)]
// by Monte Carlo with n draws per arm.
//
// Draws shard across pool. Each draw i consumes its own RNG stream,
// pre-split from r in index order before dispatch (the DESIGN.md
// determinism rule), and the per-draw contributions are summed in index
// order afterwards — so the estimate is bit-identical for any worker count,
// including the sequential width-1 path. Cancelling ctx stops scheduling
// further draws and returns ctx.Err().
func (m *Model) ATE(ctx context.Context, pool parallel.Pool, r *mathx.RNG, x string, lo, hi float64, y string, n int) (float64, error) {
	if err := m.validate(); err != nil {
		return 0, err
	}
	rngs := make([]*mathx.RNG, n)
	for i := range rngs {
		rngs[i] = r.Split()
	}
	doHi := map[string]float64{x: hi}
	doLo := map[string]float64{x: lo}
	type arms struct{ hi, lo float64 }
	draws, err := parallel.Map(ctx, pool, n, func(i int) (arms, error) {
		a, err := m.sample(rngs[i], doHi)
		if err != nil {
			return arms{}, err
		}
		b, err := m.sample(rngs[i], doLo)
		if err != nil {
			return arms{}, err
		}
		return arms{hi: a.Values[y], lo: b.Values[y]}, nil
	})
	if err != nil {
		return 0, err
	}
	var sumHi, sumLo float64
	for _, d := range draws {
		sumHi += d.hi
		sumLo += d.lo
	}
	// Monte-Carlo shard accounting (no-op without a recorder on ctx).
	obs.Add(ctx, "scm.mc_draws", int64(n))
	return (sumHi - sumLo) / float64(n), nil
}

// Counterfactual answers rung-3 queries for additive-noise models via
// abduction–action–prediction:
//
//	abduction:  recover each node's noise from the fully observed factual
//	            assignment (requires every mechanism on the path to be
//	            additive);
//	action:     apply the do-intervention;
//	prediction: re-evaluate the mechanisms with the recovered noise.
//
// observed must contain a value for every node in the model.
func (m *Model) Counterfactual(observed map[string]float64, do map[string]float64) (map[string]float64, error) {
	if err := m.validate(); err != nil {
		return nil, err
	}
	order := m.graph.TopologicalOrder()
	// Abduction.
	noise := make(map[string]float64, len(order))
	for _, n := range order {
		eq := m.eqs[n]
		x, ok := observed[n]
		if !ok {
			return nil, fmt.Errorf("scm: counterfactual requires observed value for %q", n)
		}
		if !eq.additive {
			return nil, fmt.Errorf("scm: node %q has a non-additive mechanism; exact abduction unavailable", n)
		}
		pa := make(map[string]float64, len(eq.parents))
		for _, p := range eq.parents {
			pa[p] = observed[p]
		}
		noise[n] = x - eq.base(pa)
	}
	// Action + prediction.
	vals := make(map[string]float64, len(order))
	for _, n := range order {
		if v, ok := do[n]; ok {
			vals[n] = v
			continue
		}
		eq := m.eqs[n]
		pa := make(map[string]float64, len(eq.parents))
		for _, p := range eq.parents {
			pa[p] = vals[p]
		}
		vals[n] = eq.base(pa) + noise[n]
	}
	return vals, nil
}

// Replay re-evaluates the model with a fixed noise assignment under an
// optional intervention. It is the simulation analogue of Counterfactual
// when the true noise is known (e.g. recorded by a simulator).
func (m *Model) Replay(noise map[string]float64, do map[string]float64) (map[string]float64, error) {
	if err := m.validate(); err != nil {
		return nil, err
	}
	vals := make(map[string]float64)
	for _, n := range m.graph.TopologicalOrder() {
		if v, ok := do[n]; ok {
			vals[n] = v
			continue
		}
		eq := m.eqs[n]
		pa := make(map[string]float64, len(eq.parents))
		for _, p := range eq.parents {
			pa[p] = vals[p]
		}
		u, ok := noise[n]
		if !ok {
			return nil, fmt.Errorf("scm: replay missing noise for %q", n)
		}
		vals[n] = eq.fn(pa, u)
	}
	return vals, nil
}
