package data

import (
	"bytes"
	"strings"
	"testing"
)

func TestFromColumnsAndAccess(t *testing.T) {
	f, err := FromColumns(map[string][]float64{
		"rtt":   {10, 20, 30},
		"route": {0, 1, 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	if f.Len() != 3 {
		t.Fatalf("len = %d", f.Len())
	}
	if got := f.MustColumn("rtt")[1]; got != 20 {
		t.Fatalf("rtt[1] = %v", got)
	}
	if _, ok := f.Column("nope"); ok {
		t.Fatal("missing column reported present")
	}
	if !f.Has("route") {
		t.Fatal("Has failed")
	}
}

func TestLengthMismatchRejected(t *testing.T) {
	if _, err := FromColumns(map[string][]float64{"a": {1}, "b": {1, 2}}); err == nil {
		t.Fatal("mismatched lengths accepted")
	}
	f := New()
	if err := f.AddColumn("a", []float64{1, 2}); err != nil {
		t.Fatal(err)
	}
	if err := f.AddColumn("a", []float64{3, 4}); err == nil {
		t.Fatal("duplicate column accepted")
	}
}

func TestAppendRow(t *testing.T) {
	f := New()
	if err := f.AppendRow(map[string]float64{"x": 1, "y": 2}); err != nil {
		t.Fatal(err)
	}
	if err := f.AppendRow(map[string]float64{"x": 3, "y": 4}); err != nil {
		t.Fatal(err)
	}
	if err := f.AppendRow(map[string]float64{"x": 5}); err == nil {
		t.Fatal("short row accepted")
	}
	if f.Len() != 2 {
		t.Fatalf("len = %d", f.Len())
	}
	if got := f.Row(1)["y"]; got != 4 {
		t.Fatalf("row(1).y = %v", got)
	}
}

func TestFilterSelectGroup(t *testing.T) {
	f, _ := FromColumns(map[string][]float64{
		"rtt":     {10, 50, 20, 60},
		"treated": {0, 1, 0, 1},
	})
	hi := f.Filter(func(r map[string]float64) bool { return r["treated"] == 1 })
	if hi.Len() != 2 || hi.MustColumn("rtt")[0] != 50 {
		t.Fatalf("filter = %v", hi.MustColumn("rtt"))
	}
	sel, err := f.Select("rtt")
	if err != nil {
		t.Fatal(err)
	}
	if len(sel.Columns()) != 1 {
		t.Fatalf("select cols = %v", sel.Columns())
	}
	if _, err := f.Select("missing"); err == nil {
		t.Fatal("select of missing column accepted")
	}
	keys, groups := f.GroupBy("treated")
	if len(keys) != 2 || keys[0] != 0 || keys[1] != 1 {
		t.Fatalf("keys = %v", keys)
	}
	if got := f.Gather("rtt", groups[1]); got[0] != 50 || got[1] != 60 {
		t.Fatalf("gather = %v", got)
	}
}

func TestCSVRoundTrip(t *testing.T) {
	f, _ := FromColumns(map[string][]float64{
		"a": {1.5, -2, 3e10},
		"b": {0, 0.25, -1},
	})
	var buf bytes.Buffer
	if err := f.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	g, err := ReadCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if g.Len() != f.Len() {
		t.Fatalf("round trip len = %d", g.Len())
	}
	for _, name := range f.Columns() {
		a := f.MustColumn(name)
		b := g.MustColumn(name)
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("col %s row %d: %v != %v", name, i, a[i], b[i])
			}
		}
	}
}

func TestReadCSVErrors(t *testing.T) {
	if _, err := ReadCSV(strings.NewReader("a,b\n1,notanumber\n")); err == nil {
		t.Fatal("non-numeric accepted")
	}
	if _, err := ReadCSV(strings.NewReader("")); err == nil {
		t.Fatal("empty input accepted")
	}
}

func TestMustColumnPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	New().MustColumn("x")
}

func TestDescribe(t *testing.T) {
	f, _ := FromColumns(map[string][]float64{
		"rtt": {1, 2, 3, 4},
		"one": {5},
	})
	_ = f // lengths differ: FromColumns must have failed
	g, err := FromColumns(map[string][]float64{"rtt": {1, 2, 3, 4}})
	if err != nil {
		t.Fatal(err)
	}
	out := g.Describe()
	if !strings.Contains(out, "rtt") || !strings.Contains(out, "2.500") {
		t.Fatalf("describe = %q", out)
	}
	empty := New()
	_ = empty.AddColumn("x", nil)
	if d := empty.Describe(); !strings.Contains(d, "x") {
		t.Fatalf("empty describe = %q", d)
	}
}
