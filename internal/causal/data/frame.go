// Package data provides the small columnar dataset used by the estimators:
// named float64 columns of equal length, with filtering, grouping and CSV
// round-tripping. Measurement records produced by the platform are flattened
// into Frames before any causal analysis.
package data

import (
	"encoding/csv"
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
)

// Frame is a columnar table of float64 values. The zero value is an empty
// frame ready to use.
type Frame struct {
	cols  map[string][]float64
	order []string
	n     int
}

// New returns an empty frame.
func New() *Frame { return &Frame{cols: make(map[string][]float64)} }

// FromColumns builds a frame from named columns, which must share a length.
func FromColumns(cols map[string][]float64) (*Frame, error) {
	f := New()
	names := make([]string, 0, len(cols))
	for name := range cols {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		if err := f.AddColumn(name, cols[name]); err != nil {
			return nil, err
		}
	}
	return f, nil
}

// AddColumn adds a named column. The first column fixes the row count.
func (f *Frame) AddColumn(name string, values []float64) error {
	if f.cols == nil {
		f.cols = make(map[string][]float64)
	}
	if _, ok := f.cols[name]; ok {
		return fmt.Errorf("data: duplicate column %q", name)
	}
	if len(f.order) == 0 {
		f.n = len(values)
	} else if len(values) != f.n {
		return fmt.Errorf("data: column %q has %d rows, frame has %d", name, len(values), f.n)
	}
	f.cols[name] = append([]float64(nil), values...)
	f.order = append(f.order, name)
	return nil
}

// MustColumn returns the named column, panicking if absent. The returned
// slice is the frame's backing storage; callers must not mutate it.
func (f *Frame) MustColumn(name string) []float64 {
	col, ok := f.cols[name]
	if !ok {
		panic(fmt.Sprintf("data: no column %q (have %v)", name, f.order))
	}
	return col
}

// Column returns the named column and whether it exists.
func (f *Frame) Column(name string) ([]float64, bool) {
	col, ok := f.cols[name]
	return col, ok
}

// Has reports whether the frame has the named column.
func (f *Frame) Has(name string) bool {
	_, ok := f.cols[name]
	return ok
}

// Columns returns the column names in insertion order.
func (f *Frame) Columns() []string { return append([]string(nil), f.order...) }

// Len returns the number of rows.
func (f *Frame) Len() int { return f.n }

// Row returns row i as a name → value map.
func (f *Frame) Row(i int) map[string]float64 {
	out := make(map[string]float64, len(f.order))
	for _, name := range f.order {
		out[name] = f.cols[name][i]
	}
	return out
}

// AppendRow appends one row given values for every column.
func (f *Frame) AppendRow(row map[string]float64) error {
	if len(f.order) == 0 {
		names := make([]string, 0, len(row))
		for name := range row {
			names = append(names, name)
		}
		sort.Strings(names)
		for _, name := range names {
			f.order = append(f.order, name)
			if f.cols == nil {
				f.cols = make(map[string][]float64)
			}
			f.cols[name] = nil
		}
	}
	for _, name := range f.order {
		v, ok := row[name]
		if !ok {
			return fmt.Errorf("data: row missing column %q", name)
		}
		f.cols[name] = append(f.cols[name], v)
	}
	if len(row) != len(f.order) {
		return fmt.Errorf("data: row has %d values, frame has %d columns", len(row), len(f.order))
	}
	f.n++
	return nil
}

// Filter returns a new frame with the rows for which keep returns true.
func (f *Frame) Filter(keep func(row map[string]float64) bool) *Frame {
	out := New()
	for _, name := range f.order {
		out.order = append(out.order, name)
		out.cols[name] = nil
	}
	for i := 0; i < f.n; i++ {
		row := f.Row(i)
		if keep(row) {
			for _, name := range f.order {
				out.cols[name] = append(out.cols[name], row[name])
			}
			out.n++
		}
	}
	return out
}

// Select returns a new frame with only the named columns.
func (f *Frame) Select(names ...string) (*Frame, error) {
	out := New()
	for _, name := range names {
		col, ok := f.cols[name]
		if !ok {
			return nil, fmt.Errorf("data: no column %q", name)
		}
		if err := out.AddColumn(name, col); err != nil {
			return nil, err
		}
	}
	return out, nil
}

// GroupBy partitions row indices by the (exact float) value of a column,
// returning group keys in ascending order alongside their row indices.
func (f *Frame) GroupBy(name string) (keys []float64, groups [][]int) {
	col := f.MustColumn(name)
	byKey := make(map[float64][]int)
	for i, v := range col {
		byKey[v] = append(byKey[v], i)
	}
	for k := range byKey {
		keys = append(keys, k)
	}
	sort.Float64s(keys)
	for _, k := range keys {
		groups = append(groups, byKey[k])
	}
	return keys, groups
}

// Gather returns the values of column name at the given row indices.
func (f *Frame) Gather(name string, idx []int) []float64 {
	col := f.MustColumn(name)
	out := make([]float64, len(idx))
	for i, j := range idx {
		out[i] = col[j]
	}
	return out
}

// WriteCSV writes the frame with a header row.
func (f *Frame) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(f.order); err != nil {
		return err
	}
	rec := make([]string, len(f.order))
	for i := 0; i < f.n; i++ {
		for j, name := range f.order {
			rec[j] = strconv.FormatFloat(f.cols[name][i], 'g', -1, 64)
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// ReadCSV parses a frame written by WriteCSV (or any numeric CSV with a
// header row).
func ReadCSV(r io.Reader) (*Frame, error) {
	cr := csv.NewReader(r)
	header, err := cr.Read()
	if err != nil {
		return nil, fmt.Errorf("data: reading header: %w", err)
	}
	cols := make([][]float64, len(header))
	for {
		rec, err := cr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, err
		}
		if len(rec) != len(header) {
			return nil, fmt.Errorf("data: row has %d fields, header has %d", len(rec), len(header))
		}
		for i, s := range rec {
			v, err := strconv.ParseFloat(s, 64)
			if err != nil {
				return nil, fmt.Errorf("data: column %q: %w", header[i], err)
			}
			cols[i] = append(cols[i], v)
		}
	}
	f := New()
	for i, name := range header {
		if err := f.AddColumn(name, cols[i]); err != nil {
			return nil, err
		}
	}
	return f, nil
}

// Describe returns a per-column summary rendered as an aligned text table:
// n, mean, std, min, median, max. Handy for eyeballing a campaign before
// modeling.
func (f *Frame) Describe() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%-16s %8s %10s %10s %10s %10s %10s\n", "column", "n", "mean", "std", "min", "median", "max")
	for _, name := range f.order {
		s := summarize(f.cols[name])
		fmt.Fprintf(&sb, "%-16s %8d %10.3f %10.3f %10.3f %10.3f %10.3f\n",
			name, len(f.cols[name]), s.mean, s.std, s.min, s.median, s.max)
	}
	return sb.String()
}

// summarize computes the Describe statistics without importing mathx
// (data sits below mathx-free in the dependency order by design: it is the
// one package everything can import).
type colSummary struct{ mean, std, min, median, max float64 }

func summarize(xs []float64) colSummary {
	n := len(xs)
	if n == 0 {
		nan := math.NaN()
		return colSummary{nan, nan, nan, nan, nan}
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	var sum float64
	for _, x := range xs {
		sum += x
	}
	mean := sum / float64(n)
	var ss float64
	for _, x := range xs {
		d := x - mean
		ss += d * d
	}
	std := 0.0
	if n > 1 {
		std = math.Sqrt(ss / float64(n-1))
	}
	median := sorted[n/2]
	if n%2 == 0 {
		median = (sorted[n/2-1] + sorted[n/2]) / 2
	}
	return colSummary{mean, std, sorted[0], median, sorted[n-1]}
}
