// Package discover implements constraint-based causal structure discovery
// (the PC algorithm with Meek orientation rules) on observational data.
// §4 of the paper argues DAGs "are not learned from data alone; they
// require domain insight" — discover is the complement: given the data, it
// recovers the equivalence class of structures the data supports, so a
// researcher can check whether their hand-drawn DAG is even compatible with
// what they measured.
package discover

import (
	"fmt"
	"sort"

	"sisyphus/internal/causal/dag"
	"sisyphus/internal/causal/data"
	"sisyphus/internal/causal/estimate"
)

// PDAG is a partially directed acyclic graph: the output of PC is an
// equivalence class, where some edges are oriented (present in every member
// of the class) and some remain undirected.
type PDAG struct {
	nodes []string
	// undirected adjacency (symmetric) and directed edges (from → to).
	und map[string]map[string]bool
	dir map[string]map[string]bool
}

// NewPDAG returns an empty PDAG over the given nodes.
func NewPDAG(nodes []string) *PDAG {
	p := &PDAG{
		nodes: append([]string(nil), nodes...),
		und:   make(map[string]map[string]bool),
		dir:   make(map[string]map[string]bool),
	}
	for _, n := range nodes {
		p.und[n] = make(map[string]bool)
		p.dir[n] = make(map[string]bool)
	}
	return p
}

// Nodes returns the node names.
func (p *PDAG) Nodes() []string { return append([]string(nil), p.nodes...) }

// HasUndirected reports an undirected edge between a and b.
func (p *PDAG) HasUndirected(a, b string) bool { return p.und[a][b] }

// HasDirected reports a directed edge a → b.
func (p *PDAG) HasDirected(a, b string) bool { return p.dir[a][b] }

// Adjacent reports any edge between a and b.
func (p *PDAG) Adjacent(a, b string) bool {
	return p.und[a][b] || p.dir[a][b] || p.dir[b][a]
}

func (p *PDAG) addUndirected(a, b string) { p.und[a][b] = true; p.und[b][a] = true }

func (p *PDAG) removeUndirected(a, b string) { delete(p.und[a], b); delete(p.und[b], a) }

// orient converts the undirected a—b into a → b.
func (p *PDAG) orient(a, b string) {
	p.removeUndirected(a, b)
	p.dir[a][b] = true
}

// neighbors returns all nodes adjacent to n (any edge type), sorted.
func (p *PDAG) neighbors(n string) []string {
	set := make(map[string]bool)
	for m := range p.und[n] {
		set[m] = true
	}
	for m := range p.dir[n] {
		set[m] = true
	}
	for _, other := range p.nodes {
		if p.dir[other][n] {
			set[other] = true
		}
	}
	out := make([]string, 0, len(set))
	for m := range set {
		out = append(out, m)
	}
	sort.Strings(out)
	return out
}

// UndirectedEdges returns the undirected edges as sorted pairs.
func (p *PDAG) UndirectedEdges() [][2]string {
	var out [][2]string
	for _, a := range p.nodes {
		for b := range p.und[a] {
			if a < b {
				out = append(out, [2]string{a, b})
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i][0] != out[j][0] {
			return out[i][0] < out[j][0]
		}
		return out[i][1] < out[j][1]
	})
	return out
}

// DirectedEdges returns the directed edges in deterministic order.
func (p *PDAG) DirectedEdges() [][2]string {
	var out [][2]string
	for _, a := range p.nodes {
		for b := range p.dir[a] {
			out = append(out, [2]string{a, b})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i][0] != out[j][0] {
			return out[i][0] < out[j][0]
		}
		return out[i][1] < out[j][1]
	})
	return out
}

func (p *PDAG) String() string {
	s := ""
	for _, e := range p.DirectedEdges() {
		s += fmt.Sprintf("%s -> %s; ", e[0], e[1])
	}
	for _, e := range p.UndirectedEdges() {
		s += fmt.Sprintf("%s -- %s; ", e[0], e[1])
	}
	return s
}

// Config tunes the PC run.
type Config struct {
	// Alpha is the CI-test significance level (default 0.01: PC prefers
	// conservative tests).
	Alpha float64
	// MaxCond bounds conditioning-set size (default 3).
	MaxCond int
}

func (c Config) withDefaults() Config {
	if c.Alpha <= 0 {
		c.Alpha = 0.01
	}
	if c.MaxCond <= 0 {
		c.MaxCond = 3
	}
	return c
}

// PC runs the PC algorithm over the named columns of f: skeleton discovery
// by conditional-independence testing, v-structure orientation, then Meek
// rules. The CI test is partial-correlation based (linear/Gaussian).
func PC(f *data.Frame, cols []string, cfg Config) (*PDAG, error) {
	cfg = cfg.withDefaults()
	for _, c := range cols {
		if !f.Has(c) {
			return nil, fmt.Errorf("discover: no column %q", c)
		}
	}
	p := NewPDAG(cols)
	for i := 0; i < len(cols); i++ {
		for j := i + 1; j < len(cols); j++ {
			p.addUndirected(cols[i], cols[j])
		}
	}
	// sepsets[x][y] records the set that separated x and y.
	sepsets := make(map[string]map[string][]string)
	recordSep := func(x, y string, s []string) {
		if sepsets[x] == nil {
			sepsets[x] = make(map[string][]string)
		}
		if sepsets[y] == nil {
			sepsets[y] = make(map[string][]string)
		}
		cp := append([]string(nil), s...)
		sepsets[x][y] = cp
		sepsets[y][x] = cp
	}

	// Stage 1: skeleton.
	for k := 0; k <= cfg.MaxCond; k++ {
		removed := false
		for i := 0; i < len(cols); i++ {
			for j := i + 1; j < len(cols); j++ {
				x, y := cols[i], cols[j]
				if !p.und[x][y] {
					continue
				}
				// Candidate conditioning sets: neighbours of x minus y,
				// then neighbours of y minus x (the separator can live on
				// either side of the edge).
				found := false
				for _, cands := range [][]string{without(p.neighbors(x), y), without(p.neighbors(y), x)} {
					if found || len(cands) < k {
						continue
					}
					forEachSubset(cands, k, func(s []string) bool {
						res, err := estimate.CITest(f, x, y, s)
						if err != nil {
							return false
						}
						if res.PValue > cfg.Alpha {
							p.removeUndirected(x, y)
							recordSep(x, y, s)
							found = true
							return true // stop
						}
						return false
					})
				}
				if found {
					removed = true
				}
			}
		}
		if !removed && k > 0 {
			break
		}
	}

	// Stage 2: v-structures. For each path x — z — y with x, y nonadjacent:
	// orient x → z ← y iff z is NOT in sepset(x, y).
	for _, z := range cols {
		nb := p.neighbors(z)
		for i := 0; i < len(nb); i++ {
			for j := i + 1; j < len(nb); j++ {
				x, y := nb[i], nb[j]
				if p.Adjacent(x, y) {
					continue
				}
				if !p.und[x][z] || !p.und[y][z] {
					continue
				}
				sep := sepsets[x][y]
				if containsStr(sep, z) {
					continue
				}
				p.orient(x, z)
				p.orient(y, z)
			}
		}
	}

	// Stage 3: Meek rules until fixpoint.
	for p.applyMeek() {
	}
	return p, nil
}

// applyMeek applies Meek rules R1–R3 once; returns true if anything changed.
func (p *PDAG) applyMeek() bool {
	changed := false
	for _, a := range p.nodes {
		for b := range copySet(p.und[a]) {
			// R1: c → a — b and c, b nonadjacent ⇒ a → b.
			for _, c := range p.nodes {
				if p.dir[c][a] && !p.Adjacent(c, b) {
					p.orient(a, b)
					changed = true
					break
				}
			}
			if !p.und[a][b] {
				continue
			}
			// R2: a → c → b and a — b ⇒ a → b.
			for _, c := range p.nodes {
				if p.dir[a][c] && p.dir[c][b] {
					p.orient(a, b)
					changed = true
					break
				}
			}
			if !p.und[a][b] {
				continue
			}
			// R3: a — c → b and a — d → b with c, d nonadjacent ⇒ a → b.
			var mids []string
			for _, c := range p.nodes {
				if p.und[a][c] && p.dir[c][b] {
					mids = append(mids, c)
				}
			}
			done := false
			for i := 0; i < len(mids) && !done; i++ {
				for j := i + 1; j < len(mids); j++ {
					if !p.Adjacent(mids[i], mids[j]) {
						p.orient(a, b)
						changed = true
						done = true
						break
					}
				}
			}
		}
	}
	return changed
}

// CompareResult quantifies agreement between a discovered PDAG and a
// reference DAG over the same nodes.
type CompareResult struct {
	// SkeletonMissing are adjacencies in the reference absent from the
	// discovery; SkeletonExtra the reverse.
	SkeletonMissing [][2]string
	SkeletonExtra   [][2]string
	// OrientedCorrect / OrientedWrong count directed edges in the PDAG that
	// agree / disagree with the reference orientation.
	OrientedCorrect int
	OrientedWrong   int
	// SHD is the structural Hamming distance (missing + extra + wrong).
	SHD int
}

// Compare evaluates the PDAG against a reference DAG (observed nodes only).
func Compare(p *PDAG, ref *dag.Graph) CompareResult {
	var res CompareResult
	nodes := p.Nodes()
	adjRef := func(a, b string) bool { return ref.HasEdge(a, b) || ref.HasEdge(b, a) }
	for i := 0; i < len(nodes); i++ {
		for j := i + 1; j < len(nodes); j++ {
			a, b := nodes[i], nodes[j]
			inP := p.Adjacent(a, b)
			inR := adjRef(a, b)
			if inR && !inP {
				res.SkeletonMissing = append(res.SkeletonMissing, [2]string{a, b})
			}
			if inP && !inR {
				res.SkeletonExtra = append(res.SkeletonExtra, [2]string{a, b})
			}
		}
	}
	for _, e := range p.DirectedEdges() {
		switch {
		case ref.HasEdge(e[0], e[1]):
			res.OrientedCorrect++
		case ref.HasEdge(e[1], e[0]):
			res.OrientedWrong++
		}
	}
	res.SHD = len(res.SkeletonMissing) + len(res.SkeletonExtra) + res.OrientedWrong
	return res
}

func without(xs []string, drop string) []string {
	var out []string
	for _, x := range xs {
		if x != drop {
			out = append(out, x)
		}
	}
	return out
}

func containsStr(xs []string, x string) bool {
	for _, v := range xs {
		if v == x {
			return true
		}
	}
	return false
}

func copySet(m map[string]bool) map[string]bool {
	out := make(map[string]bool, len(m))
	for k, v := range m {
		out[k] = v
	}
	return out
}

// forEachSubset visits size-k subsets of xs until fn returns true.
func forEachSubset(xs []string, k int, fn func([]string) bool) {
	if k == 0 {
		fn(nil)
		return
	}
	if k > len(xs) {
		return
	}
	set := make([]string, k)
	var rec func(start, depth int) bool
	rec = func(start, depth int) bool {
		if depth == k {
			return fn(set)
		}
		for i := start; i <= len(xs)-(k-depth); i++ {
			set[depth] = xs[i]
			if rec(i+1, depth+1) {
				return true
			}
		}
		return false
	}
	rec(0, 0)
}
