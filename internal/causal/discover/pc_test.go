package discover

import (
	"strings"
	"testing"

	"sisyphus/internal/causal/dag"
	"sisyphus/internal/causal/data"
	"sisyphus/internal/causal/scm"
	"sisyphus/internal/mathx"
)

// sample generates n draws from the model and returns them as a frame.
func sample(t *testing.T, m *scm.Model, seed uint64, n int) *data.Frame {
	t.Helper()
	cols, err := m.SampleN(mathx.NewRNG(seed), n)
	if err != nil {
		t.Fatal(err)
	}
	f, err := data.FromColumns(cols)
	if err != nil {
		t.Fatal(err)
	}
	return f
}

func TestPCRecoversChain(t *testing.T) {
	// X -> M -> Y: skeleton X—M—Y with no X—Y edge. The chain's
	// orientation is not identifiable (Markov equivalent to forks), so we
	// only require the skeleton.
	m := scm.New()
	_ = m.DefineLinear("X", nil, 0, scm.GaussianNoise(1))
	_ = m.DefineLinear("M", map[string]float64{"X": 1}, 0, scm.GaussianNoise(0.5))
	_ = m.DefineLinear("Y", map[string]float64{"M": 1}, 0, scm.GaussianNoise(0.5))
	f := sample(t, m, 1, 6000)
	p, err := PC(f, []string{"X", "M", "Y"}, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if !p.Adjacent("X", "M") || !p.Adjacent("M", "Y") {
		t.Fatalf("chain skeleton missing: %v", p)
	}
	if p.Adjacent("X", "Y") {
		t.Fatalf("spurious X—Y edge: %v", p)
	}
}

func TestPCRecoversVStructure(t *testing.T) {
	// X -> Z <- Y: the collider IS identifiable, PC must orient it.
	m := scm.New()
	_ = m.DefineLinear("X", nil, 0, scm.GaussianNoise(1))
	_ = m.DefineLinear("Y", nil, 0, scm.GaussianNoise(1))
	_ = m.DefineLinear("Z", map[string]float64{"X": 1, "Y": -1}, 0, scm.GaussianNoise(0.5))
	f := sample(t, m, 2, 6000)
	p, err := PC(f, []string{"X", "Y", "Z"}, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if !p.HasDirected("X", "Z") || !p.HasDirected("Y", "Z") {
		t.Fatalf("v-structure not oriented: %v", p)
	}
	if p.Adjacent("X", "Y") {
		t.Fatalf("spurious X—Y edge: %v", p)
	}
}

func TestPCRunningExampleSkeleton(t *testing.T) {
	// The paper's C -> R, C -> L, R -> L triangle: fully connected, so the
	// skeleton is complete and nothing is removable.
	m := scm.New()
	_ = m.DefineLinear("C", nil, 0, scm.GaussianNoise(1))
	_ = m.DefineLinear("R", map[string]float64{"C": 0.8}, 0, scm.GaussianNoise(0.7))
	_ = m.DefineLinear("L", map[string]float64{"C": 2, "R": 3}, 0, scm.GaussianNoise(0.7))
	f := sample(t, m, 3, 8000)
	p, err := PC(f, []string{"C", "R", "L"}, Config{})
	if err != nil {
		t.Fatal(err)
	}
	for _, pair := range [][2]string{{"C", "R"}, {"C", "L"}, {"R", "L"}} {
		if !p.Adjacent(pair[0], pair[1]) {
			t.Fatalf("triangle edge %v missing: %v", pair, p)
		}
	}
	ref := dag.MustParse("C -> R; C -> L; R -> L")
	cmp := Compare(p, ref)
	if len(cmp.SkeletonMissing) != 0 || len(cmp.SkeletonExtra) != 0 {
		t.Fatalf("skeleton mismatch: %+v", cmp)
	}
}

func TestPCWiderGraphSHD(t *testing.T) {
	// A 5-node graph with two colliders; require low structural error.
	m := scm.New()
	_ = m.DefineLinear("A", nil, 0, scm.GaussianNoise(1))
	_ = m.DefineLinear("B", nil, 0, scm.GaussianNoise(1))
	_ = m.DefineLinear("C", map[string]float64{"A": 1, "B": 1}, 0, scm.GaussianNoise(0.5))
	_ = m.DefineLinear("D", map[string]float64{"C": 1.2}, 0, scm.GaussianNoise(0.5))
	_ = m.DefineLinear("E", map[string]float64{"B": 1, "D": -1}, 0, scm.GaussianNoise(0.5))
	f := sample(t, m, 4, 10000)
	p, err := PC(f, []string{"A", "B", "C", "D", "E"}, Config{})
	if err != nil {
		t.Fatal(err)
	}
	ref := dag.MustParse("A -> C; B -> C; C -> D; B -> E; D -> E")
	cmp := Compare(p, ref)
	if len(cmp.SkeletonMissing) > 0 {
		t.Fatalf("missing adjacencies: %v (pdag %v)", cmp.SkeletonMissing, p)
	}
	if cmp.SHD > 2 {
		t.Fatalf("SHD = %d (pdag %v)", cmp.SHD, p)
	}
	if cmp.OrientedWrong > 0 {
		t.Fatalf("wrong orientations: %+v", cmp)
	}
	// The A → C ← B collider must be found.
	if !p.HasDirected("A", "C") || !p.HasDirected("B", "C") {
		t.Fatalf("collider at C unoriented: %v", p)
	}
}

func TestPCIndependentNodes(t *testing.T) {
	m := scm.New()
	_ = m.DefineLinear("X", nil, 0, scm.GaussianNoise(1))
	_ = m.DefineLinear("Y", nil, 0, scm.GaussianNoise(1))
	f := sample(t, m, 5, 4000)
	p, err := PC(f, []string{"X", "Y"}, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if p.Adjacent("X", "Y") {
		t.Fatalf("independent nodes connected: %v", p)
	}
}

func TestPCErrorsAndAccessors(t *testing.T) {
	f, _ := data.FromColumns(map[string][]float64{"X": {1, 2, 3}})
	if _, err := PC(f, []string{"X", "missing"}, Config{}); err == nil {
		t.Fatal("missing column accepted")
	}
	p := NewPDAG([]string{"a", "b", "c"})
	p.addUndirected("a", "b")
	p.orient("a", "b")
	if !p.HasDirected("a", "b") || p.HasUndirected("a", "b") {
		t.Fatal("orientation bookkeeping broken")
	}
	if got := p.DirectedEdges(); len(got) != 1 || got[0] != [2]string{"a", "b"} {
		t.Fatalf("directed = %v", got)
	}
	p.addUndirected("b", "c")
	if got := p.UndirectedEdges(); len(got) != 1 || got[0] != [2]string{"b", "c"} {
		t.Fatalf("undirected = %v", got)
	}
	if s := p.String(); !strings.Contains(s, "a -> b") || !strings.Contains(s, "b -- c") {
		t.Fatalf("string = %q", s)
	}
}
