package power

import (
	"context"
	"testing"

	"sisyphus/internal/causal/synthetic"
	"sisyphus/internal/parallel"
)

func table1ishDesign() SCDesign {
	return SCDesign{
		Donors: 18, PrePeriods: 42, PostPeriods: 42,
		UnitNoise: 1.2, Method: synthetic.Robust,
	}
}

func TestPowerMonotoneInEffect(t *testing.T) {
	d := table1ishDesign()
	pSmall, err := d.Power(context.Background(), parallel.Pool{}, 0.3, 0.06, 60, 1)
	if err != nil {
		t.Fatal(err)
	}
	pBig, err := d.Power(context.Background(), parallel.Pool{}, 5, 0.06, 60, 1)
	if err != nil {
		t.Fatal(err)
	}
	if pBig < pSmall {
		t.Fatalf("power not monotone: %v at 0.3ms vs %v at 5ms", pSmall, pBig)
	}
	if pBig < 0.8 {
		t.Fatalf("a 5ms effect should be nearly always detected: %v", pBig)
	}
	if pSmall > 0.5 {
		t.Fatalf("a 0.3ms effect in 1.2ms noise should rarely be detected: %v", pSmall)
	}
}

func TestPowerNullRespectsAlpha(t *testing.T) {
	d := table1ishDesign()
	p0, err := d.Power(context.Background(), parallel.Pool{}, 0, 0.06, 80, 2)
	if err != nil {
		t.Fatal(err)
	}
	// Under the null, detection rate ≈ alpha (rank test is exact-ish).
	if p0 > 0.2 {
		t.Fatalf("false positive rate %v under the null", p0)
	}
}

func TestMinDetectableEffect(t *testing.T) {
	d := table1ishDesign()
	mde, err := d.MinDetectableEffect(context.Background(), parallel.Pool{}, 0.06, 0.8, 8, 40, 3)
	if err != nil {
		t.Fatal(err)
	}
	if mde <= 0 || mde > 8 {
		t.Fatalf("mde = %v", mde)
	}
	// The Table 1 verdict in context: effects below the MDE (paper saw
	// ±0.1–3 ms on several units) are expected to be "not significant".
	t.Logf("minimum detectable effect at 80%% power: %.2f ms", mde)
	if _, err := d.MinDetectableEffect(context.Background(), parallel.Pool{}, 0.06, 1.5, 8, 10, 3); err == nil {
		t.Fatal("bad target accepted")
	}
	if _, err := d.MinDetectableEffect(context.Background(), parallel.Pool{}, 0.06, 0.9, 0.01, 10, 3); err == nil {
		t.Fatal("unreachable target accepted")
	}
}

func TestDesignValidation(t *testing.T) {
	bad := []SCDesign{
		{Donors: 1, PrePeriods: 10, PostPeriods: 10},
		{Donors: 5, PrePeriods: 2, PostPeriods: 10},
		{Donors: 5, PrePeriods: 10, PostPeriods: 0},
		{Donors: 5, PrePeriods: 10, PostPeriods: 10, UnitNoise: -1},
	}
	for i, d := range bad {
		if _, err := d.Power(context.Background(), parallel.Pool{}, 1, 0.05, 5, 1); err == nil {
			t.Fatalf("bad design %d accepted", i)
		}
	}
}
