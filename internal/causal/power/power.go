// Package power answers the §4 design question *before* a measurement
// campaign runs: given a planned synthetic-control study — so many donors,
// so many pre/post periods, so much per-bin noise — what effect sizes can
// the placebo test actually detect? It simulates the estimator on synthetic
// factor-model panels and reports detection power, and can invert the curve
// to the minimum detectable effect.
//
// This is the quantitative half of the paper's claim that "the value of a
// measurement lies in whether it helps resolve causal ambiguity": a design
// with power 0.2 for the effects one cares about will produce Table-1-style
// "not significant" rows no matter how carefully it is analyzed.
package power

import (
	"context"
	"fmt"
	"math"

	"sisyphus/internal/causal/synthetic"
	"sisyphus/internal/mathx"
	"sisyphus/internal/obs"
	"sisyphus/internal/parallel"
)

// SCDesign describes a planned synthetic-control study.
type SCDesign struct {
	// Donors is the donor-pool size (min p-value = 1/(Donors+1)).
	Donors int
	// PrePeriods and PostPeriods are panel lengths in bins.
	PrePeriods, PostPeriods int
	// UnitNoise is the idiosyncratic per-bin noise (same units as the
	// outcome, e.g. ms of median RTT).
	UnitNoise float64
	// FactorScale scales the shared latent factors (common trends donors
	// absorb); default 20.
	FactorScale float64
	// Method selects the estimator; default Robust.
	Method synthetic.Method
}

func (d SCDesign) withDefaults() (SCDesign, error) {
	if d.Donors < 2 {
		return d, fmt.Errorf("power: need at least 2 donors, have %d", d.Donors)
	}
	if d.PrePeriods < 4 || d.PostPeriods < 1 {
		return d, fmt.Errorf("power: need >= 4 pre and >= 1 post periods")
	}
	if d.UnitNoise < 0 {
		return d, fmt.Errorf("power: negative noise")
	}
	if d.FactorScale <= 0 {
		d.FactorScale = 20
	}
	return d, nil
}

// simulate builds one synthetic panel under the design with the given
// treatment effect and returns the placebo p-value. Each simulated trial is
// one shard of the pool already; its inner placebo test runs sequentially
// (width 1) so nested fan-out cannot oversubscribe the pool.
func (d SCDesign) simulate(ctx context.Context, r *mathx.RNG, effect float64) (float64, error) {
	nUnits := d.Donors + 1
	nTimes := d.PrePeriods + d.PostPeriods
	const nFactors = 3

	loads := mathx.NewMatrix(nUnits, nFactors)
	for i := range loads.Data {
		loads.Data[i] = 0.5 + r.Float64()
	}
	// Treated unit inside the donor hull.
	w := make([]float64, d.Donors)
	var wsum float64
	for i := range w {
		w[i] = r.Float64()
		wsum += w[i]
	}
	for k := 0; k < nFactors; k++ {
		var v float64
		for i := 1; i < nUnits; i++ {
			v += w[i-1] / wsum * loads.At(i, k)
		}
		loads.Set(0, k, v)
	}
	factors := mathx.NewMatrix(nFactors, nTimes)
	for k := 0; k < nFactors; k++ {
		level := d.FactorScale * (1 + 0.3*r.Float64())
		for t := 0; t < nTimes; t++ {
			factors.Set(k, t, level+0.15*d.FactorScale*math.Sin(float64(t)/4+float64(k))+r.Normal(0, 0.02*d.FactorScale))
		}
	}
	y := loads.Mul(factors)
	for i := range y.Data {
		y.Data[i] += r.Normal(0, d.UnitNoise)
	}
	for t := d.PrePeriods; t < nTimes; t++ {
		y.Set(0, t, y.At(0, t)+effect)
	}
	units := make([]string, nUnits)
	for i := range units {
		units[i] = fmt.Sprintf("u%d", i)
	}
	times := make([]float64, nTimes)
	for t := range times {
		times[t] = float64(t)
	}
	panel, err := synthetic.NewPanel(units, times, y)
	if err != nil {
		return 0, err
	}
	pl, err := synthetic.PlaceboTest(ctx, panel, "u0", d.PrePeriods,
		synthetic.Config{Method: d.Method, Pool: parallel.NewPool(1)})
	if err != nil {
		return 0, err
	}
	return pl.PValue, nil
}

// Power estimates the probability that the placebo test detects the given
// effect at level alpha, over `trials` simulated panels. Trials shard across
// pool; cancelling ctx stops scheduling further trials and returns ctx.Err().
func (d SCDesign) Power(ctx context.Context, pool parallel.Pool, effect, alpha float64, trials int, seed uint64) (float64, error) {
	dd, err := d.withDefaults()
	if err != nil {
		return 0, err
	}
	if trials <= 0 {
		trials = 100
	}
	// One pre-split RNG stream per trial, in trial order, then the trials
	// shard across the worker pool. Pre-splitting consumes the parent
	// stream exactly as the old sequential split-in-loop did, so power
	// numbers are unchanged AND identical for any worker count.
	r := mathx.NewRNG(seed)
	rngs := make([]*mathx.RNG, trials)
	for i := range rngs {
		rngs[i] = r.Split()
	}
	pvals, err := parallel.Map(ctx, pool, trials, func(i int) (float64, error) {
		return dd.simulate(ctx, rngs[i], effect)
	})
	if err != nil {
		return 0, err
	}
	detected := 0
	for _, p := range pvals {
		if p <= alpha {
			detected++
		}
	}
	// Monte-Carlo shard accounting (no-op without a recorder on ctx).
	obs.Add(ctx, "power.trials", int64(trials))
	return float64(detected) / float64(trials), nil
}

// MinDetectableEffect bisects the effect size until Power ≈ target at level
// alpha, searching in (0, maxEffect]. Returns the smallest effect with at
// least the target power (to bisection tolerance).
func (d SCDesign) MinDetectableEffect(ctx context.Context, pool parallel.Pool, alpha, target, maxEffect float64, trials int, seed uint64) (float64, error) {
	if target <= 0 || target >= 1 {
		return 0, fmt.Errorf("power: target must be in (0,1)")
	}
	hiPow, err := d.Power(ctx, pool, maxEffect, alpha, trials, seed)
	if err != nil {
		return 0, err
	}
	if hiPow < target {
		return 0, fmt.Errorf("power: even effect %v only reaches power %.2f < %.2f", maxEffect, hiPow, target)
	}
	lo, hi := 0.0, maxEffect
	for iter := 0; iter < 12; iter++ {
		mid := (lo + hi) / 2
		p, err := d.Power(ctx, pool, mid, alpha, trials, seed+uint64(iter)+1)
		if err != nil {
			return 0, err
		}
		if p >= target {
			hi = mid
		} else {
			lo = mid
		}
	}
	return hi, nil
}
