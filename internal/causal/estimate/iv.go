package estimate

import (
	"fmt"
	"math"

	"sisyphus/internal/causal/data"
	"sisyphus/internal/mathx"
)

// IVResult is the outcome of a two-stage least squares fit.
type IVResult struct {
	Estimate
	// FirstStageF is the F statistic for the instruments in the first
	// stage. Values below ~10 conventionally flag a weak instrument — the
	// "relevance" half of the paper's IV validity argument.
	FirstStageF float64
	// FirstStageR2 is the R² of the first-stage regression.
	FirstStageR2 float64
}

// TwoSLS estimates the causal effect of an endogenous treatment on outcome
// using instruments, optionally with exogenous controls included in both
// stages. All columns must exist in the frame.
//
// Stage 1 regresses treatment on instruments + controls; stage 2 regresses
// outcome on the fitted treatment + controls. Standard errors use the
// proper 2SLS residual (outcome minus structural prediction with the
// *actual* treatment), not the stage-2 OLS residual.
func TwoSLS(f *data.Frame, treatment, outcome string, instruments, controls []string) (*IVResult, error) {
	if len(instruments) == 0 {
		return nil, fmt.Errorf("estimate: 2SLS requires at least one instrument")
	}
	n := f.Len()
	kz := len(instruments)
	kc := len(controls)
	if n < kz+kc+3 {
		return nil, fmt.Errorf("estimate: %d rows too few for 2SLS with %d instruments and %d controls", n, kz, kc)
	}

	// First stage: treatment ~ instruments + controls.
	fs, err := OLS(f, treatment, append(append([]string{}, instruments...), controls...)...)
	if err != nil {
		return nil, fmt.Errorf("estimate: first stage: %w", err)
	}
	// Restricted first stage (controls only) for the instrument F test.
	var ssRestricted float64
	if kc > 0 {
		rs, err := OLS(f, treatment, controls...)
		if err != nil {
			return nil, fmt.Errorf("estimate: restricted first stage: %w", err)
		}
		ssRestricted = rs.Residuals.Dot(rs.Residuals)
	} else {
		t := mathx.Vector(f.MustColumn(treatment))
		mean := t.Mean()
		for _, v := range t {
			d := v - mean
			ssRestricted += d * d
		}
	}
	ssFull := fs.Residuals.Dot(fs.Residuals)
	dfFull := float64(n - (1 + kz + kc))
	fStat := math.NaN()
	if ssFull > 0 && dfFull > 0 {
		fStat = ((ssRestricted - ssFull) / float64(kz)) / (ssFull / dfFull)
	}

	// Fitted treatment values.
	tHat := make([]float64, n)
	for i := 0; i < n; i++ {
		row := f.Row(i)
		v := fs.Coef[0]
		for j, name := range fs.Names[1:] {
			v += fs.Coef[j+1] * row[name]
		}
		tHat[i] = v
	}

	// Stage 2 design: intercept + tHat + controls.
	p := 2 + kc
	x2 := mathx.NewMatrix(n, p)
	for i := 0; i < n; i++ {
		x2.Set(i, 0, 1)
		x2.Set(i, 1, tHat[i])
		for j, c := range controls {
			x2.Set(i, 2+j, f.MustColumn(c)[i])
		}
	}
	y := mathx.Vector(f.MustColumn(outcome)).Clone()
	xt := x2.T()
	xtx := xt.Mul(x2)
	xtxInv, err := mathx.Invert(xtx)
	if err != nil {
		return nil, fmt.Errorf("estimate: 2SLS second stage rank deficient: %w", err)
	}
	beta := xtxInv.MulVec(xt.MulVec(y))

	// Structural residuals use the ACTUAL treatment, not tHat.
	tAct := f.MustColumn(treatment)
	resid := make(mathx.Vector, n)
	for i := 0; i < n; i++ {
		pred := beta[0] + beta[1]*tAct[i]
		for j, c := range controls {
			pred += beta[2+j] * f.MustColumn(c)[i]
		}
		resid[i] = y[i] - pred
	}
	sigma2 := resid.Dot(resid) / float64(n-p)
	se := math.Sqrt(sigma2 * xtxInv.At(1, 1))

	return &IVResult{
		Estimate: Estimate{
			Method: fmt.Sprintf("2SLS (instruments: %v)", instruments),
			Effect: beta[1],
			SE:     se,
			N:      n,
		},
		FirstStageF:  fStat,
		FirstStageR2: fs.R2,
	}, nil
}

// WaldIV is the simple Wald/ratio IV estimator for one binary instrument:
// (E[y|z=1] − E[y|z=0]) / (E[t|z=1] − E[t|z=0]). Provided both as a sanity
// check for 2SLS and because it mirrors how natural-experiment contrasts are
// usually first computed by hand.
func WaldIV(f *data.Frame, treatment, outcome, instrument string) (Estimate, error) {
	z := f.MustColumn(instrument)
	t := f.MustColumn(treatment)
	y := f.MustColumn(outcome)
	var y1, y0, t1, t0 []float64
	for i, zi := range z {
		switch zi {
		case 1:
			y1 = append(y1, y[i])
			t1 = append(t1, t[i])
		case 0:
			y0 = append(y0, y[i])
			t0 = append(t0, t[i])
		default:
			return Estimate{}, fmt.Errorf("estimate: Wald IV instrument must be binary, got %v", zi)
		}
	}
	if len(y1) == 0 || len(y0) == 0 {
		return Estimate{}, ErrNoVariation
	}
	dy := mathx.Mean(y1) - mathx.Mean(y0)
	dt := mathx.Mean(t1) - mathx.Mean(t0)
	if math.Abs(dt) < 1e-12 {
		return Estimate{}, fmt.Errorf("estimate: instrument has no first stage (Δtreatment = %v)", dt)
	}
	eff := dy / dt
	// Delta-method SE, ignoring covariance between numerator and denominator
	// (adequate as a diagnostic; use 2SLS for inference).
	vy := mathx.Variance(y1)/float64(len(y1)) + mathx.Variance(y0)/float64(len(y0))
	vt := mathx.Variance(t1)/float64(len(t1)) + mathx.Variance(t0)/float64(len(t0))
	se := math.Abs(eff) * math.Sqrt(vy/(dy*dy)+vt/(dt*dt))
	return Estimate{
		Method: "Wald IV ratio",
		Effect: eff,
		SE:     se,
		N:      len(y1) + len(y0),
	}, nil
}
