package estimate

import (
	"fmt"
	"math"

	"sisyphus/internal/causal/data"
	"sisyphus/internal/mathx"
)

// Logistic fits a logistic regression P(y=1 | x) = σ(β₀ + Σ βⱼ xⱼ) by
// Newton–Raphson (IRLS). outcome must be binary {0,1}.
type Logistic struct {
	Names []string
	Coef  mathx.Vector
	Iter  int
}

// FitLogistic fits a logistic regression of the binary outcome on the given
// regressors plus an intercept.
func FitLogistic(f *data.Frame, outcome string, regressors ...string) (*Logistic, error) {
	n := f.Len()
	p := len(regressors) + 1
	if n < p+1 {
		return nil, fmt.Errorf("estimate: %d rows too few for logistic with %d regressors", n, len(regressors))
	}
	y := f.MustColumn(outcome)
	for _, v := range y {
		if v != 0 && v != 1 {
			return nil, fmt.Errorf("estimate: logistic outcome must be binary, got %v", v)
		}
	}
	x := mathx.NewMatrix(n, p)
	for i := 0; i < n; i++ {
		x.Set(i, 0, 1)
	}
	for j, name := range regressors {
		col, ok := f.Column(name)
		if !ok {
			return nil, fmt.Errorf("estimate: no column %q", name)
		}
		for i := 0; i < n; i++ {
			x.Set(i, j+1, col[i])
		}
	}

	beta := make(mathx.Vector, p)
	const maxIter = 50
	var iter int
	for iter = 0; iter < maxIter; iter++ {
		// mu_i = sigmoid(x_i · beta); W = diag(mu(1-mu)).
		grad := make(mathx.Vector, p)
		hess := mathx.NewMatrix(p, p)
		for i := 0; i < n; i++ {
			xi := x.Row(i)
			mu := sigmoid(xi.Dot(beta))
			w := mu * (1 - mu)
			if w < 1e-10 {
				w = 1e-10
			}
			for a := 0; a < p; a++ {
				grad[a] += (y[i] - mu) * xi[a]
				for b := 0; b < p; b++ {
					hess.Set(a, b, hess.At(a, b)+w*xi[a]*xi[b])
				}
			}
		}
		// Small ridge keeps the Hessian invertible under separation.
		for a := 0; a < p; a++ {
			hess.Set(a, a, hess.At(a, a)+1e-8)
		}
		step, err := mathx.SolveLinear(hess, grad)
		if err != nil {
			return nil, fmt.Errorf("estimate: logistic Newton step failed: %w", err)
		}
		beta = beta.Add(step)
		if step.Norm() < 1e-10 {
			break
		}
	}
	return &Logistic{Names: append([]string{"(intercept)"}, regressors...), Coef: beta, Iter: iter + 1}, nil
}

// Predict returns P(y=1 | row) for the named regressor values.
func (l *Logistic) Predict(row map[string]float64) float64 {
	s := l.Coef[0]
	for j := 1; j < len(l.Names); j++ {
		s += l.Coef[j] * row[l.Names[j]]
	}
	return sigmoid(s)
}

func sigmoid(z float64) float64 {
	if z >= 0 {
		return 1 / (1 + math.Exp(-z))
	}
	e := math.Exp(z)
	return e / (1 + e)
}

// IPW estimates the ATE by inverse propensity weighting: a logistic
// propensity model e(x) = P(T=1 | adjust) is fitted, then the Hájek
// (normalized) estimator contrasts weighted outcome means. Propensities are
// clipped to [clip, 1-clip] to control variance; clip <= 0 defaults to 0.01.
func IPW(f *data.Frame, treatment, outcome string, adjust []string, clip float64) (Estimate, error) {
	if clip <= 0 {
		clip = 0.01
	}
	model, err := FitLogistic(f, treatment, adjust...)
	if err != nil {
		return Estimate{}, err
	}
	tr := f.MustColumn(treatment)
	y := f.MustColumn(outcome)
	var sw1, swy1, sw0, swy0 float64
	var weights1, weights0 []float64
	n := f.Len()
	for i := 0; i < n; i++ {
		e := model.Predict(f.Row(i))
		e = math.Min(math.Max(e, clip), 1-clip)
		switch tr[i] {
		case 1:
			w := 1 / e
			sw1 += w
			swy1 += w * y[i]
			weights1 = append(weights1, w)
		case 0:
			w := 1 / (1 - e)
			sw0 += w
			swy0 += w * y[i]
			weights0 = append(weights0, w)
		default:
			return Estimate{}, fmt.Errorf("estimate: IPW treatment must be binary, got %v", tr[i])
		}
	}
	if sw1 == 0 || sw0 == 0 {
		return Estimate{}, ErrNoVariation
	}
	m1 := swy1 / sw1
	m0 := swy0 / sw0

	// Approximate variance via weighted within-arm dispersion.
	var v1, v0 float64
	j1, j0 := 0, 0
	for i := 0; i < n; i++ {
		switch tr[i] {
		case 1:
			w := weights1[j1]
			j1++
			d := y[i] - m1
			v1 += w * w * d * d
		case 0:
			w := weights0[j0]
			j0++
			d := y[i] - m0
			v0 += w * w * d * d
		}
	}
	se := math.Sqrt(v1/(sw1*sw1) + v0/(sw0*sw0))
	return Estimate{
		Method: "inverse propensity weighting (Hájek)",
		Effect: m1 - m0,
		SE:     se,
		N:      n,
		Detail: fmt.Sprintf("propensity clipped at %.3g", clip),
	}, nil
}

// Matching estimates the ATT by 1-nearest-neighbour matching with
// replacement on the adjustment covariates (Euclidean distance after
// per-covariate standardization).
func Matching(f *data.Frame, treatment, outcome string, adjust []string) (Estimate, error) {
	if len(adjust) == 0 {
		return Estimate{}, fmt.Errorf("estimate: matching needs at least one covariate")
	}
	tr := f.MustColumn(treatment)
	y := f.MustColumn(outcome)
	n := f.Len()

	// Standardize covariates so distance is scale-free.
	cov := make([][]float64, len(adjust))
	for j, name := range adjust {
		col, ok := f.Column(name)
		if !ok {
			return Estimate{}, fmt.Errorf("estimate: no column %q", name)
		}
		s := mathx.Summarize(col)
		std := s.Std
		if std == 0 {
			std = 1
		}
		z := make([]float64, n)
		for i, v := range col {
			z[i] = (v - s.Mean) / std
		}
		cov[j] = z
	}
	var treatedIdx, controlIdx []int
	for i, t := range tr {
		switch t {
		case 1:
			treatedIdx = append(treatedIdx, i)
		case 0:
			controlIdx = append(controlIdx, i)
		default:
			return Estimate{}, fmt.Errorf("estimate: matching treatment must be binary, got %v", t)
		}
	}
	if len(treatedIdx) == 0 || len(controlIdx) == 0 {
		return Estimate{}, ErrNoVariation
	}
	diffs := make([]float64, 0, len(treatedIdx))
	for _, ti := range treatedIdx {
		best, bestD := -1, math.Inf(1)
		for _, ci := range controlIdx {
			var d float64
			for j := range cov {
				dd := cov[j][ti] - cov[j][ci]
				d += dd * dd
			}
			if d < bestD {
				bestD, best = d, ci
			}
		}
		diffs = append(diffs, y[ti]-y[best])
	}
	s := mathx.Summarize(diffs)
	return Estimate{
		Method: "1-NN matching (ATT)",
		Effect: s.Mean,
		SE:     s.StandardError,
		N:      len(diffs),
	}, nil
}
