package estimate

import (
	"fmt"
	"math"

	"sisyphus/internal/causal/data"
)

// AIPW estimates the ATE with the augmented inverse-propensity-weighted
// (doubly robust) estimator: it combines an outcome regression (OLS of the
// outcome on the adjustment set, fit separately per arm) with a logistic
// propensity model. The estimate is consistent if *either* model is right —
// insurance the paper's §3 would appreciate, since functional forms on the
// Internet are rarely known.
//
//	ψ̂ = mean[ m₁(x) − m₀(x)
//	          + t (y − m₁(x)) / e(x)
//	          − (1−t)(y − m₀(x)) / (1 − e(x)) ]
func AIPW(f *data.Frame, treatment, outcome string, adjust []string, clip float64) (Estimate, error) {
	if clip <= 0 {
		clip = 0.01
	}
	if len(adjust) == 0 {
		return Estimate{}, fmt.Errorf("estimate: AIPW needs at least one adjustment covariate")
	}
	n := f.Len()
	tr := f.MustColumn(treatment)
	y := f.MustColumn(outcome)

	// Split arms for the outcome models.
	treated := f.Filter(func(r map[string]float64) bool { return r[treatment] == 1 })
	control := f.Filter(func(r map[string]float64) bool { return r[treatment] == 0 })
	if treated.Len() < len(adjust)+2 || control.Len() < len(adjust)+2 {
		return Estimate{}, ErrNoVariation
	}
	m1, err := OLS(treated, outcome, adjust...)
	if err != nil {
		return Estimate{}, fmt.Errorf("estimate: AIPW treated outcome model: %w", err)
	}
	m0, err := OLS(control, outcome, adjust...)
	if err != nil {
		return Estimate{}, fmt.Errorf("estimate: AIPW control outcome model: %w", err)
	}
	prop, err := FitLogistic(f, treatment, adjust...)
	if err != nil {
		return Estimate{}, fmt.Errorf("estimate: AIPW propensity model: %w", err)
	}

	predict := func(m *OLSResult, row map[string]float64) float64 {
		v := m.Coef[0]
		for j, name := range m.Names[1:] {
			v += m.Coef[j+1] * row[name]
		}
		return v
	}

	scores := make([]float64, n)
	for i := 0; i < n; i++ {
		row := f.Row(i)
		e := prop.Predict(row)
		e = math.Min(math.Max(e, clip), 1-clip)
		mu1 := predict(m1, row)
		mu0 := predict(m0, row)
		s := mu1 - mu0
		if tr[i] == 1 {
			s += (y[i] - mu1) / e
		} else {
			s -= (y[i] - mu0) / (1 - e)
		}
		scores[i] = s
	}
	var mean, varSum float64
	for _, s := range scores {
		mean += s
	}
	mean /= float64(n)
	for _, s := range scores {
		d := s - mean
		varSum += d * d
	}
	se := math.Sqrt(varSum / float64(n-1) / float64(n))
	return Estimate{
		Method: "AIPW (doubly robust)",
		Effect: mean,
		SE:     se,
		N:      n,
		Detail: fmt.Sprintf("propensity clipped at %.3g", clip),
	}, nil
}
