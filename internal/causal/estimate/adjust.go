package estimate

import (
	"fmt"
	"math"
	"sort"

	"sisyphus/internal/causal/data"
	"sisyphus/internal/mathx"
)

// NaiveAssociation contrasts mean outcome between treated (treatment == 1)
// and control (== 0) rows with no adjustment — rung 1 of the ladder, the
// P(L | R) comparison of the running example. It answers "what do we see?",
// not "what does the treatment do?".
func NaiveAssociation(f *data.Frame, treatment, outcome string) (Estimate, error) {
	tr := f.MustColumn(treatment)
	y := f.MustColumn(outcome)
	var y1, y0 []float64
	for i, t := range tr {
		if t == 1 {
			y1 = append(y1, y[i])
		} else if t == 0 {
			y0 = append(y0, y[i])
		}
	}
	if len(y1) == 0 || len(y0) == 0 {
		return Estimate{}, ErrNoVariation
	}
	s1 := mathx.Summarize(y1)
	s0 := mathx.Summarize(y0)
	se := math.Sqrt(s1.Var/float64(s1.N) + s0.Var/float64(s0.N))
	return Estimate{
		Method: "naive difference in means",
		Effect: s1.Mean - s0.Mean,
		SE:     se,
		N:      len(y1) + len(y0),
	}, nil
}

// Stratified estimates the ATE by backdoor stratification: rows are binned
// on each adjustment variable (quantile bins), the treated-control contrast
// is computed within each stratum, and strata are combined weighted by
// size. Strata lacking both arms are dropped and reported in Detail.
// This is the paper's "comparing latencies across routes only when C is
// similar, e.g. at comparable load levels".
func Stratified(f *data.Frame, treatment, outcome string, adjust []string, bins int) (Estimate, error) {
	if bins < 1 {
		return Estimate{}, fmt.Errorf("estimate: bins must be >= 1, got %d", bins)
	}
	if len(adjust) == 0 {
		return NaiveAssociation(f, treatment, outcome)
	}
	n := f.Len()
	tr := f.MustColumn(treatment)
	y := f.MustColumn(outcome)

	// Compute per-row stratum key as the concatenation of bin indices.
	keys := make([]string, n)
	for _, a := range adjust {
		col, ok := f.Column(a)
		if !ok {
			return Estimate{}, fmt.Errorf("estimate: no adjustment column %q", a)
		}
		cuts := quantileCuts(col, bins)
		for i, v := range col {
			keys[i] = keys[i] + "/" + fmt.Sprint(binOf(v, cuts))
		}
	}
	type stratum struct{ y1, y0 []float64 }
	strata := make(map[string]*stratum)
	for i := 0; i < n; i++ {
		s := strata[keys[i]]
		if s == nil {
			s = &stratum{}
			strata[keys[i]] = s
		}
		switch tr[i] {
		case 1:
			s.y1 = append(s.y1, y[i])
		case 0:
			s.y0 = append(s.y0, y[i])
		}
	}
	var totalW float64
	var eff, varSum float64
	used, dropped := 0, 0
	names := make([]string, 0, len(strata))
	for k := range strata {
		names = append(names, k)
	}
	sort.Strings(names)
	for _, k := range names {
		s := strata[k]
		if len(s.y1) == 0 || len(s.y0) == 0 {
			dropped += len(s.y1) + len(s.y0)
			continue
		}
		w := float64(len(s.y1) + len(s.y0))
		d1 := mathx.Summarize(s.y1)
		d0 := mathx.Summarize(s.y0)
		eff += w * (d1.Mean - d0.Mean)
		v := d1.Var/float64(d1.N) + d0.Var/float64(d0.N)
		varSum += w * w * v
		totalW += w
		used += int(w)
	}
	if totalW == 0 {
		return Estimate{}, fmt.Errorf("estimate: no stratum has both treated and control units")
	}
	return Estimate{
		Method: fmt.Sprintf("stratified backdoor adjustment (%d bins)", bins),
		Effect: eff / totalW,
		SE:     math.Sqrt(varSum) / totalW,
		N:      used,
		Detail: fmt.Sprintf("%d rows in off-support strata dropped", dropped),
	}, nil
}

// quantileCuts returns the interior cut points splitting col into `bins`
// quantile bins.
func quantileCuts(col []float64, bins int) []float64 {
	cuts := make([]float64, 0, bins-1)
	for b := 1; b < bins; b++ {
		cuts = append(cuts, mathx.Quantile(col, float64(b)/float64(bins)))
	}
	return cuts
}

func binOf(v float64, cuts []float64) int {
	for i, c := range cuts {
		if v <= c {
			return i
		}
	}
	return len(cuts)
}

// Regression estimates the treatment effect by OLS covariate adjustment:
// outcome ~ treatment + adjust..., reading off the treatment coefficient
// with HC1 robust standard errors.
func Regression(f *data.Frame, treatment, outcome string, adjust []string) (Estimate, error) {
	res, err := OLS(f, outcome, append([]string{treatment}, adjust...)...)
	if err != nil {
		return Estimate{}, err
	}
	coef, err := res.Coefficient(treatment)
	if err != nil {
		return Estimate{}, err
	}
	se, err := res.CoefficientSE(treatment)
	if err != nil {
		return Estimate{}, err
	}
	return Estimate{
		Method: "OLS covariate adjustment",
		Effect: coef,
		SE:     se,
		N:      res.N,
		Detail: fmt.Sprintf("R²=%.3f", res.R2),
	}, nil
}

// DifferenceInDifferences estimates the treatment effect from a 2×2 panel:
// group (treated vs control) × period (pre vs post). It removes any fixed
// level difference between groups and any common shock between periods:
// (ȳ_treated,post − ȳ_treated,pre) − (ȳ_control,post − ȳ_control,pre).
// Columns: group ∈ {0,1}, post ∈ {0,1}.
func DifferenceInDifferences(f *data.Frame, group, post, outcome string) (Estimate, error) {
	g := f.MustColumn(group)
	p := f.MustColumn(post)
	y := f.MustColumn(outcome)
	var cells [2][2][]float64
	for i := range y {
		gi, pi := int(g[i]), int(p[i])
		if (gi != 0 && gi != 1) || (pi != 0 && pi != 1) {
			return Estimate{}, fmt.Errorf("estimate: DiD needs binary group/post, got (%v, %v)", g[i], p[i])
		}
		cells[gi][pi] = append(cells[gi][pi], y[i])
	}
	var mean [2][2]float64
	var varOverN [2][2]float64
	for gi := 0; gi < 2; gi++ {
		for pi := 0; pi < 2; pi++ {
			if len(cells[gi][pi]) == 0 {
				return Estimate{}, fmt.Errorf("estimate: DiD cell (group=%d, post=%d) is empty", gi, pi)
			}
			s := mathx.Summarize(cells[gi][pi])
			mean[gi][pi] = s.Mean
			varOverN[gi][pi] = s.Var / float64(s.N)
		}
	}
	eff := (mean[1][1] - mean[1][0]) - (mean[0][1] - mean[0][0])
	se := math.Sqrt(varOverN[1][1] + varOverN[1][0] + varOverN[0][1] + varOverN[0][0])
	return Estimate{
		Method: "difference-in-differences",
		Effect: eff,
		SE:     se,
		N:      f.Len(),
	}, nil
}
