// Package estimate implements the estimators the paper's §3 walks through:
// naive association contrasts, backdoor adjustment (stratification, OLS
// covariate adjustment, inverse propensity weighting, matching), two-stage
// least squares for instrumental variables, and difference-in-differences.
//
// Every estimator consumes a data.Frame and returns an Estimate carrying the
// point effect, a standard error, and enough context to render the paper's
// style of result tables. The estimators are intentionally unaware of where
// data came from — platform measurements and SCM samples flatten into the
// same frames.
package estimate

import (
	"errors"
	"fmt"
	"math"

	"sisyphus/internal/causal/data"
	"sisyphus/internal/mathx"
)

// Estimate is the outcome of a causal (or associational) analysis.
type Estimate struct {
	Method string  // human-readable estimator name
	Effect float64 // point estimate of the contrast/effect
	SE     float64 // standard error (NaN when unavailable)
	N      int     // observations used
	Detail string  // optional notes (e.g. strata dropped)
}

// CI returns the normal-approximation confidence interval at the given
// level (e.g. 0.95).
func (e Estimate) CI(level float64) (lo, hi float64) {
	z := normalQuantile(0.5 + level/2)
	return e.Effect - z*e.SE, e.Effect + z*e.SE
}

// PValue returns the two-sided p-value against the null of zero effect,
// using the normal approximation.
func (e Estimate) PValue() float64 {
	if e.SE == 0 || math.IsNaN(e.SE) {
		return math.NaN()
	}
	z := math.Abs(e.Effect / e.SE)
	return 2 * mathx.NormalSurvival(z)
}

func (e Estimate) String() string {
	return fmt.Sprintf("%s: effect=%.4f se=%.4f n=%d", e.Method, e.Effect, e.SE, e.N)
}

// normalQuantile inverts the standard normal CDF by bisection; accuracy is
// ample for confidence intervals.
func normalQuantile(p float64) float64 {
	if p <= 0 || p >= 1 {
		return math.NaN()
	}
	lo, hi := -10.0, 10.0
	for i := 0; i < 80; i++ {
		mid := (lo + hi) / 2
		if mathx.NormalCDF(mid) < p {
			lo = mid
		} else {
			hi = mid
		}
	}
	return (lo + hi) / 2
}

// OLSResult is a fitted linear regression y = Xβ + ε with intercept.
type OLSResult struct {
	Names     []string // regressor names, Names[0] == "(intercept)"
	Coef      mathx.Vector
	SE        mathx.Vector // conventional (homoskedastic) standard errors
	RobustSE  mathx.Vector // HC1 heteroskedasticity-robust standard errors
	N         int
	Residuals mathx.Vector
	R2        float64
}

// Coefficient returns the coefficient for the named regressor.
func (o *OLSResult) Coefficient(name string) (float64, error) {
	for i, n := range o.Names {
		if n == name {
			return o.Coef[i], nil
		}
	}
	return 0, fmt.Errorf("estimate: no regressor %q", name)
}

// CoefficientSE returns the robust standard error for the named regressor.
func (o *OLSResult) CoefficientSE(name string) (float64, error) {
	for i, n := range o.Names {
		if n == name {
			return o.RobustSE[i], nil
		}
	}
	return 0, fmt.Errorf("estimate: no regressor %q", name)
}

// OLS regresses outcome on the given regressors (plus an intercept) over
// the frame.
func OLS(f *data.Frame, outcome string, regressors ...string) (*OLSResult, error) {
	n := f.Len()
	p := len(regressors) + 1
	if n < p+1 {
		return nil, fmt.Errorf("estimate: %d rows too few for %d regressors", n, len(regressors))
	}
	y := mathx.Vector(f.MustColumn(outcome)).Clone()
	x := mathx.NewMatrix(n, p)
	for i := 0; i < n; i++ {
		x.Set(i, 0, 1)
	}
	for j, name := range regressors {
		col, ok := f.Column(name)
		if !ok {
			return nil, fmt.Errorf("estimate: no column %q", name)
		}
		for i := 0; i < n; i++ {
			x.Set(i, j+1, col[i])
		}
	}
	return fitOLS(x, y, append([]string{"(intercept)"}, regressors...))
}

func fitOLS(x *mathx.Matrix, y mathx.Vector, names []string) (*OLSResult, error) {
	n, p := x.Rows, x.Cols
	xt := x.T()
	xtx := xt.Mul(x)
	xtxInv, err := mathx.Invert(xtx)
	if err != nil {
		return nil, fmt.Errorf("estimate: design matrix is rank deficient: %w", err)
	}
	beta := xtxInv.MulVec(xt.MulVec(y))
	pred := x.MulVec(beta)
	resid := y.Sub(pred)

	var ssRes, ssTot float64
	ybar := y.Mean()
	for i := range y {
		ssRes += resid[i] * resid[i]
		d := y[i] - ybar
		ssTot += d * d
	}
	sigma2 := ssRes / float64(n-p)

	se := make(mathx.Vector, p)
	for j := 0; j < p; j++ {
		se[j] = math.Sqrt(sigma2 * xtxInv.At(j, j))
	}

	// HC1 robust covariance: (XᵀX)⁻¹ Xᵀ diag(e²) X (XᵀX)⁻¹ · n/(n-p).
	meat := mathx.NewMatrix(p, p)
	for i := 0; i < n; i++ {
		e2 := resid[i] * resid[i]
		for a := 0; a < p; a++ {
			xa := x.At(i, a)
			if xa == 0 {
				continue
			}
			for b := 0; b < p; b++ {
				meat.Set(a, b, meat.At(a, b)+e2*xa*x.At(i, b))
			}
		}
	}
	cov := xtxInv.Mul(meat).Mul(xtxInv).Scale(float64(n) / float64(n-p))
	robust := make(mathx.Vector, p)
	for j := 0; j < p; j++ {
		robust[j] = math.Sqrt(math.Max(cov.At(j, j), 0))
	}

	r2 := 0.0
	if ssTot > 0 {
		r2 = 1 - ssRes/ssTot
	}
	return &OLSResult{
		Names: names, Coef: beta, SE: se, RobustSE: robust,
		N: n, Residuals: resid, R2: r2,
	}, nil
}

// ErrNoVariation indicates a treatment column with a single level.
var ErrNoVariation = errors.New("estimate: treatment has no variation")
