package estimate

import (
	"fmt"
	"math"

	"sisyphus/internal/causal/data"
	"sisyphus/internal/mathx"
)

// PartialCorrelation returns the correlation between x and y after linearly
// removing the given controls from both (the residual correlation).
func PartialCorrelation(f *data.Frame, x, y string, controls []string) (float64, error) {
	rx, err := residualize(f, x, controls)
	if err != nil {
		return 0, err
	}
	ry, err := residualize(f, y, controls)
	if err != nil {
		return 0, err
	}
	return mathx.Correlation(rx, ry), nil
}

func residualize(f *data.Frame, col string, controls []string) ([]float64, error) {
	if len(controls) == 0 {
		v, ok := f.Column(col)
		if !ok {
			return nil, fmt.Errorf("estimate: no column %q", col)
		}
		out := append([]float64(nil), v...)
		m := mathx.Mean(out)
		for i := range out {
			out[i] -= m
		}
		return out, nil
	}
	res, err := OLS(f, col, controls...)
	if err != nil {
		return nil, err
	}
	return res.Residuals, nil
}

// CITestResult is the outcome of a conditional-independence test.
type CITestResult struct {
	X, Y        string
	Given       []string
	PartialCorr float64
	PValue      float64 // two-sided, Fisher z approximation
	// Consistent is true when the data fail to reject independence at 5% —
	// i.e. the data are consistent with the DAG's implication.
	Consistent bool
}

func (c CITestResult) String() string {
	verdict := "REJECTED"
	if c.Consistent {
		verdict = "consistent"
	}
	return fmt.Sprintf("%s _||_ %s | %v: r=%.4f p=%.4f (%s)", c.X, c.Y, c.Given, c.PartialCorr, c.PValue, verdict)
}

// CITest tests the conditional independence X ⊥ Y | controls using the
// Fisher z transform of the partial correlation — the standard device for
// checking a DAG's testable implications against observational data (§4's
// "validate assumptions" step). Linear/Gaussian in spirit; treat rejections
// of small |r| with judgement.
func CITest(f *data.Frame, x, y string, controls []string) (CITestResult, error) {
	r, err := PartialCorrelation(f, x, y, controls)
	if err != nil {
		return CITestResult{}, err
	}
	n := float64(f.Len())
	k := float64(len(controls))
	out := CITestResult{X: x, Y: y, Given: controls, PartialCorr: r}
	df := n - k - 3
	if df < 1 {
		return CITestResult{}, fmt.Errorf("estimate: %d rows too few for CI test with %d controls", f.Len(), len(controls))
	}
	if math.Abs(r) >= 1 {
		out.PValue = 0
		out.Consistent = false
		return out, nil
	}
	z := 0.5 * math.Log((1+r)/(1-r)) * math.Sqrt(df)
	out.PValue = 2 * mathx.NormalSurvival(math.Abs(z))
	out.Consistent = out.PValue > 0.05
	return out, nil
}
