package estimate

import (
	"math"
	"testing"
	"testing/quick"

	"sisyphus/internal/causal/data"
	"sisyphus/internal/mathx"
)

// confoundedSample generates the paper's running example with binary
// treatment: congestion c ~ N(0,1); route change r = 1{0.8c + u > 0} with
// u ~ N(0,1) so treatment overlap holds at all congestion levels;
// latency l = 10 + 2c + effect*r + e.
func confoundedSample(seed uint64, n int, effect float64) *data.Frame {
	r := mathx.NewRNG(seed)
	c := make([]float64, n)
	tr := make([]float64, n)
	l := make([]float64, n)
	for i := 0; i < n; i++ {
		c[i] = r.Normal(0, 1)
		if 0.8*c[i]+r.Normal(0, 1) > 0 {
			tr[i] = 1
		}
		l[i] = 10 + 2*c[i] + effect*tr[i] + r.Normal(0, 0.5)
	}
	f, err := data.FromColumns(map[string][]float64{"C": c, "R": tr, "L": l})
	if err != nil {
		panic(err)
	}
	return f
}

func TestNaiveAssociationIsBiased(t *testing.T) {
	f := confoundedSample(1, 8000, 3)
	naive, err := NaiveAssociation(f, "R", "L")
	if err != nil {
		t.Fatal(err)
	}
	// Treated units have higher C, so the naive contrast overstates 3 by
	// about 2·(E[C|R=1] − E[C|R=0]) ≈ 2; require clear upward bias.
	if naive.Effect < 4 {
		t.Fatalf("expected confounded naive estimate >> 3, got %v", naive.Effect)
	}
}

func TestStratifiedRemovesConfounding(t *testing.T) {
	f := confoundedSample(2, 20000, 3)
	est, err := Stratified(f, "R", "L", []string{"C"}, 20)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(est.Effect-3) > 0.25 {
		t.Fatalf("stratified = %v want ≈3", est.Effect)
	}
	if est.SE <= 0 {
		t.Fatalf("se = %v", est.SE)
	}
}

func TestStratifiedNoAdjustFallsBackToNaive(t *testing.T) {
	f := confoundedSample(3, 2000, 3)
	a, _ := Stratified(f, "R", "L", nil, 5)
	b, _ := NaiveAssociation(f, "R", "L")
	if a.Effect != b.Effect {
		t.Fatalf("fallback mismatch: %v vs %v", a.Effect, b.Effect)
	}
}

func TestStratifiedErrors(t *testing.T) {
	f := confoundedSample(4, 100, 3)
	if _, err := Stratified(f, "R", "L", []string{"C"}, 0); err == nil {
		t.Fatal("bins=0 accepted")
	}
	if _, err := Stratified(f, "R", "L", []string{"missing"}, 4); err == nil {
		t.Fatal("missing column accepted")
	}
}

func TestRegressionAdjustment(t *testing.T) {
	f := confoundedSample(5, 8000, 3)
	est, err := Regression(f, "R", "L", []string{"C"})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(est.Effect-3) > 0.1 {
		t.Fatalf("regression = %v want ≈3", est.Effect)
	}
	lo, hi := est.CI(0.95)
	if lo > 3 || hi < 3 {
		t.Fatalf("CI [%v, %v] misses truth", lo, hi)
	}
	if p := est.PValue(); p > 1e-6 {
		t.Fatalf("p = %v for a strong effect", p)
	}
}

func TestOLSRecoversPlantedModel(t *testing.T) {
	r := mathx.NewRNG(6)
	n := 3000
	x1 := make([]float64, n)
	x2 := make([]float64, n)
	y := make([]float64, n)
	for i := 0; i < n; i++ {
		x1[i] = r.Normal(0, 1)
		x2[i] = r.Normal(0, 2)
		y[i] = 1.5 - 2*x1[i] + 0.5*x2[i] + r.Normal(0, 0.3)
	}
	f, _ := data.FromColumns(map[string][]float64{"x1": x1, "x2": x2, "y": y})
	res, err := OLS(f, "y", "x1", "x2")
	if err != nil {
		t.Fatal(err)
	}
	checks := map[string]float64{"(intercept)": 1.5, "x1": -2, "x2": 0.5}
	for name, want := range checks {
		got, err := res.Coefficient(name)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(got-want) > 0.05 {
			t.Fatalf("%s = %v want %v", name, got, want)
		}
	}
	if res.R2 < 0.9 {
		t.Fatalf("R² = %v", res.R2)
	}
	if se, _ := res.CoefficientSE("x1"); se <= 0 || se > 0.05 {
		t.Fatalf("robust se = %v", se)
	}
}

func TestOLSRankDeficient(t *testing.T) {
	f, _ := data.FromColumns(map[string][]float64{
		"a": {1, 2, 3, 4},
		"b": {2, 4, 6, 8}, // collinear with a
		"y": {1, 2, 3, 4},
	})
	if _, err := OLS(f, "y", "a", "b"); err == nil {
		t.Fatal("collinear design accepted")
	}
}

func TestFitLogisticRecoversCoefficients(t *testing.T) {
	r := mathx.NewRNG(7)
	n := 8000
	x := make([]float64, n)
	y := make([]float64, n)
	for i := 0; i < n; i++ {
		x[i] = r.Normal(0, 1)
		p := 1 / (1 + math.Exp(-(0.5 + 1.5*x[i])))
		if r.Bernoulli(p) {
			y[i] = 1
		}
	}
	f, _ := data.FromColumns(map[string][]float64{"x": x, "y": y})
	m, err := FitLogistic(f, "y", "x")
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(m.Coef[0]-0.5) > 0.15 || math.Abs(m.Coef[1]-1.5) > 0.15 {
		t.Fatalf("logistic coef = %v want [0.5 1.5]", m.Coef)
	}
	if p := m.Predict(map[string]float64{"x": 0}); math.Abs(p-sigmoid(m.Coef[0])) > 1e-9 {
		t.Fatalf("predict = %v", p)
	}
}

func TestFitLogisticRejectsNonBinary(t *testing.T) {
	f, _ := data.FromColumns(map[string][]float64{"x": {1, 2, 3, 4}, "y": {0, 1, 2, 0}})
	if _, err := FitLogistic(f, "y", "x"); err == nil {
		t.Fatal("non-binary outcome accepted")
	}
}

func TestIPWRemovesConfounding(t *testing.T) {
	f := confoundedSample(8, 20000, 3)
	est, err := IPW(f, "R", "L", []string{"C"}, 0.01)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(est.Effect-3) > 0.3 {
		t.Fatalf("IPW = %v want ≈3", est.Effect)
	}
}

func TestMatchingRemovesConfounding(t *testing.T) {
	f := confoundedSample(9, 4000, 3)
	est, err := Matching(f, "R", "L", []string{"C"})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(est.Effect-3) > 0.3 {
		t.Fatalf("matching = %v want ≈3", est.Effect)
	}
}

func TestMatchingNeedsCovariates(t *testing.T) {
	f := confoundedSample(10, 100, 3)
	if _, err := Matching(f, "R", "L", nil); err == nil {
		t.Fatal("no covariates accepted")
	}
}

// ivSample builds an endogenous-treatment world with a valid instrument:
// latent u confounds t and y; z shifts t and touches y only through t.
func ivSample(seed uint64, n int, effect float64) *data.Frame {
	r := mathx.NewRNG(seed)
	z := make([]float64, n)
	tr := make([]float64, n)
	y := make([]float64, n)
	for i := 0; i < n; i++ {
		u := r.Normal(0, 1)
		if r.Bernoulli(0.5) {
			z[i] = 1
		}
		tr[i] = 0.8*z[i] + u + r.Normal(0, 0.5)
		y[i] = 5 + effect*tr[i] + 2*u + r.Normal(0, 0.5)
	}
	f, _ := data.FromColumns(map[string][]float64{"Z": z, "T": tr, "Y": y})
	return f
}

func TestTwoSLSBeatsOLSUnderEndogeneity(t *testing.T) {
	f := ivSample(11, 20000, 1.5)
	ols, err := Regression(f, "T", "Y", nil)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(ols.Effect-1.5) < 0.5 {
		t.Fatalf("OLS should be badly biased; got %v", ols.Effect)
	}
	iv, err := TwoSLS(f, "T", "Y", []string{"Z"}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(iv.Effect-1.5) > 0.2 {
		t.Fatalf("2SLS = %v want ≈1.5", iv.Effect)
	}
	if iv.FirstStageF < 10 {
		t.Fatalf("first-stage F = %v; this instrument is strong by construction", iv.FirstStageF)
	}
}

func TestTwoSLSWithControls(t *testing.T) {
	// Add an observed control that hits both treatment and outcome.
	r := mathx.NewRNG(12)
	n := 10000
	z := make([]float64, n)
	w := make([]float64, n)
	tr := make([]float64, n)
	y := make([]float64, n)
	for i := 0; i < n; i++ {
		u := r.Normal(0, 1)
		w[i] = r.Normal(0, 1)
		if r.Bernoulli(0.5) {
			z[i] = 1
		}
		tr[i] = 0.8*z[i] + 0.7*w[i] + u + r.Normal(0, 0.5)
		y[i] = 5 + 1.5*tr[i] + 1.2*w[i] + 2*u + r.Normal(0, 0.5)
	}
	f, _ := data.FromColumns(map[string][]float64{"Z": z, "W": w, "T": tr, "Y": y})
	iv, err := TwoSLS(f, "T", "Y", []string{"Z"}, []string{"W"})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(iv.Effect-1.5) > 0.25 {
		t.Fatalf("2SLS with controls = %v want ≈1.5", iv.Effect)
	}
}

func TestWaldIVAgreesWithTwoSLS(t *testing.T) {
	f := ivSample(13, 20000, 1.5)
	wald, err := WaldIV(f, "T", "Y", "Z")
	if err != nil {
		t.Fatal(err)
	}
	iv, err := TwoSLS(f, "T", "Y", []string{"Z"}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(wald.Effect-iv.Effect) > 0.01 {
		t.Fatalf("Wald %v vs 2SLS %v should coincide for one binary instrument", wald.Effect, iv.Effect)
	}
}

func TestWaldIVNoFirstStage(t *testing.T) {
	f, _ := data.FromColumns(map[string][]float64{
		"Z": {0, 1, 0, 1},
		"T": {1, 1, 1, 1}, // instrument does not move treatment
		"Y": {1, 2, 3, 4},
	})
	if _, err := WaldIV(f, "T", "Y", "Z"); err == nil {
		t.Fatal("zero first stage accepted")
	}
}

func TestTwoSLSRequiresInstrument(t *testing.T) {
	f := ivSample(14, 100, 1)
	if _, err := TwoSLS(f, "T", "Y", nil, nil); err == nil {
		t.Fatal("no instruments accepted")
	}
}

func TestDifferenceInDifferences(t *testing.T) {
	// Treated group gains +4 post; common shock +2; group gap +10.
	r := mathx.NewRNG(15)
	var g, p, y []float64
	for i := 0; i < 4000; i++ {
		gi := float64(i % 2)
		pi := float64((i / 2) % 2)
		yi := 20 + 10*gi + 2*pi + 4*gi*pi + r.Normal(0, 1)
		g = append(g, gi)
		p = append(p, pi)
		y = append(y, yi)
	}
	f, _ := data.FromColumns(map[string][]float64{"g": g, "p": p, "y": y})
	est, err := DifferenceInDifferences(f, "g", "p", "y")
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(est.Effect-4) > 0.2 {
		t.Fatalf("DiD = %v want 4", est.Effect)
	}
}

func TestDiDEmptyCell(t *testing.T) {
	f, _ := data.FromColumns(map[string][]float64{
		"g": {0, 0, 1},
		"p": {0, 1, 0},
		"y": {1, 2, 3},
	})
	if _, err := DifferenceInDifferences(f, "g", "p", "y"); err == nil {
		t.Fatal("empty cell accepted")
	}
}

func TestEstimateCIAndPValueDegenerate(t *testing.T) {
	e := Estimate{Effect: 1, SE: math.NaN()}
	if !math.IsNaN(e.PValue()) {
		t.Fatal("NaN SE should give NaN p")
	}
	e2 := Estimate{Effect: 0, SE: 1}
	if p := e2.PValue(); math.Abs(p-1) > 1e-9 {
		t.Fatalf("zero effect p = %v want 1", p)
	}
}

func TestNormalQuantileInvertsCDF(t *testing.T) {
	for _, p := range []float64{0.025, 0.5, 0.975} {
		q := normalQuantile(p)
		if math.Abs(mathx.NormalCDF(q)-p) > 1e-9 {
			t.Fatalf("quantile(%v) = %v round trips to %v", p, q, mathx.NormalCDF(q))
		}
	}
	if math.Abs(normalQuantile(0.975)-1.959964) > 1e-4 {
		t.Fatalf("z(0.975) = %v", normalQuantile(0.975))
	}
}

func TestAIPWDoublyRobust(t *testing.T) {
	f := confoundedSample(16, 15000, 3)
	est, err := AIPW(f, "R", "L", []string{"C"}, 0.01)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(est.Effect-3) > 0.15 {
		t.Fatalf("AIPW = %v want ≈3", est.Effect)
	}
	lo, hi := est.CI(0.95)
	if lo > 3 || hi < 3 {
		t.Fatalf("AIPW CI [%v, %v] misses truth", lo, hi)
	}
	if _, err := AIPW(f, "R", "L", nil, 0.01); err == nil {
		t.Fatal("no covariates accepted")
	}
}

func TestAIPWRobustToBrokenPropensityModel(t *testing.T) {
	// Feed AIPW a useless propensity covariate alongside the real one via a
	// nonlinear treatment rule: outcome model still correct ⇒ estimate holds.
	r := mathx.NewRNG(17)
	n := 12000
	c := make([]float64, n)
	tr := make([]float64, n)
	l := make([]float64, n)
	for i := 0; i < n; i++ {
		c[i] = r.Normal(0, 1)
		// Sharply nonlinear propensity — the logistic model is misspecified.
		p := 0.05
		if c[i] > 0.3 {
			p = 0.95
		}
		if r.Bernoulli(p) {
			tr[i] = 1
		}
		l[i] = 10 + 2*c[i] + 3*tr[i] + r.Normal(0, 0.5)
	}
	f, _ := data.FromColumns(map[string][]float64{"C": c, "R": tr, "L": l})
	est, err := AIPW(f, "R", "L", []string{"C"}, 0.01)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(est.Effect-3) > 0.25 {
		t.Fatalf("AIPW under misspecified propensity = %v want ≈3", est.Effect)
	}
}

func TestAIPWNoVariation(t *testing.T) {
	f, _ := data.FromColumns(map[string][]float64{
		"R": {1, 1, 1, 1, 1, 1},
		"L": {1, 2, 3, 4, 5, 6},
		"C": {0, 1, 0, 1, 0, 1},
	})
	if _, err := AIPW(f, "R", "L", []string{"C"}, 0.01); err == nil {
		t.Fatal("single-arm data accepted")
	}
}

// Equivariance properties via testing/quick: estimators must transform
// predictably under affine changes of the outcome — a cheap invariant that
// catches unit-handling bugs (ms vs s, offsets).
func TestEstimatorAffineEquivariance(t *testing.T) {
	f := func(seed uint64) bool {
		r := mathx.NewRNG(seed)
		scale := 0.5 + 4*r.Float64()
		shift := r.Normal(0, 50)
		base := confoundedSample(seed, 1500, 2)
		scaled := data.New()
		for _, name := range base.Columns() {
			col := append([]float64(nil), base.MustColumn(name)...)
			if name == "L" {
				for i := range col {
					col[i] = col[i]*scale + shift
				}
			}
			if err := scaled.AddColumn(name, col); err != nil {
				return false
			}
		}
		for _, est := range []func(*data.Frame) (Estimate, error){
			func(g *data.Frame) (Estimate, error) { return NaiveAssociation(g, "R", "L") },
			func(g *data.Frame) (Estimate, error) { return Regression(g, "R", "L", []string{"C"}) },
			func(g *data.Frame) (Estimate, error) { return Stratified(g, "R", "L", []string{"C"}, 8) },
		} {
			a, err1 := est(base)
			b, err2 := est(scaled)
			if err1 != nil || err2 != nil {
				return false
			}
			// Effect scales by `scale`; the shift cancels in every contrast.
			if math.Abs(b.Effect-a.Effect*scale) > 1e-6*(1+math.Abs(a.Effect*scale)) {
				t.Logf("seed %d: effect %v scaled to %v, want %v", seed, a.Effect, b.Effect, a.Effect*scale)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

// Treatment relabeling: swapping the arms flips the sign of the contrast.
func TestEstimatorArmSymmetry(t *testing.T) {
	f := func(seed uint64) bool {
		base := confoundedSample(seed, 1500, 2)
		flipped := data.New()
		for _, name := range base.Columns() {
			col := append([]float64(nil), base.MustColumn(name)...)
			if name == "R" {
				for i := range col {
					col[i] = 1 - col[i]
				}
			}
			if err := flipped.AddColumn(name, col); err != nil {
				return false
			}
		}
		a, err1 := Regression(base, "R", "L", []string{"C"})
		b, err2 := Regression(flipped, "R", "L", []string{"C"})
		if err1 != nil || err2 != nil {
			return false
		}
		return math.Abs(a.Effect+b.Effect) < 1e-8*(1+math.Abs(a.Effect))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}
