package synthetic

import (
	"fmt"
	"math"

	"sisyphus/internal/mathx"
)

// JackknifeCI estimates a confidence interval for the treated unit's ATT by
// leave-one-donor-out jackknife: the estimator is refit with each donor
// removed, and the spread of the resulting ATTs measures how much the
// counterfactual depends on any single donor. Wide intervals flag fragile
// donor pools — one of the diagnostics Abadie's checklist (cited by the
// paper) asks for.
type JackknifeCI struct {
	ATT      float64
	SE       float64
	Lo, Hi   float64 // normal-approximation bounds at the requested level
	Replicas []float64
}

// Jackknife runs the leave-one-donor-out analysis. level is the confidence
// level (e.g. 0.95). It requires at least 3 donors.
func Jackknife(p *Panel, treated string, t0 int, cfg Config, level float64) (*JackknifeCI, error) {
	if level <= 0 || level >= 1 {
		return nil, fmt.Errorf("synthetic: level must be in (0,1), got %v", level)
	}
	full, err := Fit(p, treated, t0, cfg)
	if err != nil {
		return nil, err
	}
	if len(full.Donors) < 3 {
		return nil, fmt.Errorf("synthetic: jackknife needs >= 3 donors, have %d", len(full.Donors))
	}
	var reps []float64
	for _, drop := range full.Donors {
		units := make([]string, 0, len(p.Units)-1)
		rows := make([]int, 0, len(p.Units)-1)
		for i, u := range p.Units {
			if u == drop {
				continue
			}
			units = append(units, u)
			rows = append(rows, i)
		}
		y := mathx.NewMatrix(len(rows), p.Y.Cols)
		for k, r := range rows {
			for t := 0; t < p.Y.Cols; t++ {
				y.Set(k, t, p.Y.At(r, t))
			}
		}
		sub, err := NewPanel(units, p.Times, y)
		if err != nil {
			return nil, err
		}
		res, err := Fit(sub, treated, t0, cfg)
		if err != nil {
			continue // a degenerate leave-one-out pool: skip
		}
		reps = append(reps, res.ATT)
	}
	if len(reps) < 3 {
		return nil, fmt.Errorf("synthetic: only %d jackknife replicates succeeded", len(reps))
	}
	// Jackknife variance: (n-1)/n · Σ (θ̂ᵢ − θ̄)².
	nf := float64(len(reps))
	mean := mathx.Mean(reps)
	var ss float64
	for _, r := range reps {
		d := r - mean
		ss += d * d
	}
	se := math.Sqrt((nf - 1) / nf * ss)
	z := zQuantile(0.5 + level/2)
	return &JackknifeCI{
		ATT: full.ATT, SE: se,
		Lo: full.ATT - z*se, Hi: full.ATT + z*se,
		Replicas: reps,
	}, nil
}

// zQuantile inverts the standard normal CDF by bisection.
func zQuantile(p float64) float64 {
	lo, hi := -10.0, 10.0
	for i := 0; i < 80; i++ {
		mid := (lo + hi) / 2
		if mathx.NormalCDF(mid) < p {
			lo = mid
		} else {
			hi = mid
		}
	}
	return (lo + hi) / 2
}
