package synthetic

import (
	"fmt"
	"math"
	"strings"
)

// sparkRunes are the eight block heights used for terminal sparklines.
var sparkRunes = []rune("▁▂▃▄▅▆▇█")

// Sparkline renders a series as unicode blocks scaled to its own range.
func Sparkline(xs []float64) string {
	if len(xs) == 0 {
		return ""
	}
	lo, hi := math.Inf(1), math.Inf(-1)
	for _, x := range xs {
		if x < lo {
			lo = x
		}
		if x > hi {
			hi = x
		}
	}
	var sb strings.Builder
	span := hi - lo
	for _, x := range xs {
		idx := 0
		if span > 0 {
			idx = int((x - lo) / span * float64(len(sparkRunes)-1))
		}
		if idx < 0 {
			idx = 0
		}
		if idx >= len(sparkRunes) {
			idx = len(sparkRunes) - 1
		}
		sb.WriteRune(sparkRunes[idx])
	}
	return sb.String()
}

// Render prints the fitted synthetic control as a compact terminal chart:
// the actual and synthetic trajectories (shared scale), a treatment marker,
// and the headline numbers. Intended for CLI/example output.
func (r *Result) Render() string {
	// Scale both series over their joint range so they are comparable.
	joint := append(append([]float64(nil), r.Actual...), r.Synthetic...)
	lo, hi := math.Inf(1), math.Inf(-1)
	for _, x := range joint {
		if x < lo {
			lo = x
		}
		if x > hi {
			hi = x
		}
	}
	scale := func(xs []float64) string {
		span := hi - lo
		var sb strings.Builder
		for i, x := range xs {
			if i == r.T0 {
				sb.WriteByte('|') // treatment marker
			}
			idx := 0
			if span > 0 {
				idx = int((x - lo) / span * float64(len(sparkRunes)-1))
			}
			if idx >= len(sparkRunes) {
				idx = len(sparkRunes) - 1
			}
			sb.WriteRune(sparkRunes[idx])
		}
		return sb.String()
	}
	var sb strings.Builder
	fmt.Fprintf(&sb, "unit %s (| marks treatment at t=%d)\n", r.Unit, r.T0)
	fmt.Fprintf(&sb, "  actual    %s\n", scale(r.Actual))
	fmt.Fprintf(&sb, "  synthetic %s\n", scale(r.Synthetic))
	fmt.Fprintf(&sb, "  ATT %+.2f  pre-RMSE %.2f  post/pre ratio %.2f\n", r.ATT, r.PreRMSE, r.RMSERatio)
	top := r.TopWeights(3)
	fmt.Fprintf(&sb, "  top donors:")
	for _, d := range top {
		fmt.Fprintf(&sb, " %s=%.2f", d.Donor, d.Weight)
	}
	sb.WriteByte('\n')
	return sb.String()
}
