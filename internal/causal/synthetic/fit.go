package synthetic

import (
	"fmt"
	"math"

	"sisyphus/internal/mathx"
)

// Fit estimates a synthetic control for the named treated unit with
// treatment starting at column t0 (the first post period). All other panel
// units form the donor pool; callers must exclude contaminated donors (units
// that were themselves treated) before building the panel.
func Fit(p *Panel, treated string, t0 int, cfg Config) (*Result, error) {
	cfg = cfg.withDefaults()
	ti, err := p.UnitIndex(treated)
	if err != nil {
		return nil, err
	}
	if t0 < cfg.MinPre {
		return nil, fmt.Errorf("synthetic: only %d pre periods, need at least %d", t0, cfg.MinPre)
	}
	if t0 >= p.Y.Cols {
		return nil, fmt.Errorf("synthetic: t0=%d leaves no post periods (T=%d)", t0, p.Y.Cols)
	}

	nDonors := len(p.Units) - 1
	donors := make([]string, 0, nDonors)
	donorRows := make([]int, 0, nDonors)
	for i, u := range p.Units {
		if i == ti {
			continue
		}
		donors = append(donors, u)
		donorRows = append(donorRows, i)
	}

	// Pre-period design: rows = pre times, cols = donors.
	pre := mathx.NewMatrix(t0, nDonors)
	for j, row := range donorRows {
		for t := 0; t < t0; t++ {
			pre.Set(t, j, p.Y.At(row, t))
		}
	}
	target := make(mathx.Vector, t0)
	for t := 0; t < t0; t++ {
		target[t] = p.Y.At(ti, t)
	}

	var w mathx.Vector
	switch cfg.Method {
	case Classic:
		w = simplexWeights(pre, target, cfg.MaxIter)
	case Robust:
		w, err = robustWeights(pre, target, cfg)
		if err != nil {
			return nil, err
		}
	default:
		return nil, fmt.Errorf("synthetic: unknown method %v", cfg.Method)
	}

	// Build full synthetic trajectory.
	T := p.Y.Cols
	synth := make(mathx.Vector, T)
	actual := make(mathx.Vector, T)
	for t := 0; t < T; t++ {
		actual[t] = p.Y.At(ti, t)
		var s float64
		for j, row := range donorRows {
			s += w[j] * p.Y.At(row, t)
		}
		synth[t] = s
	}

	res := &Result{
		Unit: treated, Donors: donors, Weights: w,
		Actual: actual, Synthetic: synth, T0: t0,
	}
	res.PreRMSE = mathx.RMSE(actual[:t0], synth[:t0])
	res.PostRMSE = mathx.RMSE(actual[t0:], synth[t0:])
	if res.PreRMSE > 0 {
		res.RMSERatio = res.PostRMSE / res.PreRMSE
	} else {
		res.RMSERatio = math.Inf(1)
	}
	gap := res.Gap()[t0:]
	res.ATT = gap.Mean()
	res.MedianGap = mathx.Median(gap)
	return res, nil
}

// simplexWeights minimizes ||target − pre·w||² over the probability simplex
// using Frank–Wolfe with exact line search (the objective is quadratic).
func simplexWeights(pre *mathx.Matrix, target mathx.Vector, maxIter int) mathx.Vector {
	n := pre.Cols
	w := make(mathx.Vector, n)
	for i := range w {
		w[i] = 1 / float64(n)
	}
	resid := pre.MulVec(w).Sub(target) // A w − b
	preT := pre.T()
	for iter := 0; iter < maxIter; iter++ {
		grad := preT.MulVec(resid)
		// Linear minimization oracle over the simplex: the best vertex.
		j := 0
		for k := 1; k < n; k++ {
			if grad[k] < grad[j] {
				j = k
			}
		}
		// Direction d = e_j − w; step minimizes the quadratic along d.
		// A d = A e_j − A w = col_j − (resid + b) ... compute directly.
		ad := pre.Col(j).Sub(pre.MulVec(w))
		denom := ad.Dot(ad)
		if denom < 1e-18 {
			break
		}
		gamma := -resid.Dot(ad) / denom
		if gamma <= 0 {
			break // vertex already optimal along this direction
		}
		if gamma > 1 {
			gamma = 1
		}
		for k := range w {
			w[k] *= 1 - gamma
		}
		w[j] += gamma
		resid = resid.AddScaled(gamma, ad)
		if gamma < 1e-12 {
			break
		}
	}
	return w
}

// robustWeights implements the Amjad–Shah–Shen estimator: hard-threshold the
// donor pre matrix's singular values to strip measurement noise, then solve
// a ridge regression of the treated pre trajectory on the denoised donors.
func robustWeights(pre *mathx.Matrix, target mathx.Vector, cfg Config) (mathx.Vector, error) {
	svd := mathx.ComputeSVD(pre)
	var denoised *mathx.Matrix
	if cfg.Rank > 0 {
		denoised = svd.Reconstruct(cfg.Rank)
	} else {
		denoised = svd.HardThreshold(universalThreshold(svd.S))
	}
	lambda := cfg.RidgeLambda * float64(pre.Rows)
	w, err := mathx.RidgeSolve(denoised, target, lambda)
	if err != nil {
		return nil, fmt.Errorf("synthetic: robust ridge solve: %w", err)
	}
	return w, nil
}

// universalThreshold is a pragmatic variant of the Gavish–Donoho universal
// singular-value threshold: 2.858 × median singular value. It keeps at
// least the top singular value so the estimator never degenerates to zero.
func universalThreshold(s mathx.Vector) float64 {
	if len(s) == 0 {
		return 0
	}
	med := mathx.Median(s)
	tau := 2.858 * med
	if tau >= s[0] {
		// Never drop everything: keep (at least) the dominant direction.
		tau = math.Nextafter(s[0], 0) // just below the top singular value
	}
	return tau
}
