package synthetic

import (
	"fmt"

	"sisyphus/internal/mathx"
)

// MaskedPanel is an outcome panel whose cells may be missing — the shape
// real measurement data actually has once probes drop, vantages die, and
// panels go gappy. Observed[i][t] reports whether Y(i, t) was backed by at
// least one real measurement; unobserved cells hold whatever placeholder the
// collector left (they are re-imputed by Apply before any estimator sees
// them). Estimators never consume a MaskedPanel directly: Apply first
// enforces the missing-cell policy and returns a rectangular Panel plus the
// coverage report that must accompany any estimate computed from it.
type MaskedPanel struct {
	Units    []string
	Times    []float64
	Y        *mathx.Matrix
	Observed [][]bool
}

// NewMaskedPanel validates dimensions and builds a masked panel.
func NewMaskedPanel(units []string, times []float64, y *mathx.Matrix, observed [][]bool) (*MaskedPanel, error) {
	if y.Rows != len(units) || y.Cols != len(times) {
		return nil, fmt.Errorf("synthetic: Y is %dx%d but have %d units and %d times",
			y.Rows, y.Cols, len(units), len(times))
	}
	if len(observed) != len(units) {
		return nil, fmt.Errorf("synthetic: mask has %d rows for %d units", len(observed), len(units))
	}
	for i, row := range observed {
		if len(row) != len(times) {
			return nil, fmt.Errorf("synthetic: mask row %d has %d cells for %d times", i, len(row), len(times))
		}
	}
	return &MaskedPanel{Units: units, Times: times, Y: y, Observed: observed}, nil
}

// MissingPolicy documents how missing cells are handled before estimation:
// units whose observed fraction falls below MinCoverage are dropped from the
// panel entirely (a donor that was dark half the study is not a credible
// counterfactual), units listed in KeepUnits are exempt from dropping (the
// treated unit must survive so the caller can report its estimate alongside
// its coverage instead of silently omitting the row), and remaining gaps are
// imputed by linear interpolation between the nearest observed neighbours
// with edge values carried outward (mathx.InterpolateMissing — the same rule
// platform binning uses, so both layers agree cell-for-cell).
type MissingPolicy struct {
	// MinCoverage is the minimum observed fraction a unit needs to stay in
	// the panel (default 0.5; values are clamped to [0, 1]).
	MinCoverage float64
	// KeepUnits lists units never dropped regardless of coverage.
	KeepUnits []string
}

func (p MissingPolicy) withDefaults() MissingPolicy {
	if p.MinCoverage == 0 {
		p.MinCoverage = 0.5
	}
	if p.MinCoverage < 0 {
		p.MinCoverage = 0
	}
	if p.MinCoverage > 1 {
		p.MinCoverage = 1
	}
	return p
}

// UnitCoverage reports how much data one unit's trajectory stood on.
type UnitCoverage struct {
	Unit     string
	Observed int
	Total    int
	Dropped  bool
}

// Fraction returns Observed/Total (1 for an empty panel).
func (c UnitCoverage) Fraction() float64 {
	if c.Total == 0 {
		return 1
	}
	return float64(c.Observed) / float64(c.Total)
}

// Apply enforces the policy: it drops under-covered units, imputes the
// remaining gaps, and returns the rectangular Panel estimators consume plus
// per-unit coverage for every input unit (dropped ones included, flagged).
// A fully observed masked panel passes through numerically untouched, so
// fault-rate-zero pipelines are bit-identical to ones that never built a
// mask.
func (mp *MaskedPanel) Apply(pol MissingPolicy) (*Panel, []UnitCoverage, error) {
	pol = pol.withDefaults()
	keep := make(map[string]bool, len(pol.KeepUnits))
	for _, u := range pol.KeepUnits {
		keep[u] = true
	}

	nT := len(mp.Times)
	coverage := make([]UnitCoverage, len(mp.Units))
	var kept []int
	for i, u := range mp.Units {
		obs := 0
		for t := 0; t < nT; t++ {
			if mp.Observed[i][t] {
				obs++
			}
		}
		cov := UnitCoverage{Unit: u, Observed: obs, Total: nT}
		if !keep[u] && cov.Fraction() < pol.MinCoverage {
			cov.Dropped = true
		} else {
			kept = append(kept, i)
		}
		coverage[i] = cov
	}
	if len(kept) < 2 {
		return nil, coverage, fmt.Errorf("synthetic: only %d units survive the coverage policy (need 2)", len(kept))
	}

	units := make([]string, len(kept))
	y := mathx.NewMatrix(len(kept), nT)
	row := make([]float64, nT)
	for k, i := range kept {
		units[k] = mp.Units[i]
		for t := 0; t < nT; t++ {
			row[t] = mp.Y.At(i, t)
		}
		mathx.InterpolateMissing(row, mp.Observed[i])
		y.SetRow(k, row)
	}
	panel, err := NewPanel(units, mp.Times, y)
	if err != nil {
		return nil, coverage, err
	}
	return panel, coverage, nil
}
